file(REMOVE_RECURSE
  "CMakeFiles/emstress_ga.dir/ga_engine.cc.o"
  "CMakeFiles/emstress_ga.dir/ga_engine.cc.o.d"
  "libemstress_ga.a"
  "libemstress_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
