# Empty dependencies file for emstress_ga.
# This may be replaced when dependencies are built.
