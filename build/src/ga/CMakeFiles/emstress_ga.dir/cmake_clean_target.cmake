file(REMOVE_RECURSE
  "libemstress_ga.a"
)
