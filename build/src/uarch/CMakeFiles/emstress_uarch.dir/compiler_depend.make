# Empty compiler generated dependencies file for emstress_uarch.
# This may be replaced when dependencies are built.
