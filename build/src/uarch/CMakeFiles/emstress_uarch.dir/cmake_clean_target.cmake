file(REMOVE_RECURSE
  "libemstress_uarch.a"
)
