file(REMOVE_RECURSE
  "CMakeFiles/emstress_uarch.dir/core_model.cc.o"
  "CMakeFiles/emstress_uarch.dir/core_model.cc.o.d"
  "libemstress_uarch.a"
  "libemstress_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
