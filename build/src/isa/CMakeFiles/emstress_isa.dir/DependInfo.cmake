
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/instr.cc" "src/isa/CMakeFiles/emstress_isa.dir/instr.cc.o" "gcc" "src/isa/CMakeFiles/emstress_isa.dir/instr.cc.o.d"
  "/root/repo/src/isa/kernel.cc" "src/isa/CMakeFiles/emstress_isa.dir/kernel.cc.o" "gcc" "src/isa/CMakeFiles/emstress_isa.dir/kernel.cc.o.d"
  "/root/repo/src/isa/pool.cc" "src/isa/CMakeFiles/emstress_isa.dir/pool.cc.o" "gcc" "src/isa/CMakeFiles/emstress_isa.dir/pool.cc.o.d"
  "/root/repo/src/isa/xml.cc" "src/isa/CMakeFiles/emstress_isa.dir/xml.cc.o" "gcc" "src/isa/CMakeFiles/emstress_isa.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
