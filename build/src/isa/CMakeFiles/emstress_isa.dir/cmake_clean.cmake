file(REMOVE_RECURSE
  "CMakeFiles/emstress_isa.dir/instr.cc.o"
  "CMakeFiles/emstress_isa.dir/instr.cc.o.d"
  "CMakeFiles/emstress_isa.dir/kernel.cc.o"
  "CMakeFiles/emstress_isa.dir/kernel.cc.o.d"
  "CMakeFiles/emstress_isa.dir/pool.cc.o"
  "CMakeFiles/emstress_isa.dir/pool.cc.o.d"
  "CMakeFiles/emstress_isa.dir/xml.cc.o"
  "CMakeFiles/emstress_isa.dir/xml.cc.o.d"
  "libemstress_isa.a"
  "libemstress_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
