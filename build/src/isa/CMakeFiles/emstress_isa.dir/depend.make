# Empty dependencies file for emstress_isa.
# This may be replaced when dependencies are built.
