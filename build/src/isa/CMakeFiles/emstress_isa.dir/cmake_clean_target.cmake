file(REMOVE_RECURSE
  "libemstress_isa.a"
)
