
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instruments/oscilloscope.cc" "src/instruments/CMakeFiles/emstress_instruments.dir/oscilloscope.cc.o" "gcc" "src/instruments/CMakeFiles/emstress_instruments.dir/oscilloscope.cc.o.d"
  "/root/repo/src/instruments/scl.cc" "src/instruments/CMakeFiles/emstress_instruments.dir/scl.cc.o" "gcc" "src/instruments/CMakeFiles/emstress_instruments.dir/scl.cc.o.d"
  "/root/repo/src/instruments/sdr_receiver.cc" "src/instruments/CMakeFiles/emstress_instruments.dir/sdr_receiver.cc.o" "gcc" "src/instruments/CMakeFiles/emstress_instruments.dir/sdr_receiver.cc.o.d"
  "/root/repo/src/instruments/spectrum_analyzer.cc" "src/instruments/CMakeFiles/emstress_instruments.dir/spectrum_analyzer.cc.o" "gcc" "src/instruments/CMakeFiles/emstress_instruments.dir/spectrum_analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/emstress_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/emstress_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
