# Empty compiler generated dependencies file for emstress_instruments.
# This may be replaced when dependencies are built.
