file(REMOVE_RECURSE
  "CMakeFiles/emstress_instruments.dir/oscilloscope.cc.o"
  "CMakeFiles/emstress_instruments.dir/oscilloscope.cc.o.d"
  "CMakeFiles/emstress_instruments.dir/scl.cc.o"
  "CMakeFiles/emstress_instruments.dir/scl.cc.o.d"
  "CMakeFiles/emstress_instruments.dir/sdr_receiver.cc.o"
  "CMakeFiles/emstress_instruments.dir/sdr_receiver.cc.o.d"
  "CMakeFiles/emstress_instruments.dir/spectrum_analyzer.cc.o"
  "CMakeFiles/emstress_instruments.dir/spectrum_analyzer.cc.o.d"
  "libemstress_instruments.a"
  "libemstress_instruments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_instruments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
