file(REMOVE_RECURSE
  "libemstress_instruments.a"
)
