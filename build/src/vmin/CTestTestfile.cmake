# CMake generated Testfile for 
# Source directory: /root/repo/src/vmin
# Build directory: /root/repo/build/src/vmin
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
