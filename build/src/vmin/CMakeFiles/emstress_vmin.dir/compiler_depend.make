# Empty compiler generated dependencies file for emstress_vmin.
# This may be replaced when dependencies are built.
