file(REMOVE_RECURSE
  "CMakeFiles/emstress_vmin.dir/timing_model.cc.o"
  "CMakeFiles/emstress_vmin.dir/timing_model.cc.o.d"
  "CMakeFiles/emstress_vmin.dir/vmin_search.cc.o"
  "CMakeFiles/emstress_vmin.dir/vmin_search.cc.o.d"
  "libemstress_vmin.a"
  "libemstress_vmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_vmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
