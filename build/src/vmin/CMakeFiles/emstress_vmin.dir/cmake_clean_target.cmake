file(REMOVE_RECURSE
  "libemstress_vmin.a"
)
