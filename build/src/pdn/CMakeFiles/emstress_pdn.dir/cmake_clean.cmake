file(REMOVE_RECURSE
  "CMakeFiles/emstress_pdn.dir/pdn_model.cc.o"
  "CMakeFiles/emstress_pdn.dir/pdn_model.cc.o.d"
  "CMakeFiles/emstress_pdn.dir/resonance.cc.o"
  "CMakeFiles/emstress_pdn.dir/resonance.cc.o.d"
  "libemstress_pdn.a"
  "libemstress_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
