# Empty compiler generated dependencies file for emstress_pdn.
# This may be replaced when dependencies are built.
