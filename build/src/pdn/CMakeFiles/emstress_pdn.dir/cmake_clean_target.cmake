file(REMOVE_RECURSE
  "libemstress_pdn.a"
)
