file(REMOVE_RECURSE
  "libemstress_dsp.a"
)
