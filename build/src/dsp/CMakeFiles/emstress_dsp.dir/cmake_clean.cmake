file(REMOVE_RECURSE
  "CMakeFiles/emstress_dsp.dir/fft.cc.o"
  "CMakeFiles/emstress_dsp.dir/fft.cc.o.d"
  "CMakeFiles/emstress_dsp.dir/spectrum.cc.o"
  "CMakeFiles/emstress_dsp.dir/spectrum.cc.o.d"
  "CMakeFiles/emstress_dsp.dir/window.cc.o"
  "CMakeFiles/emstress_dsp.dir/window.cc.o.d"
  "libemstress_dsp.a"
  "libemstress_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
