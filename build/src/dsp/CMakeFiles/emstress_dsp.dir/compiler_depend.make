# Empty compiler generated dependencies file for emstress_dsp.
# This may be replaced when dependencies are built.
