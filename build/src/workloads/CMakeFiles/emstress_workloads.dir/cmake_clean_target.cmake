file(REMOVE_RECURSE
  "libemstress_workloads.a"
)
