# Empty dependencies file for emstress_workloads.
# This may be replaced when dependencies are built.
