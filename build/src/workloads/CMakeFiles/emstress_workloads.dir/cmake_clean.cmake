file(REMOVE_RECURSE
  "CMakeFiles/emstress_workloads.dir/workload.cc.o"
  "CMakeFiles/emstress_workloads.dir/workload.cc.o.d"
  "libemstress_workloads.a"
  "libemstress_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
