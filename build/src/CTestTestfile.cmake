# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("dsp")
subdirs("circuit")
subdirs("pdn")
subdirs("isa")
subdirs("uarch")
subdirs("em")
subdirs("instruments")
subdirs("platform")
subdirs("workloads")
subdirs("vmin")
subdirs("mitigation")
subdirs("ga")
subdirs("core")
