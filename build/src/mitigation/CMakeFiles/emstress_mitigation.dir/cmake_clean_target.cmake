file(REMOVE_RECURSE
  "libemstress_mitigation.a"
)
