# Empty compiler generated dependencies file for emstress_mitigation.
# This may be replaced when dependencies are built.
