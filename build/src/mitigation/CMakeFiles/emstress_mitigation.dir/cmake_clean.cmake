file(REMOVE_RECURSE
  "CMakeFiles/emstress_mitigation.dir/adaptive_clock.cc.o"
  "CMakeFiles/emstress_mitigation.dir/adaptive_clock.cc.o.d"
  "libemstress_mitigation.a"
  "libemstress_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
