file(REMOVE_RECURSE
  "CMakeFiles/emstress_circuit.dir/ac.cc.o"
  "CMakeFiles/emstress_circuit.dir/ac.cc.o.d"
  "CMakeFiles/emstress_circuit.dir/mna.cc.o"
  "CMakeFiles/emstress_circuit.dir/mna.cc.o.d"
  "CMakeFiles/emstress_circuit.dir/transient.cc.o"
  "CMakeFiles/emstress_circuit.dir/transient.cc.o.d"
  "libemstress_circuit.a"
  "libemstress_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
