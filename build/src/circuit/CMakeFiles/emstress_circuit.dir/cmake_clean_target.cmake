file(REMOVE_RECURSE
  "libemstress_circuit.a"
)
