# Empty compiler generated dependencies file for emstress_circuit.
# This may be replaced when dependencies are built.
