file(REMOVE_RECURSE
  "CMakeFiles/emstress_core.dir/fitness.cc.o"
  "CMakeFiles/emstress_core.dir/fitness.cc.o.d"
  "CMakeFiles/emstress_core.dir/margin_predictor.cc.o"
  "CMakeFiles/emstress_core.dir/margin_predictor.cc.o.d"
  "CMakeFiles/emstress_core.dir/multidomain.cc.o"
  "CMakeFiles/emstress_core.dir/multidomain.cc.o.d"
  "CMakeFiles/emstress_core.dir/resonance_explorer.cc.o"
  "CMakeFiles/emstress_core.dir/resonance_explorer.cc.o.d"
  "CMakeFiles/emstress_core.dir/resonant_kernel.cc.o"
  "CMakeFiles/emstress_core.dir/resonant_kernel.cc.o.d"
  "CMakeFiles/emstress_core.dir/tamper_detector.cc.o"
  "CMakeFiles/emstress_core.dir/tamper_detector.cc.o.d"
  "CMakeFiles/emstress_core.dir/virus_analysis.cc.o"
  "CMakeFiles/emstress_core.dir/virus_analysis.cc.o.d"
  "CMakeFiles/emstress_core.dir/virus_generator.cc.o"
  "CMakeFiles/emstress_core.dir/virus_generator.cc.o.d"
  "CMakeFiles/emstress_core.dir/vmin_tester.cc.o"
  "CMakeFiles/emstress_core.dir/vmin_tester.cc.o.d"
  "libemstress_core.a"
  "libemstress_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
