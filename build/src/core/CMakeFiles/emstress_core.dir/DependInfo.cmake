
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fitness.cc" "src/core/CMakeFiles/emstress_core.dir/fitness.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/fitness.cc.o.d"
  "/root/repo/src/core/margin_predictor.cc" "src/core/CMakeFiles/emstress_core.dir/margin_predictor.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/margin_predictor.cc.o.d"
  "/root/repo/src/core/multidomain.cc" "src/core/CMakeFiles/emstress_core.dir/multidomain.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/multidomain.cc.o.d"
  "/root/repo/src/core/resonance_explorer.cc" "src/core/CMakeFiles/emstress_core.dir/resonance_explorer.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/resonance_explorer.cc.o.d"
  "/root/repo/src/core/resonant_kernel.cc" "src/core/CMakeFiles/emstress_core.dir/resonant_kernel.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/resonant_kernel.cc.o.d"
  "/root/repo/src/core/tamper_detector.cc" "src/core/CMakeFiles/emstress_core.dir/tamper_detector.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/tamper_detector.cc.o.d"
  "/root/repo/src/core/virus_analysis.cc" "src/core/CMakeFiles/emstress_core.dir/virus_analysis.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/virus_analysis.cc.o.d"
  "/root/repo/src/core/virus_generator.cc" "src/core/CMakeFiles/emstress_core.dir/virus_generator.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/virus_generator.cc.o.d"
  "/root/repo/src/core/vmin_tester.cc" "src/core/CMakeFiles/emstress_core.dir/vmin_tester.cc.o" "gcc" "src/core/CMakeFiles/emstress_core.dir/vmin_tester.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ga/CMakeFiles/emstress_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/emstress_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emstress_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/vmin/CMakeFiles/emstress_vmin.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emstress_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/emstress_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/emstress_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emstress_em.dir/DependInfo.cmake"
  "/root/repo/build/src/instruments/CMakeFiles/emstress_instruments.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/emstress_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/emstress_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
