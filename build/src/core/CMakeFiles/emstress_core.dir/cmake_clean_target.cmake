file(REMOVE_RECURSE
  "libemstress_core.a"
)
