# Empty compiler generated dependencies file for emstress_core.
# This may be replaced when dependencies are built.
