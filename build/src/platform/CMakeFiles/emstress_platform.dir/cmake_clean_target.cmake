file(REMOVE_RECURSE
  "libemstress_platform.a"
)
