file(REMOVE_RECURSE
  "CMakeFiles/emstress_platform.dir/platform.cc.o"
  "CMakeFiles/emstress_platform.dir/platform.cc.o.d"
  "libemstress_platform.a"
  "libemstress_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
