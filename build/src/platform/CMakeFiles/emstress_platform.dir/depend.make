# Empty dependencies file for emstress_platform.
# This may be replaced when dependencies are built.
