file(REMOVE_RECURSE
  "CMakeFiles/emstress_em.dir/antenna.cc.o"
  "CMakeFiles/emstress_em.dir/antenna.cc.o.d"
  "libemstress_em.a"
  "libemstress_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emstress_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
