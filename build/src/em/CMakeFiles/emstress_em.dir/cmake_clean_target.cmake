file(REMOVE_RECURSE
  "libemstress_em.a"
)
