# Empty dependencies file for emstress_em.
# This may be replaced when dependencies are built.
