file(REMOVE_RECURSE
  "CMakeFiles/soc_monitor.dir/soc_monitor.cpp.o"
  "CMakeFiles/soc_monitor.dir/soc_monitor.cpp.o.d"
  "soc_monitor"
  "soc_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
