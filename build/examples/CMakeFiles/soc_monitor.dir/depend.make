# Empty dependencies file for soc_monitor.
# This may be replaced when dependencies are built.
