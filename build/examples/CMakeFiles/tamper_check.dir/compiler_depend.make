# Empty compiler generated dependencies file for tamper_check.
# This may be replaced when dependencies are built.
