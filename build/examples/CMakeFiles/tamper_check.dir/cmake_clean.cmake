file(REMOVE_RECURSE
  "CMakeFiles/tamper_check.dir/tamper_check.cpp.o"
  "CMakeFiles/tamper_check.dir/tamper_check.cpp.o.d"
  "tamper_check"
  "tamper_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamper_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
