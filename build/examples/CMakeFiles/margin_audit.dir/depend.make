# Empty dependencies file for margin_audit.
# This may be replaced when dependencies are built.
