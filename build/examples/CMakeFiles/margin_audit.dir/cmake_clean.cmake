file(REMOVE_RECURSE
  "CMakeFiles/margin_audit.dir/margin_audit.cpp.o"
  "CMakeFiles/margin_audit.dir/margin_audit.cpp.o.d"
  "margin_audit"
  "margin_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/margin_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
