# Empty compiler generated dependencies file for custom_pool.
# This may be replaced when dependencies are built.
