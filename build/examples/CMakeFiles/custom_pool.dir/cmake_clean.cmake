file(REMOVE_RECURSE
  "CMakeFiles/custom_pool.dir/custom_pool.cpp.o"
  "CMakeFiles/custom_pool.dir/custom_pool.cpp.o.d"
  "custom_pool"
  "custom_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
