# Empty dependencies file for virus_hunt.
# This may be replaced when dependencies are built.
