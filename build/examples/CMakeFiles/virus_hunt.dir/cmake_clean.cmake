file(REMOVE_RECURSE
  "CMakeFiles/virus_hunt.dir/virus_hunt.cpp.o"
  "CMakeFiles/virus_hunt.dir/virus_hunt.cpp.o.d"
  "virus_hunt"
  "virus_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virus_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
