# Empty compiler generated dependencies file for test_margin_predictor.
# This may be replaced when dependencies are built.
