file(REMOVE_RECURSE
  "CMakeFiles/test_margin_predictor.dir/test_margin_predictor.cc.o"
  "CMakeFiles/test_margin_predictor.dir/test_margin_predictor.cc.o.d"
  "test_margin_predictor"
  "test_margin_predictor.pdb"
  "test_margin_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_margin_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
