
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_margin_predictor.cc" "tests/CMakeFiles/test_margin_predictor.dir/test_margin_predictor.cc.o" "gcc" "tests/CMakeFiles/test_margin_predictor.dir/test_margin_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emstress_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ga/CMakeFiles/emstress_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/emstress_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/emstress_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/emstress_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emstress_em.dir/DependInfo.cmake"
  "/root/repo/build/src/instruments/CMakeFiles/emstress_instruments.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/emstress_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/emstress_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/emstress_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/vmin/CMakeFiles/emstress_vmin.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emstress_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
