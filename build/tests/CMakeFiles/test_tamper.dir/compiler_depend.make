# Empty compiler generated dependencies file for test_tamper.
# This may be replaced when dependencies are built.
