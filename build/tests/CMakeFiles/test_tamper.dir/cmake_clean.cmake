file(REMOVE_RECURSE
  "CMakeFiles/test_tamper.dir/test_tamper.cc.o"
  "CMakeFiles/test_tamper.dir/test_tamper.cc.o.d"
  "test_tamper"
  "test_tamper.pdb"
  "test_tamper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tamper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
