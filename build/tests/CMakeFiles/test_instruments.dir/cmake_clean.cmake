file(REMOVE_RECURSE
  "CMakeFiles/test_instruments.dir/test_instruments.cc.o"
  "CMakeFiles/test_instruments.dir/test_instruments.cc.o.d"
  "test_instruments"
  "test_instruments.pdb"
  "test_instruments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instruments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
