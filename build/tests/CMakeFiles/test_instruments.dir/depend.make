# Empty dependencies file for test_instruments.
# This may be replaced when dependencies are built.
