file(REMOVE_RECURSE
  "CMakeFiles/test_resonant_kernel.dir/test_resonant_kernel.cc.o"
  "CMakeFiles/test_resonant_kernel.dir/test_resonant_kernel.cc.o.d"
  "test_resonant_kernel"
  "test_resonant_kernel.pdb"
  "test_resonant_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resonant_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
