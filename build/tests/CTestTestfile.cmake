# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_spectrum[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_pdn[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_instruments[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_vmin[1]_include.cmake")
include("/root/repo/build/tests/test_ga[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_resonant_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_correlation[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_margin_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_sdr[1]_include.cmake")
include("/root/repo/build/tests/test_tamper[1]_include.cmake")
include("/root/repo/build/tests/test_passivity[1]_include.cmake")
