# Empty dependencies file for bench_fig14_vmin_a53.
# This may be replaced when dependencies are built.
