file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_waveforms.dir/bench_fig04_waveforms.cc.o"
  "CMakeFiles/bench_fig04_waveforms.dir/bench_fig04_waveforms.cc.o.d"
  "bench_fig04_waveforms"
  "bench_fig04_waveforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_waveforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
