file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_sa_vs_dso.dir/bench_fig09_sa_vs_dso.cc.o"
  "CMakeFiles/bench_fig09_sa_vs_dso.dir/bench_fig09_sa_vs_dso.cc.o.d"
  "bench_fig09_sa_vs_dso"
  "bench_fig09_sa_vs_dso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sa_vs_dso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
