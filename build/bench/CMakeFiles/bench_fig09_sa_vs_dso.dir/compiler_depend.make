# Empty compiler generated dependencies file for bench_fig09_sa_vs_dso.
# This may be replaced when dependencies are built.
