# Empty compiler generated dependencies file for bench_fig18_vmin_amd.
# This may be replaced when dependencies are built.
