# Empty dependencies file for bench_fig17_ga_amd.
# This may be replaced when dependencies are built.
