# Empty compiler generated dependencies file for bench_fig07_ga_a72.
# This may be replaced when dependencies are built.
