# Empty dependencies file for bench_fig08_scl_sweep.
# This may be replaced when dependencies are built.
