# Empty dependencies file for bench_fig01_impedance.
# This may be replaced when dependencies are built.
