file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_impedance.dir/bench_fig01_impedance.cc.o"
  "CMakeFiles/bench_fig01_impedance.dir/bench_fig01_impedance.cc.o.d"
  "bench_fig01_impedance"
  "bench_fig01_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
