# Empty compiler generated dependencies file for bench_table2_viruses.
# This may be replaced when dependencies are built.
