file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_viruses.dir/bench_table2_viruses.cc.o"
  "CMakeFiles/bench_table2_viruses.dir/bench_table2_viruses.cc.o.d"
  "bench_table2_viruses"
  "bench_table2_viruses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_viruses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
