file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_adaptive_clock.dir/bench_ext_adaptive_clock.cc.o"
  "CMakeFiles/bench_ext_adaptive_clock.dir/bench_ext_adaptive_clock.cc.o.d"
  "bench_ext_adaptive_clock"
  "bench_ext_adaptive_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_adaptive_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
