file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_resonant_excitation.dir/bench_fig02_resonant_excitation.cc.o"
  "CMakeFiles/bench_fig02_resonant_excitation.dir/bench_fig02_resonant_excitation.cc.o.d"
  "bench_fig02_resonant_excitation"
  "bench_fig02_resonant_excitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_resonant_excitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
