# Empty compiler generated dependencies file for bench_fig02_resonant_excitation.
# This may be replaced when dependencies are built.
