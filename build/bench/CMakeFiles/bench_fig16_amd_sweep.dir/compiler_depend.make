# Empty compiler generated dependencies file for bench_fig16_amd_sweep.
# This may be replaced when dependencies are built.
