# Empty dependencies file for bench_fig15_multidomain.
# This may be replaced when dependencies are built.
