file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_multidomain.dir/bench_fig15_multidomain.cc.o"
  "CMakeFiles/bench_fig15_multidomain.dir/bench_fig15_multidomain.cc.o.d"
  "bench_fig15_multidomain"
  "bench_fig15_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
