# Empty compiler generated dependencies file for bench_ext_sdr.
# This may be replaced when dependencies are built.
