file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sdr.dir/bench_ext_sdr.cc.o"
  "CMakeFiles/bench_ext_sdr.dir/bench_ext_sdr.cc.o.d"
  "bench_ext_sdr"
  "bench_ext_sdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
