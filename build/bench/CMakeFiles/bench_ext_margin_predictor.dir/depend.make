# Empty dependencies file for bench_ext_margin_predictor.
# This may be replaced when dependencies are built.
