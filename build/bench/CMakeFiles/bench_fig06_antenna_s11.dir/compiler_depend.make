# Empty compiler generated dependencies file for bench_fig06_antenna_s11.
# This may be replaced when dependencies are built.
