file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_antenna_s11.dir/bench_fig06_antenna_s11.cc.o"
  "CMakeFiles/bench_fig06_antenna_s11.dir/bench_fig06_antenna_s11.cc.o.d"
  "bench_fig06_antenna_s11"
  "bench_fig06_antenna_s11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_antenna_s11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
