file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_vmin_a72.dir/bench_fig10_vmin_a72.cc.o"
  "CMakeFiles/bench_fig10_vmin_a72.dir/bench_fig10_vmin_a72.cc.o.d"
  "bench_fig10_vmin_a72"
  "bench_fig10_vmin_a72.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_vmin_a72.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
