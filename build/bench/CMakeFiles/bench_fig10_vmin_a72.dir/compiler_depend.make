# Empty compiler generated dependencies file for bench_fig10_vmin_a72.
# This may be replaced when dependencies are built.
