# Empty dependencies file for bench_fig12_ga_a53.
# This may be replaced when dependencies are built.
