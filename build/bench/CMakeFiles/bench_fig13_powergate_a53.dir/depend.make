# Empty dependencies file for bench_fig13_powergate_a53.
# This may be replaced when dependencies are built.
