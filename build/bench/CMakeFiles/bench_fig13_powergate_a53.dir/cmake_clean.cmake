file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_powergate_a53.dir/bench_fig13_powergate_a53.cc.o"
  "CMakeFiles/bench_fig13_powergate_a53.dir/bench_fig13_powergate_a53.cc.o.d"
  "bench_fig13_powergate_a53"
  "bench_fig13_powergate_a53.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_powergate_a53.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
