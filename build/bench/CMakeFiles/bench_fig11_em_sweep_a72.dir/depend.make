# Empty dependencies file for bench_fig11_em_sweep_a72.
# This may be replaced when dependencies are built.
