/**
 * @file
 * Figure 7 reproduction: the EM-amplitude-driven GA on the
 * Cortex-A72. Per generation: best EM amplitude, dominant frequency,
 * and the OC-DSO max droop of the generation's best individual
 * (re-measured after the search, as the paper does). EM amplitude and
 * droop rise together; the dominant frequency locks onto the PDN
 * resonance (~67 MHz) from early generations.
 */

#include "bench_util.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig07_ga_a72.json on exit.
    bench::PerfLog perf_log("fig07_ga_a72");
    bench::banner("Figure 7",
                  "EM-driven GA on Cortex-A72: amplitude / droop / "
                  "dominant frequency per generation");

    platform::Platform a72(platform::junoA72Config(), 7);
    const auto found = bench::getOrSearchVirus(
        a72, "a72em", core::VirusMetric::EmAmplitude, 42);
    const auto &report = found.report;

    // Per-generation series: best EM amplitude + the OC-DSO droop of
    // each generation's best, re-measured after the search
    // (Section 5.1's post-hoc procedure, cached alongside the virus).
    Table t({"generation", "best_em_dbm", "mean_em_dbm",
             "dominant_mhz", "best_droop_mv"});
    for (const auto &row : found.history) {
        t.row()
            .cell(static_cast<long>(row.generation))
            .cell(row.best_fitness, 2)
            .cell(row.mean_fitness, 2)
            .cell(row.dominant_mhz, 2)
            .cell(row.best_droop_mv, 2);
    }
    t.print("Figure 7: GA progression (Cortex-A72)");
    bench::saveCsv(t, "fig07_ga_a72");

    Table summary({"metric", "value"});
    summary.row()
        .cell("final dominant frequency [MHz]")
        .cell(report.dominant_freq_hz / mega(1.0), 2);
    summary.row()
        .cell("PDN 1st-order resonance [MHz]")
        .cell(pdn::firstOrderResonanceHz(a72.pdnModel()) / mega(1.0),
              2);
    summary.row()
        .cell("paper dominant frequency [MHz]")
        .cell(67.0, 1);
    summary.row()
        .cell("final virus droop [mV]")
        .cell(report.max_droop_v * 1e3, 2);
    summary.row()
        .cell("modeled lab time for this search [h]")
        .cell(found.lab_seconds / 3600.0, 2);
    summary.print("Figure 7: convergence summary");
    bench::saveCsv(summary, "fig07_summary");

    if (report.ga.eval_stats.evals > 0)
        bench::printEvalStats(report.ga.eval_stats,
                              "Figure 7: evaluation pipeline");

    if (!found.history.empty()) {
        const auto &first = found.history.front();
        const auto &last = found.history.back();
        std::printf("\nEM amplitude improved %.1f dB over %zu "
                    "generations; droop rose from %.1f to %.1f mV "
                    "alongside it.\n",
                    last.best_fitness - first.best_fitness,
                    found.history.size(), first.best_droop_mv,
                    last.best_droop_mv);
    }
    return 0;
}
