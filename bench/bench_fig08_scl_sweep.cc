/**
 * @file
 * Figure 8 reproduction: the SCL square-wave current sweep on the
 * Cortex-A72 PDN, measured by the OC-DSO. The peak-to-peak response
 * is maximized at the 1st-order resonance: 66-72 MHz with both cores
 * powered (C0C1), 80-86 MHz with one core (C0).
 */

#include "bench_util.h"
#include "core/resonance_explorer.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig08_scl_sweep.json on exit.
    bench::PerfLog perf_log("fig08_scl_sweep");
    bench::banner("Figure 8",
                  "SCL sweep on Cortex-A72: resonance vs powered "
                  "cores (C0C1 vs C0)");

    platform::Platform a72(platform::junoA72Config(), 8);
    core::SclResonanceFinder finder(a72);
    const double step = bench::fullMode() ? mega(1.0) : mega(2.0);

    Table t({"freq_mhz", "p2p_c0c1_mv", "p2p_c0_mv"});
    a72.setPoweredCores(2);
    const auto both =
        finder.sweep(mega(50.0), mega(110.0), step, 0.5, 3e-6);
    a72.setPoweredCores(1);
    const auto one =
        finder.sweep(mega(50.0), mega(110.0), step, 0.5, 3e-6);
    a72.setPoweredCores(2);

    for (std::size_t i = 0; i < both.size() && i < one.size(); ++i) {
        t.row()
            .cell(both[i].freq_hz / mega(1.0), 1)
            .cell(both[i].p2p_v * 1e3, 3)
            .cell(one[i].p2p_v * 1e3, 3);
    }
    t.print("Figure 8: SCL sweep (peak-to-peak vs frequency)");
    bench::saveCsv(t, "fig08_scl_sweep");

    Table summary({"scenario", "resonance_mhz", "paper_range_mhz"});
    summary.row()
        .cell("C0C1 (both cores)")
        .cell(core::SclResonanceFinder::estimateResonanceHz(both)
                  / mega(1.0),
              1)
        .cell("66-72");
    summary.row()
        .cell("C0 (one core)")
        .cell(core::SclResonanceFinder::estimateResonanceHz(one)
                  / mega(1.0),
              1)
        .cell("80-86");
    summary.print("Figure 8: resonance estimates");
    bench::saveCsv(summary, "fig08_summary");
    return 0;
}
