/**
 * @file
 * Table 2 reproduction: cross-platform comparison of the five GA
 * viruses (a72OC-DSO, a72em, a53em, amdEm, amdOsc) — IPC, loop
 * period/frequency, dominant frequency, voltage margin and
 * instruction-type mix — plus the Section 8.2 dominant-vs-loop
 * frequency analysis (min-IPC relation).
 */

#include "bench_util.h"
#include "core/virus_analysis.h"
#include "core/vmin_tester.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

namespace {

void
addRow(Table &t, const core::VirusTableRow &row)
{
    auto pct = [](double v) {
        std::ostringstream os;
        os << static_cast<int>(v * 100.0 + 0.5) << "%";
        return os.str();
    };
    t.row()
        .cell(row.virus_name)
        .cell(static_cast<long>(row.loop_instructions))
        .cell(row.ipc, 2)
        .cell(row.loop_period_ns, 2)
        .cell(row.loop_freq_mhz, 2)
        .cell(row.dominant_freq_mhz, 2)
        .cell(row.voltage_margin_mv, 1)
        .cell(pct(row.pct_branch))
        .cell(pct(row.pct_sl_int_reg))
        .cell(pct(row.pct_ll_int_reg))
        .cell(pct(row.pct_sl_int_mem))
        .cell(pct(row.pct_ll_int_mem))
        .cell(pct(row.pct_float))
        .cell(pct(row.pct_simd))
        .cell(pct(row.pct_mem));
}

} // namespace

int
main()
{
    // Emits bench_out/BENCH_perf.table2_viruses.json on exit.
    bench::PerfLog perf_log("table2_viruses");
    bench::banner("Table 2",
                  "dI/dt virus comparison across platforms");

    Table t({"virus", "loop_instr", "IPC", "loop_period_ns",
             "loop_freq_mhz", "dominant_mhz", "margin_mv", "branch",
             "SL_int_reg", "LL_int_reg", "SL_int_mem", "LL_int_mem",
             "float", "SIMD", "MEM_arm"});

    Table minipc({"virus", "clock_ghz", "resonant_mhz", "min_ipc",
                  "achieved_ipc", "dominant_eq_loop"});

    auto analyze = [&](platform::Platform &plat,
                       const std::string &name,
                       core::VirusMetric metric, std::uint64_t seed) {
        const auto found =
            bench::getOrSearchVirus(plat, name, metric, seed);
        const auto &report = found.report;
        auto cfg = core::defaultVminConfig(plat);
        core::VminTester tester(plat, cfg);
        const auto vrow = tester.testKernel(name, report.virus, 30);
        const auto row = core::analyzeVirus(
            plat, name, report.virus, vrow.vmin_v, 4e-6,
            bench::fullMode() ? 30 : 8);
        addRow(t, row);

        const double f_res =
            pdn::firstOrderResonanceHz(plat.pdnModel());
        const double min_ipc = core::minIpcForResonantLoop(
            f_res, row.loop_instructions, plat.frequency());
        const bool dom_eq_loop =
            std::abs(row.dominant_freq_mhz - row.loop_freq_mhz)
            < 0.15 * row.dominant_freq_mhz;
        minipc.row()
            .cell(name)
            .cell(plat.frequency() / giga(1.0), 2)
            .cell(f_res / mega(1.0), 1)
            .cell(min_ipc, 2)
            .cell(row.ipc, 2)
            .cell(dom_eq_loop ? "yes" : "no");
    };

    platform::Platform a72(platform::junoA72Config(), 20);
    analyze(a72, "a72ocdso", core::VirusMetric::MaxDroop, 43);
    analyze(a72, "a72em", core::VirusMetric::EmAmplitude, 42);

    platform::Platform a53(platform::junoA53Config(), 21);
    analyze(a53, "a53em", core::VirusMetric::EmAmplitude, 53);

    platform::Platform amd(platform::athlonConfig(), 22);
    analyze(amd, "amdem", core::VirusMetric::EmAmplitude, 64);
    analyze(amd, "amdosc", core::VirusMetric::PeakToPeak, 65);

    t.print("Table 2: virus comparison (paper: margins ~150 mV ARM / "
            "~37.5 mV AMD; all instruction types except branches in "
            "use)");
    bench::saveCsv(t, "table2_viruses");

    minipc.print("Section 8.2: min IPC for loop frequency to match "
                 "resonance (paper: ~2.8 on A72 -> ARM viruses use "
                 "in-loop periodicity; ~1.26 on AMD -> loop itself "
                 "resonates)");
    bench::saveCsv(minipc, "table2_minipc");
    return 0;
}
