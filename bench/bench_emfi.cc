/**
 * @file
 * Active-EMFI extension study (not a figure reproduction): a pulse
 * trigger-time × amplitude fault-sensitivity map over a fixed victim
 * kernel on the Cortex-A72 platform, followed by the minimal-energy
 * pulse search — the inverted GA that minimizes attack energy
 * subject to "the target instruction faults". The map is the
 * simulated analogue of the XY/parameter scans EMFI labs run before
 * an attack; the search shows how much cheaper a tuned pulse is than
 * the worst-case corner of the grid.
 */

#include "bench_util.h"
#include "core/emfi.h"
#include "util/rng.h"

using namespace emstress;

int
main()
{
    metrics::setEnabled(true);
    // Emits bench_out/BENCH_perf.emfi_sensitivity.json on exit.
    bench::PerfLog perf_log("emfi_sensitivity");
    bench::banner("EMFI extension",
                  "pulse fault-sensitivity map + minimal-energy "
                  "pulse search (Cortex-A72)");

    platform::Platform a72(platform::junoA72Config(), 3);
    core::EmfiCampaignSpec spec;
    Rng victim_rng(7);
    spec.victim = isa::Kernel::random(a72.pool(), 8, victim_rng);
    spec.target_slot = 3;
    spec.eval.duration_s = 1e-6;
    spec.grid.t0_max_s = 0.8e-6;

    const std::size_t t0_points = bench::fullMode() ? 16 : 6;
    const std::size_t amp_points = bench::fullMode() ? 10 : 5;

    Table map({"t0_ns", "amplitude_a", "sites_crossed", "events",
               "target_faulted", "min_margin_mv", "energy_nj"});
    std::size_t faulting_cells = 0;
    {
        metrics::ScopedPhase phase("emfi.sensitivity_map");
        for (std::size_t ti = 0; ti < t0_points; ++ti) {
            for (std::size_t ai = 1; ai <= amp_points; ++ai) {
                em::PulseSpec pulse;
                pulse.t0_s = spec.grid.t0_max_s
                    * static_cast<double>(ti)
                    / static_cast<double>(t0_points);
                pulse.width_s = 20e-9;
                pulse.amplitude_a = spec.grid.amplitude_max_a
                    * static_cast<double>(ai)
                    / static_cast<double>(amp_points);
                const auto out =
                    core::runEmfiPulse(a72, spec, pulse);
                faulting_cells += out.target_faulted ? 1 : 0;
                map.row()
                    .cell(pulse.t0_s * 1e9, 1)
                    .cell(pulse.amplitude_a, 1)
                    .cell(static_cast<long>(
                        out.report.sites_crossed))
                    .cell(static_cast<long>(
                        out.report.events.size()))
                    .cell(out.target_faulted ? 1L : 0L)
                    .cell(out.report.min_margin_v * 1e3, 1)
                    .cell(out.energy_j * 1e9, 2);
            }
        }
    }
    map.print("EMFI fault-sensitivity map (sites_crossed grows "
              "monotonically with amplitude at fixed t0)");
    bench::saveCsv(map, "emfi_sensitivity");
    std::printf("\n%zu of %zu grid cells fault the target slot.\n",
                faulting_cells, t0_points * amp_points);

    ga::GaConfig cfg;
    if (bench::fullMode()) {
        cfg.population = 24;
        cfg.generations = 20;
    } else {
        cfg.population = 10;
        cfg.generations = 8;
    }
    cfg.seed = 11;
    cfg.threads = 0; // all cores; results bit-identical to serial

    core::EmfiSearchResult search;
    {
        metrics::ScopedPhase phase("emfi.min_energy_search");
        search = core::searchMinimalPulse(a72, spec, cfg);
    }
    Table best({"metric", "value"});
    best.row().cell("target_faulted")
        .cell(search.best_outcome.target_faulted ? 1L : 0L);
    best.row().cell("fitness").cell(search.ga.best_fitness, 4);
    best.row().cell("t0_ns").cell(search.best_pulse.t0_s * 1e9, 1);
    best.row().cell("width_ns")
        .cell(search.best_pulse.width_s * 1e9, 1);
    best.row().cell("amplitude_a")
        .cell(search.best_pulse.amplitude_a, 2);
    best.row().cell("energy_nj")
        .cell(search.best_outcome.energy_j * 1e9, 2);
    best.row().cell("evals")
        .cell(static_cast<long>(search.ga.eval_stats.evals));
    best.print("Minimal-energy faulting pulse (GA "
               + std::to_string(cfg.population) + "x"
               + std::to_string(cfg.generations) + ")");
    bench::saveCsv(best, "emfi_min_energy_pulse");
    return 0;
}
