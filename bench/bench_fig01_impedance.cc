/**
 * @file
 * Figure 1(b)/(c) reproduction: the PDN input-impedance spectrum with
 * its three resonance peaks (1st-order 50-200 MHz, 2nd ~1-10 MHz,
 * 3rd ~10-100 kHz), and the time-domain ringing of a step-current
 * excitation.
 */

#include <cmath>

#include "bench_util.h"
#include "circuit/ac.h"
#include "dsp/spectrum.h"
#include "pdn/resonance.h"
#include "util/stats.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig01_impedance.json on exit.
    bench::PerfLog perf_log("fig01_impedance");
    bench::banner("Figure 1(b,c)",
                  "PDN impedance spectrum and step-current ringing");

    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &model = a72.pdnModel();

    // (b) impedance sweep.
    const auto freqs = circuit::logFrequencyGrid(1e3, 1e9, 121);
    const auto mags = model.impedanceMagnitude(freqs);
    Table sweep({"freq_hz", "impedance_mohm"});
    for (std::size_t i = 0; i < freqs.size(); ++i)
        sweep.row().cell(freqs[i], 0).cell(mags[i] * 1e3, 4);
    bench::saveCsv(sweep, "fig01b_impedance");

    Table peaks({"order", "freq_mhz", "impedance_mohm",
                 "paper_range"});
    const char *expected[] = {"50-200 MHz", "1-10 MHz",
                              "~10-100 kHz"};
    const auto found = pdn::findResonances(model, 1e3, 1e9, 160);
    for (const auto &p : found) {
        peaks.row()
            .cell(static_cast<long>(p.order))
            .cell(p.freq_hz / mega(1.0), 3)
            .cell(p.impedance_ohm * 1e3, 3)
            .cell(p.order <= 3 ? expected[p.order - 1] : "-");
    }
    peaks.print("Figure 1(b): resonance peaks (Cortex-A72 PDN)");
    bench::saveCsv(peaks, "fig01b_peaks");

    // (c) step response: ringing frequency and decay.
    const auto step = model.stepResponse(1.0, 0.25e-9, 2e-6);
    const auto spec = dsp::computeSpectrum(step.v_die);
    const auto ring = dsp::maxPeakInBand(spec, mega(20.0), mega(200.0));
    Table stepTable({"metric", "value"});
    stepTable.row().cell("step amplitude [A]").cell(1.0, 1);
    stepTable.row()
        .cell("ringing frequency [MHz]")
        .cell(ring.freq_hz / mega(1.0), 2);
    stepTable.row()
        .cell("1st-order resonance [MHz]")
        .cell(pdn::firstOrderResonanceHz(model) / mega(1.0), 2);
    stepTable.row()
        .cell("max droop below final value [mV]")
        .cell((stats::mean(step.v_die.samples())
               - stats::minimum(step.v_die.samples()))
                  * 1e3,
              2);
    stepTable.print("Figure 1(c): step-current response");
    bench::saveCsv(stepTable, "fig01c_step");

    return 0;
}
