/**
 * @file
 * Table 1 reproduction: the experimental platform inventory, printed
 * from the platform configurations (with the modeled PDN resonances
 * appended as a consistency check).
 */

#include "bench_util.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.table1_platforms.json on exit.
    bench::PerfLog perf_log("table1_platforms");
    bench::banner("Table 1", "experimental platform details");

    Table t({"MB", "CPU", "cores", "ISA", "uArch", "fmax_v_point",
             "tech_nm", "OS", "voltage_visibility",
             "modeled_f1_mhz"});

    auto add = [&t](const platform::PlatformConfig &cfg,
                    const char *visibility) {
        platform::Platform plat(cfg, 1);
        std::ostringstream point;
        point << cfg.f_max_hz / giga(1.0) << "GHz," << cfg.v_nom
              << "V";
        t.row()
            .cell(cfg.motherboard)
            .cell(cfg.name)
            .cell(static_cast<long>(cfg.n_cores))
            .cell(cfg.isa == isa::IsaFamily::ArmV8 ? "ARM" : "x86-64")
            .cell(cfg.core.out_of_order ? "Out of Order" : "In-Order")
            .cell(point.str())
            .cell(static_cast<long>(cfg.technology_nm))
            .cell(cfg.os)
            .cell(visibility)
            .cell(pdn::firstOrderResonanceHz(plat.pdnModel())
                      / mega(1.0),
                  1);
    };

    add(platform::junoA72Config(), "OC-DSO");
    add(platform::junoA53Config(), "None");
    add(platform::athlonConfig(), "On-package pads");

    t.print("Table 1: experimental platform details");
    bench::saveCsv(t, "table1_platforms");
    return 0;
}
