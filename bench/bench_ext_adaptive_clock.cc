/**
 * @file
 * Extension study: adaptive-clocking mitigation versus detector
 * response latency and power gating — quantifying the paper's
 * Section 6 warning that power-gating raises the oscillation
 * frequency and therefore squeezes the latency budget of
 * droop-reactive mechanisms.
 *
 * For each powered-core count of the Cortex-A53 cluster, a resonant
 * load excites the PDN and the adaptive clock is swept over response
 * latencies; the table reports the residual droop and the
 * effectiveness (droop saved) at each point, plus the latency
 * expressed in resonance periods — the quantity that actually
 * matters.
 */

#include "bench_util.h"
#include "mitigation/adaptive_clock.h"
#include "pdn/resonance.h"
#include "util/stats.h"
#include "util/units.h"

using namespace emstress;

namespace {

Trace
resonantLoad(const pdn::PdnModel &pdn, double amplitude,
             double duration)
{
    const double f1 = pdn::firstOrderResonanceHz(pdn);
    const double dt = 0.25e-9;
    const double period = 1.0 / f1;
    Trace load(dt);
    const auto steps = static_cast<std::size_t>(duration / dt);
    load.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        const double t = dt * static_cast<double>(i);
        load.push(std::fmod(t, period) < 0.5 * period ? amplitude
                                                      : 0.1);
    }
    return load;
}

} // namespace

int
main()
{
    // Emits bench_out/BENCH_perf.ext_adaptive_clock.json on exit.
    bench::PerfLog perf_log("ext_adaptive_clock");
    bench::banner("Extension: adaptive clocking",
                  "mitigation effectiveness vs response latency and "
                  "power gating (Section 6 insight)");

    platform::Platform a53(platform::junoA53Config(), 23);
    const double duration = bench::fullMode() ? 4e-6 : 2e-6;

    Table t({"powered_cores", "f1_mhz", "latency_ns",
             "latency_periods", "droop_unmitigated_mv",
             "droop_mitigated_mv", "effectiveness",
             "throttled_frac", "trips"});

    for (std::size_t cores : {std::size_t{4}, std::size_t{2},
                              std::size_t{1}}) {
        a53.setPoweredCores(cores);
        const auto &pdn = a53.pdnModel();
        const double f1 = pdn::firstOrderResonanceHz(pdn);
        const Trace load = resonantLoad(pdn, 1.2, duration);

        for (double lat_ns : {0.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
            mitigation::AdaptiveClockParams p;
            p.threshold_below_nominal = 0.015;
            p.response_latency = lat_ns * 1e-9;
            mitigation::AdaptiveClock ac(pdn, p);
            const auto off = ac.runUnmitigated(load);
            const auto on = ac.run(load);
            const double d_off = pdn.params().v_nom - off.min_v_die;
            const double d_on = pdn.params().v_nom - on.min_v_die;
            t.row()
                .cell(static_cast<long>(cores))
                .cell(f1 / mega(1.0), 1)
                .cell(lat_ns, 0)
                .cell(lat_ns * 1e-9 * f1, 2)
                .cell(d_off * 1e3, 1)
                .cell(d_on * 1e3, 1)
                .cell((d_off - d_on) / d_off, 2)
                .cell(on.throttled_fraction, 2)
                .cell(static_cast<long>(on.trip_count));
        }
    }
    a53.setPoweredCores(4);

    t.print("Adaptive clocking under power gating: fewer cores -> "
            "higher f1 -> more noise and a tighter latency budget; "
            "effectiveness decays with latency everywhere");
    bench::saveCsv(t, "ext_adaptive_clock");
    return 0;
}
