/**
 * @file
 * Figure 16 reproduction: the fast EM loop-frequency sweep on the
 * AMD Athlon II X4 645, revealing the 1st-order resonance at 78 MHz
 * — establishing the methodology on an x86-64 desktop CPU.
 */

#include "bench_util.h"
#include "core/resonance_explorer.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig16_amd_sweep.json on exit.
    bench::PerfLog perf_log("fig16_amd_sweep");
    bench::banner("Figure 16",
                  "EM loop-frequency sweep on AMD Athlon II X4 645");

    platform::Platform amd(platform::athlonConfig(), 17);
    core::ResonanceExplorer explorer(amd);
    const std::size_t samples = bench::fullMode() ? 30 : 5;

    const auto points = explorer.sweep(4e-6, samples);

    Table t({"cpu_mhz", "loop_freq_mhz", "em_dbm"});
    for (const auto &p : points) {
        t.row()
            .cell(p.cpu_freq_hz / mega(1.0), 0)
            .cell(p.loop_freq_hz / mega(1.0), 1)
            .cell(p.em_dbm, 2);
    }
    t.print("Figure 16: EM amplitude vs loop frequency (AMD)");
    bench::saveCsv(t, "fig16_amd_sweep");

    Table summary({"metric", "value"});
    summary.row()
        .cell("resonance estimate [MHz]")
        .cell(core::ResonanceExplorer::estimateResonanceHz(points)
                  / mega(1.0),
              1);
    summary.row().cell("paper value [MHz]").cell(78.0, 1);
    summary.row()
        .cell("PDN impedance-analysis resonance [MHz]")
        .cell(pdn::firstOrderResonanceHz(amd.pdnModel()) / mega(1.0),
              2);
    summary.print("Figure 16: summary");
    bench::saveCsv(summary, "fig16_summary");
    return 0;
}
