/**
 * @file
 * Shared infrastructure for the experiment-reproduction binaries: a
 * full/quick run-mode switch, CSV output locations and a cross-bench
 * virus cache (so every figure that needs e.g. the "a72em" virus
 * reuses one GA search).
 *
 * Run modes: by default each bench uses a reduced measurement budget
 * (smaller GA population/generations, fewer spectrum samples) so the
 * whole suite finishes in minutes. Set EMSTRESS_FULL=1 to run the
 * paper's exact budgets (population 50, 60 generations, 30 samples).
 */

#ifndef EMSTRESS_BENCH_BENCH_UTIL_H
#define EMSTRESS_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/virus_generator.h"
#include "platform/platform.h"
#include "util/metrics.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace emstress {
namespace bench {

/** True when EMSTRESS_FULL=1 requests paper-exact budgets. */
inline bool
fullMode()
{
    const char *env = std::getenv("EMSTRESS_FULL");
    return env != nullptr && std::string(env) == "1";
}

/** Output directory for CSVs and cached artifacts. */
inline std::filesystem::path
outputDir()
{
    const std::filesystem::path dir = "bench_out";
    std::filesystem::create_directories(dir);
    return dir;
}

/** Print a banner identifying the experiment. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::cout << "\n=========================================="
                 "====================\n"
              << figure << " — " << description << "\n"
              << "mode: " << (fullMode() ? "FULL (paper budgets)"
                                         : "QUICK (reduced budgets; "
                                           "set EMSTRESS_FULL=1)")
              << "\n==========================================="
                 "===================\n";
}

/** Write a table to CSV in the output dir and note the path. */
inline void
saveCsv(const Table &table, const std::string &stem)
{
    const auto path = outputDir() / (stem + ".csv");
    table.writeCsv(path.string());
    std::cout << "[csv] " << path.string() << "\n";
}

/** GA configuration scaled by run mode (paper: 50 x 60). */
inline ga::GaConfig
gaConfigForMode(std::uint64_t seed)
{
    ga::GaConfig cfg;
    if (fullMode()) {
        cfg.population = 50;
        cfg.generations = 60;
        // The paper seeds populations from previous runs
        // (Section 3.1(a)); restarts exploit that to escape harmonic
        // local optima.
        cfg.restarts = 3;
    } else {
        cfg.population = 32;
        cfg.generations = 30;
        cfg.restarts = 2;
    }
    cfg.kernel_length = 50; // paper: all viruses are 50 instructions
    cfg.seed = seed;
    // Evaluate each generation concurrently on platform clones.
    // Results are bit-identical to serial (threads = 1); override the
    // worker count with EMSTRESS_THREADS.
    cfg.threads = 0;
    return cfg;
}

/** Evaluation settings scaled by run mode (paper: 30 SA samples). */
inline core::EvalSettings
evalForMode()
{
    core::EvalSettings eval;
    eval.duration_s = 4e-6;
    eval.sa_samples = fullMode() ? 30 : 8;
    return eval;
}

/**
 * RAII perf-baseline writer: on destruction, snapshots the global
 * metrics registry and writes `bench_out/BENCH_perf.<bench>.json`
 * (schema documented in EXPERIMENTS.md "Perf baselines"). Construct
 * one at the top of every bench main so the ledger is emitted on
 * every exit path; tools/perfdiff.py compares two such ledgers.
 */
class PerfLog
{
  public:
    explicit PerfLog(std::string bench) : bench_(std::move(bench)) {}
    PerfLog(const PerfLog &) = delete;
    PerfLog &operator=(const PerfLog &) = delete;

    ~PerfLog()
    {
        const auto snap = metrics::Registry::instance().snapshot();
        const auto path =
            outputDir() / ("BENCH_perf." + bench_ + ".json");
        std::ofstream f(path);
        f << metrics::benchPerfJson(bench_,
                                    fullMode() ? "full" : "quick",
                                    resolveThreadCount(0), snap);
        std::cout << "[perf] " << path.string() << "\n";
    }

  private:
    std::string bench_;
};

/**
 * Print the measurement-pipeline counters of a GA search: fresh
 * evaluations vs. cache hits vs. reused elites, worker threads, the
 * parallel speedup over the serial evaluation path, and — when a
 * fault schedule was active — the injected-fault/retry accounting.
 */
inline void
printEvalStats(const ga::EvalStats &stats, const std::string &title)
{
    Table t({"counter", "value"});
    t.row().cell("fresh evaluations").cell(
        static_cast<long>(stats.evals));
    t.row().cell("fitness-cache hits").cell(
        static_cast<long>(stats.cache_hits));
    t.row().cell("elites reused").cell(
        static_cast<long>(stats.elites_reused));
    t.row().cell("worker threads").cell(
        static_cast<long>(stats.threads));
    t.row().cell("samples materialized").cell(
        static_cast<long>(stats.samples_materialized));
    t.row().cell("evaluation wall [s]").cell(stats.wall_seconds, 3);
    t.row().cell("parallel speedup [x]").cell(stats.speedup(), 2);
    if (stats.faults_injected > 0 || stats.permanent_failures > 0) {
        t.row().cell("faults injected").cell(
            static_cast<long>(stats.faults_injected));
        t.row().cell("retries").cell(
            static_cast<long>(stats.retries));
        t.row().cell("permanent failures").cell(
            static_cast<long>(stats.permanent_failures));
        t.row().cell("retry backoff [s]").cell(
            stats.fault_backoff_seconds, 3);
    }
    t.print(title);
}

/** One row of a cached GA progression (Figs. 7/12/17 series). */
struct GaHistoryRow
{
    std::size_t generation = 0;
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
    double dominant_mhz = 0.0;
    double best_droop_mv = 0.0; ///< Post-hoc scope droop of the
                                ///< generation's best (0 when the
                                ///< platform has no visibility).
};

/** A cached or freshly searched virus plus its GA progression. */
struct BenchVirus
{
    core::VirusReport report;
    std::vector<GaHistoryRow> history;
    double lab_seconds = 0.0; ///< Modeled physical search time.
    bool from_cache = false;  ///< Loaded rather than searched.
};

/** Stable FNV-1a 64-bit hash (cache fingerprinting). */
inline std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char ch : s) {
        h ^= static_cast<std::uint64_t>(
            static_cast<unsigned char>(ch));
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Human-readable serialization of every budget-defining field of a
 * virus search. Anything that can change the search *result* must
 * appear here: the cross-bench cache refuses to serve an entry whose
 * recorded fingerprint differs from the requested budget's, so a
 * reduced-budget (quick) artifact can never masquerade as a
 * paper-budget (full) one — and a cache populated before a default
 * budget changed is invalidated instead of silently reused.
 */
inline std::string
budgetDescription(const core::VirusSearchConfig &cfg)
{
    std::ostringstream os;
    os.precision(17);
    os << "ga:" << cfg.ga.population << 'x' << cfg.ga.generations
       << ":len" << cfg.ga.kernel_length
       << ":mut" << cfg.ga.mutation_rate
       << ":op" << cfg.ga.operand_mutation_ratio
       << ":tk" << cfg.ga.tournament_k
       << ":el" << cfg.ga.elite
       << ":seed" << cfg.ga.seed
       << ":rs" << cfg.ga.restarts
       << "|eval:dur" << cfg.eval.duration_s
       << ":sa" << cfg.eval.sa_samples
       << ":f" << cfg.eval.f_lo_hz << '-' << cfg.eval.f_hi_hz
       << ":cores" << cfg.eval.active_cores
       << ":stream" << (cfg.eval.streaming ? 1 : 0)
       << "|metric:" << core::virusMetricName(cfg.metric);
    return os.str();
}

/** Budget fingerprint: the hash the cache keys entries on. */
inline std::uint64_t
budgetFingerprint(const core::VirusSearchConfig &cfg)
{
    return fnv1a64(budgetDescription(cfg));
}

/** Mode-suffixed cache stem of a named virus. */
inline std::string
virusCacheStem(const std::string &name, bool full)
{
    return name + (full ? ".full" : ".quick");
}

/**
 * True when a cached virus at dir/stem exists AND its recorded
 * budget fingerprint matches: kernel, history and meta sidecar all
 * present, meta's fingerprint equal to `fingerprint`. Entries
 * written before the meta sidecar existed never match.
 */
inline bool
cachedVirusServes(const std::filesystem::path &dir,
                  const std::string &stem, std::uint64_t fingerprint)
{
    namespace fs = std::filesystem;
    if (!fs::exists(dir / (stem + ".kernel"))
        || !fs::exists(dir / (stem + ".history"))
        || !fs::exists(dir / (stem + ".meta")))
        return false;
    std::ifstream mf(dir / (stem + ".meta"));
    std::string tag;
    std::uint64_t recorded = 0;
    if (!(mf >> tag >> std::hex >> recorded) || tag != "fingerprint")
        return false;
    return recorded == fingerprint;
}

/**
 * Fetch a virus from the cross-bench cache at `dir`, or run the GA
 * search and cache the result (kernel + GA progression + budget-meta
 * sidecars). The cache key is the stem (mode-suffixed by callers,
 * see virusCacheStem) AND the budget fingerprint: any entry whose
 * recorded fingerprint differs from `cfg`'s — other mode, other GA
 * budget, other eval settings, pre-fingerprint era — is treated as
 * stale, deleted, and re-searched.
 *
 * @param dir      Cache directory.
 * @param stem     Cache stem, e.g. "a72em.quick".
 * @param plat     Target platform (frequency/power state must
 *                 already be configured).
 * @param cfg      Full search configuration (budget + metric).
 * @param progress Optional per-generation observer.
 */
inline BenchVirus
searchOrLoadVirus(const std::filesystem::path &dir,
                  const std::string &stem, platform::Platform &plat,
                  const core::VirusSearchConfig &cfg,
                  const ga::GenerationCallback &progress = nullptr)
{
    namespace fs = std::filesystem;
    const auto path = dir / (stem + ".kernel");
    const auto hist_path = dir / (stem + ".history");
    const auto meta_path = dir / (stem + ".meta");
    const std::uint64_t fingerprint = budgetFingerprint(cfg);
    auto &reg = metrics::Registry::instance();

    core::VirusGenerator gen(plat);
    if (cachedVirusServes(dir, stem, fingerprint)) {
        reg.add("bench.virus_cache.hits");
        std::ifstream f(path);
        std::ostringstream buf;
        buf << f.rdbuf();
        const auto kernel =
            isa::Kernel::deserialize(plat.pool(), buf.str());
        std::cout << "[cache] reusing virus '" << stem << "' from "
                  << path.string() << "\n";
        BenchVirus out;
        out.from_cache = true;
        out.report = gen.characterize(kernel, cfg.eval);
        out.report.metric = core::virusMetricName(cfg.metric);

        std::ifstream hf(hist_path);
        hf >> out.lab_seconds;
        GaHistoryRow row;
        while (hf >> row.generation >> row.best_fitness
               >> row.mean_fitness >> row.dominant_mhz
               >> row.best_droop_mv) {
            out.history.push_back(row);
        }
        return out;
    }

    if (fs::exists(path) || fs::exists(hist_path)
        || fs::exists(meta_path)) {
        // Same stem, different (or unrecorded) budget: the entry
        // would silently stand in for a search it never ran.
        reg.add("bench.virus_cache.invalidations");
        std::cout << "[cache] stale virus '" << stem
                  << "' (budget fingerprint mismatch); "
                     "re-searching\n";
        fs::remove(path);
        fs::remove(hist_path);
        fs::remove(meta_path);
    }
    reg.add("bench.virus_cache.misses");

    std::cout << "[ga] searching virus '" << stem << "' ("
              << core::virusMetricName(cfg.metric) << ", "
              << cfg.ga.population << " x " << cfg.ga.generations
              << ")...\n";
    BenchVirus out;
    {
        metrics::ScopedPhase search_span("bench.virus_search");
        out.report = gen.search(cfg, progress);
    }
    out.lab_seconds = out.report.ga.estimated_lab_seconds;

    // Build the progression rows; re-measure each generation's best
    // on the scope where one exists (the paper's Fig. 7 procedure).
    for (const auto &rec : out.report.ga.history) {
        GaHistoryRow row;
        row.generation = rec.generation;
        row.best_fitness = rec.best_fitness;
        row.mean_fitness = rec.mean_fitness;
        row.dominant_mhz = rec.best_detail.dominant_freq_hz / 1e6;
        if (plat.hasVoltageVisibility()) {
            const auto run =
                plat.runKernel(rec.best, cfg.eval.duration_s);
            const Trace cap = plat.scope().capture(run.v_die);
            row.best_droop_mv = instruments::Oscilloscope::maxDroop(
                                    cap, plat.voltage())
                * 1e3;
        }
        out.history.push_back(row);
    }

    std::ofstream f(path);
    f << out.report.virus.serialize(plat.pool());
    std::ofstream hf(hist_path);
    hf << out.lab_seconds << "\n";
    for (const auto &row : out.history) {
        hf << row.generation << ' ' << row.best_fitness << ' '
           << row.mean_fitness << ' ' << row.dominant_mhz << ' '
           << row.best_droop_mv << "\n";
    }
    std::ofstream mf(meta_path);
    mf << "fingerprint " << std::hex << fingerprint << std::dec
       << "\nbudget " << budgetDescription(cfg) << "\n";
    std::cout << "[cache] saved virus '" << stem << "' to "
              << path.string() << "\n";
    return out;
}

/**
 * Fetch a virus from the cross-bench cache, or run the GA search and
 * cache the result. Mode-scaled budgets; progress is logged every
 * five generations.
 *
 * @param plat   Target platform (frequency/power state must already
 *               be configured).
 * @param name   Cache key, e.g. "a72em" (mode- and budget-keyed
 *               internally).
 * @param metric Feedback metric for the search.
 * @param seed   GA seed.
 */
inline BenchVirus
getOrSearchVirus(platform::Platform &plat, const std::string &name,
                 core::VirusMetric metric, std::uint64_t seed)
{
    core::VirusSearchConfig cfg;
    cfg.ga = gaConfigForMode(seed);
    cfg.eval = evalForMode();
    cfg.metric = metric;
    return searchOrLoadVirus(
        outputDir(), virusCacheStem(name, fullMode()), plat, cfg,
        [](const ga::GenerationRecord &rec) {
            if (rec.generation % 5 == 0) {
                std::printf("  gen %2zu  best %.2f  mean %.2f  "
                            "dom %.1f MHz\n",
                            rec.generation, rec.best_fitness,
                            rec.mean_fitness,
                            rec.best_detail.dominant_freq_hz / 1e6);
            }
        });
}

} // namespace bench
} // namespace emstress

#endif // EMSTRESS_BENCH_BENCH_UTIL_H
