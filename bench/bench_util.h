/**
 * @file
 * Shared infrastructure for the experiment-reproduction binaries: a
 * full/quick run-mode switch, CSV output locations and a cross-bench
 * virus cache (so every figure that needs e.g. the "a72em" virus
 * reuses one GA search).
 *
 * Run modes: by default each bench uses a reduced measurement budget
 * (smaller GA population/generations, fewer spectrum samples) so the
 * whole suite finishes in minutes. Set EMSTRESS_FULL=1 to run the
 * paper's exact budgets (population 50, 60 generations, 30 samples).
 */

#ifndef EMSTRESS_BENCH_BENCH_UTIL_H
#define EMSTRESS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/virus_generator.h"
#include "platform/platform.h"
#include "util/table.h"

namespace emstress {
namespace bench {

/** True when EMSTRESS_FULL=1 requests paper-exact budgets. */
inline bool
fullMode()
{
    const char *env = std::getenv("EMSTRESS_FULL");
    return env != nullptr && std::string(env) == "1";
}

/** Output directory for CSVs and cached artifacts. */
inline std::filesystem::path
outputDir()
{
    const std::filesystem::path dir = "bench_out";
    std::filesystem::create_directories(dir);
    return dir;
}

/** Print a banner identifying the experiment. */
inline void
banner(const std::string &figure, const std::string &description)
{
    std::cout << "\n=========================================="
                 "====================\n"
              << figure << " — " << description << "\n"
              << "mode: " << (fullMode() ? "FULL (paper budgets)"
                                         : "QUICK (reduced budgets; "
                                           "set EMSTRESS_FULL=1)")
              << "\n==========================================="
                 "===================\n";
}

/** Write a table to CSV in the output dir and note the path. */
inline void
saveCsv(const Table &table, const std::string &stem)
{
    const auto path = outputDir() / (stem + ".csv");
    table.writeCsv(path.string());
    std::cout << "[csv] " << path.string() << "\n";
}

/** GA configuration scaled by run mode (paper: 50 x 60). */
inline ga::GaConfig
gaConfigForMode(std::uint64_t seed)
{
    ga::GaConfig cfg;
    if (fullMode()) {
        cfg.population = 50;
        cfg.generations = 60;
        // The paper seeds populations from previous runs
        // (Section 3.1(a)); restarts exploit that to escape harmonic
        // local optima.
        cfg.restarts = 3;
    } else {
        cfg.population = 32;
        cfg.generations = 30;
        cfg.restarts = 2;
    }
    cfg.kernel_length = 50; // paper: all viruses are 50 instructions
    cfg.seed = seed;
    // Evaluate each generation concurrently on platform clones.
    // Results are bit-identical to serial (threads = 1); override the
    // worker count with EMSTRESS_THREADS.
    cfg.threads = 0;
    return cfg;
}

/** Evaluation settings scaled by run mode (paper: 30 SA samples). */
inline core::EvalSettings
evalForMode()
{
    core::EvalSettings eval;
    eval.duration_s = 4e-6;
    eval.sa_samples = fullMode() ? 30 : 8;
    return eval;
}

/**
 * Print the measurement-pipeline counters of a GA search: fresh
 * evaluations vs. cache hits vs. reused elites, worker threads, the
 * parallel speedup over the serial evaluation path, and — when a
 * fault schedule was active — the injected-fault/retry accounting.
 */
inline void
printEvalStats(const ga::EvalStats &stats, const std::string &title)
{
    Table t({"counter", "value"});
    t.row().cell("fresh evaluations").cell(
        static_cast<long>(stats.evals));
    t.row().cell("fitness-cache hits").cell(
        static_cast<long>(stats.cache_hits));
    t.row().cell("elites reused").cell(
        static_cast<long>(stats.elites_reused));
    t.row().cell("worker threads").cell(
        static_cast<long>(stats.threads));
    t.row().cell("samples materialized").cell(
        static_cast<long>(stats.samples_materialized));
    t.row().cell("evaluation wall [s]").cell(stats.wall_seconds, 3);
    t.row().cell("parallel speedup [x]").cell(stats.speedup(), 2);
    if (stats.faults_injected > 0 || stats.permanent_failures > 0) {
        t.row().cell("faults injected").cell(
            static_cast<long>(stats.faults_injected));
        t.row().cell("retries").cell(
            static_cast<long>(stats.retries));
        t.row().cell("permanent failures").cell(
            static_cast<long>(stats.permanent_failures));
        t.row().cell("retry backoff [s]").cell(
            stats.fault_backoff_seconds, 3);
    }
    t.print(title);
}

/** One row of a cached GA progression (Figs. 7/12/17 series). */
struct GaHistoryRow
{
    std::size_t generation = 0;
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
    double dominant_mhz = 0.0;
    double best_droop_mv = 0.0; ///< Post-hoc scope droop of the
                                ///< generation's best (0 when the
                                ///< platform has no visibility).
};

/** A cached or freshly searched virus plus its GA progression. */
struct BenchVirus
{
    core::VirusReport report;
    std::vector<GaHistoryRow> history;
    double lab_seconds = 0.0; ///< Modeled physical search time.
};

/**
 * Fetch a virus from the cross-bench cache, or run the GA search and
 * cache the result (kernel + GA progression sidecar). Progress is
 * logged per generation.
 *
 * @param plat   Target platform (frequency/power state must already
 *               be configured).
 * @param name   Cache key, e.g. "a72em" (mode-suffixed internally).
 * @param metric Feedback metric for the search.
 * @param seed   GA seed.
 */
inline BenchVirus
getOrSearchVirus(platform::Platform &plat, const std::string &name,
                 core::VirusMetric metric, std::uint64_t seed)
{
    const std::string suffix = fullMode() ? ".full" : ".quick";
    const auto path = outputDir() / (name + suffix + ".kernel");
    const auto hist_path = outputDir() / (name + suffix + ".history");

    core::VirusGenerator gen(plat);
    if (std::filesystem::exists(path)
        && std::filesystem::exists(hist_path)) {
        std::ifstream f(path);
        std::ostringstream buf;
        buf << f.rdbuf();
        const auto kernel =
            isa::Kernel::deserialize(plat.pool(), buf.str());
        std::cout << "[cache] reusing virus '" << name << "' from "
                  << path.string() << "\n";
        BenchVirus out;
        out.report = gen.characterize(kernel, evalForMode());
        out.report.metric = core::virusMetricName(metric);

        std::ifstream hf(hist_path);
        hf >> out.lab_seconds;
        GaHistoryRow row;
        while (hf >> row.generation >> row.best_fitness
               >> row.mean_fitness >> row.dominant_mhz
               >> row.best_droop_mv) {
            out.history.push_back(row);
        }
        return out;
    }

    core::VirusSearchConfig cfg;
    cfg.ga = gaConfigForMode(seed);
    cfg.eval = evalForMode();
    cfg.metric = metric;
    std::cout << "[ga] searching virus '" << name << "' ("
              << core::virusMetricName(metric) << ", "
              << cfg.ga.population << " x " << cfg.ga.generations
              << ")...\n";
    BenchVirus out;
    out.report =
        gen.search(cfg, [](const ga::GenerationRecord &rec) {
            if (rec.generation % 5 == 0) {
                std::printf("  gen %2zu  best %.2f  mean %.2f  "
                            "dom %.1f MHz\n",
                            rec.generation, rec.best_fitness,
                            rec.mean_fitness,
                            rec.best_detail.dominant_freq_hz / 1e6);
            }
        });
    out.lab_seconds = out.report.ga.estimated_lab_seconds;

    // Build the progression rows; re-measure each generation's best
    // on the scope where one exists (the paper's Fig. 7 procedure).
    for (const auto &rec : out.report.ga.history) {
        GaHistoryRow row;
        row.generation = rec.generation;
        row.best_fitness = rec.best_fitness;
        row.mean_fitness = rec.mean_fitness;
        row.dominant_mhz = rec.best_detail.dominant_freq_hz / 1e6;
        if (plat.hasVoltageVisibility()) {
            const auto run =
                plat.runKernel(rec.best, evalForMode().duration_s);
            const Trace cap = plat.scope().capture(run.v_die);
            row.best_droop_mv = instruments::Oscilloscope::maxDroop(
                                    cap, plat.voltage())
                * 1e3;
        }
        out.history.push_back(row);
    }

    std::ofstream f(path);
    f << out.report.virus.serialize(plat.pool());
    std::ofstream hf(hist_path);
    hf << out.lab_seconds << "\n";
    for (const auto &row : out.history) {
        hf << row.generation << ' ' << row.best_fitness << ' '
           << row.mean_fitness << ' ' << row.dominant_mhz << ' '
           << row.best_droop_mv << "\n";
    }
    std::cout << "[cache] saved virus '" << name << "' to "
              << path.string() << "\n";
    return out;
}

} // namespace bench
} // namespace emstress

#endif // EMSTRESS_BENCH_BENCH_UTIL_H
