/**
 * @file
 * Figure 12 reproduction: the EM-amplitude-driven GA on the
 * Cortex-A53 — the cluster with *no* voltage-noise visibility, where
 * only the EM methodology can generate a virus. The GA maximizes EM
 * amplitude and converges to a dominant frequency of ~75 MHz.
 */

#include "bench_util.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig12_ga_a53.json on exit.
    bench::PerfLog perf_log("fig12_ga_a53");
    bench::banner("Figure 12",
                  "EM-driven GA on Cortex-A53 (no voltage "
                  "visibility)");

    platform::Platform a53(platform::junoA53Config(), 12);
    // There is no scope on this domain: the droop column of Fig. 7
    // is impossible here, which is exactly the paper's point.
    const auto found = bench::getOrSearchVirus(
        a53, "a53em", core::VirusMetric::EmAmplitude, 53);

    const auto &report = found.report;
    Table t({"generation", "best_em_dbm", "mean_em_dbm",
             "dominant_mhz"});
    for (const auto &row : found.history) {
        t.row()
            .cell(static_cast<long>(row.generation))
            .cell(row.best_fitness, 2)
            .cell(row.mean_fitness, 2)
            .cell(row.dominant_mhz, 2);
    }
    t.print("Figure 12: GA progression (Cortex-A53, quad core)");
    bench::saveCsv(t, "fig12_ga_a53");

    Table summary({"metric", "value"});
    summary.row()
        .cell("final dominant frequency [MHz]")
        .cell(report.dominant_freq_hz / mega(1.0), 2);
    summary.row().cell("paper value [MHz]").cell(75.0, 1);
    summary.row()
        .cell("PDN 1st-order resonance (4 cores) [MHz]")
        .cell(pdn::firstOrderResonanceHz(a53.pdnModel()) / mega(1.0),
              2);
    summary.row()
        .cell("virus loop frequency [MHz]")
        .cell(report.loop_freq_hz / mega(1.0), 2);
    summary.row().cell("virus IPC").cell(report.ipc, 2);
    summary.print("Figure 12: convergence summary");
    bench::saveCsv(summary, "fig12_summary");

    if (report.ga.eval_stats.evals > 0)
        bench::printEvalStats(report.ga.eval_stats,
                              "Figure 12: evaluation pipeline");
    return 0;
}
