/**
 * @file
 * Extension study: running the EM methodology through a cheap
 * SDR dongle instead of the bench spectrum analyzer (the paper notes
 * "cheaper commercial software-defined radio receivers should also
 * work"). Compares resonance detection and received-level agreement
 * between the Agilent-class analyzer model and an RTL-SDR-class
 * receiver, across antenna distances.
 */

#include "bench_util.h"
#include "core/resonance_explorer.h"
#include "core/resonant_kernel.h"
#include "instruments/sdr_receiver.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.ext_sdr.json on exit.
    bench::PerfLog perf_log("ext_sdr");
    bench::banner("Extension: SDR receiver",
                  "methodology through an RTL-SDR-class dongle vs "
                  "the bench spectrum analyzer");

    platform::Platform a72(platform::junoA72Config(), 25);
    instruments::SdrReceiver sdr(instruments::SdrParams{}, Rng(55));

    // Resonance detection comparison over several kernels.
    Table t({"kernel", "sa_marker_mhz", "sa_dbm", "sdr_marker_mhz",
             "sdr_dbm"});
    for (double f : {55e6, 67e6, 80e6, 100e6}) {
        const auto kernel = core::makeResonantKernelFor(
            a72.pool(), a72.frequency(), f);
        const auto run = a72.runKernel(kernel, 4e-6);
        const auto sa = a72.analyzer().averagedMaxAmplitude(
            run.em, mega(50.0), mega(200.0), 5);
        const auto sd =
            sdr.scanMaxAmplitude(run.em, mega(50.0), mega(200.0));
        std::ostringstream name;
        name << "resonant-" << f / 1e6 << "MHz";
        t.row()
            .cell(name.str())
            .cell(sa.freq_hz / mega(1.0), 2)
            .cell(sa.power_dbm, 1)
            .cell(sd.freq_hz / mega(1.0), 2)
            .cell(sd.power_dbm, 1);
    }
    t.print("SDR vs spectrum analyzer: marker agreement");
    bench::saveCsv(t, "ext_sdr_markers");

    // Distance sensitivity: the near-field falloff limits how far a
    // cheap receiver can sit.
    Table d({"distance_cm", "sdr_dbm_at_resonance",
             "above_noise_floor_db"});
    const auto kernel = core::makeResonantKernelFor(
        a72.pool(), a72.frequency(),
        pdn::firstOrderResonanceHz(a72.pdnModel()));
    const auto base = a72.runKernel(kernel, 4e-6);
    const double noise_dbm = wattsToDbm(
        kBoltzmann * kRoomTempKelvin * 2.4e6
        * dbToPowerRatio(8.0)); // SDR band noise
    for (double cm : {3.0, 5.0, 7.0, 10.0, 15.0, 25.0}) {
        const Trace em =
            a72.antenna().receive(base.i_die, cm / 100.0);
        const auto m =
            sdr.scanMaxAmplitude(em, mega(50.0), mega(200.0));
        d.row()
            .cell(cm, 0)
            .cell(m.power_dbm, 1)
            .cell(m.power_dbm - noise_dbm, 1);
    }
    d.print("SDR signal headroom vs antenna distance (near-field "
            "1/d^3 falloff)");
    bench::saveCsv(d, "ext_sdr_distance");
    return 0;
}
