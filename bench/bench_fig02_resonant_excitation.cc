/**
 * @file
 * Figure 2 reproduction: pulsing I_LOAD at the 1st-order resonance
 * sets off large-magnitude oscillations in both V_DIE and I_DIE —
 * the HSPICE experiment that grounds the paper's EM theory. The
 * bench reports the oscillation envelope at resonance versus
 * detuned excitation.
 */

#include "bench_util.h"
#include "pdn/resonance.h"
#include "util/stats.h"
#include "util/units.h"

using namespace emstress;

namespace {

struct Row
{
    double freq_hz;
    double v_pp_mv;
    double i_pp_a;
};

Row
excite(const pdn::PdnModel &model, double freq)
{
    const auto sim = model.squareWaveResponse(freq, 1.0, 0.25e-9, 4e-6);
    const auto half_v =
        sim.v_die.slice(sim.v_die.size() / 2, sim.v_die.size() / 2);
    const auto half_i =
        sim.i_die.slice(sim.i_die.size() / 2, sim.i_die.size() / 2);
    return {freq, stats::peakToPeak(half_v.samples()) * 1e3,
            stats::peakToPeak(half_i.samples())};
}

} // namespace

int
main()
{
    // Emits bench_out/BENCH_perf.fig02_resonant_excitation.json on exit.
    bench::PerfLog perf_log("fig02_resonant_excitation");
    bench::banner("Figure 2",
                  "resonant I_LOAD pulsing maximizes V_DIE and I_DIE "
                  "oscillation");

    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &model = a72.pdnModel();
    const double f1 = pdn::firstOrderResonanceHz(model);

    Table t({"excitation_mhz", "relative_to_f1", "v_die_pp_mv",
             "i_die_pp_a"});
    for (double rel : {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.33, 2.0,
                       3.0}) {
        const auto row = excite(model, f1 * rel);
        t.row()
            .cell(row.freq_hz / mega(1.0), 2)
            .cell(rel, 2)
            .cell(row.v_pp_mv, 2)
            .cell(row.i_pp_a, 3);
    }
    t.print("Figure 2: steady-state oscillation vs excitation "
            "frequency (1 A square wave)");
    bench::saveCsv(t, "fig02_resonant_excitation");

    // Envelope growth at resonance over the first microsecond: the
    // oscillation builds up cycle over cycle (Fig. 2's waveform).
    const auto sim =
        model.squareWaveResponse(f1, 1.0, 0.25e-9, 1.2e-6);
    Table env({"time_ns", "v_envelope_mv"});
    const std::size_t chunk = sim.v_die.size() / 12;
    for (std::size_t k = 0; k + chunk <= sim.v_die.size();
         k += chunk) {
        const auto part = sim.v_die.slice(k, chunk);
        env.row()
            .cell(sim.v_die.timeAt(k) * 1e9, 1)
            .cell(stats::peakToPeak(part.samples()) * 1e3, 2);
    }
    env.print("Figure 2: V_DIE oscillation envelope build-up at "
              "resonance");
    bench::saveCsv(env, "fig02_envelope");
    return 0;
}
