/**
 * @file
 * Figure 18 reproduction: V_MIN and voltage noise on the AMD CPU —
 * desktop applications (Blender, Cinebench, Euler3D, WEBXPRT,
 * GeekBench), the Prime95 and AMD-Overdrive stability tests, and the
 * two GA viruses (EM-driven and Kelvin-scope-driven). The viruses
 * cause much higher noise and V_MIN; the paper's EM virus reaches
 * V_MIN = 1.3625 V (37.5 mV below the 1.4 V nominal), and even a
 * two-core EM virus beats four-core Prime95.
 */

#include "bench_util.h"
#include "core/vmin_tester.h"
#include "util/units.h"
#include "workloads/workload.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig18_vmin_amd.json on exit.
    bench::PerfLog perf_log("fig18_vmin_amd");
    bench::banner("Figure 18",
                  "V_MIN and voltage noise on the AMD Athlon II X4 "
                  "645");

    platform::Platform amd(platform::athlonConfig(), 19);
    auto cfg = core::defaultVminConfig(amd);
    core::VminTester tester(amd, cfg);

    Table t({"workload", "active_cores", "vmin_v", "margin_mv",
             "max_droop_mv", "failure"});
    auto add = [&t](const core::VminRow &row, std::size_t cores) {
        t.row()
            .cell(row.workload)
            .cell(static_cast<long>(cores))
            .cell(row.vmin_v, 4)
            .cell(row.margin_v * 1e3, 1)
            .cell(row.max_droop_v * 1e3, 1)
            .cell(row.failure);
    };

    const auto suite = workloads::desktopSuite();
    for (const char *name : {"blender", "cinebench", "euler3d",
                             "webxprt", "geekbench", "prime95",
                             "amd_stab"}) {
        add(tester.testWorkload(workloads::findProfile(suite, name),
                                2),
            4);
    }

    const auto em_virus = bench::getOrSearchVirus(
        amd, "amdem", core::VirusMetric::EmAmplitude, 64);
    add(tester.testKernel("amdEm virus", em_virus.report.virus, 30),
        4);

    const auto osc_virus = bench::getOrSearchVirus(
        amd, "amdosc", core::VirusMetric::PeakToPeak, 65);
    add(tester.testKernel("amdOsc virus", osc_virus.report.virus,
                          30),
        4);

    // The paper's standout: the EM virus on only TWO active cores is
    // still more severe than four-core stability tests.
    {
        auto two_core_cfg = cfg;
        two_core_cfg.active_cores = 2;
        core::VminTester two(amd, two_core_cfg);
        add(two.testKernel("amdEm virus (2 cores)",
                           em_virus.report.virus, 30),
            2);
    }

    t.print("Figure 18: V_MIN / noise on AMD (viruses on top; paper "
            "EM-virus V_MIN 1.3625 V, 37.5 mV margin; 2-core virus "
            "beats 4-core Prime95)");
    bench::saveCsv(t, "fig18_vmin_amd");
    return 0;
}
