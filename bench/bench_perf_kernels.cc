/**
 * @file
 * google-benchmark microbenchmarks for the simulation hot paths: the
 * FFT, the PDN transient step loop, the core model, the antenna
 * coupling and one full GA fitness evaluation. These bound the cost
 * of a GA search (evaluations/second) the way measurement latency
 * bounds the paper's physical flow.
 */

#include <sys/resource.h>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/fitness.h"
#include "core/resonant_kernel.h"
#include "dsp/fft.h"
#include "dsp/spectrum.h"
#include "em/antenna.h"
#include "platform/platform.h"
#include "util/rng.h"

using namespace emstress;

namespace {

void
BM_FftReal(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    std::vector<double> sig(n);
    for (auto &v : sig)
        v = rng.uniform(-1.0, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::fftReal(sig));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FftReal)->Arg(4096)->Arg(16384)->Arg(65536);

void
BM_ComputeSpectrum(benchmark::State &state)
{
    Rng rng(2);
    Trace t(0.25e-9);
    for (int i = 0; i < 16384; ++i)
        t.push(rng.gaussian(0.0, 1.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(dsp::computeSpectrum(t));
}
BENCHMARK(BM_ComputeSpectrum);

void
BM_PdnTransient(benchmark::State &state)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    Rng rng(3);
    Trace load(0.25e-9);
    const auto steps = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < steps; ++i)
        load.push(0.5 + 0.5 * rng.uniform(0.0, 1.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(a72.pdnModel().simulate(load));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PdnTransient)->Arg(4000)->Arg(16000);

void
BM_CoreModelLoop(benchmark::State &state)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    uarch::CoreModel core(a72.config().core);
    const auto kernel =
        core::makeResonantKernelFor(a72.pool(), 1.2e9, 67e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core.runLoop(a72.pool(), kernel, 1.2e9, 4e-6));
    }
}
BENCHMARK(BM_CoreModelLoop);

void
BM_AntennaReceive(benchmark::State &state)
{
    em::Antenna antenna{em::AntennaParams{}};
    Rng rng(4);
    Trace i_die(0.25e-9);
    for (int i = 0; i < 16000; ++i)
        i_die.push(rng.gaussian(1.0, 0.2));
    for (auto _ : state)
        benchmark::DoNotOptimize(antenna.receive(i_die, 0.07));
}
BENCHMARK(BM_AntennaReceive);

/** Full platform run, batch-trace oracle path. */
void
BM_PlatformRunKernelBatch(benchmark::State &state)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto kernel =
        core::makeResonantKernelFor(a72.pool(), 1.2e9, 67e6);
    for (auto _ : state)
        benchmark::DoNotOptimize(a72.runKernelBatch(kernel, 4e-6));
}
BENCHMARK(BM_PlatformRunKernelBatch);

/** Full platform run through the streaming pipeline (trace sinks). */
void
BM_PlatformRunKernelStreaming(benchmark::State &state)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto kernel =
        core::makeResonantKernelFor(a72.pool(), 1.2e9, 67e6);
    for (auto _ : state)
        benchmark::DoNotOptimize(a72.runKernel(kernel, 4e-6));
}
BENCHMARK(BM_PlatformRunKernelStreaming);

/** Mean-bias pass alone (streamKernel with no observers). */
void
BM_PlatformStreamMeanPass(benchmark::State &state)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto kernel =
        core::makeResonantKernelFor(a72.pool(), 1.2e9, 67e6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a72.streamKernel(
            kernel, 4e-6, [](const platform::StreamPlan &) {
                return platform::StreamObservers{};
            }));
    }
}
BENCHMARK(BM_PlatformStreamMeanPass);

/** Process peak RSS high-water mark in MiB. */
double
peakRssMib()
{
    rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/**
 * One full EM fitness evaluation, streaming (Arg 1) vs the
 * batch-trace oracle (Arg 0). Besides wall time, reports the
 * full-rate samples buffered per evaluation and the growth of the
 * process peak RSS across the bench — the streaming path should
 * buffer nothing and leave the high-water mark where it found it.
 * Registered streaming-first so the batch path's trace buffers do
 * not pollute the streaming reading.
 */
void
BM_FullEmFitnessEvaluation(benchmark::State &state)
{
    const bool streaming = state.range(0) != 0;
    platform::Platform a72(platform::junoA72Config(), 1);
    core::EvalSettings eval;
    eval.duration_s = 4e-6;
    eval.sa_samples = 30;
    eval.streaming = streaming;
    core::EmAmplitudeFitness fitness(a72, eval);
    Rng rng(5);
    const auto kernel = isa::Kernel::random(a72.pool(), 50, rng);
    const double rss_before = peakRssMib();
    ga::EvalDetail detail;
    for (auto _ : state)
        benchmark::DoNotOptimize(fitness.evaluate(kernel, &detail));
    state.SetLabel(streaming ? "streaming" : "batch");
    state.counters["samples_buffered"] =
        static_cast<double>(detail.samples_materialized);
    state.counters["peak_rss_growth_mib"] = peakRssMib() - rss_before;
}
BENCHMARK(BM_FullEmFitnessEvaluation)->Arg(1)->Arg(0);

/** Scope-droop fitness evaluation, streaming vs batch (as above). */
void
BM_FullDroopFitnessEvaluation(benchmark::State &state)
{
    const bool streaming = state.range(0) != 0;
    platform::Platform a72(platform::junoA72Config(), 1);
    core::EvalSettings eval;
    eval.duration_s = 4e-6;
    eval.streaming = streaming;
    core::MaxDroopFitness fitness(a72, eval);
    Rng rng(6);
    const auto kernel = isa::Kernel::random(a72.pool(), 50, rng);
    const double rss_before = peakRssMib();
    ga::EvalDetail detail;
    for (auto _ : state)
        benchmark::DoNotOptimize(fitness.evaluate(kernel, &detail));
    state.SetLabel(streaming ? "streaming" : "batch");
    state.counters["samples_buffered"] =
        static_cast<double>(detail.samples_materialized);
    state.counters["peak_rss_growth_mib"] = peakRssMib() - rss_before;
}
BENCHMARK(BM_FullDroopFitnessEvaluation)->Arg(1)->Arg(0);

} // namespace

// Expanded BENCHMARK_MAIN() so the run also emits the
// bench_out/BENCH_perf.perf_kernels.json ledger: the microbenchmark
// bodies drive the instrumented hot paths (transient steps, stream
// runs, SA band evaluations), and the PerfLog destructor snapshots
// those counters after the last repetition.
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bench::PerfLog perf_log("perf_kernels");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
