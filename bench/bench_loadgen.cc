/**
 * @file
 * Load generator for the virus-search service: drives hundreds of
 * concurrent jobs from multiple tenants through a SearchService (auto
 * fleet width, multiple runner threads, weighted-fair queuing) with a
 * cheap synthetic evaluator, then reports p50/p95/p99 queue-wait and
 * job-latency percentiles (overall and per job class) from the
 * service's fixed-bucket histograms plus a duplicate-spec round that
 * exercises the artifact store and a restart round that rebuilds the
 * service over the same spill directory and must serve duplicates
 * from the disk tier alone.
 *
 * The job mix is two-class: every third job is kInteractive with a
 * deadline, the rest are kBatch, so the per-class latency ledger and
 * the deadline_met/deadline_missed counters carry signal.
 *
 * The point is scheduler and transport behavior under contention —
 * admission, fairness, priority classes, artifact serving, restart
 * recovery — not platform simulation throughput, hence the synthetic
 * fitness. Results land in the
 * emstress-bench-perf-v1 ledger (bench_out/BENCH_perf.
 * loadgen_service.json) with the percentiles as gauges, compared
 * against bench/baselines/ by tools/perfdiff.py. Latency percentiles
 * are host-dependent (generous tolerance in perfdiff_tolerances.json);
 * the job/artifact counters are exact.
 */

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ga/ga_engine.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "util/metrics.h"
#include "util/table.h"

namespace emstress {
namespace bench {
namespace {

/** Cheap, pure, cloneable fitness (kernel-derived only), so the
 * bench measures scheduling, not simulation. */
class LoadgenFitness : public ga::FitnessEvaluator
{
  public:
    explicit LoadgenFitness(const isa::InstructionPool &pool)
        : pool_(pool)
    {}

    double
    evaluate(const isa::Kernel &kernel,
             ga::EvalDetail *detail) override
    {
        const double mix =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        const double ripple =
            static_cast<double>(kernel.hash() % 2048) / 8192.0;
        if (detail != nullptr) {
            detail->metric_raw = mix + ripple;
            detail->measurement_seconds = 1.0;
            detail->dominant_freq_hz = 1e8 * (1.0 + ripple);
        }
        return mix + ripple;
    }

    std::string metricName() const override { return "loadgen"; }

    std::unique_ptr<ga::FitnessEvaluator>
    clone() const override
    {
        return std::make_unique<LoadgenFitness>(pool_);
    }

  private:
    const isa::InstructionPool &pool_;
};

/**
 * Percentile estimate from a fixed-bucket latency histogram: the
 * upper edge of the bucket holding the q-quantile sample (the
 * overflow bucket reports the largest finite edge — a lower bound).
 */
double
percentileSeconds(const metrics::HistogramSnapshot &hist, double q)
{
    if (hist.count == 0)
        return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(hist.count - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        seen += hist.buckets[b];
        if (seen > rank) {
            const std::size_t edge =
                b < metrics::LatencyBuckets::kFiniteEdges
                    ? b
                    : metrics::LatencyBuckets::kFiniteEdges - 1;
            return metrics::LatencyBuckets::bucketEdge(edge);
        }
    }
    return metrics::LatencyBuckets::bucketEdge(
        metrics::LatencyBuckets::kFiniteEdges - 1);
}

/** The job mix: four tenants with 4:2:1:1 fair-share weights. */
struct TenantPlan
{
    const char *name;
    double weight;
};

constexpr TenantPlan kTenants[] = {{"alpha", 4.0},
                                   {"bravo", 2.0},
                                   {"charlie", 1.0},
                                   {"delta", 1.0}};

service::JobSpec
loadgenSpec(const std::string &tenant, std::uint64_t seed)
{
    service::JobSpec spec;
    spec.tenant = tenant;
    spec.ga.population = 12;
    spec.ga.generations = 6;
    spec.ga.kernel_length = 16;
    spec.ga.elite = 2;
    spec.ga.seed = seed;
    return spec;
}

/// Deadline on interactive jobs: generous (the bench asserts the
/// met/missed *ledger* works, not a latency SLO on a shared host).
constexpr double kInteractiveDeadlineS = 300.0;

} // namespace
} // namespace bench
} // namespace emstress

int
main()
{
    using namespace emstress;
    using namespace emstress::bench;

    metrics::setEnabled(true);
    PerfLog perf_log("loadgen_service");
    banner("loadgen", "search-service load generator "
                      "(multi-tenant, weighted-fair, artifact store)");

    const std::size_t jobs_total = fullMode() ? 480 : 240;
    const std::size_t duplicates = fullMode() ? 80 : 40;

    // Persistent tier under bench_out/: wiped before the run so the
    // spill scan, write and restart counters are exact.
    const std::filesystem::path spill_dir =
        outputDir() / "loadgen_spill";
    std::filesystem::remove_all(spill_dir);

    service::ServiceConfig config;
    config.fleet_threads = 0; // auto (EMSTRESS_THREADS honored)
    config.runners = 4;
    config.max_jobs_in_flight = jobs_total + duplicates;
    config.max_jobs_per_tenant = jobs_total;
    for (const TenantPlan &t : kTenants)
        config.tenant_weights[t.name] = t.weight;
    config.artifacts.spill_dir = spill_dir.string();
    config.evaluator_factory =
        [](const service::JobSpec &spec) {
            return std::make_unique<LoadgenFitness>(
                presetPool(spec.platform));
        };
    // Heap-held so the restart round can destroy and rebuild the
    // service over the same spill directory.
    auto svc = std::make_unique<service::SearchService>(config);

    // Round 1: distinct specs, tenants interleaved round-robin so
    // every tenant contends for the whole run. Every third job is
    // interactive with a deadline; the rest are batch.
    std::vector<service::JobSpec> specs;
    specs.reserve(jobs_total);
    std::vector<service::JobId> ids;
    ids.reserve(jobs_total + duplicates);
    std::size_t interactive_jobs = 0;
    {
        metrics::ScopedPhase phase("loadgen.submit");
        for (std::size_t i = 0; i < jobs_total; ++i) {
            const TenantPlan &t =
                kTenants[i % (sizeof kTenants / sizeof kTenants[0])];
            service::JobSpec spec =
                loadgenSpec(t.name, 1000 + 7 * i);
            if (i % 3 == 2) {
                spec.job_class = service::JobClass::kInteractive;
                spec.deadline_s = kInteractiveDeadlineS;
                ++interactive_jobs;
            }
            specs.push_back(std::move(spec));
            const service::Submission sub = svc->submit(specs.back());
            if (!sub.accepted) {
                std::cerr << "submit rejected: " << sub.reject_reason
                          << "\n";
                return 1;
            }
            ids.push_back(sub.id);
        }
    }
    {
        metrics::ScopedPhase phase("loadgen.drain");
        for (service::JobId id : ids) {
            if (svc->waitTerminal(id)
                != service::JobState::kCompleted) {
                std::cerr << "job " << id << " did not complete\n";
                return 1;
            }
        }
    }

    // Round 2: duplicate specs — content-identical resubmissions
    // (some cross-tenant) that the artifact store must serve
    // instantly and byte-identically.
    std::size_t served = 0;
    {
        metrics::ScopedPhase phase("loadgen.duplicates");
        for (std::size_t i = 0; i < duplicates; ++i) {
            service::JobSpec dup = specs[i];
            dup.tenant = kTenants[(i + 1) % 4].name; // cross-tenant
            const service::Submission sub = svc->submit(dup);
            if (!sub.accepted) {
                std::cerr << "duplicate rejected: "
                          << sub.reject_reason << "\n";
                return 1;
            }
            ids.push_back(sub.id);
            if (svc->waitTerminal(sub.id)
                != service::JobState::kCompleted) {
                std::cerr << "duplicate " << sub.id
                          << " did not complete\n";
                return 1;
            }
            if (svc->result(sub.id)->from_artifact_store)
                ++served;
        }
    }
    if (served != duplicates) {
        std::cerr << "artifact store served " << served << "/"
                  << duplicates << " duplicates\n";
        return 1;
    }

    // Round 3: restart recovery — destroy the service (a daemon
    // restart loses all in-memory state), rebuild it over the same
    // spill directory, and resubmit duplicates: every one must be
    // served from the disk tier, bit-exactly as the hot tier would.
    std::size_t disk_served = 0;
    {
        metrics::ScopedPhase phase("loadgen.restart");
        svc.reset();
        svc = std::make_unique<service::SearchService>(config);
        const auto scan = svc->artifacts().stats();
        if (scan.spill_indexed != jobs_total) {
            std::cerr << "restart scan indexed " << scan.spill_indexed
                      << "/" << jobs_total << " spilled artifacts\n";
            return 1;
        }
        for (std::size_t i = 0; i < duplicates; ++i) {
            const service::Submission sub = svc->submit(specs[i]);
            if (!sub.accepted) {
                std::cerr << "restart duplicate rejected: "
                          << sub.reject_reason << "\n";
                return 1;
            }
            ids.push_back(sub.id);
            if (svc->waitTerminal(sub.id)
                != service::JobState::kCompleted) {
                std::cerr << "restart duplicate " << sub.id
                          << " did not complete\n";
                return 1;
            }
            if (svc->result(sub.id)->from_artifact_store)
                ++disk_served;
        }
        const auto stats = svc->artifacts().stats();
        if (disk_served != duplicates
            || stats.disk_hits != duplicates
            || stats.spill_quarantined != 0) {
            std::cerr << "restart round served " << disk_served << "/"
                      << duplicates << " (disk hits "
                      << stats.disk_hits << ", quarantined "
                      << stats.spill_quarantined << ")\n";
            return 1;
        }
    }

    // Percentiles from the service's fixed-bucket histograms; stored
    // as gauges so the perf ledger (and its checked-in baseline)
    // carries them.
    const auto snap = metrics::Registry::instance().snapshot();
    Table t({"histogram", "n", "p50 [s]", "p95 [s]", "p99 [s]"});
    for (const char *name :
         {"service.queue_wait", "service.job_latency",
          "service.job_latency.batch",
          "service.job_latency.interactive"}) {
        const auto it = snap.latencies.find(name);
        if (it == snap.latencies.end())
            continue;
        const double p50 = percentileSeconds(it->second, 0.50);
        const double p95 = percentileSeconds(it->second, 0.95);
        const double p99 = percentileSeconds(it->second, 0.99);
        t.row()
            .cell(name)
            .cell(static_cast<long>(it->second.count))
            .cell(p50, 6)
            .cell(p95, 6)
            .cell(p99, 6);
        auto &reg = metrics::Registry::instance();
        reg.setGauge(std::string(name) + ".p50_s", p50);
        reg.setGauge(std::string(name) + ".p95_s", p95);
        reg.setGauge(std::string(name) + ".p99_s", p99);
    }
    t.print("service latency percentiles (histogram upper edges)");

    const auto counter = [&snap](const char *name) {
        const auto it = snap.counters.find(name);
        return it == snap.counters.end() ? 0L
                                         : static_cast<long>(
                                               it->second);
    };

    Table jobs({"counter", "value"});
    jobs.row().cell("jobs submitted").cell(
        static_cast<long>(ids.size()));
    jobs.row().cell("searched").cell(
        static_cast<long>(jobs_total));
    jobs.row().cell("interactive (deadline "
                    + std::to_string(
                        static_cast<long>(kInteractiveDeadlineS))
                    + " s)").cell(
        static_cast<long>(interactive_jobs));
    jobs.row().cell("deadlines met").cell(
        counter("service.deadline_met"));
    jobs.row().cell("deadlines missed").cell(
        counter("service.deadline_missed"));
    jobs.row().cell("artifact-served duplicates").cell(
        static_cast<long>(served));
    jobs.row().cell("disk-served after restart").cell(
        static_cast<long>(disk_served));
    jobs.row().cell("spill writes").cell(
        counter("service.store.spill_writes"));
    jobs.row().cell("spill indexed at restart").cell(
        counter("service.store.spill_indexed"));
    jobs.row().cell("tenants").cell(4L);
    jobs.row().cell("runner threads").cell(
        static_cast<long>(config.runners));
    jobs.print("load summary");

    svc.reset();
    std::filesystem::remove_all(spill_dir);

    std::cout << "loadgen: " << ids.size() << " jobs ("
              << jobs_total << " searched, " << served
              << " artifact-served, " << disk_served
              << " disk-served after restart) across 4 tenants "
                 "completed\n";
    return 0;
}
