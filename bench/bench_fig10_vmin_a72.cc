/**
 * @file
 * Figure 10 reproduction: V_MIN and max droop on the dual-core
 * Cortex-A72 for SPEC2006 benchmarks, the OC-DSO-droop-driven virus
 * and the EM-driven virus. Both viruses droop >= ~25 mV more than
 * lbm (the worst SPEC benchmark) and have ~20 mV higher V_MIN;
 * repeats: 30 per virus, 2 per benchmark (paper Section 5.2).
 */

#include "bench_util.h"
#include "core/vmin_tester.h"
#include "util/units.h"
#include "workloads/workload.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig10_vmin_a72.json on exit.
    bench::PerfLog perf_log("fig10_vmin_a72");
    bench::banner("Figure 10",
                  "V_MIN and max droop on Cortex-A72 (dual core)");

    platform::Platform a72(platform::junoA72Config(), 10);
    auto cfg = core::defaultVminConfig(a72);
    core::VminTester tester(a72, cfg);

    Table t({"workload", "vmin_v", "margin_mv", "max_droop_mv",
             "failure", "runs"});
    double campaign_seconds = 0.0;
    auto add = [&t, &campaign_seconds](const core::VminRow &row) {
        campaign_seconds += row.lab_seconds;
        t.row()
            .cell(row.workload)
            .cell(row.vmin_v, 3)
            .cell(row.margin_v * 1e3, 0)
            .cell(row.max_droop_v * 1e3, 1)
            .cell(row.failure)
            .cell(static_cast<long>(row.runs));
    };

    add(tester.testWorkload(workloads::idleProfile(), 2));
    const auto suite = workloads::spec2006Suite();
    const char *benchmarks[] = {"perlbench", "bzip2",  "gcc",
                                "mcf",       "milc",   "namd",
                                "hmmer",     "sjeng",  "libquantum",
                                "h264ref",   "omnetpp","lbm"};
    for (const char *name : benchmarks)
        add(tester.testWorkload(workloads::findProfile(suite, name),
                                2));

    // The two viruses (rightmost bars in the paper's figure).
    const auto dso_virus = bench::getOrSearchVirus(
        a72, "a72ocdso", core::VirusMetric::MaxDroop, 43);
    add(tester.testKernel("a72OC-DSO virus", dso_virus.report.virus,
                          30));
    const auto em_virus = bench::getOrSearchVirus(
        a72, "a72em", core::VirusMetric::EmAmplitude, 42);
    add(tester.testKernel("a72em virus", em_virus.report.virus, 30));

    t.print("Figure 10: V_MIN and droop (viruses must top both "
            "columns; paper: viruses +25 mV droop, +20 mV V_MIN over "
            "lbm; ~150 mV margin)");
    bench::saveCsv(t, "fig10_vmin_a72");
    std::printf("\nModeled physical campaign time: %.1f days "
                "(paper Section 5.2: \"about two days\").\n",
                campaign_seconds / 86400.0);
    return 0;
}
