/**
 * @file
 * Figure 14 reproduction: V_MIN on the quad-core Cortex-A53 at
 * 950 MHz for idle, SPEC2006 benchmarks and the EM virus. The EM
 * virus stands out (~50 mV above the benchmarks in the paper) even
 * though this cluster has no direct voltage measurement — the virus
 * was generated purely from EM feedback.
 */

#include "bench_util.h"
#include "core/vmin_tester.h"
#include "util/units.h"
#include "workloads/workload.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig14_vmin_a53.json on exit.
    bench::PerfLog perf_log("fig14_vmin_a53");
    bench::banner("Figure 14",
                  "V_MIN on Cortex-A53 (quad core, 950 MHz)");

    platform::Platform a53(platform::junoA53Config(), 14);
    auto cfg = core::defaultVminConfig(a53);
    core::VminTester tester(a53, cfg);

    Table t({"workload", "vmin_v", "margin_mv", "failure", "runs"});
    auto add = [&t](const core::VminRow &row) {
        t.row()
            .cell(row.workload)
            .cell(row.vmin_v, 3)
            .cell(row.margin_v * 1e3, 0)
            .cell(row.failure)
            .cell(static_cast<long>(row.runs));
    };

    add(tester.testWorkload(workloads::idleProfile(), 2));
    const auto suite = workloads::spec2006Suite();
    const char *benchmarks[] = {"perlbench", "gcc",     "mcf",
                                "milc",      "namd",    "hmmer",
                                "libquantum","h264ref", "omnetpp",
                                "lbm"};
    for (const char *name : benchmarks)
        add(tester.testWorkload(workloads::findProfile(suite, name),
                                2));

    const auto em_virus = bench::getOrSearchVirus(
        a53, "a53em", core::VirusMetric::EmAmplitude, 53);
    add(tester.testKernel("a53em virus", em_virus.report.virus, 30));

    t.print("Figure 14: V_MIN on Cortex-A53 (EM virus must stand "
            "out; paper: +50 mV over the best benchmark, ~150 mV "
            "margin)");
    bench::saveCsv(t, "fig14_vmin_a53");
    return 0;
}
