/**
 * @file
 * Extension study: EM-based voltage-margin prediction (the paper's
 * future-work item (c)). Train a linear EM-to-droop model on
 * calibration kernels using the OC-DSO, then predict droop and V_MIN
 * for held-out workloads from the antenna signal alone, and compare
 * against scope measurements and the actual V_MIN search.
 */

#include "bench_util.h"
#include "core/margin_predictor.h"
#include "core/resonant_kernel.h"
#include "core/vmin_tester.h"
#include "util/rng.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.ext_margin_predictor.json on exit.
    bench::PerfLog perf_log("ext_margin_predictor");
    bench::banner("Extension: margin prediction",
                  "EM-only droop / V_MIN prediction versus direct "
                  "measurement");

    platform::Platform a72(platform::junoA72Config(), 24);
    core::EmMarginPredictor predictor(a72);
    Rng rng(101);

    // Calibration set: resonant kernels across the band + random
    // kernels + two benchmark profiles.
    for (double f : {45e6, 55e6, 62e6, 67e6, 75e6, 90e6, 110e6}) {
        predictor.addKernel(core::makeResonantKernelFor(
            a72.pool(), a72.frequency(), f));
    }
    for (int i = 0; i < 5; ++i)
        predictor.addKernel(isa::Kernel::random(a72.pool(), 50, rng));
    const auto suite = workloads::spec2006Suite();
    predictor.addWorkload(workloads::findProfile(suite, "hmmer"));
    predictor.addWorkload(workloads::findProfile(suite, "milc"));

    const auto model = predictor.fit();
    Table fitTable({"metric", "value"});
    fitTable.row().cell("training points")
        .cell(static_cast<long>(model.points));
    fitTable.row().cell("slope [mV droop per mV EM]")
        .cell(model.slope, 3);
    fitTable.row().cell("intercept [mV]")
        .cell(model.intercept * 1e3, 2);
    fitTable.row().cell("R^2").cell(model.r_squared, 3);
    fitTable.print("Margin model fit (trained with the OC-DSO)");
    bench::saveCsv(fitTable, "ext_margin_fit");

    // Held-out evaluation: EM-only prediction vs the scope and vs
    // the actual stepping V_MIN search.
    auto vcfg = core::defaultVminConfig(a72);
    core::VminTester tester(a72, vcfg);
    vmin::TimingModel timing(vcfg.timing);

    Table t({"workload", "em_pred_droop_mv", "scope_droop_mv",
             "em_pred_vmin_v", "search_vmin_v"});
    auto evaluate = [&](const std::string &name,
                        const isa::Kernel &kernel) {
        const double pred = predictor.predictDroopForKernel(kernel);
        const double meas = predictor.measureDroop(kernel);
        // EM-only V_MIN prediction.
        const auto run = a72.runKernel(kernel, 4e-6);
        const auto marker = a72.analyzer().averagedMaxAmplitude(
            run.em, mega(50.0), mega(200.0), 5);
        const double em_vrms = std::sqrt(
            dbmToWatts(marker.power_dbm)
            * a72.analyzer().params().ref_impedance);
        const double pred_vmin = predictor.predictVmin(
            em_vrms, timing, a72.frequency());
        const auto vrow = tester.testKernel(name, kernel, 10);
        t.row()
            .cell(name)
            .cell(pred * 1e3, 1)
            .cell(meas * 1e3, 1)
            .cell(pred_vmin, 3)
            .cell(vrow.vmin_v, 3);
    };

    evaluate("resonant-70MHz",
             core::makeResonantKernelFor(a72.pool(), a72.frequency(),
                                         70e6));
    evaluate("resonant-50MHz",
             core::makeResonantKernelFor(a72.pool(), a72.frequency(),
                                         50e6));
    evaluate("random-A", isa::Kernel::random(a72.pool(), 50, rng));
    evaluate("random-B", isa::Kernel::random(a72.pool(), 50, rng));
    const auto virus = bench::getOrSearchVirus(
        a72, "a72em", core::VirusMetric::EmAmplitude, 42);
    evaluate("a72em virus", virus.report.virus);

    t.print("Held-out prediction: droop and V_MIN from EM only "
            "(no scope attached at prediction time)");
    bench::saveCsv(t, "ext_margin_predictions");
    return 0;
}
