/**
 * @file
 * Figure 4 reproduction: OC-DSO voltage waveforms for three
 * workloads on the Cortex-A72 — CPU idle, a SPEC2006 benchmark and
 * the dI/dt virus. The virus causes by far the largest noise.
 */

#include "bench_util.h"
#include "util/stats.h"
#include "workloads/workload.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig04_waveforms.json on exit.
    bench::PerfLog perf_log("fig04_waveforms");
    bench::banner("Figure 4",
                  "OC-DSO voltage waveforms: idle vs SPEC vs dI/dt "
                  "virus (Cortex-A72)");

    platform::Platform a72(platform::junoA72Config(), 1);
    auto &scope = a72.scope();
    const double duration = 4e-6;

    Table t({"workload", "max_droop_mv", "peak_to_peak_mv",
             "mean_v_die"});
    auto report = [&](const std::string &name, const Trace &v_die) {
        const Trace cap = scope.capture(v_die);
        t.row()
            .cell(name)
            .cell(instruments::Oscilloscope::maxDroop(cap, 1.0) * 1e3,
                  2)
            .cell(instruments::Oscilloscope::peakToPeak(cap) * 1e3, 2)
            .cell(stats::mean(cap.samples()), 4);
    };

    // Idle.
    {
        Rng rng(1);
        const auto stream = workloads::generateStream(
            workloads::idleProfile(), a72.pool(), 40000, rng);
        report("idle", a72.runStream(stream, duration).v_die);
    }
    // SPEC benchmark (h264ref as the representative mid-pack one).
    {
        Rng rng(2);
        const auto stream = workloads::generateStream(
            workloads::findProfile(workloads::spec2006Suite(),
                                   "h264ref"),
            a72.pool(), 40000, rng);
        report("h264ref (SPEC2006)",
               a72.runStream(stream, duration).v_die);
    }
    // dI/dt virus from the EM-driven GA.
    {
        const auto virus = bench::getOrSearchVirus(
            a72, "a72em", core::VirusMetric::EmAmplitude, 42);
        report("dI/dt virus (a72em)",
               a72.runKernel(virus.report.virus, duration).v_die);
    }

    t.print("Figure 4: voltage-noise comparison (the virus row must "
            "dominate)");
    bench::saveCsv(t, "fig04_waveforms");
    return 0;
}
