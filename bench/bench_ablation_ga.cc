/**
 * @file
 * Ablation study of the GA design choices the paper reports as
 * empirical findings (Sections 3.1-3.3, 8.3):
 *  - mutation rate 2-4% works well (vs too cold / too hot),
 *  - 30-sample RMS averaging stabilizes the fitness signal,
 *  - a diverse instruction pool beats an integer-only pool,
 *  - 50-instruction loops are long enough to shape resonant
 *    periodicities.
 * Each ablation runs the same reduced GA with one knob changed and
 * reports the best EM amplitude achieved.
 */

#include "bench_util.h"
#include "core/fitness.h"
#include "util/units.h"

using namespace emstress;

namespace {

double
runGa(platform::Platform &plat, const isa::InstructionPool &pool,
      ga::GaConfig cfg, std::size_t sa_samples, double *dominant_mhz)
{
    core::EvalSettings eval;
    eval.duration_s = 3e-6;
    eval.sa_samples = sa_samples;
    core::EmAmplitudeFitness fitness(plat, eval);
    ga::GaEngine engine(pool, cfg);
    const auto result = engine.run(fitness);
    if (dominant_mhz) {
        *dominant_mhz =
            result.best_detail.dominant_freq_hz / mega(1.0);
    }
    return result.best_fitness;
}

} // namespace

int
main()
{
    // Emits bench_out/BENCH_perf.ablation_ga.json on exit.
    bench::PerfLog perf_log("ablation_ga");
    bench::banner("Ablation: GA design choices",
                  "mutation rate / averaging / pool diversity / "
                  "loop length");

    platform::Platform a72(platform::junoA72Config(), 26);
    ga::GaConfig base;
    base.population = bench::fullMode() ? 40 : 20;
    base.generations = bench::fullMode() ? 30 : 12;
    base.kernel_length = 50;
    base.seed = 77;

    Table t({"ablation", "setting", "best_em_dbm", "dominant_mhz"});
    auto record = [&t](const std::string &ablation,
                       const std::string &setting, double dbm,
                       double dom) {
        t.row().cell(ablation).cell(setting).cell(dbm, 1).cell(dom,
                                                               1);
    };

    // Mutation rate: paper uses 2-4%.
    for (double rate : {0.0, 0.003, 0.03, 0.30}) {
        auto cfg = base;
        cfg.mutation_rate = rate;
        double dom = 0.0;
        const double dbm = runGa(a72, a72.pool(), cfg, 5, &dom);
        std::ostringstream s;
        s << rate * 100 << "%";
        record("mutation rate", s.str(), dbm, dom);
    }

    // Measurement averaging: 1 vs 5 vs 30 samples per individual.
    for (std::size_t samples : {std::size_t{1}, std::size_t{5},
                                std::size_t{30}}) {
        auto cfg = base;
        double dom = 0.0;
        const double dbm =
            runGa(a72, a72.pool(), cfg, samples, &dom);
        record("SA samples", std::to_string(samples), dbm, dom);
    }

    // Pool diversity: full ARMv8 mix vs integer-only (Section 8.3).
    {
        double dom = 0.0;
        const double full_dbm =
            runGa(a72, a72.pool(), base, 5, &dom);
        record("pool", "full ARMv8", full_dbm, dom);

        isa::InstructionPool int_only(isa::IsaFamily::ArmV8, 8, 8, 8,
                                      4);
        const auto &src = a72.pool();
        for (const auto &d : src.defs()) {
            if (d.cls == isa::InstrClass::IntShort
                || d.cls == isa::InstrClass::IntLong) {
                int_only.addInstruction(d);
            }
        }
        const double int_dbm =
            runGa(a72, int_only, base, 5, &dom);
        record("pool", "integer-only", int_dbm, dom);
    }

    // Loop length: 10 / 50 / 150 instructions.
    for (std::size_t len : {std::size_t{10}, std::size_t{50},
                            std::size_t{150}}) {
        auto cfg = base;
        cfg.kernel_length = len;
        double dom = 0.0;
        const double dbm = runGa(a72, a72.pool(), cfg, 5, &dom);
        record("loop length", std::to_string(len), dbm, dom);
    }

    t.print("GA ablations (expect: moderate mutation best; more "
            "averaging never hurts; diverse pool beats integer-only)");
    bench::saveCsv(t, "ablation_ga");
    return 0;
}
