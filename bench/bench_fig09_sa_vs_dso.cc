/**
 * @file
 * Figure 9 reproduction: during execution of the EM dI/dt virus, the
 * spectrum-analyzer reading of the antenna signal and the FFT of the
 * OC-DSO voltage capture agree — same dominant frequency (the PDN
 * resonance) and the same secondary spike at the virus's base loop
 * frequency (1/loop period).
 */

#include <cmath>

#include "bench_util.h"
#include "dsp/spectrum.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig09_sa_vs_dso.json on exit.
    bench::PerfLog perf_log("fig09_sa_vs_dso");
    bench::banner("Figure 9",
                  "spectrum analyzer vs FFT of OC-DSO voltage: "
                  "matching spikes");

    platform::Platform a72(platform::junoA72Config(), 9);
    const auto virus = bench::getOrSearchVirus(
        a72, "a72em", core::VirusMetric::EmAmplitude, 42);

    const auto run = a72.runKernel(virus.report.virus, 4e-6);

    // Spectrum-analyzer view of the antenna signal.
    const auto sa_sweep = a72.analyzer().sweep(run.em);

    // FFT view of the OC-DSO voltage capture.
    const auto cap = a72.scope().capture(run.v_die);
    const auto dso_spec = instruments::Oscilloscope::fftView(cap);

    // Top spikes from each instrument.
    const auto sa_top = instruments::SpectrumAnalyzer::maxAmplitude(
        sa_sweep, mega(30.0), mega(200.0));
    const auto dso_top =
        dsp::maxPeakInBand(dso_spec, mega(30.0), mega(200.0));

    Table t({"instrument", "dominant_mhz", "loop_spike_mhz"});
    const double f_loop = run.stats.loop_freq_hz;
    const auto sa_loop = instruments::SpectrumAnalyzer::maxAmplitude(
        sa_sweep, f_loop * 0.85, f_loop * 1.15);
    const auto dso_loop =
        dsp::maxPeakInBand(dso_spec, f_loop * 0.85, f_loop * 1.15);
    t.row()
        .cell("spectrum analyzer (antenna)")
        .cell(sa_top.freq_hz / mega(1.0), 2)
        .cell(sa_loop.freq_hz / mega(1.0), 2);
    t.row()
        .cell("FFT of OC-DSO voltage")
        .cell(dso_top.freq_hz / mega(1.0), 2)
        .cell(dso_loop.freq_hz / mega(1.0), 2);
    t.print("Figure 9: instrument agreement");
    bench::saveCsv(t, "fig09_agreement");

    Table detail({"metric", "value"});
    detail.row()
        .cell("virus loop frequency [MHz]")
        .cell(f_loop / mega(1.0), 2);
    detail.row()
        .cell("dominant frequency delta between instruments [MHz]")
        .cell(std::abs(sa_top.freq_hz - dso_top.freq_hz) / mega(1.0),
              3);
    detail.print("Figure 9: detail");
    bench::saveCsv(detail, "fig09_detail");

    // Also persist both spectra for plotting.
    Table spectra({"freq_mhz", "sa_dbm", "dso_vrms"});
    for (std::size_t i = 0; i < sa_sweep.size(); i += 4) {
        const double f = sa_sweep.freqs_hz[i];
        if (f > mega(200.0))
            break;
        // Nearest DSO bin.
        const auto bin = static_cast<std::size_t>(
            f / dso_spec.binWidth());
        if (bin >= dso_spec.size())
            break;
        spectra.row()
            .cell(f / mega(1.0), 2)
            .cell(sa_sweep.power_dbm[i], 2)
            .cell(dso_spec.amps_vrms[bin] * 1e3, 4);
    }
    bench::saveCsv(spectra, "fig09_spectra");
    return 0;
}
