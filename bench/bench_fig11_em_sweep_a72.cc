/**
 * @file
 * Figure 11 reproduction: the fast EM resonance exploration on the
 * Cortex-A72 — a fixed two-phase loop whose frequency is modulated
 * by sweeping the CPU clock from 1.2 GHz down to 120 MHz in 20 MHz
 * steps. The EM spike at the loop frequency is maximized around
 * 70 MHz with both cores powered and ~85 MHz with one core.
 */

#include "bench_util.h"
#include "core/resonance_explorer.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig11_em_sweep_a72.json on exit.
    bench::PerfLog perf_log("fig11_em_sweep_a72");
    bench::banner("Figure 11",
                  "EM loop-frequency sweep on Cortex-A72 (C0C1 and "
                  "C0)");

    platform::Platform a72(platform::junoA72Config(), 11);
    core::ResonanceExplorer explorer(a72);
    const std::size_t samples = bench::fullMode() ? 30 : 5;

    a72.setPoweredCores(2);
    const auto both = explorer.sweep(4e-6, samples);
    a72.setPoweredCores(1);
    const auto one = explorer.sweep(4e-6, samples);
    a72.setPoweredCores(2);

    Table t({"cpu_mhz", "loop_freq_mhz", "em_c0c1_dbm",
             "em_c0_dbm"});
    for (std::size_t i = 0; i < both.size() && i < one.size(); ++i) {
        t.row()
            .cell(both[i].cpu_freq_hz / mega(1.0), 0)
            .cell(both[i].loop_freq_hz / mega(1.0), 1)
            .cell(both[i].em_dbm, 2)
            .cell(one[i].em_dbm, 2);
    }
    t.print("Figure 11: EM amplitude vs loop frequency");
    bench::saveCsv(t, "fig11_em_sweep_a72");

    Table summary({"scenario", "resonance_mhz", "paper_mhz"});
    summary.row()
        .cell("C0C1")
        .cell(core::ResonanceExplorer::estimateResonanceHz(both)
                  / mega(1.0),
              1)
        .cell("~70");
    summary.row()
        .cell("C0")
        .cell(core::ResonanceExplorer::estimateResonanceHz(one)
                  / mega(1.0),
              1)
        .cell("~85");
    summary.print("Figure 11: resonance estimates (must agree with "
                  "the Fig. 8 SCL sweep)");
    bench::saveCsv(summary, "fig11_summary");
    return 0;
}
