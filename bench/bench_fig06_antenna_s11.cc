/**
 * @file
 * Figure 6 reproduction: |S11| of the square loop antenna — flat and
 * poorly matched from DC to ~1.2 GHz, self-resonant dip at 2.95 GHz,
 * confirming the antenna does not modulate signals in the 50-200 MHz
 * measurement band.
 */

#include "bench_util.h"
#include "em/antenna.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig06_antenna_s11.json on exit.
    bench::PerfLog perf_log("fig06_antenna_s11");
    bench::banner("Figure 6",
                  "loop antenna |S11|: flat below 1.2 GHz, "
                  "self-resonance at 2.95 GHz");

    const em::Antenna antenna{em::AntennaParams{}};
    std::vector<double> freqs;
    for (double f = mega(50.0); f <= giga(6.0); f += mega(25.0))
        freqs.push_back(f);
    const auto s11 = antenna.s11Magnitude(freqs);

    Table t({"freq_ghz", "s11_mag", "s11_db"});
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        if (i % 8 == 0 || s11[i] < 0.9) {
            t.row()
                .cell(freqs[i] / giga(1.0), 3)
                .cell(s11[i], 4)
                .cell(20.0 * std::log10(s11[i]), 2);
        }
    }
    t.print("Figure 6: antenna reflection coefficient");
    bench::saveCsv(t, "fig06_s11");

    // Locate the dip.
    std::size_t dip = 0;
    for (std::size_t i = 1; i < s11.size(); ++i)
        if (s11[i] < s11[dip])
            dip = i;
    Table summary({"metric", "value"});
    summary.row()
        .cell("self-resonance [GHz]")
        .cell(freqs[dip] / giga(1.0), 3);
    summary.row().cell("paper value [GHz]").cell(2.95, 2);
    summary.row().cell("|S11| at dip").cell(s11[dip], 3);
    summary.row()
        .cell("|S11| at 100 MHz (measurement band)")
        .cell(antenna.s11Magnitude({mega(100.0)}).front(), 4);
    summary.print("Figure 6: summary");
    bench::saveCsv(summary, "fig06_summary");
    return 0;
}
