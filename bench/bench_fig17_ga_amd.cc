/**
 * @file
 * Figure 17 reproduction: the EM-amplitude-driven GA on the AMD
 * Athlon II X4 645. The amplitude rises generation over generation
 * and the dominant frequency converges to ~77 MHz, in excellent
 * agreement with the Fig. 16 sweep.
 */

#include "bench_util.h"
#include "pdn/resonance.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig17_ga_amd.json on exit.
    bench::PerfLog perf_log("fig17_ga_amd");
    bench::banner("Figure 17", "EM-driven GA on the AMD CPU");

    platform::Platform amd(platform::athlonConfig(), 18);
    const auto found = bench::getOrSearchVirus(
        amd, "amdem", core::VirusMetric::EmAmplitude, 64);

    const auto &report = found.report;
    Table t({"generation", "best_em_dbm", "mean_em_dbm",
             "dominant_mhz"});
    for (const auto &row : found.history) {
        t.row()
            .cell(static_cast<long>(row.generation))
            .cell(row.best_fitness, 2)
            .cell(row.mean_fitness, 2)
            .cell(row.dominant_mhz, 2);
    }
    t.print("Figure 17: GA progression (AMD)");
    bench::saveCsv(t, "fig17_ga_amd");

    Table summary({"metric", "value"});
    summary.row()
        .cell("final dominant frequency [MHz]")
        .cell(report.dominant_freq_hz / mega(1.0), 2);
    summary.row().cell("paper value [MHz]").cell(77.0, 1);
    summary.row()
        .cell("Fig. 16 sweep / impedance resonance [MHz]")
        .cell(pdn::firstOrderResonanceHz(amd.pdnModel()) / mega(1.0),
              2);
    summary.row()
        .cell("virus loop frequency [MHz]")
        .cell(report.loop_freq_hz / mega(1.0), 2);
    summary.row().cell("virus IPC").cell(report.ipc, 2);
    summary.row()
        .cell("virus droop at nominal (Kelvin scope) [mV]")
        .cell(report.max_droop_v * 1e3, 1);
    summary.print("Figure 17: convergence summary");
    bench::saveCsv(summary, "fig17_summary");

    if (report.ga.eval_stats.evals > 0)
        bench::printEvalStats(report.ga.eval_stats,
                              "Figure 17: evaluation pipeline");
    return 0;
}
