/**
 * @file
 * Figure 13 reproduction: EM loop-frequency sweeps on the Cortex-A53
 * for four power-gating scenarios (C0 .. C0C1C2C3, always one active
 * core). Resonance rises from 76.5 MHz (all powered) to ~97 MHz (one
 * powered) because f ~ 1/sqrt(C_die); the EM amplitude is largest
 * with the least capacitance.
 */

#include "bench_util.h"
#include "core/resonance_explorer.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig13_powergate_a53.json on exit.
    bench::PerfLog perf_log("fig13_powergate_a53");
    bench::banner("Figure 13",
                  "Cortex-A53 resonance vs powered cores (power "
                  "gating)");

    platform::Platform a53(platform::junoA53Config(), 13);
    core::ResonanceExplorer explorer(a53);
    const std::size_t samples = bench::fullMode() ? 30 : 5;

    const char *labels[] = {"C0", "C0C1", "C0C1C2", "C0C1C2C3"};
    const double paper[] = {97.0, 0.0, 0.0, 76.5};

    Table t({"scenario", "powered_cores", "resonance_mhz",
             "peak_em_dbm", "paper_mhz"});
    std::vector<std::vector<core::EmSweepPoint>> sweeps;
    for (std::size_t k = 1; k <= 4; ++k) {
        a53.setPoweredCores(k);
        // Only the first core is active in every scenario so current
        // consumption stays constant (paper Section 6).
        auto points = explorer.sweep(4e-6, samples, 1);
        double best_dbm = -300.0;
        for (const auto &p : points)
            best_dbm = std::max(best_dbm, p.em_dbm);
        const double est =
            core::ResonanceExplorer::estimateResonanceHz(points);
        t.row()
            .cell(labels[k - 1])
            .cell(static_cast<long>(k))
            .cell(est / mega(1.0), 1)
            .cell(best_dbm, 2)
            .cell(paper[k - 1] > 0.0
                      ? std::to_string(paper[k - 1])
                      : std::string("-"));
        sweeps.push_back(std::move(points));
    }
    a53.setPoweredCores(4);
    t.print("Figure 13: resonance and EM amplitude vs power gating "
            "(fewer cores -> higher frequency, stronger EM)");
    bench::saveCsv(t, "fig13_powergate");

    // Full sweep series for plotting.
    Table series({"loop_freq_mhz", "em_c0_dbm", "em_c0c1_dbm",
                  "em_c0c1c2_dbm", "em_c0c1c2c3_dbm"});
    const auto &ref = sweeps.front();
    for (std::size_t i = 0; i < ref.size(); ++i) {
        auto row = series.row();
        series.cell(ref[i].loop_freq_hz / mega(1.0), 1);
        for (std::size_t k = 0; k < 4; ++k) {
            if (i < sweeps[k].size())
                series.cell(sweeps[k][i].em_dbm, 2);
            else
                series.cell("-");
        }
    }
    bench::saveCsv(series, "fig13_sweeps");
    return 0;
}
