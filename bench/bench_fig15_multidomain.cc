/**
 * @file
 * Figure 15 reproduction: simultaneous voltage-noise monitoring of
 * multiple voltage domains. The Cortex-A72 and Cortex-A53 viruses
 * run concurrently; one antenna sees both frequency-domain
 * signatures at once — impossible with a physically attached scope.
 */

#include "bench_util.h"
#include "core/multidomain.h"
#include "util/units.h"

using namespace emstress;

int
main()
{
    // Emits bench_out/BENCH_perf.fig15_multidomain.json on exit.
    bench::PerfLog perf_log("fig15_multidomain");
    bench::banner("Figure 15",
                  "simultaneous multi-domain monitoring (A72 + A53 "
                  "viruses)");

    platform::Platform a72(platform::junoA72Config(), 15);
    platform::Platform a53(platform::junoA53Config(), 16);

    const auto v72 = bench::getOrSearchVirus(
        a72, "a72em", core::VirusMetric::EmAmplitude, 42);
    const auto v53 = bench::getOrSearchVirus(
        a53, "a53em", core::VirusMetric::EmAmplitude, 53);

    std::vector<core::DomainWorkload> domains;
    domains.push_back({&a72, v72.report.virus, 0});
    domains.push_back({&a53, v53.report.virus, 0});
    const auto result =
        core::monitorDomains(domains, 4e-6, a72.analyzer());

    Table t({"domain", "isolated_dominant_mhz"});
    t.row().cell("Cortex-A72 virus").cell(
        result.domain_dominant_hz[0] / mega(1.0), 2);
    t.row().cell("Cortex-A53 virus").cell(
        result.domain_dominant_hz[1] / mega(1.0), 2);
    t.print("Figure 15: per-domain virus signatures");
    bench::saveCsv(t, "fig15_domains");

    // Combined-spectrum markers around each signature.
    Table markers({"band", "marker_mhz", "marker_dbm"});
    auto add_marker = [&](const std::string &label, double lo,
                          double hi) {
        const auto m = instruments::SpectrumAnalyzer::maxAmplitude(
            result.sweep, lo, hi);
        markers.row()
            .cell(label)
            .cell(m.freq_hz / mega(1.0), 2)
            .cell(m.power_dbm, 2);
    };
    const double f72 = result.domain_dominant_hz[0];
    const double f53 = result.domain_dominant_hz[1];
    add_marker("around A72 signature", f72 - mega(3.0),
               f72 + mega(3.0));
    add_marker("around A53 signature", f53 - mega(3.0),
               f53 + mega(3.0));
    add_marker("quiet reference band", mega(170.0), mega(200.0));
    markers.print("Figure 15: combined spectrum markers (both "
                  "signatures visible above the quiet band)");
    bench::saveCsv(markers, "fig15_markers");

    // Persist the combined sweep for plotting.
    Table sweep({"freq_mhz", "power_dbm"});
    for (std::size_t i = 0; i < result.sweep.size(); i += 2) {
        if (result.sweep.freqs_hz[i] > mega(200.0))
            break;
        sweep.row()
            .cell(result.sweep.freqs_hz[i] / mega(1.0), 2)
            .cell(result.sweep.power_dbm[i], 2);
    }
    bench::saveCsv(sweep, "fig15_spectrum");
    return 0;
}
