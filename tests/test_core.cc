/**
 * @file
 * Integration tests for the high-level API: fitness evaluators,
 * virus generation, resonance exploration, V_MIN testing,
 * multi-domain monitoring and virus analysis. These exercise the
 * entire stack (uarch -> PDN -> antenna -> instruments) end to end
 * with reduced measurement budgets so the suite stays fast.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/fitness.h"
#include "core/multidomain.h"
#include "core/resonance_explorer.h"
#include "core/virus_analysis.h"
#include "core/virus_generator.h"
#include "core/vmin_tester.h"
#include "pdn/resonance.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace core {
namespace {

EvalSettings
fastEval()
{
    EvalSettings s;
    s.duration_s = 2e-6;
    s.sa_samples = 3;
    return s;
}

ga::GaConfig
fastGa()
{
    ga::GaConfig cfg;
    cfg.population = 10;
    cfg.generations = 6;
    cfg.kernel_length = 30;
    cfg.seed = 5;
    return cfg;
}

TEST(Fitness, EmAmplitudeRanksResonantKernelAboveRandom)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    EmAmplitudeFitness fitness(a72, fastEval());

    // A kernel whose loop frequency is far from resonance at 1.2 GHz
    // versus the probe loop run at a clock that lands on resonance.
    a72.setFrequency(560e6); // probe loop -> 70 MHz
    const auto resonant =
        ResonanceExplorer::probeLoop(a72.pool());
    ga::EvalDetail d_res;
    const double f_res = fitness.evaluate(resonant, &d_res);

    a72.setFrequency(1.2e9); // probe loop -> 150 MHz, off resonance
    ga::EvalDetail d_off;
    const double f_off = fitness.evaluate(resonant, &d_off);

    EXPECT_GT(f_res, f_off + 6.0); // at least 6 dB stronger
    EXPECT_NEAR(d_res.dominant_freq_hz, mega(70.0), mega(4.0));
    EXPECT_GT(d_res.measurement_seconds, 0.0);
}

TEST(Fitness, DroopFitnessRequiresVisibility)
{
    platform::Platform a53(platform::junoA53Config(), 3);
    EXPECT_THROW(MaxDroopFitness f(a53, fastEval()), ConfigError);
    EXPECT_THROW(PeakToPeakFitness f(a53, fastEval()), ConfigError);

    platform::Platform a72(platform::junoA72Config(), 3);
    EXPECT_NO_THROW(MaxDroopFitness f(a72, fastEval()));
}

TEST(Fitness, DroopAndP2pAgreeOnOrdering)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    MaxDroopFitness droop(a72, fastEval());
    PeakToPeakFitness p2p(a72, fastEval());

    a72.setFrequency(560e6);
    const auto resonant = ResonanceExplorer::probeLoop(a72.pool());
    Rng rng(9);
    const auto idle_ish = isa::Kernel::random(a72.pool(), 30, rng);

    EXPECT_GT(droop.evaluate(resonant, nullptr),
              droop.evaluate(idle_ish, nullptr) * 0.8);
    EXPECT_GT(p2p.evaluate(resonant, nullptr), 0.0);
}

TEST(InProcessTargetTest, LifecycleAndFaultInjection)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    InProcessTarget target(a72, fastEval());
    EXPECT_EQ(target.describe(), "in-process://Cortex-A72");

    const auto kernel = ResonanceExplorer::probeLoop(a72.pool());
    // Protocol violations are rejected.
    EXPECT_THROW(target.startRun(), SimulationError);
    target.deploy(kernel);
    EXPECT_THROW((void)target.measureEm(), SimulationError);
    target.startRun();
    const Trace em = target.measureEm();
    EXPECT_GT(em.size(), 1000u);
    target.stopRun();
    EXPECT_THROW(target.stopRun(), SimulationError);
    EXPECT_GT(target.labSecondsSpent(), 0.0);

    // Injected transport failures surface as SimulationError.
    target.injectDeployFailures(2);
    EXPECT_THROW(target.deploy(kernel), SimulationError);
    EXPECT_THROW(target.deploy(kernel), SimulationError);
    EXPECT_NO_THROW(target.deploy(kernel));
}

TEST(VirusGeneratorTest, EmSearchImprovesAndFindsResonance)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    VirusGenerator gen(a72);
    VirusSearchConfig cfg;
    cfg.ga = fastGa();
    cfg.ga.generations = 10;
    cfg.eval = fastEval();
    cfg.metric = VirusMetric::EmAmplitude;

    std::size_t callbacks = 0;
    const auto report =
        gen.search(cfg, [&callbacks](const ga::GenerationRecord &) {
            ++callbacks;
        });
    EXPECT_EQ(callbacks, 10u);
    EXPECT_EQ(report.metric, "em-amplitude");
    EXPECT_EQ(report.virus.size(), 30u);
    // Improvement over the first generation.
    EXPECT_GT(report.ga.best_fitness,
              report.ga.history.front().best_fitness);
    // Converged dominant frequency near the PDN resonance.
    EXPECT_NEAR(report.dominant_freq_hz,
                pdn::firstOrderResonanceHz(a72.pdnModel()),
                mega(12.0));
    EXPECT_GT(report.max_droop_v, 0.0);
    EXPECT_GT(report.ga.estimated_lab_seconds, 0.0);
}

TEST(VirusGeneratorTest, DroopSearchWorksOnVisiblePlatform)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    VirusGenerator gen(a72);
    VirusSearchConfig cfg;
    cfg.ga = fastGa();
    cfg.eval = fastEval();
    cfg.metric = VirusMetric::MaxDroop;
    const auto report = gen.search(cfg);
    EXPECT_EQ(report.metric, "max-droop");
    EXPECT_GT(report.max_droop_v, 0.01);
}

TEST(ResonanceExplorerTest, SweepFindsA72Resonance)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    ResonanceExplorer explorer(a72);
    const auto points = explorer.sweep(2e-6, 2);
    EXPECT_GT(points.size(), 30u);
    const double est = ResonanceExplorer::estimateResonanceHz(points);
    EXPECT_NEAR(est, pdn::firstOrderResonanceHz(a72.pdnModel()),
                mega(6.0));
    // Clock restored after the sweep.
    EXPECT_DOUBLE_EQ(a72.frequency(), a72.config().f_max_hz);
}

TEST(ResonanceExplorerTest, SweepCoversEveryDvfsPoint)
{
    // Regression: float-accumulation stepping could drop (or
    // duplicate) the final grid point. The grid is inclusive:
    // (f_max - f_min)/f_step + 1 points, here (1.2 GHz - 120 MHz) /
    // 20 MHz + 1 = 55.
    platform::Platform a72(platform::junoA72Config(), 3);
    ResonanceExplorer explorer(a72);
    const auto points = explorer.sweep(2e-6, 1);
    const auto &cfg = a72.config();
    const std::size_t expected = static_cast<std::size_t>(std::lround(
                                     (cfg.f_max_hz - cfg.f_min_hz)
                                     / cfg.f_step_hz))
        + 1;
    EXPECT_EQ(points.size(), expected);
    EXPECT_EQ(points.size(), 55u);
    EXPECT_DOUBLE_EQ(points.front().cpu_freq_hz, cfg.f_max_hz);
    EXPECT_DOUBLE_EQ(points.back().cpu_freq_hz, cfg.f_min_hz);
}

TEST(ResonanceExplorerTest, ParallelSweepMatchesSerial)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    ResonanceExplorer explorer(a72);
    const auto serial = explorer.sweep(2e-6, 2, 0, 1);
    const auto parallel = explorer.sweep(2e-6, 2, 0, 4);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(parallel[i].cpu_freq_hz,
                         serial[i].cpu_freq_hz);
        EXPECT_DOUBLE_EQ(parallel[i].loop_freq_hz,
                         serial[i].loop_freq_hz);
        EXPECT_DOUBLE_EQ(parallel[i].em_dbm, serial[i].em_dbm);
    }
}

TEST(ResonanceExplorerTest, PowerGatingShiftsEstimate)
{
    platform::Platform a53(platform::junoA53Config(), 3);
    ResonanceExplorer explorer(a53);
    a53.setPoweredCores(4);
    const double f4 = ResonanceExplorer::estimateResonanceHz(
        explorer.sweep(2e-6, 2));
    a53.setPoweredCores(1);
    const double f1 = ResonanceExplorer::estimateResonanceHz(
        explorer.sweep(2e-6, 2));
    EXPECT_GT(f1, f4 + mega(8.0));
}

TEST(SclResonanceFinderTest, MatchesImpedanceAnalysis)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    SclResonanceFinder finder(a72);
    const auto points =
        finder.sweep(mega(50.0), mega(90.0), mega(2.0), 0.5, 2e-6);
    ASSERT_GT(points.size(), 10u);
    const double est =
        SclResonanceFinder::estimateResonanceHz(points);
    EXPECT_NEAR(est, pdn::firstOrderResonanceHz(a72.pdnModel()),
                mega(4.0));

    platform::Platform a53(platform::junoA53Config(), 3);
    EXPECT_THROW(SclResonanceFinder f(a53), ConfigError);
}

TEST(SclResonanceFinderTest, SweepHasExactPointCount)
{
    // Regression: 50..90 MHz in 2 MHz steps is exactly 21 points,
    // independent of floating-point step accumulation.
    platform::Platform a72(platform::junoA72Config(), 3);
    SclResonanceFinder finder(a72);
    const auto points =
        finder.sweep(mega(50.0), mega(90.0), mega(2.0), 0.5, 2e-6);
    ASSERT_EQ(points.size(), 21u);
    EXPECT_DOUBLE_EQ(points.front().freq_hz, mega(50.0));
    EXPECT_DOUBLE_EQ(points.back().freq_hz, mega(90.0));
}

TEST(VirusGeneratorTest, SearchIsDeterministicAcrossThreadCounts)
{
    // The full stack honors the determinism contract: a GA virus
    // search over the real platform evaluators returns bit-identical
    // results whether the population is evaluated serially or on
    // four platform clones.
    auto run = [](std::size_t threads) {
        platform::Platform a72(platform::junoA72Config(), 3);
        VirusGenerator gen(a72);
        VirusSearchConfig cfg;
        cfg.ga = fastGa();
        cfg.ga.threads = threads;
        cfg.eval = fastEval();
        cfg.metric = VirusMetric::EmAmplitude;
        return gen.search(cfg);
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_TRUE(parallel.virus == serial.virus);
    EXPECT_DOUBLE_EQ(parallel.ga.best_fitness,
                     serial.ga.best_fitness);
    ASSERT_EQ(parallel.ga.history.size(), serial.ga.history.size());
    for (std::size_t i = 0; i < serial.ga.history.size(); ++i) {
        EXPECT_DOUBLE_EQ(parallel.ga.history[i].best_fitness,
                         serial.ga.history[i].best_fitness);
        EXPECT_DOUBLE_EQ(parallel.ga.history[i].mean_fitness,
                         serial.ga.history[i].mean_fitness);
    }
}

TEST(VminTesterTest, VirusBeatsBenchmarksBeatsIdle)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    auto cfg = defaultVminConfig(a72);
    cfg.duration_s = 2e-6;
    VminTester tester(a72, cfg);

    a72.setFrequency(560e6);
    const auto virus_kernel =
        ResonanceExplorer::probeLoop(a72.pool());
    a72.setFrequency(1.2e9);
    // Use the resonant probe at 560 MHz as a stand-in virus: run the
    // V_MIN test at that clock for the kernel.
    a72.setFrequency(560e6);
    const auto virus_row =
        tester.testKernel("probe-virus", virus_kernel, 10);
    a72.setFrequency(1.2e9);

    const auto suite = workloads::spec2006Suite();
    const auto lbm_row = tester.testWorkload(
        workloads::findProfile(suite, "lbm"), 2);
    const auto idle_row =
        tester.testWorkload(workloads::idleProfile(), 2);

    EXPECT_GT(lbm_row.max_droop_v, idle_row.max_droop_v);
    EXPECT_GT(virus_row.max_droop_v, 0.0);
    EXPECT_GE(lbm_row.vmin_v, idle_row.vmin_v);
    EXPECT_GT(virus_row.runs, 0u);
    EXPECT_FALSE(virus_row.failure.empty());
}

TEST(VminTesterTest, LabTimeAccountingMatchesRunsAndDurations)
{
    // Section 5.2: SPEC runs to completion dominate the campaign
    // time; the model charges run_seconds per execution plus an
    // overhead per voltage point.
    platform::Platform a72(platform::junoA72Config(), 3);
    auto cfg = defaultVminConfig(a72);
    cfg.duration_s = 2e-6;
    VminTester tester(a72, cfg);

    const auto suite = workloads::spec2006Suite();
    const auto bench_row = tester.testWorkload(
        workloads::findProfile(suite, "hmmer"), 2, 300.0);
    const auto virus_row = tester.testKernel(
        "probe", ResonanceExplorer::probeLoop(a72.pool()), 2, 15.0);

    // Both must charge at least run_seconds per executed run.
    EXPECT_GE(bench_row.lab_seconds,
              300.0 * static_cast<double>(bench_row.runs));
    EXPECT_GE(virus_row.lab_seconds,
              15.0 * static_cast<double>(virus_row.runs));
    // A long-running benchmark costs far more lab time per run.
    EXPECT_GT(bench_row.lab_seconds
                  / static_cast<double>(bench_row.runs),
              5.0 * virus_row.lab_seconds
                  / static_cast<double>(virus_row.runs));
}

TEST(VminTesterTest, DefaultConfigScalesWithPlatform)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    platform::Platform amd(platform::athlonConfig(), 3);
    const auto mobile = defaultVminConfig(a72);
    const auto desktop = defaultVminConfig(amd);
    EXPECT_LT(mobile.timing.vth, desktop.timing.vth);
    EXPECT_DOUBLE_EQ(mobile.search.v_start, 1.0);
    EXPECT_DOUBLE_EQ(desktop.search.v_start, 1.4);
    EXPECT_DOUBLE_EQ(mobile.search.v_step, 0.010);
}

TEST(MultiDomainTest, SeesBothClusterSignatures)
{
    // Fig. 15: A72 and A53 viruses visible simultaneously.
    platform::Platform a72(platform::junoA72Config(), 3);
    platform::Platform a53(platform::junoA53Config(), 4);
    // Probe loops at clocks that put each near its own resonance.
    a72.setFrequency(560e6); // ~70 MHz
    a53.setFrequency(608e6); // ~76 MHz
    std::vector<DomainWorkload> domains;
    domains.push_back(
        {&a72, ResonanceExplorer::probeLoop(a72.pool()), 0});
    domains.push_back(
        {&a53, ResonanceExplorer::probeLoop(a53.pool()), 0});
    const auto result =
        monitorDomains(domains, 3e-6, a72.analyzer());
    ASSERT_EQ(result.domain_dominant_hz.size(), 2u);
    EXPECT_NEAR(result.domain_dominant_hz[0], mega(70.0), mega(4.0));
    EXPECT_NEAR(result.domain_dominant_hz[1], mega(76.0), mega(4.0));
    EXPECT_GT(result.sweep.size(), 100u);

    // Both signatures are above the local noise in the combined
    // sweep: markers near each dominant frequency are strong.
    const auto m1 = instruments::SpectrumAnalyzer::maxAmplitude(
        result.sweep, mega(66.0), mega(73.0));
    const auto m2 = instruments::SpectrumAnalyzer::maxAmplitude(
        result.sweep, mega(73.5), mega(80.0));
    const auto quiet = instruments::SpectrumAnalyzer::maxAmplitude(
        result.sweep, mega(170.0), mega(200.0));
    EXPECT_GT(m1.power_dbm, quiet.power_dbm + 6.0);
    EXPECT_GT(m2.power_dbm, quiet.power_dbm + 6.0);

    EXPECT_THROW(
        {
            std::vector<DomainWorkload> empty;
            (void)monitorDomains(empty, 1e-6, a72.analyzer());
        },
        ConfigError);
}

TEST(MultiDomainTest, IdleDomainStaysQuiet)
{
    // A stressed A72 next to an *idle* A53: only the A72 signature
    // appears; the idle domain adds nothing near its resonance.
    platform::Platform a72(platform::junoA72Config(), 5);
    platform::Platform a53(platform::junoA53Config(), 6);
    a72.setFrequency(560e6); // probe loop ~70 MHz
    std::vector<DomainWorkload> domains;
    domains.push_back(
        {&a72, ResonanceExplorer::probeLoop(a72.pool()), 0, false});
    domains.push_back({&a53, isa::Kernel{}, 0, true});
    const auto result =
        monitorDomains(domains, 3e-6, a72.analyzer());
    const auto sig72 = instruments::SpectrumAnalyzer::maxAmplitude(
        result.sweep, mega(67.0), mega(73.0));
    const auto sig53 = instruments::SpectrumAnalyzer::maxAmplitude(
        result.sweep, mega(74.0), mega(80.0));
    EXPECT_GT(sig72.power_dbm, sig53.power_dbm + 10.0);
}

TEST(VirusAnalysisTest, Table2RowFields)
{
    platform::Platform a72(platform::junoA72Config(), 3);
    a72.setFrequency(560e6);
    const auto kernel = ResonanceExplorer::probeLoop(a72.pool());
    const auto row =
        analyzeVirus(a72, "probe", kernel, 0.85, 2e-6, 3);
    EXPECT_EQ(row.virus_name, "probe");
    EXPECT_EQ(row.loop_instructions, 9u);
    EXPECT_GT(row.ipc, 0.5);
    EXPECT_NEAR(row.loop_freq_mhz, 70.0, 2.0);
    EXPECT_NEAR(row.dominant_freq_mhz, 70.0, 5.0);
    EXPECT_NEAR(row.voltage_margin_mv, 150.0, 0.5);
    // Mix fractions sum to one for this all-int kernel.
    EXPECT_NEAR(row.pct_sl_int_reg + row.pct_ll_int_reg, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(row.pct_branch, 0.0);
}

TEST(VirusAnalysisTest, MinIpcRelation)
{
    // Section 8.2's examples: A72 needs IPC ~2.8 for a 50-instruction
    // loop to match 67 MHz at 1.2 GHz; AMD needs ~1.26 at 3.1 GHz.
    EXPECT_NEAR(minIpcForResonantLoop(mega(67.0), 50, giga(1.2)),
                2.79, 0.01);
    EXPECT_NEAR(minIpcForResonantLoop(mega(78.0), 50, giga(3.1)),
                1.26, 0.01);
    EXPECT_THROW((void)minIpcForResonantLoop(mega(67.0), 50, 0.0),
                 ConfigError);
}

} // namespace
} // namespace core
} // namespace emstress
