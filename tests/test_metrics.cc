/**
 * @file
 * Tests for the observability layer (util/metrics.h): deterministic
 * histogram bucket edges, registry semantics (counters, gauges,
 * phases, latencies, enable gate, thread safety), Running-vs-batch
 * statistics parity, and the BENCH_perf.json serializer round trip.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"

namespace emstress {
namespace metrics {
namespace {

/** Every test runs against a clean, enabled registry. */
class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        was_enabled_ = enabled();
        setEnabled(true);
        Registry::instance().reset();
    }

    void
    TearDown() override
    {
        Registry::instance().reset();
        setEnabled(was_enabled_);
    }

  private:
    bool was_enabled_ = true;
};

// ------------------------------------------------- bucket policy

TEST_F(MetricsTest, BucketEdgesAreFixedBinaryDoublings)
{
    // The edges are a property of the schema, not of any run: exact
    // powers of two times 100 ns, so ledgers from different runs and
    // hosts are comparable bucket by bucket.
    EXPECT_EQ(LatencyBuckets::kBuckets,
              LatencyBuckets::kFiniteEdges + 1);
    EXPECT_DOUBLE_EQ(LatencyBuckets::bucketEdge(0), 1e-7);
    for (std::size_t i = 1; i < LatencyBuckets::kFiniteEdges; ++i) {
        // Bit-exact doubling, not approximate.
        EXPECT_EQ(LatencyBuckets::bucketEdge(i),
                  2.0 * LatencyBuckets::bucketEdge(i - 1))
            << "edge " << i;
    }
}

TEST_F(MetricsTest, BucketForBoundarySemantics)
{
    // Bucket b counts samples in [edge(b-1), edge(b)): a sample
    // exactly on an edge falls in the bucket above it.
    EXPECT_EQ(LatencyBuckets::bucketFor(0.0), 0u);
    EXPECT_EQ(LatencyBuckets::bucketFor(-1.0), 0u);
    EXPECT_EQ(LatencyBuckets::bucketFor(0.99e-7), 0u);
    EXPECT_EQ(LatencyBuckets::bucketFor(1e-7), 1u);
    for (std::size_t i = 0; i < LatencyBuckets::kFiniteEdges; ++i) {
        EXPECT_EQ(LatencyBuckets::bucketFor(
                      LatencyBuckets::bucketEdge(i)),
                  i + 1)
            << "edge " << i;
    }
    // Everything past the last finite edge lands in the overflow
    // bucket.
    EXPECT_EQ(LatencyBuckets::bucketFor(1e9),
              LatencyBuckets::kFiniteEdges);
}

// ------------------------------------------------------ registry

TEST_F(MetricsTest, CountersAccumulate)
{
    auto &reg = Registry::instance();
    reg.add("a");
    reg.add("a", 4);
    reg.add("b", 2);
    const auto snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("a"), 5u);
    EXPECT_EQ(snap.counters.at("b"), 2u);
}

TEST_F(MetricsTest, CountersAreThreadSafe)
{
    auto &reg = Registry::instance();
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&reg] {
            for (int i = 0; i < 1000; ++i)
                reg.add("contended");
        });
    }
    for (auto &t : workers)
        t.join();
    EXPECT_EQ(reg.snapshot().counters.at("contended"), 4000u);
}

TEST_F(MetricsTest, GaugeLastWriteWins)
{
    auto &reg = Registry::instance();
    reg.setGauge("g", 1.5);
    reg.setGauge("g", -2.25);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), -2.25);
}

TEST_F(MetricsTest, ScopedPhaseAccumulates)
{
    for (int i = 0; i < 3; ++i) {
        ScopedPhase span("test.phase");
    }
    const auto snap = Registry::instance().snapshot();
    const PhaseStats &p = snap.phases.at("test.phase");
    EXPECT_EQ(p.count, 3u);
    EXPECT_GE(p.wall_s, 0.0);
    EXPECT_GE(p.cpu_s, 0.0);
}

TEST_F(MetricsTest, LatencyHistogramCountsAndBuckets)
{
    auto &reg = Registry::instance();
    reg.recordLatency("lat", 1e-7); // bucket 1
    reg.recordLatency("lat", 1e-7);
    reg.recordLatency("lat", 0.0);  // bucket 0
    reg.recordLatency("lat", 1e9);  // overflow bucket
    const auto snap = reg.snapshot();
    const HistogramSnapshot &h = snap.latencies.at("lat");
    EXPECT_EQ(h.count, 4u);
    ASSERT_EQ(h.buckets.size(), LatencyBuckets::kBuckets);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 2u);
    EXPECT_EQ(h.buckets[LatencyBuckets::kFiniteEdges], 1u);
    double expect_total = 0.0;
    expect_total += 1e-7;
    expect_total += 1e-7;
    expect_total += 0.0;
    expect_total += 1e9;
    EXPECT_EQ(h.total_s, expect_total);
}

TEST_F(MetricsTest, DisabledRegistryRecordsNothing)
{
    setEnabled(false);
    auto &reg = Registry::instance();
    reg.add("c");
    reg.setGauge("g", 1.0);
    reg.recordLatency("l", 1e-6);
    {
        ScopedPhase span("p");
    }
    EXPECT_TRUE(reg.snapshot().empty());

    // Re-enabling resumes recording in place.
    setEnabled(true);
    reg.add("c");
    EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

// ------------------------------------- Running-vs-batch parity

TEST_F(MetricsTest, RunningMatchesBatchStatistics)
{
    // The streaming accumulator the observability docs point ops at
    // must agree with the batch stats helpers on the same samples.
    Rng rng(2718);
    std::vector<double> xs;
    stats::Running run;
    for (int i = 0; i < 4096; ++i) {
        const double v = rng.gaussian(-1.0, 3.5);
        xs.push_back(v);
        run.add(v);
    }
    EXPECT_EQ(run.count(), xs.size());
    EXPECT_NEAR(run.mean(), stats::mean(xs), 1e-12);
    EXPECT_NEAR(run.variance(), stats::variance(xs), 1e-9);
    // Extrema are exact regardless of accumulation order.
    EXPECT_EQ(run.minimum(), stats::minimum(xs));
    EXPECT_EQ(run.maximum(), stats::maximum(xs));
}

// -------------------------------------------------- round trip

MetricsSnapshot
populatedSnapshot()
{
    auto &reg = Registry::instance();
    reg.add("evals", 123);
    reg.add("steps", 456789);
    reg.setGauge("fitness.p50", -61.25);
    reg.setGauge("tiny", 3.0e-17);
    reg.recordPhase("ga.generation", 0.125, 0.0625);
    reg.recordPhase("ga.generation", 1.0 / 3.0, 0.1);
    reg.recordLatency("queue_wait", 2.5e-7);
    reg.recordLatency("queue_wait", 1e9);
    return reg.snapshot();
}

TEST_F(MetricsTest, JsonRoundTripIsBitExact)
{
    const MetricsSnapshot snap = populatedSnapshot();
    const MetricsSnapshot back = parseSnapshotJson(toJson(snap));

    EXPECT_EQ(back.counters, snap.counters);
    ASSERT_EQ(back.gauges.size(), snap.gauges.size());
    for (const auto &[name, value] : snap.gauges)
        EXPECT_EQ(back.gauges.at(name), value) << name;
    ASSERT_EQ(back.phases.size(), snap.phases.size());
    for (const auto &[name, p] : snap.phases) {
        // Doubles survive the serialize-parse cycle bit-exactly
        // (shortest-round-trip formatting).
        EXPECT_EQ(back.phases.at(name).wall_s, p.wall_s) << name;
        EXPECT_EQ(back.phases.at(name).cpu_s, p.cpu_s) << name;
        EXPECT_EQ(back.phases.at(name).count, p.count) << name;
    }
    EXPECT_EQ(back.latencies, snap.latencies);
}

TEST_F(MetricsTest, BenchPerfJsonCarriesRunHeaderAndBody)
{
    const MetricsSnapshot snap = populatedSnapshot();
    const std::string json =
        benchPerfJson("fig07_ga_a72", "quick", 8, snap);
    EXPECT_NE(json.find("\"schema\": \"emstress-bench-perf-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"fig07_ga_a72\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mode\": \"quick\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 8"), std::string::npos);
    // The header keys do not disturb snapshot extraction.
    const MetricsSnapshot back = parseSnapshotJson(json);
    EXPECT_EQ(back.counters, snap.counters);
    EXPECT_EQ(back.latencies, snap.latencies);
    EXPECT_EQ(back.phases.at("ga.generation").count,
              snap.phases.at("ga.generation").count);
}

TEST_F(MetricsTest, ParserRejectsMalformedInput)
{
    EXPECT_THROW((void)parseSnapshotJson("{"), SimulationError);
    EXPECT_THROW((void)parseSnapshotJson("{} trailing"),
                 SimulationError);
    EXPECT_THROW((void)parseSnapshotJson("[1, 2]"), SimulationError);
    EXPECT_THROW(
        (void)parseSnapshotJson("{\"counters\": {\"a\": \"x\"}}"),
        SimulationError);
}

TEST_F(MetricsTest, EmptySnapshotRoundTrips)
{
    const MetricsSnapshot empty;
    const MetricsSnapshot back = parseSnapshotJson(toJson(empty));
    EXPECT_TRUE(back.empty());
}

} // namespace
} // namespace metrics
} // namespace emstress
