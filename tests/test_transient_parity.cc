/**
 * @file
 * Fast-path vs reference-path parity for the transient engine
 * (DESIGN.md §12): the precomputed state-update (FastState) and the
 * per-step LU substitution (ReferenceLu) are algebraically identical
 * but reassociate floating point, so they must agree to
 * kStateUpdateParityTol — never assumed, always measured, over long
 * runs on randomized RLC ladders, the PDN with its optional damped
 * bulk branch, and a fig15-style two-domain coupled netlist. Both
 * paths must additionally satisfy the algebraic-row constraints
 * (G x = s on storage-free rows) to solver precision at every
 * checkpoint.
 *
 * Also pins the stepper construction convention (a stepper replays
 * run() bit-exactly with no priming call) and the truthful
 * lu_solves / state_updates counter split.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "pdn/pdn_model.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace emstress {
namespace circuit {
namespace {

/**
 * Deterministic multi-tone source value: a square wave (exciting
 * every resonance) plus two incommensurate sines, scaled per source
 * so multi-source netlists see distinct drives.
 */
double
sourceValue(std::size_t source, std::size_t step)
{
    const double t = static_cast<double>(step);
    const double phase = static_cast<double>(source + 1);
    const double square = (step / 37 % 2 == 0) ? 1.0 : 0.0;
    return phase
        * (0.4 * square + 0.3 * std::sin(2e-2 * phase * t)
           + 0.2 * std::sin(3.1e-3 * t + phase));
}

/**
 * Random PDN-like RLC ladder: vs -> (R -> storage-free mid -> L)
 * segments, each tapped node damped by a C+ESR branch, a load
 * current source and bleed resistor at the far end. The mid nodes
 * and the voltage-source row are pure algebraic rows, exercising the
 * index-aware half of the discretization.
 */
Netlist
randomLadder(Rng &rng, std::size_t segments)
{
    Netlist nl;
    NodeId prev = nl.newNode();
    nl.addVoltageSource("vs", prev, kGround,
                        rng.uniform(0.8, 1.2));
    for (std::size_t s = 0; s < segments; ++s) {
        const auto tag = std::to_string(s);
        const NodeId mid = nl.newNode();
        const NodeId next = nl.newNode();
        nl.addResistor("r" + tag, prev, mid,
                       rng.uniform(1e-3, 5e-2));
        nl.addInductor("l" + tag, mid, next,
                       rng.uniform(1e-11, 1e-9));
        const NodeId ctap = nl.newNode();
        nl.addCapacitor("c" + tag, next, ctap,
                        rng.uniform(1e-9, 1e-6));
        nl.addResistor("esr" + tag, ctap, kGround,
                       rng.uniform(1e-3, 1e-1));
        prev = next;
    }
    nl.addResistor("r_load", prev, kGround, rng.uniform(0.5, 5.0));
    nl.addCurrentSource("i_load", prev, kGround, 0.0);
    return nl;
}

/**
 * fig15-style coupling: one shared PCB/package spine feeding two die
 * domains, each with its own tank and load source, so load activity
 * in one domain rings the other through the shared impedance.
 */
Netlist
twoDomainNetlist()
{
    Netlist nl;
    const NodeId n_vrm = nl.newNode();
    const NodeId n_pcb = nl.newNode();
    nl.addVoltageSource("vs", n_vrm, kGround, 1.0);
    nl.addResistor("r_vrm", n_vrm, n_pcb, 1e-3);
    const NodeId n_blk = nl.newNode();
    nl.addCapacitor("c_pcb", n_pcb, n_blk, 1e-4);
    nl.addResistor("esr_pcb", n_blk, kGround, 6e-3);
    const NodeId n_pkg = nl.newNode();
    const NodeId n_pcb_mid = nl.newNode();
    nl.addResistor("r_pcb", n_pcb, n_pcb_mid, 8e-3);
    nl.addInductor("l_pcb", n_pcb_mid, n_pkg, 1e-9);
    for (int d = 0; d < 2; ++d) {
        const auto tag = std::to_string(d);
        const NodeId n_mid = nl.newNode();
        const NodeId n_die = nl.newNode();
        const NodeId n_cap = nl.newNode();
        nl.addResistor("r_pkg" + tag, n_pkg, n_mid, 0.35e-3);
        nl.addInductor("l_die" + tag, n_mid, n_die,
                       d == 0 ? 14e-12 : 20e-12);
        nl.addResistor("r_die" + tag, n_die, n_cap, 0.25e-3);
        nl.addCapacitor("c_die" + tag, n_cap, kGround,
                        d == 0 ? 300e-9 : 200e-9);
        nl.addCurrentSource("i_load" + tag, n_die, kGround, 0.0);
    }
    return nl;
}

/**
 * Step FastState and ReferenceLu engines for the same netlist in
 * lockstep, asserting the parity tolerance over the whole run and the
 * algebraic-row residual (|G x - s_now| to solver precision) for both
 * paths at periodic checkpoints.
 */
void
expectParity(const Netlist &nl, double dt, std::size_t steps)
{
    const TransientAnalysis fast(nl, dt, TransientMethod::FastState);
    const TransientAnalysis ref(nl, dt, TransientMethod::ReferenceLu);
    ASSERT_EQ(fast.method(), TransientMethod::FastState);
    ASSERT_EQ(ref.method(), TransientMethod::ReferenceLu);
    const MnaSystem &mna = ref.mna();
    const std::size_t n = mna.size();
    const std::size_t n_src = mna.currentSourceNames().size();

    // Algebraic rows recomputed independently of the engine.
    std::vector<bool> algebraic(n, true);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            if (mna.c()(r, c) != 0.0) {
                algebraic[r] = false;
                break;
            }

    std::vector<double> currents(n_src);
    for (std::size_t j = 0; j < n_src; ++j)
        currents[j] = sourceValue(j, 0);
    TransientStepper sf = fast.makeStepper(currents, currents);
    TransientStepper sr = ref.makeStepper(currents, currents);

    double max_abs_diff = 0.0;
    double max_abs_x = 0.0;
    double short_diff = 0.0;
    double short_x = 0.0;
    for (std::size_t step = 1; step <= steps; ++step) {
        for (std::size_t j = 0; j < n_src; ++j)
            currents[j] = sourceValue(j, step);
        sf.step(currents);
        sr.step(currents);
        for (std::size_t i = 0; i < n; ++i) {
            max_abs_diff = std::max(
                max_abs_diff, std::abs(sf.value(i) - sr.value(i)));
            max_abs_x = std::max(max_abs_x, std::abs(sr.value(i)));
        }
        if (step == kParityShortSteps) {
            short_diff = max_abs_diff;
            short_x = max_abs_x;
        }
        if (step % 5000 == 0 || step == steps) {
            // Constraint rows hold at t_now on BOTH paths: the fast
            // path folds them into its precomputed update, so this
            // check proves the folding, not just the LU solve.
            const std::vector<double> s_now =
                mna.sourceVector(currents);
            for (std::size_t r = 0; r < n; ++r) {
                if (!algebraic[r])
                    continue;
                double res_f = -s_now[r];
                double res_r = -s_now[r];
                double scale = std::abs(s_now[r]);
                for (std::size_t c = 0; c < n; ++c) {
                    res_f += mna.g()(r, c) * sf.value(c);
                    res_r += mna.g()(r, c) * sr.value(c);
                    scale += std::abs(mna.g()(r, c) * sr.value(c));
                }
                const double tol = 1e-9 * std::max(scale, 1.0);
                EXPECT_LT(std::abs(res_f), tol)
                    << "fast path, row " << r << ", step " << step;
                EXPECT_LT(std::abs(res_r), tol)
                    << "reference path, row " << r << ", step "
                    << step;
            }
        }
    }
    ASSERT_GT(max_abs_x, 0.0);
    ASSERT_GT(short_x, 0.0);
    // The documented two-horizon contract from transient.h: tight
    // agreement while the paths share (nearly) the same state, and a
    // bounded envelope once weakly damped modes have integrated the
    // per-step rounding difference.
    EXPECT_LT(short_diff, kStateUpdateParityTolShort * short_x)
        << "short-horizon |x_fast - x_lu| = " << short_diff
        << " over max |x| = " << short_x;
    EXPECT_LT(max_abs_diff, kStateUpdateParityTol * max_abs_x)
        << "max |x_fast - x_lu| = " << max_abs_diff
        << " over max |x| = " << max_abs_x;
}

TEST(TransientParity, RandomizedRlcLadders)
{
    Rng rng(2018);
    for (int trial = 0; trial < 3; ++trial) {
        const std::size_t segments = 2 + rng.index(3);
        const Netlist nl = randomLadder(rng, segments);
        expectParity(nl, 1e-10, 100000);
    }
}

TEST(TransientParity, PdnLadderWithBulkBranch)
{
    pdn::PdnParameters params;
    params.c_pkg_bulk = 22e-6; // enable the damped bulk branch
    const pdn::PdnModel model(params);
    // Production-scale dt (a ~1 GHz core clock period): the parity
    // contract holds where BOTH paths are numerically valid. At
    // extreme stiffness (c_pcb/dt ~ 1e7) the reference path itself
    // slowly diverges — see FastPathStaysBoundedAtStiffDt below.
    expectParity(model.netlist(), 1e-9, 100000);
}

TEST(TransientParity, TwoDomainCoupledNetlist)
{
    expectParity(twoDomainNetlist(), 1e-10, 100000);
}

TEST(TransientParity, PdnWithPulseSourceThirdColumn)
{
    // The EMFI pulse source adds a third current-source column to
    // the PDN netlist; the fast path's precomputed update must keep
    // parity with the reference LU path with it present and driven.
    pdn::PdnModel model{pdn::PdnParameters{}};
    model.setPulseSource(true);
    ASSERT_TRUE(model.pulseSource());
    expectParity(model.netlist(), 1e-9, 100000);
}

TEST(TransientParity, ZeroPulseColumnIsBoundedAgainstTwoSources)
{
    // An all-zero third source column is algebraically a no-op, but
    // it regroups the fast path's column sweep, so the result is only
    // tolerance-close to the two-source topology — which is exactly
    // why Platform::armPulse elides a null pulse instead of wiring a
    // zero waveform (the bit-identity tests live in test_emfi.cc).
    std::vector<double> load(4000);
    for (std::size_t k = 0; k < load.size(); ++k)
        load[k] = 0.5 + 0.3 * sourceValue(0, k);
    const Trace i_load(std::move(load), 1e-9);

    pdn::PdnModel two{pdn::PdnParameters{}};
    pdn::PdnModel three{pdn::PdnParameters{}};
    three.setPulseSource(true);
    const auto a = two.simulate(i_load);
    const auto b =
        three.simulate(i_load, nullptr, [](double) { return 0.0; });

    ASSERT_EQ(a.v_die.size(), b.v_die.size());
    double max_diff = 0.0;
    double max_abs = 0.0;
    for (std::size_t i = 0; i < a.v_die.size(); ++i) {
        max_diff =
            std::max(max_diff, std::abs(a.v_die[i] - b.v_die[i]));
        max_abs = std::max(max_abs, std::abs(a.v_die[i]));
    }
    ASSERT_GT(max_abs, 0.0);
    EXPECT_LT(max_diff, kStateUpdateParityTol * max_abs)
        << "max |v_2src - v_3src| = " << max_diff;
}

TEST(TransientParity, FastPathStaysBoundedAtStiffDt)
{
    // Robustness pin for a measured asymmetry (DESIGN.md §12): at
    // dt = 1e-10 the PDN's stiffness ratio (c_pcb/dt = 1e7 against
    // mOhm conductances) makes the *reference* path's per-step
    // substitution slowly unstable — free-decay rounding noise grows
    // ~e^(1e-4 per step), reaching 1e6 by 2e5 steps — while the
    // precomputed state-update contracts it. This test pins the fast
    // path's boundedness: a 1 A load step released to free decay must
    // settle at the DC point (~1 V states), never grow.
    const pdn::PdnModel model(pdn::PdnParameters{});
    const TransientAnalysis fast(model.netlist(), 1e-10,
                                 TransientMethod::FastState);
    const std::array<double, 2> on = {1.0, 0.0};
    const std::array<double, 2> off = {0.0, 0.0};
    TransientStepper s = fast.makeStepper(on, on);
    const std::size_t n = fast.mna().size();
    double max_abs = 0.0;
    for (std::size_t step = 1; step <= 200000; ++step) {
        s.step(off);
        if (step % 1000 == 0)
            for (std::size_t i = 0; i < n; ++i)
                max_abs = std::max(max_abs, std::abs(s.value(i)));
    }
    EXPECT_LT(max_abs, 1.5);
}

TEST(TransientParity, FastPathIsBitIdenticalRunToRun)
{
    // Whatever the active path, repeating a run must be bit-exact:
    // the step arithmetic is sequential with a fixed operation order.
    Rng rng(7);
    const Netlist nl = randomLadder(rng, 3);
    const TransientAnalysis tr(nl, 1e-10, TransientMethod::FastState);
    const std::vector<SourceWaveform> waves = {
        [](double t) { return sourceValue(0, static_cast<std::size_t>(
                                                 t * 1e10 + 0.5)); }};
    const std::vector<Probe> probes = {
        {ProbeKind::NodeVoltage, 2, "", "v"}};
    const auto a = tr.run(5000, waves, probes);
    const auto b = tr.run(5000, waves, probes);
    for (std::size_t i = 0; i < a.trace("v").size(); ++i)
        ASSERT_EQ(a.trace("v")[i], b.trace("v")[i]) << i;
}

/**
 * Satellite regression: a stepper constructed as
 * makeStepper(bias, {waveforms at t = 0}) replays run() with NO
 * priming call (primeSources no longer exists). On the reference
 * path the replay is bit-exact; on the fast path run() executes in
 * kStreamBlock folds, so the per-step stepper agrees to
 * kBlockedStreamParityTol (relative to the waveform scale) —
 * bit-exact fast-path replay is pinned separately via the block
 * stepper below. Pinned for both paths and for both the biased and
 * the empty-bias conventions.
 */
void
expectStepperReplaysRun(TransientMethod method, bool with_bias)
{
    Rng rng(42);
    const Netlist nl = randomLadder(rng, 3);
    const double dt = 1e-10;
    const TransientAnalysis tr(nl, dt, method);
    const std::size_t steps = 2000;
    const std::vector<SourceWaveform> waves = {[dt](double t) {
        return sourceValue(0,
                           static_cast<std::size_t>(t / dt + 0.5));
    }};
    const std::size_t probe_node = 2;
    const std::vector<Probe> probes = {
        {ProbeKind::NodeVoltage, probe_node, "", "v"}};
    const std::array<double, 1> bias = {0.37};
    const auto batch = with_bias ? tr.run(steps, waves, probes, bias)
                                 : tr.run(steps, waves, probes);
    const auto &vt = batch.trace("v");
    double scale = 0.0;
    for (std::size_t i = 0; i < vt.size(); ++i)
        scale = std::max(scale, std::abs(vt[i]));
    ASSERT_GT(scale, 0.0);

    const std::array<double, 1> w0 = {sourceValue(0, 0)};
    TransientStepper stepper = with_bias ? tr.makeStepper(bias, w0)
                                         : tr.makeStepper({}, w0);
    const std::size_t idx =
        tr.mna().stateIndexOfNode(probe_node);
    std::array<double, 1> currents{};
    for (std::size_t step = 1; step <= steps; ++step) {
        currents[0] = sourceValue(0, step);
        stepper.step(currents);
        if (method == TransientMethod::ReferenceLu)
            ASSERT_EQ(stepper.value(idx), vt[step - 1])
                << "step " << step;
        else
            ASSERT_NEAR(stepper.value(idx), vt[step - 1],
                        kBlockedStreamParityTol * scale)
                << "step " << step;
    }
    EXPECT_EQ(stepper.stepsTaken(), steps);
}

TEST(TransientStepperReplay, FastPathWithBias)
{
    expectStepperReplaysRun(TransientMethod::FastState, true);
}

TEST(TransientStepperReplay, FastPathEmptyBias)
{
    expectStepperReplaysRun(TransientMethod::FastState, false);
}

TEST(TransientStepperReplay, ReferencePathWithBias)
{
    expectStepperReplaysRun(TransientMethod::ReferenceLu, true);
}

TEST(TransientStepperReplay, ReferencePathEmptyBias)
{
    expectStepperReplaysRun(TransientMethod::ReferenceLu, false);
}

/**
 * The fast-path bit-exactness pin: a TransientBlockStepper fed
 * run()'s block partition (full kStreamBlock blocks from step 1, the
 * remainder as one tail call) replays run() bit-exactly — the
 * invariant the PDN streaming sinks rely on for sample-for-sample
 * equality with batch simulation. `steps` is deliberately not a
 * multiple of kStreamBlock so the tail path is exercised too.
 */
TEST(TransientBlockStepper, ReplaysRunBitExactly)
{
    Rng rng(42);
    const Netlist nl = randomLadder(rng, 3);
    const double dt = 1e-10;
    const TransientAnalysis tr(nl, dt, TransientMethod::FastState);
    const std::size_t steps = 2003;
    const std::vector<SourceWaveform> waves = {[dt](double t) {
        return sourceValue(0,
                           static_cast<std::size_t>(t / dt + 0.5));
    }};
    const std::size_t probe_node = 2;
    const std::vector<Probe> probes = {
        {ProbeKind::NodeVoltage, probe_node, "", "v"}};
    const std::array<double, 1> bias = {0.37};
    const auto batch = tr.run(steps, waves, probes, bias);
    const auto &vt = batch.trace("v");

    const std::array<double, 1> w0 = {sourceValue(0, 0)};
    const std::array<std::size_t, 1> probe_idx = {
        tr.mna().stateIndexOfNode(probe_node)};
    TransientBlockStepper bs =
        tr.makeBlockStepper(bias, w0, probe_idx);
    std::array<double, kStreamBlock> in{};
    std::array<double, kStreamBlock> out{};
    std::size_t step = 1;
    while (step <= steps) {
        const std::size_t count =
            std::min(kStreamBlock, steps - step + 1);
        for (std::size_t c = 0; c < count; ++c)
            in[c] = sourceValue(0, step + c);
        bs.stepBlock(in.data(), count, out.data());
        for (std::size_t c = 0; c < count; ++c)
            ASSERT_EQ(out[c], vt[step + c - 1])
                << "step " << step + c;
        step += count;
    }
    EXPECT_EQ(bs.stepsTaken(), steps);
}

/**
 * Blocked vs per-step agreement under arbitrary (non-aligned) block
 * partitions: a stepper advanced in a mix of full blocks and tails
 * must track a per-step stepper to kBlockedStreamParityTol — the
 * documented contract for streams whose length is not a multiple of
 * kStreamBlock.
 */
TEST(TransientBlockStepper, AgreesWithPerStepStepperOnMixedBlocks)
{
    pdn::PdnParameters params;
    const pdn::PdnModel model(params);
    const TransientAnalysis tr(model.netlist(), 1e-9,
                               TransientMethod::FastState);
    const std::size_t n_src =
        tr.mna().currentSourceNames().size();
    ASSERT_EQ(n_src, 2u);
    const std::array<double, 2> w0 = {sourceValue(0, 0),
                                      sourceValue(1, 0)};
    const std::array<double, 2> bias = {0.2, 0.0};
    const std::array<std::size_t, 2> probe_idx = {
        tr.mna().stateIndexOfNode(model.dieNode()),
        tr.mna().stateIndexOfBranch("l_pkg_die")};
    TransientBlockStepper bs =
        tr.makeBlockStepper(bias, w0, probe_idx);
    TransientStepper ps = tr.makeStepper(bias, w0);

    // Deterministic irregular partition cycling through every
    // possible tail length, full blocks interleaved.
    std::array<double, kStreamBlock * 2> in{};
    std::array<double, kStreamBlock * 2> out{};
    std::array<double, 2> cur{};
    double max_diff = 0.0;
    double max_abs = 0.0;
    std::size_t step = 1;
    for (std::size_t round = 0; step < 4000; ++round) {
        const std::size_t count =
            1 + (round * 3) % kStreamBlock;
        for (std::size_t c = 0; c < count; ++c) {
            in[2 * c] = sourceValue(0, step + c);
            in[2 * c + 1] = sourceValue(1, step + c);
        }
        bs.stepBlock(in.data(), count, out.data());
        for (std::size_t c = 0; c < count; ++c) {
            cur[0] = in[2 * c];
            cur[1] = in[2 * c + 1];
            ps.step(cur);
            for (std::size_t p = 0; p < 2; ++p) {
                max_diff = std::max(
                    max_diff, std::abs(out[2 * c + p]
                                       - ps.value(probe_idx[p])));
                max_abs = std::max(
                    max_abs, std::abs(ps.value(probe_idx[p])));
            }
        }
        step += count;
    }
    ASSERT_GT(max_abs, 0.0);
    EXPECT_LT(max_diff, kBlockedStreamParityTol * max_abs)
        << "max |blocked - per-step| = " << max_diff
        << " over max |x| = " << max_abs;
}

/** Counter value from a fresh snapshot (0 when never recorded). */
std::uint64_t
counter(const metrics::MetricsSnapshot &snap, const std::string &name)
{
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

TEST(TransientCounters, RunReportsActivePathTruthfully)
{
    metrics::setEnabled(true);
    Rng rng(11);
    const Netlist nl = randomLadder(rng, 2);
    const std::vector<SourceWaveform> waves = {
        [](double) { return 0.1; }};

    auto &reg = metrics::Registry::instance();
    reg.reset();
    const TransientAnalysis fast(nl, 1e-10,
                                 TransientMethod::FastState);
    (void)fast.run(500, waves, {});
    auto snap = reg.snapshot();
    EXPECT_EQ(counter(snap, "circuit.transient.steps"), 500u);
    EXPECT_EQ(counter(snap, "circuit.transient.state_updates"), 500u);
    // The fast path reports NO lu_solves: the bug this pins was an
    // unconditional lu_solves = steps flush.
    EXPECT_EQ(counter(snap, "circuit.transient.lu_solves"), 0u);

    reg.reset();
    const TransientAnalysis ref(nl, 1e-10,
                                TransientMethod::ReferenceLu);
    (void)ref.run(500, waves, {});
    snap = reg.snapshot();
    EXPECT_EQ(counter(snap, "circuit.transient.steps"), 500u);
    EXPECT_EQ(counter(snap, "circuit.transient.lu_solves"), 500u);
    EXPECT_EQ(counter(snap, "circuit.transient.state_updates"), 0u);
    reg.reset();
}

TEST(TransientCounters, StepperFlushesOwnStepsIdempotently)
{
    metrics::setEnabled(true);
    Rng rng(12);
    const Netlist nl = randomLadder(rng, 2);
    const std::array<double, 1> currents = {0.2};

    auto &reg = metrics::Registry::instance();
    reg.reset();
    const TransientAnalysis fast(nl, 1e-10,
                                 TransientMethod::FastState);
    {
        TransientStepper s = fast.makeStepper(currents);
        for (int i = 0; i < 7; ++i)
            s.step(currents);
        s.flushMetrics();
        s.flushMetrics(); // idempotent: no double counting
        for (int i = 0; i < 3; ++i)
            s.step(currents);
        // Destructor flushes the remaining 3.
    }
    auto snap = reg.snapshot();
    EXPECT_EQ(counter(snap, "circuit.transient.steps"), 10u);
    EXPECT_EQ(counter(snap, "circuit.transient.state_updates"), 10u);
    EXPECT_EQ(counter(snap, "circuit.transient.lu_solves"), 0u);

    reg.reset();
    const TransientAnalysis ref(nl, 1e-10,
                                TransientMethod::ReferenceLu);
    {
        TransientStepper s = ref.makeStepper(currents);
        for (int i = 0; i < 5; ++i)
            s.step(currents);
    }
    snap = reg.snapshot();
    EXPECT_EQ(counter(snap, "circuit.transient.steps"), 5u);
    EXPECT_EQ(counter(snap, "circuit.transient.lu_solves"), 5u);
    EXPECT_EQ(counter(snap, "circuit.transient.state_updates"), 0u);
    reg.reset();
}

TEST(TransientCounters, BlockStepperCountsStepsAndBlocks)
{
    metrics::setEnabled(true);
    Rng rng(13);
    const Netlist nl = randomLadder(rng, 2);
    auto &reg = metrics::Registry::instance();
    reg.reset();
    const TransientAnalysis fast(nl, 1e-10,
                                 TransientMethod::FastState);
    {
        const std::array<double, 1> w0 = {0.1};
        const std::array<std::size_t, 1> probe_idx = {0};
        TransientBlockStepper bs =
            fast.makeBlockStepper(w0, w0, probe_idx);
        std::array<double, kStreamBlock> in{};
        std::array<double, kStreamBlock> out{};
        bs.stepBlock(in.data(), kStreamBlock, out.data());
        bs.stepBlock(in.data(), kStreamBlock, out.data());
        bs.stepBlock(in.data(), 3, out.data()); // tail: not a block
        bs.flushMetrics();
        bs.flushMetrics(); // idempotent: no double counting
        EXPECT_EQ(bs.stepsTaken(), 2 * kStreamBlock + 3);
        // Destructor has nothing left to flush.
    }
    const auto snap = reg.snapshot();
    EXPECT_EQ(counter(snap, "circuit.transient.steps"),
              2 * kStreamBlock + 3);
    EXPECT_EQ(counter(snap, "circuit.transient.state_updates"),
              2 * kStreamBlock + 3);
    EXPECT_EQ(counter(snap, "circuit.transient.stream_blocks"), 2u);
    EXPECT_EQ(counter(snap, "circuit.transient.lu_solves"), 0u);
    reg.reset();
}

} // namespace
} // namespace circuit
} // namespace emstress
