/**
 * @file
 * Tests for the SDR receiver model: calibration, tuning, scanning,
 * and functional equivalence with the bench spectrum analyzer for
 * resonance detection (the paper's claim that cheap SDR dongles
 * suffice for the methodology).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/resonant_kernel.h"
#include "instruments/sdr_receiver.h"
#include "instruments/spectrum_analyzer.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace instruments {
namespace {

Trace
sineTrace(double freq, double amp, double fs, std::size_t n)
{
    Trace t(1.0 / fs);
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        t.push(amp
               * std::sin(kTwoPi * freq * static_cast<double>(i)
                          / fs));
    }
    return t;
}

TEST(SdrReceiver, CapturesInBandTone)
{
    SdrParams params;
    params.center_hz = 67e6;
    SdrReceiver sdr(params, Rng(1));
    // Tone 0.5 MHz above center, well within the 2.4 MHz bandwidth.
    const auto t = sineTrace(67.5e6, 0.01, 4e9, 65536);
    const auto cap = sdr.capture(t);
    EXPECT_NEAR(cap.sample_rate_hz, 2.4e6, 0.5e6);
    const auto sweep = sdr.spectrum(cap);
    const auto m = SpectrumAnalyzer::maxAmplitude(sweep, 66e6, 69e6);
    EXPECT_NEAR(m.freq_hz, 67.5e6, 0.1e6);
    // Level within a few dB of the true -30 dBm-ish value.
    const double true_dbm = wattsToDbm(
        voltsRmsToWatts(0.01 / std::sqrt(2.0), 50.0));
    EXPECT_NEAR(m.power_dbm, true_dbm, 4.0);
}

TEST(SdrReceiver, RejectsOutOfBandTone)
{
    SdrParams params;
    params.center_hz = 67e6;
    SdrReceiver sdr(params, Rng(2));
    // Tone 30 MHz away: filtered by the front end.
    const auto in_band = sineTrace(67.3e6, 0.01, 4e9, 65536);
    const auto out_band = sineTrace(97e6, 0.01, 4e9, 65536);
    const auto m_in = SpectrumAnalyzer::maxAmplitude(
        sdr.spectrum(sdr.capture(in_band)), 66e6, 68.2e6);
    const auto m_out = SpectrumAnalyzer::maxAmplitude(
        sdr.spectrum(sdr.capture(out_band)), 66e6, 68.2e6);
    EXPECT_GT(m_in.power_dbm, m_out.power_dbm + 20.0);
}

TEST(SdrReceiver, ScanFindsStrongestToneAcrossBand)
{
    SdrReceiver sdr(SdrParams{}, Rng(3));
    Trace t(1.0 / 4e9);
    const std::size_t n = 65536;
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double time = static_cast<double>(i) / 4e9;
        t.push(0.004 * std::sin(kTwoPi * 55e6 * time)
               + 0.012 * std::sin(kTwoPi * 83e6 * time)
               + 0.006 * std::sin(kTwoPi * 130e6 * time));
    }
    const auto m = sdr.scanMaxAmplitude(t, 50e6, 150e6);
    EXPECT_NEAR(m.freq_hz, 83e6, 1e6);
}

TEST(SdrReceiver, FindsPlatformResonanceLikeBenchAnalyzer)
{
    // The methodology works through the cheap receiver: a resonant
    // kernel's dominant frequency from the SDR scan matches the
    // bench analyzer's marker.
    platform::Platform a72(platform::junoA72Config(), 4);
    const auto kernel = core::makeResonantKernelFor(
        a72.pool(), a72.frequency(), 67e6);
    const auto run = a72.runKernel(kernel, 4e-6);

    const auto bench_marker = a72.analyzer().averagedMaxAmplitude(
        run.em, mega(50.0), mega(200.0), 5);

    SdrReceiver sdr(SdrParams{}, Rng(5));
    const auto sdr_marker =
        sdr.scanMaxAmplitude(run.em, mega(50.0), mega(200.0));

    EXPECT_NEAR(sdr_marker.freq_hz, bench_marker.freq_hz, mega(1.5));
}

TEST(SdrReceiver, ValidatesConfigAndInput)
{
    SdrParams bad;
    bad.sample_rate_hz = 0.0;
    EXPECT_THROW(SdrReceiver s(bad, Rng(1)), ConfigError);
    bad = SdrParams{};
    bad.center_hz = 1e6; // below its own bandwidth
    EXPECT_THROW(SdrReceiver s(bad, Rng(1)), ConfigError);
    bad = SdrParams{};
    bad.bits = 2;
    EXPECT_THROW(SdrReceiver s(bad, Rng(1)), ConfigError);

    SdrReceiver sdr(SdrParams{}, Rng(1));
    EXPECT_THROW(sdr.tune(1e3), ConfigError);
    Trace tiny(1e-9);
    tiny.push(0.0);
    EXPECT_THROW((void)sdr.capture(tiny), ConfigError);
    // Undersampled input for the tuned center.
    Trace slow(1.0 / 100e6);
    for (int i = 0; i < 64; ++i)
        slow.push(0.0);
    EXPECT_THROW((void)sdr.capture(slow), ConfigError);
}

TEST(SdrReceiver, QuantizationGridRespected)
{
    SdrParams params;
    params.center_hz = 67e6;
    params.noise_figure_db = 0.0;
    params.bits = 8;
    params.gain_db = 0.0;          // input-referred LSB = ADC LSB
    params.full_scale_v = 2.56e-1; // LSB = 1 mV
    SdrReceiver sdr(params, Rng(6));
    const auto cap =
        sdr.capture(sineTrace(67.4e6, 0.02, 4e9, 16384));
    for (const auto &s : cap.iq) {
        const double qi = s.real() / 1e-3;
        const double qq = s.imag() / 1e-3;
        EXPECT_NEAR(qi, std::round(qi), 1e-6);
        EXPECT_NEAR(qq, std::round(qq), 1e-6);
    }
}

} // namespace
} // namespace instruments
} // namespace emstress
