/**
 * @file
 * Tests for the adaptive-clocking mitigation model and the
 * incremental transient stepper it builds on, including the paper's
 * Section 6 insight: the mechanism's effectiveness collapses when
 * its response latency is large relative to the resonance period —
 * and power-gating shortens that period.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/transient.h"
#include "mitigation/adaptive_clock.h"
#include "pdn/resonance.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace mitigation {
namespace {

/** Resonant square-wave load trace for a PDN. */
Trace
resonantLoad(const pdn::PdnModel &pdn, double amplitude,
             double duration)
{
    const double f1 = pdn::firstOrderResonanceHz(pdn);
    const double dt = 0.25e-9;
    const double period = 1.0 / f1;
    Trace load(dt);
    const auto steps = static_cast<std::size_t>(duration / dt);
    load.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        const double t = dt * static_cast<double>(i);
        load.push(std::fmod(t, period) < 0.5 * period ? amplitude
                                                      : 0.1);
    }
    return load;
}

TEST(TransientStepper, MatchesBatchRun)
{
    // Stepping one sample at a time must reproduce run() to the
    // blocked-parity tolerance: run()'s fast path executes in
    // kStreamBlock folds, whose rounding differs from per-step
    // updates in the low bits (bit-exact replay of run() is pinned
    // for the block stepper in test_transient_parity.cc).
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &pdn = a72.pdnModel();
    const Trace load = resonantLoad(pdn, 1.0, 0.4e-6);

    circuit::TransientAnalysis engine(pdn.netlist(), load.dt());
    const std::size_t v_idx =
        engine.mna().stateIndexOfNode(pdn.dieNode());

    // Batch reference.
    const double dt = load.dt();
    const std::size_t n = load.size();
    auto wave = [&load, dt, n](double t) {
        auto idx = static_cast<std::size_t>(t / dt + 0.5);
        return load[std::min(idx, n - 1)];
    };
    // Bias both paths identically at the first sample so their
    // initial trapezoidal states coincide exactly.
    const std::vector<double> bias = {load[0], 0.0};
    auto batch = engine.run(
        n, {wave, [](double) { return 0.0; }},
        {{circuit::ProbeKind::NodeVoltage, pdn.dieNode(), "",
          "v_die"}},
        bias);

    auto stepper = engine.makeStepper(bias);
    for (std::size_t k = 0; k < n; ++k) {
        const double t = dt * static_cast<double>(k + 1);
        const std::vector<double> cur = {wave(t), 0.0};
        stepper.step(cur);
        EXPECT_NEAR(stepper.value(v_idx), batch.trace("v_die")[k],
                    circuit::kBlockedStreamParityTol)
            << "step " << k;
    }
    EXPECT_NEAR(stepper.time(), dt * static_cast<double>(n), 1e-15);
}

TEST(AdaptiveClock, FastResponseReducesWorstDip)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &pdn = a72.pdnModel();
    const Trace load = resonantLoad(pdn, 2.0, 2e-6);

    AdaptiveClockParams p;
    p.threshold_below_nominal = 0.020;
    p.response_latency = 2e-9; // fast detector
    AdaptiveClock ac(pdn, p);

    const auto off = ac.runUnmitigated(load);
    const auto on = ac.run(load);
    EXPECT_GT(on.min_v_die, off.min_v_die + 0.005);
    EXPECT_GT(on.trip_count, 0u);
    EXPECT_GT(on.throttled_fraction, 0.0);
    EXPECT_LT(on.throttled_fraction, 1.0);
    EXPECT_EQ(off.trip_count, 0u);
    EXPECT_DOUBLE_EQ(off.throttled_fraction, 0.0);
}

TEST(AdaptiveClock, SlowResponseIsIneffective)
{
    // Latency of several resonance periods: the dip has already
    // happened by the time the throttle lands.
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &pdn = a72.pdnModel();
    const Trace load = resonantLoad(pdn, 2.0, 2e-6);

    AdaptiveClockParams fast;
    fast.threshold_below_nominal = 0.020;
    fast.response_latency = 2e-9;
    AdaptiveClockParams slow = fast;
    slow.response_latency = 120e-9; // ~8 resonance periods

    AdaptiveClock ac_fast(pdn, fast);
    AdaptiveClock ac_slow(pdn, slow);
    const auto r_fast = ac_fast.run(load);
    const auto r_slow = ac_slow.run(load);
    EXPECT_GT(r_fast.min_v_die, r_slow.min_v_die);
}

TEST(AdaptiveClock, EffectivenessDecaysWithLatencyUnderGating)
{
    // Section 6's concern, testable form: adaptive clocking is
    // latency-sensitive in every gating scenario, and the
    // power-gated (one-core) cluster — whose resonance is faster and
    // noise larger — keeps a worse post-mitigation dip than the
    // fully-powered one at every response latency.
    platform::Platform a53(platform::junoA53Config(), 1);
    AdaptiveClockParams p;
    p.threshold_below_nominal = 0.015;

    auto residual_droop = [&](std::size_t cores, double latency) {
        a53.setPoweredCores(cores);
        const auto &pdn = a53.pdnModel();
        const Trace load = resonantLoad(pdn, 1.2, 2e-6);
        auto params = p;
        params.response_latency = latency;
        AdaptiveClock ac(pdn, params);
        return pdn.params().v_nom - ac.run(load).min_v_die;
    };

    for (std::size_t cores : {std::size_t{4}, std::size_t{1}}) {
        const double instant = residual_droop(cores, 0.0);
        const double slow = residual_droop(cores, 32e-9);
        EXPECT_GT(slow, instant * 1.2)
            << "latency should cost mitigation quality, cores="
            << cores;
    }
    for (double latency : {0.0, 8e-9, 32e-9}) {
        EXPECT_GT(residual_droop(1, latency),
                  residual_droop(4, latency))
            << "gated cluster must stay noisier, latency="
            << latency;
    }
    a53.setPoweredCores(4);
}

TEST(AdaptiveClock, ValidatesConfig)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    const auto &pdn = a72.pdnModel();
    AdaptiveClockParams bad;
    bad.threshold_below_nominal = 0.0;
    EXPECT_THROW(AdaptiveClock ac(pdn, bad), ConfigError);
    bad = AdaptiveClockParams{};
    bad.throttle_ratio = 0.0;
    EXPECT_THROW(AdaptiveClock ac(pdn, bad), ConfigError);
    bad = AdaptiveClockParams{};
    bad.response_latency = -1.0;
    EXPECT_THROW(AdaptiveClock ac(pdn, bad), ConfigError);

    AdaptiveClock ac(pdn, AdaptiveClockParams{});
    Trace empty(1e-9);
    EXPECT_THROW((void)ac.run(empty), ConfigError);
}

} // namespace
} // namespace mitigation
} // namespace emstress
