/**
 * @file
 * Tests for the platform integration layer: configs, DVFS, power
 * gating, kernel/stream/SCL runs and the EM signal path.
 */

#include <gtest/gtest.h>

#include "dsp/spectrum.h"
#include "pdn/resonance.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace platform {
namespace {

/** The two-phase probe kernel (8 adds serialized against a MUL). */
isa::Kernel
twoPhaseKernel(const isa::InstructionPool &pool)
{
    std::vector<isa::Instruction> code;
    isa::Instruction m;
    m.def_index = pool.defIndex(
        pool.isa() == isa::IsaFamily::ArmV8 ? "MUL" : "IMUL");
    m.dest = 1;
    m.src = {2, 2};
    code.push_back(m);
    for (int i = 0; i < 8; ++i) {
        isa::Instruction a;
        a.def_index = pool.defIndex("ADD");
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    return isa::Kernel(std::move(code));
}

TEST(PlatformConfigs, MatchTable1)
{
    const auto a72 = junoA72Config();
    EXPECT_EQ(a72.name, "Cortex-A72");
    EXPECT_EQ(a72.motherboard, "Juno Board R2");
    EXPECT_EQ(a72.n_cores, 2u);
    EXPECT_TRUE(a72.core.out_of_order);
    EXPECT_DOUBLE_EQ(a72.f_max_hz, 1.2e9);
    EXPECT_DOUBLE_EQ(a72.v_nom, 1.0);
    EXPECT_EQ(a72.technology_nm, 16);
    EXPECT_EQ(a72.visibility, VoltageVisibility::OcDso);
    EXPECT_TRUE(a72.has_scl);

    const auto a53 = junoA53Config();
    EXPECT_EQ(a53.n_cores, 4u);
    EXPECT_FALSE(a53.core.out_of_order);
    EXPECT_DOUBLE_EQ(a53.f_max_hz, 950e6);
    EXPECT_EQ(a53.visibility, VoltageVisibility::None);
    EXPECT_FALSE(a53.has_scl);

    const auto amd = athlonConfig();
    EXPECT_EQ(amd.name, "Athlon II X4 645");
    EXPECT_EQ(amd.n_cores, 4u);
    EXPECT_DOUBLE_EQ(amd.f_max_hz, 3.1e9);
    EXPECT_DOUBLE_EQ(amd.v_nom, 1.4);
    EXPECT_EQ(amd.technology_nm, 45);
    EXPECT_EQ(amd.isa, isa::IsaFamily::X86_64);
    EXPECT_EQ(amd.visibility, VoltageVisibility::KelvinPads);
}

TEST(PlatformConfigs, PdnResonancesMatchPaperAnchors)
{
    // The calibrated PDNs land at the paper's measured resonances.
    Platform a72(junoA72Config(), 1);
    EXPECT_NEAR(pdn::firstOrderResonanceHz(a72.pdnModel()),
                mega(67.0), mega(4.0));
    Platform a53(junoA53Config(), 1);
    EXPECT_NEAR(pdn::firstOrderResonanceHz(a53.pdnModel()),
                mega(76.5), mega(4.0));
    Platform amd(athlonConfig(), 1);
    EXPECT_NEAR(pdn::firstOrderResonanceHz(amd.pdnModel()),
                mega(78.0), mega(4.5));
}

TEST(Platform, FrequencySnapsToStepGrid)
{
    Platform a72(junoA72Config(), 1);
    a72.setFrequency(1.013e9);
    EXPECT_DOUBLE_EQ(a72.frequency(), 1.02e9);
    a72.setFrequency(5e9);
    EXPECT_DOUBLE_EQ(a72.frequency(), 1.2e9); // clamped to max
    a72.setFrequency(1e3);
    EXPECT_DOUBLE_EQ(a72.frequency(), 120e6); // clamped to min
    EXPECT_THROW(a72.setFrequency(-1.0), ConfigError);
}

TEST(Platform, VoltageControlUpdatesPdn)
{
    Platform a72(junoA72Config(), 1);
    a72.setVoltage(0.9);
    EXPECT_DOUBLE_EQ(a72.voltage(), 0.9);
    EXPECT_THROW(a72.setVoltage(0.1), ConfigError);
    EXPECT_THROW(a72.setVoltage(3.0), ConfigError);

    // Idle die voltage follows the supply.
    const auto kernel = twoPhaseKernel(a72.pool());
    const auto run = a72.runKernel(kernel, 1e-6);
    EXPECT_LT(stats::maximum(run.v_die.samples()), 0.92);
}

TEST(Platform, ScopeAccessRespectsVisibility)
{
    Platform a72(junoA72Config(), 1);
    EXPECT_TRUE(a72.hasVoltageVisibility());
    EXPECT_NO_THROW((void)a72.scope());

    Platform a53(junoA53Config(), 1);
    EXPECT_FALSE(a53.hasVoltageVisibility());
    EXPECT_THROW((void)a53.scope(), ConfigError);
}

TEST(Platform, RunKernelProducesConsistentTraces)
{
    Platform a72(junoA72Config(), 1);
    const auto run = a72.runKernel(twoPhaseKernel(a72.pool()), 2e-6);
    EXPECT_EQ(run.v_die.size(), run.i_die.size());
    EXPECT_EQ(run.v_die.size(), run.em.size());
    EXPECT_DOUBLE_EQ(run.v_die.dt(), kPdnDt);
    EXPECT_NEAR(run.v_die.duration(), 2e-6, 0.05e-6);
    // Die voltage stays in a sane band around nominal.
    EXPECT_GT(stats::minimum(run.v_die.samples()), 0.8);
    EXPECT_LT(stats::maximum(run.v_die.samples()), 1.1);
    // Loop stats propagate.
    EXPECT_NEAR(run.stats.loop_freq_hz, 1.2e9 / 8.0,
                0.02 * 1.2e9 / 8.0);
}

TEST(Platform, MoreActiveCoresDrawMoreCurrent)
{
    Platform a53(junoA53Config(), 1);
    const auto kernel = twoPhaseKernel(a53.pool());
    const auto one = a53.runKernel(kernel, 1e-6, 1);
    const auto four = a53.runKernel(kernel, 1e-6, 4);
    EXPECT_GT(stats::mean(four.i_die.samples()),
              2.0 * stats::mean(one.i_die.samples()));
    EXPECT_THROW((void)a53.runKernel(kernel, 1e-6, 5), ConfigError);
}

TEST(Platform, PowerGatingChangesResonance)
{
    Platform a53(junoA53Config(), 1);
    a53.setPoweredCores(4);
    const double f4 = pdn::firstOrderResonanceHz(a53.pdnModel());
    a53.setPoweredCores(1);
    const double f1 = pdn::firstOrderResonanceHz(a53.pdnModel());
    EXPECT_NEAR(f1 / f4, 97.0 / 76.5, 0.06);
    EXPECT_EQ(a53.poweredCores(), 1u);
}

TEST(Platform, SclRunExcitesPdn)
{
    Platform a72(junoA72Config(), 1);
    const double f1 = pdn::firstOrderResonanceHz(a72.pdnModel());
    const auto at_res = a72.runScl(f1, 0.5, 2e-6);
    const auto off_res = a72.runScl(f1 * 2.5, 0.5, 2e-6);
    EXPECT_GT(stats::peakToPeak(at_res.v_die.samples()),
              1.5 * stats::peakToPeak(off_res.v_die.samples()));

    Platform a53(junoA53Config(), 1);
    EXPECT_THROW((void)a53.runScl(f1, 0.5, 1e-6), ConfigError);
}

TEST(Platform, EmSignalPeaksNearLoopFrequency)
{
    Platform a72(junoA72Config(), 1);
    // Clock chosen so the probe loop lands near the resonance.
    a72.setFrequency(560e6); // loop at 70 MHz
    const auto run = a72.runKernel(twoPhaseKernel(a72.pool()), 4e-6);
    const auto spec = dsp::computeSpectrum(run.em);
    const auto pk = dsp::maxPeakInBand(spec, mega(40.0), mega(110.0));
    EXPECT_NEAR(pk.freq_hz, run.stats.loop_freq_hz, mega(3.0));
}

TEST(Platform, RunIdleIsQuietAndSettled)
{
    Platform a72(junoA72Config(), 1);
    const auto idle = a72.runIdle(2e-6);
    // Die voltage flat at nominal minus the leakage IR drop.
    EXPECT_LT(stats::peakToPeak(idle.v_die.samples()), 2e-3);
    EXPECT_NEAR(stats::mean(idle.v_die.samples()), 1.0, 5e-3);
    // Emission at/below the measurement noise floor.
    const auto running =
        a72.runKernel(twoPhaseKernel(a72.pool()), 2e-6);
    EXPECT_LT(stats::rms(idle.em.samples()),
              0.05 * stats::rms(running.em.samples()));
}

TEST(Platform, RunStreamRequiresSufficientLength)
{
    Platform a72(junoA72Config(), 1);
    Rng rng(2);
    std::vector<isa::Instruction> tiny;
    for (int i = 0; i < 100; ++i)
        tiny.push_back(a72.pool().randomInstruction(rng));
    EXPECT_THROW((void)a72.runStream(tiny, 2e-6), ConfigError);

    std::vector<isa::Instruction> enough;
    for (int i = 0; i < 12000; ++i)
        enough.push_back(a72.pool().randomInstruction(rng));
    const auto run = a72.runStream(enough, 1e-6);
    EXPECT_GT(run.v_die.size(), 1000u);
}

TEST(Platform, ConfigValidation)
{
    auto cfg = junoA72Config();
    cfg.pdn.n_cores = 3; // mismatch with platform cores
    EXPECT_THROW(Platform p(cfg, 1), ConfigError);
}

TEST(Platform, DeterministicRunsForSameSeed)
{
    Platform p1(junoA72Config(), 77);
    Platform p2(junoA72Config(), 77);
    const auto k = twoPhaseKernel(p1.pool());
    const auto r1 = p1.runKernel(k, 1e-6);
    const auto r2 = p2.runKernel(k, 1e-6);
    ASSERT_EQ(r1.v_die.size(), r2.v_die.size());
    for (std::size_t i = 0; i < r1.v_die.size(); i += 97)
        EXPECT_DOUBLE_EQ(r1.v_die[i], r2.v_die[i]);
}

} // namespace
} // namespace platform
} // namespace emstress
