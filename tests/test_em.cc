/**
 * @file
 * Tests for the EM layer: Faraday coupling, quadratic power relation,
 * distance falloff, multi-domain summation and antenna S11.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "em/antenna.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace em {
namespace {

/** Sinusoidal current trace. */
Trace
sineCurrent(double freq, double amp, double fs, std::size_t n)
{
    Trace t(1.0 / fs);
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        t.push(amp
               * std::sin(kTwoPi * freq * static_cast<double>(i) / fs));
    }
    return t;
}

TEST(Antenna, ReceivedVoltageIsScaledDerivative)
{
    // For I = A sin(wt), v = M' A w cos(wt): RMS of v is M' A w /
    // sqrt(2).
    const AntennaParams params;
    const Antenna ant(params);
    const double f = 67e6;
    const double amp = 1.0;
    const auto i = sineCurrent(f, amp, 4e9, 8192);
    const auto v = ant.receive(i, params.ref_distance);

    const auto spec = dsp::computeSpectrum(v);
    const auto pk = dsp::maxPeakInBand(spec, f * 0.8, f * 1.2);
    const double cable =
        std::pow(10.0, -params.cable_loss_db / 20.0);
    const double expect_rms = params.mutual_inductance * cable * amp
        * kTwoPi * f / std::sqrt(2.0);
    EXPECT_NEAR(pk.amp_vrms, expect_rms, 0.05 * expect_rms);
    EXPECT_NEAR(pk.freq_hz, f, 2 * spec.binWidth());
}

TEST(Antenna, ReceivedPowerQuadraticInCurrentAmplitude)
{
    // The paper's theoretical basis (Section 2.2): radiated power at
    // a frequency varies quadratically with the oscillatory current
    // amplitude there.
    const AntennaParams params;
    const Antenna ant(params);
    const double f = 67e6;
    const auto v1 =
        ant.receive(sineCurrent(f, 1.0, 4e9, 8192), 0.07);
    const auto v2 =
        ant.receive(sineCurrent(f, 2.0, 4e9, 8192), 0.07);
    const auto p1 = dsp::maxPeakInBand(dsp::computeSpectrum(v1),
                                       f * 0.8, f * 1.2);
    const auto p2 = dsp::maxPeakInBand(dsp::computeSpectrum(v2),
                                       f * 0.8, f * 1.2);
    const double power_ratio =
        (p2.amp_vrms * p2.amp_vrms) / (p1.amp_vrms * p1.amp_vrms);
    EXPECT_NEAR(power_ratio, 4.0, 0.1);
}

TEST(Antenna, HigherFrequencyCouplesMoreStrongly)
{
    // dI/dt coupling tilts +20 dB/decade: equal-amplitude current at
    // higher frequency induces proportionally more voltage. This is
    // why resonant (fast) oscillations dominate the received
    // spectrum.
    const Antenna ant(AntennaParams{});
    const auto v_lo =
        ant.receive(sineCurrent(20e6, 1.0, 4e9, 8192), 0.07);
    const auto v_hi =
        ant.receive(sineCurrent(80e6, 1.0, 4e9, 8192), 0.07);
    const auto p_lo = dsp::maxPeakInBand(dsp::computeSpectrum(v_lo),
                                         10e6, 40e6);
    const auto p_hi = dsp::maxPeakInBand(dsp::computeSpectrum(v_hi),
                                         60e6, 100e6);
    EXPECT_NEAR(p_hi.amp_vrms / p_lo.amp_vrms, 4.0, 0.2);
}

TEST(Antenna, DistanceFalloffIsCubic)
{
    const Antenna ant(AntennaParams{});
    const auto i = sineCurrent(67e6, 1.0, 4e9, 4096);
    const auto v_near = ant.receive(i, 0.05);
    const auto v_far = ant.receive(i, 0.10);
    const auto p_near = dsp::maxPeakInBand(
        dsp::computeSpectrum(v_near), 50e6, 90e6);
    const auto p_far = dsp::maxPeakInBand(dsp::computeSpectrum(v_far),
                                          50e6, 90e6);
    EXPECT_NEAR(p_near.amp_vrms / p_far.amp_vrms, 8.0, 0.4);
}

TEST(Antenna, MultiDomainSumContainsBothSignatures)
{
    // Section 6.1: one antenna sees every domain's signature.
    const Antenna ant(AntennaParams{});
    const auto i_a = sineCurrent(67e6, 1.0, 4e9, 8192);
    const auto i_b = sineCurrent(76e6, 0.8, 4e9, 8192);
    const auto v = ant.receiveMulti({i_a, i_b}, {0.07, 0.07});
    const auto spec = dsp::computeSpectrum(v);
    const auto peaks = dsp::findPeaks(spec, 50e6, 100e6, 4, 0.0);
    ASSERT_GE(peaks.size(), 2u);
    // Both tones present within bin accuracy.
    bool saw_a = false, saw_b = false;
    for (const auto &p : peaks) {
        if (std::abs(p.freq_hz - 67e6) < 3 * spec.binWidth())
            saw_a = true;
        if (std::abs(p.freq_hz - 76e6) < 3 * spec.binWidth())
            saw_b = true;
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

TEST(Antenna, MultiDomainValidatesInput)
{
    const Antenna ant(AntennaParams{});
    EXPECT_THROW((void)ant.receiveMulti({}, {}), ConfigError);
    const auto i = sineCurrent(67e6, 1.0, 4e9, 1024);
    EXPECT_THROW((void)ant.receiveMulti({i}, {0.07, 0.08}),
                 ConfigError);
    Trace other(1.0 / 2e9);
    other.push(0.0);
    other.push(1.0);
    EXPECT_THROW((void)ant.receiveMulti({i, other}, {0.07, 0.07}),
                 ConfigError);
}

TEST(Antenna, S11FlatBelowOneGhzAndDipsAtSelfResonance)
{
    // Fig. 6: |S11| near 1 (poorly matched) and flat up to ~1.2 GHz,
    // with a sharp dip at the 2.95 GHz self-resonance.
    AntennaParams params;
    const Antenna ant(params);
    std::vector<double> freqs;
    for (double f = 50e6; f <= 6e9; f += 25e6)
        freqs.push_back(f);
    const auto s11 = ant.s11Magnitude(freqs);

    double min_mag = 2.0;
    double min_freq = 0.0;
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        if (s11[i] < min_mag) {
            min_mag = s11[i];
            min_freq = freqs[i];
        }
        if (freqs[i] < 1.0e9) {
            // Poorly matched but passive below 1 GHz.
            EXPECT_GT(s11[i], 0.7) << freqs[i];
            EXPECT_LE(s11[i], 1.0 + 1e-9) << freqs[i];
        }
    }
    EXPECT_NEAR(min_freq, params.self_resonance_hz, 0.1e9);
    EXPECT_LT(min_mag, 0.7);
}

TEST(Antenna, ParasiticCapacitanceMatchesSelfResonance)
{
    AntennaParams params;
    const Antenna ant(params);
    const double c = ant.parasiticCapacitance();
    EXPECT_NEAR(lcResonanceHz(params.loop_inductance, c),
                params.self_resonance_hz,
                1.0);
}

TEST(Antenna, ValidatesParameters)
{
    AntennaParams bad;
    bad.mutual_inductance = 0.0;
    EXPECT_THROW(Antenna a(bad), ConfigError);
    const Antenna ant(AntennaParams{});
    const auto i = sineCurrent(67e6, 1.0, 4e9, 1024);
    EXPECT_THROW((void)ant.receive(i, 0.0), ConfigError);
    Trace tiny(1e-9);
    tiny.push(1.0);
    EXPECT_THROW((void)ant.receive(tiny, 0.07), ConfigError);
}

} // namespace
} // namespace em
} // namespace emstress
