/**
 * @file
 * Tests for the virus-search service: the job model and content
 * addressing, the wire codec's bit-exactness, the artifact store,
 * and the SearchService scheduler — admission control, weighted-fair
 * queuing, cancellation, artifact serving — culminating in the
 * determinism contract: jobs through the service (in-process
 * transport, any fleet width, any runner count, with or without
 * injected faults) are bit-identical to direct GaEngine runs of the
 * same specs.
 */

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ga/fault_injector.h"
#include "ga/ga_engine.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "service/artifact_store.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "service/transport.h"
#include "service/wire.h"
#include "util/error.h"

namespace emstress {
namespace service {
namespace {

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/**
 * Cheap, pure, cloneable fitness: a function of the kernel alone
 * (class mix plus a hash-derived term so searches don't plateau),
 * with fixed per-measurement accounting.
 */
class SyntheticFitness : public ga::FitnessEvaluator
{
  public:
    explicit SyntheticFitness(const isa::InstructionPool &pool)
        : pool_(pool)
    {}

    double
    evaluate(const isa::Kernel &kernel,
             ga::EvalDetail *detail) override
    {
        const double mix =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        const double ripple =
            static_cast<double>(kernel.hash() % 1024) / 4096.0;
        if (detail) {
            detail->metric_raw = mix + ripple;
            detail->measurement_seconds = 1.0;
            detail->dominant_freq_hz = 1e8 * (1.0 + ripple);
        }
        return mix + ripple;
    }

    std::string metricName() const override { return "synthetic"; }

    std::unique_ptr<ga::FitnessEvaluator>
    clone() const override
    {
        return std::make_unique<SyntheticFitness>(pool_);
    }

  private:
    const isa::InstructionPool &pool_;
};

/** Factory plugging SyntheticFitness into the service. */
std::unique_ptr<ga::FitnessEvaluator>
syntheticFactory(const JobSpec &spec)
{
    return std::make_unique<SyntheticFitness>(
        presetPool(spec.platform));
}

/**
 * Factory wrapping the synthetic evaluator in connection-level fault
 * injection. The schedule seed derives from the spec, so a direct
 * rerun of the same spec reproduces the same faults — pure schedules
 * make faulted runs comparable bit for bit.
 */
std::unique_ptr<ga::FitnessEvaluator>
faultyFactory(const JobSpec &spec)
{
    SyntheticFitness base(presetPool(spec.platform));
    auto injector = std::make_shared<ga::FaultInjector>(
        FaultSchedule(spec.ga.seed ^ 0x5eedu,
                      FaultRates::uniform(0.2)));
    ga::FaultyEvaluator faulty(base, injector);
    return faulty.clone(); // owning replica (base cloned inside)
}

/** A small job spec the synthetic evaluator finishes instantly. */
JobSpec
smallSpec(std::uint64_t seed, const std::string &tenant = "default")
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.ga.population = 10;
    spec.ga.generations = 5;
    spec.ga.kernel_length = 12;
    spec.ga.elite = 2;
    spec.ga.seed = seed;
    return spec;
}

/** Direct (service-free) run of a spec: the reference bits. */
ga::GaResult
directRun(const JobSpec &spec, const EvaluatorFactory &factory)
{
    auto evaluator = factory(spec);
    ga::GaEngine engine(presetPool(spec.platform), spec.ga);
    return engine.run(*evaluator);
}

/** Require two GA results to match bit for bit. */
void
expectBitIdentical(const ga::GaResult &a, const ga::GaResult &b,
                   const isa::InstructionPool &pool)
{
    EXPECT_EQ(bits(a.best_fitness), bits(b.best_fitness));
    EXPECT_EQ(a.best.serialize(pool), b.best.serialize(pool));
    EXPECT_EQ(bits(a.estimated_lab_seconds),
              bits(b.estimated_lab_seconds));
    EXPECT_EQ(a.eval_stats.evals, b.eval_stats.evals);
    EXPECT_EQ(a.eval_stats.cache_hits, b.eval_stats.cache_hits);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].generation, b.history[i].generation);
        EXPECT_EQ(bits(a.history[i].best_fitness),
                  bits(b.history[i].best_fitness));
        EXPECT_EQ(bits(a.history[i].mean_fitness),
                  bits(b.history[i].mean_fitness));
        EXPECT_EQ(a.history[i].best.serialize(pool),
                  b.history[i].best.serialize(pool));
    }
}

/** Manual-mode service over the synthetic factory. */
ServiceConfig
manualConfig(std::size_t fleet_threads = 1)
{
    ServiceConfig config;
    config.fleet_threads = fleet_threads;
    config.runners = 0;
    config.evaluator_factory = &syntheticFactory;
    return config;
}

// ---------------------------------------------------------------
// Job model: content addressing.
// ---------------------------------------------------------------

TEST(JobModel, FingerprintTracksContentNotTenant)
{
    const JobSpec base = smallSpec(1, "alice");
    JobSpec other_tenant = base;
    other_tenant.tenant = "bob";
    EXPECT_EQ(jobFingerprint(base), jobFingerprint(other_tenant));

    JobSpec changed = base;
    changed.ga.seed = 2;
    EXPECT_NE(jobFingerprint(base), jobFingerprint(changed));

    changed = base;
    changed.platform_seed += 1;
    EXPECT_NE(jobFingerprint(base), jobFingerprint(changed));

    changed = base;
    changed.metric = core::VirusMetric::MaxDroop;
    EXPECT_NE(jobFingerprint(base), jobFingerprint(changed));

    changed = base;
    changed.eval.sa_samples += 1;
    EXPECT_NE(jobFingerprint(base), jobFingerprint(changed));

    changed = base;
    changed.platform = PlatformPreset::kAthlon;
    EXPECT_NE(jobFingerprint(base), jobFingerprint(changed));

    // Scheduling identity never reaches the content address: the
    // same spec submitted interactive-with-deadline must share the
    // batch submission's artifact.
    JobSpec scheduled = base;
    scheduled.job_class = JobClass::kInteractive;
    scheduled.deadline_s = 1.5;
    EXPECT_EQ(jobFingerprint(base), jobFingerprint(scheduled));
}

TEST(JobModel, CrossModeSpecsNeverShareAnArtifact)
{
    // A passive spec and its field-for-field active twin must have
    // different content addresses: the active description appends a
    // "|mode:emfi" suffix while the passive form stays byte-identical
    // to the pre-EMFI service, so a stored passive artifact can never
    // be served for an active job (or vice versa).
    const JobSpec passive = smallSpec(9);
    JobSpec active = passive;
    active.mode = JobMode::kActiveEmfi;

    const std::string passive_desc = jobDescription(passive);
    const std::string active_desc = jobDescription(active);
    EXPECT_EQ(passive_desc.find("|mode:"), std::string::npos);
    EXPECT_NE(active_desc.find("|mode:emfi"), std::string::npos);
    EXPECT_EQ(active_desc.find(passive_desc), 0u);
    EXPECT_NE(jobFingerprint(passive), jobFingerprint(active));

    // EMFI fields are fingerprinted in active mode only.
    JobSpec active_changed = active;
    active_changed.emfi.schedule_seed += 1;
    EXPECT_NE(jobFingerprint(active), jobFingerprint(active_changed));
    JobSpec passive_changed = passive;
    passive_changed.emfi.schedule_seed += 1;
    EXPECT_EQ(jobFingerprint(passive),
              jobFingerprint(passive_changed));

    // Regression at the store level: a passive artifact sits under
    // the passive address; the active twin's lookup is a clean miss.
    ArtifactStore store({});
    store.insert(jobFingerprint(passive),
                 std::make_shared<const JobResult>());
    EXPECT_EQ(store.fetch(jobFingerprint(active)), nullptr);
    EXPECT_NE(store.fetch(jobFingerprint(passive)), nullptr);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().hits, 1u);
}

TEST(JobModel, PresetNamesRoundTrip)
{
    for (const PlatformPreset p :
         {PlatformPreset::kJunoA72, PlatformPreset::kJunoA53,
          PlatformPreset::kAthlon}) {
        PlatformPreset back = PlatformPreset::kJunoA72;
        ASSERT_TRUE(presetFromName(presetName(p), back));
        EXPECT_EQ(p, back);
    }
    PlatformPreset out;
    EXPECT_FALSE(presetFromName("vax", out));
}

// ---------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------

TEST(WireCodec, SpecRoundTripsEveryField)
{
    JobSpec spec;
    spec.tenant = "tenant-7";
    spec.platform = PlatformPreset::kAthlon;
    spec.platform_seed = 0xdeadbeefcafe;
    spec.metric = core::VirusMetric::PeakToPeak;
    spec.ga.population = 33;
    spec.ga.generations = 17;
    spec.ga.kernel_length = 41;
    spec.ga.mutation_rate = 0.0371;
    spec.ga.operand_mutation_ratio = 0.61;
    spec.ga.tournament_k = 5;
    spec.ga.elite = 3;
    spec.ga.seed = 991;
    spec.ga.restarts = 4;
    spec.ga.threads = 6;
    spec.ga.memoize = false;
    spec.ga.retry.max_attempts = 7;
    spec.ga.retry.backoff_s = 0.25;
    spec.ga.retry.backoff_factor = 3.0;
    spec.ga.retry.backoff_cap_s = 11.5;
    spec.eval.duration_s = 2.5e-6;
    spec.eval.f_lo_hz = 6.1e7;
    spec.eval.f_hi_hz = 1.9e8;
    spec.eval.sa_samples = 12;
    spec.eval.active_cores = 2;
    spec.eval.streaming = false;
    spec.job_class = JobClass::kInteractive;
    spec.deadline_s = 12.5;
    spec.mode = JobMode::kActiveEmfi;
    spec.emfi.victim_seed = 401;
    spec.emfi.victim_length = 10;
    spec.emfi.target_slot = 6;
    spec.emfi.schedule_seed = 77;
    spec.emfi.t0_max_s = 1.3e-6;
    spec.emfi.amplitude_max_a = 22.5;

    WireWriter w;
    encodeJobSpec(w, spec);
    WireReader r(w.bytes());
    const JobSpec back = decodeJobSpec(r);
    r.expectEnd();

    EXPECT_EQ(back.tenant, spec.tenant);
    EXPECT_EQ(back.platform, spec.platform);
    EXPECT_EQ(back.platform_seed, spec.platform_seed);
    EXPECT_EQ(back.metric, spec.metric);
    EXPECT_EQ(back.ga.population, spec.ga.population);
    EXPECT_EQ(back.ga.generations, spec.ga.generations);
    EXPECT_EQ(back.ga.kernel_length, spec.ga.kernel_length);
    EXPECT_EQ(bits(back.ga.mutation_rate), bits(spec.ga.mutation_rate));
    EXPECT_EQ(bits(back.ga.operand_mutation_ratio),
              bits(spec.ga.operand_mutation_ratio));
    EXPECT_EQ(back.ga.tournament_k, spec.ga.tournament_k);
    EXPECT_EQ(back.ga.elite, spec.ga.elite);
    EXPECT_EQ(back.ga.seed, spec.ga.seed);
    EXPECT_EQ(back.ga.restarts, spec.ga.restarts);
    EXPECT_EQ(back.ga.threads, spec.ga.threads);
    EXPECT_EQ(back.ga.memoize, spec.ga.memoize);
    EXPECT_EQ(back.ga.retry.max_attempts, spec.ga.retry.max_attempts);
    EXPECT_EQ(bits(back.ga.retry.backoff_s),
              bits(spec.ga.retry.backoff_s));
    EXPECT_EQ(bits(back.eval.duration_s), bits(spec.eval.duration_s));
    EXPECT_EQ(bits(back.eval.f_lo_hz), bits(spec.eval.f_lo_hz));
    EXPECT_EQ(bits(back.eval.f_hi_hz), bits(spec.eval.f_hi_hz));
    EXPECT_EQ(back.eval.sa_samples, spec.eval.sa_samples);
    EXPECT_EQ(back.eval.active_cores, spec.eval.active_cores);
    EXPECT_EQ(back.eval.streaming, spec.eval.streaming);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.emfi.victim_seed, spec.emfi.victim_seed);
    EXPECT_EQ(back.emfi.victim_length, spec.emfi.victim_length);
    EXPECT_EQ(back.emfi.target_slot, spec.emfi.target_slot);
    EXPECT_EQ(back.emfi.schedule_seed, spec.emfi.schedule_seed);
    EXPECT_EQ(bits(back.emfi.t0_max_s), bits(spec.emfi.t0_max_s));
    EXPECT_EQ(bits(back.emfi.amplitude_max_a),
              bits(spec.emfi.amplitude_max_a));
    EXPECT_EQ(back.job_class, spec.job_class);
    EXPECT_EQ(bits(back.deadline_s), bits(spec.deadline_s));

    // The codec preserves the content address.
    EXPECT_EQ(jobFingerprint(back), jobFingerprint(spec));
}

TEST(WireCodec, ResultRoundTripsBitExactly)
{
    const JobSpec spec = smallSpec(3);
    const isa::InstructionPool &pool = presetPool(spec.platform);
    JobResult result;
    result.metric = "synthetic";
    result.ga = directRun(spec, &syntheticFactory);
    result.fingerprint = jobFingerprint(spec);

    WireWriter w;
    encodeJobResult(w, result, pool);
    WireReader r(w.bytes());
    const JobResult back = decodeJobResult(r, pool);
    r.expectEnd();

    EXPECT_EQ(back.metric, result.metric);
    EXPECT_EQ(back.fingerprint, result.fingerprint);
    EXPECT_EQ(back.from_artifact_store, result.from_artifact_store);
    expectBitIdentical(back.ga, result.ga, pool);
    EXPECT_EQ(back.ga.eval_stats.threads,
              result.ga.eval_stats.threads);
    EXPECT_EQ(bits(back.ga.eval_stats.eval_seconds),
              bits(result.ga.eval_stats.eval_seconds));
}

TEST(WireCodec, MalformedBodiesThrow)
{
    // Truncation at every prefix of a valid spec body must throw,
    // never read out of bounds.
    WireWriter w;
    encodeJobSpec(w, smallSpec(1));
    const std::vector<std::uint8_t> &full = w.bytes();
    for (std::size_t cut = 0; cut < full.size();
         cut += full.size() / 7 + 1) {
        WireReader r(full.data(), cut);
        EXPECT_THROW(
            {
                JobSpec s = decodeJobSpec(r);
                (void)s;
            },
            ProtocolError)
            << "cut=" << cut;
    }

    // Unknown enum bytes are rejected.
    std::vector<std::uint8_t> bad(full);
    // tenant is "default" (u32 len + 7 bytes); platform byte follows.
    bad[4 + 7] = 0x7f;
    {
        WireReader r(bad.data(), bad.size());
        EXPECT_THROW(
            {
                JobSpec s = decodeJobSpec(r);
                (void)s;
            },
            ProtocolError);
    }

    // Trailing garbage is detected by expectEnd.
    std::vector<std::uint8_t> extra(full);
    extra.push_back(0);
    WireReader r(extra.data(), extra.size());
    JobSpec s = decodeJobSpec(r);
    (void)s;
    EXPECT_THROW(r.expectEnd(), ProtocolError);
}

// ---------------------------------------------------------------
// Artifact store.
// ---------------------------------------------------------------

TEST(ArtifactStore, InsertFetchInvalidate)
{
    ArtifactStore store({});
    EXPECT_EQ(store.fetch(1), nullptr);
    auto artifact = std::make_shared<const JobResult>();
    store.insert(1, artifact);
    EXPECT_EQ(store.fetch(1), artifact);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.invalidate(1));
    EXPECT_FALSE(store.invalidate(1));
    EXPECT_EQ(store.fetch(1), nullptr);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 2u);
}

TEST(ArtifactStore, TtlEvictsIdleEntriesOnly)
{
    ArtifactStore::Config config;
    config.ttl_epochs = 2;
    ArtifactStore store(config);
    store.insert(1, std::make_shared<const JobResult>());
    store.insert(2, std::make_shared<const JobResult>());

    store.advanceEpoch();
    EXPECT_NE(store.fetch(1), nullptr); // refreshes entry 1
    store.advanceEpoch(); // entry 2 idle exactly ttl: evicted
    EXPECT_EQ(store.fetch(2), nullptr);
    EXPECT_NE(store.fetch(1), nullptr);
    EXPECT_EQ(store.stats().expirations, 1u);
}

TEST(ArtifactStore, TtlBoundaryEvictsOnExactlyTheTtlthAdvance)
{
    // Pin the fencepost: an entry last used at epoch E dies on the
    // advance to E + ttl, not E + ttl + 1. The pre-fix `>` compare
    // let every entry linger one epoch past its configured lifetime,
    // so a ttl of 1 behaved like 2.
    ArtifactStore::Config config;
    config.ttl_epochs = 3;
    ArtifactStore store(config);
    store.insert(7, std::make_shared<const JobResult>());
    store.advanceEpoch();
    store.advanceEpoch();
    EXPECT_EQ(store.size(), 1u); // idle ttl - 1 epochs: still alive
    store.advanceEpoch();        // idle exactly ttl epochs
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.stats().expirations, 1u);
    EXPECT_EQ(store.fetch(7), nullptr);
}

TEST(ArtifactStore, ReplacementsCountedSeparatelyFromInserts)
{
    // A double completion of one fingerprint is an overwrite, not a
    // growth event; the split keeps the insert counter equal to the
    // number of distinct artifacts ever stored.
    ArtifactStore store({});
    auto artifact = std::make_shared<const JobResult>();
    store.insert(1, artifact);
    store.insert(1, artifact); // same address, same bytes
    store.insert(2, artifact);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.stats().inserts, 2u);
    EXPECT_EQ(store.stats().replacements, 1u);
}

// ---------------------------------------------------------------
// Artifact store: persistent disk tier.
// ---------------------------------------------------------------

/** Fresh (pre-cleaned) spill directory under the test temp root. */
std::string
spillDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir())
        / ("emstress_store_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** A real completed artifact for `spec` (via a direct run). */
std::shared_ptr<const JobResult>
makeArtifact(const JobSpec &spec)
{
    JobResult result;
    result.metric = "synthetic";
    result.ga = directRun(spec, &syntheticFactory);
    result.fingerprint = jobFingerprint(spec);
    return std::make_shared<const JobResult>(std::move(result));
}

TEST(ArtifactStoreDisk, RestartServesSpilledArtifactBitIdentical)
{
    const JobSpec spec = smallSpec(41);
    const auto artifact = makeArtifact(spec);
    ArtifactStore::Config config;
    config.spill_dir = spillDir("restart");
    {
        ArtifactStore store(config);
        store.insert(artifact->fingerprint, artifact, spec.platform);
        EXPECT_EQ(store.stats().spill_writes, 1u);
    }

    // A second store over the same directory — the restarted daemon.
    // The scan indexes the sidecar without reading the payload; the
    // first fetch loads lazily and serves the exact bytes.
    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.stats().spill_indexed, 1u);
    EXPECT_EQ(reborn.size(), 1u);
    EXPECT_FALSE(reborn.resident(artifact->fingerprint));
    const auto served = reborn.fetch(artifact->fingerprint);
    ASSERT_NE(served, nullptr);
    EXPECT_TRUE(reborn.resident(artifact->fingerprint));
    EXPECT_EQ(reborn.stats().disk_hits, 1u);
    EXPECT_EQ(reborn.stats().hits, 1u);
    EXPECT_EQ(served->fingerprint, artifact->fingerprint);
    EXPECT_EQ(served->metric, artifact->metric);
    expectBitIdentical(served->ga, artifact->ga,
                       presetPool(spec.platform));
    std::filesystem::remove_all(config.spill_dir);
}

TEST(ArtifactStoreDisk, TtlEvictionRemovesSpillFiles)
{
    ArtifactStore::Config config;
    config.spill_dir = spillDir("ttl");
    config.ttl_epochs = 1;
    {
        ArtifactStore store(config);
        store.insert(1, std::make_shared<const JobResult>());
        store.advanceEpoch();
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().expirations, 1u);
    }
    // The eviction reached the disk tier: a restart indexes nothing.
    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.stats().spill_indexed, 0u);
    EXPECT_EQ(reborn.size(), 0u);
    std::filesystem::remove_all(config.spill_dir);
}

TEST(ArtifactStoreDisk, TruncatedPayloadQuarantinedAtScan)
{
    namespace fs = std::filesystem;
    ArtifactStore::Config config;
    config.spill_dir = spillDir("truncated");
    {
        ArtifactStore store(config);
        store.insert(1, std::make_shared<const JobResult>());
    }
    // Tear the payload (daemon killed mid-write of a non-atomic FS,
    // disk corruption, ...): the size no longer matches the sidecar.
    for (const auto &entry : fs::directory_iterator(config.spill_dir))
        if (entry.path().extension() == ".artifact")
            fs::resize_file(entry.path(), entry.file_size() / 2);

    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.size(), 0u);
    EXPECT_EQ(reborn.stats().spill_quarantined, 1u);
    EXPECT_EQ(reborn.fetch(1), nullptr);
    // The pair moved aside for post-mortems instead of being served.
    std::size_t quarantined = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::path(config.spill_dir)
                                / "quarantine"))
        ++quarantined, (void)entry;
    EXPECT_EQ(quarantined, 2u);
    std::filesystem::remove_all(config.spill_dir);
}

TEST(ArtifactStoreDisk, BitRottedPayloadQuarantinedOnLazyLoad)
{
    namespace fs = std::filesystem;
    const JobSpec spec = smallSpec(43);
    const auto artifact = makeArtifact(spec);
    ArtifactStore::Config config;
    config.spill_dir = spillDir("bitrot");
    {
        ArtifactStore store(config);
        store.insert(artifact->fingerprint, artifact, spec.platform);
    }
    // Same-size corruption passes the scan's size check and must be
    // caught by the decode on the lazy-load path instead.
    for (const auto &entry : fs::directory_iterator(config.spill_dir))
        if (entry.path().extension() == ".artifact") {
            std::ofstream out(entry.path(),
                              std::ios::binary | std::ios::in);
            const char junk[4] = {'\xff', '\xff', '\xff', '\xff'};
            out.write(junk, sizeof junk);
        }

    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.size(), 1u); // the scan cannot see bit rot
    EXPECT_EQ(reborn.fetch(artifact->fingerprint), nullptr);
    EXPECT_EQ(reborn.stats().spill_quarantined, 1u);
    EXPECT_EQ(reborn.stats().misses, 1u);
    EXPECT_EQ(reborn.size(), 0u);
    std::filesystem::remove_all(config.spill_dir);
}

TEST(ArtifactStoreDisk, GarbageSidecarQuarantinedAtScan)
{
    namespace fs = std::filesystem;
    ArtifactStore::Config config;
    config.spill_dir = spillDir("badmeta");
    {
        ArtifactStore store(config);
        store.insert(1, std::make_shared<const JobResult>());
    }
    for (const auto &entry : fs::directory_iterator(config.spill_dir))
        if (entry.path().extension() == ".meta") {
            std::ofstream out(entry.path(), std::ios::trunc);
            out << "not a sidecar\n";
        }

    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.size(), 0u);
    EXPECT_EQ(reborn.stats().spill_quarantined, 1u);
    EXPECT_EQ(reborn.fetch(1), nullptr);
    std::filesystem::remove_all(config.spill_dir);
}

TEST(ArtifactStoreDisk, FetchRefreshPersistsLruAcrossRestart)
{
    // Epoch refreshes rewrite the sidecar, so an entry kept warm
    // before a restart is not reaped as stale after it.
    ArtifactStore::Config config;
    config.spill_dir = spillDir("lru");
    config.ttl_epochs = 3;
    {
        ArtifactStore store(config);
        store.insert(1, std::make_shared<const JobResult>());
        store.advanceEpoch();
        store.advanceEpoch();
        EXPECT_NE(store.fetch(1), nullptr); // refresh at epoch 2
    }
    ArtifactStore reborn(config);
    EXPECT_EQ(reborn.epoch(), 2u); // scan resumes the logical clock
    reborn.advanceEpoch();
    reborn.advanceEpoch();
    EXPECT_EQ(reborn.size(), 1u); // idle 2 < ttl, thanks to refresh
    reborn.advanceEpoch();
    EXPECT_EQ(reborn.size(), 0u);
    std::filesystem::remove_all(config.spill_dir);
}

// ---------------------------------------------------------------
// SearchService: scheduling semantics (manual mode).
// ---------------------------------------------------------------

TEST(SearchService, EventStreamHasCanonicalOrder)
{
    SearchService svc(manualConfig());
    const JobSpec spec = smallSpec(5);
    const Submission sub = svc.submit(spec);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();

    std::vector<JobEventType> types;
    for (;;) {
        auto ev = svc.pollEvent(sub.id);
        ASSERT_TRUE(ev.has_value());
        types.push_back(ev->type);
        if (ev->type == JobEventType::kCompleted)
            break;
    }
    ASSERT_GE(types.size(), 3u);
    EXPECT_EQ(types.front(), JobEventType::kAccepted);
    EXPECT_EQ(types[1], JobEventType::kStarted);
    // One progress event per generation, then completion.
    EXPECT_EQ(types.size(), 2u + spec.ga.generations + 1u);
    for (std::size_t i = 2; i + 1 < types.size(); ++i)
        EXPECT_EQ(types[i], JobEventType::kProgress);
    EXPECT_EQ(types.back(), JobEventType::kCompleted);
}

TEST(SearchService, AdmissionCapsReject)
{
    ServiceConfig config = manualConfig();
    config.max_jobs_in_flight = 2;
    config.max_jobs_per_tenant = 1;
    SearchService svc(config);

    EXPECT_TRUE(svc.submit(smallSpec(1, "a")).accepted);
    const Submission per_tenant = svc.submit(smallSpec(2, "a"));
    EXPECT_FALSE(per_tenant.accepted);
    EXPECT_NE(per_tenant.reject_reason.find("tenant"),
              std::string::npos);

    EXPECT_TRUE(svc.submit(smallSpec(3, "b")).accepted);
    const Submission global = svc.submit(smallSpec(4, "c"));
    EXPECT_FALSE(global.accepted);

    // Draining frees the slots.
    svc.drainManual();
    EXPECT_TRUE(svc.submit(smallSpec(5, "c")).accepted);
}

TEST(SearchService, InvalidSpecRejectedNotThrown)
{
    SearchService svc(manualConfig());
    JobSpec bad = smallSpec(1);
    bad.ga.population = 0;
    const Submission sub = svc.submit(bad);
    EXPECT_FALSE(sub.accepted);
    EXPECT_FALSE(sub.reject_reason.empty());
}

TEST(SearchService, WeightedFairSharingByVirtualTime)
{
    ServiceConfig config = manualConfig();
    config.tenant_weights["heavy"] = 3.0;
    config.tenant_weights["light"] = 1.0;
    SearchService svc(config);

    JobSpec heavy = smallSpec(1, "heavy");
    heavy.ga.generations = 60;
    JobSpec light = smallSpec(2, "light");
    light.ga.generations = 60;
    const Submission hs = svc.submit(heavy);
    const Submission ls = svc.submit(light);
    ASSERT_TRUE(hs.accepted);
    ASSERT_TRUE(ls.accepted);

    for (int i = 0; i < 24; ++i)
        ASSERT_TRUE(svc.stepOnce());

    const std::size_t heavy_done = svc.status(hs.id).generations_done;
    const std::size_t light_done = svc.status(ls.id).generations_done;
    EXPECT_EQ(heavy_done + light_done, 24u);
    // 3:1 share, allowing one step of phase skew.
    EXPECT_NEAR(static_cast<double>(heavy_done), 18.0, 1.0);
    EXPECT_NEAR(static_cast<double>(light_done), 6.0, 1.0);
}

TEST(SearchService, InteractiveClassDrainsAheadOfBatchWithinTenant)
{
    SearchService svc(manualConfig());
    JobSpec batch = smallSpec(1);
    batch.ga.generations = 30;
    JobSpec interactive = smallSpec(2);
    interactive.ga.generations = 5;
    interactive.job_class = JobClass::kInteractive;
    const Submission bs = svc.submit(batch);
    const Submission is = svc.submit(interactive);
    ASSERT_TRUE(bs.accepted);
    ASSERT_TRUE(is.accepted);
    EXPECT_EQ(svc.status(is.id).job_class, JobClass::kInteractive);
    EXPECT_EQ(svc.status(bs.id).job_class, JobClass::kBatch);

    // Every step goes to the interactive ring until it drains, even
    // though the batch job arrived first.
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(svc.stepOnce());
    EXPECT_EQ(svc.status(is.id).state, JobState::kCompleted);
    EXPECT_EQ(svc.status(bs.id).generations_done, 0u);
    svc.drainManual();
    EXPECT_EQ(svc.status(bs.id).state, JobState::kCompleted);
}

TEST(SearchService, InteractiveBoostSkewsCrossTenantShare)
{
    // Across tenants the interactive discount works through virtual
    // time: with the default boost of 4, an interactive-only tenant
    // takes a 4:1 generation share against an equal-weight batch
    // tenant.
    SearchService svc(manualConfig());
    JobSpec interactive = smallSpec(1, "alice");
    interactive.ga.generations = 60;
    interactive.job_class = JobClass::kInteractive;
    JobSpec batch = smallSpec(2, "bob");
    batch.ga.generations = 60;
    const Submission as = svc.submit(interactive);
    const Submission bs = svc.submit(batch);
    ASSERT_TRUE(as.accepted);
    ASSERT_TRUE(bs.accepted);

    for (int i = 0; i < 25; ++i)
        ASSERT_TRUE(svc.stepOnce());
    const std::size_t alice = svc.status(as.id).generations_done;
    const std::size_t bob = svc.status(bs.id).generations_done;
    EXPECT_EQ(alice + bob, 25u);
    EXPECT_NEAR(static_cast<double>(alice), 20.0, 1.0);
    EXPECT_NEAR(static_cast<double>(bob), 5.0, 1.0);
}

// ---------------------------------------------------------------
// Stream re-attachment: retention, rewind, park and reap.
// ---------------------------------------------------------------

TEST(SearchService, EventsRetainedAndReplayedPastAck)
{
    SearchService svc(manualConfig());
    const JobSpec spec = smallSpec(5); // 5 generations
    const Submission sub = svc.submit(spec);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();

    // First delivery consumes the full stream.
    for (;;) {
        const auto ev = svc.pollEvent(sub.id);
        ASSERT_TRUE(ev.has_value());
        if (ev->type == JobEventType::kCompleted)
            break;
    }
    EXPECT_FALSE(svc.pollEvent(sub.id).has_value());

    // Re-attach acking generation 3: the rewind skips lifecycle
    // events and progress the client kept, replays the rest.
    const std::uint64_t epoch = svc.attachStream(sub.id, 3);
    JobEvent ev = svc.waitStreamEvent(sub.id, epoch);
    ASSERT_EQ(ev.type, JobEventType::kProgress);
    EXPECT_EQ(ev.progress.generations_done, 4u);
    ev = svc.waitStreamEvent(sub.id, epoch);
    ASSERT_EQ(ev.type, JobEventType::kProgress);
    EXPECT_EQ(ev.progress.generations_done, 5u);
    ev = svc.waitStreamEvent(sub.id, epoch);
    EXPECT_EQ(ev.type, JobEventType::kCompleted);
    ASSERT_NE(ev.result, nullptr);
    expectBitIdentical(ev.result->ga,
                       directRun(spec, &syntheticFactory),
                       presetPool(spec.platform));
}

TEST(SearchService, NewerAttachSupersedesOlderStream)
{
    SearchService svc(manualConfig());
    const Submission sub = svc.submit(smallSpec(6));
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();

    const std::uint64_t old_epoch = svc.attachStream(sub.id, 0);
    const std::uint64_t new_epoch = svc.attachStream(sub.id, 0);
    EXPECT_THROW(svc.waitStreamEvent(sub.id, old_epoch),
                 SimulationError);
    // A stale epoch cannot park the job out from under the new
    // stream either.
    svc.parkStream(sub.id, old_epoch);
    EXPECT_FALSE(svc.status(sub.id).parked);
    // The newer stream is live.
    const JobEvent ev = svc.waitStreamEvent(sub.id, new_epoch);
    EXPECT_EQ(ev.type, JobEventType::kProgress);
}

TEST(SearchService, ParkedStreamsReapedAfterGraceWindow)
{
    ServiceConfig config = manualConfig();
    config.orphan_grace_searches = 1;
    SearchService svc(config);
    const Submission sub = svc.submit(smallSpec(1), /*token=*/77);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();
    EXPECT_EQ(svc.resolveResumeToken(77), sub.id);

    const std::uint64_t epoch = svc.attachStream(sub.id, 0);
    svc.parkStream(sub.id, epoch);
    EXPECT_TRUE(svc.status(sub.id).parked);

    // One completed search inside the grace window: still resumable.
    ASSERT_TRUE(svc.submit(smallSpec(2)).accepted);
    svc.drainManual();
    EXPECT_EQ(svc.resolveResumeToken(77), sub.id);

    // The next completion lapses the window; the reaper retires the
    // job, its retained events and the token registration.
    ASSERT_TRUE(svc.submit(smallSpec(3)).accepted);
    svc.drainManual();
    EXPECT_EQ(svc.resolveResumeToken(77), 0u);
    EXPECT_THROW(svc.status(sub.id), ConfigError);
}

TEST(SearchService, ResumeUnparksAndEscapesTheReaper)
{
    ServiceConfig config = manualConfig();
    config.orphan_grace_searches = 1;
    SearchService svc(config);
    const Submission sub = svc.submit(smallSpec(1), /*token=*/9);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();
    const std::uint64_t epoch = svc.attachStream(sub.id, 0);
    svc.parkStream(sub.id, epoch);

    // Resume (attach) before the window lapses: the job is no longer
    // parked, and later completions leave it alone.
    svc.attachStream(sub.id, 0);
    EXPECT_FALSE(svc.status(sub.id).parked);
    for (std::uint64_t s = 2; s <= 4; ++s) {
        ASSERT_TRUE(svc.submit(smallSpec(s)).accepted);
        svc.drainManual();
    }
    EXPECT_EQ(svc.resolveResumeToken(9), sub.id);
    EXPECT_EQ(svc.status(sub.id).state, JobState::kCompleted);
}

TEST(SearchService, ZeroGraceParksForever)
{
    ServiceConfig config = manualConfig();
    config.orphan_grace_searches = 0; // park forever
    SearchService svc(config);
    const Submission sub = svc.submit(smallSpec(1), /*token=*/5);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();
    svc.parkStream(sub.id, svc.attachStream(sub.id, 0));
    for (std::uint64_t s = 2; s <= 6; ++s) {
        ASSERT_TRUE(svc.submit(smallSpec(s)).accepted);
        svc.drainManual();
    }
    EXPECT_EQ(svc.resolveResumeToken(5), sub.id);
    EXPECT_TRUE(svc.status(sub.id).parked);
}

TEST(SearchService, CancelQueuedJobImmediately)
{
    SearchService svc(manualConfig());
    const Submission sub = svc.submit(smallSpec(9));
    ASSERT_TRUE(sub.accepted);
    EXPECT_TRUE(svc.cancel(sub.id));
    EXPECT_EQ(svc.status(sub.id).state, JobState::kCancelled);
    EXPECT_FALSE(svc.cancel(sub.id)); // already terminal
    EXPECT_EQ(svc.result(sub.id), nullptr);
    EXPECT_FALSE(svc.stepOnce()); // nothing runnable
}

TEST(SearchService, CancelRunningJobDrainsWithoutPoisoning)
{
    SearchService svc(manualConfig());
    JobSpec spec = smallSpec(11);
    spec.ga.generations = 40;
    const Submission sub = svc.submit(spec);
    ASSERT_TRUE(sub.accepted);

    ASSERT_TRUE(svc.stepOnce());
    ASSERT_TRUE(svc.stepOnce());
    EXPECT_EQ(svc.status(sub.id).state, JobState::kRunning);
    EXPECT_TRUE(svc.cancel(sub.id));
    svc.drainManual();
    EXPECT_EQ(svc.status(sub.id).state, JobState::kCancelled);

    // The shared fleet and service remain healthy: an identical
    // spec searched fresh afterwards matches a direct run bit for
    // bit — the cancelled job cached or scored nothing.
    const Submission again = svc.submit(spec);
    ASSERT_TRUE(again.accepted);
    svc.drainManual();
    ASSERT_EQ(svc.status(again.id).state, JobState::kCompleted);
    const auto result = svc.result(again.id);
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->ga.eval_stats.permanent_failures, 0u);
    expectBitIdentical(result->ga, directRun(spec, &syntheticFactory),
                       presetPool(spec.platform));
}

TEST(SearchService, ArtifactStoreServesRepeatInstantly)
{
    SearchService svc(manualConfig());
    const JobSpec spec = smallSpec(21, "alice");
    const Submission first = svc.submit(spec);
    ASSERT_TRUE(first.accepted);
    svc.drainManual();
    const auto searched = svc.result(first.id);
    ASSERT_NE(searched, nullptr);
    EXPECT_FALSE(searched->from_artifact_store);

    // Same content, different tenant: served instantly, no stepping.
    JobSpec repeat = spec;
    repeat.tenant = "bob";
    const Submission second = svc.submit(repeat);
    ASSERT_TRUE(second.accepted);
    EXPECT_EQ(svc.status(second.id).state, JobState::kCompleted);
    EXPECT_FALSE(svc.stepOnce());
    const auto served = svc.result(second.id);
    ASSERT_NE(served, nullptr);
    EXPECT_TRUE(served->from_artifact_store);
    expectBitIdentical(served->ga, searched->ga,
                       presetPool(spec.platform));
    EXPECT_GE(svc.artifacts().stats().hits, 1u);
}

// ---------------------------------------------------------------
// The determinism contract.
// ---------------------------------------------------------------

/**
 * N jobs with distinct seeds through the in-process service must be
 * bit-identical to N sequential direct GaEngine runs — at fleet
 * widths 1, 2 and 8 (ISSUE acceptance criterion).
 */
TEST(ServiceDeterminism, InProcessJobsMatchDirectRunsAcrossFleets)
{
    std::vector<JobSpec> specs;
    for (std::uint64_t s = 1; s <= 4; ++s)
        specs.push_back(smallSpec(100 + s));

    std::vector<ga::GaResult> direct;
    for (const JobSpec &spec : specs)
        direct.push_back(directRun(spec, &syntheticFactory));

    for (const std::size_t fleet : {1u, 2u, 8u}) {
        SearchService svc(manualConfig(fleet));
        InProcessTransport transport(svc);
        std::vector<JobId> ids;
        for (const JobSpec &spec : specs) {
            const Submission sub = transport.submit(spec);
            ASSERT_TRUE(sub.accepted);
            ids.push_back(sub.id);
        }
        svc.drainManual();
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const JobEvent ev = transport.awaitTerminal(ids[i]);
            ASSERT_EQ(ev.type, JobEventType::kCompleted)
                << "fleet=" << fleet << " job=" << i;
            ASSERT_NE(ev.result, nullptr);
            expectBitIdentical(ev.result->ga, direct[i],
                               presetPool(specs[i].platform));
        }
    }
}

/** The same contract with injected TargetConnection-level faults. */
TEST(ServiceDeterminism, FaultInjectedJobsMatchDirectRunsAcrossFleets)
{
    std::vector<JobSpec> specs;
    for (std::uint64_t s = 1; s <= 3; ++s)
        specs.push_back(smallSpec(200 + s));

    std::vector<ga::GaResult> direct;
    for (const JobSpec &spec : specs)
        direct.push_back(directRun(spec, &faultyFactory));

    // Prove the schedule actually fired for at least one spec —
    // otherwise this test degenerates to the fault-free one.
    std::size_t faults = 0;
    for (const ga::GaResult &r : direct)
        faults += r.eval_stats.faults_injected;
    EXPECT_GT(faults, 0u);

    for (const std::size_t fleet : {1u, 2u, 8u}) {
        ServiceConfig config = manualConfig(fleet);
        config.evaluator_factory = &faultyFactory;
        SearchService svc(config);
        InProcessTransport transport(svc);
        std::vector<JobId> ids;
        for (const JobSpec &spec : specs)
            ids.push_back(transport.submit(spec).id);
        svc.drainManual();
        for (std::size_t i = 0; i < ids.size(); ++i) {
            const JobEvent ev = transport.awaitTerminal(ids[i]);
            ASSERT_EQ(ev.type, JobEventType::kCompleted);
            expectBitIdentical(ev.result->ga, direct[i],
                               presetPool(specs[i].platform));
            EXPECT_EQ(ev.result->ga.eval_stats.faults_injected,
                      direct[i].eval_stats.faults_injected);
            EXPECT_EQ(ev.result->ga.eval_stats.retries,
                      direct[i].eval_stats.retries);
        }
    }
}

/** A small active-EMFI job over the real platform evaluator. */
JobSpec
emfiSpec(std::uint64_t seed, const std::string &tenant = "default")
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.mode = JobMode::kActiveEmfi;
    spec.ga.population = 8;
    spec.ga.generations = 3;
    spec.ga.kernel_length = ga::kPulseGenomeSlots;
    spec.ga.elite = 2;
    spec.ga.seed = seed;
    spec.eval.duration_s = 1e-6;
    spec.emfi.t0_max_s = 0.8e-6;
    return spec;
}

/**
 * Active-EMFI jobs through the service (pulse-genome decode, victim
 * replay, fault-effects scoring — the whole campaign stack) must be
 * bit-identical to a direct run at fleet widths 1, 2 and 8.
 */
TEST(ServiceDeterminism, EmfiJobsMatchDirectRunsAcrossFleets)
{
    const JobSpec spec = emfiSpec(17);
    const ga::GaResult direct =
        directRun(spec, &makePlatformEvaluator);

    for (const std::size_t fleet : {1u, 2u, 8u}) {
        ServiceConfig config = manualConfig(fleet);
        config.evaluator_factory = &makePlatformEvaluator;
        SearchService svc(config);
        const Submission sub = svc.submit(spec);
        ASSERT_TRUE(sub.accepted) << "fleet=" << fleet;
        svc.drainManual();
        ASSERT_EQ(svc.status(sub.id).state, JobState::kCompleted);
        const auto result = svc.result(sub.id);
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result->metric, "emfi-min-energy");
        expectBitIdentical(result->ga, direct,
                           presetPool(spec.platform));
    }
}

/** Mid-campaign cancellation of an EMFI job drains cleanly. */
TEST(SearchService, CancelRunningEmfiJobDrainsWithoutPoisoning)
{
    ServiceConfig config = manualConfig();
    config.evaluator_factory = &makePlatformEvaluator;
    SearchService svc(config);
    JobSpec spec = emfiSpec(23);
    spec.ga.generations = 12;
    const Submission sub = svc.submit(spec);
    ASSERT_TRUE(sub.accepted);

    ASSERT_TRUE(svc.stepOnce());
    ASSERT_TRUE(svc.stepOnce());
    EXPECT_EQ(svc.status(sub.id).state, JobState::kRunning);
    EXPECT_TRUE(svc.cancel(sub.id));
    svc.drainManual();
    EXPECT_EQ(svc.status(sub.id).state, JobState::kCancelled);

    // A fresh identical campaign afterwards still matches a direct
    // run bit for bit: the cancelled job cached or scored nothing.
    const Submission again = svc.submit(spec);
    ASSERT_TRUE(again.accepted);
    svc.drainManual();
    ASSERT_EQ(svc.status(again.id).state, JobState::kCompleted);
    const auto result = svc.result(again.id);
    ASSERT_NE(result, nullptr);
    expectBitIdentical(result->ga,
                       directRun(spec, &makePlatformEvaluator),
                       presetPool(spec.platform));
}

/** Multi-start jobs (scout/final flow) run through the service. */
TEST(ServiceDeterminism, MultiStartJobMatchesDirectRun)
{
    JobSpec spec = smallSpec(31);
    spec.ga.restarts = 3;
    spec.ga.generations = 6;
    const ga::GaResult direct = directRun(spec, &syntheticFactory);

    SearchService svc(manualConfig(2));
    const Submission sub = svc.submit(spec);
    ASSERT_TRUE(sub.accepted);
    svc.drainManual();
    const auto result = svc.result(sub.id);
    ASSERT_NE(result, nullptr);
    expectBitIdentical(result->ga, direct,
                       presetPool(spec.platform));
}

/**
 * Background runner threads interleave jobs nondeterministically —
 * and the results must not care.
 */
TEST(ServiceDeterminism, RunnerThreadsProduceIdenticalBits)
{
    std::vector<JobSpec> specs;
    for (std::uint64_t s = 1; s <= 6; ++s)
        specs.push_back(smallSpec(300 + s, s % 2 ? "odd" : "even"));

    std::vector<ga::GaResult> direct;
    for (const JobSpec &spec : specs)
        direct.push_back(directRun(spec, &syntheticFactory));

    ServiceConfig config = manualConfig(2);
    config.runners = 3;
    SearchService svc(config);
    std::vector<JobId> ids;
    for (const JobSpec &spec : specs)
        ids.push_back(svc.submit(spec).id);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_EQ(svc.waitTerminal(ids[i]), JobState::kCompleted);
        const auto result = svc.result(ids[i]);
        ASSERT_NE(result, nullptr);
        expectBitIdentical(result->ga, direct[i],
                           presetPool(specs[i].platform));
    }
}

} // namespace
} // namespace service
} // namespace emstress
