/**
 * @file
 * Physical-soundness property tests for the circuit engine and PDN:
 * passivity (an RLC network never generates energy: Re{Z(jw)} >= 0),
 * bounded-input/bounded-output transient stability on random
 * ladders, KCL at the die node, and reciprocity of transfer
 * impedances. These guard the substrate every experiment stands on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/ac.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "pdn/pdn_model.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace circuit {
namespace {

/** Random RLC ladder of a few stages, always with resistive losses. */
Netlist
randomLadder(Rng &rng, NodeId &drive_node, NodeId &far_node)
{
    Netlist nl;
    const int stages = rng.uniformInt(2, 5);
    NodeId prev = nl.newNode();
    drive_node = prev;
    for (int s = 0; s < stages; ++s) {
        const NodeId mid = nl.newNode();
        const NodeId next = nl.newNode();
        const std::string tag = std::to_string(s);
        nl.addResistor("r" + tag, prev, mid,
                       rng.uniform(0.05, 1.0));
        nl.addInductor("l" + tag, mid, next,
                       rng.uniform(1e-12, 1e-8));
        const NodeId capn = nl.newNode();
        nl.addCapacitor("c" + tag, next, capn,
                        rng.uniform(1e-11, 1e-6));
        nl.addResistor("esr" + tag, capn, kGround,
                       rng.uniform(0.05, 0.5));
        prev = next;
    }
    nl.addResistor("r_term", prev, kGround,
                   rng.uniform(0.01, 10.0));
    far_node = prev;
    nl.addCurrentSource("i_drive", drive_node, kGround, 0.0);
    return nl;
}

class RandomLadderTest : public ::testing::TestWithParam<int>
{};

TEST_P(RandomLadderTest, InputImpedanceIsPassive)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    NodeId drive = kGround, far = kGround;
    const auto nl = randomLadder(rng, drive, far);
    AcAnalysis ac(nl);
    const auto freqs = logFrequencyGrid(1e3, 2e9, 80);
    const auto sweep = ac.inputImpedance(drive, freqs);
    for (std::size_t i = 0; i < sweep.values.size(); ++i) {
        // A passive one-port never has negative input resistance.
        EXPECT_GE(sweep.values[i].real(), -1e-9)
            << "f=" << freqs[i];
    }
}

TEST_P(RandomLadderTest, TransferImpedanceIsReciprocal)
{
    // Reciprocity of linear RLC networks: Z(drive a, observe b) ==
    // Z(drive b, observe a).
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    NodeId drive = kGround, far = kGround;
    const auto nl = randomLadder(rng, drive, far);
    AcAnalysis ac(nl);
    const std::vector<double> freqs = {1e5, 1e7, 3e8};
    const auto fwd = ac.transferImpedance(drive, far, freqs);
    const auto rev = ac.transferImpedance(far, drive, freqs);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        EXPECT_NEAR(std::abs(fwd.values[i] - rev.values[i]), 0.0,
                    1e-9 * (1.0 + std::abs(fwd.values[i])))
            << "f=" << freqs[i];
    }
}

TEST_P(RandomLadderTest, TransientStaysBoundedAndDoesNotGrow)
{
    // Stability property of the integrator on dissipative networks:
    // the response to a bounded drive never grows without bound. The
    // early portion of the run must already contain the worst
    // excursion (no late blow-up), and everything stays finite.
    // (A strict ring-down-to-zero check is deliberately not used:
    // trapezoidal integration leaves a *bounded* Nyquist ripple on
    // storage-free node chains — see transient.h.)
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    NodeId drive = kGround, far = kGround;
    const auto nl = randomLadder(rng, drive, far);

    TransientAnalysis tr(nl, 0.25e-9);
    const double drive_end = 1e-6;
    auto result = tr.run(
        16000,
        {[drive_end](double t) {
            if (t >= drive_end)
                return 0.0;
            return std::fmod(t, 20e-9) < 10e-9 ? 1.0 : 0.0;
        }},
        {{ProbeKind::NodeVoltage, drive, "", "v"}});
    const auto &v = result.trace("v");

    double peak_early = 0.0;
    for (std::size_t k = 0; k < 6000; ++k) {
        ASSERT_TRUE(std::isfinite(v[k])) << "step " << k;
        peak_early = std::max(peak_early, std::abs(v[k]));
    }
    double peak_late = 0.0;
    for (std::size_t k = 6000; k < v.size(); ++k) {
        ASSERT_TRUE(std::isfinite(v[k])) << "step " << k;
        peak_late = std::max(peak_late, std::abs(v[k]));
    }
    EXPECT_LE(peak_late, peak_early * 1.05 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLadderTest,
                         ::testing::Range(1, 9));

TEST(PdnPhysics, DieNodeImpedanceIsPassiveEverywhere)
{
    pdn::PdnParameters params;
    params.calibrateDieTank(mega(67.0), mega(85.0), 2, nano(120.0));
    pdn::PdnModel model(params);
    AcAnalysis ac(model.netlist());
    const auto freqs = logFrequencyGrid(1e3, 5e9, 150);
    const auto sweep = ac.inputImpedance(model.dieNode(), freqs);
    for (std::size_t i = 0; i < sweep.values.size(); ++i)
        EXPECT_GE(sweep.values[i].real(), -1e-9) << freqs[i];
}

TEST(PdnPhysics, EnergyDeliveredNeverNegative)
{
    // Cumulative energy flowing out of the supply into a passive
    // network under arbitrary load never goes negative.
    pdn::PdnParameters params;
    params.calibrateDieTank(mega(67.0), mega(85.0), 2, nano(120.0));
    pdn::PdnModel model(params);
    Rng rng(5);
    Trace load(0.25e-9);
    for (int i = 0; i < 8000; ++i)
        load.push(rng.uniform(0.0, 2.0));
    const auto sim = model.simulate(load);
    double energy = 0.0;
    for (std::size_t k = 0; k < sim.v_die.size(); ++k) {
        // Power delivered to the load branch.
        energy += sim.v_die[k] * load[std::min(k, load.size() - 1)]
            * sim.v_die.dt();
        EXPECT_GE(energy, -1e-15) << "step " << k;
    }
    // And the average die voltage stays below the supply (net
    // dissipation, not generation).
    EXPECT_LE(stats::mean(sim.v_die.samples()), params.v_nom + 1e-9);
}

} // namespace
} // namespace circuit
} // namespace emstress
