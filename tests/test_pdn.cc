/**
 * @file
 * Tests for the PDN model: calibration math, impedance spectrum
 * structure, resonance extraction, power-gating behaviour and
 * time-domain resonance amplification.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "pdn/pdn_model.h"
#include "pdn/resonance.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace pdn {
namespace {

/** A72-like parameter set used across these tests. */
PdnParameters
a72LikeParams()
{
    PdnParameters p;
    p.calibrateDieTank(mega(67.0), mega(85.0), 2, nano(120.0));
    p.v_nom = 1.0;
    return p;
}

TEST(PdnParameters, CalibrationHitsAnchors)
{
    const auto p = a72LikeParams();
    EXPECT_NEAR(p.firstOrderResonance(2), mega(67.0), mega(0.01));
    EXPECT_NEAR(p.firstOrderResonance(1), mega(85.0), mega(0.01));
}

TEST(PdnParameters, CalibrationValidatesInput)
{
    PdnParameters p;
    EXPECT_THROW(p.calibrateDieTank(mega(85.0), mega(67.0), 2,
                                    nano(120.0)),
                 ConfigError);
    EXPECT_THROW(p.calibrateDieTank(mega(67.0), mega(85.0), 1,
                                    nano(120.0)),
                 ConfigError);
    // Anchor ratio too large for the core count: (f1/fA)^2 >= n.
    EXPECT_THROW(p.calibrateDieTank(mega(50.0), mega(80.0), 2,
                                    nano(120.0)),
                 ConfigError);
}

TEST(PdnParameters, DieCapacitanceRejectsZeroClampsHighPoweredCores)
{
    const auto p = a72LikeParams();
    // A fully power-gated domain (fig13) is a different circuit, not
    // the one-core ladder: asking for its capacitance is a config
    // error, never a silent alias of dieCapacitance(1).
    EXPECT_THROW((void)p.dieCapacitance(0), ConfigError);
    // Above n_cores still clamps: no more than every core powered.
    EXPECT_DOUBLE_EQ(p.dieCapacitance(99), p.dieCapacitance(2));
    EXPECT_GT(p.dieCapacitance(2), p.dieCapacitance(1));
}

TEST(PdnParameters, ResonanceScalesAsInverseSqrtCapacitance)
{
    // Property from the paper (Section 6): f ~ 1/sqrt(C_die).
    const auto p = a72LikeParams();
    const double f2 = p.firstOrderResonance(2);
    const double f1 = p.firstOrderResonance(1);
    const double expect =
        std::sqrt(p.dieCapacitance(2) / p.dieCapacitance(1));
    EXPECT_NEAR(f1 / f2, expect, 1e-9);
}

TEST(PdnModel, ImpedanceShowsFirstOrderPeakAtCalibratedFrequency)
{
    PdnModel model(a72LikeParams());
    const double f1 = firstOrderResonanceHz(model);
    // The full ladder shifts the ideal LC value slightly; allow 10%.
    EXPECT_NEAR(f1, mega(67.0), mega(6.7));
}

TEST(PdnModel, ImpedanceHasMultipleResonances)
{
    PdnModel model(a72LikeParams());
    const auto peaks = findResonances(model, 1e3, 1e9, 160);
    ASSERT_GE(peaks.size(), 2u);
    EXPECT_EQ(peaks[0].order, 1);
    // 1st-order peak in the paper's 50-200 MHz window.
    EXPECT_GT(peaks[0].freq_hz, mega(50.0));
    EXPECT_LT(peaks[0].freq_hz, mega(200.0));
    // 2nd-order peak well below, in the ~0.5-20 MHz region.
    EXPECT_GT(peaks[1].freq_hz, kilo(300.0));
    EXPECT_LT(peaks[1].freq_hz, mega(20.0));
    // 1st-order peak is the highest impedance of all peaks.
    for (std::size_t i = 1; i < peaks.size(); ++i)
        EXPECT_GT(peaks[0].impedance_ohm, peaks[i].impedance_ohm);
}

TEST(PdnModel, PowerGatingRaisesResonance)
{
    PdnModel model(a72LikeParams());
    model.setPoweredCores(2);
    const double f_two = firstOrderResonanceHz(model);
    model.setPoweredCores(1);
    const double f_one = firstOrderResonanceHz(model);
    EXPECT_GT(f_one, f_two);
    EXPECT_NEAR(f_one / f_two, 85.0 / 67.0, 0.08);
}

TEST(PdnModel, SetPoweredCoresValidates)
{
    PdnModel model(a72LikeParams());
    EXPECT_THROW(model.setPoweredCores(0), ConfigError);
    EXPECT_THROW(model.setPoweredCores(3), ConfigError);
}

TEST(PdnModel, DcOperatingPointNearNominal)
{
    // With zero load the die sits at V_nom; with a DC load it sags by
    // the loop IR drop only (inductors are shorts at DC).
    PdnModel model(a72LikeParams());
    Trace idle(0.5e-9);
    for (int i = 0; i < 2000; ++i)
        idle.push(0.0);
    const auto res = model.simulate(idle);
    EXPECT_NEAR(res.v_die[res.v_die.size() - 1], 1.0, 1e-6);

    Trace loaded(0.5e-9);
    for (int i = 0; i < 2000; ++i)
        loaded.push(1.0); // 1 A draw
    const auto res2 = model.simulate(loaded);
    const auto &p = model.params();
    const double ir = p.r_vrm + p.r_pcb + p.r_pkg; // series path
    EXPECT_NEAR(res2.v_die[res2.v_die.size() - 1], 1.0 - ir, 5e-3);
}

TEST(PdnModel, StepResponseRingsAtFirstOrderResonance)
{
    PdnModel model(a72LikeParams());
    const double dt = 0.5e-9;
    const auto res = model.stepResponse(1.0, dt, 2e-6);
    // Spectral content of the ringing sits at the 1st-order peak.
    const auto spec = dsp::computeSpectrum(res.v_die);
    const auto peak = dsp::maxPeakInBand(spec, mega(30.0), mega(200.0));
    EXPECT_NEAR(peak.freq_hz, firstOrderResonanceHz(model),
                mega(5.0));
}

TEST(PdnModel, ResonantSquareWaveAmplifiesNoise)
{
    // Square-wave current at the resonance produces much larger
    // peak-to-peak die-voltage noise than the same amplitude well
    // off resonance — the core physics of the whole paper (Fig. 2).
    PdnModel model(a72LikeParams());
    const double f1 = firstOrderResonanceHz(model);
    const double dt = 0.5e-9;
    const double dur = 4e-6;
    const auto at_res = model.squareWaveResponse(f1, 1.0, dt, dur);
    const auto off_res =
        model.squareWaveResponse(f1 * 2.7, 1.0, dt, dur);
    // Compare steady-state halves.
    const auto tail = [](const Trace &t) {
        return t.slice(t.size() / 2, t.size() / 2);
    };
    const double pp_res =
        stats::peakToPeak(tail(at_res.v_die).samples());
    const double pp_off =
        stats::peakToPeak(tail(off_res.v_die).samples());
    EXPECT_GT(pp_res, 2.0 * pp_off);
}

TEST(PdnModel, ResonantExcitationAlsoAmplifiesDieCurrent)
{
    // Fig. 2: both V_DIE and I_DIE oscillate maximally at resonance —
    // the property that links voltage noise to EM emanation.
    PdnModel model(a72LikeParams());
    const double f1 = firstOrderResonanceHz(model);
    const double dt = 0.5e-9;
    const double dur = 4e-6;
    const auto at_res = model.squareWaveResponse(f1, 1.0, dt, dur);
    const auto off_res =
        model.squareWaveResponse(f1 * 2.7, 1.0, dt, dur);
    const auto tail = [](const Trace &t) {
        return t.slice(t.size() / 2, t.size() / 2);
    };
    const double pp_res =
        stats::peakToPeak(tail(at_res.i_die).samples());
    const double pp_off =
        stats::peakToPeak(tail(off_res.i_die).samples());
    EXPECT_GT(pp_res, 1.5 * pp_off);
}

TEST(PdnModel, SclInjectorDrivesNoise)
{
    PdnModel model(a72LikeParams());
    const double f1 = firstOrderResonanceHz(model);
    Trace zero_load(0.5e-9);
    for (int i = 0; i < 8000; ++i)
        zero_load.push(0.0);
    const double period = 1.0 / f1;
    const auto res = model.simulate(
        zero_load, [period](double t) {
            return std::fmod(t, period) < 0.5 * period ? 0.5 : 0.0;
        });
    EXPECT_GT(stats::peakToPeak(res.v_die.samples()), 1e-3);
}

TEST(PdnModel, SquareWaveValidatesTimestep)
{
    PdnModel model(a72LikeParams());
    EXPECT_THROW(
        (void)model.squareWaveResponse(mega(500.0), 1.0, 2e-9, 1e-6),
        ConfigError);
}

TEST(PdnModel, SimulateRequiresSamples)
{
    PdnModel model(a72LikeParams());
    Trace empty(1e-9);
    EXPECT_THROW((void)model.simulate(empty), ConfigError);
}

class PoweredCoresSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(PoweredCoresSweep, QuadCoreResonanceMonotoneInGating)
{
    // A53-like quad cluster: every gated core raises the resonance.
    PdnParameters p;
    p.calibrateDieTank(mega(76.5), mega(97.0), 4, nano(60.0));
    PdnModel model(p);
    const std::size_t k = GetParam();
    model.setPoweredCores(k);
    const double f_k = firstOrderResonanceHz(model);
    if (k > 1) {
        model.setPoweredCores(k - 1);
        const double f_fewer = firstOrderResonanceHz(model);
        EXPECT_GT(f_fewer, f_k);
    }
    EXPECT_GT(f_k, mega(50.0));
    EXPECT_LT(f_k, mega(120.0));
}

INSTANTIATE_TEST_SUITE_P(OneToFourCores, PoweredCoresSweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace pdn
} // namespace emstress
