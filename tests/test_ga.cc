/**
 * @file
 * Tests for the GA engine: operators, convergence on synthetic
 * fitness landscapes, elitism, determinism and config validation.
 */

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "ga/batch_evaluator.h"
#include "ga/ga_engine.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace emstress {
namespace ga {
namespace {

/** Fitness = count of SIMD instructions: a simple evolvable target. */
class SimdCountFitness : public FitnessEvaluator
{
  public:
    explicit SimdCountFitness(const isa::InstructionPool &pool)
        : pool_(pool)
    {}

    double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail) override
    {
        ++evaluations;
        double score =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        if (detail) {
            detail->metric_raw = score;
            detail->measurement_seconds = 1.0;
        }
        return score;
    }

    std::string metricName() const override { return "simd-count"; }

    int evaluations = 0;

  private:
    const isa::InstructionPool &pool_;
};

/**
 * Cloneable variant for the parallel-evaluation tests: fitness is a
 * pure function of the kernel, and every instance (original or clone)
 * bumps one shared thread-safe counter.
 */
class CloneableSimdFitness : public FitnessEvaluator
{
  public:
    CloneableSimdFitness(const isa::InstructionPool &pool,
                         std::shared_ptr<std::atomic<int>> counter)
        : pool_(pool), counter_(std::move(counter))
    {}

    double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail) override
    {
        counter_->fetch_add(1, std::memory_order_relaxed);
        const double score =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        if (detail) {
            detail->metric_raw = score;
            detail->measurement_seconds = 1.0;
        }
        return score;
    }

    std::string metricName() const override { return "simd-count"; }

    std::unique_ptr<FitnessEvaluator>
    clone() const override
    {
        return std::make_unique<CloneableSimdFitness>(pool_,
                                                      counter_);
    }

  private:
    const isa::InstructionPool &pool_;
    std::shared_ptr<std::atomic<int>> counter_;
};

GaConfig
smallConfig()
{
    GaConfig cfg;
    cfg.population = 16;
    cfg.generations = 20;
    cfg.kernel_length = 20;
    cfg.mutation_rate = 0.05;
    cfg.tournament_k = 3;
    cfg.elite = 2;
    cfg.seed = 11;
    return cfg;
}

TEST(GaOperators, TournamentPrefersFitter)
{
    Rng rng(1);
    const std::vector<double> fitness = {0.1, 0.9, 0.2, 0.3};
    int wins_for_best = 0;
    for (int i = 0; i < 400; ++i)
        if (GaEngine::tournamentSelect(fitness, 3, rng) == 1)
            ++wins_for_best;
    // With k=3 the best of 4 wins far more often than uniform (25%).
    EXPECT_GT(wins_for_best, 200);
}

TEST(GaOperators, TournamentK1IsUniform)
{
    Rng rng(2);
    const std::vector<double> fitness = {0.1, 0.9};
    int first = 0;
    for (int i = 0; i < 1000; ++i)
        if (GaEngine::tournamentSelect(fitness, 1, rng) == 0)
            ++first;
    EXPECT_GT(first, 400);
    EXPECT_LT(first, 600);
}

TEST(GaOperators, CrossoverMixesParents)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(3);
    // Parent a: all ADD; parent b: all FADD.
    std::vector<isa::Instruction> ca(20), cb(20);
    for (auto &i : ca) {
        i.def_index = pool.defIndex("ADD");
        i.dest = 0;
        i.src = {1, 2};
    }
    for (auto &i : cb) {
        i.def_index = pool.defIndex("FADD");
        i.dest = 0;
        i.src = {1, 2};
    }
    const isa::Kernel a(ca), b(cb);
    bool saw_mix = false;
    for (int t = 0; t < 20; ++t) {
        const auto child = GaEngine::crossover(a, b, rng);
        ASSERT_EQ(child.size(), 20u);
        const double add_frac =
            child.classFraction(pool, isa::InstrClass::IntShort);
        const double fadd_frac =
            child.classFraction(pool, isa::InstrClass::FpShort);
        EXPECT_NEAR(add_frac + fadd_frac, 1.0, 1e-12);
        // Prefix from a, suffix from b.
        if (add_frac > 0.0 && fadd_frac > 0.0) {
            saw_mix = true;
            EXPECT_EQ(pool.def(child[0].def_index).mnemonic, "ADD");
            EXPECT_EQ(pool.def(child[19].def_index).mnemonic, "FADD");
        }
    }
    EXPECT_TRUE(saw_mix);
}

TEST(GaOperators, MutationRateZeroLeavesKernelUntouched)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(4);
    auto kernel = isa::Kernel::random(pool, 30, rng);
    const auto original = kernel;
    GaEngine::mutate(kernel, pool, 0.0, 0.5, rng);
    EXPECT_TRUE(kernel == original);
}

TEST(GaOperators, MutationRateOneChangesMostInstructions)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(5);
    auto kernel = isa::Kernel::random(pool, 50, rng);
    const auto original = kernel;
    GaEngine::mutate(kernel, pool, 1.0, 0.0, rng);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        if (kernel[i].def_index != original[i].def_index
            || kernel[i].dest != original[i].dest
            || kernel[i].src != original[i].src) {
            ++changed;
        }
    }
    EXPECT_GT(changed, 35u);
    EXPECT_NO_THROW(kernel.validate(pool));
}

TEST(GaOperators, OperandOnlyMutationKeepsMnemonics)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(6);
    auto kernel = isa::Kernel::random(pool, 50, rng);
    const auto original = kernel;
    GaEngine::mutate(kernel, pool, 1.0, 1.0, rng);
    for (std::size_t i = 0; i < kernel.size(); ++i)
        EXPECT_EQ(kernel[i].def_index, original[i].def_index);
}

TEST(GaEngine, ConvergesOnSyntheticLandscape)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness fitness(pool);
    GaEngine engine(pool, smallConfig());
    const auto result = engine.run(fitness);
    // Random kernels average ~3/15 SIMD; evolution should push the
    // best individual well past that.
    EXPECT_GT(result.best_fitness, 0.6);
    EXPECT_EQ(result.history.size(), 20u);
    EXPECT_GT(result.history.back().best_fitness,
              result.history.front().best_fitness);
    // Elites carry their known fitness and duplicates hit the cache,
    // so evaluator calls can only undershoot the formula.
    EXPECT_LE(fitness.evaluations, 16 + 14 * 19);
    EXPECT_EQ(result.eval_stats.evals,
              static_cast<std::size_t>(fitness.evaluations));
    // Lab time is charged for fresh measurements only.
    EXPECT_NEAR(result.estimated_lab_seconds,
                static_cast<double>(fitness.evaluations), 1e-9);
}

TEST(GaEngine, BestFitnessNeverDecreasesWithDeterministicFitness)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness fitness(pool);
    GaEngine engine(pool, smallConfig());
    const auto result = engine.run(fitness);
    // Elitism + deterministic fitness => monotone best-so-far, and
    // per-generation best never dips below the carried elite.
    double best = -1.0;
    for (const auto &rec : result.history) {
        EXPECT_GE(rec.best_fitness, best - 1e-12);
        best = std::max(best, rec.best_fitness);
    }
}

TEST(GaEngine, DeterministicForSeed)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness f1(pool), f2(pool);
    GaEngine e1(pool, smallConfig());
    GaEngine e2(pool, smallConfig());
    const auto r1 = e1.run(f1);
    const auto r2 = e2.run(f2);
    EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
    EXPECT_TRUE(r1.best == r2.best);
}

TEST(GaEngine, DifferentSeedsExploreDifferently)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness f1(pool), f2(pool);
    auto cfg1 = smallConfig();
    auto cfg2 = smallConfig();
    cfg2.seed = 999;
    GaEngine e1(pool, cfg1);
    GaEngine e2(pool, cfg2);
    const auto r1 = e1.run(f1);
    const auto r2 = e2.run(f2);
    EXPECT_FALSE(r1.best == r2.best);
}

TEST(GaEngine, SeedPopulationIsUsed)
{
    const auto pool = isa::InstructionPool::armV8();
    // Seed with an all-SIMD individual: generation 0 must already
    // score perfectly (Section 3.1(a): population from a previous
    // run).
    std::vector<isa::Instruction> code(20);
    for (auto &i : code) {
        i.def_index = pool.defIndex("VADD");
        i.dest = 0;
        i.src = {1, 2};
    }
    SimdCountFitness fitness(pool);
    GaEngine engine(pool, smallConfig());
    const auto result =
        engine.run(fitness, nullptr, {isa::Kernel(code)});
    EXPECT_DOUBLE_EQ(result.history.front().best_fitness, 1.0);
}

TEST(GaEngine, CallbackSeesEveryGeneration)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness fitness(pool);
    auto cfg = smallConfig();
    cfg.generations = 7;
    GaEngine engine(pool, cfg);
    std::vector<std::size_t> gens;
    engine.run(fitness, [&gens](const GenerationRecord &rec) {
        gens.push_back(rec.generation);
    });
    ASSERT_EQ(gens.size(), 7u);
    for (std::size_t i = 0; i < gens.size(); ++i)
        EXPECT_EQ(gens[i], i);
}

/**
 * Deceptive landscape: fraction of FP instructions scores linearly,
 * but an all-SIMD kernel scores double — a basin a greedy run that
 * climbs the FP gradient tends to miss.
 */
class DeceptiveFitness : public FitnessEvaluator
{
  public:
    explicit DeceptiveFitness(const isa::InstructionPool &pool)
        : pool_(pool)
    {}

    double
    evaluate(const isa::Kernel &kernel, EvalDetail *) override
    {
        const double fp =
            kernel.classFraction(pool_, isa::InstrClass::FpShort)
            + kernel.classFraction(pool_, isa::InstrClass::FpLong);
        const double simd =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        return simd >= 0.95 ? 2.0 : fp;
    }

    std::string metricName() const override { return "deceptive"; }

  private:
    const isa::InstructionPool &pool_;
};

TEST(GaEngine, MultiStartNotWorseThanSingle)
{
    const auto pool = isa::InstructionPool::armV8();
    auto single_cfg = smallConfig();
    single_cfg.generations = 24;
    auto multi_cfg = single_cfg;
    multi_cfg.restarts = 4;

    double single_total = 0.0, multi_total = 0.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        single_cfg.seed = seed;
        multi_cfg.seed = seed;
        SimdCountFitness f1(pool), f2(pool);
        GaEngine e1(pool, single_cfg);
        GaEngine e2(pool, multi_cfg);
        single_total += e1.run(f1).best_fitness;
        multi_total += e2.run(f2).best_fitness;
    }
    EXPECT_GE(multi_total, single_total - 0.05);
}

TEST(GaEngine, MultiStartHistoryCoversAllGenerations)
{
    const auto pool = isa::InstructionPool::armV8();
    auto cfg = smallConfig();
    cfg.generations = 20;
    cfg.restarts = 3;
    SimdCountFitness fitness(pool);
    GaEngine engine(pool, cfg);
    const auto result = engine.run(fitness);
    // 10 scout generations + 10 final generations.
    ASSERT_EQ(result.history.size(), 20u);
    for (std::size_t i = 0; i < result.history.size(); ++i)
        EXPECT_EQ(result.history[i].generation, i);
    // Lab time covers every fresh measurement across all restarts —
    // exactly what the counting evaluator saw, and bounded by the
    // per-run formula: (3 scouts + 1 final) x (16 + 14 x 9).
    EXPECT_NEAR(result.estimated_lab_seconds,
                static_cast<double>(fitness.evaluations), 1e-9);
    EXPECT_LE(fitness.evaluations, 4 * (16 + 14 * 9));
    EXPECT_EQ(result.eval_stats.evals,
              static_cast<std::size_t>(fitness.evaluations));
}

TEST(GaEngine, MultiStartEscapesDeceptiveBasinMoreOften)
{
    const auto pool = isa::InstructionPool::armV8();
    auto single_cfg = smallConfig();
    single_cfg.generations = 30;
    single_cfg.population = 12;
    auto multi_cfg = single_cfg;
    multi_cfg.restarts = 4;

    int single_wins = 0, multi_wins = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        single_cfg.seed = seed;
        multi_cfg.seed = seed;
        DeceptiveFitness f1(pool), f2(pool);
        GaEngine e1(pool, single_cfg);
        GaEngine e2(pool, multi_cfg);
        single_wins += e1.run(f1).best_fitness >= 2.0;
        multi_wins += e2.run(f2).best_fitness >= 2.0;
    }
    EXPECT_GE(multi_wins, single_wins);
}

TEST(GaEngine, EliteReuseGivesExactEvalCount)
{
    // Regression: elites used to be re-evaluated (and re-charged lab
    // time) every generation. With memoization off the evaluator must
    // be called exactly population + (population - elite) x
    // (generations - 1) times.
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness fitness(pool);
    auto cfg = smallConfig();
    cfg.memoize = false;
    GaEngine engine(pool, cfg);
    const auto result = engine.run(fitness);
    const int expected = 16 + (16 - 2) * (20 - 1);
    EXPECT_EQ(fitness.evaluations, expected);
    EXPECT_EQ(result.eval_stats.evals,
              static_cast<std::size_t>(expected));
    EXPECT_EQ(result.eval_stats.elites_reused, 2u * 19u);
    EXPECT_NEAR(result.estimated_lab_seconds,
                static_cast<double>(expected), 1e-9);
}

TEST(GaOperators, CrossoverLengthOnePicksEitherParent)
{
    // Regression: with size() == 1 the cut point was always 0 and the
    // child was always a copy of parent a.
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(7);
    isa::Instruction ia, ib;
    ia.def_index = pool.defIndex("ADD");
    ia.dest = 0;
    ia.src = {1, 2};
    ib.def_index = pool.defIndex("FADD");
    ib.dest = 0;
    ib.src = {1, 2};
    const isa::Kernel a({ia}), b({ib});
    int from_a = 0, from_b = 0;
    for (int t = 0; t < 200; ++t) {
        const auto child = GaEngine::crossover(a, b, rng);
        ASSERT_EQ(child.size(), 1u);
        if (child == a)
            ++from_a;
        else if (child == b)
            ++from_b;
    }
    EXPECT_EQ(from_a + from_b, 200);
    EXPECT_GT(from_a, 50);
    EXPECT_GT(from_b, 50);
}

TEST(GaEngine, IdenticalResultsAcrossThreadCounts)
{
    // The headline determinism claim: the same seed produces the same
    // search — best individual, best fitness and full history — no
    // matter how many worker threads evaluate the population.
    const auto pool = isa::InstructionPool::armV8();
    GaResult reference;
    int reference_evals = 0;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        auto counter = std::make_shared<std::atomic<int>>(0);
        CloneableSimdFitness fitness(pool, counter);
        auto cfg = smallConfig();
        cfg.threads = threads;
        GaEngine engine(pool, cfg);
        const auto result = engine.run(fitness);
        if (threads == 1) {
            reference = result;
            reference_evals = counter->load();
            continue;
        }
        EXPECT_DOUBLE_EQ(result.best_fitness,
                         reference.best_fitness);
        EXPECT_TRUE(result.best == reference.best);
        ASSERT_EQ(result.history.size(), reference.history.size());
        for (std::size_t i = 0; i < result.history.size(); ++i) {
            const auto &got = result.history[i];
            const auto &want = reference.history[i];
            EXPECT_EQ(got.generation, want.generation);
            EXPECT_DOUBLE_EQ(got.best_fitness, want.best_fitness);
            EXPECT_DOUBLE_EQ(got.mean_fitness, want.mean_fitness);
            EXPECT_TRUE(got.best == want.best);
        }
        // Same search => same set of fresh evaluations.
        EXPECT_EQ(counter->load(), reference_evals);
        EXPECT_EQ(result.eval_stats.threads, threads);
    }
}

/**
 * Order-sensitive hash of everything a GA run reports: best kernel
 * genome, best fitness bits, and the full per-generation history.
 * Two runs with equal hashes produced bit-identical results.
 */
std::uint64_t
resultHash(const GaResult &result)
{
    std::uint64_t h = mixSeed(result.best.hash(),
                              std::bit_cast<std::uint64_t>(
                                  result.best_fitness));
    for (const auto &rec : result.history) {
        h = mixSeed(h, rec.generation);
        h = mixSeed(h, std::bit_cast<std::uint64_t>(rec.best_fitness));
        h = mixSeed(h, std::bit_cast<std::uint64_t>(rec.mean_fitness));
        h = mixSeed(h, rec.best.hash());
    }
    return h;
}

TEST(GaEngine, BitIdenticalWithMetricsToggledAcrossThreads)
{
    // The observability layer's core contract (ISSUE 5 / DESIGN.md
    // §11): metrics are strictly out-of-band, so enabling or
    // disabling them — at any worker count — cannot perturb a single
    // bit of the search result. Equivalent to running with
    // EMSTRESS_METRICS=0/1; the programmatic toggle exercises the
    // same gate without respawning the process.
    const auto pool = isa::InstructionPool::armV8();
    const bool was_enabled = metrics::enabled();

    std::uint64_t reference = 0;
    bool have_reference = false;
    for (const bool metrics_on : {true, false}) {
        metrics::setEnabled(metrics_on);
        for (const std::size_t threads : {1u, 2u, 8u}) {
            auto counter = std::make_shared<std::atomic<int>>(0);
            CloneableSimdFitness fitness(pool, counter);
            auto cfg = smallConfig();
            cfg.threads = threads;
            GaEngine engine(pool, cfg);
            const std::uint64_t h = resultHash(engine.run(fitness));
            if (!have_reference) {
                reference = h;
                have_reference = true;
                continue;
            }
            EXPECT_EQ(h, reference)
                << "metrics_on = " << metrics_on
                << ", threads = " << threads;
        }
    }

    metrics::setEnabled(was_enabled);
}

TEST(BatchEvaluator, DuplicateKernelsAreSimulatedOnce)
{
    const auto pool = isa::InstructionPool::armV8();
    auto counter = std::make_shared<std::atomic<int>>(0);
    CloneableSimdFitness fitness(pool, counter);
    BatchConfig serial_cfg;
    serial_cfg.threads = 1;
    BatchEvaluator batch(fitness, serial_cfg);

    Rng rng(9);
    const auto a = isa::Kernel::random(pool, 10, rng);
    const auto b = isa::Kernel::random(pool, 10, rng);
    std::vector<isa::Kernel> kernels = {a, b, a}; // batch-local dup
    std::vector<double> fit(3, -1.0);
    std::vector<EvalDetail> det(3);

    const auto first =
        batch.evaluate(kernels, {0, 1, 2}, fit, det);
    EXPECT_EQ(first.fresh, 2u);
    EXPECT_EQ(first.cache_hits, 1u);
    EXPECT_EQ(counter->load(), 2);
    EXPECT_DOUBLE_EQ(fit[0], fit[2]);
    EXPECT_EQ(batch.cacheSize(), 2u);

    // A later batch of known genomes runs no simulation at all.
    const auto second =
        batch.evaluate(kernels, {0, 1, 2}, fit, det);
    EXPECT_EQ(second.fresh, 0u);
    EXPECT_EQ(second.cache_hits, 3u);
    EXPECT_EQ(counter->load(), 2);
    EXPECT_EQ(batch.stats().evals, 2u);
    EXPECT_EQ(batch.stats().cache_hits, 4u);
}

/**
 * Lint R2 audit regression (DESIGN.md §10): the batch-local
 * unordered_map dedup and the phase-3 merge must not leak hash or
 * presentation order into results or accounting. A duplicate-heavy
 * batch evaluated in reversed slot order — and on a different thread
 * count — produces bit-identical per-kernel fitness and identical
 * eval/cache-hit/lab-time accounting.
 */
TEST(BatchEvaluator, MergeAccountingIsPresentationOrderIndependent)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(21);
    std::vector<isa::Kernel> base;
    for (int i = 0; i < 5; ++i)
        base.push_back(isa::Kernel::random(pool, 12, rng));
    // Duplicate-heavy presentation of the same multiset.
    std::vector<isa::Kernel> fwd = {base[0], base[1], base[0],
                                    base[2], base[3], base[2],
                                    base[4], base[0]};
    std::vector<isa::Kernel> rev(fwd.rbegin(), fwd.rend());

    const auto run = [&](const std::vector<isa::Kernel> &kernels,
                         std::size_t threads) {
        auto counter = std::make_shared<std::atomic<int>>(0);
        CloneableSimdFitness fitness(pool, counter);
        BatchConfig cfg;
        cfg.threads = threads;
        BatchEvaluator batch(fitness, cfg);
        std::vector<std::size_t> idx(kernels.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::vector<double> fit(kernels.size(), -1.0);
        std::vector<EvalDetail> det(kernels.size());
        const auto out = batch.evaluate(kernels, idx, fit, det);
        return std::tuple(fit, out, batch.stats());
    };

    const auto [fit_fwd, out_fwd, stats_fwd] = run(fwd, 1);
    const auto [fit_rev, out_rev, stats_rev] = run(rev, 8);

    // Bit-identical fitness per kernel, independent of slot order
    // and thread count (slot i of rev holds fwd's slot n-1-i).
    for (std::size_t i = 0; i < fwd.size(); ++i)
        EXPECT_EQ(fit_fwd[i], fit_rev[fwd.size() - 1 - i])
            << "slot " << i;
    // Identical accounting: 5 unique genomes, 3 batch-local dups.
    EXPECT_EQ(out_fwd.fresh, 5u);
    EXPECT_EQ(out_rev.fresh, 5u);
    EXPECT_EQ(out_fwd.cache_hits, out_rev.cache_hits);
    EXPECT_EQ(out_fwd.lab_seconds, out_rev.lab_seconds);
    EXPECT_EQ(stats_fwd.evals, stats_rev.evals);
    EXPECT_EQ(stats_fwd.cache_hits, stats_rev.cache_hits);
    EXPECT_EQ(stats_fwd.samples_materialized,
              stats_rev.samples_materialized);
}

TEST(BatchEvaluator, NonCloneableEvaluatorFallsBackToSerial)
{
    const auto pool = isa::InstructionPool::armV8();
    SimdCountFitness fitness(pool); // clone() returns nullptr
    BatchConfig wide_cfg;
    wide_cfg.threads = 8;
    BatchEvaluator batch(fitness, wide_cfg);

    Rng rng(10);
    std::vector<isa::Kernel> kernels;
    for (int i = 0; i < 6; ++i)
        kernels.push_back(isa::Kernel::random(pool, 10, rng));
    std::vector<double> fit(6, -1.0);
    std::vector<EvalDetail> det(6);
    const auto out =
        batch.evaluate(kernels, {0, 1, 2, 3, 4, 5}, fit, det);
    EXPECT_EQ(out.fresh, 6u);
    EXPECT_EQ(fitness.evaluations, 6);
    EXPECT_EQ(batch.stats().threads, 1u);
}

TEST(GaEngine, ValidatesConfig)
{
    const auto pool = isa::InstructionPool::armV8();
    GaConfig bad = smallConfig();
    bad.population = 1;
    EXPECT_THROW(GaEngine e(pool, bad), ConfigError);
    bad = smallConfig();
    bad.mutation_rate = 1.5;
    EXPECT_THROW(GaEngine e(pool, bad), ConfigError);
    bad = smallConfig();
    bad.tournament_k = 0;
    EXPECT_THROW(GaEngine e(pool, bad), ConfigError);
    bad = smallConfig();
    bad.elite = bad.population;
    EXPECT_THROW(GaEngine e(pool, bad), ConfigError);

    // Seed individual with the wrong length is rejected.
    SimdCountFitness fitness(pool);
    GaEngine engine(pool, smallConfig());
    Rng rng(1);
    EXPECT_THROW(engine.run(fitness, nullptr,
                            {isa::Kernel::random(pool, 5, rng)}),
                 ConfigError);
}

} // namespace
} // namespace ga
} // namespace emstress
