/**
 * @file
 * Parity tests for the streaming measurement pipeline: the batch
 * trace path (runKernelBatch, SpectrumAnalyzer::sweep,
 * Oscilloscope::capture) serves as the oracle and the streaming
 * sinks (streamKernel, SaBandDetector, ScopeCaptureSink) must agree
 * with it — exactly for waveforms and scope metrics, to within
 * 1e-6 dB for the Goertzel-vs-FFT band maximum — all the way up to
 * identical GA search results across thread counts.
 */

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/fitness.h"
#include "core/resonance_explorer.h"
#include "core/virus_generator.h"
#include "instruments/oscilloscope.h"
#include "instruments/spectrum_analyzer.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/sample_sink.h"
#include "util/trace.h"

namespace emstress {
namespace core {
namespace {

EvalSettings
fastEval(bool streaming)
{
    EvalSettings s;
    s.duration_s = 2e-6;
    s.sa_samples = 3;
    s.streaming = streaming;
    return s;
}

ga::GaConfig
fastGa()
{
    ga::GaConfig cfg;
    cfg.population = 10;
    cfg.generations = 6;
    cfg.kernel_length = 30;
    cfg.seed = 5;
    return cfg;
}

void
expectTracesIdentical(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(a.dt(), b.dt());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "sample " << i;
}

// ---------------------------------------------------------------
// Platform: streaming run vs batch-trace oracle.
// ---------------------------------------------------------------

TEST(StreamingPlatform, RunKernelMatchesBatchOracleExactly)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    plat.setFrequency(560e6);
    const auto kernel = ResonanceExplorer::probeLoop(plat.pool());

    const auto batch = plat.runKernelBatch(kernel, 2e-6);
    const auto stream = plat.runKernel(kernel, 2e-6);

    expectTracesIdentical(stream.v_die, batch.v_die);
    expectTracesIdentical(stream.i_die, batch.i_die);
    expectTracesIdentical(stream.em, batch.em);
    EXPECT_EQ(stream.stats.instructions, batch.stats.instructions);
    EXPECT_EQ(stream.stats.cycles, batch.stats.cycles);
}

TEST(StreamingPlatform, PulseArmedRunMatchesBatchOracleExactly)
{
    // The EMFI pulse source feeds the streaming sink and the batch
    // transient through the same waveform evaluated at the same step
    // times, so arming a pulse must not open a stream/batch gap.
    platform::Platform plat(platform::junoA72Config(), 3);
    em::PulseSpec pulse;
    pulse.t0_s = 0.7e-6;
    pulse.width_s = 25e-9;
    pulse.amplitude_a = 18.0;
    pulse.x = 0.35;
    pulse.y = 0.6;
    plat.armPulse(pulse);
    const auto kernel = ResonanceExplorer::probeLoop(plat.pool());

    const auto batch = plat.runKernelBatch(kernel, 2e-6);
    const auto stream = plat.runKernel(kernel, 2e-6);

    expectTracesIdentical(stream.v_die, batch.v_die);
    expectTracesIdentical(stream.i_die, batch.i_die);
    expectTracesIdentical(stream.em, batch.em);
}

TEST(StreamingPlatform, ParityHoldsAcrossPlatformsAndCoreCounts)
{
    const platform::PlatformConfig configs[] = {
        platform::junoA72Config(),
        platform::junoA53Config(),
        platform::athlonConfig(),
    };
    for (const auto &cfg : configs) {
        platform::Platform plat(cfg, 7);
        Rng rng(11);
        const auto kernel =
            isa::Kernel::random(plat.pool(), 24, rng);
        for (std::size_t cores = 1; cores <= cfg.n_cores; ++cores) {
            const auto batch =
                plat.runKernelBatch(kernel, 1.5e-6, cores);
            const auto stream =
                plat.runKernel(kernel, 1.5e-6, cores);
            expectTracesIdentical(stream.v_die, batch.v_die);
            expectTracesIdentical(stream.i_die, batch.i_die);
            expectTracesIdentical(stream.em, batch.em);
        }
    }
}

TEST(StreamingPlatform, ObserverFactorySeesRunGeometry)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    const auto kernel = ResonanceExplorer::probeLoop(plat.pool());

    const auto batch = plat.runKernelBatch(kernel, 2e-6);
    std::size_t planned = 0;
    double plan_dt = 0.0;
    TraceSink v(platform::kPdnDt);
    plat.streamKernel(
        kernel, 2e-6, [&](const platform::StreamPlan &plan) {
            planned = plan.n_samples;
            plan_dt = plan.dt;
            EXPECT_GT(plan.stats.loop_freq_hz, 0.0);
            v.reserve(plan.n_samples);
            return platform::StreamObservers{&v, nullptr, nullptr};
        });
    EXPECT_EQ(planned, batch.v_die.size());
    EXPECT_DOUBLE_EQ(plan_dt, platform::kPdnDt);
    expectTracesIdentical(v.trace(), batch.v_die);
}

// ---------------------------------------------------------------
// Spectrum analyzer: Goertzel band max vs FFT sweep band max.
// ---------------------------------------------------------------

TEST(StreamingInstruments, GoertzelBandMaxMatchesFftSweep)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    // A resonant and an off-resonance capture, like the fig07 corpus.
    const double clocks[] = {560e6, 1.2e9};
    const double f_lo = 50e6, f_hi = 200e6;
    for (double f_clk : clocks) {
        plat.setFrequency(f_clk);
        const auto kernel =
            ResonanceExplorer::probeLoop(plat.pool());
        const auto run = plat.runKernelBatch(kernel, 2e-6);

        instruments::SaBandDetector det(
            plat.analyzer().params(), run.em.size(),
            run.em.sampleRate(), f_lo, f_hi);
        for (double v : run.em.samples())
            det.push(v);
        det.finish();

        // Identical noise streams on both paths.
        Rng noise_batch(77), noise_stream(77);
        const auto batch = plat.analyzer().averagedMaxAmplitude(
            run.em, f_lo, f_hi, 5, noise_batch);
        const auto stream =
            det.averagedMaxAmplitude(5, noise_stream);

        EXPECT_NEAR(stream.power_dbm, batch.power_dbm, 1e-6)
            << "f_clk=" << f_clk;
        EXPECT_DOUBLE_EQ(stream.freq_hz, batch.freq_hz);

        // Single-sweep markers agree too.
        Rng n1(123), n2(123);
        const auto s1 = plat.analyzer().averagedMaxAmplitude(
            run.em, f_lo, f_hi, 1, n1);
        const auto s2 = det.averagedMaxAmplitude(1, n2);
        EXPECT_NEAR(s2.power_dbm, s1.power_dbm, 1e-6);
        EXPECT_DOUBLE_EQ(s2.freq_hz, s1.freq_hz);
    }
}

// ---------------------------------------------------------------
// Oscilloscope: streaming capture vs batch capture.
// ---------------------------------------------------------------

TEST(StreamingInstruments, ScopeCaptureSinkMatchesBatchCapture)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    plat.setFrequency(560e6);
    const auto kernel = ResonanceExplorer::probeLoop(plat.pool());
    const auto run = plat.runKernelBatch(kernel, 2e-6);

    Rng noise_batch(41), noise_stream(41);
    const Trace batch = plat.scope().capture(run.v_die, noise_batch);

    instruments::ScopeCaptureSink sink(
        plat.scope().params(), run.v_die.size(), run.v_die.dt(),
        noise_stream);
    for (double v : run.v_die.samples())
        sink.push(v);
    sink.finish();

    expectTracesIdentical(sink.capture(), batch);
    EXPECT_EQ(sink.maxDroop(plat.voltage()),
              instruments::Oscilloscope::maxDroop(batch,
                                                  plat.voltage()));
    EXPECT_EQ(sink.peakToPeak(),
              instruments::Oscilloscope::peakToPeak(batch));
}

// ---------------------------------------------------------------
// Fitness evaluators: streaming vs batch oracle.
// ---------------------------------------------------------------

TEST(StreamingFitness, EmAmplitudeAgreesWithBatchWithinMicroDb)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    plat.setFrequency(560e6);
    EmAmplitudeFitness streaming(plat, fastEval(true));
    EmAmplitudeFitness batch(plat, fastEval(false));

    Rng rng(21);
    const isa::Kernel kernels[] = {
        ResonanceExplorer::probeLoop(plat.pool()),
        isa::Kernel::random(plat.pool(), 30, rng),
        isa::Kernel::random(plat.pool(), 30, rng),
    };
    for (const auto &k : kernels) {
        ga::EvalDetail ds, db;
        const double fs = streaming.evaluate(k, &ds);
        const double fb = batch.evaluate(k, &db);
        EXPECT_NEAR(fs, fb, 1e-6);
        EXPECT_DOUBLE_EQ(ds.dominant_freq_hz, db.dominant_freq_hz);
        // The streaming path buffers no full-rate waveform.
        EXPECT_EQ(ds.samples_materialized, 0u);
        EXPECT_GT(db.samples_materialized, 10000u);
    }
}

TEST(StreamingFitness, ScopeMetricsAreBitIdenticalToBatch)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    plat.setFrequency(560e6);
    MaxDroopFitness droop_s(plat, fastEval(true));
    MaxDroopFitness droop_b(plat, fastEval(false));
    PeakToPeakFitness p2p_s(plat, fastEval(true));
    PeakToPeakFitness p2p_b(plat, fastEval(false));

    Rng rng(22);
    const isa::Kernel kernels[] = {
        ResonanceExplorer::probeLoop(plat.pool()),
        isa::Kernel::random(plat.pool(), 30, rng),
    };
    for (const auto &k : kernels) {
        ga::EvalDetail ds, db;
        // The ZOH + quantize path is exact, so these must agree to
        // the last bit, not merely within 1e-9 V.
        EXPECT_EQ(droop_s.evaluate(k, &ds), droop_b.evaluate(k, &db));
        EXPECT_EQ(ds.dominant_freq_hz, db.dominant_freq_hz);
        EXPECT_LT(ds.samples_materialized, db.samples_materialized);
        EXPECT_EQ(p2p_s.evaluate(k, nullptr),
                  p2p_b.evaluate(k, nullptr));
    }
}

// ---------------------------------------------------------------
// GA: identical results across streaming/batch and thread counts.
// ---------------------------------------------------------------

VirusReport
runSearch(VirusMetric metric, bool streaming, std::size_t threads)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    VirusGenerator gen(plat);
    VirusSearchConfig cfg;
    cfg.ga = fastGa();
    cfg.ga.threads = threads;
    cfg.eval = fastEval(streaming);
    cfg.metric = metric;
    return gen.search(cfg);
}

TEST(StreamingGa, DroopSearchIdenticalAcrossModesAndThreads)
{
    const auto oracle = runSearch(VirusMetric::MaxDroop, false, 1);
    for (std::size_t threads : {1u, 2u, 8u}) {
        const auto r =
            runSearch(VirusMetric::MaxDroop, true, threads);
        EXPECT_EQ(r.virus, oracle.virus) << threads << " threads";
        EXPECT_EQ(r.ga.best_fitness, oracle.ga.best_fitness);
        EXPECT_EQ(r.ga.estimated_lab_seconds,
                  oracle.ga.estimated_lab_seconds);
        ASSERT_EQ(r.ga.history.size(), oracle.ga.history.size());
        for (std::size_t g = 0; g < r.ga.history.size(); ++g) {
            EXPECT_EQ(r.ga.history[g].best_fitness,
                      oracle.ga.history[g].best_fitness);
            EXPECT_EQ(r.ga.history[g].mean_fitness,
                      oracle.ga.history[g].mean_fitness);
        }
    }
}

TEST(StreamingGa, EmSearchIdenticalAcrossThreadsAndNearBatch)
{
    const auto serial = runSearch(VirusMetric::EmAmplitude, true, 1);
    for (std::size_t threads : {2u, 8u}) {
        const auto r =
            runSearch(VirusMetric::EmAmplitude, true, threads);
        EXPECT_EQ(r.virus, serial.virus) << threads << " threads";
        EXPECT_EQ(r.ga.best_fitness, serial.ga.best_fitness);
    }
    // Against the batch FFT oracle the Goertzel recurrence differs
    // only in the last bits (~1e-12 relative), far inside the GA's
    // selection margins: same winner, same convergence history to
    // within the 1e-6 dB budget.
    const auto batch = runSearch(VirusMetric::EmAmplitude, false, 1);
    EXPECT_EQ(serial.virus, batch.virus);
    EXPECT_NEAR(serial.ga.best_fitness, batch.ga.best_fitness, 1e-6);
    ASSERT_EQ(serial.ga.history.size(), batch.ga.history.size());
    for (std::size_t g = 0; g < serial.ga.history.size(); ++g)
        EXPECT_NEAR(serial.ga.history[g].best_fitness,
                    batch.ga.history[g].best_fitness, 1e-6);
}

// ---------------------------------------------------------------
// Satellite regressions: ZOH length and slice hardening.
// ---------------------------------------------------------------

TEST(TraceRegression, ZohResampleLengthIsIntegerExact)
{
    // 4 us of 1 ns samples onto the 0.25 ns PDN grid: the quotient
    // is exactly 4.0 per sample and the float-floor truncation bug
    // used to drop the final output sample.
    Trace t(1e-9);
    for (std::size_t i = 0; i < 4000; ++i)
        t.push(static_cast<double>(i));
    const Trace r = t.resampleZeroOrderHold(0.25e-9);
    EXPECT_EQ(r.size(), 16000u);
    EXPECT_EQ(r[r.size() - 1], t[t.size() - 1]);

    EXPECT_EQ(Trace::outputLengthFor(4e-6, 0.25e-9), 16000u);
    // A representative awkward ratio that rounds down in binary:
    // 0.3 / 0.1 = 2.9999999999999996 must still snap to 3.
    EXPECT_EQ(Trace::outputLengthFor(0.3, 0.1), 3u);
    // Genuinely fractional ratios still truncate.
    EXPECT_EQ(Trace::outputLengthFor(0.35, 0.1), 3u);
}

TEST(TraceRegression, SliceRejectsOutOfRangeInsteadOfWrapping)
{
    Trace t(1e-9);
    for (std::size_t i = 0; i < 10; ++i)
        t.push(static_cast<double>(i));

    const Trace ok = t.slice(2, 8);
    EXPECT_EQ(ok.size(), 8u);
    EXPECT_EQ(ok[0], 2.0);

    // start + count used to overflow size_t and wrap past the check.
    const auto huge = std::numeric_limits<std::size_t>::max();
    EXPECT_THROW((void)t.slice(2, huge), SimulationError);
    EXPECT_THROW((void)t.slice(huge, 2), SimulationError);
    EXPECT_THROW((void)t.slice(11, 0), SimulationError);
    EXPECT_NO_THROW((void)t.slice(10, 0));
}

// ---------------------------------------------------------------
// Sink building blocks.
// ---------------------------------------------------------------

TEST(SampleSinks, ZohResampleSinkMatchesTraceResample)
{
    Trace t(1e-9);
    Rng rng(5);
    for (std::size_t i = 0; i < 1000; ++i)
        t.push(rng.gaussian(0.0, 1.0));
    const Trace batch = t.resampleZeroOrderHold(0.25e-9);

    TraceSink out(0.25e-9);
    ZohResampleSink zoh(out, t.size(), t.dt(), 0.25e-9);
    EXPECT_EQ(zoh.outputSize(), batch.size());
    for (double v : t.samples())
        zoh.push(v);
    zoh.finish();
    expectTracesIdentical(out.trace(), batch);
}

TEST(SampleSinks, SliceAndMeanSinksBehave)
{
    TraceSink out(1.0);
    SliceSink slice(out, 3, 4);
    MeanSink mean;
    FanoutSink fan({&slice, &mean});
    for (std::size_t i = 0; i < 10; ++i)
        fan.push(static_cast<double>(i));
    fan.finish();
    ASSERT_EQ(out.trace().size(), 4u);
    EXPECT_EQ(out.trace()[0], 3.0);
    EXPECT_EQ(out.trace()[3], 6.0);
    EXPECT_EQ(mean.count(), 10u);
    EXPECT_DOUBLE_EQ(mean.mean(), 4.5);
}

// ---------------------------------------------------------------
// Property-style randomized sweeps: for seeded random stream shapes
// (lengths 0, 1, odd, and larger; awkward dt ratios) the streaming
// sinks must agree bit-wise with their batch Trace counterparts.
// ---------------------------------------------------------------

namespace {

/** Random stream length that hits the edge cases often. */
std::size_t
drawLength(Rng &rng)
{
    switch (rng.uniformInt(0, 4)) {
      case 0: return 0;
      case 1: return 1;
      case 2: return 2 * static_cast<std::size_t>(
                  rng.uniformInt(1, 40)) + 1; // odd
      default:
        return static_cast<std::size_t>(rng.uniformInt(2, 300));
    }
}

Trace
randomTrace(Rng &rng, std::size_t n, double dt)
{
    Trace t(dt);
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        t.push(rng.gaussian(0.0, 1.0));
    return t;
}

} // namespace

TEST(SampleSinkProperties, ZohResampleSinkMatchesBatchOnRandomShapes)
{
    Rng rng(9001);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = drawLength(rng);
        const double dt_in = rng.uniform(0.1e-9, 4e-9);
        // Mix exact-integer ratios (the historical float-floor bug)
        // with genuinely fractional ones.
        const double new_dt = rng.chance(0.5)
            ? dt_in / static_cast<double>(rng.uniformInt(1, 8))
            : rng.uniform(0.05e-9, 6e-9);

        if (n == 0) {
            TraceSink out(new_dt);
            EXPECT_THROW(ZohResampleSink(out, 0, dt_in, new_dt),
                         ConfigError)
                << "iteration " << iter;
            continue;
        }

        const Trace input = randomTrace(rng, n, dt_in);
        const Trace batch = input.resampleZeroOrderHold(new_dt);

        TraceSink out(new_dt);
        ZohResampleSink zoh(out, n, dt_in, new_dt);
        ASSERT_EQ(zoh.outputSize(), batch.size())
            << "iteration " << iter << " n=" << n
            << " dt_in=" << dt_in << " new_dt=" << new_dt;
        for (double v : input.samples())
            zoh.push(v);
        zoh.finish();
        {
            SCOPED_TRACE(::testing::Message()
                         << "iteration " << iter << " n=" << n
                         << " dt_in=" << dt_in
                         << " new_dt=" << new_dt);
            expectTracesIdentical(out.trace(), batch);
        }
    }
}

TEST(SampleSinkProperties, SliceSinkMatchesClampedBatchSlice)
{
    Rng rng(9002);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = drawLength(rng);
        // Skip/count deliberately overshoot the stream about half
        // the time: SliceSink clamps where Trace::slice would throw,
        // so the oracle is the explicitly clamped slice.
        const auto skip = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(n) + 3));
        const auto count = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(n) + 3));

        const Trace input = randomTrace(rng, n, 1e-9);
        const std::size_t clamped_skip = std::min(skip, n);
        const std::size_t clamped_count =
            std::min(count, n - clamped_skip);
        const Trace batch = input.slice(clamped_skip, clamped_count);

        TraceSink out(1e-9);
        SliceSink slice(out, skip, count);
        for (double v : input.samples())
            slice.push(v);
        slice.finish();
        {
            SCOPED_TRACE(::testing::Message()
                         << "iteration " << iter << " n=" << n
                         << " skip=" << skip << " count=" << count);
            expectTracesIdentical(out.trace(), batch);
        }
    }
}

TEST(SampleSinkProperties, FanoutSinkMatchesIndividualPushes)
{
    Rng rng(9003);
    for (int iter = 0; iter < 100; ++iter) {
        const std::size_t n = drawLength(rng);
        const Trace input = randomTrace(rng, n, 1e-9);

        // Oracle: each sink fed directly.
        TraceSink solo_trace(1e-9);
        MeanSink solo_mean;
        for (double v : input.samples()) {
            solo_trace.push(v);
            solo_mean.push(v);
        }
        solo_trace.finish();
        solo_mean.finish();

        // Streaming: same sinks behind a fanout with null entries
        // interleaved (permitted and skipped per the contract).
        TraceSink fan_trace(1e-9);
        MeanSink fan_mean;
        FanoutSink fan({nullptr, &fan_trace, nullptr, &fan_mean});
        for (double v : input.samples())
            fan.push(v);
        fan.finish();

        {
            SCOPED_TRACE(::testing::Message()
                         << "iteration " << iter << " n=" << n);
            expectTracesIdentical(fan_trace.trace(),
                                  solo_trace.trace());
        }
        ASSERT_EQ(fan_mean.count(), solo_mean.count());
        if (n > 0) {
            ASSERT_EQ(fan_mean.mean(), solo_mean.mean())
                << "iteration " << iter;
        }
    }
}

} // namespace
} // namespace core
} // namespace emstress
