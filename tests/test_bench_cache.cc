/**
 * @file
 * Regression tests for the cross-bench virus cache in
 * bench/bench_util.h. The seed's cache keyed entries on the stem
 * alone, so an artifact searched under one GA/eval budget could be
 * served to a request with a different budget (most damagingly, a
 * quick-mode artifact standing in for a paper-budget run). The cache
 * now keys on the mode-suffixed stem AND a fingerprint of every
 * budget-defining field; these tests pin both levels and fail on the
 * pre-fix behavior.
 */

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "platform/platform.h"

namespace emstress {
namespace {

namespace fs = std::filesystem;

/** Search budget small enough that a fresh GA run takes well under a
 *  second; every field that feeds the fingerprint is set explicitly
 *  so the tests do not depend on mode-scaled defaults. */
core::VirusSearchConfig
tinyConfig(std::uint64_t seed)
{
    core::VirusSearchConfig cfg;
    cfg.ga.population = 4;
    cfg.ga.generations = 2;
    cfg.ga.kernel_length = 8;
    cfg.ga.restarts = 1;
    cfg.ga.seed = seed;
    cfg.ga.threads = 1;
    cfg.eval.duration_s = 1e-6;
    cfg.eval.sa_samples = 2;
    cfg.metric = core::VirusMetric::EmAmplitude;
    return cfg;
}

/** Each test gets an empty cache directory under the system temp
 *  root, removed again afterwards. The directory is suffixed with
 *  the test name: ctest -j runs fixture tests as concurrent
 *  processes, and a shared path lets one test's SetUp delete
 *  another's live cache mid-run. */
class BenchCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::temp_directory_path()
            / (std::string("emstress_cache_test_") + info->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    fs::path dir_;
};

// ------------------------------------------------------ key units

TEST(BenchCacheKeys, StemIsModeSuffixed)
{
    EXPECT_EQ(bench::virusCacheStem("a72em", true), "a72em.full");
    EXPECT_EQ(bench::virusCacheStem("a72em", false), "a72em.quick");
    EXPECT_NE(bench::virusCacheStem("a72em", true),
              bench::virusCacheStem("a72em", false));
}

TEST(BenchCacheKeys, FingerprintCoversBudgetFields)
{
    const auto base = tinyConfig(7);
    const std::uint64_t fp = bench::budgetFingerprint(base);
    // Deterministic for an identical budget.
    EXPECT_EQ(bench::budgetFingerprint(tinyConfig(7)), fp);

    // Every result-affecting knob must perturb the fingerprint.
    auto cfg = base;
    cfg.ga.population = 50;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.ga.generations = 60;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.ga.seed = 8;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.ga.restarts = 3;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.eval.sa_samples = 30;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.eval.duration_s = 4e-6;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);
    cfg = base;
    cfg.metric = core::VirusMetric::MaxDroop;
    EXPECT_NE(bench::budgetFingerprint(cfg), fp);

    // Thread count deliberately does NOT fingerprint: results are
    // bit-identical across thread counts, so entries stay shareable
    // between hosts with different parallelism.
    cfg = base;
    cfg.ga.threads = 8;
    EXPECT_EQ(bench::budgetFingerprint(cfg), fp);
}

// ----------------------------------------------- filesystem paths

TEST_F(BenchCacheTest, SecondIdenticalRequestIsServedFromCache)
{
    platform::Platform plat(platform::junoA72Config(), 1);
    const auto cfg = tinyConfig(21);

    const auto first =
        bench::searchOrLoadVirus(dir_, "v.quick", plat, cfg);
    EXPECT_FALSE(first.from_cache);
    EXPECT_TRUE(fs::exists(dir_ / "v.quick.kernel"));
    EXPECT_TRUE(fs::exists(dir_ / "v.quick.history"));
    EXPECT_TRUE(fs::exists(dir_ / "v.quick.meta"));

    const auto second =
        bench::searchOrLoadVirus(dir_, "v.quick", plat, cfg);
    EXPECT_TRUE(second.from_cache);
    // The cached artifact is the same kernel the search produced.
    EXPECT_EQ(second.report.virus.hash(), first.report.virus.hash());
    ASSERT_EQ(second.history.size(), first.history.size());
    for (std::size_t i = 0; i < first.history.size(); ++i) {
        EXPECT_EQ(second.history[i].generation,
                  first.history[i].generation);
    }
}

TEST_F(BenchCacheTest, DifferentBudgetInvalidatesSameStemEntry)
{
    // Regression: pre-fix, the cache keyed on the stem alone, so this
    // second request (same stem, different GA budget) was served the
    // stale artifact instead of re-searching.
    platform::Platform plat(platform::junoA72Config(), 1);

    const auto small = tinyConfig(21);
    (void)bench::searchOrLoadVirus(dir_, "v.quick", plat, small);

    auto bigger = small;
    bigger.ga.generations = 3;
    const auto refreshed =
        bench::searchOrLoadVirus(dir_, "v.quick", plat, bigger);
    EXPECT_FALSE(refreshed.from_cache);

    // The re-search rewrote the entry under the new budget: the same
    // request now hits.
    EXPECT_TRUE(bench::searchOrLoadVirus(dir_, "v.quick", plat,
                                         bigger)
                    .from_cache);
    // ...and the original budget no longer matches the entry.
    EXPECT_FALSE(bench::cachedVirusServes(
        dir_, "v.quick", bench::budgetFingerprint(small)));
}

TEST_F(BenchCacheTest, QuickEntryIsNotServedToFullRequest)
{
    // Regression for the headline bug: a quick-mode artifact must
    // never satisfy a full-mode request. The mode-suffixed stems
    // already separate the two; the fingerprint rejects the entry
    // even if it is copied onto the full stem (the pre-fix layout,
    // where one stem served both modes).
    platform::Platform plat(platform::junoA72Config(), 1);
    const auto quick_cfg = tinyConfig(21);
    auto full_cfg = quick_cfg;
    full_cfg.ga.population = 8;
    full_cfg.eval.sa_samples = 4;

    (void)bench::searchOrLoadVirus(dir_, "v.quick", plat, quick_cfg);

    // Distinct stem: nothing cached for the full request.
    EXPECT_FALSE(bench::cachedVirusServes(
        dir_, "v.full", bench::budgetFingerprint(full_cfg)));

    // Pre-fix layout simulated: quick artifacts copied to the full
    // stem. The budget fingerprint still refuses to serve them.
    for (const char *ext : {".kernel", ".history", ".meta"}) {
        fs::copy_file(dir_ / ("v.quick" + std::string(ext)),
                      dir_ / ("v.full" + std::string(ext)));
    }
    EXPECT_FALSE(bench::cachedVirusServes(
        dir_, "v.full", bench::budgetFingerprint(full_cfg)));
    // A full-budget request through the main entry point re-searches
    // (and logs an invalidation) rather than reusing the quick entry.
    EXPECT_FALSE(bench::searchOrLoadVirus(dir_, "v.full", plat,
                                          full_cfg)
                     .from_cache);
}

TEST_F(BenchCacheTest, PreFingerprintEntriesNeverServe)
{
    // Entries written before the meta sidecar existed (or whose meta
    // is mangled) are treated as stale, not trusted.
    platform::Platform plat(platform::junoA72Config(), 1);
    const auto cfg = tinyConfig(21);
    (void)bench::searchOrLoadVirus(dir_, "v.quick", plat, cfg);

    fs::remove(dir_ / "v.quick.meta");
    EXPECT_FALSE(bench::cachedVirusServes(
        dir_, "v.quick", bench::budgetFingerprint(cfg)));

    std::ofstream(dir_ / "v.quick.meta") << "garbage\n";
    EXPECT_FALSE(bench::cachedVirusServes(
        dir_, "v.quick", bench::budgetFingerprint(cfg)));
    EXPECT_FALSE(
        bench::searchOrLoadVirus(dir_, "v.quick", plat, cfg)
            .from_cache);
}

} // namespace
} // namespace emstress
