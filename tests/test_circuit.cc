/**
 * @file
 * Tests for the circuit engine: LU solver, netlist validation, MNA
 * assembly, DC operating point, transient accuracy against analytic
 * solutions, and AC analysis against closed-form impedances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/ac.h"
#include "circuit/linalg.h"
#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace circuit {
namespace {

TEST(LinAlg, SolvesRandomSystems)
{
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.index(12);
        Matrix<double> a(n, n);
        std::vector<double> x_true(n);
        for (std::size_t i = 0; i < n; ++i) {
            x_true[i] = rng.uniform(-5.0, 5.0);
            for (std::size_t j = 0; j < n; ++j)
                a(i, j) = rng.uniform(-1.0, 1.0);
            a(i, i) += 3.0; // keep well-conditioned
        }
        std::vector<double> b(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                b[i] += a(i, j) * x_true[j];
        LuSolver<double> lu(a);
        const auto x = lu.solve(b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
}

TEST(LinAlg, SolvesComplexSystem)
{
    Matrix<std::complex<double>> a(2, 2);
    a(0, 0) = {1.0, 1.0};
    a(0, 1) = {0.0, -1.0};
    a(1, 0) = {2.0, 0.0};
    a(1, 1) = {1.0, 0.0};
    LuSolver<std::complex<double>> lu(a);
    const std::vector<std::complex<double>> b = {{1.0, 0.0}, {0.0, 1.0}};
    const auto x = lu.solve(b);
    // Verify A x == b.
    for (std::size_t r = 0; r < 2; ++r) {
        std::complex<double> acc = 0.0;
        acc += a(r, 0) * x[0];
        acc += a(r, 1) * x[1];
        EXPECT_NEAR(std::abs(acc - b[r]), 0.0, 1e-12);
    }
}

TEST(LinAlg, SingularMatrixThrows)
{
    Matrix<double> a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(LuSolver<double> lu(a), SimulationError);
}

TEST(LinAlg, RequiresSquare)
{
    Matrix<double> a(2, 3);
    EXPECT_THROW(LuSolver<double> lu(a), SimulationError);
}

TEST(Netlist, ValidatesElements)
{
    Netlist nl;
    const auto n1 = nl.newNode();
    EXPECT_THROW(nl.addResistor("r_bad", n1, kGround, -1.0),
                 ConfigError);
    EXPECT_THROW(nl.addResistor("r_self", n1, n1, 1.0), ConfigError);
    nl.addResistor("r1", n1, kGround, 10.0);
    EXPECT_THROW(nl.addResistor("r1", n1, kGround, 5.0), ConfigError);
    EXPECT_THROW(nl.addCapacitor("c_bad", n1, kGround, 0.0),
                 ConfigError);
    EXPECT_THROW((void)nl.elementIndex("nope"), ConfigError);
    EXPECT_EQ(nl.nodeCount(), 2u);
}

TEST(Mna, VoltageDividerDc)
{
    // 10 V across 1k + 3k: middle node sits at 7.5 V.
    Netlist nl;
    const auto top = nl.newNode();
    const auto mid = nl.newNode();
    nl.addVoltageSource("vs", top, kGround, 10.0);
    nl.addResistor("r1", top, mid, 1000.0);
    nl.addResistor("r2", mid, kGround, 3000.0);
    MnaSystem mna(nl);
    const auto x = mna.dcOperatingPoint();
    EXPECT_NEAR(x[mna.stateIndexOfNode(top)], 10.0, 1e-9);
    EXPECT_NEAR(x[mna.stateIndexOfNode(mid)], 7.5, 1e-9);
    // Source branch current: 10 V / 4 kOhm = 2.5 mA flowing out.
    EXPECT_NEAR(std::abs(x[mna.stateIndexOfBranch("vs")]), 2.5e-3,
                1e-9);
}

TEST(Mna, InductorIsDcShort)
{
    // V -- L -- R to ground: all voltage falls across R.
    Netlist nl;
    const auto a = nl.newNode();
    const auto b = nl.newNode();
    nl.addVoltageSource("vs", a, kGround, 5.0);
    nl.addInductor("l1", a, b, 1e-6);
    nl.addResistor("r1", b, kGround, 50.0);
    MnaSystem mna(nl);
    const auto x = mna.dcOperatingPoint();
    EXPECT_NEAR(x[mna.stateIndexOfNode(b)], 5.0, 1e-9);
    EXPECT_NEAR(x[mna.stateIndexOfBranch("l1")], 0.1, 1e-9);
}

TEST(Mna, CurrentSourceDcInjection)
{
    // 2 A pulled from a node held up by a 1 ohm resistor to a 3 V
    // source: node sits at 1 V.
    Netlist nl;
    const auto s = nl.newNode();
    const auto n = nl.newNode();
    nl.addVoltageSource("vs", s, kGround, 3.0);
    nl.addResistor("r1", s, n, 1.0);
    nl.addCurrentSource("load", n, kGround, 2.0);
    MnaSystem mna(nl);
    const auto x = mna.dcOperatingPoint();
    EXPECT_NEAR(x[mna.stateIndexOfNode(n)], 1.0, 1e-9);
}

TEST(Mna, GroundHasNoStateIndex)
{
    Netlist nl;
    const auto n = nl.newNode();
    nl.addResistor("r", n, kGround, 1.0);
    MnaSystem mna(nl);
    EXPECT_THROW((void)mna.stateIndexOfNode(kGround), ConfigError);
    EXPECT_THROW((void)mna.stateIndexOfBranch("r"), ConfigError);
}

TEST(Transient, RcChargingMatchesAnalytic)
{
    // Series RC driven by a DC source from t=0; capacitor voltage
    // follows V(1 - exp(-t/RC)).
    const double r = 100.0;
    const double c = 1e-9;
    const double v = 1.0;
    Netlist nl;
    const auto a = nl.newNode();
    const auto b = nl.newNode();
    nl.addVoltageSource("vs", a, kGround, v);
    nl.addResistor("r1", a, b, r);
    nl.addCapacitor("c1", b, kGround, c);
    // A weak bleed resistor keeps the DC solution at 0...
    // not needed: DC op gives cap fully charged. To observe charging,
    // drive via a current source instead: start from zero source.
    const double tau = r * c;
    const double dt = tau / 200.0;
    TransientAnalysis tr(nl, dt);
    // DC op with the source at v means the cap starts charged; so
    // verify it *stays* at v (steady state) — and separately check
    // charging with a stepped current source below.
    auto res = tr.run(500, {}, {{ProbeKind::NodeVoltage, b, "", "vc"}});
    for (std::size_t i = 0; i < res.trace("vc").size(); ++i)
        EXPECT_NEAR(res.trace("vc")[i], v, 1e-6);
}

TEST(Transient, RcStepCurrentMatchesAnalytic)
{
    // Current step I into parallel RC: v(t) = I R (1 - exp(-t/RC)).
    const double r = 50.0;
    const double c = 2e-9;
    const double i0 = 0.01;
    Netlist nl;
    const auto n = nl.newNode();
    nl.addResistor("r1", n, kGround, r);
    nl.addCapacitor("c1", n, kGround, c);
    // Source pushes current INTO the node: from ground to n.
    nl.addCurrentSource("is", kGround, n, 0.0);
    const double tau = r * c;
    const double dt = tau / 500.0;
    TransientAnalysis tr(nl, dt);
    auto res = tr.run(
        2000, {[i0](double t) { return t > 0.0 ? i0 : 0.0; }},
        {{ProbeKind::NodeVoltage, n, "", "v"}});
    const auto &vt = res.trace("v");
    for (std::size_t k = 100; k < vt.size(); k += 100) {
        const double t = vt.dt() * static_cast<double>(k + 1);
        const double expect = i0 * r * (1.0 - std::exp(-t / tau));
        EXPECT_NEAR(vt[k], expect, 0.01 * i0 * r) << "step " << k;
    }
}

TEST(Transient, LcTankRingsAtResonance)
{
    // Parallel LC excited by a brief current pulse rings at
    // f = 1/(2*pi*sqrt(LC)). Light damping via series resistance.
    const double l = 1e-9;
    const double c = 1e-9;
    const double f0 = lcResonanceHz(l, c);
    Netlist nl;
    const auto n = nl.newNode();
    const auto m = nl.newNode();
    nl.addInductor("l1", n, m, l);
    nl.addResistor("rl", m, kGround, 0.01);
    nl.addCapacitor("c1", n, kGround, c);
    nl.addCurrentSource("is", n, kGround, 0.0);
    const double dt = 1.0 / (f0 * 200.0);
    TransientAnalysis tr(nl, dt);
    const double pulse_end = 5.0 * dt;
    auto res = tr.run(
        4000,
        {[pulse_end](double t) { return t < pulse_end ? 0.1 : 0.0; }},
        {{ProbeKind::NodeVoltage, n, "", "v"}});
    const auto &vt = res.trace("v");
    // Count zero crossings after the pulse to estimate frequency.
    std::size_t crossings = 0;
    for (std::size_t i = 20; i + 1 < vt.size(); ++i)
        if ((vt[i] <= 0.0) != (vt[i + 1] <= 0.0))
            ++crossings;
    const double observed_f = static_cast<double>(crossings)
        / (2.0 * vt.duration());
    EXPECT_NEAR(observed_f, f0, 0.03 * f0);
}

TEST(Transient, TrapezoidalPreservesLcAmplitude)
{
    // With zero resistance in the loop the trapezoidal rule must not
    // numerically damp the oscillation: late-time amplitude stays
    // close to early-time amplitude.
    const double l = 1e-9;
    const double c = 1e-9;
    Netlist nl;
    const auto n = nl.newNode();
    nl.addInductor("l1", n, kGround, l);
    nl.addCapacitor("c1", n, kGround, c);
    nl.addCurrentSource("is", n, kGround, 0.0);
    const double f0 = lcResonanceHz(l, c);
    const double dt = 1.0 / (f0 * 100.0);
    TransientAnalysis tr(nl, dt);
    const double pulse_end = 3.0 * dt;
    auto res = tr.run(
        20000,
        {[pulse_end](double t) { return t < pulse_end ? 0.1 : 0.0; }},
        {{ProbeKind::NodeVoltage, n, "", "v"}});
    const auto &vt = res.trace("v");
    double early = 0.0, late = 0.0;
    for (std::size_t i = 100; i < 2100; ++i)
        early = std::max(early, std::abs(vt[i]));
    for (std::size_t i = vt.size() - 2000; i < vt.size(); ++i)
        late = std::max(late, std::abs(vt[i]));
    EXPECT_GT(late, 0.98 * early);
}

TEST(Transient, WaveformCountValidated)
{
    Netlist nl;
    const auto n = nl.newNode();
    nl.addResistor("r", n, kGround, 1.0);
    nl.addCurrentSource("i1", n, kGround, 0.0);
    TransientAnalysis tr(nl, 1e-9);
    EXPECT_THROW(tr.run(10, {}, {}), ConfigError);
}

TEST(Ac, RcLowPassImpedance)
{
    // |Z| of parallel RC: R / sqrt(1 + (wRC)^2).
    const double r = 100.0;
    const double c = 1e-9;
    Netlist nl;
    const auto n = nl.newNode();
    nl.addResistor("r1", n, kGround, r);
    nl.addCapacitor("c1", n, kGround, c);
    AcAnalysis ac(nl);
    const std::vector<double> freqs = {1e3, 1e6, 1.59e6, 1e8};
    const auto z = ac.inputImpedance(n, freqs).magnitudes();
    for (std::size_t i = 0; i < freqs.size(); ++i) {
        const double w = kTwoPi * freqs[i];
        const double expect = r / std::sqrt(1.0 + w * r * c * w * r * c);
        EXPECT_NEAR(z[i], expect, 1e-3 * expect) << freqs[i];
    }
}

TEST(Ac, SeriesRlcResonanceMinimum)
{
    // Series RLC to ground: impedance minimum at the resonance.
    const double r = 1.0;
    const double l = 1e-6;
    const double c = 1e-9;
    const double f0 = lcResonanceHz(l, c);
    Netlist nl;
    const auto a = nl.newNode();
    const auto b = nl.newNode();
    const auto d = nl.newNode();
    nl.addResistor("r1", a, b, r);
    nl.addInductor("l1", b, d, l);
    nl.addCapacitor("c1", d, kGround, c);
    AcAnalysis ac(nl);
    const auto freqs = linFrequencyGrid(0.5 * f0, 1.5 * f0, 201);
    const auto z = ac.inputImpedance(a, freqs).magnitudes();
    std::size_t min_idx = 0;
    for (std::size_t i = 1; i < z.size(); ++i)
        if (z[i] < z[min_idx])
            min_idx = i;
    EXPECT_NEAR(freqs[min_idx], f0, 0.02 * f0);
    EXPECT_NEAR(z[min_idx], r, 0.05 * r);
}

TEST(Ac, GridGenerators)
{
    const auto log_grid = logFrequencyGrid(1e3, 1e6, 4);
    ASSERT_EQ(log_grid.size(), 4u);
    EXPECT_NEAR(log_grid[0], 1e3, 1e-6);
    EXPECT_NEAR(log_grid[1], 1e4, 1e-3);
    EXPECT_NEAR(log_grid[3], 1e6, 1e-3);
    const auto lin_grid = linFrequencyGrid(0.0, 10.0, 11);
    ASSERT_EQ(lin_grid.size(), 11u);
    EXPECT_DOUBLE_EQ(lin_grid[5], 5.0);
    EXPECT_THROW((void)logFrequencyGrid(0.0, 1e6, 10), ConfigError);
    EXPECT_THROW((void)linFrequencyGrid(5.0, 1.0, 10), ConfigError);
}

} // namespace
} // namespace circuit
} // namespace emstress
