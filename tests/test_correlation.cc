/**
 * @file
 * The paper's central claim, as a property test: emanated EM power
 * and on-chip voltage noise are strongly correlated across workloads
 * (Section 2.2, validated in Section 5.1). We measure a diverse set
 * of kernels on the Cortex-A72 with both instruments — the spectrum
 * analyzer via the antenna and the OC-DSO directly on the rail — and
 * require a high rank correlation between EM amplitude and
 * peak-to-peak voltage noise, plus agreement of all three resonance
 * detection methods.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/resonance_explorer.h"
#include "core/resonant_kernel.h"
#include "instruments/oscilloscope.h"
#include "pdn/resonance.h"
#include "platform/platform.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace {

/** Spearman rank correlation. */
double
rankCorrelation(const std::vector<double> &a,
                const std::vector<double> &b)
{
    auto ranks = [](const std::vector<double> &xs) {
        std::vector<std::size_t> order(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&xs](std::size_t i, std::size_t j) {
                      return xs[i] < xs[j];
                  });
        std::vector<double> r(xs.size());
        for (std::size_t pos = 0; pos < order.size(); ++pos)
            r[order[pos]] = static_cast<double>(pos);
        return r;
    };
    const auto ra = ranks(a);
    const auto rb = ranks(b);
    const double n = static_cast<double>(a.size());
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
    return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

TEST(EmVoltageCorrelation, EmAmplitudeTracksVoltageNoise)
{
    platform::Platform a72(platform::junoA72Config(), 5);
    Rng rng(77);

    std::vector<double> em_dbm;
    std::vector<double> v_p2p;

    // Diverse kernels: random ones plus resonant kernels at several
    // frequencies (spanning weak to strong noise).
    std::vector<isa::Kernel> kernels;
    for (int i = 0; i < 8; ++i)
        kernels.push_back(isa::Kernel::random(a72.pool(), 50, rng));
    for (double f : {40e6, 55e6, 67e6, 90e6, 120e6}) {
        kernels.push_back(core::makeResonantKernelFor(
            a72.pool(), a72.frequency(), f));
    }

    for (const auto &kernel : kernels) {
        const auto run = a72.runKernel(kernel, 3e-6);
        const auto marker = a72.analyzer().averagedMaxAmplitude(
            run.em, mega(50.0), mega(200.0), 5);
        em_dbm.push_back(marker.power_dbm);
        const Trace cap = a72.scope().capture(run.v_die);
        v_p2p.push_back(instruments::Oscilloscope::peakToPeak(cap));
    }

    // Strong positive rank correlation (the paper's Fig. 7 shows the
    // two quantities rising together across GA generations).
    EXPECT_GT(rankCorrelation(em_dbm, v_p2p), 0.7);
}

TEST(EmVoltageCorrelation, ThreeResonanceMethodsAgree)
{
    // Impedance analysis (design data), SCL sweep (direct electrical
    // stimulus) and the EM loop sweep (non-intrusive) must all find
    // the same 1st-order resonance — Sections 5.1/5.3.
    platform::Platform a72(platform::junoA72Config(), 6);

    const double f_impedance =
        pdn::firstOrderResonanceHz(a72.pdnModel());

    core::SclResonanceFinder scl(a72);
    const double f_scl = core::SclResonanceFinder::estimateResonanceHz(
        scl.sweep(mega(50.0), mega(90.0), mega(2.0), 0.5, 2e-6));

    core::ResonanceExplorer em(a72);
    const double f_em =
        core::ResonanceExplorer::estimateResonanceHz(em.sweep(3e-6, 3));

    EXPECT_NEAR(f_scl, f_impedance, mega(4.0));
    EXPECT_NEAR(f_em, f_impedance, mega(5.0));
    EXPECT_NEAR(f_em, f_scl, mega(6.0));
}

TEST(EmVoltageCorrelation, EmPeakAndDsoFftAgreeOnDominantFrequency)
{
    // Fig. 9 as a property: for a resonant kernel, the spectrum
    // analyzer and the FFT of the OC-DSO capture identify the same
    // dominant frequency.
    platform::Platform a72(platform::junoA72Config(), 7);
    const auto kernel = core::makeResonantKernelFor(
        a72.pool(), a72.frequency(), 67e6);
    const auto run = a72.runKernel(kernel, 4e-6);

    const auto sa = a72.analyzer().sweep(run.em);
    const auto sa_top = instruments::SpectrumAnalyzer::maxAmplitude(
        sa, mega(30.0), mega(200.0));

    const auto cap = a72.scope().capture(run.v_die);
    const auto spec = instruments::Oscilloscope::fftView(cap);
    const auto dso_top =
        dsp::maxPeakInBand(spec, mega(30.0), mega(200.0));

    EXPECT_NEAR(sa_top.freq_hz, dso_top.freq_hz, mega(2.0));
}

} // namespace
} // namespace emstress
