/**
 * @file
 * Fixture suite for emstress-lint (tools/lint): positive and
 * negative snippet cases for every rule R1–R6, the annotation
 * grammar, companion-header scanning, fix-list suppression, and the
 * scanner's comment/string inertness. Also pins the numeric claim R4
 * rests on: the util/units.h kilo/mega/giga helpers are bit-exact
 * replacements for positive-magnitude literals.
 */

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"
#include "util/units.h"

namespace emstress {
namespace lint {
namespace {

/** Count findings of one rule in an analysis result. */
std::size_t
countRule(const std::vector<Finding> &findings,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

std::vector<Finding>
lintCc(const std::string &text, const Options &options = {})
{
    return analyzeSource("src/core/snippet.cc", text, options);
}

// ------------------------------------------------------------- R1

TEST(LintR1, FlagsUnseededRandomness)
{
    const auto f = lintCc("int x = std::rand();\n"
                          "std::random_device rd;\n");
    EXPECT_EQ(countRule(f, "R1"), 2u);
    EXPECT_EQ(f[0].line, 1);
    EXPECT_EQ(f[1].line, 2);
}

TEST(LintR1, FlagsClocksAndGetenv)
{
    const auto f =
        lintCc("auto t = std::chrono::steady_clock::now();\n"
               "auto u = std::chrono::system_clock::now();\n"
               "const char *e = std::getenv(\"X\");\n");
    EXPECT_EQ(countRule(f, "R1"), 3u);
}

TEST(LintR1, TimingStatsAnnotationSameLineSuppresses)
{
    const auto f = lintCc(
        "using Clock = std::chrono::steady_clock;"
        " // lint: timing-stats\n");
    EXPECT_EQ(countRule(f, "R1"), 0u);
}

TEST(LintR1, AnnotationOnLineAboveSuppresses)
{
    const auto f = lintCc("// wall-time only. lint: timing-stats\n"
                          "auto t = steady_clock::now();\n");
    EXPECT_EQ(countRule(f, "R1"), 0u);
    // ...but two lines above is out of range: annotations must sit
    // next to the code they justify.
    const auto far = lintCc("// lint: timing-stats\n"
                            "int unrelated = 0;\n"
                            "auto t = steady_clock::now();\n");
    EXPECT_EQ(countRule(far, "R1"), 1u);
}

TEST(LintR1, EnvConfigTagCoversGetenvButNotClocks)
{
    const auto env = lintCc(
        "const char *e = std::getenv(\"T\"); // lint: env-config\n");
    EXPECT_EQ(countRule(env, "R1"), 0u);
    // env-config does not excuse a clock.
    const auto clk = lintCc(
        "auto t = steady_clock::now(); // lint: env-config\n");
    EXPECT_EQ(countRule(clk, "R1"), 1u);
}

TEST(LintR1, ParityToleranceTagCoversGetenvButNotClocksOrRandom)
{
    // The sanction for solver-path switches that are not bit-neutral
    // (EMSTRESS_TRANSIENT_PATH selects between implementations
    // agreeing only to kStateUpdateParityTol).
    const auto env = lintCc("const char *e = std::getenv(\"P\");"
                            " // lint: parity-tolerance\n");
    EXPECT_EQ(countRule(env, "R1"), 0u);
    // Like env-config, it sanctions only environment reads.
    const auto clk = lintCc(
        "auto t = steady_clock::now(); // lint: parity-tolerance\n");
    EXPECT_EQ(countRule(clk, "R1"), 1u);
    const auto rng = lintCc(
        "int r = rand(); // lint: parity-tolerance\n");
    EXPECT_EQ(countRule(rng, "R1"), 1u);
}

TEST(LintR1, RngHeaderIsExempt)
{
    const auto f = analyzeSource(
        "src/util/rng.h", "std::random_device rd; int r = rand();\n");
    EXPECT_EQ(countRule(f, "R1"), 0u);
    // The exemption is component-aligned: a lookalike is not exempt.
    const auto fake = analyzeSource("src/util/xrng.h",
                                    "std::random_device rd;\n");
    EXPECT_EQ(countRule(fake, "R1"), 1u);
}

TEST(LintR1, MetricsHeaderIsSanctionedClockHome)
{
    // util/metrics.h hosts the observability layer's clock reads the
    // way util/rng.h hosts randomness: clock identifiers there need
    // no per-line annotation.
    const std::string clocks =
        "auto t = std::chrono::steady_clock::now();\n"
        "timespec ts{}; clock_gettime(CLOCK_THREAD_CPUTIME_ID, "
        "&ts);\n";
    EXPECT_EQ(countRule(analyzeSource("src/util/metrics.h", clocks),
                        "R1"),
              0u);
    // The same text anywhere else still fails the gate (the seeded
    // fixture bad_timing.cc pins the end-to-end half of this).
    EXPECT_EQ(
        countRule(analyzeSource("src/core/metrics_abuse.cc", clocks),
                  "R1"),
        2u);
    // Lookalike paths are not exempt.
    EXPECT_EQ(countRule(analyzeSource("src/util/xmetrics.h", clocks),
                        "R1"),
              2u);
}

TEST(LintR1, MetricsHeaderExemptionIsClockScoped)
{
    // Unlike rng.h, metrics.h is only sanctioned for clocks:
    // randomness and un-annotated environment reads there are still
    // findings.
    const auto rnd = analyzeSource("src/util/metrics.h",
                                   "int r = rand();\n");
    EXPECT_EQ(countRule(rnd, "R1"), 1u);
    const auto env = analyzeSource(
        "src/util/metrics.h", "const char *e = std::getenv(\"M\");\n");
    EXPECT_EQ(countRule(env, "R1"), 1u);
}

// ------------------------------------------------------------- R2

TEST(LintR2, FlagsRangeForOverUnordered)
{
    const auto f = lintCc(
        "std::unordered_map<int, double> stats;\n"
        "double total() {\n"
        "    double t = 0;\n"
        "    for (const auto &kv : stats) t += kv.second;\n"
        "    return t;\n"
        "}\n");
    EXPECT_EQ(countRule(f, "R2"), 1u);
    EXPECT_EQ(f[0].line, 4);
}

TEST(LintR2, FlagsBeginAndEqualRange)
{
    const auto f = lintCc(
        "std::unordered_multimap<int, int> cache;\n"
        "auto a = cache.begin();\n"
        "auto r = cache.equal_range(3);\n");
    EXPECT_EQ(countRule(f, "R2"), 2u);
}

TEST(LintR2, OrderedContainersAndKeyedLookupsAreClean)
{
    // std::map iteration is ordered; find()/emplace() on an
    // unordered map are keyed lookups, not iteration; and an
    // integer-indexed loop that *mentions* the unordered name (the
    // std:: colon false-positive regression) is clean.
    const auto f = lintCc(
        "std::map<int, double> ordered;\n"
        "std::unordered_map<int, double> um;\n"
        "double sum() {\n"
        "    double t = 0;\n"
        "    for (const auto &kv : ordered) t += kv.second;\n"
        "    auto it = um.find(3);\n"
        "    for (std::size_t i = 0; i < um.size(); ++i) t += 1;\n"
        "    return t;\n"
        "}\n");
    EXPECT_EQ(countRule(f, "R2"), 0u);
}

TEST(LintR2, OrderedMergeAnnotationSuppresses)
{
    const auto f = lintCc(
        "std::unordered_map<int, int> m;\n"
        "// first-match is unique. lint: ordered-merge\n"
        "auto r = m.equal_range(1);\n");
    EXPECT_EQ(countRule(f, "R2"), 0u);
}

TEST(LintR2, CompanionHeaderDeclarationsAreSeen)
{
    // The member lives in the header; the iteration in the .cc.
    Options options;
    options.companion =
        "class C { std::unordered_multimap<int, int> cache_; };\n";
    const auto f = lintCc("auto r = cache_.equal_range(7);\n",
                          options);
    EXPECT_EQ(countRule(f, "R2"), 1u);
    // Without the companion the declaration is invisible.
    EXPECT_EQ(countRule(lintCc("auto r = cache_.equal_range(7);\n"),
                        "R2"),
              0u);
}

// ------------------------------------------------------------- R3

TEST(LintR3, FlagsFloatSweepUpAndDown)
{
    const auto up = lintCc(
        "for (double f = 0.0; f < 1.0; f += 0.1) use(f);\n");
    EXPECT_EQ(countRule(up, "R3"), 1u);
    const auto down = lintCc(
        "for (double v = start; v > floor; v -= step) use(v);\n");
    EXPECT_EQ(countRule(down, "R3"), 1u);
}

TEST(LintR3, IntegerIndexedSweepIsClean)
{
    const auto f = lintCc(
        "for (std::size_t i = 0; i < n; ++i) {\n"
        "    const double v = start + static_cast<double>(i) * dv;\n"
        "    use(v);\n"
        "}\n"
        "for (double x : samples) use(x);\n");
    EXPECT_EQ(countRule(f, "R3"), 0u);
}

// ------------------------------------------------------------- R4

TEST(LintR4, FlagsUnitMagnitudeLiterals)
{
    const auto f = lintCc("double a = 120e6;\n"
                          "double b = 1.2e9;\n"
                          "double c = 20e+3;\n");
    EXPECT_EQ(countRule(f, "R4"), 3u);
}

TEST(LintR4, NegativeExponentsAndHelpersAreClean)
{
    // milli()/micro() conversions are NOT bit-exact, so negative
    // magnitudes are deliberate non-findings; helper calls and
    // non-magnitude exponents are clean too.
    const auto f = lintCc("double a = 0.15e-3;\n"
                          "double b = 1e-30;\n"
                          "double c = mega(120.0);\n"
                          "double d = 1e7;\n");
    EXPECT_EQ(countRule(f, "R4"), 0u);
}

TEST(LintR4, UnitsHeaderAndDatasheetTagAreExempt)
{
    const auto units = analyzeSource(
        "src/util/units.h",
        "inline constexpr double kilo(double v){return v*1e3;}\n");
    EXPECT_EQ(countRule(units, "R4"), 0u);
    const auto tagged = lintCc(
        "double f = 32.768e3; // crystal datasheet. lint: datasheet\n");
    EXPECT_EQ(countRule(tagged, "R4"), 0u);
}

TEST(LintR4, UnitHelpersAreBitExactForPositiveMagnitudes)
{
    // The numeric claim behind R4's fix advice: the multiplier is an
    // exact integer double, so one rounding (of the mantissa) is the
    // only rounding — identical to parsing the literal directly.
    EXPECT_EQ(kilo(1.0), 1e3);
    EXPECT_EQ(mega(2.4), 2.4e6);
    EXPECT_EQ(mega(120.0), 120e6);
    EXPECT_EQ(mega(700.0), 700e6);
    EXPECT_EQ(giga(1.2), 1.2e9);
    EXPECT_EQ(giga(2.95), 2.95e9);
}

// ------------------------------------------------------------- R5

TEST(LintR5, CanonicalGuardIsClean)
{
    const auto f = analyzeSource("src/util/rng.h",
                                 "#ifndef EMSTRESS_UTIL_RNG_H\n"
                                 "#define EMSTRESS_UTIL_RNG_H\n"
                                 "#endif\n");
    EXPECT_EQ(countRule(f, "R5"), 0u);
}

TEST(LintR5, WrongOrMissingGuardIsFlagged)
{
    const auto wrong = analyzeSource("src/util/rng.h",
                                     "#ifndef WRONG_H\n"
                                     "#define WRONG_H\n"
                                     "#endif\n");
    EXPECT_EQ(countRule(wrong, "R5"), 1u);
    const auto missing =
        analyzeSource("src/dsp/fft.h", "int x = 1;\n");
    EXPECT_EQ(countRule(missing, "R5"), 1u);
    // Leading comments do not disturb guard detection; .cc files
    // are not subject to R5.
    const auto commented = analyzeSource(
        "src/dsp/fft.h",
        "/** @file doc */\n"
        "#ifndef EMSTRESS_DSP_FFT_H\n"
        "#define EMSTRESS_DSP_FFT_H\n"
        "#endif\n");
    EXPECT_EQ(countRule(commented, "R5"), 0u);
    EXPECT_EQ(countRule(lintCc("int x = 1;\n"), "R5"), 0u);
}

// ------------------------------------------------------------- R6

TEST(LintR6, FlagsSocketSyscallsOutsideTransport)
{
    // Any socket syscall in an ordinary source file — here a worker
    // evaluation path — is a finding: peer timing and payload bytes
    // must never reach result-producing code.
    const auto f = lintCc(
        "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
        "connect(fd, addr, len);\n"
        "send(fd, buf, n, 0);\n"
        "recv(fd, buf, n, 0);\n");
    EXPECT_EQ(countRule(f, "R6"), 4u);
    EXPECT_EQ(f[0].rule, "R6");
    EXPECT_EQ(f[0].line, 1);
}

TEST(LintR6, ServiceTransportFilesAreExemptByPath)
{
    // src/service/transport*.{h,cc} is the sanctioned home for the
    // whole syscall surface — no per-line annotation needed there.
    const std::string syscalls =
        "int fd = socket(AF_INET, SOCK_STREAM, 0);\n"
        "listen(fd, 64);\n"
        "int peer = accept(fd, nullptr, nullptr);\n"
        "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, len);\n"
        "inet_pton(AF_INET, host, &addr);\n";
    EXPECT_EQ(countRule(analyzeSource("src/service/transport_socket.cc",
                                      syscalls),
                        "R6"),
              0u);
    EXPECT_EQ(countRule(analyzeSource("src/service/transport_socket.h",
                                      syscalls),
                        "R6"),
              0u);
    EXPECT_EQ(
        countRule(analyzeSource("src/service/transport.cc", syscalls),
                  "R6"),
        0u);
    // The exemption is basename- and directory-scoped: other service
    // files (the scheduler, the job model) and transport-named files
    // outside src/service/ stay banned.
    EXPECT_EQ(
        countRule(analyzeSource("src/service/scheduler.cc", syscalls),
                  "R6"),
        5u);
    EXPECT_EQ(
        countRule(analyzeSource("src/core/transport_hack.cc", syscalls),
                  "R6"),
        5u);
}

TEST(LintR6, SocketTransportAnnotationSuppresses)
{
    const auto tagged = lintCc(
        "// frame relay helper. lint: socket-transport\n"
        "send(fd, buf, n, 0);\n");
    EXPECT_EQ(countRule(tagged, "R6"), 0u);
    // The tag sanctions only socket syscalls, not other rules.
    const auto clk = lintCc(
        "auto t = steady_clock::now(); // lint: socket-transport\n");
    EXPECT_EQ(countRule(clk, "R1"), 1u);
}

TEST(LintR6, BindAndMethodNameLookalikesAreClean)
{
    // std::bind, member functions *named* like syscalls behind a
    // dot/arrow, and close()/shutdown() are deliberately outside the
    // matched set — the remaining surface still catches any
    // compiling network path.
    const auto f = lintCc(
        "auto g = std::bind(&W::run, this);\n"
        "pool.shutdown();\n"
        "file.close();\n"
        "double sendRate = 0.0;\n");
    EXPECT_EQ(countRule(f, "R6"), 0u);
}

// -------------------------------------- service clock sanction (R1)

TEST(LintR1, ServiceTransportAndSchedulerAreSanctionedClockHomes)
{
    // The service's transport (connection deadlines) and scheduler
    // (queue-wait/latency observability) may read clocks without
    // per-line annotations, like util/metrics.h.
    const std::string clocks =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_EQ(countRule(analyzeSource("src/service/transport_socket.cc",
                                      clocks),
                        "R1"),
              0u);
    EXPECT_EQ(
        countRule(analyzeSource("src/service/transport.h", clocks),
                  "R1"),
        0u);
    EXPECT_EQ(
        countRule(analyzeSource("src/service/scheduler.cc", clocks),
                  "R1"),
        0u);
    // Worker evaluation paths — everything else, including the rest
    // of the service layer — still fail the gate on clock reads.
    EXPECT_EQ(countRule(analyzeSource("src/service/job.cc", clocks),
                        "R1"),
              1u);
    EXPECT_EQ(
        countRule(analyzeSource("src/ga/batch_evaluator.cc", clocks),
                  "R1"),
        1u);
    // Lookalike paths outside src/service/ are not exempt.
    EXPECT_EQ(
        countRule(analyzeSource("src/core/scheduler.cc", clocks),
                  "R1"),
        1u);
}

TEST(LintR1, ServiceClockSanctionIsClockScoped)
{
    // Like metrics.h: randomness and environment reads in the
    // sanctioned service files are still findings.
    const auto rnd = analyzeSource("src/service/scheduler.cc",
                                   "int r = rand();\n");
    EXPECT_EQ(countRule(rnd, "R1"), 1u);
    const auto env =
        analyzeSource("src/service/transport_socket.cc",
                      "const char *e = std::getenv(\"S\");\n");
    EXPECT_EQ(countRule(env, "R1"), 1u);
}

// -------------------------------------------------- suppression IO

TEST(LintFixList, ParsesAndSuppresses)
{
    const auto entries = parseFixList(
        "# comment\n"
        "R4 src/platform/platform.h   # whole file\n"
        "R1 batch_evaluator.cc 15\n"
        "* src/legacy/blob.cc\n");
    ASSERT_EQ(entries.size(), 3u);

    Options options;
    options.fixlist = entries;
    const auto suppressed = analyzeSource(
        "src/platform/platform.h",
        "#ifndef EMSTRESS_PLATFORM_PLATFORM_H\n"
        "#define EMSTRESS_PLATFORM_PLATFORM_H\n"
        "inline constexpr double kF = 1.2e9;\n"
        "#endif\n",
        options);
    EXPECT_EQ(countRule(suppressed, "R4"), 0u);
    // Same content under another path is still flagged.
    const auto elsewhere = analyzeSource(
        "src/em/antenna.h",
        "#ifndef EMSTRESS_EM_ANTENNA_H\n"
        "#define EMSTRESS_EM_ANTENNA_H\n"
        "inline constexpr double kF = 1.2e9;\n"
        "#endif\n",
        options);
    EXPECT_EQ(countRule(elsewhere, "R4"), 1u);
}

TEST(LintFixList, MatchingIsComponentAlignedAndLineAware)
{
    const FixListEntry entry{"R1", "rng.h", 0};
    EXPECT_TRUE(matchesFixList(entry, {"src/util/rng.h", 3, "R1", ""}));
    EXPECT_FALSE(
        matchesFixList(entry, {"src/util/xrng.h", 3, "R1", ""}));
    EXPECT_FALSE(
        matchesFixList(entry, {"src/util/rng.h", 3, "R4", ""}));
    const FixListEntry line_entry{"R1", "rng.h", 7};
    EXPECT_TRUE(
        matchesFixList(line_entry, {"src/util/rng.h", 7, "R1", ""}));
    EXPECT_FALSE(
        matchesFixList(line_entry, {"src/util/rng.h", 8, "R1", ""}));
    const FixListEntry any{"*", "rng.h", 0};
    EXPECT_TRUE(matchesFixList(any, {"src/util/rng.h", 1, "R5", ""}));
}

// ------------------------------------------------------ scanner

TEST(LintScanner, StringsAndCommentsAreInert)
{
    const auto f = lintCc(
        "// steady_clock in a comment, and 120e6 too\n"
        "/* std::rand() inside a block comment */\n"
        "const char *s = \"rand steady_clock 120e6\";\n"
        "const char *r = R\"(getenv 1.2e9)\";\n"
        "char c = 'e';\n");
    EXPECT_TRUE(f.empty());
}

TEST(LintScanner, DigitSeparatorsDoNotSplitLiterals)
{
    // 1'000e6 is one pp-number; the separator must not break the
    // token or start a character literal that swallows code.
    const auto f = lintCc("double a = 1'000e6; int r = rand();\n");
    EXPECT_EQ(countRule(f, "R4"), 1u);
    EXPECT_EQ(countRule(f, "R1"), 1u);
}

TEST(LintFormat, RendersFileLineRuleMessage)
{
    const Finding f{"src/a.cc", 12, "R3", "msg"};
    EXPECT_EQ(formatFinding(f), "src/a.cc:12: [R3] msg");
}

// ----------------------------------------------- R7 lock-discipline

/** Run the cross-TU rules over in-memory files. */
std::vector<Finding>
lintProject(const std::vector<ProjectFile> &files,
            const Options &options = {})
{
    std::vector<Finding> out = analyzeProject(files, options);
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const Finding &f) {
                                 return f.suppressed;
                             }),
              out.end());
    return out;
}

const char *const kBoxHeader =
    "#include <mutex>\n"
    "class Box {\n"
    " public:\n"
    "  void touch();\n"
    "  void wrongMutex();\n"
    "  void viaHelper();\n"
    " private:\n"
    "  void helperLocked();\n"
    "  std::mutex mutex_;\n"
    "  std::mutex other_;\n"
    "  int v_ = 0; // guards: mutex_\n"
    "};\n";

TEST(LintR7, AccessUnderNamedMutexIsClean)
{
    const auto f = lintProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::touch() {\n"
          "  const std::lock_guard<std::mutex> lock(mutex_);\n"
          "  v_ += 1;\n"
          "}\n"}});
    EXPECT_EQ(countRule(f, "R7"), 0u);
}

TEST(LintR7, UnlockedAccessFlagged)
{
    const auto f = lintProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::touch() { v_ += 1; }\n"}});
    ASSERT_EQ(countRule(f, "R7"), 1u);
    EXPECT_EQ(f[0].file, "src/x/box.cc");
    EXPECT_EQ(f[0].line, 2);
}

TEST(LintR7, WrongMutexFlagged)
{
    const auto f = lintProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::wrongMutex() {\n"
          "  const std::lock_guard<std::mutex> lock(other_);\n"
          "  v_ += 1;\n"
          "}\n"}});
    ASSERT_EQ(countRule(f, "R7"), 1u);
    EXPECT_EQ(f[0].line, 4);
}

TEST(LintR7, CallerHoldsAcrossTusSatisfiesHelper)
{
    // helperLocked() has no lexical lock; every caller (in another
    // TU) holds mutex_, so the caller-holds fixpoint must clear it.
    const auto f = lintProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/helper.cc",
          "#include \"box.h\"\n"
          "void Box::helperLocked() { v_ += 2; }\n"},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::viaHelper() {\n"
          "  const std::lock_guard<std::mutex> lock(mutex_);\n"
          "  helperLocked();\n"
          "}\n"}});
    EXPECT_EQ(countRule(f, "R7"), 0u);
}

TEST(LintR7, CrossTuCallerWithoutLockFlagged)
{
    const auto f = lintProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/helper.cc",
          "#include \"box.h\"\n"
          "void Box::helperLocked() { v_ += 2; }\n"},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::viaHelper() { helperLocked(); }\n"}});
    ASSERT_EQ(countRule(f, "R7"), 1u);
    EXPECT_EQ(f[0].file, "src/x/helper.cc");
    // The witness names the caller that fails to hold the mutex.
    bool caller_named = false;
    for (const std::string &w : f[0].witness)
        if (w.find("Box::viaHelper") != std::string::npos)
            caller_named = true;
    EXPECT_TRUE(caller_named);
}

TEST(LintR7, AnnotationSuppressesButIsReported)
{
    const auto all = analyzeProject(
        {{"src/x/box.h", kBoxHeader},
         {"src/x/box.cc",
          "#include \"box.h\"\n"
          "void Box::touch() { v_ += 1; } // lint: r7\n"}},
        {});
    ASSERT_EQ(countRule(all, "R7"), 1u);
    EXPECT_TRUE(all[0].suppressed);
    EXPECT_EQ(all[0].suppression, "annotation:r7");
}

TEST(LintR7, OutOfScopeOutcomeReadFlagged)
{
    // Regression shape for the WorkerFleet::run() fix: the outcome
    // fields were read after the unique_lock scope closed. The read
    // moved under the lock; this pins that the old shape stays a
    // finding.
    const char *const header =
        "#include <mutex>\n"
        "class Fleet {\n"
        " public:\n"
        "  int run();\n"
        " private:\n"
        "  std::mutex mutex_;\n"
        "  int executed_ = 0; // guards: mutex_\n"
        "};\n";
    const auto bad = lintProject(
        {{"src/x/fleet.h", header},
         {"src/x/fleet.cc",
          "#include \"fleet.h\"\n"
          "int Fleet::run() {\n"
          "  int out = 0;\n"
          "  {\n"
          "    std::unique_lock<std::mutex> lock(mutex_);\n"
          "    out = executed_;\n"
          "  }\n"
          "  return out + executed_;\n"
          "}\n"}});
    ASSERT_EQ(countRule(bad, "R7"), 1u);
    EXPECT_EQ(bad[0].line, 8);
}

// --------------------------------------------------- R8 lock-order

const char *const kPeersHeader =
    "#include <mutex>\n"
    "struct B;\n"
    "struct A {\n"
    "  void poke();\n"
    "  std::mutex mutex_;\n"
    "  B *peer = nullptr;\n"
    "};\n"
    "struct B {\n"
    "  void poke();\n"
    "  std::mutex mutex_;\n"
    "  A *peer = nullptr;\n"
    "};\n";

TEST(LintR8, OppositeOrderAcrossTusIsACycle)
{
    const auto f = lintProject(
        {{"src/x/peers.h", kPeersHeader},
         {"src/x/a.cc",
          "#include \"peers.h\"\n"
          "void A::poke() {\n"
          "  const std::lock_guard<std::mutex> l1(mutex_);\n"
          "  const std::lock_guard<std::mutex> l2(peer->mutex_);\n"
          "}\n"},
         {"src/x/b.cc",
          "#include \"peers.h\"\n"
          "void B::poke() {\n"
          "  const std::lock_guard<std::mutex> l1(mutex_);\n"
          "  const std::lock_guard<std::mutex> l2(peer->mutex_);\n"
          "}\n"}});
    ASSERT_EQ(countRule(f, "R8"), 1u);
    // The witness walks both edges of the cycle.
    ASSERT_EQ(f[0].witness.size(), 2u);
    EXPECT_NE(f[0].witness[0].find("A::mutex_"), std::string::npos);
    EXPECT_NE(f[0].witness[1].find("B::mutex_"), std::string::npos);
}

TEST(LintR8, ConsistentOrderIsClean)
{
    const auto f = lintProject(
        {{"src/x/peers.h", kPeersHeader},
         {"src/x/a.cc",
          "#include \"peers.h\"\n"
          "void A::poke() {\n"
          "  const std::lock_guard<std::mutex> l1(mutex_);\n"
          "  const std::lock_guard<std::mutex> l2(peer->mutex_);\n"
          "}\n"},
         {"src/x/b.cc",
          "#include \"peers.h\"\n"
          "void B::poke() {\n"
          "  const std::lock_guard<std::mutex> l1(peer->mutex_);\n"
          "  const std::lock_guard<std::mutex> l2(mutex_);\n"
          "}\n"}});
    EXPECT_EQ(countRule(f, "R8"), 0u);
}

TEST(LintR8, ThreeCycleDetected)
{
    const char *const header =
        "#include <mutex>\n"
        "struct Q; struct R;\n"
        "struct P { void poke(); std::mutex mutex_; Q *n = nullptr; };\n"
        "struct Q { void poke(); std::mutex mutex_; R *n = nullptr; };\n"
        "struct R { void poke(); std::mutex mutex_; P *n = nullptr; };\n";
    const char *const body =
        "#include \"ring.h\"\n"
        "void %c::poke() {\n"
        "  const std::lock_guard<std::mutex> l1(mutex_);\n"
        "  const std::lock_guard<std::mutex> l2(n->mutex_);\n"
        "}\n";
    std::string p(body), q(body), r(body);
    p.replace(p.find("%c"), 2, "P");
    q.replace(q.find("%c"), 2, "Q");
    r.replace(r.find("%c"), 2, "R");
    const auto f = lintProject({{"src/x/ring.h", header},
                                {"src/x/p.cc", p},
                                {"src/x/q.cc", q},
                                {"src/x/r.cc", r}});
    ASSERT_EQ(countRule(f, "R8"), 1u);
    EXPECT_EQ(f[0].witness.size(), 3u);
}

// ------------------------------------------------ R9 wire symmetry

const char *const kCodecPrologue =
    "#include <cstdint>\n"
    "#include <string>\n"
    "struct WireWriter { void u32(std::uint32_t); "
    "void u64(std::uint64_t); void str(const std::string &); };\n"
    "struct WireReader { std::uint32_t u32(); std::uint64_t u64(); "
    "std::string str(); };\n"
    "struct Packet { std::uint32_t kind = 0; std::uint64_t seq = 0; "
    "std::string payload; };\n";

TEST(LintR9, SymmetricCodecIsClean)
{
    const std::string text = std::string(kCodecPrologue)
        + "void encodePacket(WireWriter &w, const Packet &p) {\n"
          "  w.u32(p.kind);\n"
          "  w.u64(p.seq);\n"
          "  w.str(p.payload);\n"
          "}\n"
          "void decodePacket(WireReader &r, Packet &p) {\n"
          "  p.kind = r.u32();\n"
          "  p.seq = r.u64();\n"
          "  p.payload = r.str();\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    EXPECT_EQ(countRule(f, "R9"), 0u);
}

TEST(LintR9, DroppedDecodeFieldFlagged)
{
    const std::string text = std::string(kCodecPrologue)
        + "void encodePacket(WireWriter &w, const Packet &p) {\n"
          "  w.u32(p.kind);\n"
          "  w.u64(p.seq);\n"
          "  w.str(p.payload);\n"
          "}\n"
          "void decodePacket(WireReader &r, Packet &p) {\n"
          "  p.kind = r.u32();\n"
          "  p.payload = r.str();\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    ASSERT_EQ(countRule(f, "R9"), 1u);
    bool names_seq = false;
    for (const std::string &w : f[0].witness)
        if (w.find("seq") != std::string::npos)
            names_seq = true;
    EXPECT_TRUE(names_seq);
}

TEST(LintR9, ReorderedFieldsFlagged)
{
    const std::string text = std::string(kCodecPrologue)
        + "void encodePacket(WireWriter &w, const Packet &p) {\n"
          "  w.u32(p.kind);\n"
          "  w.u64(p.seq);\n"
          "}\n"
          "void decodePacket(WireReader &r, Packet &p) {\n"
          "  p.seq = r.u64();\n"
          "  p.kind = r.u32();\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    EXPECT_EQ(countRule(f, "R9"), 1u);
}

TEST(LintR9, UnpairedCodecFlagged)
{
    const std::string text = std::string(kCodecPrologue)
        + "void encodePacket(WireWriter &w, const Packet &p) {\n"
          "  w.u32(p.kind);\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    EXPECT_EQ(countRule(f, "R9"), 1u);
}

TEST(LintR9, FingerprintedFieldMissingFromWireFlagged)
{
    // The fingerprint preimage hashes `seq`, but encodePacket never
    // writes it: a decoded job would compute a different
    // fingerprint. R9's third check must catch exactly this.
    const std::string text = std::string(kCodecPrologue)
        + "void encodePacket(WireWriter &w, const Packet &p) {\n"
          "  w.u32(p.kind);\n"
          "  w.str(p.payload);\n"
          "}\n"
          "void decodePacket(WireReader &r, Packet &p) {\n"
          "  p.kind = r.u32();\n"
          "  p.payload = r.str();\n"
          "}\n"
          "std::uint64_t jobDescription(const Packet &p) {\n"
          "  std::uint64_t h = 0;\n"
          "  h += p.kind;\n"
          "  h += p.seq;\n"
          "  return h;\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    ASSERT_EQ(countRule(f, "R9"), 1u);
    bool names_seq = false;
    for (const std::string &w : f[0].witness)
        if (w.find("seq") != std::string::npos)
            names_seq = true;
    EXPECT_TRUE(names_seq);
}

TEST(LintR9, SymmetricResumeCodecPairIsClean)
{
    // The streaming-resume handshake (kResume/kResumed) rides the
    // same suffix-pairing as every other codec: a faithful pair of
    // resume codecs must not trip the gate.
    const std::string text = std::string(kCodecPrologue)
        + "struct ResumeRequest { std::uint64_t token = 0; "
          "std::uint64_t last_acked_generation = 0; };\n"
          "void encodeResumeRequest(WireWriter &w, "
          "const ResumeRequest &q) {\n"
          "  w.u64(q.token);\n"
          "  w.u64(q.last_acked_generation);\n"
          "}\n"
          "ResumeRequest decodeResumeRequest(WireReader &r) {\n"
          "  ResumeRequest q;\n"
          "  q.token = r.u64();\n"
          "  q.last_acked_generation = r.u64();\n"
          "  return q;\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    EXPECT_EQ(countRule(f, "R9"), 0u);
}

TEST(LintR9, AsymmetricResumeCodecPairFlagged)
{
    // A decoder reading the resume token after the generation cursor
    // would silently cross the two u64 fields — exactly the class of
    // drift R9 exists to catch in new protocol messages.
    const std::string text = std::string(kCodecPrologue)
        + "struct ResumeRequest { std::uint64_t token = 0; "
          "std::uint64_t last_acked_generation = 0; };\n"
          "void encodeResumeRequest(WireWriter &w, "
          "const ResumeRequest &q) {\n"
          "  w.u64(q.token);\n"
          "  w.u64(q.last_acked_generation);\n"
          "}\n"
          "ResumeRequest decodeResumeRequest(WireReader &r) {\n"
          "  ResumeRequest q;\n"
          "  q.last_acked_generation = r.u64();\n"
          "  q.token = r.u64();\n"
          "  return q;\n"
          "}\n";
    const auto f = lintProject({{"src/x/wire.cc", text}});
    EXPECT_EQ(countRule(f, "R9"), 1u);
}

// ----------------------------------------------------- JSON report

TEST(LintJson, RoundTripsFindings)
{
    std::vector<Finding> in;
    Finding a;
    a.file = "src/a.cc";
    a.line = 12;
    a.rule = "R7";
    a.message = "msg with \"quotes\"\nand a newline";
    a.witness = {"first witness", "second\twitness"};
    in.push_back(a);
    Finding b;
    b.file = "src/b.h";
    b.line = 3;
    b.rule = "R9";
    b.message = "plain";
    b.suppressed = true;
    b.suppression = "annotation:r9";
    in.push_back(b);

    const std::string json = findingsToJson(in, 42);
    EXPECT_NE(json.find("emstress-lint-findings-v1"),
              std::string::npos);

    std::size_t files = 0;
    const std::vector<Finding> out = findingsFromJson(json, &files);
    EXPECT_EQ(files, 42u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].file, a.file);
    EXPECT_EQ(out[0].line, a.line);
    EXPECT_EQ(out[0].rule, a.rule);
    EXPECT_EQ(out[0].message, a.message);
    EXPECT_EQ(out[0].witness, a.witness);
    EXPECT_FALSE(out[0].suppressed);
    EXPECT_TRUE(out[1].suppressed);
    EXPECT_EQ(out[1].suppression, b.suppression);

    // Determinism: re-serializing the parsed findings is
    // byte-identical.
    EXPECT_EQ(findingsToJson(out, files), json);
}

TEST(LintJson, RejectsMalformedReports)
{
    EXPECT_THROW(findingsFromJson("{", nullptr), std::runtime_error);
    EXPECT_THROW(findingsFromJson("{}", nullptr),
                 std::runtime_error); // missing schema tag
    EXPECT_THROW(
        findingsFromJson("{\"schema\": \"other-schema\"}", nullptr),
        std::runtime_error);
    EXPECT_THROW(
        findingsFromJson("{\"schema\": \"emstress-lint-findings-v1\","
                         " \"bogus\": 1}",
                         nullptr),
        std::runtime_error);
}

} // namespace
} // namespace lint
} // namespace emstress
