/**
 * @file
 * Tests for the deterministic fault-injection harness: schedule
 * purity, per-fault-point units, retry/backoff accounting in the
 * batch evaluator, and the headline guarantee — GA runs with faults
 * injected at any rate and thread count are bit-identical to
 * fault-free runs once retries succeed.
 */

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/emfi.h"
#include "core/fitness.h"
#include "core/virus_generator.h"
#include "ga/batch_evaluator.h"
#include "ga/fault_injector.h"
#include "ga/ga_engine.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/faultpoint.h"
#include "util/rng.h"
#include "util/sample_sink.h"

namespace emstress {
namespace ga {
namespace {

constexpr FaultPoint kAllPoints[] = {
    FaultPoint::ConnectionTimeout, FaultPoint::KernelHang,
    FaultPoint::TruncatedStream,   FaultPoint::GlitchedReading,
    FaultPoint::TriggerMiss,
};

/**
 * Synthetic order-independent fitness: a pure function of the
 * kernel, cloneable, with a shared thread-safe evaluation counter
 * and fixed per-measurement accounting so stats are predictable.
 */
class SyntheticFitness : public FitnessEvaluator
{
  public:
    SyntheticFitness(const isa::InstructionPool &pool,
                     std::shared_ptr<std::atomic<int>> counter)
        : pool_(pool), counter_(std::move(counter))
    {}

    double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail) override
    {
        counter_->fetch_add(1, std::memory_order_relaxed);
        const double score =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        if (detail) {
            detail->metric_raw = score;
            detail->measurement_seconds = 1.0;
            detail->samples_materialized = 7;
        }
        return score;
    }

    std::string metricName() const override { return "synthetic"; }

    std::unique_ptr<FitnessEvaluator>
    clone() const override
    {
        return std::make_unique<SyntheticFitness>(pool_, counter_);
    }

  private:
    const isa::InstructionPool &pool_;
    std::shared_ptr<std::atomic<int>> counter_;
};

std::vector<isa::Kernel>
randomKernels(const isa::InstructionPool &pool, std::size_t n,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<isa::Kernel> kernels;
    for (std::size_t i = 0; i < n; ++i)
        kernels.push_back(isa::Kernel::random(pool, 16, rng));
    return kernels;
}

GaConfig
faultGaConfig()
{
    GaConfig cfg;
    cfg.population = 16;
    cfg.generations = 12;
    cfg.kernel_length = 20;
    cfg.mutation_rate = 0.05;
    cfg.seed = 11;
    return cfg;
}

// ---------------------------------------------------------------
// FaultSchedule: pure, seeded, rate-faithful decisions.
// ---------------------------------------------------------------

TEST(FaultSchedule, DecisionIsPureInPointKeyAttemptAndSeed)
{
    const FaultSchedule sched(42, FaultRates::uniform(0.5));
    for (const FaultPoint p : kAllPoints) {
        for (std::uint64_t key = 1; key <= 64; ++key) {
            for (std::uint32_t a = 0; a < 4; ++a) {
                EXPECT_EQ(sched.fires(p, key, a),
                          sched.fires(p, key, a));
                EXPECT_DOUBLE_EQ(sched.unitDraw(p, key, a),
                                 sched.unitDraw(p, key, a));
            }
        }
    }
    // A different seed produces a different fault pattern.
    const FaultSchedule other(43, FaultRates::uniform(0.5));
    int differ = 0;
    for (std::uint64_t key = 1; key <= 256; ++key) {
        if (sched.fires(FaultPoint::KernelHang, key, 0)
            != other.fires(FaultPoint::KernelHang, key, 0))
            ++differ;
    }
    EXPECT_GT(differ, 0);
}

TEST(FaultSchedule, RateEndpointsAreExact)
{
    const FaultSchedule never(7, FaultRates::uniform(0.0));
    const FaultSchedule always(7, FaultRates::uniform(1.0));
    for (const FaultPoint p : kAllPoints) {
        for (std::uint64_t key = 1; key <= 100; ++key) {
            EXPECT_FALSE(never.fires(p, key, 0));
            EXPECT_TRUE(always.fires(p, key, 0));
        }
    }
}

TEST(FaultSchedule, FiringFrequencyTracksRate)
{
    FaultRates rates;
    rates[FaultPoint::TriggerMiss] = 0.3;
    const FaultSchedule sched(1234, rates);
    int fired = 0;
    const int n = 20000;
    for (int key = 1; key <= n; ++key)
        if (sched.fires(FaultPoint::TriggerMiss,
                        static_cast<std::uint64_t>(key), 0))
            ++fired;
    const double frac = static_cast<double>(fired) / n;
    EXPECT_NEAR(frac, 0.3, 0.02);
    // Other points stay silent at rate 0.
    EXPECT_FALSE(sched.fires(FaultPoint::KernelHang, 5, 0));
}

TEST(FaultSchedule, PointsAndAttemptsDrawIndependentStreams)
{
    const FaultSchedule sched(99, FaultRates::uniform(0.5));
    int point_differ = 0;
    int attempt_differ = 0;
    for (std::uint64_t key = 1; key <= 256; ++key) {
        if (sched.fires(FaultPoint::ConnectionTimeout, key, 0)
            != sched.fires(FaultPoint::GlitchedReading, key, 0))
            ++point_differ;
        if (sched.fires(FaultPoint::ConnectionTimeout, key, 0)
            != sched.fires(FaultPoint::ConnectionTimeout, key, 1))
            ++attempt_differ;
    }
    EXPECT_GT(point_differ, 50);
    EXPECT_GT(attempt_differ, 50);
}

TEST(FaultSchedule, RejectsRatesOutsideUnitInterval)
{
    EXPECT_THROW(FaultSchedule(1, FaultRates::uniform(1.5)),
                 ConfigError);
    EXPECT_THROW(FaultSchedule(1, FaultRates::uniform(-0.1)),
                 ConfigError);
}

TEST(FaultError, CarriesInjectionContext)
{
    const FaultError err(FaultPoint::TruncatedStream, 0xabcdef, 3,
                         2.5);
    EXPECT_EQ(err.point(), FaultPoint::TruncatedStream);
    EXPECT_EQ(err.key(), 0xabcdefull);
    EXPECT_EQ(err.attempt(), 3u);
    EXPECT_DOUBLE_EQ(err.costSeconds(), 2.5);
    EXPECT_NE(std::string(err.what()).find("truncated-stream"),
              std::string::npos);
    // Retryable faults are SimulationErrors, so legacy catch sites
    // keep working.
    EXPECT_THROW(throw FaultError(FaultPoint::KernelHang, 1, 0, 1.0),
                 SimulationError);
}

// ---------------------------------------------------------------
// TruncatingSink: modeled stream drop-out.
// ---------------------------------------------------------------

TEST(TruncatingSink, PassesPrefixThenThrows)
{
    TraceSink downstream(1e-9);
    TruncatingSink sink(downstream, 3,
                        FaultError(FaultPoint::TruncatedStream, 1, 0,
                                   0.5));
    sink.push(1.0);
    sink.push(2.0);
    sink.push(3.0);
    EXPECT_EQ(sink.delivered(), 3u);
    EXPECT_THROW(sink.push(4.0), FaultError);
    ASSERT_EQ(downstream.trace().size(), 3u);
    EXPECT_DOUBLE_EQ(downstream.trace()[2], 3.0);
}

TEST(TruncatingSink, CutoffBeyondStreamNeverFires)
{
    TraceSink downstream(1e-9);
    TruncatingSink sink(downstream, 10,
                        FaultError(FaultPoint::TruncatedStream, 1, 0,
                                   0.5));
    for (int i = 0; i < 5; ++i)
        sink.push(static_cast<double>(i));
    sink.finish();
    EXPECT_EQ(downstream.trace().size(), 5u);
}

// ---------------------------------------------------------------
// FaultInjector: throwing driver + counters.
// ---------------------------------------------------------------

TEST(FaultInjector, ThrowsPerScheduleAndCounts)
{
    FaultRates rates;
    rates[FaultPoint::KernelHang] = 1.0;
    auto inj = std::make_shared<FaultInjector>(FaultSchedule(5, rates));

    EXPECT_NO_THROW(
        inj->at(FaultPoint::ConnectionTimeout, 10, 0, 1.0));
    EXPECT_EQ(inj->totalInjected(), 0u);

    try {
        inj->at(FaultPoint::KernelHang, 10, 2, 4.5);
        FAIL() << "expected FaultError";
    } catch (const FaultError &err) {
        EXPECT_EQ(err.point(), FaultPoint::KernelHang);
        EXPECT_EQ(err.key(), 10u);
        EXPECT_EQ(err.attempt(), 2u);
        EXPECT_DOUBLE_EQ(err.costSeconds(), 4.5);
    }
    EXPECT_EQ(inj->injected(FaultPoint::KernelHang), 1u);
    EXPECT_EQ(inj->totalInjected(), 1u);
}

TEST(FaultInjector, CountedAttemptsAdvanceAndReset)
{
    // Fire on attempts 0 and 1, pass from attempt 2 on: the counted
    // helper must walk the attempt number forward on each fault and
    // reset it once the operation goes through.
    FaultRates rates;
    rates[FaultPoint::ConnectionTimeout] = 0.5;
    const std::uint64_t key = [&] {
        for (std::uint64_t k = 1;; ++k) {
            const FaultSchedule s(21, rates);
            if (s.fires(FaultPoint::ConnectionTimeout, k, 0)
                && s.fires(FaultPoint::ConnectionTimeout, k, 1)
                && !s.fires(FaultPoint::ConnectionTimeout, k, 2))
                return k;
        }
    }();
    FaultInjector inj(FaultSchedule(21, rates));
    std::uint32_t counter = 0;
    EXPECT_THROW(inj.atCounted(FaultPoint::ConnectionTimeout, key,
                               counter, 1.0),
                 FaultError);
    EXPECT_EQ(counter, 1u);
    EXPECT_THROW(inj.atCounted(FaultPoint::ConnectionTimeout, key,
                               counter, 1.0),
                 FaultError);
    EXPECT_EQ(counter, 2u);
    EXPECT_NO_THROW(inj.atCounted(FaultPoint::ConnectionTimeout, key,
                                  counter, 1.0));
    EXPECT_EQ(counter, 0u); // reset for the next operation
    EXPECT_EQ(inj.injected(FaultPoint::ConnectionTimeout), 2u);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyToCap)
{
    RetryPolicy policy;
    policy.backoff_s = 0.5;
    policy.backoff_factor = 2.0;
    policy.backoff_cap_s = 3.0;
    EXPECT_DOUBLE_EQ(policy.backoffFor(1), 0.5);
    EXPECT_DOUBLE_EQ(policy.backoffFor(2), 1.0);
    EXPECT_DOUBLE_EQ(policy.backoffFor(3), 2.0);
    EXPECT_DOUBLE_EQ(policy.backoffFor(4), 3.0); // capped (4.0)
    EXPECT_DOUBLE_EQ(policy.backoffFor(9), 3.0);
}

// ---------------------------------------------------------------
// BatchEvaluator: retry loop, sentinel fitness, accounting.
// ---------------------------------------------------------------

/**
 * Replay the fault schedule the way FaultyEvaluator consults it (one
 * decision per point per attempt, any hit aborts the attempt) and
 * accumulate the accounting the batch evaluator should report.
 */
struct ExpectedFaults
{
    std::size_t faults = 0;
    std::size_t retries = 0;
    std::size_t permanent = 0;
    double backoff_s = 0.0;
};

ExpectedFaults
replaySchedule(const FaultSchedule &sched, const RetryPolicy &policy,
               const std::vector<isa::Kernel> &kernels,
               std::vector<bool> *failed = nullptr)
{
    ExpectedFaults exp;
    for (const auto &kernel : kernels) {
        const std::uint64_t key = kernel.hash();
        bool ok = false;
        std::uint32_t attempt = 0;
        for (; attempt < policy.max_attempts; ++attempt) {
            const bool faulted =
                sched.fires(FaultPoint::ConnectionTimeout, key,
                            attempt)
                || sched.fires(FaultPoint::KernelHang, key, attempt)
                || sched.fires(FaultPoint::GlitchedReading, key,
                               attempt);
            if (!faulted) {
                ok = true;
                break;
            }
            ++exp.faults;
            if (attempt + 1 < policy.max_attempts) {
                ++exp.retries;
                exp.backoff_s += policy.backoffFor(attempt + 1);
            }
        }
        if (!ok)
            ++exp.permanent;
        if (failed)
            failed->push_back(!ok);
    }
    return exp;
}

TEST(BatchEvaluatorFaults, RetryAccountingMatchesScheduleReplay)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 12, 31);
    auto counter = std::make_shared<std::atomic<int>>(0);
    SyntheticFitness base(pool, counter);

    // Fault-free reference fitness.
    std::vector<double> want(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i)
        want[i] = base.evaluate(kernels[i], nullptr);

    const FaultSchedule sched(77, FaultRates::uniform(0.3));
    auto inj = std::make_shared<FaultInjector>(sched);
    FaultyEvaluator faulty(base, inj);

    BatchConfig cfg;
    cfg.threads = 1;
    cfg.retry.max_attempts = 12;
    BatchEvaluator batch(faulty, cfg);

    std::vector<std::size_t> indices(kernels.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    std::vector<double> fit(kernels.size());
    std::vector<EvalDetail> det(kernels.size());
    const auto out = batch.evaluate(kernels, indices, fit, det);

    std::vector<bool> failed;
    const ExpectedFaults exp =
        replaySchedule(sched, cfg.retry, kernels, &failed);

    // Once retries succeed a fitness is bit-identical to the
    // fault-free evaluation; exhausted kernels score the sentinel.
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (failed[i])
            EXPECT_EQ(fit[i], kFailedFitness) << "kernel " << i;
        else
            EXPECT_EQ(fit[i], want[i]) << "kernel " << i;
    }

    EXPECT_GT(exp.faults, 0u);
    EXPECT_EQ(batch.stats().faults_injected, exp.faults);
    EXPECT_EQ(batch.stats().retries, exp.retries);
    EXPECT_EQ(batch.stats().permanent_failures, exp.permanent);
    EXPECT_DOUBLE_EQ(batch.stats().fault_backoff_seconds,
                     exp.backoff_s);
    EXPECT_EQ(inj->totalInjected(), exp.faults);
    // Faulted attempts and backoff are charged to the lab clock on
    // top of the successful measurements (1 s each).
    const double measured =
        static_cast<double>(kernels.size() - exp.permanent);
    EXPECT_GT(out.lab_seconds, measured + exp.backoff_s);
}

TEST(BatchEvaluatorFaults, AccountingIdenticalAcrossThreadCounts)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 24, 47);
    std::vector<std::size_t> indices(kernels.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    std::vector<double> reference;
    EvalStats reference_stats;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        auto counter = std::make_shared<std::atomic<int>>(0);
        SyntheticFitness base(pool, counter);
        auto inj = std::make_shared<FaultInjector>(
            FaultSchedule(123, FaultRates::uniform(0.35)));
        FaultyEvaluator faulty(base, inj);
        BatchConfig cfg;
        cfg.threads = threads;
        cfg.retry.max_attempts = 16;
        BatchEvaluator batch(faulty, cfg);

        std::vector<double> fit(kernels.size());
        std::vector<EvalDetail> det(kernels.size());
        batch.evaluate(kernels, indices, fit, det);

        if (reference.empty()) {
            reference = fit;
            reference_stats = batch.stats();
            EXPECT_GT(batch.stats().faults_injected, 0u);
            continue;
        }
        for (std::size_t i = 0; i < fit.size(); ++i)
            EXPECT_EQ(fit[i], reference[i])
                << "threads=" << threads << " kernel " << i;
        EXPECT_EQ(batch.stats().faults_injected,
                  reference_stats.faults_injected)
            << "threads=" << threads;
        EXPECT_EQ(batch.stats().retries, reference_stats.retries);
        EXPECT_EQ(batch.stats().permanent_failures,
                  reference_stats.permanent_failures);
        EXPECT_DOUBLE_EQ(batch.stats().fault_backoff_seconds,
                         reference_stats.fault_backoff_seconds);
    }
}

TEST(BatchEvaluatorFaults, ExhaustedRetriesScoreSentinelAndMemoize)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 4, 53);
    auto counter = std::make_shared<std::atomic<int>>(0);
    SyntheticFitness base(pool, counter);

    FaultRates rates;
    rates[FaultPoint::ConnectionTimeout] = 1.0; // every attempt
    auto inj =
        std::make_shared<FaultInjector>(FaultSchedule(3, rates));
    FaultyEvaluator faulty(base, inj);

    BatchConfig cfg;
    cfg.threads = 1;
    cfg.retry.max_attempts = 3;
    BatchEvaluator batch(faulty, cfg);

    std::vector<std::size_t> indices = {0, 1, 2, 3};
    std::vector<double> fit(4, 123.0);
    std::vector<EvalDetail> det(4);
    det[0].metric_raw = 42.0;
    batch.evaluate(kernels, indices, fit, det);

    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(fit[i], kFailedFitness) << "kernel " << i;
        EXPECT_DOUBLE_EQ(det[i].metric_raw, 0.0);
        EXPECT_DOUBLE_EQ(det[i].measurement_seconds, 0.0);
    }
    EXPECT_EQ(counter->load(), 0); // base never reached
    EXPECT_EQ(batch.stats().permanent_failures, 4u);
    EXPECT_EQ(batch.stats().faults_injected, 4u * 3u);
    EXPECT_EQ(batch.stats().retries, 4u * 2u); // last fault: no retry

    // Failed genomes memoize like any other result: re-presenting
    // them costs neither simulation nor further injected faults.
    batch.evaluate(kernels, indices, fit, det);
    EXPECT_EQ(batch.stats().cache_hits, 4u);
    EXPECT_EQ(batch.stats().faults_injected, 4u * 3u);
    EXPECT_EQ(fit[0], kFailedFitness);
}

TEST(BatchEvaluatorFaults, NonFaultExceptionsPropagate)
{
    // Only FaultError is retried: a genuine simulation bug must
    // surface immediately, not be retried into silence.
    class ThrowingFitness : public FitnessEvaluator
    {
      public:
        double
        evaluate(const isa::Kernel &, EvalDetail *) override
        {
            throw SimulationError("genuine bug");
        }
        std::string metricName() const override { return "throwing"; }
    };
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 1, 5);
    ThrowingFitness base;
    BatchConfig cfg;
    cfg.threads = 1;
    BatchEvaluator batch(base, cfg);
    std::vector<double> fit(1);
    std::vector<EvalDetail> det(1);
    EXPECT_THROW(batch.evaluate(kernels, {0}, fit, det),
                 SimulationError);
    EXPECT_EQ(batch.stats().faults_injected, 0u);
}

// ---------------------------------------------------------------
// GA under faults: the headline bit-identity guarantee.
// ---------------------------------------------------------------

TEST(GaUnderFaults, BitIdenticalToFaultFreeRunAcrossThreadCounts)
{
    const auto pool = isa::InstructionPool::armV8();
    GaConfig cfg = faultGaConfig();
    cfg.retry.max_attempts = 30; // plenty: rate 0.25 over 3 points

    // Fault-free reference at 1 thread.
    auto ref_counter = std::make_shared<std::atomic<int>>(0);
    SyntheticFitness ref_fitness(pool, ref_counter);
    GaEngine ref_engine(pool, cfg);
    const GaResult reference = ref_engine.run(ref_fitness);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        GaConfig run_cfg = cfg;
        run_cfg.threads = threads;
        auto counter = std::make_shared<std::atomic<int>>(0);
        SyntheticFitness base(pool, counter);
        auto inj = std::make_shared<FaultInjector>(
            FaultSchedule(202, FaultRates::uniform(0.25)));
        FaultyEvaluator faulty(base, inj);
        GaEngine engine(pool, run_cfg);
        const GaResult result = engine.run(faulty);

        EXPECT_EQ(result.eval_stats.permanent_failures, 0u);
        EXPECT_GT(result.eval_stats.faults_injected, 0u);
        EXPECT_EQ(result.eval_stats.faults_injected,
                  result.eval_stats.retries);

        // Identical search: same best individual, same fitness, same
        // convergence history, bit for bit.
        EXPECT_EQ(result.best_fitness, reference.best_fitness);
        EXPECT_TRUE(result.best == reference.best);
        ASSERT_EQ(result.history.size(), reference.history.size());
        for (std::size_t g = 0; g < result.history.size(); ++g) {
            EXPECT_EQ(result.history[g].best_fitness,
                      reference.history[g].best_fitness)
                << "threads=" << threads << " gen " << g;
            EXPECT_EQ(result.history[g].mean_fitness,
                      reference.history[g].mean_fitness);
            EXPECT_TRUE(result.history[g].best
                        == reference.history[g].best);
        }
        // Lab time is *not* identical by design: faulted attempts
        // and backoff waits cost modeled lab seconds.
        EXPECT_GT(result.estimated_lab_seconds,
                  reference.estimated_lab_seconds);
    }
}

TEST(GaUnderFaults, PermanentFailuresStayDeterministicAcrossThreads)
{
    // With a single attempt and a high rate, many individuals fail
    // permanently — the run must still be identical across thread
    // counts, and the sentinel must never win the search.
    const auto pool = isa::InstructionPool::armV8();
    GaConfig cfg = faultGaConfig();
    cfg.retry.max_attempts = 1;

    GaResult reference;
    bool have_reference = false;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        GaConfig run_cfg = cfg;
        run_cfg.threads = threads;
        auto counter = std::make_shared<std::atomic<int>>(0);
        SyntheticFitness base(pool, counter);
        auto inj = std::make_shared<FaultInjector>(
            FaultSchedule(301, FaultRates::uniform(0.3)));
        FaultyEvaluator faulty(base, inj);
        GaEngine engine(pool, run_cfg);
        GaResult result = engine.run(faulty);

        EXPECT_GT(result.eval_stats.permanent_failures, 0u);
        EXPECT_NE(result.best_fitness, kFailedFitness);
        if (!have_reference) {
            reference = std::move(result);
            have_reference = true;
            continue;
        }
        EXPECT_EQ(result.best_fitness, reference.best_fitness);
        EXPECT_TRUE(result.best == reference.best);
        EXPECT_EQ(result.eval_stats.permanent_failures,
                  reference.eval_stats.permanent_failures);
        ASSERT_EQ(result.history.size(), reference.history.size());
        for (std::size_t g = 0; g < result.history.size(); ++g) {
            EXPECT_EQ(result.history[g].best_fitness,
                      reference.history[g].best_fitness);
            EXPECT_EQ(result.history[g].mean_fitness,
                      reference.history[g].mean_fitness);
        }
    }
}

TEST(GaUnderFaults, EvalStatsSurfaceSamplesMaterialized)
{
    // Regression: runSingle once copied eval stats field by field and
    // dropped samples_materialized; it must survive into GaResult.
    const auto pool = isa::InstructionPool::armV8();
    auto counter = std::make_shared<std::atomic<int>>(0);
    SyntheticFitness fitness(pool, counter);
    GaEngine engine(pool, faultGaConfig());
    const GaResult result = engine.run(fitness);
    EXPECT_EQ(result.eval_stats.samples_materialized,
              result.eval_stats.evals * 7u);
}

// ---------------------------------------------------------------
// Target-connection decorators and the retrying driver.
// ---------------------------------------------------------------

void
expectTracesIdentical(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "sample " << i;
}

TEST(MeasureRetry, FaultyConnectionRecoversBitIdentically)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EvalSettings eval;
    eval.duration_s = 1e-6;
    Rng rng(17);
    const auto kernel = isa::Kernel::random(plat.pool(), 16, rng);

    // Fault-free reference measurement.
    core::InProcessTarget clean(plat, eval);
    clean.deploy(kernel);
    clean.startRun();
    const Trace want = clean.measureEm();
    clean.stopRun();

    // Decorated connection: deploy/start/measure fault per schedule;
    // the retrying driver must converge on the identical waveform.
    // Pick a schedule seed that faults this kernel's first deploy
    // but lets attempt 1 pass, so the retry path definitely runs.
    const std::uint64_t sched_seed = [&] {
        for (std::uint64_t s = 400;; ++s) {
            const FaultSchedule trial(s, FaultRates::uniform(0.5));
            if (trial.fires(FaultPoint::ConnectionTimeout,
                            kernel.hash(), 0)
                && !trial.fires(FaultPoint::ConnectionTimeout,
                                kernel.hash(), 1))
                return s;
        }
    }();
    core::InProcessTarget target(plat, eval);
    auto inj = std::make_shared<FaultInjector>(
        FaultSchedule(sched_seed, FaultRates::uniform(0.5)));
    FaultyTargetConnection faulty(target, inj);
    EXPECT_EQ(faulty.describe().rfind("faulty+", 0), 0u);

    RetryPolicy policy;
    policy.max_attempts = 12;
    MeasureRetryLog log;
    const Trace got = measureEmWithRetry(faulty, kernel, policy, &log);
    expectTracesIdentical(got, want);
    EXPECT_GT(inj->totalInjected(), 0u);
    EXPECT_EQ(log.faults, inj->totalInjected());
    // The measurement succeeded, so every caught fault was retried.
    EXPECT_EQ(log.retries, log.faults);
    EXPECT_GT(log.backoff_seconds, 0.0);
}

TEST(MeasureRetry, InProcessTargetInjectorRecovers)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EvalSettings eval;
    eval.duration_s = 1e-6;
    Rng rng(19);
    const auto kernel = isa::Kernel::random(plat.pool(), 16, rng);

    core::InProcessTarget clean(plat, eval);
    clean.deploy(kernel);
    clean.startRun();
    const Trace want = clean.measureEm();
    clean.stopRun();

    core::InProcessTarget target(plat, eval);
    auto inj = std::make_shared<FaultInjector>(
        FaultSchedule(405, FaultRates::uniform(0.5)));
    target.setFaultInjector(inj);
    RetryPolicy policy;
    policy.max_attempts = 12;
    MeasureRetryLog log;
    const Trace got =
        measureEmWithRetry(target, kernel, policy, &log);
    expectTracesIdentical(got, want);
    EXPECT_GT(inj->totalInjected(), 0u);
    EXPECT_EQ(log.faults, inj->totalInjected());
}

TEST(MeasureRetry, ExhaustionRethrowsTheLastFault)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EvalSettings eval;
    eval.duration_s = 1e-6;
    Rng rng(23);
    const auto kernel = isa::Kernel::random(plat.pool(), 16, rng);

    core::InProcessTarget target(plat, eval);
    FaultRates rates;
    rates[FaultPoint::ConnectionTimeout] = 1.0;
    auto inj =
        std::make_shared<FaultInjector>(FaultSchedule(1, rates));
    target.setFaultInjector(inj);
    RetryPolicy policy;
    policy.max_attempts = 3;
    MeasureRetryLog log;
    EXPECT_THROW(measureEmWithRetry(target, kernel, policy, &log),
                 FaultError);
    EXPECT_EQ(log.faults, 3u);
    EXPECT_EQ(log.retries, 2u); // the final fault is not retried
}

// ---------------------------------------------------------------
// Platform fitness under faults: stream truncation unwinds
// Platform::streamKernel and the retry is bit-identical.
// ---------------------------------------------------------------

TEST(PlatformFaults, TruncatedStreamRetriesBitIdentically)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EvalSettings eval;
    eval.duration_s = 2e-6;
    eval.sa_samples = 3;
    const auto kernels = randomKernels(plat.pool(), 3, 71);

    core::EmAmplitudeFitness clean(plat, eval);
    std::vector<double> want(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i)
        want[i] = clean.evaluate(kernels[i], nullptr);

    core::EmAmplitudeFitness faulted(plat, eval);
    FaultRates rates;
    rates[FaultPoint::TruncatedStream] = 0.7;
    auto inj =
        std::make_shared<FaultInjector>(FaultSchedule(88, rates));
    faulted.setFaultInjector(inj);
    BatchConfig cfg;
    cfg.threads = 1;
    cfg.retry.max_attempts = 25;
    BatchEvaluator batch(faulted, cfg);

    std::vector<double> fit(kernels.size());
    std::vector<EvalDetail> det(kernels.size());
    batch.evaluate(kernels, {0, 1, 2}, fit, det);

    // Streams really were cut mid-capture (unwinding streamKernel),
    // yet the retried evaluations match the uninterrupted ones bit
    // for bit.
    EXPECT_GT(inj->injected(FaultPoint::TruncatedStream), 0u);
    EXPECT_EQ(batch.stats().permanent_failures, 0u);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        EXPECT_EQ(fit[i], want[i]) << "kernel " << i;
}

TEST(PlatformFaults, ScopeTriggerMissRetriesBitIdentically)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EvalSettings eval;
    eval.duration_s = 2e-6;
    const auto kernels = randomKernels(plat.pool(), 3, 73);

    core::MaxDroopFitness clean(plat, eval);
    std::vector<double> want(kernels.size());
    for (std::size_t i = 0; i < kernels.size(); ++i)
        want[i] = clean.evaluate(kernels[i], nullptr);

    core::MaxDroopFitness faulted(plat, eval);
    FaultRates rates;
    rates[FaultPoint::TriggerMiss] = 0.6;
    rates[FaultPoint::TruncatedStream] = 0.4;
    auto inj =
        std::make_shared<FaultInjector>(FaultSchedule(89, rates));
    faulted.setFaultInjector(inj);
    BatchConfig cfg;
    cfg.threads = 1;
    cfg.retry.max_attempts = 25;
    BatchEvaluator batch(faulted, cfg);

    std::vector<double> fit(kernels.size());
    std::vector<EvalDetail> det(kernels.size());
    batch.evaluate(kernels, {0, 1, 2}, fit, det);

    EXPECT_GT(inj->totalInjected(), 0u);
    EXPECT_EQ(batch.stats().permanent_failures, 0u);
    for (std::size_t i = 0; i < kernels.size(); ++i)
        EXPECT_EQ(fit[i], want[i]) << "kernel " << i;
}

// ---------------------------------------------------------------
// Full stack: virus search with an injected-fault lab link.
// ---------------------------------------------------------------

TEST(VirusSearchFaults, FaultedSearchMatchesFaultFreeAcrossThreads)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::VirusGenerator gen(plat);

    core::VirusSearchConfig cfg;
    cfg.ga.population = 8;
    cfg.ga.generations = 4;
    cfg.ga.kernel_length = 20;
    cfg.ga.seed = 5;
    cfg.eval.duration_s = 2e-6;
    cfg.eval.sa_samples = 3;
    const auto reference = gen.search(cfg);
    EXPECT_EQ(reference.ga.eval_stats.faults_injected, 0u);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        core::VirusSearchConfig faulted = cfg;
        faulted.ga.threads = threads;
        faulted.ga.retry.max_attempts = 30;
        faulted.faults = std::make_shared<FaultInjector>(
            FaultSchedule(7, FaultRates::uniform(0.15)));
        const auto report = gen.search(faulted);

        EXPECT_GT(report.ga.eval_stats.faults_injected, 0u)
            << "threads=" << threads;
        EXPECT_EQ(report.ga.eval_stats.permanent_failures, 0u);
        EXPECT_TRUE(report.virus == reference.virus);
        EXPECT_EQ(report.ga.best_fitness, reference.ga.best_fitness);
        EXPECT_EQ(report.dominant_freq_hz,
                  reference.dominant_freq_hz);
        ASSERT_EQ(report.ga.history.size(),
                  reference.ga.history.size());
        for (std::size_t g = 0; g < report.ga.history.size(); ++g) {
            EXPECT_EQ(report.ga.history[g].best_fitness,
                      reference.ga.history[g].best_fitness)
                << "threads=" << threads << " gen " << g;
        }
        EXPECT_GT(report.ga.estimated_lab_seconds,
                  reference.ga.estimated_lab_seconds);
    }
}

// ---------------------------------------------------------------
// Cancellation: drains, never poisons (BatchEvaluator guarantee 5).
// ---------------------------------------------------------------

/**
 * Evaluator that fires a shared cancel flag after a fixed number of
 * evaluations — a deterministic stand-in for a tenant cancelling a
 * job while its generation is mid-batch.
 */
class SelfCancellingFitness : public FitnessEvaluator
{
  public:
    SelfCancellingFitness(const isa::InstructionPool &pool,
                          std::shared_ptr<std::atomic<bool>> flag,
                          int fire_after)
        : inner_(pool, std::make_shared<std::atomic<int>>(0)),
          flag_(std::move(flag)), fire_after_(fire_after)
    {}

    double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail) override
    {
        const double score = inner_.evaluate(kernel, detail);
        if (++count_ >= fire_after_)
            flag_->store(true, std::memory_order_relaxed);
        return score;
    }

    std::string metricName() const override { return "cancelling"; }

  private:
    SyntheticFitness inner_;
    std::shared_ptr<std::atomic<bool>> flag_;
    int fire_after_;
    int count_ = 0;
};

TEST(Cancellation, DrainedTasksAreNeverScoredCachedOrFaultCounted)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 12, 77);
    const auto flag = makeCancelFlag();

    SelfCancellingFitness evaluator(pool, flag, /*fire_after=*/5);
    BatchConfig cfg;
    cfg.threads = 1; // serial: the cancellation point is exact
    cfg.cancel = flag;
    BatchEvaluator batch(evaluator, cfg);

    constexpr double kUntouched = 123.25;
    std::vector<double> fitness(kernels.size(), kUntouched);
    std::vector<EvalDetail> details(kernels.size());
    std::vector<std::size_t> indices(kernels.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;

    const auto outcome =
        batch.evaluate(kernels, indices, fitness, details);

    // Five evaluations ran, the rest drained.
    EXPECT_TRUE(batch.cancelled());
    EXPECT_EQ(outcome.fresh, 5u);
    EXPECT_EQ(outcome.cancelled, kernels.size() - 5u);

    // Drained slots are untouched — in particular they are NOT the
    // kFailedFitness sentinel, so cancellation can never masquerade
    // as permanent measurement failure.
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (i < 5)
            EXPECT_NE(fitness[i], kUntouched) << "slot " << i;
        else
            EXPECT_EQ(fitness[i], kUntouched) << "slot " << i;
    }

    // Nothing drained was cached, and fault accounting is clean.
    EXPECT_EQ(batch.cacheSize(), 5u);
    EXPECT_EQ(batch.stats().tasks_cancelled, kernels.size() - 5u);
    EXPECT_EQ(batch.stats().permanent_failures, 0u);
    EXPECT_EQ(batch.stats().faults_injected, 0u);
    EXPECT_EQ(batch.stats().evals, 5u);
}

TEST(Cancellation, CancelledFaultingBatchKeepsSentinelAccountingClean)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernels = randomKernels(pool, 10, 99);
    const auto flag = makeCancelFlag();

    // Faults fire on every first attempt; retries would normally
    // succeed. Cancelling before the batch starts must drain every
    // task without charging a single fault, retry or failure.
    auto counter = std::make_shared<std::atomic<int>>(0);
    SyntheticFitness base(pool, counter);
    auto inj = std::make_shared<FaultInjector>(
        FaultSchedule(13, FaultRates::uniform(0.3)));
    FaultyEvaluator faulty(base, inj);

    BatchConfig cfg;
    cfg.threads = 1;
    cfg.cancel = flag;
    BatchEvaluator batch(faulty, cfg);
    flag->store(true, std::memory_order_relaxed);

    std::vector<double> fitness(kernels.size(), 0.0);
    std::vector<EvalDetail> details(kernels.size());
    std::vector<std::size_t> indices(kernels.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    const auto outcome =
        batch.evaluate(kernels, indices, fitness, details);

    EXPECT_EQ(outcome.fresh, 0u);
    EXPECT_EQ(outcome.cancelled, kernels.size());
    EXPECT_EQ(outcome.lab_seconds, 0.0);
    EXPECT_EQ(counter->load(), 0);
    EXPECT_EQ(batch.cacheSize(), 0u);
    EXPECT_EQ(batch.stats().faults_injected, 0u);
    EXPECT_EQ(batch.stats().retries, 0u);
    EXPECT_EQ(batch.stats().permanent_failures, 0u);
    EXPECT_EQ(batch.stats().tasks_cancelled, kernels.size());
    for (const double f : fitness)
        EXPECT_NE(f, kFailedFitness);
}

TEST(Cancellation, CancelledGenerationIsNeverRecorded)
{
    // GA level: a stepper whose batch is cancelled mid-generation
    // reports done() without recording the poisoned generation.
    const auto pool = isa::InstructionPool::armV8();
    const auto flag = makeCancelFlag();
    SelfCancellingFitness evaluator(pool, flag, /*fire_after=*/20);

    GaConfig cfg = faultGaConfig();
    cfg.population = 12;
    cfg.generations = 10;
    BatchHooks hooks;
    hooks.cancel = flag;
    GaStepper stepper(pool, cfg, evaluator, {}, hooks);

    std::size_t recorded = 0;
    while (!stepper.done()) {
        if (stepper.step() != nullptr)
            ++recorded;
    }
    EXPECT_TRUE(stepper.cancelled());
    // Generation 0 evaluated 12 fresh kernels; the flag fired during
    // generation 1, which therefore was never recorded.
    EXPECT_EQ(recorded, 1u);
    const GaResult result = stepper.finish();
    EXPECT_EQ(result.history.size(), recorded);
    EXPECT_GT(result.eval_stats.tasks_cancelled, 0u);
    EXPECT_EQ(result.eval_stats.permanent_failures, 0u);
}

TEST(EmfiReplay, SearchReplaysBitIdenticallyFromRecordedSeeds)
{
    // The EMFI campaign's determinism contract: everything a search
    // produced — fault event logs, digests, the winning pulse — is a
    // pure function of the recorded (GA seed, schedule seed), so a
    // fresh platform instance replays it bit for bit.
    core::EmfiCampaignSpec spec;
    platform::Platform first_plat(platform::junoA72Config(), 3);
    Rng victim_rng(7);
    spec.victim =
        isa::Kernel::random(first_plat.pool(), 8, victim_rng);
    spec.target_slot = 3;
    spec.eval.duration_s = 1e-6;
    spec.grid.t0_max_s = 0.8e-6;
    spec.effects.schedule_seed = 21;
    GaConfig cfg;
    cfg.population = 10;
    cfg.generations = 8;
    cfg.seed = 11;

    const core::EmfiSearchResult first =
        core::searchMinimalPulse(first_plat, spec, cfg);
    ASSERT_TRUE(first.best_outcome.target_faulted);
    ASSERT_FALSE(first.best_outcome.report.events.empty());

    platform::Platform replay_plat(platform::junoA72Config(), 3);
    const core::EmfiSearchResult replay =
        core::searchMinimalPulse(replay_plat, spec, cfg);

    EXPECT_TRUE(replay.ga.best == first.ga.best);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(replay.ga.best_fitness),
              std::bit_cast<std::uint64_t>(first.ga.best_fitness));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(replay.best_pulse.amplitude_a),
        std::bit_cast<std::uint64_t>(first.best_pulse.amplitude_a));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(replay.best_pulse.t0_s),
              std::bit_cast<std::uint64_t>(first.best_pulse.t0_s));

    const vmin::FaultReport &fa = first.best_outcome.report;
    const vmin::FaultReport &fb = replay.best_outcome.report;
    ASSERT_EQ(fa.events.size(), fb.events.size());
    for (std::size_t i = 0; i < fa.events.size(); ++i)
        EXPECT_TRUE(fa.events[i] == fb.events[i]) << "event " << i;
    EXPECT_EQ(fa.golden_digest, fb.golden_digest);
    EXPECT_EQ(fa.faulted_digest, fb.faulted_digest);
    EXPECT_EQ(fa.sites_crossed, fb.sites_crossed);
}

} // namespace
} // namespace ga
} // namespace emstress
