/**
 * @file
 * Unit tests for the util layer: units, stats, rng, trace, table,
 * thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace {

TEST(Units, DbConversionsRoundTrip)
{
    EXPECT_NEAR(powerRatioToDb(10.0), 10.0, 1e-12);
    EXPECT_NEAR(powerRatioToDb(100.0), 20.0, 1e-12);
    EXPECT_NEAR(dbToPowerRatio(powerRatioToDb(3.7)), 3.7, 1e-12);
    EXPECT_NEAR(wattsToDbm(1e-3), 0.0, 1e-12);
    EXPECT_NEAR(wattsToDbm(1.0), 30.0, 1e-12);
    EXPECT_NEAR(dbmToWatts(wattsToDbm(2.5e-6)), 2.5e-6, 1e-18);
}

TEST(Units, MultiplierHelpers)
{
    EXPECT_DOUBLE_EQ(mega(67.0), 67e6);
    EXPECT_DOUBLE_EQ(nano(0.14), 0.14e-9);
    EXPECT_DOUBLE_EQ(milli(10.0), 0.01);
}

TEST(Units, LcResonanceInverses)
{
    const double l = nano(0.14);
    const double c = nano(40.0);
    const double f = lcResonanceHz(l, c);
    EXPECT_NEAR(inductanceForResonance(f, c), l, l * 1e-9);
    EXPECT_NEAR(capacitanceForResonance(f, l), c, c * 1e-9);
}

TEST(Units, LcResonanceKnownValue)
{
    // 1 uH with 1 uF resonates at ~159.155 kHz.
    EXPECT_NEAR(lcResonanceHz(1e-6, 1e-6), 159154.9, 0.5);
}

TEST(Units, VoltsRmsToWatts)
{
    EXPECT_NEAR(voltsRmsToWatts(1.0, 50.0), 0.02, 1e-12);
}

TEST(Stats, BasicMoments)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
    EXPECT_NEAR(stats::variance(xs), 1.25, 1e-12);
    EXPECT_NEAR(stats::rms(xs), std::sqrt(7.5), 1e-12);
    EXPECT_DOUBLE_EQ(stats::minimum(xs), 1.0);
    EXPECT_DOUBLE_EQ(stats::maximum(xs), 4.0);
    EXPECT_DOUBLE_EQ(stats::peakToPeak(xs), 3.0);
}

TEST(Stats, Percentile)
{
    const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50.0), 3.0);
    EXPECT_THROW((void)stats::percentile(xs, 101.0), ConfigError);
}

TEST(Stats, PercentileSortedBitExactWithPercentile)
{
    // percentile() is now a sort-then-delegate wrapper around
    // percentileSorted(); the two must agree to the last bit so
    // call sites can convert to sort-once without changing any
    // recorded result.
    Rng rng(314);
    std::vector<double> xs;
    for (int i = 0; i < 257; ++i)
        xs.push_back(rng.gaussian(0.0, 5.0));
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (const double p :
         {0.0, 1.0, 3.7, 25.0, 50.0, 75.0, 97.3, 99.0, 100.0}) {
        const double via_wrapper = stats::percentile(xs, p);
        const double via_sorted = stats::percentileSorted(sorted, p);
        // Bit-exact, not approximately equal.
        EXPECT_EQ(via_wrapper, via_sorted) << "p = " << p;
    }
}

TEST(Stats, PercentileSortedValidatesInput)
{
    const std::vector<double> sorted = {1.0, 2.0, 3.0};
    EXPECT_THROW((void)stats::percentileSorted(sorted, -1.0),
                 ConfigError);
    EXPECT_THROW((void)stats::percentileSorted({}, 50.0),
                 SimulationError);
#ifndef NDEBUG
    // Debug builds verify sortedness; release builds skip the O(n)
    // check (that is the point of the function).
    const std::vector<double> unsorted = {3.0, 1.0, 2.0};
    EXPECT_THROW((void)stats::percentileSorted(unsorted, 50.0),
                 SimulationError);
#endif
}

TEST(Stats, EmptySpanThrows)
{
    const std::vector<double> xs;
    EXPECT_THROW((void)stats::mean(xs), SimulationError);
    EXPECT_THROW((void)stats::rms(xs), SimulationError);
    EXPECT_THROW((void)stats::peakToPeak(xs), SimulationError);
}

TEST(Stats, RunningMatchesBatch)
{
    Rng rng(42);
    std::vector<double> xs;
    stats::Running run;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        xs.push_back(v);
        run.add(v);
    }
    EXPECT_NEAR(run.mean(), stats::mean(xs), 1e-9);
    EXPECT_NEAR(run.variance(), stats::variance(xs), 1e-9);
    EXPECT_DOUBLE_EQ(run.minimum(), stats::minimum(xs));
    EXPECT_DOUBLE_EQ(run.maximum(), stats::maximum(xs));
    EXPECT_EQ(run.count(), 1000u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, ChanceBoundaries)
{
    Rng rng(1);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkIndependence)
{
    Rng a(7);
    Rng child = a.fork();
    // Child stream should not replay the parent stream.
    Rng b(7);
    (void)b.uniform(0.0, 1.0); // advance as fork() did
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= child.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
    EXPECT_TRUE(differs);
}

TEST(Trace, BasicAccessors)
{
    Trace t({1.0, 2.0, 3.0}, 0.5);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_DOUBLE_EQ(t.dt(), 0.5);
    EXPECT_DOUBLE_EQ(t.sampleRate(), 2.0);
    EXPECT_DOUBLE_EQ(t.duration(), 1.5);
    EXPECT_DOUBLE_EQ(t.timeAt(2), 1.0);
    EXPECT_DOUBLE_EQ(t[1], 2.0);
}

TEST(Trace, InvalidDtThrows)
{
    EXPECT_THROW(Trace t(0.0), ConfigError);
    EXPECT_THROW(Trace t(-1.0), ConfigError);
}

TEST(Trace, Slice)
{
    Trace t({0.0, 1.0, 2.0, 3.0, 4.0}, 1.0);
    const Trace s = t.slice(1, 3);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
    EXPECT_DOUBLE_EQ(s[2], 3.0);
    EXPECT_THROW((void)t.slice(3, 5), SimulationError);
}

TEST(Trace, ResampleZeroOrderHoldUpsamples)
{
    Trace t({1.0, 2.0}, 1.0);
    const Trace u = t.resampleZeroOrderHold(0.25);
    ASSERT_EQ(u.size(), 8u);
    EXPECT_DOUBLE_EQ(u[0], 1.0);
    EXPECT_DOUBLE_EQ(u[3], 1.0);
    EXPECT_DOUBLE_EQ(u[4], 2.0);
    EXPECT_DOUBLE_EQ(u[7], 2.0);
    EXPECT_DOUBLE_EQ(u.dt(), 0.25);
}

TEST(Trace, ResamplePreservesDuration)
{
    Trace t(std::vector<double>(1000, 1.5), 1e-9);
    const Trace u = t.resampleZeroOrderHold(0.25e-9);
    EXPECT_NEAR(u.duration(), t.duration(), 1e-12);
}

TEST(Table, TextAndCsvRendering)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 1);
    t.row().cell("b,eta").cell(2.25, 2);
    const std::string text = t.toText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"b,eta\""), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CellBeforeRowThrows)
{
    Table t({"x"});
    EXPECT_THROW(t.cell("v"), SimulationError);
}

TEST(Table, NeedsAtLeastOneColumn)
{
    EXPECT_THROW(Table t({}), ConfigError);
}

TEST(Table, CsvEscapesQuotesAndNewlines)
{
    Table t({"a"});
    t.row().cell("say \"hi\"\nthere");
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\nthere\""),
              std::string::npos);
}

TEST(Rng, PickReturnsElementFromSpan)
{
    Rng rng(3);
    const std::vector<int> items = {10, 20, 30};
    for (int i = 0; i < 50; ++i) {
        const int v = rng.pick(std::span<const int>(items));
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
}

TEST(Rng, IndexOfEmptyRangeThrows)
{
    Rng rng(3);
    EXPECT_THROW((void)rng.index(0), SimulationError);
}

TEST(Trace, SliceAtExactEndIsAllowed)
{
    Trace t({1.0, 2.0, 3.0}, 1.0);
    const Trace s = t.slice(1, 2);
    EXPECT_EQ(s.size(), 2u);
    const Trace whole = t.slice(0, 3);
    EXPECT_EQ(whole.size(), 3u);
    const Trace empty = t.slice(3, 0);
    EXPECT_TRUE(empty.empty());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(257);
    pool.parallelFor(visits.size(),
                     [&](std::size_t i, std::size_t worker) {
                         EXPECT_LT(worker, 4u);
                         visits[i].fetch_add(1);
                     });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int job = 0; job < 20; ++job)
        pool.parallelFor(100, [&](std::size_t i, std::size_t) {
            sum.fetch_add(static_cast<long>(i));
        });
    EXPECT_EQ(sum.load(), 20L * (99L * 100L / 2L));
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [](std::size_t i, std::size_t) {
                             if (i == 13)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // And the pool survives for the next job.
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ExceptionDoesNotAbandonRemainingItems)
{
    // The first exception is rethrown, but every other index must
    // still run: the GA's batch evaluator relies on a thrown task
    // not silently dropping its neighbours' results.
    ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(97);
    EXPECT_THROW(
        pool.parallelFor(visits.size(),
                         [&](std::size_t i, std::size_t) {
                             visits[i].fetch_add(1);
                             if (i == 5)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedParallelForThrows)
{
    // parallelFor is documented as non-reentrant; a task that calls
    // back into its own pool must get a SimulationError, which then
    // propagates to the outer call like any task exception.
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](std::size_t, std::size_t) {
                             pool.parallelFor(
                                 1, [](std::size_t, std::size_t) {});
                         }),
        SimulationError);
    // The pool stays usable afterwards.
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](std::size_t, std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ShutdownWhileBusyCompletesTheJob)
{
    // Rapid construct / run / destroy cycles race worker startup,
    // the job hand-off, and shutdown. A worker that observed stop_
    // together with a fresh epoch used to abandon its share and
    // leave parallelFor blocked; this loop is the detector.
    for (int cycle = 0; cycle < 200; ++cycle) {
        std::atomic<int> count{0};
        {
            ThreadPool pool(4);
            pool.parallelFor(16, [&](std::size_t, std::size_t) {
                count.fetch_add(1);
            });
            // Destructor runs immediately: stop_ lands while workers
            // may still be draining or have never woken.
        }
        EXPECT_EQ(count.load(), 16) << "cycle " << cycle;
    }
    // Construct-and-destroy with no job at all must not hang either.
    for (int cycle = 0; cycle < 50; ++cycle)
        ThreadPool idle(3);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);
    EXPECT_GE(resolveThreadCount(0), 1u); // auto is at least one
}

TEST(Trace, ResampleToCoarserGridDecimates)
{
    Trace t({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 1.0);
    const Trace d = t.resampleZeroOrderHold(2.0);
    ASSERT_EQ(d.size(), 4u);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
    EXPECT_DOUBLE_EQ(d[1], 2.0);
    EXPECT_DOUBLE_EQ(d[3], 6.0);
}

} // namespace
} // namespace emstress
