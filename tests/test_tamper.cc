/**
 * @file
 * Tests for EM-fingerprint tamper detection: unmodified devices pass,
 * decap removal and added board capacitance are flagged with the
 * correct shift direction.
 */

#include <gtest/gtest.h>

#include "core/tamper_detector.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace core {
namespace {

TEST(TamperDetector, CleanDevicePasses)
{
    // Same hardware, different measurement session (different
    // instrument noise seed): must not be flagged.
    platform::Platform device_a(platform::junoA72Config(), 100);
    platform::Platform device_b(platform::junoA72Config(), 200);
    const auto baseline = TamperDetector::acquire(device_a, 2e-6, 3);
    const auto observed = TamperDetector::acquire(device_b, 2e-6, 3);
    const auto verdict = TamperDetector::check(baseline, observed);
    EXPECT_FALSE(verdict.tampered) << verdict.reason;
    EXPECT_LT(std::abs(verdict.resonance_shift_hz), mega(4.0));
}

TEST(TamperDetector, DetectsRemovedDieCapacitance)
{
    // Tampering that removes decoupling (e.g. a shaved package or a
    // desoldered cap bank) raises the resonance.
    platform::Platform good(platform::junoA72Config(), 100);
    const auto baseline = TamperDetector::acquire(good, 2e-6, 3);

    auto tampered_cfg = platform::junoA72Config();
    tampered_cfg.pdn.c_die_core *= 0.55;
    tampered_cfg.pdn.c_die_uncore *= 0.55;
    platform::Platform bad(tampered_cfg, 100);
    const auto observed = TamperDetector::acquire(bad, 2e-6, 3);

    const auto verdict = TamperDetector::check(baseline, observed);
    EXPECT_TRUE(verdict.tampered);
    EXPECT_GT(verdict.resonance_shift_hz, mega(4.0));
    EXPECT_NE(verdict.reason.find("removed"), std::string::npos)
        << verdict.reason;
}

TEST(TamperDetector, DetectsAddedProbeCapacitance)
{
    // An implant/probe hanging on the rail adds capacitance and
    // lowers the resonance.
    platform::Platform good(platform::junoA72Config(), 100);
    const auto baseline = TamperDetector::acquire(good, 2e-6, 3);

    auto tampered_cfg = platform::junoA72Config();
    tampered_cfg.pdn.c_die_uncore *= 3.0;
    platform::Platform bad(tampered_cfg, 100);
    const auto observed = TamperDetector::acquire(bad, 2e-6, 3);

    const auto verdict = TamperDetector::check(baseline, observed);
    EXPECT_TRUE(verdict.tampered);
    EXPECT_LT(verdict.resonance_shift_hz, -mega(4.0));
}

TEST(TamperDetector, ValidatesInput)
{
    PdnFingerprint empty;
    PdnFingerprint other;
    EXPECT_THROW((void)TamperDetector::check(empty, other),
                 ConfigError);
}

} // namespace
} // namespace core
} // namespace emstress
