/**
 * @file
 * Tests for the ISA layer: instruction classes, pools, XML parsing
 * and kernels.
 */

#include <gtest/gtest.h>

#include "isa/instr.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "isa/xml.h"
#include "util/error.h"
#include "util/rng.h"

namespace emstress {
namespace isa {
namespace {

TEST(InstrClassNames, RoundTripAllClasses)
{
    for (std::size_t i = 0; i < kNumInstrClasses; ++i) {
        const auto cls = static_cast<InstrClass>(i);
        EXPECT_EQ(instrClassFromName(instrClassName(cls)), cls);
    }
    EXPECT_THROW(instrClassFromName("bogus"), ConfigError);
}

TEST(InstrClassNames, MemoryClassification)
{
    EXPECT_TRUE(isMemoryClass(InstrClass::Load));
    EXPECT_TRUE(isMemoryClass(InstrClass::Store));
    EXPECT_TRUE(isMemoryClass(InstrClass::IntShortMem));
    EXPECT_TRUE(isMemoryClass(InstrClass::IntLongMem));
    EXPECT_FALSE(isMemoryClass(InstrClass::IntShort));
    EXPECT_FALSE(isMemoryClass(InstrClass::Branch));
    EXPECT_TRUE(isX86MemOperandClass(InstrClass::IntShortMem));
    EXPECT_FALSE(isX86MemOperandClass(InstrClass::Load));
}

TEST(Pool, ArmPoolCoversPaperMix)
{
    // Section 3.3: short/long integer, FP, SIMD, dummy branches,
    // loads and stores.
    const auto pool = InstructionPool::armV8();
    EXPECT_EQ(pool.isa(), IsaFamily::ArmV8);
    bool classes[kNumInstrClasses] = {};
    for (const auto &d : pool.defs())
        classes[static_cast<std::size_t>(d.cls)] = true;
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::IntShort)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::IntLong)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::FpShort)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::FpLong)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::SimdShort)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::SimdLong)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::Load)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::Store)]);
    EXPECT_TRUE(classes[static_cast<std::size_t>(InstrClass::Branch)]);
    // x86-only classes absent on ARM.
    EXPECT_FALSE(
        classes[static_cast<std::size_t>(InstrClass::IntShortMem)]);
}

TEST(Pool, X86PoolUsesMemOperandsInsteadOfLoadStore)
{
    // Section 3.3: "x86 does not have explicit load-store
    // instructions; memory operations are implemented by using memory
    // address operands for integer instructions".
    const auto pool = InstructionPool::x86Sse2();
    bool classes[kNumInstrClasses] = {};
    for (const auto &d : pool.defs())
        classes[static_cast<std::size_t>(d.cls)] = true;
    EXPECT_TRUE(
        classes[static_cast<std::size_t>(InstrClass::IntShortMem)]);
    EXPECT_TRUE(
        classes[static_cast<std::size_t>(InstrClass::IntLongMem)]);
    EXPECT_FALSE(classes[static_cast<std::size_t>(InstrClass::Load)]);
    EXPECT_FALSE(classes[static_cast<std::size_t>(InstrClass::Store)]);
}

TEST(Pool, LongLatencyExceedsShortLatency)
{
    for (const auto &pool :
         {InstructionPool::armV8(), InstructionPool::x86Sse2()}) {
        unsigned max_short = 0;
        unsigned min_long = 1000;
        for (const auto &d : pool.defs()) {
            if (d.cls == InstrClass::IntShort)
                max_short = std::max(max_short, d.latency);
            if (d.cls == InstrClass::IntLong
                || d.cls == InstrClass::FpLong) {
                min_long = std::min(min_long, d.latency);
            }
        }
        EXPECT_GT(min_long, max_short);
    }
}

TEST(Pool, AddInstructionValidation)
{
    InstructionPool pool(IsaFamily::ArmV8, 4, 4, 4, 2);
    EXPECT_THROW(pool.addInstruction({"", InstrClass::IntShort, 1, 2,
                                      true, RegFile::Int, 1e-9}),
                 ConfigError);
    EXPECT_THROW(pool.addInstruction({"X", InstrClass::IntShort, 0, 2,
                                      true, RegFile::Int, 1e-9}),
                 ConfigError);
    EXPECT_THROW(pool.addInstruction({"X", InstrClass::IntShort, 1, 3,
                                      true, RegFile::Int, 1e-9}),
                 ConfigError);
    pool.addInstruction(
        {"X", InstrClass::IntShort, 1, 2, true, RegFile::Int, 1e-9});
    EXPECT_THROW(pool.addInstruction({"X", InstrClass::IntShort, 1, 2,
                                      true, RegFile::Int, 1e-9}),
                 ConfigError);
    EXPECT_EQ(pool.defIndex("X"), 0u);
    EXPECT_THROW((void)pool.defIndex("Y"), ConfigError);
}

TEST(Pool, RandomInstructionIsValid)
{
    const auto pool = InstructionPool::armV8();
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto instr = pool.randomInstruction(rng);
        EXPECT_NO_THROW(pool.validate(instr));
    }
}

TEST(Pool, RandomMemoryInstructionGetsSlot)
{
    const auto pool = InstructionPool::armV8();
    Rng rng(6);
    bool saw_mem = false;
    for (int i = 0; i < 500; ++i) {
        const auto instr = pool.randomInstruction(rng);
        const auto &d = pool.def(instr.def_index);
        if (isMemoryClass(d.cls)) {
            saw_mem = true;
            EXPECT_GE(instr.mem_slot, 0);
            EXPECT_LT(instr.mem_slot, pool.memSlots());
        } else {
            EXPECT_EQ(instr.mem_slot, -1);
        }
    }
    EXPECT_TRUE(saw_mem);
}

TEST(Pool, ValidateRejectsBadOperands)
{
    const auto pool = InstructionPool::armV8();
    Instruction instr;
    instr.def_index = pool.defIndex("ADD");
    instr.dest = 99;
    instr.src = {0, 0};
    EXPECT_THROW(pool.validate(instr), ConfigError);
    instr.dest = 0;
    instr.src = {-1, 0};
    EXPECT_THROW(pool.validate(instr), ConfigError);
}

TEST(Pool, AssemblyRendering)
{
    const auto pool = InstructionPool::armV8();
    Instruction add;
    add.def_index = pool.defIndex("ADD");
    add.dest = 3;
    add.src = {1, 2};
    EXPECT_EQ(pool.toAssembly(add), "ADD r3, r1, r2");

    Instruction ldr;
    ldr.def_index = pool.defIndex("LDR");
    ldr.dest = 2;
    ldr.mem_slot = 1;
    EXPECT_EQ(pool.toAssembly(ldr), "LDR r2, [mem1]");

    Instruction b;
    b.def_index = pool.defIndex("B");
    EXPECT_EQ(pool.toAssembly(b), "B .next");
}

TEST(Pool, XmlRoundTrip)
{
    const auto pool = InstructionPool::armV8();
    const std::string xml = pool.toXmlString();
    const auto restored = InstructionPool::fromXmlString(xml);
    ASSERT_EQ(restored.defs().size(), pool.defs().size());
    for (std::size_t i = 0; i < pool.defs().size(); ++i) {
        EXPECT_EQ(restored.defs()[i].mnemonic, pool.defs()[i].mnemonic);
        EXPECT_EQ(restored.defs()[i].cls, pool.defs()[i].cls);
        EXPECT_EQ(restored.defs()[i].latency, pool.defs()[i].latency);
        EXPECT_NEAR(restored.defs()[i].energy, pool.defs()[i].energy,
                    1e-18);
    }
    EXPECT_EQ(restored.isa(), pool.isa());
    EXPECT_EQ(restored.memSlots(), pool.memSlots());
}

TEST(Pool, XmlRejectsBadInput)
{
    EXPECT_THROW(InstructionPool::fromXmlString("<nope/>"),
                 ConfigError);
    EXPECT_THROW(
        InstructionPool::fromXmlString("<pool isa=\"vax\"></pool>"),
        ConfigError);
    EXPECT_THROW(InstructionPool::fromXmlString(
                     "<pool isa=\"armv8\"><registers int=\"8\" "
                     "fp=\"8\" simd=\"8\" mem_slots=\"4\"/></pool>"),
                 ConfigError); // no instructions
    EXPECT_THROW(InstructionPool::fromXmlFile("/nonexistent.xml"),
                 ConfigError);
}

TEST(Xml, ParsesNestedDocument)
{
    const auto root = parseXml(
        "<?xml version=\"1.0\"?>\n"
        "<!-- comment -->\n"
        "<a x=\"1\" y=\"two &amp; three\">\n"
        "  <b/><b z='3.5'/>\n"
        "  <c>text</c>\n"
        "</a>");
    EXPECT_EQ(root.name, "a");
    EXPECT_EQ(root.attr("x"), "1");
    EXPECT_EQ(root.attr("y"), "two & three");
    EXPECT_EQ(root.childrenNamed("b").size(), 2u);
    EXPECT_DOUBLE_EQ(root.childrenNamed("b")[1]->attrNumber("z"), 3.5);
    EXPECT_EQ(root.child("c").text, "text");
    EXPECT_TRUE(root.hasAttr("x"));
    EXPECT_FALSE(root.hasAttr("q"));
    EXPECT_EQ(root.attrOr("q", "dflt"), "dflt");
}

TEST(Xml, ErrorsCarryLineNumbers)
{
    try {
        parseXml("<a>\n<b>\n</c>\n</a>");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Xml, RejectsMalformedDocuments)
{
    EXPECT_THROW(parseXml(""), ConfigError);
    EXPECT_THROW(parseXml("<a>"), ConfigError);
    EXPECT_THROW(parseXml("<a x=1></a>"), ConfigError);
    EXPECT_THROW(parseXml("<a x=\"1\" x=\"2\"></a>"), ConfigError);
    EXPECT_THROW(parseXml("<a></a><b></b>"), ConfigError);
    EXPECT_THROW(parseXml("<a>&bogus;</a>"), ConfigError);
    EXPECT_THROW((void)parseXml("<a/>").attr("missing"), ConfigError);
    EXPECT_THROW((void)parseXml("<a/>").child("missing"), ConfigError);
    // Mismatched close, unterminated comment/attribute, stray text.
    EXPECT_THROW(parseXml("<a></b>"), ConfigError);
    EXPECT_THROW(parseXml("<a><!-- unterminated </a>"), ConfigError);
    EXPECT_THROW(parseXml("<a x=\"unterminated></a>"), ConfigError);
    EXPECT_THROW(parseXml("junk <a/>"), ConfigError);
    EXPECT_THROW(parseXml("<a>&unterminated</a>"), ConfigError);
    // attrNumber on a non-numeric value.
    EXPECT_THROW((void)parseXml("<a x=\"abc\"/>").attrNumber("x"),
                 ConfigError);
    EXPECT_THROW((void)parseXml("<a x=\"1.5zz\"/>").attrNumber("x"),
                 ConfigError);
}

TEST(Xml, AcceptsCommentsEverywhereAndSelfClosingRoot)
{
    const auto root = parseXml(
        "<!-- lead --> <r a=\"1\"/> <!-- trail -->");
    EXPECT_EQ(root.name, "r");
    EXPECT_DOUBLE_EQ(root.attrNumber("a"), 1.0);
}

TEST(Xml, SingleQuotedAttributesAndEntities)
{
    const auto root =
        parseXml("<a t='&lt;x&gt; &apos;q&apos; &quot;w&quot;'/>");
    EXPECT_EQ(root.attr("t"), "<x> 'q' \"w\"");
}

TEST(Kernel, RandomKernelValidates)
{
    const auto pool = InstructionPool::armV8();
    Rng rng(9);
    const auto k = Kernel::random(pool, 50, rng);
    EXPECT_EQ(k.size(), 50u);
    EXPECT_NO_THROW(k.validate(pool));
}

TEST(Kernel, ClassHistogramSumsToSize)
{
    const auto pool = InstructionPool::armV8();
    Rng rng(10);
    const auto k = Kernel::random(pool, 50, rng);
    const auto hist = k.classHistogram(pool);
    std::size_t total = 0;
    for (auto c : hist)
        total += c;
    EXPECT_EQ(total, 50u);
    double frac_total = 0.0;
    for (std::size_t i = 0; i < kNumInstrClasses; ++i)
        frac_total +=
            k.classFraction(pool, static_cast<InstrClass>(i));
    EXPECT_NEAR(frac_total, 1.0, 1e-12);
}

TEST(Kernel, EqualityAndAssembly)
{
    const auto pool = InstructionPool::armV8();
    Rng rng(11);
    const auto a = Kernel::random(pool, 10, rng);
    Kernel b = a;
    EXPECT_TRUE(a == b);
    b[0].dest = (b[0].dest + 1) % 8;
    EXPECT_FALSE(a == b);

    const std::string asm_text = a.toAssembly(pool);
    EXPECT_NE(asm_text.find(".loop:"), std::string::npos);
    EXPECT_NE(asm_text.find("B .loop"), std::string::npos);
}

TEST(Kernel, EmptyKernelFractionIsZero)
{
    const auto pool = InstructionPool::armV8();
    Kernel k;
    EXPECT_EQ(k.classFraction(pool, InstrClass::IntShort), 0.0);
    EXPECT_TRUE(k.empty());
}

} // namespace
} // namespace isa
} // namespace emstress
