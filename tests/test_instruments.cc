/**
 * @file
 * Tests for the instrument models: spectrum analyzer, oscilloscope
 * and SCL.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "instruments/oscilloscope.h"
#include "instruments/scl.h"
#include "instruments/spectrum_analyzer.h"
#include "util/error.h"
#include "util/stats.h"
#include "util/units.h"

namespace emstress {
namespace instruments {
namespace {

Trace
sineTrace(double freq, double amp, double fs, std::size_t n,
          double dc = 0.0)
{
    Trace t(1.0 / fs);
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        t.push(dc
               + amp
                   * std::sin(kTwoPi * freq * static_cast<double>(i)
                              / fs));
    }
    return t;
}

TEST(SpectrumAnalyzer, SweepLevelsMatchInputPower)
{
    // -30 dBm into 50 ohm is 10 mW? No: -30 dBm = 1 uW -> Vrms =
    // sqrt(1e-6 * 50) = 7.07 mV -> peak 10 mV.
    SpectrumAnalyzerParams params;
    SpectrumAnalyzer sa(params, Rng(1));
    const double vrms_target = std::sqrt(1e-6 * params.ref_impedance);
    const auto t =
        sineTrace(67e6, vrms_target * std::sqrt(2.0), 4e9, 16384);
    const auto sweep = sa.sweep(t);
    const auto m = SpectrumAnalyzer::maxAmplitude(sweep, 50e6, 90e6);
    EXPECT_NEAR(m.power_dbm, -30.0, 1.5);
    EXPECT_NEAR(m.freq_hz, 67e6, 4e9 / 16384 * 2);
}

TEST(SpectrumAnalyzer, NoiseFloorBoundsQuietSweep)
{
    SpectrumAnalyzerParams params;
    SpectrumAnalyzer sa(params, Rng(2));
    // A tiny signal far below the floor.
    const auto t = sineTrace(67e6, 1e-9, 4e9, 8192);
    const auto sweep = sa.sweep(t);
    const double mean_dbm = stats::mean(sweep.power_dbm);
    EXPECT_NEAR(mean_dbm, params.noise_floor_dbm, 4.0);
}

TEST(SpectrumAnalyzer, SpanFiltersBins)
{
    SpectrumAnalyzerParams params;
    params.f_start_hz = 40e6;
    params.f_stop_hz = 100e6;
    SpectrumAnalyzer sa(params, Rng(3));
    const auto sweep = sa.sweep(sineTrace(67e6, 0.01, 4e9, 8192));
    for (double f : sweep.freqs_hz) {
        EXPECT_GE(f, 40e6);
        EXPECT_LE(f, 100e6);
    }
}

TEST(SpectrumAnalyzer, AveragedMeasurementTighterThanSingle)
{
    // The 30-sample RMS statistic has far lower spread than a single
    // sweep (that's its purpose in the GA, Section 3.1).
    SpectrumAnalyzerParams params;
    params.gain_error_db = 1.0;
    SpectrumAnalyzer sa(params, Rng(4));
    const auto t = sineTrace(67e6, 0.01, 4e9, 8192);

    std::vector<double> singles, averaged;
    for (int i = 0; i < 24; ++i) {
        singles.push_back(
            SpectrumAnalyzer::maxAmplitude(sa.sweep(t), 50e6, 90e6)
                .power_dbm);
        averaged.push_back(
            sa.averagedMaxAmplitude(t, 50e6, 90e6, 30).power_dbm);
    }
    EXPECT_LT(stats::stddev(averaged), stats::stddev(singles));
}

TEST(SpectrumAnalyzer, AveragedMarkerFindsDominantFrequency)
{
    SpectrumAnalyzer sa(SpectrumAnalyzerParams{}, Rng(5));
    const auto t = sineTrace(76e6, 0.02, 4e9, 16384);
    const auto m = sa.averagedMaxAmplitude(t, 50e6, 200e6, 10);
    EXPECT_NEAR(m.freq_hz, 76e6, 4e9 / 16384.0 * 2);
}

TEST(SpectrumAnalyzer, ValidatesConfig)
{
    SpectrumAnalyzerParams bad;
    bad.f_stop_hz = bad.f_start_hz;
    EXPECT_THROW(SpectrumAnalyzer sa(bad, Rng(1)), ConfigError);

    SpectrumAnalyzer sa(SpectrumAnalyzerParams{}, Rng(1));
    const auto t = sineTrace(67e6, 0.01, 4e9, 4096);
    EXPECT_THROW((void)sa.averagedMaxAmplitude(t, 50e6, 90e6, 0),
                 ConfigError);
}

TEST(Oscilloscope, CapturePreservesWaveformShape)
{
    Oscilloscope scope(ocDsoParams(), Rng(7));
    const auto t = sineTrace(10e6, 0.05, 4e9, 40000, 1.0);
    const auto cap = scope.capture(t);
    EXPECT_DOUBLE_EQ(cap.dt(), 1.0 / ocDsoParams().sample_rate_hz);
    // 10 MHz passes the 700 MHz front end unattenuated.
    EXPECT_NEAR(Oscilloscope::peakToPeak(cap), 0.10, 0.012);
    EXPECT_NEAR(stats::mean(cap.samples()), 1.0, 0.01);
}

TEST(Oscilloscope, BandwidthAttenuatesFastSignals)
{
    auto params = ocDsoParams();
    params.bandwidth_hz = 100e6;
    Oscilloscope scope(params, Rng(8));
    const auto slow = scope.capture(sineTrace(10e6, 0.05, 4e9, 40000));
    const auto fast =
        scope.capture(sineTrace(400e6, 0.05, 4e9, 40000));
    EXPECT_LT(Oscilloscope::peakToPeak(fast),
              0.5 * Oscilloscope::peakToPeak(slow));
}

TEST(Oscilloscope, QuantizationStepMatchesBits)
{
    auto params = ocDsoParams();
    params.noise_v_rms = 0.0;
    params.bits = 8;
    params.full_scale_v = 2.56; // LSB = 10 mV
    Oscilloscope scope(params, Rng(9));
    const auto cap = scope.capture(sineTrace(5e6, 0.03, 4e9, 40000));
    for (std::size_t i = 0; i < cap.size(); ++i) {
        const double quotient = cap[i] / 0.01;
        EXPECT_NEAR(quotient, std::round(quotient), 1e-6);
    }
}

TEST(Oscilloscope, MaxDroopAndP2p)
{
    Trace t({1.0, 0.95, 0.98, 1.02, 0.97}, 1e-9);
    EXPECT_NEAR(Oscilloscope::maxDroop(t, 1.0), 0.05, 1e-12);
    EXPECT_NEAR(Oscilloscope::peakToPeak(t), 0.07, 1e-12);
}

TEST(Oscilloscope, FftViewFindsNoiseFrequency)
{
    Oscilloscope scope(ocDsoParams(), Rng(10));
    const auto cap =
        scope.capture(sineTrace(67e6, 0.02, 4e9, 40000, 0.9));
    const auto spec = Oscilloscope::fftView(cap);
    const auto pk = dsp::maxPeakInBand(spec, 40e6, 100e6);
    EXPECT_NEAR(pk.freq_hz, 67e6, 2 * spec.binWidth());
}

TEST(Oscilloscope, KelvinScopeIsNoisier)
{
    EXPECT_GT(kelvinScopeParams().noise_v_rms,
              ocDsoParams().noise_v_rms);
    EXPECT_LT(kelvinScopeParams().bandwidth_hz,
              ocDsoParams().bandwidth_hz);
}

TEST(Oscilloscope, ValidatesConfig)
{
    auto bad = ocDsoParams();
    bad.bits = 2;
    EXPECT_THROW(Oscilloscope s(bad, Rng(1)), ConfigError);
    bad = ocDsoParams();
    bad.sample_rate_hz = 0.0;
    EXPECT_THROW(Oscilloscope s(bad, Rng(1)), ConfigError);
}

TEST(Scl, SquareWaveShape)
{
    SyntheticCurrentLoad scl(0.5, 0.5);
    const auto wave = scl.waveform(10e6);
    const double period = 1e-7;
    EXPECT_DOUBLE_EQ(wave(0.0), 0.5);
    EXPECT_DOUBLE_EQ(wave(0.24 * period), 0.5);
    EXPECT_DOUBLE_EQ(wave(0.51 * period), 0.0);
    EXPECT_DOUBLE_EQ(wave(0.99 * period), 0.0);
    EXPECT_DOUBLE_EQ(wave(1.26 * period), 0.5);
}

TEST(Scl, DutyCycleRespected)
{
    SyntheticCurrentLoad scl(1.0, 0.25);
    const auto wave = scl.waveform(1e6);
    int high = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i)
        if (wave(static_cast<double>(i) * 1e-9) > 0.5)
            ++high;
    EXPECT_NEAR(static_cast<double>(high) / n, 0.25, 0.02);
}

TEST(Scl, ValidatesInput)
{
    EXPECT_THROW(SyntheticCurrentLoad s(0.0), ConfigError);
    EXPECT_THROW(SyntheticCurrentLoad s(1.0, 0.0), ConfigError);
    EXPECT_THROW(SyntheticCurrentLoad s(1.0, 1.0), ConfigError);
    SyntheticCurrentLoad scl(1.0);
    EXPECT_THROW((void)scl.waveform(0.0), ConfigError);
}

} // namespace
} // namespace instruments
} // namespace emstress
