/**
 * @file
 * Tests for the timing/failure models and the V_MIN search.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "vmin/timing_model.h"
#include "vmin/vmin_search.h"

namespace emstress {
namespace vmin {
namespace {

TimingModelParams
mobileTiming()
{
    TimingModelParams p;
    p.vth = 0.35;
    p.alpha = 1.3;
    p.f_anchor_hz = 1.2e9;
    p.v_crit_anchor = 0.78;
    return p;
}

TEST(TimingModel, AnchorIsReproduced)
{
    const TimingModel tm(mobileTiming());
    EXPECT_NEAR(tm.fMax(0.78), 1.2e9, 1e3);
    EXPECT_NEAR(tm.vCrit(1.2e9), 0.78, 1e-6);
}

TEST(TimingModel, FmaxMonotoneInVoltage)
{
    const TimingModel tm(mobileTiming());
    double prev = 0.0;
    for (double v = 0.4; v <= 1.2; v += 0.05) {
        const double f = tm.fMax(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
    EXPECT_EQ(tm.fMax(0.2), 0.0); // below threshold: no switching
}

TEST(TimingModel, VcritMonotoneInFrequency)
{
    const TimingModel tm(mobileTiming());
    EXPECT_LT(tm.vCrit(0.6e9), tm.vCrit(0.9e9));
    EXPECT_LT(tm.vCrit(0.9e9), tm.vCrit(1.2e9));
}

TEST(TimingModel, VcritInvertsFmaxEverywhere)
{
    const TimingModel tm(mobileTiming());
    for (double f = 0.2e9; f <= 1.4e9; f += 0.1e9) {
        const double v = tm.vCrit(f);
        EXPECT_NEAR(tm.fMax(v), f, f * 1e-6);
    }
}

TEST(TimingModel, ValidatesParameters)
{
    TimingModelParams bad = mobileTiming();
    bad.v_crit_anchor = 0.3; // below vth
    EXPECT_THROW(TimingModel tm(bad), ConfigError);
    bad = mobileTiming();
    bad.alpha = 0.0;
    EXPECT_THROW(TimingModel tm(bad), ConfigError);
    const TimingModel tm(mobileTiming());
    EXPECT_THROW((void)tm.vCrit(0.0), ConfigError);
}

TEST(FailureModel, ClassifiesBySlack)
{
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.010;
    fp.sdc_probability = 1.0; // deterministic for the test
    const FailureModel fm(fp, tm);
    Rng rng(1);

    const double v_crit = tm.vCrit(1.2e9);

    // Comfortably above: pass.
    Trace good({v_crit + 0.05, v_crit + 0.04}, 1e-9);
    EXPECT_EQ(fm.classify(good, 1.2e9, rng), RunOutcome::Pass);

    // Below critical: system crash.
    Trace bad({v_crit + 0.05, v_crit - 0.001}, 1e-9);
    EXPECT_EQ(fm.classify(bad, 1.2e9, rng), RunOutcome::SystemCrash);

    // Within the SDC band: SDC or app crash.
    Trace marginal({v_crit + 0.005, v_crit + 0.006}, 1e-9);
    const auto outcome = fm.classify(marginal, 1.2e9, rng);
    EXPECT_TRUE(outcome == RunOutcome::Sdc
                || outcome == RunOutcome::AppCrash);
    EXPECT_TRUE(isFailure(outcome));
    EXPECT_FALSE(isFailure(RunOutcome::Pass));
}

TEST(FailureModel, OutcomeNames)
{
    EXPECT_STREQ(outcomeName(RunOutcome::Pass), "pass");
    EXPECT_STREQ(outcomeName(RunOutcome::Sdc), "SDC");
    EXPECT_STREQ(outcomeName(RunOutcome::AppCrash), "app-crash");
    EXPECT_STREQ(outcomeName(RunOutcome::SystemCrash),
                 "system-crash");
}

/** Synthetic runner: fixed droop below whatever supply is applied. */
WorkloadRunner
fixedDroopRunner(double droop)
{
    return [droop](double v_supply, std::size_t) {
        Trace t(1e-9);
        for (int i = 0; i < 64; ++i)
            t.push(v_supply - (i == 32 ? droop : 0.0));
        return t;
    };
}

TEST(VminSearch, FindsExpectedThreshold)
{
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.0; // crash-only for exactness
    const FailureModel fm(fp, tm);
    VminSearchConfig cfg;
    cfg.v_start = 1.0;
    cfg.v_floor = 0.5;
    cfg.v_step = 0.010;
    VminSearch search(cfg, fm, Rng(3));

    const double droop = 0.060;
    const auto result =
        search.characterize(fixedDroopRunner(droop), 1.2e9);
    // Crash when v - droop < v_crit: first failing 10 mV grid point.
    const double v_crit = tm.vCrit(1.2e9);
    EXPECT_GT(result.vmin, v_crit + droop - 0.011);
    EXPECT_LT(result.vmin, v_crit + droop + 0.011);
    EXPECT_EQ(result.first_failure, RunOutcome::SystemCrash);
    EXPECT_NEAR(result.max_droop_nominal, droop, 1e-9);
    EXPECT_GT(result.runs_executed, 0u);
}

TEST(VminSearch, HigherDroopGivesHigherVmin)
{
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.0;
    const FailureModel fm(fp, tm);
    VminSearchConfig cfg;
    cfg.v_start = 1.0;
    VminSearch s1(cfg, fm, Rng(3));
    VminSearch s2(cfg, fm, Rng(3));
    const auto weak =
        s1.characterize(fixedDroopRunner(0.020), 1.2e9);
    const auto strong =
        s2.characterize(fixedDroopRunner(0.070), 1.2e9);
    EXPECT_GT(strong.vmin, weak.vmin + 0.035);
}

TEST(VminSearch, SdcAppearsAboveTheCrashVoltage)
{
    // Paper Section 5.2: workloads typically suffer SDC or an
    // application crash ~10 mV above the system-crash voltage, so a
    // descending search hits a soft failure first.
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.010;
    fp.sdc_probability = 1.0;
    const FailureModel fm(fp, tm);
    VminSearchConfig cfg;
    cfg.v_start = 1.0;
    VminSearch soft(cfg, fm, Rng(4));
    const auto with_band =
        soft.characterize(fixedDroopRunner(0.060), 1.2e9);
    EXPECT_TRUE(with_band.first_failure == RunOutcome::Sdc
                || with_band.first_failure == RunOutcome::AppCrash);

    // Without the band, the same workload fails ~10 mV lower, as a
    // hard crash.
    FailureModelParams hard_params;
    hard_params.sdc_band_v = 0.0;
    const FailureModel hard(hard_params, tm);
    VminSearch crash(cfg, hard, Rng(4));
    const auto no_band =
        crash.characterize(fixedDroopRunner(0.060), 1.2e9);
    EXPECT_EQ(no_band.first_failure, RunOutcome::SystemCrash);
    EXPECT_NEAR(with_band.vmin - no_band.vmin, 0.010, 0.011);
}

TEST(VminSearch, NothingFailsAboveFloorReturnsPass)
{
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.0;
    const FailureModel fm(fp, tm);
    VminSearchConfig cfg;
    cfg.v_start = 1.0;
    cfg.v_floor = 0.95; // floor above any failure point
    VminSearch search(cfg, fm, Rng(3));
    const auto result =
        search.characterize(fixedDroopRunner(0.01), 1.2e9);
    EXPECT_EQ(result.first_failure, RunOutcome::Pass);
    EXPECT_EQ(result.vmin, 0.0);
}

TEST(VminSearch, MoreRepeatsCatchRareFailures)
{
    // With a small SDC probability, 30 repeats find failures at a
    // higher voltage than 1 repeat (the paper runs 30 repeats for
    // viruses precisely for confidence).
    const TimingModel tm(mobileTiming());
    FailureModelParams fp;
    fp.sdc_band_v = 0.015;
    fp.sdc_probability = 0.15;
    const FailureModel fm(fp, tm);

    // Runner with per-repeat droop jitter.
    auto jittery = [](double v_supply, std::size_t rep) {
        Trace t(1e-9);
        const double droop =
            0.050 + 0.004 * static_cast<double>(rep % 7);
        for (int i = 0; i < 16; ++i)
            t.push(v_supply - (i == 8 ? droop : 0.0));
        return t;
    };

    VminSearchConfig one;
    one.repeats = 1;
    VminSearchConfig many;
    many.repeats = 30;
    double vmin_one_total = 0.0, vmin_many_total = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        VminSearch s1(one, fm, Rng(seed));
        VminSearch s2(many, fm, Rng(seed + 1000));
        vmin_one_total += s1.characterize(jittery, 1.2e9).vmin;
        vmin_many_total += s2.characterize(jittery, 1.2e9).vmin;
    }
    EXPECT_GE(vmin_many_total, vmin_one_total);
}

TEST(VminSearch, ValidatesConfig)
{
    const TimingModel tm(mobileTiming());
    const FailureModel fm(FailureModelParams{}, tm);
    VminSearchConfig bad;
    bad.v_step = 0.0;
    EXPECT_THROW(VminSearch s(bad, fm, Rng(1)), ConfigError);
    bad = VminSearchConfig{};
    bad.v_floor = bad.v_start + 1.0;
    EXPECT_THROW(VminSearch s(bad, fm, Rng(1)), ConfigError);
    bad = VminSearchConfig{};
    bad.repeats = 0;
    EXPECT_THROW(VminSearch s(bad, fm, Rng(1)), ConfigError);
}

} // namespace
} // namespace vmin
} // namespace emstress
