/**
 * @file
 * Unit and property tests for the FFT and window functions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/fft.h"
#include "dsp/window.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace dsp {
namespace {

TEST(Fft, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(5), 8u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
    EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<std::complex<double>> data(12);
    EXPECT_THROW(fftInPlace(data), ConfigError);
}

TEST(Fft, DcSignal)
{
    std::vector<std::complex<double>> data(8, {1.0, 0.0});
    fftInPlace(data);
    EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
    for (std::size_t k = 1; k < 8; ++k)
        EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
}

TEST(Fft, SingleBinSinusoid)
{
    // cos(2*pi*k0*n/N) has energy split between bins k0 and N-k0.
    const std::size_t n = 64;
    const std::size_t k0 = 5;
    std::vector<std::complex<double>> data(n);
    for (std::size_t i = 0; i < n; ++i) {
        data[i] = std::cos(kTwoPi * static_cast<double>(k0 * i)
                           / static_cast<double>(n));
    }
    fftInPlace(data);
    EXPECT_NEAR(std::abs(data[k0]), static_cast<double>(n) / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(data[n - k0]), static_cast<double>(n) / 2.0,
                1e-9);
    for (std::size_t k = 0; k < n; ++k) {
        if (k == k0 || k == n - k0)
            continue;
        EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << "bin " << k;
    }
}

TEST(Fft, RoundTripRestoresSignal)
{
    Rng rng(3);
    std::vector<std::complex<double>> data(256);
    std::vector<std::complex<double>> orig(256);
    for (auto &x : data)
        x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    orig = data;
    fftInPlace(data, false);
    fftInPlace(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
        EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
    }
}

TEST(Fft, ParsevalTheorem)
{
    Rng rng(11);
    const std::size_t n = 512;
    std::vector<double> sig(n);
    for (auto &v : sig)
        v = rng.gaussian(0.0, 1.0);
    double time_energy = 0.0;
    for (double v : sig)
        time_energy += v * v;

    const auto spec = fftReal(sig);
    double freq_energy = 0.0;
    for (const auto &x : spec)
        freq_energy += std::norm(x);
    freq_energy /= static_cast<double>(spec.size());

    EXPECT_NEAR(freq_energy, time_energy, 1e-8 * time_energy);
}

TEST(Fft, Linearity)
{
    Rng rng(5);
    const std::size_t n = 128;
    std::vector<double> a(n), b(n), sum(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.uniform(-1.0, 1.0);
        b[i] = rng.uniform(-1.0, 1.0);
        sum[i] = 2.0 * a[i] + 3.0 * b[i];
    }
    const auto fa = fftReal(a);
    const auto fb = fftReal(b);
    const auto fs = fftReal(sum);
    for (std::size_t k = 0; k < fs.size(); ++k) {
        const auto expect = 2.0 * fa[k] + 3.0 * fb[k];
        EXPECT_NEAR(std::abs(fs[k] - expect), 0.0, 1e-9);
    }
}

TEST(Fft, IfftToRealInvertsFftReal)
{
    Rng rng(9);
    std::vector<double> sig(64);
    for (auto &v : sig)
        v = rng.uniform(-2.0, 2.0);
    const auto restored = ifftToReal(fftReal(sig));
    ASSERT_EQ(restored.size(), 64u);
    for (std::size_t i = 0; i < sig.size(); ++i)
        EXPECT_NEAR(restored[i], sig[i], 1e-10);
}

TEST(Fft, ZeroPadsToNextPowerOfTwo)
{
    std::vector<double> sig(100, 1.0);
    const auto spec = fftReal(sig);
    EXPECT_EQ(spec.size(), 128u);
}

class WindowTest : public ::testing::TestWithParam<WindowKind>
{};

TEST_P(WindowTest, CoefficientsWithinUnitRange)
{
    const auto w = makeWindow(GetParam(), 257);
    for (double v : w) {
        // Flat-top windows legitimately dip negative (to ~-0.42).
        EXPECT_GE(v, -0.5);
        EXPECT_LE(v, 5.0); // flat-top exceeds 1.0 by design
    }
}

TEST_P(WindowTest, Symmetric)
{
    const auto w = makeWindow(GetParam(), 129);
    for (std::size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
}

TEST_P(WindowTest, CoherentGainPositive)
{
    const double g = coherentGain(GetParam(), 256);
    EXPECT_GT(g, 0.0);
    EXPECT_LE(g, 1.0 + 1e-9);
}

TEST_P(WindowTest, NameNonEmpty)
{
    EXPECT_FALSE(windowName(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllWindows, WindowTest,
    ::testing::Values(WindowKind::Rectangular, WindowKind::Hann,
                      WindowKind::Hamming, WindowKind::Blackman,
                      WindowKind::FlatTop));

TEST(Window, RectangularGainIsOne)
{
    EXPECT_NEAR(coherentGain(WindowKind::Rectangular, 64), 1.0, 1e-12);
}

TEST(Window, HannGainIsHalf)
{
    // Hann coherent gain tends to 0.5 for large N.
    EXPECT_NEAR(coherentGain(WindowKind::Hann, 4096), 0.5, 1e-3);
}

TEST(Window, EmptyAndSingle)
{
    EXPECT_TRUE(makeWindow(WindowKind::Hann, 0).empty());
    const auto w1 = makeWindow(WindowKind::Hann, 1);
    ASSERT_EQ(w1.size(), 1u);
    EXPECT_DOUBLE_EQ(w1[0], 1.0);
}

} // namespace
} // namespace dsp
} // namespace emstress
