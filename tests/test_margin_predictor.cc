/**
 * @file
 * Tests for the EM margin predictor (the paper's future-work item:
 * predicting voltage margins from EM emanations alone).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/margin_predictor.h"
#include "core/resonant_kernel.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace core {
namespace {

/** Train on a spread of resonant + random kernels. */
void
train(EmMarginPredictor &predictor, platform::Platform &plat,
      Rng &rng)
{
    for (double f : {45e6, 55e6, 62e6, 67e6, 75e6, 90e6, 110e6}) {
        predictor.addKernel(
            makeResonantKernelFor(plat.pool(), plat.frequency(), f));
    }
    for (int i = 0; i < 5; ++i)
        predictor.addKernel(isa::Kernel::random(plat.pool(), 50, rng));
}

TEST(MarginPredictor, FitsWithGoodR2)
{
    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    Rng rng(31);
    train(predictor, a72, rng);
    const auto model = predictor.fit();
    EXPECT_GT(model.slope, 0.0);       // more EM -> more droop
    EXPECT_GT(model.r_squared, 0.6);   // strongly explanatory
    EXPECT_EQ(model.points, 12u);
}

TEST(MarginPredictor, PredictsHeldOutKernels)
{
    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    Rng rng(32);
    train(predictor, a72, rng);
    predictor.fit();

    // Held-out kernels (different frequencies / seeds).
    std::vector<isa::Kernel> held_out;
    held_out.push_back(makeResonantKernelFor(a72.pool(),
                                             a72.frequency(), 70e6));
    held_out.push_back(makeResonantKernelFor(a72.pool(),
                                             a72.frequency(), 50e6));
    held_out.push_back(isa::Kernel::random(a72.pool(), 50, rng));

    for (const auto &kernel : held_out) {
        const double predicted =
            predictor.predictDroopForKernel(kernel);
        const double measured = predictor.measureDroop(kernel);
        // EM-only prediction within 15 mV of the scope measurement.
        EXPECT_NEAR(predicted, measured, 0.015);
    }
}

TEST(MarginPredictor, PredictVminConsistentWithTimingModel)
{
    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    Rng rng(33);
    train(predictor, a72, rng);
    predictor.fit();

    vmin::TimingModelParams tp;
    tp.f_anchor_hz = 1.2e9;
    tp.v_crit_anchor = 0.77;
    const vmin::TimingModel timing(tp);

    // For a known EM level, V_MIN must exceed V_CRIT by roughly the
    // predicted droop.
    const double em = predictor.points()[3].em_vrms;
    const double droop = predictor.predictDroop(em);
    const double v_min = predictor.predictVmin(em, timing, 1.2e9);
    EXPECT_GT(v_min, timing.vCrit(1.2e9));
    EXPECT_NEAR(v_min - timing.vCrit(1.2e9), droop, 0.3 * droop + 0.002);
}

TEST(MarginPredictor, HigherEmMeansHigherPredictedVmin)
{
    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    Rng rng(34);
    train(predictor, a72, rng);
    predictor.fit();
    vmin::TimingModelParams tp;
    tp.f_anchor_hz = 1.2e9;
    tp.v_crit_anchor = 0.77;
    const vmin::TimingModel timing(tp);
    const double v1 = predictor.predictVmin(1e-4, timing, 1.2e9);
    const double v2 = predictor.predictVmin(5e-4, timing, 1.2e9);
    EXPECT_GT(v2, v1);
}

TEST(MarginPredictor, ValidatesUsage)
{
    platform::Platform a53(platform::junoA53Config(), 9);
    // Training needs a scope.
    EXPECT_THROW(EmMarginPredictor p(a53), ConfigError);

    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    // Too few points.
    predictor.addKernel(makeResonantKernelFor(a72.pool(),
                                              a72.frequency(), 67e6));
    EXPECT_THROW((void)predictor.fit(), ConfigError);
    // Using before fit.
    EXPECT_THROW((void)predictor.model(), SimulationError);
    EXPECT_THROW((void)predictor.predictDroop(1e-4),
                 SimulationError);
}

TEST(MarginPredictor, WorkloadObservationsWork)
{
    platform::Platform a72(platform::junoA72Config(), 9);
    EmMarginPredictor predictor(a72);
    const auto suite = workloads::spec2006Suite();
    predictor.addWorkload(workloads::findProfile(suite, "lbm"));
    predictor.addWorkload(workloads::findProfile(suite, "hmmer"));
    predictor.addWorkload(workloads::idleProfile());
    Rng rng(35);
    predictor.addKernel(makeResonantKernelFor(a72.pool(),
                                              a72.frequency(), 67e6));
    const auto model = predictor.fit();
    EXPECT_EQ(model.points, 4u);
    EXPECT_GT(model.slope, 0.0);
}

} // namespace
} // namespace core
} // namespace emstress
