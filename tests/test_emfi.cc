/**
 * @file
 * Active-EMFI scenario tests: the pulse injection model (spatial
 * coupling, waveform, energy), the kernel-genome pulse encoding, the
 * ISA-level fault-effects model (golden-pinned skip / wrong-result /
 * register-corruption events on crafted traces, replay determinism,
 * threshold monotonicity), the platform arm/disarm contract (a
 * zero-amplitude pulse is bit-identical to never arming, across GA
 * fleet widths), and the minimal-energy pulse search (replayable bit
 * for bit across thread counts).
 */

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/emfi.h"
#include "core/fitness.h"
#include "em/pulse_injector.h"
#include "ga/ga_engine.h"
#include "ga/pulse_genome.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/trace.h"
#include "util/units.h"
#include "vmin/fault_effects.h"

namespace emstress {
namespace {

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

// ---------------------------------------------------------------
// PulseInjector: waveform, coupling, energy, validation.
// ---------------------------------------------------------------

em::PulseSpec
rectSpec()
{
    em::PulseSpec spec;
    spec.t0_s = 10e-9;
    spec.width_s = 20e-9;
    spec.amplitude_a = 2.0;
    spec.x = 0.5;
    spec.y = 0.5;
    return spec;
}

TEST(PulseInjector, RectWindowIsExact)
{
    const em::PulseInjector inj(rectSpec());
    EXPECT_EQ(inj.currentAt(5e-9), 0.0);   // before t0
    EXPECT_EQ(inj.currentAt(15e-9), 2.0);  // inside (gain 1 at center)
    EXPECT_EQ(inj.currentAt(50e-9), 0.0);  // long after

    // The support is half-open: with t0 = 0 the pulse-frame time is
    // exact, so the sample at t = width falls outside.
    em::PulseSpec from_zero = rectSpec();
    from_zero.t0_s = 0.0;
    const em::PulseInjector edge(from_zero);
    EXPECT_EQ(edge.currentAt(0.0), 2.0);
    EXPECT_EQ(edge.currentAt(20e-9), 0.0);
}

TEST(PulseInjector, NegativePolarityFlipsSign)
{
    em::PulseSpec spec = rectSpec();
    spec.polarity = -1.0;
    const em::PulseInjector inj(spec);
    EXPECT_EQ(inj.currentAt(15e-9), -2.0);
}

TEST(PulseInjector, CouplingGainFallsOffFromDieCenter)
{
    em::PulseSpec corner = rectSpec();
    corner.x = 0.0;
    corner.y = 0.0;
    const em::PulseInjector center(rectSpec());
    const em::PulseInjector off(corner);
    EXPECT_DOUBLE_EQ(center.couplingGain(), 1.0);
    EXPECT_LT(off.couplingGain(), 1.0);
    EXPECT_GT(off.couplingGain(), 0.0);
    EXPECT_LT(off.currentAt(15e-9), center.currentAt(15e-9));
}

TEST(PulseInjector, WaveformAppliesSettleOffset)
{
    const em::PulseInjector inj(rectSpec());
    const circuit::SourceWaveform wave = inj.waveform(100e-9);
    EXPECT_EQ(wave(105e-9), inj.currentAt(5e-9));
    EXPECT_EQ(wave(115e-9), inj.currentAt(15e-9));
}

TEST(PulseInjector, EnergyMatchesClosedForms)
{
    const em::PulseInjector rect(rectSpec());
    // Rect: peak^2 * width with peak = 2 A at the die center.
    EXPECT_DOUBLE_EQ(rect.energyJoules(), 4.0 * 20e-9);

    em::PulseSpec g = rectSpec();
    g.shape = em::PulseShape::kGaussian;
    const em::PulseInjector gauss(g);
    // Gaussian peaks at the rect level but carries less energy.
    EXPECT_DOUBLE_EQ(gauss.currentAt(20e-9), 2.0); // center of pulse
    EXPECT_LT(gauss.energyJoules(), rect.energyJoules());
    EXPECT_GT(gauss.energyJoules(), 0.0);
}

TEST(PulseInjector, ZeroAmplitudeIsNull)
{
    em::PulseSpec spec = rectSpec();
    spec.amplitude_a = 0.0;
    const em::PulseInjector inj(spec);
    EXPECT_TRUE(inj.isNull());
    EXPECT_EQ(inj.currentAt(15e-9), 0.0);
    EXPECT_EQ(inj.energyJoules(), 0.0);
}

TEST(PulseInjector, InvalidSpecsThrow)
{
    em::PulseSpec bad = rectSpec();
    bad.width_s = 0.0;
    EXPECT_THROW(em::PulseInjector{bad}, ConfigError);
    bad = rectSpec();
    bad.polarity = 0.5;
    EXPECT_THROW(em::PulseInjector{bad}, ConfigError);
    bad = rectSpec();
    bad.x = 1.5;
    EXPECT_THROW(em::PulseInjector{bad}, ConfigError);
    bad = rectSpec();
    bad.t0_s = -1e-9;
    EXPECT_THROW(em::PulseInjector{bad}, ConfigError);
    bad = rectSpec();
    bad.amplitude_a = -1.0;
    EXPECT_THROW(em::PulseInjector{bad}, ConfigError);
}

// ---------------------------------------------------------------
// Pulse genome: kernel -> pulse decoding.
// ---------------------------------------------------------------

TEST(PulseGenome, DecodeIsPureInTheGenome)
{
    const isa::InstructionPool pool = isa::InstructionPool::armV8();
    Rng rng(3);
    const isa::Kernel genome =
        isa::Kernel::random(pool, ga::kPulseGenomeSlots, rng);
    const ga::PulseGrid grid;
    const em::PulseSpec a = ga::decodePulseGenome(grid, genome);
    const em::PulseSpec b = ga::decodePulseGenome(grid, genome);
    EXPECT_EQ(bits(a.t0_s), bits(b.t0_s));
    EXPECT_EQ(bits(a.width_s), bits(b.width_s));
    EXPECT_EQ(bits(a.amplitude_a), bits(b.amplitude_a));
    EXPECT_EQ(bits(a.polarity), bits(b.polarity));
    EXPECT_EQ(bits(a.x), bits(b.x));
    EXPECT_EQ(bits(a.y), bits(b.y));
    EXPECT_EQ(a.shape, b.shape);
}

TEST(PulseGenome, DecodedSpecsStayOnTheGrid)
{
    const isa::InstructionPool pool = isa::InstructionPool::armV8();
    const ga::PulseGrid grid;
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        Rng rng(seed);
        const isa::Kernel genome =
            isa::Kernel::random(pool, ga::kPulseGenomeSlots, rng);
        const em::PulseSpec spec =
            ga::decodePulseGenome(grid, genome);
        EXPECT_GE(spec.t0_s, grid.t0_min_s);
        EXPECT_LE(spec.t0_s, grid.t0_max_s);
        EXPECT_GE(spec.width_s, grid.width_min_s);
        EXPECT_LE(spec.width_s, grid.width_max_s);
        EXPECT_GE(spec.amplitude_a, 0.0);
        EXPECT_LE(spec.amplitude_a, grid.amplitude_max_a);
        EXPECT_GE(spec.x, 0.0);
        EXPECT_LE(spec.x, 1.0);
        EXPECT_GE(spec.y, 0.0);
        EXPECT_LE(spec.y, 1.0);
        // Every decodable point is a constructible pulse.
        EXPECT_NO_THROW(em::PulseInjector{spec});
    }
}

TEST(PulseGenome, ShortGenomesAndDegenerateGridsThrow)
{
    const isa::InstructionPool pool = isa::InstructionPool::armV8();
    Rng rng(3);
    const isa::Kernel tiny = isa::Kernel::random(pool, 3, rng);
    EXPECT_THROW(ga::decodePulseGenome(ga::PulseGrid{}, tiny),
                 ConfigError);

    const isa::Kernel ok =
        isa::Kernel::random(pool, ga::kPulseGenomeSlots, rng);
    ga::PulseGrid bad;
    bad.t0_steps = 1;
    EXPECT_THROW(ga::decodePulseGenome(bad, ok), ConfigError);
}

// ---------------------------------------------------------------
// Fault-effects model on crafted traces: golden pins.
// ---------------------------------------------------------------

/** Minimal pool: ADD (int), MUL (int long), STR (store). */
isa::InstructionPool
tinyPool()
{
    isa::InstructionPool pool(isa::IsaFamily::ArmV8, 8, 4, 4, 4);
    isa::InstrDef add;
    add.mnemonic = "ADD";
    add.cls = isa::InstrClass::IntShort;
    add.energy = 1e-12;
    pool.addInstruction(add);
    isa::InstrDef mul;
    mul.mnemonic = "MUL";
    mul.cls = isa::InstrClass::IntLong;
    mul.latency = 3;
    mul.energy = 2e-12;
    pool.addInstruction(mul);
    isa::InstrDef str;
    str.mnemonic = "STR";
    str.cls = isa::InstrClass::Store;
    str.sources = 1;
    str.has_dest = false;
    str.energy = 1e-12;
    pool.addInstruction(str);
    return pool;
}

/** Four-slot kernel whose slot 1 feeds slots 2 and 3. */
isa::Kernel
tinyKernel()
{
    std::vector<isa::Instruction> code(4);
    code[0] = {0, 0, {{1, 2}}, -1}; // ADD r0 <- r1, r2
    code[1] = {0, 3, {{0, 1}}, -1}; // ADD r3 <- r0, r1 (the target)
    code[2] = {1, 1, {{3, 2}}, -1}; // MUL r1 <- r3, r2
    code[3] = {2, -1, {{3, -1}}, 0}; // STR r3 -> mem[0]
    return isa::Kernel(code);
}

constexpr double kClk = giga(1.2); // vCrit anchors at 0.78 V here.
constexpr double kTraceDt = 0.25e-9;

/**
 * 1.0 V trace with samples [30, 33) dipped: with a 4-slot kernel at
 * one cycle per slot, that window is exactly iteration 2, slot 1.
 */
Trace
dippedTrace(double dip_v)
{
    std::vector<double> v(140, 1.0);
    for (std::size_t i = 30; i < 33; ++i)
        v[i] = dip_v;
    return Trace(std::move(v), kTraceDt);
}

vmin::FaultEffectsParams
pinParams(double fetch_v, double execute_v, double regfile_v)
{
    vmin::FaultEffectsParams params;
    params.fetch_margin_v = fetch_v;
    params.execute_margin_v = execute_v;
    params.regfile_margin_v = regfile_v;
    params.proximity_boost = 0.0; // position-independent thresholds
    return params;
}

TEST(FaultEffects, GoldenPinInstructionSkip)
{
    // Fetch is the weakest stage: its threshold (0.78 + 0.030) is
    // the only one above the 0.80 V dip.
    const vmin::FaultEffectsModel model(
        pinParams(0.030, 0.010, 0.005));
    const isa::InstructionPool pool = tinyPool();
    const auto report =
        model.analyze(pool, tinyKernel(), dippedTrace(0.80), kClk,
                      {}, nullptr);

    ASSERT_EQ(report.events.size(), 1u);
    const vmin::FaultEvent &ev = report.events[0];
    EXPECT_EQ(ev.iteration, 2u);
    EXPECT_EQ(ev.slot, 1u);
    EXPECT_EQ(ev.cycle, 9u);
    EXPECT_EQ(ev.stage, vmin::PipelineStage::kFetch);
    EXPECT_EQ(ev.kind, vmin::FaultKind::kInstructionSkip);
    EXPECT_DOUBLE_EQ(ev.v_min, 0.80);
    EXPECT_EQ(report.sites_crossed, 1u);
    EXPECT_NE(report.golden_digest, report.faulted_digest);
    EXPECT_EQ(report.outcome, vmin::RunOutcome::AppCrash);
}

TEST(FaultEffects, GoldenPinWrongResult)
{
    const vmin::FaultEffectsModel model(
        pinParams(0.005, 0.030, 0.010));
    const isa::InstructionPool pool = tinyPool();
    const auto report =
        model.analyze(pool, tinyKernel(), dippedTrace(0.80), kClk,
                      {}, nullptr);

    ASSERT_EQ(report.events.size(), 1u);
    const vmin::FaultEvent &ev = report.events[0];
    EXPECT_EQ(ev.iteration, 2u);
    EXPECT_EQ(ev.slot, 1u);
    EXPECT_EQ(ev.stage, vmin::PipelineStage::kExecute);
    EXPECT_EQ(ev.kind, vmin::FaultKind::kWrongResult);
    EXPECT_EQ(ev.xor_mask & 1ull, 1ull); // mask is always odd
    EXPECT_NE(report.golden_digest, report.faulted_digest);
    EXPECT_EQ(report.outcome, vmin::RunOutcome::Sdc);
}

TEST(FaultEffects, GoldenPinRegisterCorruption)
{
    // Default margins already make the register file weakest.
    const vmin::FaultEffectsModel model(
        pinParams(0.012, 0.018, 0.030));
    const isa::InstructionPool pool = tinyPool();
    const auto report =
        model.analyze(pool, tinyKernel(), dippedTrace(0.80), kClk,
                      {}, nullptr);

    ASSERT_EQ(report.events.size(), 1u);
    const vmin::FaultEvent &ev = report.events[0];
    EXPECT_EQ(ev.slot, 1u);
    EXPECT_EQ(ev.stage, vmin::PipelineStage::kRegfile);
    EXPECT_EQ(ev.kind, vmin::FaultKind::kRegisterCorruption);
    EXPECT_GE(ev.reg, 0);
    EXPECT_LT(ev.reg, 8); // tinyPool has 8 int registers
    EXPECT_EQ(ev.xor_mask & 1ull, 1ull);
    EXPECT_NE(report.golden_digest, report.faulted_digest);
    EXPECT_EQ(report.outcome, vmin::RunOutcome::Sdc);
}

TEST(FaultEffects, QuietTracePassesWithPositiveMargin)
{
    const vmin::FaultEffectsModel model(
        pinParams(0.012, 0.018, 0.030));
    const isa::InstructionPool pool = tinyPool();
    const auto report =
        model.analyze(pool, tinyKernel(), dippedTrace(1.0), kClk, {},
                      nullptr);
    EXPECT_TRUE(report.events.empty());
    EXPECT_EQ(report.sites_crossed, 0u);
    EXPECT_EQ(report.golden_digest, report.faulted_digest);
    EXPECT_GT(report.min_margin_v, 0.0);
    EXPECT_EQ(report.outcome, vmin::RunOutcome::Pass);
}

TEST(FaultEffects, AnalysisReplaysBitIdentically)
{
    const vmin::FaultEffectsModel model(
        pinParams(0.012, 0.018, 0.030));
    const isa::InstructionPool pool = tinyPool();
    const Trace trace = dippedTrace(0.78);
    const auto a =
        model.analyze(pool, tinyKernel(), trace, kClk, {}, nullptr);
    const auto b =
        model.analyze(pool, tinyKernel(), trace, kClk, {}, nullptr);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        EXPECT_TRUE(a.events[i] == b.events[i]);
    EXPECT_EQ(a.golden_digest, b.golden_digest);
    EXPECT_EQ(a.faulted_digest, b.faulted_digest);
    EXPECT_EQ(bits(a.min_margin_v), bits(b.min_margin_v));
}

TEST(FaultEffects, ScheduleSeedSteersCorruptionDraws)
{
    vmin::FaultEffectsParams p1 = pinParams(0.012, 0.018, 0.030);
    vmin::FaultEffectsParams p2 = p1;
    p2.schedule_seed = p1.schedule_seed + 1;
    const isa::InstructionPool pool = tinyPool();
    const Trace trace = dippedTrace(0.80);
    const auto a = vmin::FaultEffectsModel(p1).analyze(
        pool, tinyKernel(), trace, kClk, {}, nullptr);
    const auto b = vmin::FaultEffectsModel(p2).analyze(
        pool, tinyKernel(), trace, kClk, {}, nullptr);
    ASSERT_EQ(a.events.size(), 1u);
    ASSERT_EQ(b.events.size(), 1u);
    // The crossing is electrical (seed-independent); the corruption
    // pattern comes from the schedule.
    EXPECT_EQ(a.sites_crossed, b.sites_crossed);
    EXPECT_NE(a.events[0].xor_mask, b.events[0].xor_mask);
}

TEST(FaultEffects, ManifestProbabilityZeroGatesAllEvents)
{
    vmin::FaultEffectsParams params = pinParams(0.012, 0.018, 0.030);
    params.manifest_probability = 0.0;
    const vmin::FaultEffectsModel model(params);
    const isa::InstructionPool pool = tinyPool();
    const auto report =
        model.analyze(pool, tinyKernel(), dippedTrace(0.80), kClk,
                      {}, nullptr);
    EXPECT_EQ(report.sites_crossed, 1u); // crossing still detected
    EXPECT_TRUE(report.events.empty()); // but nothing manifests
    EXPECT_EQ(report.outcome, vmin::RunOutcome::Pass);
}

TEST(FaultEffects, DeeperDipsNeverCrossFewerSites)
{
    const vmin::FaultEffectsModel model(
        pinParams(0.012, 0.018, 0.030));
    const isa::InstructionPool pool = tinyPool();
    // V-shaped dip across iteration 2; deeper dips widen the set of
    // slot windows whose minimum crosses a threshold.
    std::size_t prev = 0;
    for (const double depth : {0.0, 0.1, 0.2, 0.25, 0.35}) {
        std::vector<double> v(140, 1.0);
        for (std::size_t i = 20; i < 44; ++i) {
            const double x =
                (static_cast<double>(i) - 32.0) / 12.0;
            v[i] = 1.0 - depth * (1.0 - std::abs(x));
        }
        const auto report = model.analyze(
            pool, tinyKernel(), Trace(std::move(v), kTraceDt), kClk,
            {}, nullptr);
        EXPECT_GE(report.sites_crossed, prev)
            << "depth=" << depth;
        prev = report.sites_crossed;
    }
    EXPECT_GT(prev, 0u); // the deepest dip crosses somewhere
}

TEST(FaultEffects, PulseProximityRaisesStageThresholds)
{
    const vmin::FaultEffectsModel model(
        vmin::FaultEffectsParams{});
    const double base = model.stageThreshold(
        vmin::PipelineStage::kRegfile, kClk, nullptr);

    em::PulseSpec at_stage;
    at_stage.amplitude_a = 10.0;
    at_stage.x = model.params().regfile_x;
    at_stage.y = model.params().regfile_y;
    em::PulseSpec far = at_stage;
    far.x = 0.0;
    far.y = 0.0;

    const double near_thr = model.stageThreshold(
        vmin::PipelineStage::kRegfile, kClk, &at_stage);
    const double far_thr = model.stageThreshold(
        vmin::PipelineStage::kRegfile, kClk, &far);
    EXPECT_GT(near_thr, far_thr);
    EXPECT_GT(far_thr, base);
}

// ---------------------------------------------------------------
// Platform arm/disarm: the zero-amplitude identity.
// ---------------------------------------------------------------

void
expectTracesBitIdentical(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(bits(a[i]), bits(b[i])) << "sample " << i;
}

TEST(EmfiPlatform, ZeroAmplitudePulseIsBitIdenticalToPassive)
{
    platform::Platform passive(platform::junoA72Config(), 3);
    platform::Platform armed(platform::junoA72Config(), 3);
    em::PulseSpec zero;
    zero.amplitude_a = 0.0;
    zero.t0_s = 0.3e-6;
    armed.armPulse(zero);
    // The null pulse must not even enter the netlist: an all-zero
    // third source column would reassociate the fast path's sums.
    EXPECT_FALSE(armed.pdnModel().pulseSource());

    Rng rng(7);
    const isa::Kernel kernel =
        isa::Kernel::random(passive.pool(), 8, rng);
    const auto a = passive.runKernel(kernel, 1e-6);
    const auto b = armed.runKernel(kernel, 1e-6);
    expectTracesBitIdentical(a.v_die, b.v_die);
    expectTracesBitIdentical(a.i_die, b.i_die);
    expectTracesBitIdentical(a.em, b.em);
}

TEST(EmfiPlatform, ArmedPulseDeepensDroopAndDisarmRestores)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    Rng rng(7);
    const isa::Kernel kernel =
        isa::Kernel::random(plat.pool(), 8, rng);
    const auto passive = plat.runKernel(kernel, 1e-6);

    em::PulseSpec pulse;
    pulse.t0_s = 0.4e-6;
    pulse.width_s = 20e-9;
    pulse.amplitude_a = 20.0;
    plat.armPulse(pulse);
    EXPECT_TRUE(plat.pdnModel().pulseSource());
    const auto active = plat.runKernel(kernel, 1e-6);

    const auto min_of = [](const Trace &t) {
        return *std::min_element(t.samples().begin(),
                                 t.samples().end());
    };
    EXPECT_LT(min_of(active.v_die), min_of(passive.v_die) - 0.05);

    plat.disarmPulse();
    EXPECT_FALSE(plat.pdnModel().pulseSource());
    const auto restored = plat.runKernel(kernel, 1e-6);
    expectTracesBitIdentical(passive.v_die, restored.v_die);
}

TEST(EmfiPlatform, CloneCarriesTheArmedPulse)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    em::PulseSpec pulse;
    pulse.t0_s = 0.4e-6;
    pulse.width_s = 20e-9;
    pulse.amplitude_a = 20.0;
    plat.armPulse(pulse);

    const auto copy = plat.clone();
    ASSERT_TRUE(copy->armedPulse().has_value());
    EXPECT_EQ(bits(copy->armedPulse()->amplitude_a),
              bits(pulse.amplitude_a));

    Rng rng(7);
    const isa::Kernel kernel =
        isa::Kernel::random(plat.pool(), 8, rng);
    const auto a = plat.runKernel(kernel, 1e-6);
    const auto b = copy->runKernel(kernel, 1e-6);
    expectTracesBitIdentical(a.v_die, b.v_die);
}

TEST(EmfiPlatform, ZeroAmpGaSearchMatchesPassiveAcrossFleetWidths)
{
    // A zero-amplitude pulse armed during a whole GA droop search
    // must reproduce the passive search bit for bit, at every
    // worker-fleet width (ISSUE acceptance criterion).
    core::EvalSettings settings;
    settings.duration_s = 1e-6;
    ga::GaConfig cfg;
    cfg.population = 6;
    cfg.generations = 2;
    cfg.kernel_length = 8;
    cfg.seed = 5;

    platform::Platform passive(platform::junoA72Config(), 3);
    core::MaxDroopFitness passive_fit(passive, settings);
    ga::GaEngine engine(passive.pool(), cfg);
    const ga::GaResult reference = engine.run(passive_fit);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        platform::Platform armed(platform::junoA72Config(), 3);
        em::PulseSpec zero;
        zero.amplitude_a = 0.0;
        armed.armPulse(zero);
        core::MaxDroopFitness armed_fit(armed, settings);
        ga::GaConfig tcfg = cfg;
        tcfg.threads = threads;
        ga::GaEngine tengine(armed.pool(), tcfg);
        const ga::GaResult got = tengine.run(armed_fit);
        EXPECT_EQ(bits(got.best_fitness), bits(reference.best_fitness))
            << "threads=" << threads;
        EXPECT_TRUE(got.best == reference.best)
            << "threads=" << threads;
    }
}

// ---------------------------------------------------------------
// EMFI campaign runs and the minimal-energy search.
// ---------------------------------------------------------------

core::EmfiCampaignSpec
campaignSpec(platform::Platform &plat)
{
    core::EmfiCampaignSpec spec;
    Rng rng(7);
    spec.victim = isa::Kernel::random(plat.pool(), 8, rng);
    spec.target_slot = 3;
    spec.eval.duration_s = 1e-6;
    spec.grid.t0_max_s = 0.8e-6;
    return spec;
}

em::PulseSpec
strongPulse(double amplitude)
{
    em::PulseSpec pulse;
    pulse.t0_s = 0.4e-6;
    pulse.width_s = 20e-9;
    pulse.amplitude_a = amplitude;
    return pulse;
}

TEST(EmfiCampaign, AmplitudeSweepNeverCrossesFewerSites)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    const core::EmfiCampaignSpec spec = campaignSpec(plat);
    std::size_t prev = 0;
    for (const double amp : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
        const auto outcome =
            core::runEmfiPulse(plat, spec, strongPulse(amp));
        EXPECT_GE(outcome.report.sites_crossed, prev)
            << "amplitude=" << amp;
        prev = outcome.report.sites_crossed;
        if (amp == 0.0) {
            EXPECT_FALSE(outcome.target_faulted);
            EXPECT_EQ(outcome.report.sites_crossed, 0u);
        }
    }
    EXPECT_GT(prev, 0u); // the 30 A pulse faults
}

TEST(EmfiCampaign, RunRestoresThePriorArmState)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    const core::EmfiCampaignSpec spec = campaignSpec(plat);
    const em::PulseSpec prior = strongPulse(5.0);
    plat.armPulse(prior);
    (void)core::runEmfiPulse(plat, spec, strongPulse(25.0));
    ASSERT_TRUE(plat.armedPulse().has_value());
    EXPECT_EQ(bits(plat.armedPulse()->amplitude_a), bits(5.0));

    plat.disarmPulse();
    (void)core::runEmfiPulse(plat, spec, strongPulse(25.0));
    EXPECT_FALSE(plat.armedPulse().has_value());
}

TEST(EmfiCampaign, FitnessShapesTheTwoRegimes)
{
    const ga::PulseGrid grid;
    core::EmfiRunOutcome faulted;
    faulted.target_faulted = true;
    faulted.energy_j = 1e-6;
    core::EmfiRunOutcome cheap = faulted;
    cheap.energy_j = 1e-8;
    core::EmfiRunOutcome missed;
    missed.target_margin_v = 0.02;
    core::EmfiRunOutcome closer = missed;
    closer.target_margin_v = 0.005;

    const double f_faulted = core::pulseSearchFitness(faulted, grid);
    const double f_cheap = core::pulseSearchFitness(cheap, grid);
    const double f_missed = core::pulseSearchFitness(missed, grid);
    const double f_closer = core::pulseSearchFitness(closer, grid);
    EXPECT_GT(f_cheap, f_faulted);  // cheaper faulting pulse wins
    EXPECT_GT(f_closer, f_missed);  // smaller margin approaches
    EXPECT_GT(f_faulted, f_closer); // any fault beats any miss
    EXPECT_GT(f_missed, 0.0);
}

TEST(EmfiSearch, FindsAFaultingPulseAndReplaysAcrossThreads)
{
    ga::GaConfig cfg;
    cfg.population = 10;
    cfg.generations = 8;
    cfg.seed = 11;

    platform::Platform plat(platform::junoA72Config(), 3);
    const core::EmfiCampaignSpec spec = campaignSpec(plat);
    const core::EmfiSearchResult reference =
        core::searchMinimalPulse(plat, spec, cfg);
    EXPECT_TRUE(reference.best_outcome.target_faulted);
    EXPECT_GT(reference.ga.best_fitness, 2.0);
    EXPECT_GT(reference.best_outcome.energy_j, 0.0);
    // The winning pulse spends less energy than the grid maximum.
    EXPECT_LT(reference.best_pulse.amplitude_a,
              spec.grid.amplitude_max_a);

    for (const std::size_t threads : {2u, 8u}) {
        ga::GaConfig tcfg = cfg;
        tcfg.threads = threads;
        platform::Platform replica(platform::junoA72Config(), 3);
        const core::EmfiSearchResult got =
            core::searchMinimalPulse(replica, spec, tcfg);
        EXPECT_EQ(bits(got.ga.best_fitness),
                  bits(reference.ga.best_fitness))
            << "threads=" << threads;
        EXPECT_TRUE(got.ga.best == reference.ga.best)
            << "threads=" << threads;
        EXPECT_EQ(bits(got.best_pulse.amplitude_a),
                  bits(reference.best_pulse.amplitude_a));
        EXPECT_EQ(bits(got.best_pulse.t0_s),
                  bits(reference.best_pulse.t0_s));
        ASSERT_EQ(got.best_outcome.report.events.size(),
                  reference.best_outcome.report.events.size());
        for (std::size_t i = 0;
             i < got.best_outcome.report.events.size(); ++i)
            EXPECT_TRUE(got.best_outcome.report.events[i]
                        == reference.best_outcome.report.events[i]);
    }
}

TEST(EmfiSearch, RejectsAnOutOfRangeTargetSlot)
{
    platform::Platform plat(platform::junoA72Config(), 3);
    core::EmfiCampaignSpec spec = campaignSpec(plat);
    spec.target_slot = spec.victim.size();
    EXPECT_THROW(
        core::runEmfiPulse(plat, spec, strongPulse(10.0)),
        ConfigError);
}

} // namespace
} // namespace emstress
