/**
 * @file
 * Tests for calibrated spectrum computation and peak analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace dsp {
namespace {

/** Build a trace holding a sum of sinusoids. */
Trace
makeTone(double fs, std::size_t n,
         std::vector<std::pair<double, double>> freq_amp,
         double dc = 0.0)
{
    Trace t(1.0 / fs);
    t.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double time = static_cast<double>(i) / fs;
        double v = dc;
        for (auto [f, a] : freq_amp)
            v += a * std::sin(kTwoPi * f * time);
        t.push(v);
    }
    return t;
}

TEST(Spectrum, RequiresMinimumSamples)
{
    Trace t({1.0, 2.0}, 1.0);
    EXPECT_THROW((void)computeSpectrum(t), ConfigError);
}

class SpectrumWindowTest : public ::testing::TestWithParam<WindowKind>
{};

TEST_P(SpectrumWindowTest, CalibratedSinusoidAmplitude)
{
    // A bin-centered ~10 MHz sinusoid of peak 0.2 V at 1 GS/s must
    // read 0.2/sqrt(2) Vrms at its bin for every window (bin-centered
    // so the rectangular window has no scalloping loss).
    const double fs = 1e9;
    const double f0 = fs / 16384.0 * 164.0;
    const double a0 = 0.2;
    const auto t = makeTone(fs, 16384, {{f0, a0}});
    const auto s = computeSpectrum(t, GetParam());
    const auto p = maxPeakInBand(s, 1e6, 100e6);
    EXPECT_NEAR(p.freq_hz, f0, s.binWidth());
    EXPECT_NEAR(p.amp_vrms, a0 / std::sqrt(2.0), 0.02 * a0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWindows, SpectrumWindowTest,
    ::testing::Values(WindowKind::Rectangular, WindowKind::Hann,
                      WindowKind::Hamming, WindowKind::Blackman,
                      WindowKind::FlatTop));

TEST(Spectrum, DcRemoved)
{
    const auto t = makeTone(1e9, 4096, {}, 5.0);
    const auto s = computeSpectrum(t);
    for (double a : s.amps_vrms)
        EXPECT_LT(a, 1e-9);
}

TEST(Spectrum, BinWidthMatchesSampleRate)
{
    const auto t = makeTone(2e9, 8192, {{50e6, 1.0}});
    const auto s = computeSpectrum(t);
    EXPECT_NEAR(s.binWidth(), 2e9 / 8192.0, 1e-6);
}

TEST(Spectrum, PeakInterpolationRefinesOffGridFrequency)
{
    // Frequency deliberately between bins; parabolic interpolation
    // should land within a quarter bin.
    const double fs = 1e9;
    const std::size_t n = 8192;
    const double bin = fs / static_cast<double>(n);
    const double f0 = bin * 123.37;
    const auto t = makeTone(fs, n, {{f0, 1.0}});
    const auto s = computeSpectrum(t, WindowKind::Hann);
    const auto p = maxPeakInBand(s, f0 - 10 * bin, f0 + 10 * bin);
    EXPECT_NEAR(p.freq_hz, f0, 0.25 * bin);
}

TEST(Spectrum, MaxPeakRespectsBand)
{
    const auto t = makeTone(1e9, 8192, {{30e6, 1.0}, {120e6, 0.3}});
    const auto s = computeSpectrum(t);
    // Full band: the 30 MHz tone dominates.
    const auto full = maxPeakInBand(s, 1e6, 400e6);
    EXPECT_NEAR(full.freq_hz, 30e6, 2 * s.binWidth());
    // Restricted band: only the 120 MHz tone qualifies.
    const auto high = maxPeakInBand(s, 80e6, 400e6);
    EXPECT_NEAR(high.freq_hz, 120e6, 2 * s.binWidth());
    EXPECT_LT(high.amp_vrms, full.amp_vrms);
}

TEST(Spectrum, EmptyBandYieldsZeroPeak)
{
    const auto t = makeTone(1e9, 4096, {{30e6, 1.0}});
    const auto s = computeSpectrum(t);
    const auto p = maxPeakInBand(s, 600e6, 700e6);
    EXPECT_EQ(p.amp_vrms, 0.0);
}

TEST(Spectrum, FindPeaksOrdersByAmplitude)
{
    const auto t = makeTone(1e9, 16384,
                            {{20e6, 0.5}, {60e6, 1.0}, {150e6, 0.2}});
    const auto s = computeSpectrum(t, WindowKind::Hann);
    const auto peaks = findPeaks(s, 5e6, 400e6, 10, 0.01);
    ASSERT_GE(peaks.size(), 3u);
    EXPECT_NEAR(peaks[0].freq_hz, 60e6, 2 * s.binWidth());
    EXPECT_NEAR(peaks[1].freq_hz, 20e6, 2 * s.binWidth());
    EXPECT_NEAR(peaks[2].freq_hz, 150e6, 2 * s.binWidth());
    EXPECT_GT(peaks[0].amp_vrms, peaks[1].amp_vrms);
    EXPECT_GT(peaks[1].amp_vrms, peaks[2].amp_vrms);
}

TEST(Spectrum, FindPeaksHonoursMaxCount)
{
    const auto t = makeTone(1e9, 16384,
                            {{20e6, 0.5}, {60e6, 1.0}, {150e6, 0.2}});
    const auto s = computeSpectrum(t);
    const auto peaks = findPeaks(s, 5e6, 400e6, 2, 0.01);
    EXPECT_LE(peaks.size(), 2u);
}

TEST(Spectrum, NoiseDoesNotMaskStrongTone)
{
    Rng rng(17);
    const double fs = 1e9;
    Trace t(1.0 / fs);
    for (std::size_t i = 0; i < 16384; ++i) {
        const double time = static_cast<double>(i) / fs;
        t.push(std::sin(kTwoPi * 67e6 * time)
               + rng.gaussian(0.0, 0.1));
    }
    const auto s = computeSpectrum(t, WindowKind::Hann);
    const auto p = maxPeakInBand(s, 50e6, 200e6);
    EXPECT_NEAR(p.freq_hz, 67e6, 2 * s.binWidth());
}

} // namespace
} // namespace dsp
} // namespace emstress
