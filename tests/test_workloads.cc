/**
 * @file
 * Tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include "isa/pool.h"
#include "uarch/core_model.h"
#include "util/error.h"
#include "util/stats.h"
#include "workloads/workload.h"

namespace emstress {
namespace workloads {
namespace {

TEST(Workloads, SuitesContainExpectedNames)
{
    const auto spec = spec2006Suite();
    EXPECT_GE(spec.size(), 10u);
    EXPECT_NO_THROW((void)findProfile(spec, "lbm"));
    EXPECT_NO_THROW((void)findProfile(spec, "mcf"));
    EXPECT_THROW((void)findProfile(spec, "doom"), ConfigError);

    const auto desk = desktopSuite();
    EXPECT_NO_THROW((void)findProfile(desk, "prime95"));
    EXPECT_NO_THROW((void)findProfile(desk, "blender"));
    EXPECT_NO_THROW((void)findProfile(desk, "amd_stab"));
}

TEST(Workloads, StreamsValidateAgainstPool)
{
    const auto arm = isa::InstructionPool::armV8();
    const auto x86 = isa::InstructionPool::x86Sse2();
    Rng rng(1);
    for (const auto &profile : spec2006Suite()) {
        const auto s = generateStream(profile, arm, 3000, rng);
        ASSERT_EQ(s.size(), 3000u);
        for (const auto &instr : s)
            EXPECT_NO_THROW(arm.validate(instr)) << profile.name;
    }
    for (const auto &profile : desktopSuite()) {
        const auto s = generateStream(profile, x86, 3000, rng);
        for (const auto &instr : s)
            EXPECT_NO_THROW(x86.validate(instr)) << profile.name;
    }
}

TEST(Workloads, StreamsAreReproducible)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto profile = findProfile(spec2006Suite(), "gcc");
    const auto a = generateStream(profile, pool, 2000, Rng(7));
    const auto b = generateStream(profile, pool, 2000, Rng(7));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].def_index, b[i].def_index);
        EXPECT_EQ(a[i].dest, b[i].dest);
    }
}

TEST(Workloads, DifferentBenchmarksProduceDifferentStreams)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto suite = spec2006Suite();
    const auto a =
        generateStream(findProfile(suite, "gcc"), pool, 2000, Rng(7));
    const auto b =
        generateStream(findProfile(suite, "lbm"), pool, 2000, Rng(7));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        diffs += a[i].def_index != b[i].def_index;
    EXPECT_GT(diffs, 200u);
}

TEST(Workloads, IdleDrawsFarLessCurrentThanPrime95Like)
{
    const auto pool = isa::InstructionPool::armV8();
    uarch::CoreModel core(uarch::cortexA72Params());
    Rng rng(3);
    const auto idle_s =
        generateStream(idleProfile(), pool, 20000, rng);
    const auto hot_s = generateStream(
        findProfile(desktopSuite(), "prime95"), pool, 20000, rng);
    const auto idle_run = core.runStream(pool, idle_s, 1.2e9);
    const auto hot_run = core.runStream(pool, hot_s, 1.2e9);
    EXPECT_GT(stats::mean(hot_run.current.samples()),
              3.0 * stats::mean(idle_run.current.samples()));
}

TEST(Workloads, Prime95LikeIsSteadyLbmIsBursty)
{
    // The ordering that drives Figs. 10/18: stability tests draw high
    // *steady* power, lbm swings.
    const auto pool = isa::InstructionPool::armV8();
    uarch::CoreModel core(uarch::cortexA72Params());
    Rng rng(4);
    const auto p95 = core.runStream(
        pool,
        generateStream(findProfile(desktopSuite(), "prime95"), pool,
                       30000, rng),
        1.2e9);
    const auto lbm = core.runStream(
        pool,
        generateStream(findProfile(spec2006Suite(), "lbm"), pool,
                       30000, rng),
        1.2e9);
    const double cv_p95 = stats::stddev(p95.current.samples())
        / stats::mean(p95.current.samples());
    const double cv_lbm = stats::stddev(lbm.current.samples())
        / stats::mean(lbm.current.samples());
    EXPECT_GT(stats::mean(p95.current.samples()),
              stats::mean(lbm.current.samples()));
    EXPECT_GT(cv_lbm, 1.15 * cv_p95);
}

TEST(Workloads, BurstsProduceLowCurrentWindows)
{
    const auto pool = isa::InstructionPool::armV8();
    auto profile = findProfile(spec2006Suite(), "mcf");
    uarch::CoreModel core(uarch::cortexA72Params());
    Rng rng(5);
    const auto run = core.runStream(
        pool, generateStream(profile, pool, 30000, rng), 1.2e9);
    // Bursty streams reach clearly lower current than their mean
    // (bounded below by the idle floor).
    const double mean = stats::mean(run.current.samples());
    const double p5 = stats::percentile(run.current.samples(), 5.0);
    EXPECT_LT(p5, 0.75 * mean);
}

TEST(Workloads, GeneratorValidatesInput)
{
    const auto pool = isa::InstructionPool::armV8();
    WorkloadProfile bad = idleProfile();
    bad.intensity = 1.5;
    EXPECT_THROW((void)generateStream(bad, pool, 100, Rng(1)),
                 ConfigError);
    bad = idleProfile();
    bad.phase_len = 0;
    EXPECT_THROW((void)generateStream(bad, pool, 100, Rng(1)),
                 ConfigError);
    EXPECT_THROW(
        (void)generateStream(idleProfile(), pool, 0, Rng(1)),
        ConfigError);
}

class SuiteStreamTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(SuiteStreamTest, EveryProfileRunsOnBothCores)
{
    // Smoke: every SPEC profile produces a runnable ARM stream on the
    // in-order A53 model too.
    const auto pool = isa::InstructionPool::armV8();
    uarch::CoreModel a53(uarch::cortexA53Params());
    Rng rng(6);
    const auto stream = generateStream(
        findProfile(spec2006Suite(), GetParam()), pool, 8000, rng);
    const auto run = a53.runStream(pool, stream, 950e6);
    EXPECT_GT(run.stats.ipc, 0.02);
    EXPECT_LE(run.stats.ipc, 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SpecBenchmarks, SuiteStreamTest,
    ::testing::Values("perlbench", "bzip2", "gcc", "mcf", "milc",
                      "namd", "hmmer", "libquantum", "lbm",
                      "omnetpp"));

} // namespace
} // namespace workloads
} // namespace emstress
