/**
 * @file
 * Tests for the core models: issue disciplines, latency/dependency
 * handling, IPC bounds, loop statistics and the current model.
 */

#include <gtest/gtest.h>

#include "isa/kernel.h"
#include "isa/pool.h"
#include "uarch/core_model.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace emstress {
namespace uarch {
namespace {

/** Kernel of n independent ADDs (different destination registers). */
isa::Kernel
independentAdds(const isa::InstructionPool &pool, std::size_t n)
{
    std::vector<isa::Instruction> code;
    const std::size_t add = pool.defIndex("ADD");
    for (std::size_t i = 0; i < n; ++i) {
        isa::Instruction instr;
        instr.def_index = add;
        instr.dest = static_cast<int>(i % 8);
        instr.src = {static_cast<int>((i + 1) % 8),
                     static_cast<int>((i + 2) % 8)};
        code.push_back(instr);
    }
    return isa::Kernel(std::move(code));
}

/** Kernel of n fully serialized ADDs (each depends on the last). */
isa::Kernel
chainedAdds(const isa::InstructionPool &pool, std::size_t n)
{
    std::vector<isa::Instruction> code;
    const std::size_t add = pool.defIndex("ADD");
    for (std::size_t i = 0; i < n; ++i) {
        isa::Instruction instr;
        instr.def_index = add;
        instr.dest = 0;
        instr.src = {0, 0};
        code.push_back(instr);
    }
    return isa::Kernel(std::move(code));
}

/** Kernel of self-dependent long-latency divides. */
isa::Kernel
chainedDivs(const isa::InstructionPool &pool, std::size_t n)
{
    std::vector<isa::Instruction> code;
    const std::size_t div = pool.defIndex("SDIV");
    for (std::size_t i = 0; i < n; ++i) {
        isa::Instruction instr;
        instr.def_index = div;
        instr.dest = 0;
        instr.src = {0, 0};
        code.push_back(instr);
    }
    return isa::Kernel(std::move(code));
}

TEST(CoreModel, IndependentAddsReachIssueWidthBoundedIpc)
{
    const auto pool = isa::InstructionPool::armV8();
    // Two integer ALUs bound ADD throughput at 2/cycle even on the
    // 3-wide A72.
    CoreModel a72(cortexA72Params());
    const auto run =
        a72.runLoop(pool, independentAdds(pool, 16), 1.2e9, 4e-6);
    EXPECT_NEAR(run.stats.ipc, 2.0, 0.1);

    CoreModel a53(cortexA53Params());
    const auto run53 =
        a53.runLoop(pool, independentAdds(pool, 16), 950e6, 4e-6);
    EXPECT_NEAR(run53.stats.ipc, 2.0, 0.1);
}

TEST(CoreModel, ChainedAddsSerializeToIpcOne)
{
    const auto pool = isa::InstructionPool::armV8();
    CoreModel a72(cortexA72Params());
    const auto run =
        a72.runLoop(pool, chainedAdds(pool, 16), 1.2e9, 4e-6);
    EXPECT_NEAR(run.stats.ipc, 1.0, 0.05);
}

TEST(CoreModel, ChainedDivsGiveLatencyLimitedIpc)
{
    const auto pool = isa::InstructionPool::armV8();
    const unsigned lat = pool.def(pool.defIndex("SDIV")).latency;
    CoreModel a72(cortexA72Params());
    const auto run =
        a72.runLoop(pool, chainedDivs(pool, 8), 1.2e9, 4e-6);
    EXPECT_NEAR(run.stats.ipc, 1.0 / static_cast<double>(lat), 0.01);
}

TEST(CoreModel, OutOfOrderBeatsInOrderOnMixedCode)
{
    // Mutually independent long-latency FSQRTs, each followed by
    // dependent FADDs: the in-order core stalls the consumers at the
    // head of the pipe while the OoO core overlaps FSQRTs from
    // adjacent iterations.
    const auto pool = isa::InstructionPool::armV8();
    std::vector<isa::Instruction> code;
    isa::Instruction q;
    q.def_index = pool.defIndex("FSQRT");
    q.dest = 1;
    q.src = {2, -1}; // f2 is never written: FSQRTs independent
    code.push_back(q);
    for (int j = 0; j < 12; ++j) {
        isa::Instruction f;
        f.def_index = pool.defIndex("FADD");
        f.dest = 3;
        f.src = {1, 1}; // consumers of the FSQRT result
        code.push_back(f);
    }
    isa::Kernel kernel(std::move(code));

    auto ooo_params = cortexA72Params();
    auto ino_params = cortexA72Params();
    ino_params.out_of_order = false;
    CoreModel ooo(ooo_params);
    CoreModel ino(ino_params);
    const double ipc_ooo =
        ooo.runLoop(pool, kernel, 1.2e9, 4e-6).stats.ipc;
    const double ipc_ino =
        ino.runLoop(pool, kernel, 1.2e9, 4e-6).stats.ipc;
    EXPECT_GT(ipc_ooo, ipc_ino * 1.3);
}

TEST(CoreModel, LoopFrequencyMatchesCycleCount)
{
    // 8 independent ADDs at 2/cycle + serializing MUL(lat 4):
    // period 8 cycles -> loop frequency f_clk / 8.
    const auto pool = isa::InstructionPool::armV8();
    std::vector<isa::Instruction> code;
    isa::Instruction m;
    m.def_index = pool.defIndex("MUL");
    m.dest = 1;
    m.src = {2, 2};
    code.push_back(m);
    for (int i = 0; i < 8; ++i) {
        isa::Instruction a;
        a.def_index = pool.defIndex("ADD");
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    isa::Kernel kernel(std::move(code));
    CoreModel a72(cortexA72Params());
    const auto run = a72.runLoop(pool, kernel, 1.2e9, 4e-6);
    EXPECT_NEAR(run.stats.loop_freq_hz, 1.2e9 / 8.0, 1.2e9 / 8.0 * 0.02);
}

TEST(CoreModel, LoopFrequencyScalesWithClock)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernel = independentAdds(pool, 16);
    CoreModel a72(cortexA72Params());
    const double f1 =
        a72.runLoop(pool, kernel, 1.2e9, 4e-6).stats.loop_freq_hz;
    const double f2 =
        a72.runLoop(pool, kernel, 0.6e9, 8e-6).stats.loop_freq_hz;
    EXPECT_NEAR(f1 / f2, 2.0, 0.05);
}

TEST(CoreModel, CurrentTraceDtMatchesClock)
{
    const auto pool = isa::InstructionPool::armV8();
    CoreModel a72(cortexA72Params());
    const auto run =
        a72.runLoop(pool, independentAdds(pool, 8), 1.0e9, 2e-6);
    EXPECT_DOUBLE_EQ(run.current.dt(), 1e-9);
    EXPECT_GE(run.current.size(), 1900u);
}

TEST(CoreModel, BusyCodeDrawsMoreCurrentThanStallingCode)
{
    const auto pool = isa::InstructionPool::armV8();
    CoreModel a72(cortexA72Params());
    const auto busy =
        a72.runLoop(pool, independentAdds(pool, 16), 1.2e9, 4e-6);
    const auto stall =
        a72.runLoop(pool, chainedDivs(pool, 8), 1.2e9, 4e-6);
    EXPECT_GT(stats::mean(busy.current.samples()),
              2.0 * stats::mean(stall.current.samples()));
}

TEST(CoreModel, CurrentNeverBelowIdleFloor)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto params = cortexA72Params();
    CoreModel a72(params);
    const auto run =
        a72.runLoop(pool, chainedDivs(pool, 4), 1.2e9, 2e-6);
    EXPECT_GE(stats::minimum(run.current.samples()),
              params.idle_current - 1e-12);
}

TEST(CoreModel, TwoPhaseKernelProducesPeriodicCurrentSwings)
{
    // The virus mechanism: alternating high/low current phases must
    // show up as a large swing in the per-cycle current trace. A
    // self-chained FSQRT stalls the FP pipe (low phase); the burst of
    // dependent FADDs afterwards is the high phase.
    const auto pool = isa::InstructionPool::armV8();
    std::vector<isa::Instruction> code;
    isa::Instruction q;
    q.def_index = pool.defIndex("FSQRT");
    q.dest = 1;
    q.src = {1, -1};
    code.push_back(q);
    for (int i = 0; i < 16; ++i) {
        isa::Instruction a;
        a.def_index = pool.defIndex("FADD");
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    isa::Kernel kernel(std::move(code));
    CoreModel a72(cortexA72Params());
    const auto run = a72.runLoop(pool, kernel, 1.2e9, 4e-6);
    const double swing = stats::peakToPeak(run.current.samples());
    const double mean = stats::mean(run.current.samples());
    EXPECT_GT(swing, 0.5 * mean);
}

TEST(CoreModel, RunStreamExecutesAllInstructions)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(3);
    std::vector<isa::Instruction> stream;
    for (int i = 0; i < 2000; ++i)
        stream.push_back(pool.randomInstruction(rng));
    CoreModel a53(cortexA53Params());
    const auto run = a53.runStream(pool, stream, 950e6);
    EXPECT_EQ(run.stats.instructions, 2000u);
    EXPECT_GT(run.stats.ipc, 0.05);
    EXPECT_LE(run.stats.ipc, 2.0 + 1e-9);
}

TEST(CoreModel, ValidatesInput)
{
    const auto pool = isa::InstructionPool::armV8();
    CoreModel a72(cortexA72Params());
    isa::Kernel empty;
    EXPECT_THROW((void)a72.runLoop(pool, empty, 1.2e9, 1e-6),
                 ConfigError);
    EXPECT_THROW((void)a72.runLoop(pool, independentAdds(pool, 4),
                                   -1.0, 1e-6),
                 ConfigError);
    EXPECT_THROW(
        (void)a72.runStream(pool, std::vector<isa::Instruction>{},
                            1e9),
        ConfigError);

    auto bad = cortexA72Params();
    bad.issue_width = 0;
    EXPECT_THROW(CoreModel m(bad), ConfigError);
}

TEST(CoreModel, DeterministicAcrossRuns)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(4);
    const auto kernel = isa::Kernel::random(pool, 50, rng);
    CoreModel a72(cortexA72Params());
    const auto r1 = a72.runLoop(pool, kernel, 1.2e9, 2e-6);
    const auto r2 = a72.runLoop(pool, kernel, 1.2e9, 2e-6);
    ASSERT_EQ(r1.current.size(), r2.current.size());
    for (std::size_t i = 0; i < r1.current.size(); ++i)
        EXPECT_DOUBLE_EQ(r1.current[i], r2.current[i]);
    EXPECT_DOUBLE_EQ(r1.stats.ipc, r2.stats.ipc);
}

class FuKindMapping
    : public ::testing::TestWithParam<std::pair<isa::InstrClass, FuKind>>
{};

TEST_P(FuKindMapping, ClassMapsToExpectedUnit)
{
    EXPECT_EQ(fuKindForClass(GetParam().first), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, FuKindMapping,
    ::testing::Values(
        std::make_pair(isa::InstrClass::IntShort, FuKind::IntAlu),
        std::make_pair(isa::InstrClass::IntLong, FuKind::IntMul),
        std::make_pair(isa::InstrClass::FpShort, FuKind::Fp),
        std::make_pair(isa::InstrClass::FpLong, FuKind::Fp),
        std::make_pair(isa::InstrClass::SimdShort, FuKind::Simd),
        std::make_pair(isa::InstrClass::SimdLong, FuKind::Simd),
        std::make_pair(isa::InstrClass::Load, FuKind::Mem),
        std::make_pair(isa::InstrClass::Store, FuKind::Mem),
        std::make_pair(isa::InstrClass::IntShortMem, FuKind::Mem),
        std::make_pair(isa::InstrClass::IntLongMem, FuKind::Mem),
        std::make_pair(isa::InstrClass::Branch, FuKind::BranchU)));

TEST(CoreParams, FactoryConfigsAreConsistent)
{
    for (const auto &p :
         {cortexA72Params(), cortexA53Params(), athlonX4Params()}) {
        EXPECT_GE(p.issue_width, 1u);
        EXPECT_GE(p.window_size, p.issue_width);
        EXPECT_GT(p.idle_current, 0.0);
        EXPECT_GT(p.v_ref, 0.0);
        for (int k = 0; k < 6; ++k)
            EXPECT_GE(p.fuCount(static_cast<FuKind>(k)), 1u);
    }
    EXPECT_FALSE(cortexA53Params().out_of_order);
    EXPECT_TRUE(cortexA72Params().out_of_order);
    EXPECT_TRUE(athlonX4Params().out_of_order);
    // The 45 nm desktop core burns far more energy per op.
    EXPECT_GT(athlonX4Params().energy_scale,
              2.0 * cortexA72Params().energy_scale);
}

} // namespace
} // namespace uarch
} // namespace emstress
