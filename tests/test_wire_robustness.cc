/**
 * @file
 * Wire-protocol robustness and streaming-recovery tests: the frame
 * reader against truncation, zero/oversize lengths and unknown type
 * bytes (every malformed input must surface as ProtocolError, never
 * UB or a silent misparse); the resume codec pair; and the socket
 * transport's crash-tolerance contract — a stream that loses its
 * connection (or its whole daemon) resumes or re-submits and still
 * delivers every generation exactly once, with the final result
 * bit-identical to a direct run.
 */

#include <atomic>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "ga/ga_engine.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "service/transport_socket.h"
#include "service/wire.h"
#include "util/error.h"

namespace emstress {
namespace service {
namespace {

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

// ---------------------------------------------------------------
// Message-type validation (regression: a garbage type byte used to
// be cast straight into MsgType and fall through dispatch switches).
// ---------------------------------------------------------------

TEST(WireRobustness, MsgTypeFromWireAcceptsEveryKnownByte)
{
    const std::vector<MsgType> known = {
        MsgType::kPing,      MsgType::kSubmit,
        MsgType::kCancel,    MsgType::kMetrics,
        MsgType::kShutdown,  MsgType::kResume,
        MsgType::kPong,      MsgType::kAccepted,
        MsgType::kProgress,  MsgType::kCompleted,
        MsgType::kCancelled, MsgType::kFailed,
        MsgType::kAck,       MsgType::kMetricsReply,
        MsgType::kResumed,   MsgType::kError,
    };
    for (const MsgType type : known)
        EXPECT_EQ(msgTypeFromWire(static_cast<std::uint8_t>(type)),
                  type);
}

TEST(WireRobustness, MsgTypeFromWireRejectsUnknownBytes)
{
    const std::uint8_t bad[] = {0x00, 0x07, 0x42, 0x80, 0x8a, 0xfe};
    for (const std::uint8_t raw : bad)
        EXPECT_THROW((void)msgTypeFromWire(raw), ProtocolError)
            << "byte 0x" << std::hex << static_cast<int>(raw);
}

// ---------------------------------------------------------------
// Frame reader over a real socket pair.
// ---------------------------------------------------------------

/** Connected AF_UNIX pair; both ends closed on destruction. */
struct SocketPair
{
    int fds[2] = {-1, -1};

    SocketPair()
    {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    }

    ~SocketPair()
    {
        closeWriter();
        if (fds[1] >= 0)
            ::close(fds[1]);
    }

    void
    closeWriter()
    {
        if (fds[0] >= 0) {
            ::close(fds[0]);
            fds[0] = -1;
        }
    }

    void
    sendRaw(const std::vector<std::uint8_t> &bytes)
    {
        ASSERT_EQ(::send(fds[0], bytes.data(), bytes.size(),
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }
};

/** Little-endian frame header for a claimed payload length. */
std::vector<std::uint8_t>
header(std::uint32_t len)
{
    std::vector<std::uint8_t> h(4);
    for (int i = 0; i < 4; ++i)
        h[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(len >> (8 * i));
    return h;
}

TEST(WireRobustness, FrameRoundTripsOverSocket)
{
    SocketPair pair;
    WireWriter body;
    body.u64(0x1234abcd);
    body.str("hello");
    writeFrame(pair.fds[0], MsgType::kAccepted, body);

    Frame frame;
    ASSERT_TRUE(readFrame(pair.fds[1], frame));
    EXPECT_EQ(frame.type, MsgType::kAccepted);
    WireReader r(frame.body);
    EXPECT_EQ(r.u64(), 0x1234abcdu);
    EXPECT_EQ(r.str(), "hello");
    r.expectEnd();
}

TEST(WireRobustness, OrderlyEofBeforeAFrameIsNotAnError)
{
    SocketPair pair;
    pair.closeWriter();
    Frame frame;
    EXPECT_FALSE(readFrame(pair.fds[1], frame));
}

TEST(WireRobustness, TruncationMidHeaderThrows)
{
    SocketPair pair;
    pair.sendRaw({0x05, 0x00}); // 2 of 4 header bytes
    pair.closeWriter();
    Frame frame;
    EXPECT_THROW(readFrame(pair.fds[1], frame), SimulationError);
}

TEST(WireRobustness, TruncationMidPayloadThrows)
{
    SocketPair pair;
    pair.sendRaw(header(10));
    pair.sendRaw({static_cast<std::uint8_t>(MsgType::kPing), 1, 2});
    pair.closeWriter();
    Frame frame;
    EXPECT_THROW(readFrame(pair.fds[1], frame), SimulationError);
}

TEST(WireRobustness, ZeroLengthFrameRejected)
{
    SocketPair pair;
    pair.sendRaw(header(0));
    Frame frame;
    EXPECT_THROW(readFrame(pair.fds[1], frame), ProtocolError);
}

TEST(WireRobustness, OversizeFrameRejectedBeforeAllocation)
{
    SocketPair pair;
    pair.sendRaw(header(kMaxFrameBytes + 1));
    Frame frame;
    EXPECT_THROW(readFrame(pair.fds[1], frame), ProtocolError);
}

TEST(WireRobustness, GarbageTypeByteRejected)
{
    // The regression this PR fixes: a one-byte frame whose type is
    // not in the message set must throw at the validation funnel,
    // not flow into dispatch as an out-of-enum MsgType.
    SocketPair pair;
    pair.sendRaw(header(1));
    pair.sendRaw({0x42});
    Frame frame;
    EXPECT_THROW(readFrame(pair.fds[1], frame), ProtocolError);
}

// ---------------------------------------------------------------
// Resume codec pair.
// ---------------------------------------------------------------

TEST(WireRobustness, ResumeRequestRoundTripsAndRejectsTruncation)
{
    ResumeRequest req;
    req.token = 0xfeedfacecafebeef;
    req.last_acked_generation = 41;
    WireWriter w;
    encodeResumeRequest(w, req);
    WireReader r(w.bytes());
    const ResumeRequest back = decodeResumeRequest(r);
    r.expectEnd();
    EXPECT_EQ(back.token, req.token);
    EXPECT_EQ(back.last_acked_generation, req.last_acked_generation);

    for (std::size_t cut = 0; cut < w.bytes().size(); cut += 3) {
        WireReader t(w.bytes().data(), cut);
        EXPECT_THROW((void)decodeResumeRequest(t), ProtocolError)
            << "cut=" << cut;
    }
}

TEST(WireRobustness, ResumeReplyRoundTripsAndRejectsTruncation)
{
    ResumeReply reply;
    reply.id = 712;
    reply.platform = PlatformPreset::kAthlon;
    reply.generations_done = 99;
    WireWriter w;
    encodeResumeReply(w, reply);
    WireReader r(w.bytes());
    const ResumeReply back = decodeResumeReply(r);
    r.expectEnd();
    EXPECT_EQ(back.id, reply.id);
    EXPECT_EQ(back.platform, reply.platform);
    EXPECT_EQ(back.generations_done, reply.generations_done);

    for (std::size_t cut = 0; cut < w.bytes().size(); cut += 3) {
        WireReader t(w.bytes().data(), cut);
        EXPECT_THROW((void)decodeResumeReply(t), ProtocolError)
            << "cut=" << cut;
    }
}

// ---------------------------------------------------------------
// Streaming reconnect/resume over real sockets.
// ---------------------------------------------------------------

/** Synthetic evaluator (mirrors test_service.cc): cheap, pure,
 *  cloneable, so socket tests finish in milliseconds per job. */
class SyntheticFitness : public ga::FitnessEvaluator
{
  public:
    explicit SyntheticFitness(const isa::InstructionPool &pool)
        : pool_(pool)
    {}

    double
    evaluate(const isa::Kernel &kernel,
             ga::EvalDetail *detail) override
    {
        const double mix =
            kernel.classFraction(pool_, isa::InstrClass::SimdShort)
            + kernel.classFraction(pool_, isa::InstrClass::SimdLong);
        const double ripple =
            static_cast<double>(kernel.hash() % 1024) / 4096.0;
        if (detail) {
            detail->metric_raw = mix + ripple;
            detail->measurement_seconds = 1.0;
            detail->dominant_freq_hz = 1e8 * (1.0 + ripple);
        }
        return mix + ripple;
    }

    std::string metricName() const override { return "synthetic"; }

    std::unique_ptr<ga::FitnessEvaluator>
    clone() const override
    {
        return std::make_unique<SyntheticFitness>(pool_);
    }

  private:
    const isa::InstructionPool &pool_;
};

std::unique_ptr<ga::FitnessEvaluator>
syntheticFactory(const JobSpec &spec)
{
    return std::make_unique<SyntheticFitness>(
        presetPool(spec.platform));
}

JobSpec
streamSpec(std::uint64_t seed, std::size_t generations)
{
    JobSpec spec;
    spec.ga.population = 10;
    spec.ga.generations = generations;
    spec.ga.kernel_length = 12;
    spec.ga.elite = 2;
    spec.ga.seed = seed;
    return spec;
}

ga::GaResult
directRun(const JobSpec &spec)
{
    auto evaluator = syntheticFactory(spec);
    ga::GaEngine engine(presetPool(spec.platform), spec.ga);
    return engine.run(*evaluator);
}

void
expectBitIdentical(const ga::GaResult &a, const ga::GaResult &b,
                   const isa::InstructionPool &pool)
{
    EXPECT_EQ(bits(a.best_fitness), bits(b.best_fitness));
    EXPECT_EQ(a.best.serialize(pool), b.best.serialize(pool));
    EXPECT_EQ(bits(a.estimated_lab_seconds),
              bits(b.estimated_lab_seconds));
    EXPECT_EQ(a.eval_stats.evals, b.eval_stats.evals);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(bits(a.history[i].best_fitness),
                  bits(b.history[i].best_fitness));
        EXPECT_EQ(a.history[i].best.serialize(pool),
                  b.history[i].best.serialize(pool));
    }
}

/** A running daemon: service + socket server + accept thread. */
struct Daemon
{
    std::unique_ptr<SearchService> service;
    std::unique_ptr<SocketServer> server;
    std::thread accept_thread;

    explicit Daemon(const ServiceConfig &config)
        : service(std::make_unique<SearchService>(config))
    {
        server = std::make_unique<SocketServer>(
            *service, SocketServer::Options{});
        accept_thread =
            std::thread([this] { server->serve(); });
    }

    ~Daemon() { stop(); }

    std::uint16_t port() const { return server->port(); }

    void
    stop()
    {
        if (server)
            server->requestStop();
        if (accept_thread.joinable())
            accept_thread.join();
        server.reset();
        service.reset();
    }
};

ServiceConfig
daemonConfig(std::size_t fleet_threads,
             const std::string &spill_dir = "")
{
    ServiceConfig config;
    config.fleet_threads = fleet_threads;
    config.runners = 2;
    config.evaluator_factory = &syntheticFactory;
    config.artifacts.spill_dir = spill_dir;
    return config;
}

RetryPolicy
fastRetry()
{
    RetryPolicy retry;
    retry.max_attempts = 20;
    retry.backoff_s = 0.05;
    retry.backoff_factor = 1.3;
    retry.backoff_cap_s = 0.25;
    return retry;
}

/**
 * Drive one crash-tolerant stream to completion, severing the
 * connection after `drop_after` progress events. Asserts each
 * generation arrives exactly once and returns the final result.
 */
std::shared_ptr<const JobResult>
streamWithDrop(ReconnectingClient &client, const JobSpec &spec,
               std::size_t drop_after)
{
    const Submission sub = client.submit(spec);
    EXPECT_TRUE(sub.accepted);

    std::set<std::size_t> seen;
    std::shared_ptr<const JobResult> result;
    for (;;) {
        const JobEvent ev = client.nextEvent();
        if (ev.type == JobEventType::kProgress) {
            EXPECT_TRUE(
                seen.insert(ev.progress.generations_done).second)
                << "generation "
                << ev.progress.generations_done
                << " delivered twice";
            if (seen.size() == drop_after)
                client.dropConnection();
            continue;
        }
        EXPECT_EQ(ev.type, JobEventType::kCompleted);
        result = ev.result;
        break;
    }
    EXPECT_EQ(seen.size(), spec.ga.generations);
    return result;
}

TEST(StreamingResume, DroppedConnectionResumesBitIdentical)
{
    // The ISSUE acceptance criterion: resumed streams at fleet
    // widths 1, 2 and 8 deliver every generation exactly once and a
    // final result bit-identical to a direct run.
    const JobSpec spec = streamSpec(501, 30);
    const ga::GaResult direct = directRun(spec);

    for (const std::size_t fleet : {1u, 2u, 8u}) {
        Daemon daemon(daemonConfig(fleet));
        ReconnectingClient::Options options;
        options.port = daemon.port();
        options.resume_token = 0xab00 + fleet;
        options.retry = fastRetry();
        ReconnectingClient client(std::move(options));

        const auto result = streamWithDrop(client, spec, 2);
        ASSERT_NE(result, nullptr) << "fleet=" << fleet;
        expectBitIdentical(result->ga, direct,
                           presetPool(spec.platform));
        EXPECT_GE(client.resumes(), 1u) << "fleet=" << fleet;
        EXPECT_EQ(client.resubmits(), 0u) << "fleet=" << fleet;
    }
}

TEST(StreamingResume, DaemonRestartFallsBackToResubmit)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir())
                         / "emstress_restart_stream";
    fs::remove_all(dir);

    const JobSpec spec = streamSpec(611, 12);
    const ga::GaResult direct = directRun(spec);
    std::atomic<std::uint16_t> port{0};

    auto daemon = std::make_unique<Daemon>(
        daemonConfig(2, dir.string()));
    port.store(daemon->port());

    ReconnectingClient::Options options;
    options.resume_token = 0x77;
    options.retry = fastRetry();
    options.port_provider = [&port] { return port.load(); };
    ReconnectingClient client(std::move(options));
    const Submission sub = client.submit(spec);
    ASSERT_TRUE(sub.accepted);

    // Take a couple of progress events, then kill the daemon whole —
    // in-memory streams, token registry, scheduler, everything.
    std::size_t last_gen = 0;
    while (last_gen < 2) {
        const JobEvent ev = client.nextEvent();
        ASSERT_EQ(ev.type, JobEventType::kProgress);
        last_gen = ev.progress.generations_done;
    }
    daemon->stop();

    // Restart on a fresh port over the same spill directory.
    daemon = std::make_unique<Daemon>(daemonConfig(2, dir.string()));
    port.store(daemon->port());

    // The next read enters the recovery ladder: reconnect, kResume
    // rejected (token died with the old daemon), re-submit under the
    // same token. Progress never regresses or repeats, and the final
    // bits match the direct run regardless of whether the restarted
    // daemon re-ran the search or served the spilled artifact.
    std::shared_ptr<const JobResult> result;
    for (;;) {
        const JobEvent ev = client.nextEvent();
        if (ev.type == JobEventType::kProgress) {
            EXPECT_GT(ev.progress.generations_done, last_gen);
            last_gen = ev.progress.generations_done;
            continue;
        }
        ASSERT_EQ(ev.type, JobEventType::kCompleted);
        result = ev.result;
        break;
    }
    ASSERT_NE(result, nullptr);
    expectBitIdentical(result->ga, direct,
                       presetPool(spec.platform));
    EXPECT_EQ(client.resubmits(), 1u);

    daemon->stop();
    fs::remove_all(dir);
}

TEST(StreamingResume, RestartServesSpilledArtifactsOverSocket)
{
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(::testing::TempDir())
                         / "emstress_restart_disk";
    fs::remove_all(dir);

    const JobSpec spec = streamSpec(701, 8);
    const ga::GaResult direct = directRun(spec);

    // First daemon lifetime: run the job to completion so the
    // artifact spills.
    {
        Daemon daemon(daemonConfig(2, dir.string()));
        SocketClient client("127.0.0.1", daemon.port());
        const Submission sub = client.submit(spec);
        ASSERT_TRUE(sub.accepted);
        for (;;) {
            const JobEvent ev = client.nextEvent(sub.id);
            if (ev.type == JobEventType::kCompleted) {
                EXPECT_FALSE(ev.result->from_artifact_store);
                break;
            }
            ASSERT_EQ(ev.type, JobEventType::kProgress);
        }
        EXPECT_GE(daemon.service->artifacts().stats().spill_writes,
                  1u);
    }

    // Second lifetime: the same spec over a fresh socket completes
    // from the disk tier — no search, bit-identical payload, and the
    // disk-hit counter proves where the bytes came from.
    {
        Daemon daemon(daemonConfig(2, dir.string()));
        EXPECT_GE(daemon.service->artifacts().stats().spill_indexed,
                  1u);
        SocketClient client("127.0.0.1", daemon.port());
        const Submission sub = client.submit(spec);
        ASSERT_TRUE(sub.accepted);
        for (;;) {
            const JobEvent ev = client.nextEvent(sub.id);
            if (ev.type == JobEventType::kCompleted) {
                EXPECT_TRUE(ev.result->from_artifact_store);
                expectBitIdentical(ev.result->ga, direct,
                                   presetPool(spec.platform));
                break;
            }
            ASSERT_EQ(ev.type, JobEventType::kProgress);
        }
        EXPECT_GE(daemon.service->artifacts().stats().disk_hits, 1u);
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace service
} // namespace emstress
