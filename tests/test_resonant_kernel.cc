/**
 * @file
 * Tests for the deterministic resonant-kernel builder and kernel
 * serialization.
 */

#include <gtest/gtest.h>

#include "core/resonant_kernel.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "platform/platform.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace emstress {
namespace core {
namespace {

TEST(ResonantKernel, RealizesRequestedPeriodOnA72)
{
    platform::Platform a72(platform::junoA72Config(), 1);
    for (double target : {50e6, 67e6, 100e6, 150e6}) {
        const auto kernel = makeResonantKernelFor(
            a72.pool(), a72.frequency(), target);
        const auto run = a72.runKernel(kernel, 2e-6);
        EXPECT_NEAR(run.stats.loop_freq_hz, target, 0.06 * target)
            << "target " << target;
    }
}

TEST(ResonantKernel, RealizesRequestedPeriodOnAmd)
{
    platform::Platform amd(platform::athlonConfig(), 1);
    const std::size_t adds_per_cycle = 3; // three integer ALUs
    for (double target : {60e6, 78e6, 120e6}) {
        const auto kernel = makeResonantKernelFor(
            amd.pool(), amd.frequency(), target, adds_per_cycle);
        const auto run = amd.runKernel(kernel, 2e-6);
        EXPECT_NEAR(run.stats.loop_freq_hz, target, 0.09 * target)
            << "target " << target;
    }
}

TEST(ResonantKernel, TwoPhaseStructure)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernel = makeResonantKernel(pool, 18, 9);
    // Multiplies first, adds after.
    std::size_t muls = 0, adds = 0;
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        const auto &d = pool.def(kernel[i].def_index);
        if (d.cls == isa::InstrClass::IntLong) {
            ++muls;
            EXPECT_EQ(adds, 0u) << "mul after adds at " << i;
        } else {
            ++adds;
        }
    }
    EXPECT_GE(muls, 1u);
    EXPECT_GE(adds, 2u);
}

TEST(ResonantKernel, ValidatesArguments)
{
    const auto pool = isa::InstructionPool::armV8();
    EXPECT_THROW((void)makeResonantKernel(pool, 4, 4), ConfigError);
    EXPECT_THROW((void)makeResonantKernel(pool, 10, 5, 0),
                 ConfigError);
    EXPECT_THROW((void)makeResonantKernelFor(pool, 1.2e9, 1.1e9),
                 ConfigError);
    EXPECT_THROW((void)makeResonantKernelFor(pool, 0.0, 67e6),
                 ConfigError);
    // Period too short for even one multiply + adds.
    EXPECT_THROW((void)makeResonantKernel(pool, 4, 1), ConfigError);
}

TEST(KernelSerialization, RoundTripsRandomKernels)
{
    const auto pool = isa::InstructionPool::armV8();
    Rng rng(13);
    for (int trial = 0; trial < 10; ++trial) {
        const auto kernel = isa::Kernel::random(pool, 50, rng);
        const auto text = kernel.serialize(pool);
        const auto restored = isa::Kernel::deserialize(pool, text);
        EXPECT_TRUE(kernel == restored);
    }
}

TEST(KernelSerialization, RoundTripsX86)
{
    const auto pool = isa::InstructionPool::x86Sse2();
    Rng rng(14);
    const auto kernel = isa::Kernel::random(pool, 30, rng);
    EXPECT_TRUE(kernel
                == isa::Kernel::deserialize(pool,
                                            kernel.serialize(pool)));
}

TEST(KernelSerialization, RejectsGarbage)
{
    const auto pool = isa::InstructionPool::armV8();
    EXPECT_THROW(
        (void)isa::Kernel::deserialize(pool, "FROB 0 1 2 -1\n"),
        ConfigError);
    EXPECT_THROW((void)isa::Kernel::deserialize(pool, "ADD 0 1\n"),
                 ConfigError);
    // Bad operands are caught by validation.
    EXPECT_THROW(
        (void)isa::Kernel::deserialize(pool, "ADD 99 1 2 -1\n"),
        ConfigError);
}

TEST(KernelSerialization, EmptyTextYieldsEmptyKernel)
{
    const auto pool = isa::InstructionPool::armV8();
    const auto kernel = isa::Kernel::deserialize(pool, "");
    EXPECT_TRUE(kernel.empty());
}

} // namespace
} // namespace core
} // namespace emstress
