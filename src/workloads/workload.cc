/**
 * @file
 * Workload profile definitions and stream generation.
 *
 * Profile parameters are chosen to reproduce the *orderings* the
 * paper reports, not absolute numbers: lbm is the noisiest SPEC
 * benchmark (strong phases); Prime95/AMD-stability draw near-maximal
 * steady power (high IR droop, weak resonant excitation); idle is
 * nearly silent; everything sits well below a tuned dI/dt virus.
 */

#include "workloads/workload.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace workloads {

WorkloadProfile
idleProfile()
{
    WorkloadProfile p;
    p.name = "idle";
    p.intensity = 0.03;
    p.phase_len = 50000;
    p.phase_depth = 0.02;
    p.mem_fraction = 0.02;
    p.fp_fraction = 0.0;
    p.dep_chain = 0.9;
    p.block_wobble = 0.01;
    p.seed_salt = 0x1d1e;
    return p;
}

std::vector<WorkloadProfile>
spec2006Suite()
{
    // name, intensity, phase_len, phase_depth, mem, fp, dep,
    // wobble, burst_every, burst_len, salt
    return {
        {"perlbench", 0.62, 6000, 0.18, 0.22, 0.02, 0.40, 0.05, 0, 0, 0x01},
        {"bzip2",     0.58, 9000, 0.15, 0.28, 0.01, 0.45, 0.04, 900, 25, 0x02},
        {"gcc",       0.55, 5000, 0.22, 0.30, 0.02, 0.42, 0.05, 1200, 30, 0x03},
        {"mcf",       0.38, 7000, 0.20, 0.45, 0.01, 0.60, 0.04, 350, 60, 0x04},
        {"milc",      0.60, 3500, 0.30, 0.30, 0.45, 0.35, 0.04, 700, 35, 0x05},
        {"namd",      0.66, 8000, 0.12, 0.18, 0.50, 0.35, 0.03, 0, 0, 0x06},
        {"gobmk",     0.57, 6500, 0.16, 0.24, 0.02, 0.45, 0.05, 0, 0, 0x07},
        {"soplex",    0.54, 4200, 0.24, 0.34, 0.30, 0.40, 0.04, 800, 30, 0x08},
        {"hmmer",     0.68, 9500, 0.10, 0.22, 0.05, 0.35, 0.03, 0, 0, 0x09},
        {"sjeng",     0.60, 7200, 0.14, 0.20, 0.01, 0.45, 0.04, 0, 0, 0x0a},
        {"libquantum",0.52, 2800, 0.34, 0.36, 0.08, 0.38, 0.04, 500, 45, 0x0b},
        {"h264ref",   0.66, 4800, 0.20, 0.26, 0.15, 0.36, 0.04, 0, 0, 0x0c},
        // lbm: the paper's highest-droop SPEC benchmark — heavy
        // streaming memory traffic: frequent deep DRAM bursts and the
        // strongest block-to-block power swings of the suite.
        {"lbm",       0.78, 3000, 0.40, 0.40, 0.42, 0.30, 0.08, 240, 60, 0x0d},
        {"omnetpp",   0.50, 5600, 0.19, 0.33, 0.02, 0.50, 0.04, 1000, 35, 0x0e},
        {"astar",     0.53, 6100, 0.17, 0.30, 0.03, 0.48, 0.04, 900, 40, 0x0f},
        {"xalancbmk", 0.56, 5200, 0.21, 0.31, 0.02, 0.44, 0.05, 1100, 30, 0x10},
    };
}

std::vector<WorkloadProfile>
desktopSuite()
{
    return {
        {"blender",    0.78, 5000, 0.18, 0.22, 0.50, 0.30, 0.025, 0, 0, 0x21},
        {"cinebench",  0.80, 6000, 0.15, 0.20, 0.55, 0.28, 0.02, 0, 0, 0x22},
        {"euler3d",    0.70, 3000, 0.28, 0.34, 0.48, 0.34, 0.04, 600, 40, 0x23},
        {"webxprt",    0.52, 4000, 0.24, 0.30, 0.08, 0.46, 0.05, 1000, 30, 0x24},
        {"geekbench",  0.65, 3500, 0.26, 0.26, 0.25, 0.38, 0.05, 800, 35, 0x25},
        // Stability tests: near-constant maximal power in one tight
        // loop for hours. Large IR droop but almost no modulation
        // near the resonance, so their V_MIN sits well below a tuned
        // virus (paper Section 7: Prime95 passes 24 h at 1.28 V
        // while the virus crashes the system at 1.3+ V).
        {"prime95",    0.93, 40000, 0.03, 0.10, 0.75, 0.12, 0.005, 0, 0, 0x26},
        {"amd_stab",   0.90, 30000, 0.04, 0.15, 0.55, 0.15, 0.008, 0, 0, 0x27},
    };
}

const WorkloadProfile &
findProfile(const std::vector<WorkloadProfile> &suite,
            const std::string &name)
{
    for (const auto &p : suite)
        if (p.name == name)
            return p;
    throw ConfigError("no workload profile named " + name);
}

namespace {

/** Pick a definition index of a class, if the pool has one. */
int
defOfClass(const isa::InstructionPool &pool, isa::InstrClass cls,
           Rng &rng)
{
    std::vector<std::size_t> matches;
    for (std::size_t i = 0; i < pool.defs().size(); ++i)
        if (pool.defs()[i].cls == cls)
            matches.push_back(i);
    if (matches.empty())
        return -1;
    return static_cast<int>(matches[rng.index(matches.size())]);
}

/** Class menu for a "high current" slot. */
isa::InstrClass
highCurrentClass(const isa::InstructionPool &pool, double fp_frac,
                 Rng &rng)
{
    if (rng.chance(fp_frac)) {
        return rng.chance(0.5) ? isa::InstrClass::SimdShort
                               : isa::InstrClass::FpShort;
    }
    (void)pool;
    return isa::InstrClass::IntShort;
}

/** Class menu for a "low current" (stalling) slot. */
isa::InstrClass
lowCurrentClass(double fp_frac, Rng &rng)
{
    if (rng.chance(fp_frac))
        return rng.chance(0.5) ? isa::InstrClass::FpLong
                               : isa::InstrClass::SimdLong;
    return isa::InstrClass::IntLong;
}

/** Memory class available on this ISA. */
isa::InstrClass
memClass(const isa::InstructionPool &pool, Rng &rng)
{
    if (pool.isa() == isa::IsaFamily::ArmV8)
        return rng.chance(0.6) ? isa::InstrClass::Load
                               : isa::InstrClass::Store;
    return rng.chance(0.8) ? isa::InstrClass::IntShortMem
                           : isa::InstrClass::IntLongMem;
}

} // namespace

namespace {

/**
 * Build one short "basic block" pattern realizing an activity level.
 * Real programs execute loops: the same instruction mix repeats for
 * many iterations, so current is *correlated* over blocks rather than
 * varying per instruction. Emitting repeated patterns keeps the
 * high-frequency current variance low — which is why ordinary
 * benchmarks excite the PDN resonance far less than a tuned virus.
 */
std::vector<isa::Instruction>
makePattern(const WorkloadProfile &profile,
            const isa::InstructionPool &pool, double activity,
            Rng &rng)
{
    const std::size_t len =
        static_cast<std::size_t>(rng.uniformInt(8, 16));
    std::vector<isa::Instruction> pattern;
    pattern.reserve(len);
    int prev_dest = -1;
    isa::RegFile prev_file = isa::RegFile::Int;

    // Sharpen the activity level: real loop bodies are homogeneous
    // (a hot FP loop is nearly all FP ops, a stalling loop nearly all
    // stalls), so push the per-slot probability toward 0/1 instead of
    // drawing a 50/50-ish mixture that would look like a dI/dt virus.
    const double sharp =
        std::min(1.0, std::max(0.0, 1.6 * (activity - 0.5) + 0.5));

    for (std::size_t i = 0; i < len; ++i) {
        isa::InstrClass cls;
        if (rng.chance(profile.mem_fraction)) {
            cls = memClass(pool, rng);
        } else if (rng.chance(sharp)) {
            cls = highCurrentClass(pool, profile.fp_fraction, rng);
        } else {
            cls = lowCurrentClass(profile.fp_fraction, rng);
        }
        int def = defOfClass(pool, cls, rng);
        if (def < 0) // class missing on this ISA; fall back
            def = defOfClass(pool, isa::InstrClass::IntShort, rng);
        requireSim(def >= 0, "pool lacks short integer instructions");

        isa::Instruction instr;
        instr.def_index = static_cast<std::size_t>(def);
        pool.randomizeOperands(instr, rng);

        const auto &d = pool.def(instr.def_index);
        if (prev_dest >= 0 && d.sources >= 1
            && d.reg_file == prev_file
            && rng.chance(profile.dep_chain)) {
            instr.src[0] = prev_dest;
        }
        if (d.has_dest) {
            prev_dest = instr.dest;
            prev_file = d.reg_file;
        }
        pattern.push_back(instr);
    }
    return pattern;
}

/**
 * A serialized low-current stall burst: a chain of long-latency ops
 * each depending on the previous — the current signature of a
 * cluster of memory stalls.
 */
std::vector<isa::Instruction>
makeBurst(const isa::InstructionPool &pool, std::size_t len, Rng &rng)
{
    std::vector<isa::Instruction> burst;
    burst.reserve(len);
    int def = defOfClass(pool, isa::InstrClass::IntLong, rng);
    requireSim(def >= 0, "pool lacks long integer instructions");
    for (std::size_t i = 0; i < len; ++i) {
        isa::Instruction instr;
        instr.def_index = static_cast<std::size_t>(def);
        pool.randomizeOperands(instr, rng);
        instr.src[0] = 0;
        instr.dest = 0; // self-chained: fully serialized
        burst.push_back(instr);
    }
    return burst;
}

} // namespace

std::vector<isa::Instruction>
generateStream(const WorkloadProfile &profile,
               const isa::InstructionPool &pool, std::size_t length,
               Rng rng)
{
    requireConfig(length > 0, "stream length must be positive");
    requireConfig(profile.intensity >= 0.0 && profile.intensity <= 1.0,
                  profile.name + ": intensity outside [0,1]");
    requireConfig(profile.phase_len > 0,
                  profile.name + ": phase_len must be positive");

    // Salt the stream per profile for reproducible distinctness.
    Rng stream_rng(rng.engine()() ^ profile.seed_salt);

    std::vector<isa::Instruction> out;
    out.reserve(length);
    std::size_t since_burst = 0;

    while (out.size() < length) {
        const std::size_t i = out.size();

        // Stall burst due?
        if (profile.burst_every > 0
            && since_burst >= profile.burst_every) {
            const auto burst =
                makeBurst(pool, profile.burst_len, stream_rng);
            for (const auto &instr : burst) {
                if (out.size() >= length)
                    break;
                out.push_back(instr);
            }
            since_burst = 0;
            continue;
        }

        // Slow program-phase modulation of the activity level, plus
        // a per-block wobble.
        const double phase = std::sin(
            kTwoPi * static_cast<double>(i)
            / static_cast<double>(profile.phase_len));
        double activity = profile.intensity
                * (1.0 + profile.phase_depth * phase)
            + stream_rng.gaussian(0.0, profile.block_wobble);
        activity = std::min(1.0, std::max(0.0, activity));

        // One loop: a pattern repeated for a block of instructions.
        // Blocks are long (hundreds of iterations of a hot loop), so
        // block-to-block activity changes sit well below the PDN's
        // 1st-order resonance band on every platform; shorter blocks
        // would put benchmark current wobble right on the resonance,
        // which real correlated program behaviour does not do.
        const auto pattern =
            makePattern(profile, pool, activity, stream_rng);
        const std::size_t block = static_cast<std::size_t>(
            stream_rng.uniformInt(240, 1200));
        for (std::size_t k = 0; k < block && out.size() < length;
             ++k) {
            out.push_back(pattern[k % pattern.size()]);
            ++since_burst;
            if (profile.burst_every > 0
                && since_burst >= profile.burst_every) {
                break;
            }
        }
    }
    return out;
}

} // namespace workloads
} // namespace emstress
