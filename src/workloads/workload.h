/**
 * @file
 * Synthetic benchmark workload models. The paper compares its viruses
 * against SPEC2006 (on ARM) and desktop/stability suites (on AMD);
 * since the real binaries and their inputs are unavailable here, each
 * benchmark is modeled as a parameterized instruction-stream
 * generator whose knobs (activity level, program-phase behaviour,
 * memory/FP mix, serialization) reproduce the current-modulation
 * character that determines its voltage noise and V_MIN.
 */

#ifndef EMSTRESS_WORKLOADS_WORKLOAD_H
#define EMSTRESS_WORKLOADS_WORKLOAD_H

#include <cstddef>
#include <string>
#include <vector>

#include "isa/instr.h"
#include "isa/pool.h"
#include "util/rng.h"

namespace emstress {
namespace workloads {

/**
 * Parameter set describing one benchmark's execution character.
 */
struct WorkloadProfile
{
    std::string name;
    /// Mean activity in [0,1]: probability a slot holds a
    /// high-current (short-latency) op rather than a stalling one.
    double intensity = 0.7;
    /// Period of slow program-phase alternation [instructions].
    std::size_t phase_len = 4000;
    /// Depth of the phase modulation in [0,1].
    double phase_depth = 0.3;
    /// Fraction of memory instructions.
    double mem_fraction = 0.15;
    /// Fraction of FP + SIMD instructions.
    double fp_fraction = 0.25;
    /// Probability an instruction depends on its predecessor.
    double dep_chain = 0.3;
    /// 1-sigma block-to-block activity wobble. Stability tests
    /// (Prime95-class) run the same tight loop for hours and are
    /// nearly wobble-free; irregular codes jump between loops with
    /// different power levels.
    double block_wobble = 0.05;
    /// Memory-stall bursts: one serialized low-current burst every
    /// this many instructions (0 = never). Models DRAM-access
    /// clusters; their edges are the broadband dI/dt excitation real
    /// memory-bound benchmarks produce.
    std::size_t burst_every = 0;
    /// Length of each stall burst in instructions.
    std::size_t burst_len = 0;
    /// Per-benchmark seed salt so streams differ reproducibly.
    std::uint64_t seed_salt = 0;
};

/** The idle "workload": an almost-empty stream of dependent NOPs. */
WorkloadProfile idleProfile();

/**
 * SPEC2006-like suite used in the ARM V_MIN figures. Includes "lbm"
 * with the strongest phase swings (the paper's highest-droop SPEC
 * benchmark) down to well-behaved, steady benchmarks.
 */
std::vector<WorkloadProfile> spec2006Suite();

/**
 * Desktop/stability suite used on the AMD platform (Fig. 18):
 * Blender-, Cinebench-, Euler3D-, WEBXPRT-, GeekBench-like apps plus
 * Prime95-like and AMD-stability-test-like stress loads (steady
 * near-maximal power, hence high droop but weak *resonant* noise).
 */
std::vector<WorkloadProfile> desktopSuite();

/** Look up a profile by name in a suite. @throws ConfigError. */
const WorkloadProfile &findProfile(
    const std::vector<WorkloadProfile> &suite, const std::string &name);

/**
 * Generate a concrete instruction stream realizing a profile.
 *
 * @param profile Benchmark character.
 * @param pool    Target pool (ARM or x86; class availability adapts).
 * @param length  Number of instructions.
 * @param rng     Seed stream (salted internally per profile).
 */
std::vector<isa::Instruction>
generateStream(const WorkloadProfile &profile,
               const isa::InstructionPool &pool, std::size_t length,
               Rng rng);

} // namespace workloads
} // namespace emstress

#endif // EMSTRESS_WORKLOADS_WORKLOAD_H
