/**
 * @file
 * Adaptive-clocking implementation.
 */

#include "mitigation/adaptive_clock.h"

#include <array>

#include "circuit/transient.h"
#include "util/error.h"
#include "util/stats.h"

namespace emstress {
namespace mitigation {

AdaptiveClock::AdaptiveClock(const pdn::PdnModel &pdn,
                             const AdaptiveClockParams &params)
    : pdn_(pdn), params_(params)
{
    requireConfig(params.threshold_below_nominal > 0.0,
                  "trip threshold must be below nominal");
    requireConfig(params.response_latency >= 0.0,
                  "response latency must be non-negative");
    requireConfig(params.throttle_ratio > 0.0
                      && params.throttle_ratio <= 1.0,
                  "throttle ratio outside (0, 1]");
    requireConfig(params.hold_time >= 0.0,
                  "hold time must be non-negative");
}

MitigatedRunResult
AdaptiveClock::run(const Trace &i_load) const
{
    return simulate(i_load, true);
}

MitigatedRunResult
AdaptiveClock::runUnmitigated(const Trace &i_load) const
{
    return simulate(i_load, false);
}

MitigatedRunResult
AdaptiveClock::simulate(const Trace &i_load, bool mitigate) const
{
    requireConfig(!i_load.empty(), "mitigation run needs a load");
    const double dt = i_load.dt();
    const double v_nom = pdn_.params().v_nom;
    const double v_trip = v_nom - params_.threshold_below_nominal;
    const auto latency_steps =
        static_cast<std::size_t>(params_.response_latency / dt);
    const auto hold_steps = static_cast<std::size_t>(
        params_.hold_time / dt);

    // Closed-loop stepping over the PDN, biased at the mean load so
    // slow tanks start settled.
    circuit::TransientAnalysis engine(pdn_.netlist(), dt);
    double mean_load = stats::mean(i_load.samples());
    const std::array<double, 2> bias = {mean_load, 0.0};
    auto stepper = engine.makeStepper(bias);
    const std::size_t v_idx =
        engine.mna().stateIndexOfNode(pdn_.dieNode());

    MitigatedRunResult out{Trace(dt), Trace(dt)};
    out.v_die.reserve(i_load.size());
    out.throttle.reserve(i_load.size());

    bool throttled = false;
    std::size_t throttle_until = 0; ///< Step index to hold through.
    std::size_t pending_trip_at = 0; ///< Step at which the throttle
                                     ///< engages (post-latency).
    bool trip_pending = false;
    std::size_t throttled_steps = 0;

    for (std::size_t k = 0; k < i_load.size(); ++k) {
        // Engage a pending trip after the response latency.
        if (mitigate && trip_pending && k >= pending_trip_at) {
            throttled = true;
            trip_pending = false;
            throttle_until = k + hold_steps;
            ++out.trip_count;
        }
        // Release after the hold.
        if (throttled && k >= throttle_until)
            throttled = false;

        const double scale =
            throttled ? params_.throttle_ratio : 1.0;
        const std::array<double, 2> currents = {i_load[k] * scale,
                                                0.0};
        stepper.step(currents);
        const double v = stepper.value(v_idx);
        out.v_die.push(v);
        out.throttle.push(throttled ? 1.0 : 0.0);
        if (throttled)
            ++throttled_steps;

        // Detector: observe the current sample.
        if (mitigate && !throttled && !trip_pending && v < v_trip) {
            trip_pending = true;
            pending_trip_at = k + latency_steps;
        }
    }

    out.min_v_die = stats::minimum(out.v_die.samples());
    out.throttled_fraction = static_cast<double>(throttled_steps)
        / static_cast<double>(i_load.size());
    return out;
}

} // namespace mitigation
} // namespace emstress
