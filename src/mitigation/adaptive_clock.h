/**
 * @file
 * Adaptive-clocking voltage-droop mitigation model. Several of the
 * chips the paper discusses ship droop detectors that throttle the
 * clock when the rail dips ([21][29][44][46] in the paper); the
 * paper's Section 6 observes that power-gating raises the resonance
 * frequency, making such mechanisms — which are "extremely sensitive
 * to response-latency" — less effective. This module implements the
 * mechanism as a closed-loop simulation so that claim can be
 * quantified (see bench_ext_adaptive_clock).
 *
 * Loop: each PDN timestep, the detector compares the (sensor-lagged)
 * die voltage against a threshold; when tripped, after the response
 * latency, the core clock is effectively halved for a hold time —
 * modeled as scaling the CPU current demand by the throttle ratio
 * (half the clock = roughly half the switching current).
 */

#ifndef EMSTRESS_MITIGATION_ADAPTIVE_CLOCK_H
#define EMSTRESS_MITIGATION_ADAPTIVE_CLOCK_H

#include <cstddef>

#include "pdn/pdn_model.h"
#include "util/trace.h"

namespace emstress {
namespace mitigation {

/** Configuration of the droop detector + clock throttle. */
struct AdaptiveClockParams
{
    /// Detector trip threshold below nominal [V] (e.g. 0.03 = trip
    /// at V_nom - 30 mV).
    double threshold_below_nominal = 0.030;
    /// Detector-to-throttle response latency [s]. The knob the
    /// paper's Section 6 insight is about: must be a small fraction
    /// of the resonance period to help.
    double response_latency = 5e-9;
    /// Current multiplier while throttled (half clock ~ 0.5).
    double throttle_ratio = 0.5;
    /// Minimum throttle hold once tripped [s].
    double hold_time = 50e-9;
};

/** Result of a mitigated (closed-loop) PDN simulation. */
struct MitigatedRunResult
{
    Trace v_die{1e-9};      ///< Die voltage with mitigation active.
    Trace throttle{1e-9};   ///< 1 while throttled, else 0.
    double min_v_die = 0.0; ///< Worst dip with mitigation.
    double throttled_fraction = 0.0; ///< Time fraction throttled
                                     ///< (performance cost proxy).
    std::size_t trip_count = 0;      ///< Detector activations.
};

/**
 * Closed-loop adaptive-clocking simulator over a PDN model.
 */
class AdaptiveClock
{
  public:
    /** Configure against a PDN (not owned). */
    AdaptiveClock(const pdn::PdnModel &pdn,
                  const AdaptiveClockParams &params);

    /** Parameters. */
    const AdaptiveClockParams &params() const { return params_; }

    /**
     * Simulate a load-current trace with the throttle in the loop.
     * @param i_load Unthrottled CPU current demand at the PDN
     *               timestep; throttling scales it sample by sample.
     */
    MitigatedRunResult run(const Trace &i_load) const;

    /**
     * Reference run without mitigation (same accounting), for
     * effectiveness comparisons.
     */
    MitigatedRunResult runUnmitigated(const Trace &i_load) const;

  private:
    MitigatedRunResult simulate(const Trace &i_load,
                                bool mitigate) const;

    const pdn::PdnModel &pdn_;
    AdaptiveClockParams params_;
};

} // namespace mitigation
} // namespace emstress

#endif // EMSTRESS_MITIGATION_ADAPTIVE_CLOCK_H
