/**
 * @file
 * Fixed-step transient analysis over an MNA system. Storage rows use
 * the implicit trapezoidal rule — A-stable and amplitude-preserving
 * for LC tanks, which is essential here: the whole point of the PDN
 * model is resonant ringing. Pure algebraic rows (KCL at
 * storage-free nodes, voltage-source rows) are enforced exactly at
 * each new time point, removing the trapezoidal rule's spurious
 * index-1 averaging mode.
 *
 * Two step implementations share that discretization (DESIGN.md §12):
 *
 *  - TransientMethod::FastState (default): the PDN is a small
 *    fixed-topology *LTI* system on a fixed timestep, so the whole
 *    per-step linear solve is precomputable. At construction the
 *    engine forms the dense state-update `A = lhs⁻¹ · rhs_mult` and
 *    the per-source injection vectors once per (netlist, dt), folded
 *    into one column-major matrix over the augmented state
 *    [x | i_now | i_prev | 1]; each step is then a single dense
 *    mat-vec accumulated column-by-column (axpy order), which the
 *    vectorizer can keep in full SIMD lanes without reassociating
 *    any per-element sum — allocation-free and branch-free.
 *    Open-loop executions (run() and the PDN streaming sinks)
 *    further fold kStreamBlock steps into precomputed transition
 *    powers (TransientBlockStepper), reading probes through stacked
 *    power rows — roughly a 3x flop cut on PDN-sized systems over
 *    stepping the full augmented mat-vec every sample.
 *  - TransientMethod::ReferenceLu: the original per-step LU
 *    forward/back substitution. Algebraically identical, kept as the
 *    reference implementation for parity testing and debugging.
 *    Known limitation: at extreme stiffness ratios (element C/dt some
 *    seven decades above the conductances, e.g. the PDN's 1 mF bulk
 *    capacitor at dt = 1e-10) the per-step substitution's rounding
 *    feeds a slowly growing mode (~e^(1e-4 per step), measured),
 *    while the precomputed state-update stays contractive —
 *    tests/test_transient_parity.cc pins the fast path's boundedness
 *    there. Use the reference path at production stiffness only.
 *
 * The fast path reassociates floating-point operations, so the two
 * paths agree only to kStateUpdateParityTol (not bit-exactly); the
 * contract is pinned by tests/test_transient_parity.cc. Whichever
 * path is active, results are bit-identical run-to-run and across
 * thread counts: the step arithmetic is sequential and the operation
 * order is fixed.
 *
 * Known limitation (trapezoidal's ρ(∞) = 1, i.e. "trapezoidal
 * ringing"): source discontinuities can leave a *bounded*,
 * non-decaying Nyquist-frequency ripple on chains of storage-free
 * nodes behind inductors. It is negligible (µV-scale) on the PDN
 * topologies this project ships, whose functional nodes all carry
 * capacitance; avoid building long cap-free R-L chains if µV
 * accuracy matters there, or low-pass the probe like the real
 * scopes do.
 */

#ifndef EMSTRESS_CIRCUIT_TRANSIENT_H
#define EMSTRESS_CIRCUIT_TRANSIENT_H

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "util/hotpath.h"
#include "util/trace.h"

namespace emstress {
namespace circuit {

/** What a probe observes. */
enum class ProbeKind
{
    NodeVoltage,   ///< Voltage of a node versus ground.
    BranchCurrent, ///< Current through an inductor or voltage source.
};

/** A named observation point recorded during the transient run. */
struct Probe
{
    ProbeKind kind;
    /// Node id (NodeVoltage) — unused for BranchCurrent.
    NodeId node = kGround;
    /// Element name (BranchCurrent) — unused for NodeVoltage.
    std::string element;
    /// Label under which the waveform is returned.
    std::string label;
};

/** Waveform for one current source: value in amps at time t. */
using SourceWaveform = std::function<double(double t_seconds)>;

/** Result of a transient run: one Trace per probe, in probe order. */
struct TransientResult
{
    std::vector<std::string> labels;
    std::vector<Trace> waveforms;

    /** Waveform lookup by probe label. @throws ConfigError if absent. */
    const Trace &trace(const std::string &label) const;
};

/** Which step implementation a TransientAnalysis uses. */
enum class TransientMethod
{
    /// FastState unless EMSTRESS_TRANSIENT_PATH=lu requests the
    /// reference path for the whole process.
    Auto,
    /// Precomputed dense state-update (default; fast).
    FastState,
    /// Per-step LU substitution (reference implementation).
    ReferenceLu,
};

/**
 * Documented fast-vs-reference parity contract, pinned by
 * tests/test_transient_parity.cc. Two horizons, because the paths
 * are algebraically identical but not bit-identical, and weakly
 * damped modes integrate the per-step rounding difference:
 *
 *  - Short horizon (first kParityShortSteps steps from a common
 *    initial state): max |x_fast - x_lu| stays below
 *    kStateUpdateParityTolShort relative to the running max |x| of
 *    the reference — this is the "same algebra" check; measured
 *    agreement is orders tighter on non-stiff netlists.
 *  - Full trajectory (>= 1e5 steps): the relative divergence stays
 *    below kStateUpdateParityTol. On stiff production netlists (the
 *    PDN's 1 mF bulk capacitor) the slow tanks resonantly amplify
 *    per-step rounding noise to ~1e-3 relative before damping caps
 *    it, so a tighter whole-run bound would be dishonest for EITHER
 *    pair of valid solvers.
 *
 * On both horizons, algebraic-row constraints (G x = s on
 * storage-free rows) hold to solver precision on both paths.
 */
inline constexpr double kStateUpdateParityTol = 1e-2;
inline constexpr double kStateUpdateParityTolShort = 1e-7;
inline constexpr std::size_t kParityShortSteps = 100;

/**
 * Agreement contract between the blocked stream stepper
 * (TransientBlockStepper) and the per-step fast path, pinned by
 * tests/test_transient_parity.cc: both advance the same precomputed
 * update, but the blocked form folds kStreamBlock steps into powers
 * of the transition matrix, so its rounding differs in the low bits.
 * As with the LU-parity contract, weakly damped modes integrate the
 * per-step rounding difference: measured divergence on the stiff
 * production PDN reaches ~1e-8 relative within a few thousand
 * steps, leaving this bound ~7x of headroom over the horizons the
 * tests pin.
 */
inline constexpr double kBlockedStreamParityTol = 1e-7;

/// Steps folded into one precomputed multi-step update by
/// TransientBlockStepper (also its input-buffer capacity).
inline constexpr std::size_t kStreamBlock = 8;

class TransientStepper;
class TransientBlockStepper;

/**
 * Reusable transient engine. Precomputes the trapezoidal
 * state-update (or factors the system matrix, for the reference
 * path) once per (netlist, dt) pair; run() can then be called many
 * times with different source waveforms — the usage pattern of a GA
 * that evaluates thousands of individuals against one PDN.
 */
class TransientAnalysis
{
    friend class TransientStepper;
    friend class TransientBlockStepper;

  public:
    /**
     * Prepare the engine.
     * @param netlist Circuit to simulate (copied into the MNA form).
     * @param dt      Fixed timestep in seconds.
     * @param method  Step implementation; Auto resolves to FastState
     *                unless EMSTRESS_TRANSIENT_PATH=lu.
     */
    TransientAnalysis(const Netlist &netlist, double dt,
                      TransientMethod method = TransientMethod::Auto);

    ~TransientAnalysis();
    TransientAnalysis(TransientAnalysis &&) noexcept;
    TransientAnalysis &operator=(TransientAnalysis &&) noexcept;

    /** Timestep in seconds. */
    double dt() const { return dt_; }

    /** The underlying MNA system (for index queries). */
    const MnaSystem &mna() const { return mna_; }

    /** Resolved step implementation (never Auto). */
    TransientMethod method() const { return method_; }

    /**
     * Run for a number of steps starting from a DC operating point.
     *
     * @param steps     Number of timesteps to advance.
     * @param waveforms One waveform per current source, in
     *                  MnaSystem::currentSourceNames() order.
     * @param probes    Observation points to record.
     * @param bias_currents Current-source values used to compute the
     *                  initial DC operating point. Pass the mean of
     *                  each waveform so slow storage elements start
     *                  settled; empty means the waveforms' t = 0
     *                  values. The trapezoidal source history always
     *                  starts from the waveforms' t = 0 values.
     */
    TransientResult run(std::size_t steps,
                        const std::vector<SourceWaveform> &waveforms,
                        const std::vector<Probe> &probes,
                        std::span<const double> bias_currents = {})
        const;

    /**
     * Create an incremental stepper for closed-loop simulations
     * where each step's source values depend on previously observed
     * outputs (e.g. an adaptive-clocking throttle reacting to die
     * voltage). The stepper references this engine; keep the engine
     * alive while stepping.
     *
     * The initial-state convention is single and matches run(): the
     * DC operating point is solved at `bias_currents` (falling back
     * to `initial_currents`, then to the sources' netlist DC values)
     * and the trapezoidal source history starts at
     * `initial_currents` (falling back to `bias_currents`, then DC
     * values) — no separate priming call exists or is needed. On the
     * reference path `makeStepper(bias, {waveforms at t = 0})`
     * replays run(steps, waveforms, probes, bias) bit-exactly; on
     * the fast path run() executes the same algebra in kStreamBlock
     * folds (see makeBlockStepper), so a per-step stepper agrees
     * with it to kBlockedStreamParityTol while a block stepper fed
     * run()'s block boundaries replays it bit-exactly.
     *
     * @param bias_currents    Current-source values for the initial
     *        DC operating point.
     * @param initial_currents Current-source values at t = 0 seeding
     *        the trapezoidal source history.
     */
    TransientStepper makeStepper(
        std::span<const double> bias_currents = {},
        std::span<const double> initial_currents = {}) const;

    /**
     * Create a blocked stream stepper: the high-throughput form of
     * the fast path for open-loop streams, where the next source
     * value never depends on the previous output. It folds
     * kStreamBlock steps into precomputed powers of the transition
     * matrix and reads only the requested probe rows per step, so a
     * full block costs one dense update plus a handful of short
     * dots instead of kStreamBlock full mat-vecs.
     *
     * Initial-state convention is identical to makeStepper (same
     * bias/initial fallbacks). Results agree with a per-step
     * TransientStepper to kBlockedStreamParityTol (not bitwise: the
     * matrix powers reassociate the same algebra), and are
     * bit-identical run-to-run and across thread counts. run()'s
     * fast path itself executes through this stepper with blocks
     * aligned from step 1, so feeding one the same whole-block
     * partition replays run() bit-exactly — the invariant that keeps
     * streaming sinks sample-for-sample equal to batch simulation.
     *
     * @param probe_indices MNA state indices whose values stepBlock
     *        reports per advanced step, in this order. The engine
     *        must use TransientMethod::FastState.
     */
    TransientBlockStepper makeBlockStepper(
        std::span<const double> bias_currents,
        std::span<const double> initial_currents,
        std::span<const std::size_t> probe_indices) const;

  private:
    /**
     * Advance one step of the precomputed state-update. `aug` and
     * `aug_next` are distinct augmented-state buffers of cols_
     * doubles (see mt_): this call writes `i_now` into aug's i_now
     * slots, computes aug_next[0..xpad_) = M · aug, and copies the
     * i_now slots into aug_next's i_prev slots so the swapped buffer
     * carries the correct source history. The constant-1 and padding
     * slots are never touched after initialization.
     *
     * The accumulation order is fixed — four columns per sweep, each
     * element summed strictly left-to-right within a sweep — so
     * results are bit-identical run-to-run and across thread counts.
     * Cloned per ISA width (vector lanes are independent rows, so
     * every clone is bit-identical; see util/hotpath.h).
     */
    EMSTRESS_TARGET_CLONES void stateUpdateStep(
        double *aug, std::span<const double> i_now,
        double *aug_next) const;

    /** Precompute the augmented state-update matrix mt_. */
    void buildStateUpdate();

    double dt_;
    MnaSystem mna_;
    TransientMethod method_;
    /// Prefactored left-hand matrix: trapezoidal (C/dt + G/2) on
    /// dynamic rows, plain G on algebraic rows.
    std::unique_ptr<LuSolver<double>> lhs_;
    /// Right-hand multiplier: (C/dt - G/2) on dynamic rows, zero on
    /// algebraic rows.
    Matrix<double> rhs_mult_;
    /// True for rows with no storage entries (pure constraints).
    std::vector<bool> algebraic_row_;

    /// @{ FastState precomputation: augmented-state form. The state
    /// is embedded in an augmented vector
    ///   z = [x (xpad_ slots) | i_now | i_prev | 1 | zero padding]
    /// of cols_ slots, and a single column-major matrix M folds the
    /// state transition A = lhs⁻¹ · rhs_mult, both per-source
    /// trapezoidal injection images and the constant voltage-source
    /// image, so one mat-vec x_next = M · z advances the step.
    /// Zero rows/columns pad every loop to whole 4-wide sweeps.
    std::size_t xpad_ = 0;      ///< mna size rounded up to 4.
    std::size_t cols_ = 0;      ///< Augmented width, multiple of 4.
    std::size_t inow_off_ = 0;  ///< z-slot of the first i_now entry.
    std::size_t iprev_off_ = 0; ///< z-slot of the first i_prev entry.
    std::size_t one_idx_ = 0;   ///< z-slot holding the constant 1.
    std::vector<double> mt_;    ///< Column-major M, cols_ x xpad_.
    /// Blocked-stream tables over the compact LTI form
    ///   S = [x | u_prev | 1 | zero padding]
    /// of width q_ (multiple of 4): the x-rows of the transition
    /// powers T^j for j = 1..kStreamBlock (column-major xpad_ x q_
    /// blocks, concatenated) and of the input images G_m = T^m B
    /// (xpad_ x n_src blocks, concatenated). Built once per engine
    /// alongside mt_; shared by run() and every
    /// TransientBlockStepper, which is what keeps batch and stream
    /// executions of one engine bit-identical.
    std::size_t q_ = 0;
    std::vector<double> tpow_;
    std::vector<double> gpow_;
    /// @}
};

/**
 * Incremental interface to a transient simulation: advance one
 * timestep at a time with caller-chosen source values, observing the
 * state after each step. Counts its steps and flushes them to the
 * metrics registry (circuit.transient.steps plus the active path's
 * solve counter) on destruction or flushMetrics().
 */
class TransientStepper
{
  public:
    ~TransientStepper();
    TransientStepper(TransientStepper &&other) noexcept;
    TransientStepper &operator=(TransientStepper &&) = delete;

    /** Current simulation time [s]. */
    double time() const { return time_; }

    /**
     * Advance one timestep with the given instantaneous
     * current-source values (MnaSystem::currentSourceNames order).
     */
    void step(std::span<const double> currents);

    /** State value by MNA index (see MnaSystem::stateIndexOf...). */
    double value(std::size_t state_index) const;

    /** Steps taken since construction. */
    std::size_t stepsTaken() const { return steps_taken_; }

    /**
     * Flush this stepper's not-yet-reported step counts to the
     * metrics registry (circuit.transient.steps and, depending on
     * the engine path, circuit.transient.state_updates or
     * circuit.transient.lu_solves). Idempotent; also runs on
     * destruction, so callers only need it when a consistent
     * registry snapshot is read while the stepper is still alive.
     */
    void flushMetrics();

  private:
    friend class TransientAnalysis;
    TransientStepper(const TransientAnalysis &engine,
                     std::span<const double> bias_currents,
                     std::span<const double> initial_currents);

    const TransientAnalysis &engine_;
    /// State vector: the augmented-state buffer on the fast path
    /// (x in slots [0, n), then i_now/i_prev/1), plain length-n
    /// state on the reference path.
    std::vector<double> x_;
    /// FastState double buffer, swapped with x_ each step.
    std::vector<double> x_next_;
    /// @{ ReferenceLu buffers: assembled source vectors and rhs.
    std::vector<double> s_prev_;
    std::vector<double> s_now_;
    std::vector<double> rhs_;
    /// @}
    double time_ = 0.0;
    std::size_t steps_taken_ = 0;
    std::size_t pending_steps_ = 0;
};

/**
 * Blocked stream stepper over the precomputed state-update (see
 * TransientAnalysis::makeBlockStepper). Works on the compact
 * linear-time-invariant form of the update,
 *
 *   S_{n+1} = T S_n + B u_n,   S = [x | u_prev | 1 | zero padding],
 *
 * and uses the engine's once-per-(netlist, dt) tables of the x-rows
 * of T^j for j = 1..kStreamBlock and of the input images
 * G_m = T^m B, plus two small per-stepper tables: the probe rows of
 * every power stacked into one matrix W, and the per-step
 * probe/input coupling scalars. A full block of k inputs then costs
 * one W·S mat-vec (all probe outputs of the block), one T^k·S
 * mat-vec plus k short input axpys (the state), and a triangle of
 * scalar corrections — ~3x fewer flops than k single steps at the
 * production PDN's size. Partial blocks (the stream tail) fall back
 * to per-step T·S updates with probes read straight from the state.
 *
 * Every loop has a fixed accumulation order with vector lanes
 * carrying independent rows, so results are bit-identical
 * run-to-run and across thread counts; full-block probe row k and
 * the new state are computed in the identical column order, so the
 * last emitted sample of a block always equals the state value a
 * tail step would expose. Counts steps like TransientStepper and
 * flushes them to
 * the same counters, plus circuit.transient.stream_blocks per full
 * block.
 */
class TransientBlockStepper
{
  public:
    ~TransientBlockStepper();
    TransientBlockStepper(TransientBlockStepper &&other) noexcept;
    TransientBlockStepper &operator=(TransientBlockStepper &&)
        = delete;

    /** Current simulation time [s]. */
    double time() const { return time_; }

    /** Steps taken since construction. */
    std::size_t stepsTaken() const { return steps_taken_; }

    /**
     * Advance `count` timesteps at once.
     *
     * @param currents  count x n_src instantaneous source values,
     *        row-major (MnaSystem::currentSourceNames order within a
     *        row); row c applies to the c-th advanced step.
     * @param count     Steps to advance, 1..kStreamBlock.
     * @param probe_out count x n_probes values, row-major: the
     *        requested probe states after each advanced step, in
     *        makeBlockStepper's probe order.
     */
    void stepBlock(const double *currents, std::size_t count,
                   double *probe_out);

    /** See TransientStepper::flushMetrics. */
    void flushMetrics();

  private:
    friend class TransientAnalysis;
    TransientBlockStepper(const TransientAnalysis &engine,
                          std::span<const double> bias_currents,
                          std::span<const double> initial_currents,
                          std::span<const std::size_t> probe_indices);

    const TransientAnalysis &engine_;
    std::size_t xpad_ = 0;  ///< x rows, multiple of 4 (engine's).
    std::size_t n_src_ = 0; ///< Current sources.
    std::size_t q_ = 0;     ///< S width, multiple of 4.
    std::size_t np_ = 0;    ///< Probes.
    std::size_t wrows_ = 0; ///< W rows, kStreamBlock*np_ padded to 4.
    std::vector<std::size_t> probes_;
    /// W: probe rows of T^1..T^k stacked, column-major
    /// wrows_ x q_; row (j-1)*np_+p is probe p after step j.
    std::vector<double> w_;
    /// Probe/input couplings (T^{j-1-m} B)[p][s], laid out in the
    /// exact (j, m, p, s) order stepBlock consumes them.
    std::vector<double> pg_;
    std::vector<double> s_;      ///< Current S, length q_.
    std::vector<double> s_next_; ///< Double buffer, length q_.
    std::vector<double> ybuf_;   ///< Padded probe scratch, wrows_.
    double time_ = 0.0;
    std::size_t steps_taken_ = 0;
    std::size_t pending_steps_ = 0;
    std::size_t pending_blocks_ = 0;
};

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_TRANSIENT_H
