/**
 * @file
 * Fixed-step transient analysis over an MNA system. Storage rows use
 * the implicit trapezoidal rule — A-stable and amplitude-preserving
 * for LC tanks, which is essential here: the whole point of the PDN
 * model is resonant ringing. Pure algebraic rows (KCL at
 * storage-free nodes, voltage-source rows) are enforced exactly at
 * each new time point, removing the trapezoidal rule's spurious
 * index-1 averaging mode.
 *
 * Known limitation (trapezoidal's ρ(∞) = 1, i.e. "trapezoidal
 * ringing"): source discontinuities can leave a *bounded*,
 * non-decaying Nyquist-frequency ripple on chains of storage-free
 * nodes behind inductors. It is negligible (µV-scale) on the PDN
 * topologies this project ships, whose functional nodes all carry
 * capacitance; avoid building long cap-free R-L chains if µV
 * accuracy matters there, or low-pass the probe like the real
 * scopes do.
 */

#ifndef EMSTRESS_CIRCUIT_TRANSIENT_H
#define EMSTRESS_CIRCUIT_TRANSIENT_H

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "util/trace.h"

namespace emstress {
namespace circuit {

/** What a probe observes. */
enum class ProbeKind
{
    NodeVoltage,   ///< Voltage of a node versus ground.
    BranchCurrent, ///< Current through an inductor or voltage source.
};

/** A named observation point recorded during the transient run. */
struct Probe
{
    ProbeKind kind;
    /// Node id (NodeVoltage) — unused for BranchCurrent.
    NodeId node = kGround;
    /// Element name (BranchCurrent) — unused for NodeVoltage.
    std::string element;
    /// Label under which the waveform is returned.
    std::string label;
};

/** Waveform for one current source: value in amps at time t. */
using SourceWaveform = std::function<double(double t_seconds)>;

/** Result of a transient run: one Trace per probe, in probe order. */
struct TransientResult
{
    std::vector<std::string> labels;
    std::vector<Trace> waveforms;

    /** Waveform lookup by probe label. @throws ConfigError if absent. */
    const Trace &trace(const std::string &label) const;
};

class TransientStepper;

/**
 * Reusable transient engine. Factors the trapezoidal system matrix
 * once per (netlist, dt) pair; run() can then be called many times
 * with different source waveforms — the usage pattern of a GA that
 * evaluates thousands of individuals against one PDN.
 */
class TransientAnalysis
{
    friend class TransientStepper;

  public:
    /**
     * Prepare the engine.
     * @param netlist Circuit to simulate (copied into the MNA form).
     * @param dt      Fixed timestep in seconds.
     */
    TransientAnalysis(const Netlist &netlist, double dt);

    ~TransientAnalysis();
    TransientAnalysis(TransientAnalysis &&) noexcept;
    TransientAnalysis &operator=(TransientAnalysis &&) noexcept;

    /** Timestep in seconds. */
    double dt() const { return dt_; }

    /** The underlying MNA system (for index queries). */
    const MnaSystem &mna() const { return mna_; }

    /**
     * Run for a number of steps starting from a DC operating point.
     *
     * @param steps     Number of timesteps to advance.
     * @param waveforms One waveform per current source, in
     *                  MnaSystem::currentSourceNames() order.
     * @param probes    Observation points to record.
     * @param bias_currents Current-source values used to compute the
     *                  initial DC operating point. Pass the mean of
     *                  each waveform so slow storage elements start
     *                  settled; empty means zero/DC values.
     */
    TransientResult run(std::size_t steps,
                        const std::vector<SourceWaveform> &waveforms,
                        const std::vector<Probe> &probes,
                        std::span<const double> bias_currents = {})
        const;

    /**
     * Create an incremental stepper for closed-loop simulations
     * where each step's source values depend on previously observed
     * outputs (e.g. an adaptive-clocking throttle reacting to die
     * voltage). The stepper references this engine; keep the engine
     * alive while stepping.
     *
     * @param bias_currents Current-source values for the initial DC
     *        operating point (empty = DC values).
     */
    TransientStepper makeStepper(
        std::span<const double> bias_currents = {}) const;

  private:
    double dt_;
    MnaSystem mna_;
    /// Prefactored left-hand matrix: trapezoidal (C/dt + G/2) on
    /// dynamic rows, plain G on algebraic rows.
    std::unique_ptr<LuSolver<double>> lhs_;
    /// Right-hand multiplier: (C/dt - G/2) on dynamic rows, zero on
    /// algebraic rows.
    Matrix<double> rhs_mult_;
    /// True for rows with no storage entries (pure constraints).
    std::vector<bool> algebraic_row_;
};

/**
 * Incremental interface to a transient simulation: advance one
 * timestep at a time with caller-chosen source values, observing the
 * state after each step.
 */
class TransientStepper
{
  public:
    /** Current simulation time [s]. */
    double time() const { return time_; }

    /**
     * Advance one timestep with the given instantaneous
     * current-source values (MnaSystem::currentSourceNames order).
     */
    void step(std::span<const double> currents);

    /**
     * Overwrite the held "previous" source vector without advancing
     * time. TransientAnalysis::run seeds its trapezoidal source
     * history from the waveforms' t = 0 values while biasing the DC
     * operating point at the waveform means; a stepper replaying that
     * run must prime with the t = 0 values after construction to
     * reproduce it bit-exactly.
     */
    void primeSources(std::span<const double> currents);

    /** State value by MNA index (see MnaSystem::stateIndexOf...). */
    double value(std::size_t state_index) const;

  private:
    friend class TransientAnalysis;
    TransientStepper(const TransientAnalysis &engine,
                     std::span<const double> bias_currents);

    const TransientAnalysis &engine_;
    std::vector<double> x_;
    std::vector<double> s_prev_;
    std::vector<double> s_now_;
    std::vector<double> rhs_;
    double time_ = 0.0;
};

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_TRANSIENT_H
