/**
 * @file
 * AC analysis implementation.
 */

#include "circuit/ac.h"

#include <cmath>

#include "circuit/linalg.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace circuit {

std::vector<double>
AcSweepResult::magnitudes() const
{
    std::vector<double> out(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = std::abs(values[i]);
    return out;
}

AcAnalysis::AcAnalysis(const Netlist &netlist) : mna_(netlist) {}

AcSweepResult
AcAnalysis::inputImpedance(NodeId node,
                           const std::vector<double> &freqs_hz) const
{
    return transferImpedance(node, node, freqs_hz);
}

AcSweepResult
AcAnalysis::transferImpedance(NodeId drive_node, NodeId observe_node,
                              const std::vector<double> &freqs_hz) const
{
    const std::size_t n = mna_.size();
    const std::size_t drive = mna_.stateIndexOfNode(drive_node);
    const std::size_t observe = mna_.stateIndexOfNode(observe_node);

    AcSweepResult result;
    result.freqs_hz = freqs_hz;
    result.values.reserve(freqs_hz.size());

    std::vector<std::complex<double>> rhs(n, {0.0, 0.0});
    rhs[drive] = {1.0, 0.0}; // Unit AC current injection.

    for (double f : freqs_hz) {
        requireConfig(f > 0.0, "AC sweep frequency must be positive");
        const double w = kTwoPi * f;
        Matrix<std::complex<double>> a(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a(r, c) = std::complex<double>(mna_.g()(r, c),
                                               w * mna_.c()(r, c));
        LuSolver<std::complex<double>> lu(std::move(a));
        const auto x = lu.solve(rhs);
        result.values.push_back(x[observe]);
    }
    return result;
}

std::vector<double>
logFrequencyGrid(double f_lo, double f_hi, std::size_t points)
{
    requireConfig(f_lo > 0.0 && f_hi > f_lo && points >= 2,
                  "bad log frequency grid parameters");
    std::vector<double> out(points);
    const double l_lo = std::log10(f_lo);
    const double l_hi = std::log10(f_hi);
    for (std::size_t i = 0; i < points; ++i) {
        const double frac = static_cast<double>(i)
            / static_cast<double>(points - 1);
        out[i] = std::pow(10.0, l_lo + frac * (l_hi - l_lo));
    }
    return out;
}

std::vector<double>
linFrequencyGrid(double f_lo, double f_hi, std::size_t points)
{
    requireConfig(f_hi > f_lo && points >= 2,
                  "bad linear frequency grid parameters");
    std::vector<double> out(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double frac = static_cast<double>(i)
            / static_cast<double>(points - 1);
        out[i] = f_lo + frac * (f_hi - f_lo);
    }
    return out;
}

} // namespace circuit
} // namespace emstress
