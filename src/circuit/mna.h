/**
 * @file
 * Modified Nodal Analysis formulation. Builds the descriptor system
 *
 *     C dx/dt + G x = s(t)
 *
 * where x stacks the non-ground node voltages followed by the branch
 * currents of inductors and voltage sources, and s(t) collects source
 * injections. Transient and AC analyses consume this formulation.
 */

#ifndef EMSTRESS_CIRCUIT_MNA_H
#define EMSTRESS_CIRCUIT_MNA_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "circuit/linalg.h"
#include "circuit/netlist.h"

namespace emstress {
namespace circuit {

/**
 * The assembled MNA matrices and the index maps from netlist entities
 * to state-vector positions.
 */
class MnaSystem
{
  public:
    /** Assemble G and C from a netlist. */
    explicit MnaSystem(const Netlist &netlist);

    /** Dimension of the state vector x. */
    std::size_t size() const { return size_; }

    /** Conductance/topology matrix G. */
    const Matrix<double> &g() const { return g_; }

    /** Storage matrix C (capacitances and inductances). */
    const Matrix<double> &c() const { return c_; }

    /**
     * State index holding the voltage of a node.
     * @pre node != kGround (ground is identically zero).
     */
    std::size_t stateIndexOfNode(NodeId node) const;

    /**
     * State index holding the branch current of a named inductor or
     * voltage source.
     * @throws ConfigError when no such branch unknown exists.
     */
    std::size_t stateIndexOfBranch(const std::string &element_name) const;

    /**
     * Build the source vector for given instantaneous current-source
     * values. DC voltage-source values are always included.
     *
     * @param current_values One value per current source in netlist
     *        order (element order restricted to current sources); an
     *        empty span means all sources at their DC value.
     */
    std::vector<double>
    sourceVector(std::span<const double> current_values) const;

    /**
     * sourceVector into a caller-owned buffer (resized to size()),
     * avoiding the per-step allocation in stepping loops.
     */
    void sourceVectorInto(std::span<const double> current_values,
                          std::vector<double> &out) const;

    /** Names of the current sources in the order sourceVector expects. */
    const std::vector<std::string> &currentSourceNames() const
    {
        return current_source_names_;
    }

    /**
     * Netlist DC value of each current source, in currentSourceNames
     * order. This is what an empty span passed to sourceVector stands
     * for, exposed so stepping loops that track raw per-source values
     * (rather than assembled source vectors) can apply the same
     * empty-means-DC convention.
     */
    const std::vector<double> &currentSourceDcValues() const
    {
        return current_source_dc_values_;
    }

    /**
     * DC operating point: solve G x = s with all current sources at
     * their DC values (capacitors open, inductors shorted is implied
     * by dx/dt = 0).
     */
    std::vector<double> dcOperatingPoint() const;

  private:
    std::size_t node_index(NodeId node) const { return node - 1; }

    std::size_t size_;
    std::size_t num_nodes_; ///< Non-ground node count.
    Matrix<double> g_;
    Matrix<double> c_;
    std::vector<double> dc_source_; ///< s with all I-sources at DC value.
    std::vector<double> vs_source_; ///< s from voltage sources only.
    std::vector<std::string> branch_names_;
    std::vector<std::string> current_source_names_;
    std::vector<double> current_source_dc_values_;
    /// (state row, sign) pairs per current source for fast stamping.
    struct Injection
    {
        std::size_t row;
        double sign;
    };
    std::vector<std::vector<Injection>> current_source_rows_;
};

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_MNA_H
