/**
 * @file
 * Trapezoidal transient engine implementation.
 */

#include "circuit/transient.h"

#include "util/error.h"
#include "util/metrics.h"

namespace emstress {
namespace circuit {

const Trace &
TransientResult::trace(const std::string &label) const
{
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == label)
            return waveforms[i];
    throw ConfigError("no transient probe labelled " + label);
}

TransientAnalysis::TransientAnalysis(const Netlist &netlist, double dt)
    : dt_(dt), mna_(netlist),
      rhs_mult_(mna_.size(), mna_.size())
{
    requireConfig(dt > 0.0, "transient dt must be positive");
    const std::size_t n = mna_.size();

    // Index-aware discretization. Rows whose C entries are all zero
    // are pure algebraic constraints (KCL at storage-free nodes,
    // voltage-source rows): they must hold exactly at every time
    // point. Plain trapezoidal would only constrain the *average* of
    // consecutive states, leaving a marginally stable alternating
    // mode that source steps pump into unbounded growth. Dynamic
    // (storage) rows keep the trapezoidal rule, preserving LC
    // oscillation amplitudes.
    algebraic_row_.assign(n, true);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            if (mna_.c()(r, c) != 0.0) {
                algebraic_row_[r] = false;
                break;
            }
        }
    }

    Matrix<double> lhs(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            if (algebraic_row_[r]) {
                // Enforced at t_{n+1}: G x_{n+1} = s_{n+1}.
                lhs(r, c) = mna_.g()(r, c);
                rhs_mult_(r, c) = 0.0;
            } else {
                const double cv = mna_.c()(r, c) / dt_;
                const double gv = mna_.g()(r, c) * 0.5;
                lhs(r, c) = cv + gv;
                rhs_mult_(r, c) = cv - gv;
            }
        }
    }
    lhs_ = std::make_unique<LuSolver<double>>(std::move(lhs));
    metrics::Registry::instance().add(
        "circuit.transient.factorizations");
}

TransientAnalysis::~TransientAnalysis() = default;
TransientAnalysis::TransientAnalysis(TransientAnalysis &&) noexcept
    = default;
TransientAnalysis &
TransientAnalysis::operator=(TransientAnalysis &&) noexcept = default;

TransientResult
TransientAnalysis::run(std::size_t steps,
                       const std::vector<SourceWaveform> &waveforms,
                       const std::vector<Probe> &probes,
                       std::span<const double> bias_currents) const
{
    const std::size_t n = mna_.size();
    const std::size_t n_src = mna_.currentSourceNames().size();
    requireConfig(waveforms.size() == n_src,
                  "transient run needs one waveform per current source");

    // Resolve probe state indices up front.
    std::vector<std::size_t> probe_idx;
    probe_idx.reserve(probes.size());
    TransientResult result;
    for (const auto &p : probes) {
        if (p.kind == ProbeKind::NodeVoltage)
            probe_idx.push_back(mna_.stateIndexOfNode(p.node));
        else
            probe_idx.push_back(mna_.stateIndexOfBranch(p.element));
        result.labels.push_back(p.label);
        Trace t(dt_);
        t.reserve(steps);
        result.waveforms.push_back(std::move(t));
    }

    // Initial condition: DC operating point with sources at t = 0.
    std::vector<double> src_vals(n_src);
    auto eval_sources = [&](double t) {
        for (std::size_t k = 0; k < n_src; ++k)
            src_vals[k] = waveforms[k](t);
    };

    // Initial condition: DC operating point at the bias currents
    // (typically the waveform means) so slow storage elements start
    // settled. Without an explicit bias, use the waveforms' t = 0
    // values: a state consistent with the constraints at the first
    // step avoids exciting the trapezoidal rule's marginal Nyquist
    // mode on storage-free node chains.
    eval_sources(0.0);
    std::vector<double> x;
    if (bias_currents.empty()) {
        Matrix<double> a = mna_.g();
        LuSolver<double> lu(std::move(a));
        x = lu.solve(mna_.sourceVector(src_vals));
    } else {
        Matrix<double> a = mna_.g();
        LuSolver<double> lu(std::move(a));
        x = lu.solve(mna_.sourceVector(bias_currents));
    }
    std::vector<double> s_prev = mna_.sourceVector(src_vals);

    std::vector<double> rhs(n);
    for (std::size_t step = 1; step <= steps; ++step) {
        const double t = dt_ * static_cast<double>(step);
        eval_sources(t);
        const std::vector<double> s_now = mna_.sourceVector(src_vals);

        // rhs: trapezoidal source average + history for dynamic
        // rows; the instantaneous source for algebraic rows.
        for (std::size_t r = 0; r < n; ++r) {
            double acc = algebraic_row_[r]
                ? s_now[r]
                : 0.5 * (s_prev[r] + s_now[r]);
            for (std::size_t c = 0; c < n; ++c)
                acc += rhs_mult_(r, c) * x[c];
            rhs[r] = acc;
        }
        x = lhs_->solve(rhs);
        s_prev = s_now;

        for (std::size_t p = 0; p < probe_idx.size(); ++p)
            result.waveforms[p].push(x[probe_idx[p]]);
    }
    // Batched counter flush: one registry call per run, not per
    // step, keeps the hot loop free of locks.
    auto &reg = metrics::Registry::instance();
    reg.add("circuit.transient.steps", steps);
    reg.add("circuit.transient.lu_solves", steps);
    return result;
}

TransientStepper
TransientAnalysis::makeStepper(
    std::span<const double> bias_currents) const
{
    return TransientStepper(*this, bias_currents);
}

TransientStepper::TransientStepper(
    const TransientAnalysis &engine,
    std::span<const double> bias_currents)
    : engine_(engine), rhs_(engine.mna_.size())
{
    if (bias_currents.empty()) {
        x_ = engine.mna_.dcOperatingPoint();
        s_prev_ = engine.mna_.sourceVector({});
    } else {
        Matrix<double> a = engine.mna_.g();
        LuSolver<double> lu(std::move(a));
        s_prev_ = engine.mna_.sourceVector(bias_currents);
        x_ = lu.solve(s_prev_);
    }
}

void
TransientStepper::step(std::span<const double> currents)
{
    const std::size_t n = engine_.mna_.size();
    // Reused buffers: a stepping loop makes tens of thousands of
    // calls per run, so the source/solve temporaries must not
    // allocate per step.
    engine_.mna_.sourceVectorInto(currents, s_now_);
    for (std::size_t r = 0; r < n; ++r) {
        double acc = engine_.algebraic_row_[r]
            ? s_now_[r]
            : 0.5 * (s_prev_[r] + s_now_[r]);
        for (std::size_t c = 0; c < n; ++c)
            acc += engine_.rhs_mult_(r, c) * x_[c];
        rhs_[r] = acc;
    }
    engine_.lhs_->solveInto(rhs_, x_);
    s_prev_.swap(s_now_);
    time_ += engine_.dt_;
}

void
TransientStepper::primeSources(std::span<const double> currents)
{
    engine_.mna_.sourceVectorInto(currents, s_prev_);
}

double
TransientStepper::value(std::size_t state_index) const
{
    requireSim(state_index < x_.size(),
               "stepper state index out of range");
    return x_[state_index];
}

} // namespace circuit
} // namespace emstress
