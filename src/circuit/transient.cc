/**
 * @file
 * Trapezoidal transient engine implementation: the precomputed
 * state-update fast path and the per-step LU reference path.
 */

#include "circuit/transient.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "util/error.h"
#include "util/metrics.h"

namespace emstress {
namespace circuit {

namespace {

/**
 * Resolve TransientMethod::Auto. The environment knob is an
 * operational escape hatch for parity debugging and A/B timing; the
 * two paths it selects between agree only to kStateUpdateParityTol
 * (documented in DESIGN.md §12 and pinned by
 * tests/test_transient_parity.cc), which is why the annotation below
 * is `parity-tolerance` rather than the result-neutral `env-config`.
 */
TransientMethod
resolveMethod(TransientMethod method)
{
    if (method != TransientMethod::Auto)
        return method;
    const char *env =
        std::getenv("EMSTRESS_TRANSIENT_PATH"); // lint: parity-tolerance
    if (env != nullptr && std::string_view(env) == "lu")
        return TransientMethod::ReferenceLu;
    return TransientMethod::FastState;
}

/** Counter credited per advanced step for a resolved method. */
const char *
solveCounterFor(TransientMethod method)
{
    return method == TransientMethod::FastState
        ? "circuit.transient.state_updates"
        : "circuit.transient.lu_solves";
}

/**
 * Column-by-column (axpy-order) dense mat-vec: out = m · z with m
 * column-major rows x cols, cols a multiple of 4. Four columns per
 * sweep, each output element summed strictly left-to-right within a
 * sweep — the same fixed association as stateUpdateStep, shared by
 * every caller so blocked and per-step emission of the same algebra
 * agree element-for-element. Cloned per ISA width (lanes are
 * independent rows; see util/hotpath.h).
 */
EMSTRESS_TARGET_CLONES void
matVecAxpy(const double *__restrict m, const double *__restrict z,
           double *__restrict out, std::size_t rows, std::size_t cols)
{
    for (std::size_t r = 0; r < rows; ++r)
        out[r] = 0.0;
    for (std::size_t c = 0; c < cols; c += 4) {
        const double v0 = z[c];
        const double v1 = z[c + 1];
        const double v2 = z[c + 2];
        const double v3 = z[c + 3];
        const double *__restrict m0 = m + c * rows;
        const double *__restrict m1 = m0 + rows;
        const double *__restrict m2 = m1 + rows;
        const double *__restrict m3 = m2 + rows;
        for (std::size_t r = 0; r < rows; ++r)
            out[r] = ((out[r] + m0[r] * v0) + m1[r] * v1)
                + (m2[r] * v2 + m3[r] * v3);
    }
}

} // namespace

const Trace &
TransientResult::trace(const std::string &label) const
{
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == label)
            return waveforms[i];
    throw ConfigError("no transient probe labelled " + label);
}

TransientAnalysis::TransientAnalysis(const Netlist &netlist, double dt,
                                     TransientMethod method)
    : dt_(dt), mna_(netlist), method_(resolveMethod(method)),
      rhs_mult_(mna_.size(), mna_.size())
{
    requireConfig(dt > 0.0, "transient dt must be positive");
    const std::size_t n = mna_.size();

    // Index-aware discretization. Rows whose C entries are all zero
    // are pure algebraic constraints (KCL at storage-free nodes,
    // voltage-source rows): they must hold exactly at every time
    // point. Plain trapezoidal would only constrain the *average* of
    // consecutive states, leaving a marginally stable alternating
    // mode that source steps pump into unbounded growth. Dynamic
    // (storage) rows keep the trapezoidal rule, preserving LC
    // oscillation amplitudes.
    algebraic_row_.assign(n, true);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            if (mna_.c()(r, c) != 0.0) {
                algebraic_row_[r] = false;
                break;
            }
        }
    }

    Matrix<double> lhs(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
            if (algebraic_row_[r]) {
                // Enforced at t_{n+1}: G x_{n+1} = s_{n+1}.
                lhs(r, c) = mna_.g()(r, c);
                rhs_mult_(r, c) = 0.0;
            } else {
                const double cv = mna_.c()(r, c) / dt_;
                const double gv = mna_.g()(r, c) * 0.5;
                lhs(r, c) = cv + gv;
                rhs_mult_(r, c) = cv - gv;
            }
        }
    }
    lhs_ = std::make_unique<LuSolver<double>>(std::move(lhs));
    if (method_ == TransientMethod::FastState)
        buildStateUpdate();
    metrics::Registry::instance().add(
        "circuit.transient.factorizations");
}

TransientAnalysis::~TransientAnalysis() = default;
TransientAnalysis::TransientAnalysis(TransientAnalysis &&) noexcept
    = default;
TransientAnalysis &
TransientAnalysis::operator=(TransientAnalysis &&) noexcept = default;

void
TransientAnalysis::buildStateUpdate()
{
    const std::size_t n = mna_.size();
    const std::size_t n_src = mna_.currentSourceNames().size();
    xpad_ = (n + 3) & ~std::size_t{3};
    inow_off_ = xpad_;
    iprev_off_ = xpad_ + n_src;
    one_idx_ = xpad_ + 2 * n_src;
    cols_ = (one_idx_ + 1 + 3) & ~std::size_t{3};
    mt_.assign(cols_ * xpad_, 0.0);
    const auto column = [this](std::size_t c) {
        return mt_.data() + c * xpad_;
    };

    // A = lhs⁻¹ · rhs_mult, one LU solve per column. The factored
    // solver is bit-identical to the reference path's, so A holds
    // exactly the values per-step substitution would produce for
    // unit history states. Stored column-major: the step kernel
    // accumulates column-by-column (axpy), which vectorizes without
    // reassociating any per-element sum.
    std::vector<double> col(n);
    std::vector<double> sol(n);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t r = 0; r < n; ++r)
            col[r] = rhs_mult_(r, c);
        lhs_->solveInto(col, sol);
        std::copy(sol.begin(), sol.end(), column(c));
    }

    // Source images. The reference rhs is
    //   rhs_r = [alg] s_now_r + [dyn] 0.5 (s_prev_r + s_now_r)
    // with s = s_vs + Σ_j i_j e_j, so folding through lhs⁻¹:
    //   const column  = lhs⁻¹ s_vs        (both halves sum to 1)
    //   i_now column  = lhs⁻¹ ([alg] + 0.5 [dyn]) e_j
    //   i_prev column = lhs⁻¹ (0.5 [dyn]) e_j
    std::vector<double> src_vals(n_src, 0.0);
    const std::vector<double> s_vs = mna_.sourceVector(src_vals);
    const std::vector<double> s_const = lhs_->solve(s_vs);
    std::copy(s_const.begin(), s_const.end(), column(one_idx_));
    std::vector<double> w(n);
    for (std::size_t j = 0; j < n_src; ++j) {
        src_vals[j] = 1.0;
        const std::vector<double> s_j = mna_.sourceVector(src_vals);
        src_vals[j] = 0.0;
        // e_j = s_j - s_vs is exact: injections land on node rows,
        // which carry no voltage-source entries.
        for (std::size_t r = 0; r < n; ++r) {
            const double e = s_j[r] - s_vs[r];
            w[r] = algebraic_row_[r] ? e : 0.5 * e;
        }
        lhs_->solveInto(w, sol);
        std::copy(sol.begin(), sol.end(), column(inow_off_ + j));
        for (std::size_t r = 0; r < n; ++r)
            w[r] = algebraic_row_[r] ? 0.0
                                     : 0.5 * (s_j[r] - s_vs[r]);
        lhs_->solveInto(w, sol);
        std::copy(sol.begin(), sol.end(), column(iprev_off_ + j));
    }

    // Blocked-stream tables over the compact LTI form
    // S = [x | u_prev | 1 | zero padding] (the i_now slots of the
    // augmented form become the explicit input u, everything else
    // keeps its role). T's x-rows come from M: state columns
    // verbatim, u_prev columns from the i_prev images, the constant
    // column from the voltage-source image. T's u_prev rows are zero
    // (the input B replaces them each step) and its 1-row is e_one,
    // which the power recurrences below use implicitly.
    constexpr std::size_t k = kStreamBlock;
    const std::size_t one_col = xpad_ + n_src;
    q_ = (one_col + 1 + 3) & ~std::size_t{3};
    std::vector<double> t(q_ * xpad_, 0.0);
    for (std::size_t c = 0; c < xpad_; ++c)
        std::copy(column(c), column(c) + xpad_,
                  t.begin() + static_cast<std::ptrdiff_t>(c * xpad_));
    for (std::size_t s = 0; s < n_src; ++s)
        std::copy(column(iprev_off_ + s),
                  column(iprev_off_ + s) + xpad_,
                  t.begin()
                      + static_cast<std::ptrdiff_t>((xpad_ + s)
                                                    * xpad_));
    std::copy(column(one_idx_), column(one_idx_) + xpad_,
              t.begin()
                  + static_cast<std::ptrdiff_t>(one_col * xpad_));

    // Powers T^j, j = 1..k (x-rows only; u_prev rows of any power
    // are zero and the 1-row stays e_one):
    //   T^{j+1}[r][c] = sum_{i<xpad} T[r][i] T^j[i][c]
    //                 + T[r][one] (c == one).
    tpow_.assign(k * q_ * xpad_, 0.0);
    std::copy(t.begin(), t.end(), tpow_.begin());
    for (std::size_t j = 1; j < k; ++j) {
        const double *prev = tpow_.data() + (j - 1) * q_ * xpad_;
        double *next = tpow_.data() + j * q_ * xpad_;
        for (std::size_t c = 0; c < q_; ++c) {
            double *out = next + c * xpad_;
            for (std::size_t i = 0; i < xpad_; ++i) {
                const double *tcol = t.data() + i * xpad_;
                const double pv = prev[c * xpad_ + i];
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += tcol[r] * pv;
            }
            if (c == one_col)
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += t[one_col * xpad_ + r];
        }
    }

    // Input images G_m = T^m B (x-rows). G_0 = B's x-rows = the
    // i_now injection columns; the m = 1 step also picks up B's
    // u_prev identity rows through T's u_prev columns.
    gpow_.assign(k * n_src * xpad_, 0.0);
    for (std::size_t s = 0; s < n_src; ++s)
        std::copy(column(inow_off_ + s), column(inow_off_ + s) + xpad_,
                  gpow_.begin()
                      + static_cast<std::ptrdiff_t>(s * xpad_));
    for (std::size_t m = 1; m < k; ++m) {
        const double *prev = gpow_.data() + (m - 1) * n_src * xpad_;
        double *next = gpow_.data() + m * n_src * xpad_;
        for (std::size_t s = 0; s < n_src; ++s) {
            double *out = next + s * xpad_;
            for (std::size_t i = 0; i < xpad_; ++i) {
                const double *tcol = t.data() + i * xpad_;
                const double pv = prev[s * xpad_ + i];
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += tcol[r] * pv;
            }
            if (m == 1)
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += t[(xpad_ + s) * xpad_ + r];
        }
    }
}

EMSTRESS_TARGET_CLONES void
TransientAnalysis::stateUpdateStep(double *aug,
                                   std::span<const double> i_now,
                                   double *aug_next) const
{
    const std::size_t xpad = xpad_;
    const std::size_t n_src = i_now.size();
    double *slot = aug + inow_off_;
    for (std::size_t j = 0; j < n_src; ++j)
        slot[j] = i_now[j];

    // Column-by-column (axpy-order) mat-vec over the augmented
    // state: each output element is summed strictly left-to-right,
    // four columns per sweep, so the accumulation order is fixed —
    // bit-identical run-to-run and across thread counts — while the
    // elements stay independent and vectorize to full SIMD lanes.
    // Only *versus the reference path* do results differ, to within
    // the documented parity tolerances.
    const double *__restrict m = mt_.data();
    const double *__restrict z = aug;
    double *__restrict out = aug_next;
    for (std::size_t r = 0; r < xpad; ++r)
        out[r] = 0.0;
    for (std::size_t c = 0; c < cols_; c += 4) {
        const double v0 = z[c];
        const double v1 = z[c + 1];
        const double v2 = z[c + 2];
        const double v3 = z[c + 3];
        const double *__restrict m0 = m + c * xpad;
        const double *__restrict m1 = m0 + xpad;
        const double *__restrict m2 = m1 + xpad;
        const double *__restrict m3 = m2 + xpad;
        for (std::size_t r = 0; r < xpad; ++r)
            out[r] = ((out[r] + m0[r] * v0) + m1[r] * v1)
                + (m2[r] * v2 + m3[r] * v3);
    }

    // This step's sources become the swapped buffer's history; its
    // constant-1 and padding slots were set at initialization and
    // are never written past.
    double *hist = aug_next + iprev_off_;
    for (std::size_t j = 0; j < n_src; ++j)
        hist[j] = slot[j];
}

TransientResult
TransientAnalysis::run(std::size_t steps,
                       const std::vector<SourceWaveform> &waveforms,
                       const std::vector<Probe> &probes,
                       std::span<const double> bias_currents) const
{
    const std::size_t n = mna_.size();
    const std::size_t n_src = mna_.currentSourceNames().size();
    requireConfig(waveforms.size() == n_src,
                  "transient run needs one waveform per current source");

    // Resolve probe state indices up front.
    std::vector<std::size_t> probe_idx;
    probe_idx.reserve(probes.size());
    TransientResult result;
    for (const auto &p : probes) {
        if (p.kind == ProbeKind::NodeVoltage)
            probe_idx.push_back(mna_.stateIndexOfNode(p.node));
        else
            probe_idx.push_back(mna_.stateIndexOfBranch(p.element));
        result.labels.push_back(p.label);
        Trace t(dt_);
        t.reserve(steps);
        result.waveforms.push_back(std::move(t));
    }

    std::vector<double> src_vals(n_src);
    auto eval_sources = [&](double t) {
        for (std::size_t k = 0; k < n_src; ++k)
            src_vals[k] = waveforms[k](t);
    };

    // Initial condition: DC operating point at the bias currents
    // (typically the waveform means) so slow storage elements start
    // settled. Without an explicit bias, use the waveforms' t = 0
    // values: a state consistent with the constraints at the first
    // step avoids exciting the trapezoidal rule's marginal Nyquist
    // mode on storage-free node chains.
    eval_sources(0.0);

    auto &reg = metrics::Registry::instance();
    if (method_ == TransientMethod::FastState) {
        // Blocked execution through the same stepper the streaming
        // sinks use, with blocks aligned from step 1 and the
        // remainder as one tail call — the partition any sink
        // streaming `steps` samples produces, which is what keeps
        // batch and stream runs of one engine bit-identical. Raw
        // source values feed the precomputed injection images
        // directly: no per-step source-vector assembly, no
        // substitution, and one dense multi-step update per
        // kStreamBlock samples. The stepper flushes the step/
        // state-update/block counters itself on destruction.
        const std::size_t np = probe_idx.size();
        TransientBlockStepper bs(*this, bias_currents, src_vals,
                                 probe_idx);
        std::vector<double> in(kStreamBlock * n_src);
        std::vector<double> out(kStreamBlock * np);
        std::size_t step = 1;
        while (step <= steps) {
            const std::size_t count =
                std::min(kStreamBlock, steps - step + 1);
            for (std::size_t c = 0; c < count; ++c) {
                eval_sources(dt_ * static_cast<double>(step + c));
                std::copy(src_vals.begin(), src_vals.end(),
                          in.begin()
                              + static_cast<std::ptrdiff_t>(c
                                                            * n_src));
            }
            bs.stepBlock(in.data(), count, out.data());
            for (std::size_t c = 0; c < count; ++c)
                for (std::size_t p = 0; p < np; ++p)
                    result.waveforms[p].push(out[c * np + p]);
            step += count;
        }
        return result;
    }

    std::vector<double> x;
    {
        Matrix<double> a = mna_.g();
        LuSolver<double> lu(std::move(a));
        x = lu.solve(mna_.sourceVector(
            bias_currents.empty() ? std::span<const double>(src_vals)
                                  : bias_currents));
    }

    std::vector<double> s_prev = mna_.sourceVector(src_vals);
    std::vector<double> rhs(n);
    std::vector<double> s_now(n);
    for (std::size_t step = 1; step <= steps; ++step) {
        const double t = dt_ * static_cast<double>(step);
        eval_sources(t);
        mna_.sourceVectorInto(src_vals, s_now);

        // rhs: trapezoidal source average + history for dynamic
        // rows; the instantaneous source for algebraic rows.
        for (std::size_t r = 0; r < n; ++r) {
            double acc = algebraic_row_[r]
                ? s_now[r]
                : 0.5 * (s_prev[r] + s_now[r]);
            for (std::size_t c = 0; c < n; ++c)
                acc += rhs_mult_(r, c) * x[c];
            rhs[r] = acc;
        }
        lhs_->solveInto(rhs, x);
        s_prev.swap(s_now);

        for (std::size_t p = 0; p < probe_idx.size(); ++p)
            result.waveforms[p].push(x[probe_idx[p]]);
    }
    reg.add("circuit.transient.steps", steps);
    reg.add("circuit.transient.lu_solves", steps);
    return result;
}

TransientStepper
TransientAnalysis::makeStepper(
    std::span<const double> bias_currents,
    std::span<const double> initial_currents) const
{
    return TransientStepper(*this, bias_currents, initial_currents);
}

TransientStepper::TransientStepper(
    const TransientAnalysis &engine,
    std::span<const double> bias_currents,
    std::span<const double> initial_currents)
    : engine_(engine)
{
    const auto &mna = engine.mna_;
    // Single convention, mirroring run(): the DC point comes from
    // the bias (falling back to the initial values, then netlist DC
    // values); the trapezoidal source history starts at the initial
    // values (falling back to bias, then DC values).
    const std::span<const double> dc_at =
        bias_currents.empty() ? initial_currents : bias_currents;
    const std::span<const double> initial =
        initial_currents.empty() ? bias_currents : initial_currents;
    std::vector<double> x0;
    {
        Matrix<double> a = mna.g();
        LuSolver<double> lu(std::move(a));
        x0 = lu.solve(mna.sourceVector(dc_at));
    }

    if (engine.method_ == TransientMethod::FastState) {
        x_.assign(engine.cols_, 0.0);
        std::copy(x0.begin(), x0.end(), x_.begin());
        const std::span<const double> i0 = initial.empty()
            ? std::span<const double>(mna.currentSourceDcValues())
            : initial;
        std::copy(i0.begin(), i0.end(),
                  x_.begin() + static_cast<std::ptrdiff_t>(
                      engine.iprev_off_));
        x_[engine.one_idx_] = 1.0;
        x_next_.assign(engine.cols_, 0.0);
        x_next_[engine.one_idx_] = 1.0;
    } else {
        x_ = std::move(x0);
        s_prev_ = mna.sourceVector(initial);
        rhs_.resize(mna.size());
    }
}

TransientStepper::TransientStepper(TransientStepper &&other) noexcept
    : engine_(other.engine_), x_(std::move(other.x_)),
      x_next_(std::move(other.x_next_)),
      s_prev_(std::move(other.s_prev_)),
      s_now_(std::move(other.s_now_)), rhs_(std::move(other.rhs_)),
      time_(other.time_), steps_taken_(other.steps_taken_),
      pending_steps_(other.pending_steps_)
{
    // The moved-from shell must not double-flush on destruction.
    other.pending_steps_ = 0;
}

TransientStepper::~TransientStepper()
{
    flushMetrics();
}

void
TransientStepper::flushMetrics()
{
    if (pending_steps_ == 0)
        return;
    auto &reg = metrics::Registry::instance();
    reg.add("circuit.transient.steps", pending_steps_);
    reg.add(solveCounterFor(engine_.method_), pending_steps_);
    pending_steps_ = 0;
}

void
TransientStepper::step(std::span<const double> currents)
{
    if (engine_.method_ == TransientMethod::FastState) {
        requireSim(
            currents.size()
                == engine_.mna_.currentSourceNames().size(),
            "stepper: wrong number of current-source values");
        engine_.stateUpdateStep(x_.data(), currents, x_next_.data());
        x_.swap(x_next_);
    } else {
        const std::size_t n = engine_.mna_.size();
        // Reused buffers: a stepping loop makes tens of thousands of
        // calls per run, so the source/solve temporaries must not
        // allocate per step.
        engine_.mna_.sourceVectorInto(currents, s_now_);
        for (std::size_t r = 0; r < n; ++r) {
            double acc = engine_.algebraic_row_[r]
                ? s_now_[r]
                : 0.5 * (s_prev_[r] + s_now_[r]);
            for (std::size_t c = 0; c < n; ++c)
                acc += engine_.rhs_mult_(r, c) * x_[c];
            rhs_[r] = acc;
        }
        engine_.lhs_->solveInto(rhs_, x_);
        s_prev_.swap(s_now_);
    }
    time_ += engine_.dt_;
    ++steps_taken_;
    ++pending_steps_;
}

double
TransientStepper::value(std::size_t state_index) const
{
    requireSim(state_index < engine_.mna_.size(),
               "stepper state index out of range");
    return x_[state_index];
}

TransientBlockStepper
TransientAnalysis::makeBlockStepper(
    std::span<const double> bias_currents,
    std::span<const double> initial_currents,
    std::span<const std::size_t> probe_indices) const
{
    requireConfig(method_ == TransientMethod::FastState,
                  "blocked stream stepper requires the state-update "
                  "path");
    return TransientBlockStepper(*this, bias_currents,
                                 initial_currents, probe_indices);
}

TransientBlockStepper::TransientBlockStepper(
    const TransientAnalysis &engine,
    std::span<const double> bias_currents,
    std::span<const double> initial_currents,
    std::span<const std::size_t> probe_indices)
    : engine_(engine), xpad_(engine.xpad_),
      n_src_(engine.mna_.currentSourceNames().size()),
      np_(probe_indices.size()),
      probes_(probe_indices.begin(), probe_indices.end())
{
    constexpr std::size_t k = kStreamBlock;
    const std::size_t n = engine.mna_.size();
    for (const std::size_t p : probes_)
        requireConfig(p < n, "block stepper probe index out of range");
    q_ = engine.q_;
    const std::size_t one_col = xpad_ + n_src_;

    // W: the probe rows of every engine transition power stacked, so
    // one mat-vec against S yields all of a block's probe outputs at
    // once.
    wrows_ = (k * np_ + 3) & ~std::size_t{3};
    if (np_ > 0) {
        w_.assign(wrows_ * q_, 0.0);
        for (std::size_t j = 1; j <= k; ++j)
            for (std::size_t p = 0; p < np_; ++p)
                for (std::size_t c = 0; c < q_; ++c)
                    w_[c * wrows_ + (j - 1) * np_ + p] =
                        engine.tpow_[(j - 1) * q_ * xpad_ + c * xpad_
                                     + probes_[p]];
    }
    ybuf_.assign(wrows_, 0.0);

    // Probe/input couplings (T^{j-1-m} B)[p][s] in stepBlock's
    // consumption order (j, m, p, s).
    pg_.reserve(k * (k + 1) / 2 * np_ * n_src_);
    for (std::size_t j = 1; j <= k; ++j)
        for (std::size_t m = 0; m < j; ++m)
            for (std::size_t p = 0; p < np_; ++p)
                for (std::size_t s = 0; s < n_src_; ++s)
                    pg_.push_back(
                        engine.gpow_[(j - 1 - m) * n_src_ * xpad_
                                     + s * xpad_ + probes_[p]]);

    // Initial state, mirroring TransientStepper exactly: DC point at
    // the bias (falling back to initial, then netlist DC values),
    // source history from the initial values.
    const std::span<const double> dc_at =
        bias_currents.empty() ? initial_currents : bias_currents;
    const std::span<const double> initial =
        initial_currents.empty() ? bias_currents : initial_currents;
    std::vector<double> x0;
    {
        Matrix<double> a = engine.mna_.g();
        LuSolver<double> lu(std::move(a));
        x0 = lu.solve(engine.mna_.sourceVector(dc_at));
    }
    s_.assign(q_, 0.0);
    std::copy(x0.begin(), x0.end(), s_.begin());
    const std::span<const double> i0 = initial.empty()
        ? std::span<const double>(
              engine.mna_.currentSourceDcValues())
        : initial;
    std::copy(i0.begin(), i0.end(),
              s_.begin() + static_cast<std::ptrdiff_t>(xpad_));
    s_[one_col] = 1.0;
    s_next_.assign(q_, 0.0);
}

TransientBlockStepper::TransientBlockStepper(
    TransientBlockStepper &&other) noexcept
    : engine_(other.engine_), xpad_(other.xpad_),
      n_src_(other.n_src_), q_(other.q_), np_(other.np_),
      wrows_(other.wrows_), probes_(std::move(other.probes_)),
      w_(std::move(other.w_)), pg_(std::move(other.pg_)),
      s_(std::move(other.s_)), s_next_(std::move(other.s_next_)),
      ybuf_(std::move(other.ybuf_)), time_(other.time_),
      steps_taken_(other.steps_taken_),
      pending_steps_(other.pending_steps_),
      pending_blocks_(other.pending_blocks_)
{
    other.pending_steps_ = 0;
    other.pending_blocks_ = 0;
}

TransientBlockStepper::~TransientBlockStepper()
{
    flushMetrics();
}

void
TransientBlockStepper::flushMetrics()
{
    if (pending_steps_ == 0 && pending_blocks_ == 0)
        return;
    auto &reg = metrics::Registry::instance();
    reg.add("circuit.transient.steps", pending_steps_);
    reg.add("circuit.transient.state_updates", pending_steps_);
    reg.add("circuit.transient.stream_blocks", pending_blocks_);
    pending_steps_ = 0;
    pending_blocks_ = 0;
}

void
TransientBlockStepper::stepBlock(const double *currents,
                                 std::size_t count, double *probe_out)
{
    constexpr std::size_t k = kStreamBlock;
    requireSim(count >= 1 && count <= k,
               "stepBlock count must be 1..kStreamBlock");
    const std::size_t one_col = xpad_ + n_src_;
    if (count == k) {
        // All probe outputs of the block in one mat-vec, then the
        // triangle of input corrections in the same (j, m, p, s)
        // order the pg_ table was built in.
        if (np_ > 0) {
            matVecAxpy(w_.data(), s_.data(), ybuf_.data(), wrows_,
                       q_);
            const double *pg = pg_.data();
            for (std::size_t j = 1; j <= k; ++j)
                for (std::size_t m = 0; m < j; ++m)
                    for (std::size_t p = 0; p < np_; ++p)
                        for (std::size_t s = 0; s < n_src_; ++s)
                            ybuf_[(j - 1) * np_ + p] +=
                                *pg++ * currents[m * n_src_ + s];
            std::copy(ybuf_.begin(),
                      ybuf_.begin()
                          + static_cast<std::ptrdiff_t>(k * np_),
                      probe_out);
        }
        // State: S' = T^k S + sum_m G_{k-1-m} u_m, inputs applied in
        // the same ascending-m order as the probe corrections so the
        // block's last output bit-matches the new state.
        matVecAxpy(engine_.tpow_.data() + (k - 1) * q_ * xpad_,
                   s_.data(), s_next_.data(), xpad_, q_);
        for (std::size_t m = 0; m < k; ++m)
            for (std::size_t s = 0; s < n_src_; ++s) {
                const double coef = currents[m * n_src_ + s];
                const double *__restrict col = engine_.gpow_.data()
                    + (k - 1 - m) * n_src_ * xpad_ + s * xpad_;
                double *__restrict out = s_next_.data();
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += col[r] * coef;
            }
        for (std::size_t s = 0; s < n_src_; ++s)
            s_next_[xpad_ + s] = currents[(k - 1) * n_src_ + s];
        s_next_[one_col] = 1.0;
        s_.swap(s_next_);
        ++pending_blocks_;
    } else {
        // Stream tail: plain per-step updates against T and G_0,
        // probes read straight from the advanced state.
        for (std::size_t c = 0; c < count; ++c) {
            matVecAxpy(engine_.tpow_.data(), s_.data(),
                       s_next_.data(), xpad_, q_);
            for (std::size_t s = 0; s < n_src_; ++s) {
                const double coef = currents[c * n_src_ + s];
                const double *__restrict col =
                    engine_.gpow_.data() + s * xpad_;
                double *__restrict out = s_next_.data();
                for (std::size_t r = 0; r < xpad_; ++r)
                    out[r] += col[r] * coef;
            }
            for (std::size_t s = 0; s < n_src_; ++s)
                s_next_[xpad_ + s] = currents[c * n_src_ + s];
            s_next_[one_col] = 1.0;
            s_.swap(s_next_);
            for (std::size_t p = 0; p < np_; ++p)
                probe_out[c * np_ + p] = s_[probes_[p]];
        }
    }
    time_ += engine_.dt_ * static_cast<double>(count);
    steps_taken_ += count;
    pending_steps_ += count;
}

} // namespace circuit
} // namespace emstress
