/**
 * @file
 * Dense linear algebra for the circuit engine: a small row-major
 * matrix type and LU factorization with partial pivoting, templated
 * over double (transient analysis) and std::complex<double> (AC
 * analysis). MNA systems here are tiny (tens of unknowns), so a dense
 * solver is the right tool.
 */

#ifndef EMSTRESS_CIRCUIT_LINALG_H
#define EMSTRESS_CIRCUIT_LINALG_H

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.h"

namespace emstress {
namespace circuit {

/** Magnitude helper usable for both real and complex scalars. */
inline double scalarAbs(double x) { return std::abs(x); }
/** @copydoc scalarAbs(double) */
inline double scalarAbs(const std::complex<double> &x)
{
    return std::abs(x);
}

/**
 * Dense row-major square-capable matrix of scalar type T.
 */
template <typename T>
class Matrix
{
  public:
    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{})
    {}

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }

    /** Element access. */
    T &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    /** Const element access. */
    const T &operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Reset all elements to zero. */
    void
    setZero()
    {
        std::fill(data_.begin(), data_.end(), T{});
    }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<T> data_;
};

/**
 * LU factorization with partial pivoting of a square matrix,
 * supporting repeated solves against the same factored system (the
 * transient loop factors once per timestep size and solves thousands
 * of right-hand sides).
 */
template <typename T>
class LuSolver
{
  public:
    /**
     * Factor a square matrix.
     * @throws SimulationError when the matrix is singular.
     */
    explicit LuSolver(Matrix<T> a)
        : lu_(std::move(a)), perm_(lu_.rows())
    {
        requireSim(lu_.rows() == lu_.cols(),
                   "LU factorization requires a square matrix");
        factor();
    }

    /** System dimension. */
    std::size_t size() const { return lu_.rows(); }

    /**
     * Solve A x = b for one right-hand side.
     * @param b Right-hand side of length size().
     * @return Solution vector x.
     */
    std::vector<T>
    solve(const std::vector<T> &b) const
    {
        std::vector<T> x;
        solveInto(b, x);
        return x;
    }

    /**
     * Solve A x = b into a caller-owned vector, so a stepping loop
     * can reuse its buffers instead of allocating per step. b and x
     * must be distinct vectors; x is resized to size().
     */
    void
    solveInto(const std::vector<T> &b, std::vector<T> &x) const
    {
        requireSim(b.size() == size(), "LU solve: rhs dimension mismatch");
        requireSim(&b != &x, "LU solveInto: aliased rhs and solution");
        const std::size_t n = size();
        x.resize(n);
        // Apply permutation, forward substitution (L has unit diagonal).
        for (std::size_t i = 0; i < n; ++i) {
            T s = b[perm_[i]];
            for (std::size_t j = 0; j < i; ++j)
                s -= lu_(i, j) * x[j];
            x[i] = s;
        }
        // Back substitution with U.
        for (std::size_t ii = n; ii-- > 0;) {
            T s = x[ii];
            for (std::size_t j = ii + 1; j < n; ++j)
                s -= lu_(ii, j) * x[j];
            x[ii] = s / lu_(ii, ii);
        }
    }

  private:
    void
    factor()
    {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            perm_[i] = i;
        for (std::size_t k = 0; k < n; ++k) {
            // Partial pivot: largest magnitude in column k at/below k.
            std::size_t piv = k;
            double best = scalarAbs(lu_(k, k));
            for (std::size_t r = k + 1; r < n; ++r) {
                const double m = scalarAbs(lu_(r, k));
                if (m > best) {
                    best = m;
                    piv = r;
                }
            }
            requireSim(best > 1e-300,
                       "singular MNA matrix (floating node or "
                       "inconsistent netlist?)");
            if (piv != k) {
                for (std::size_t c = 0; c < n; ++c)
                    std::swap(lu_(k, c), lu_(piv, c));
                std::swap(perm_[k], perm_[piv]);
            }
            for (std::size_t r = k + 1; r < n; ++r) {
                const T f = lu_(r, k) / lu_(k, k);
                lu_(r, k) = f;
                for (std::size_t c = k + 1; c < n; ++c)
                    lu_(r, c) -= f * lu_(k, c);
            }
        }
    }

    Matrix<T> lu_;
    std::vector<std::size_t> perm_;
};

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_LINALG_H
