/**
 * @file
 * Circuit netlist description: nodes, passive elements (R, L, C) and
 * sources (independent current and voltage). The netlist is a pure
 * description; analyses live in mna.h / transient.h / ac.h.
 */

#ifndef EMSTRESS_CIRCUIT_NETLIST_H
#define EMSTRESS_CIRCUIT_NETLIST_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace emstress {
namespace circuit {

/** Node identifier; kGround (0) is the reference node. */
using NodeId = std::size_t;

/** The reference node, fixed at 0 volts. */
inline constexpr NodeId kGround = 0;

/** Element categories supported by the engine. */
enum class ElementKind
{
    Resistor,
    Capacitor,
    Inductor,
    CurrentSource, ///< Independent; waveform supplied at analysis time.
    VoltageSource, ///< Independent DC source (supply rail).
};

/** One netlist element connecting two nodes. */
struct Element
{
    ElementKind kind;
    std::string name;   ///< Unique diagnostic name, e.g. "L_pkg".
    NodeId node_pos;    ///< Positive terminal.
    NodeId node_neg;    ///< Negative terminal.
    double value;       ///< Ohms, farads, henries, amps or volts.
};

/**
 * A circuit as a set of named elements over numbered nodes.
 *
 * Usage: create nodes with newNode(), then add elements between them.
 * Current sources are placeholders whose instantaneous value is
 * supplied per-timestep by the transient analysis (this is how the CPU
 * load current and the SCL injector drive the PDN).
 */
class Netlist
{
  public:
    /** Netlist with only the ground node. */
    Netlist() : node_count_(1) {}

    /** Allocate a fresh node and return its id. */
    NodeId
    newNode()
    {
        return node_count_++;
    }

    /** Number of nodes including ground. */
    std::size_t nodeCount() const { return node_count_; }

    /** Add a resistor of r ohms. @pre r > 0. */
    void
    addResistor(const std::string &name, NodeId a, NodeId b, double r)
    {
        requireConfig(r > 0.0, "resistor " + name + " must be positive");
        addElement({ElementKind::Resistor, name, a, b, r});
    }

    /** Add a capacitor of c farads. @pre c > 0. */
    void
    addCapacitor(const std::string &name, NodeId a, NodeId b, double c)
    {
        requireConfig(c > 0.0, "capacitor " + name + " must be positive");
        addElement({ElementKind::Capacitor, name, a, b, c});
    }

    /** Add an inductor of l henries. @pre l > 0. */
    void
    addInductor(const std::string &name, NodeId a, NodeId b, double l)
    {
        requireConfig(l > 0.0, "inductor " + name + " must be positive");
        addElement({ElementKind::Inductor, name, a, b, l});
    }

    /**
     * Add an independent current source driving current from node a
     * through the source to node b (current value set per analysis).
     */
    void
    addCurrentSource(const std::string &name, NodeId a, NodeId b,
                     double dc_amps = 0.0)
    {
        addElement({ElementKind::CurrentSource, name, a, b, dc_amps});
    }

    /** Add an independent DC voltage source of v volts (a to b). */
    void
    addVoltageSource(const std::string &name, NodeId a, NodeId b,
                     double v)
    {
        addElement({ElementKind::VoltageSource, name, a, b, v});
    }

    /** All elements in insertion order. */
    const std::vector<Element> &elements() const { return elements_; }

    /** Find an element index by name. @throws ConfigError if absent. */
    std::size_t
    elementIndex(const std::string &name) const
    {
        for (std::size_t i = 0; i < elements_.size(); ++i)
            if (elements_[i].name == name)
                return i;
        throw ConfigError("no element named " + name);
    }

    /** Mutable access to one element's value (e.g. retune a decap). */
    void
    setValue(const std::string &name, double value)
    {
        elements_[elementIndex(name)].value = value;
    }

  private:
    void
    addElement(Element e)
    {
        requireConfig(e.node_pos < node_count_ && e.node_neg < node_count_,
                      "element " + e.name + " references unknown node");
        requireConfig(e.node_pos != e.node_neg,
                      "element " + e.name + " shorts a node to itself");
        for (const auto &existing : elements_)
            requireConfig(existing.name != e.name,
                          "duplicate element name " + e.name);
        elements_.push_back(std::move(e));
    }

    std::size_t node_count_;
    std::vector<Element> elements_;
};

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_NETLIST_H
