/**
 * @file
 * Small-signal AC analysis: solve (G + jwC) X = S over a frequency
 * grid. Used to compute the PDN input impedance spectrum (Fig. 1(b))
 * and the antenna port reflection coefficient (Fig. 6).
 */

#ifndef EMSTRESS_CIRCUIT_AC_H
#define EMSTRESS_CIRCUIT_AC_H

#include <complex>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"

namespace emstress {
namespace circuit {

/** Result of an AC sweep observed at one node. */
struct AcSweepResult
{
    std::vector<double> freqs_hz;
    std::vector<std::complex<double>> values; ///< Complex response.

    /** Magnitudes of the complex responses. */
    std::vector<double> magnitudes() const;
};

/**
 * Frequency-domain solver over an MNA system.
 */
class AcAnalysis
{
  public:
    /** Prepare from a netlist (voltage sources become AC grounds). */
    explicit AcAnalysis(const Netlist &netlist);

    /**
     * Drive a unit AC current into `node` (out of ground) and return
     * the complex voltage observed at `node` for each frequency: the
     * input impedance Z(f) seen from that node.
     */
    AcSweepResult inputImpedance(NodeId node,
                                 const std::vector<double> &freqs_hz) const;

    /**
     * Generic transfer: unit AC current into drive_node, observe the
     * complex voltage at observe_node.
     */
    AcSweepResult transferImpedance(NodeId drive_node, NodeId observe_node,
                                    const std::vector<double> &freqs_hz)
        const;

  private:
    MnaSystem mna_;
};

/**
 * Build a logarithmically spaced frequency grid.
 * @param f_lo Points start here (inclusive).
 * @param f_hi End frequency (inclusive).
 * @param points Number of grid points; at least 2.
 */
std::vector<double> logFrequencyGrid(double f_lo, double f_hi,
                                     std::size_t points);

/** Linearly spaced frequency grid, inclusive of both ends. */
std::vector<double> linFrequencyGrid(double f_lo, double f_hi,
                                     std::size_t points);

} // namespace circuit
} // namespace emstress

#endif // EMSTRESS_CIRCUIT_AC_H
