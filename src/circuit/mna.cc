/**
 * @file
 * MNA assembly implementation.
 */

#include "circuit/mna.h"

#include <span>

#include "util/error.h"

namespace emstress {
namespace circuit {

MnaSystem::MnaSystem(const Netlist &netlist)
    : size_(0), num_nodes_(netlist.nodeCount() - 1), g_(0, 0), c_(0, 0)
{
    // First pass: count branch unknowns (inductors + voltage sources).
    std::size_t branches = 0;
    for (const auto &e : netlist.elements()) {
        if (e.kind == ElementKind::Inductor
            || e.kind == ElementKind::VoltageSource) {
            ++branches;
        }
    }
    size_ = num_nodes_ + branches;
    g_ = Matrix<double>(size_, size_);
    c_ = Matrix<double>(size_, size_);
    dc_source_.assign(size_, 0.0);
    vs_source_.assign(size_, 0.0);

    // Stamp helper: add conductance-like entry between two nodes,
    // skipping ground rows/columns.
    auto stamp_pair = [&](Matrix<double> &m, NodeId a, NodeId b,
                          double v) {
        if (a != kGround)
            m(node_index(a), node_index(a)) += v;
        if (b != kGround)
            m(node_index(b), node_index(b)) += v;
        if (a != kGround && b != kGround) {
            m(node_index(a), node_index(b)) -= v;
            m(node_index(b), node_index(a)) -= v;
        }
    };

    std::size_t next_branch = num_nodes_;
    for (const auto &e : netlist.elements()) {
        switch (e.kind) {
          case ElementKind::Resistor:
            stamp_pair(g_, e.node_pos, e.node_neg, 1.0 / e.value);
            break;
          case ElementKind::Capacitor:
            stamp_pair(c_, e.node_pos, e.node_neg, e.value);
            break;
          case ElementKind::Inductor: {
            const std::size_t m = next_branch++;
            branch_names_.push_back(e.name);
            // Branch current enters KCL of both terminals.
            if (e.node_pos != kGround)
                g_(node_index(e.node_pos), m) += 1.0;
            if (e.node_neg != kGround)
                g_(node_index(e.node_neg), m) -= 1.0;
            // Branch equation: v_pos - v_neg - L di/dt = 0.
            if (e.node_pos != kGround)
                g_(m, node_index(e.node_pos)) += 1.0;
            if (e.node_neg != kGround)
                g_(m, node_index(e.node_neg)) -= 1.0;
            c_(m, m) -= e.value;
            break;
          }
          case ElementKind::VoltageSource: {
            const std::size_t m = next_branch++;
            branch_names_.push_back(e.name);
            if (e.node_pos != kGround)
                g_(node_index(e.node_pos), m) += 1.0;
            if (e.node_neg != kGround)
                g_(node_index(e.node_neg), m) -= 1.0;
            // Branch equation: v_pos - v_neg = V.
            if (e.node_pos != kGround)
                g_(m, node_index(e.node_pos)) += 1.0;
            if (e.node_neg != kGround)
                g_(m, node_index(e.node_neg)) -= 1.0;
            dc_source_[m] = e.value;
            vs_source_[m] = e.value;
            break;
          }
          case ElementKind::CurrentSource: {
            current_source_names_.push_back(e.name);
            current_source_dc_values_.push_back(e.value);
            std::vector<Injection> rows;
            // Source drives current from node_pos to node_neg
            // internally, i.e. it removes current from node_pos.
            if (e.node_pos != kGround)
                rows.push_back({node_index(e.node_pos), -1.0});
            if (e.node_neg != kGround)
                rows.push_back({node_index(e.node_neg), 1.0});
            current_source_rows_.push_back(std::move(rows));
            for (const auto &inj : current_source_rows_.back())
                dc_source_[inj.row] += inj.sign * e.value;
            break;
          }
        }
    }
}

std::size_t
MnaSystem::stateIndexOfNode(NodeId node) const
{
    requireConfig(node != kGround,
                  "ground voltage is identically zero; no state index");
    requireConfig(node - 1 < num_nodes_, "node id out of range");
    return node_index(node);
}

std::size_t
MnaSystem::stateIndexOfBranch(const std::string &element_name) const
{
    for (std::size_t i = 0; i < branch_names_.size(); ++i)
        if (branch_names_[i] == element_name)
            return num_nodes_ + i;
    throw ConfigError("no branch-current unknown for element "
                      + element_name);
}

std::vector<double>
MnaSystem::sourceVector(std::span<const double> current_values) const
{
    if (current_values.empty())
        return dc_source_;
    requireSim(current_values.size() == current_source_rows_.size(),
               "sourceVector: wrong number of current-source values");
    // Instantaneous values replace the sources' DC values, so build
    // from the voltage-source-only baseline.
    std::vector<double> s(vs_source_);
    for (std::size_t k = 0; k < current_source_rows_.size(); ++k)
        for (const auto &inj : current_source_rows_[k])
            s[inj.row] += inj.sign * current_values[k];
    return s;
}

void
MnaSystem::sourceVectorInto(std::span<const double> current_values,
                            std::vector<double> &out) const
{
    if (current_values.empty()) {
        out = dc_source_;
        return;
    }
    requireSim(current_values.size() == current_source_rows_.size(),
               "sourceVector: wrong number of current-source values");
    out = vs_source_;
    for (std::size_t k = 0; k < current_source_rows_.size(); ++k)
        for (const auto &inj : current_source_rows_[k])
            out[inj.row] += inj.sign * current_values[k];
}

std::vector<double>
MnaSystem::dcOperatingPoint() const
{
    // At DC, inductors become shorts via their branch equations with
    // the L di/dt term dropped, and capacitors drop out of G entirely,
    // so solving G x = s_dc is exactly the DC solution.
    Matrix<double> a = g_;
    LuSolver<double> lu(std::move(a));
    return lu.solve(dc_source_);
}

} // namespace circuit
} // namespace emstress
