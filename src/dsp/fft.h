/**
 * @file
 * Radix-2 iterative Fast Fourier Transform. Implemented from scratch
 * (no external DSP dependency) because spectrum computation is on the
 * hot path of every simulated spectrum-analyzer measurement.
 */

#ifndef EMSTRESS_DSP_FFT_H
#define EMSTRESS_DSP_FFT_H

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace emstress {
namespace dsp {

/** True when n is a power of two (and non-zero). */
bool isPowerOfTwo(std::size_t n);

/** Smallest power of two >= n. @pre n >= 1. */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * In-place radix-2 decimation-in-time FFT.
 * @param data Complex samples; size must be a power of two.
 * @param inverse When true computes the inverse transform including
 *                the 1/N normalization.
 */
void fftInPlace(std::vector<std::complex<double>> &data,
                bool inverse = false);

/**
 * Forward FFT of a real signal, zero-padded to the next power of two.
 * @return Complex spectrum of length nextPowerOfTwo(signal.size()).
 */
std::vector<std::complex<double>> fftReal(std::span<const double> signal);

/**
 * Inverse FFT returning the real part of the time-domain result.
 * @param spectrum Complex spectrum; size must be a power of two.
 */
std::vector<double>
ifftToReal(std::vector<std::complex<double>> spectrum);

} // namespace dsp
} // namespace emstress

#endif // EMSTRESS_DSP_FFT_H
