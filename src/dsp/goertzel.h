/**
 * @file
 * Goertzel detector bank: streaming evaluation of a selected set of
 * DFT bins. Where computeSpectrum() stores the whole capture and runs
 * an FFT over every bin, a Goertzel bank updates one second-order
 * recurrence per watched bin as samples arrive — the shape of a real
 * spectrum analyzer's narrowband detector, and O(bins) memory instead
 * of O(duration).
 *
 * The bank replicates computeSpectrum()'s calibration exactly: bins
 * sit on the grid f_k = (sample_rate / nextPowerOfTwo(n)) * k, the
 * input is windowed, the DC mean is removed, and amplitudes are
 * scaled by sqrt(2) / (n * coherent_gain) to volts RMS. Mean removal
 * is folded in after the fact via the precomputed window DFT: with
 * Z(a) = sum_i a[i] e^{-j w i},
 *
 *     Z((x - m) .* w) = Z(x .* w) - m * Z(w),
 *
 * so one streaming pass accumulates Z(x .* w) per bin plus the plain
 * sum of x, and the batch-identical mean correction happens at
 * read-out. Agreement with the FFT path is limited only by the
 * recurrence's rounding (~1e-12 relative for the capture lengths
 * used here, orders below the 1e-6 dB parity budget).
 */

#ifndef EMSTRESS_DSP_GOERTZEL_H
#define EMSTRESS_DSP_GOERTZEL_H

#include <array>
#include <cstddef>
#include <vector>

#include "dsp/window.h"
#include "util/hotpath.h"

namespace emstress {
namespace dsp {

/**
 * Immutable description of a Goertzel bank: which FFT-grid bins of an
 * n-sample windowed capture fall inside [f_lo, f_hi], plus the
 * per-bin recurrence coefficients and the window's own DFT values
 * needed for mean correction. Build once per (n, band) pair and share
 * across accumulators.
 */
class GoertzelBank
{
  public:
    /**
     * @param n              Number of input samples each accumulator
     *                       will consume (the batch capture length).
     * @param sample_rate_hz Input sample rate.
     * @param f_lo, f_hi     Band of interest; bins with grid
     *                       frequency inside [f_lo, f_hi] are watched
     *                       (same comparisons as maxPeakInBand).
     * @param window         Window kind, matching the batch spectrum.
     */
    GoertzelBank(std::size_t n, double sample_rate_hz, double f_lo,
                 double f_hi, WindowKind window);

    /** Samples each accumulator must consume. */
    std::size_t inputSize() const { return n_; }

    /** Number of watched bins. */
    std::size_t size() const { return freq_.size(); }

    /** FFT zero-padded length the bin grid derives from. */
    std::size_t nfft() const { return nfft_; }

    /** Bin spacing [Hz], identical to Spectrum::binWidth(). */
    double binWidthHz() const { return df_; }

    /** Grid frequency of watched bin i [Hz]. */
    double freqHz(std::size_t i) const { return freq_[i]; }

    /** FFT bin index of watched bin i. */
    std::size_t binIndex(std::size_t i) const { return k_[i]; }

    /** Window coefficient for input sample index i. */
    double windowAt(std::size_t i) const { return win_[i]; }

  private:
    friend class GoertzelAccumulator;

    std::size_t n_;
    std::size_t nfft_;
    double df_;
    double scale_; ///< sqrt(2) / (n * coherent_gain).
    std::vector<double> win_;

    // Watched bins, struct-of-arrays so the per-sample update loop
    // vectorizes.
    std::vector<std::size_t> k_;
    std::vector<double> freq_;
    std::vector<double> coeff_; ///< 2 cos(w_k).
    std::vector<double> cosw_;
    std::vector<double> sinw_;
    std::vector<double> win_re_; ///< Re Z(w) at bin k.
    std::vector<double> win_im_; ///< Im Z(w) at bin k.
};

/**
 * Per-stream Goertzel state: one (s1, s2) pair per watched bin plus
 * the running input sum for mean correction. push() each of the
 * bank's inputSize() samples, then read amplitudesVrms().
 */
class GoertzelAccumulator
{
  public:
    /** The bank must outlive the accumulator. */
    explicit GoertzelAccumulator(const GoertzelBank &bank);

    /** Consume the next input sample. */
    void push(double v);

    /** Samples consumed so far. */
    std::size_t count() const { return count_; }

    /**
     * Mean-corrected band amplitudes in volts RMS, one per watched
     * bin, matching computeSpectrum().amps_vrms at the same bins
     * (bin 0, when watched, reports 0 like the batch DC rule).
     * @pre exactly inputSize() samples have been pushed.
     */
    std::vector<double> amplitudesVrms() const;

  private:
    /**
     * Run the buffered windowed samples through every bin. Cloned
     * per ISA width (lanes are independent bins, so every clone is
     * bit-identical; see util/hotpath.h).
     */
    EMSTRESS_TARGET_CLONES void flushBlock();

    // Samples are buffered in small blocks so each bin's (s1, s2)
    // pair is loaded once per block instead of once per sample; the
    // per-bin update sequence is unchanged, so results stay bit-exact
    // with the sample-at-a-time recurrence.
    static constexpr std::size_t kBlock = 16;

    const GoertzelBank &bank_;
    std::vector<double> s1_;
    std::vector<double> s2_;
    std::array<double, kBlock> buf_{};
    std::size_t buf_n_ = 0;
    double sum_ = 0.0;
    std::size_t count_ = 0;
};

} // namespace dsp
} // namespace emstress

#endif // EMSTRESS_DSP_GOERTZEL_H
