/**
 * @file
 * Window function implementations.
 */

#include "dsp/window.h"

#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace dsp {

std::string
windowName(WindowKind kind)
{
    switch (kind) {
      case WindowKind::Rectangular: return "rectangular";
      case WindowKind::Hann:        return "hann";
      case WindowKind::Hamming:     return "hamming";
      case WindowKind::Blackman:    return "blackman";
      case WindowKind::FlatTop:     return "flattop";
    }
    return "unknown";
}

std::vector<double>
makeWindow(WindowKind kind, std::size_t n)
{
    std::vector<double> w(n, 1.0);
    if (n <= 1)
        return w;
    const double denom = static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = kTwoPi * static_cast<double>(i) / denom;
        switch (kind) {
          case WindowKind::Rectangular:
            w[i] = 1.0;
            break;
          case WindowKind::Hann:
            w[i] = 0.5 - 0.5 * std::cos(x);
            break;
          case WindowKind::Hamming:
            w[i] = 0.54 - 0.46 * std::cos(x);
            break;
          case WindowKind::Blackman:
            w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
            break;
          case WindowKind::FlatTop:
            // SRS flat-top coefficients.
            w[i] = 1.0
                - 1.93  * std::cos(x)
                + 1.29  * std::cos(2.0 * x)
                - 0.388 * std::cos(3.0 * x)
                + 0.0322 * std::cos(4.0 * x);
            break;
        }
    }
    return w;
}

double
coherentGain(WindowKind kind, std::size_t n)
{
    requireConfig(n > 0, "coherentGain of empty window");
    const auto w = makeWindow(kind, n);
    double s = 0.0;
    for (double v : w)
        s += v;
    return s / static_cast<double>(n);
}

} // namespace dsp
} // namespace emstress
