/**
 * @file
 * Radix-2 FFT implementation.
 */

#include "dsp/fft.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace dsp {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

namespace {

/** Bit-reversal permutation preceding the butterfly passes. */
void
bitReverse(std::vector<std::complex<double>> &data)
{
    const std::size_t n = data.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

} // namespace

void
fftInPlace(std::vector<std::complex<double>> &data, bool inverse)
{
    const std::size_t n = data.size();
    requireConfig(isPowerOfTwo(n), "FFT length must be a power of two");
    if (n <= 1)
        return;

    bitReverse(data);

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = (inverse ? 1.0 : -1.0) * kTwoPi
            / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[i + k];
                const std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv_n;
    }
}

std::vector<std::complex<double>>
fftReal(std::span<const double> signal)
{
    const std::size_t n = nextPowerOfTwo(std::max<std::size_t>(
        signal.size(), 1));
    std::vector<std::complex<double>> data(n);
    for (std::size_t i = 0; i < signal.size(); ++i)
        data[i] = std::complex<double>(signal[i], 0.0);
    fftInPlace(data, false);
    return data;
}

std::vector<double>
ifftToReal(std::vector<std::complex<double>> spectrum)
{
    fftInPlace(spectrum, true);
    std::vector<double> out(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        out[i] = spectrum[i].real();
    return out;
}

} // namespace dsp
} // namespace emstress
