/**
 * @file
 * Window functions for spectral analysis. A spectrum analyzer's
 * resolution-bandwidth filter is modeled by windowing the capture
 * before the FFT; different windows trade main-lobe width against
 * side-lobe leakage.
 */

#ifndef EMSTRESS_DSP_WINDOW_H
#define EMSTRESS_DSP_WINDOW_H

#include <cstddef>
#include <string>
#include <vector>

namespace emstress {
namespace dsp {

/** Supported window shapes. */
enum class WindowKind
{
    Rectangular, ///< No taper; best resolution, worst leakage.
    Hann,        ///< General-purpose raised cosine.
    Hamming,     ///< Slightly lower first side-lobe than Hann.
    Blackman,    ///< Wide main lobe, very low leakage.
    FlatTop,     ///< Amplitude-accurate, used for level measurements.
};

/** Human-readable name of a window kind. */
std::string windowName(WindowKind kind);

/**
 * Generate window coefficients.
 * @param kind Window shape.
 * @param n    Number of samples; returns empty for n == 0.
 */
std::vector<double> makeWindow(WindowKind kind, std::size_t n);

/**
 * Coherent gain of a window (mean coefficient value): the factor by
 * which a windowed sinusoid's spectral peak is attenuated. Spectrum
 * amplitudes are divided by this to restore calibrated levels.
 */
double coherentGain(WindowKind kind, std::size_t n);

} // namespace dsp
} // namespace emstress

#endif // EMSTRESS_DSP_WINDOW_H
