/**
 * @file
 * Goertzel bank implementation.
 */

#include "dsp/goertzel.h"

#include <cmath>

#include "dsp/fft.h"
#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace dsp {

GoertzelBank::GoertzelBank(std::size_t n, double sample_rate_hz,
                           double f_lo, double f_hi, WindowKind window)
    : n_(n), nfft_(nextPowerOfTwo(n))
{
    requireConfig(n >= 4, "GoertzelBank needs at least 4 samples");
    requireConfig(sample_rate_hz > 0.0,
                  "GoertzelBank sample rate must be positive");
    requireConfig(f_hi >= f_lo, "GoertzelBank band is inverted");

    win_ = makeWindow(window, n);
    const double gain = coherentGain(window, n);
    scale_ = std::sqrt(2.0) / (static_cast<double>(n) * gain);
    df_ = sample_rate_hz / static_cast<double>(nfft_);

    // Same bin walk and float comparisons as maxPeakInBand over the
    // batch spectrum's [0, nfft/2) grid.
    const std::size_t half = nfft_ / 2;
    for (std::size_t k = 0; k < half; ++k) {
        const double f = df_ * static_cast<double>(k);
        if (f < f_lo || f > f_hi)
            continue;
        const double w = kTwoPi * static_cast<double>(k)
            / static_cast<double>(nfft_);
        k_.push_back(k);
        freq_.push_back(f);
        coeff_.push_back(2.0 * std::cos(w));
        cosw_.push_back(std::cos(w));
        sinw_.push_back(std::sin(w));
    }

    // Precompute the window's own DFT at the watched bins with the
    // same recurrence the accumulator runs, so the mean correction
    // shares the streaming path's rounding behaviour.
    const std::size_t m = k_.size();
    std::vector<double> s1(m, 0.0);
    std::vector<double> s2(m, 0.0);
    {
        // Same two-sample sweep as GoertzelAccumulator::flushBlock —
        // banks are rebuilt per capture geometry, so this loop is as
        // hot as the streaming update itself.
        const double *__restrict w = win_.data();
        const double *__restrict c = coeff_.data();
        double *__restrict p1 = s1.data();
        double *__restrict p2 = s2.data();
        std::size_t i = 0;
        for (; i + 1 < n; i += 2) {
            const double a0 = w[i];
            const double a1 = w[i + 1];
            for (std::size_t b = 0; b < m; ++b) {
                const double x0 = a0 + c[b] * p1[b] - p2[b];
                const double x1 = a1 + c[b] * x0 - p1[b];
                p2[b] = x0;
                p1[b] = x1;
            }
        }
        for (; i < n; ++i) {
            const double a0 = w[i];
            for (std::size_t b = 0; b < m; ++b) {
                const double x0 = a0 + c[b] * p1[b] - p2[b];
                p2[b] = p1[b];
                p1[b] = x0;
            }
        }
    }
    win_re_.resize(m);
    win_im_.resize(m);
    for (std::size_t b = 0; b < m; ++b) {
        // After n updates the bin value is
        // (s1 - e^{-jw} s2) e^{-jw (n-1)}; the unit phase factor is
        // common to signal and window and cancels in the corrected
        // magnitude, so only the parenthesised part is kept.
        win_re_[b] = s1[b] - cosw_[b] * s2[b];
        win_im_[b] = sinw_[b] * s2[b];
    }
}

GoertzelAccumulator::GoertzelAccumulator(const GoertzelBank &bank)
    : bank_(bank), s1_(bank.size(), 0.0), s2_(bank.size(), 0.0)
{
}

void
GoertzelAccumulator::push(double v)
{
    requireSim(count_ < bank_.n_,
               "GoertzelAccumulator fed more samples than the bank "
               "was built for");
    sum_ += v;
    buf_[buf_n_++] = v * bank_.win_[count_];
    ++count_;
    if (buf_n_ == kBlock)
        flushBlock();
}

EMSTRESS_TARGET_CLONES void
GoertzelAccumulator::flushBlock()
{
    const std::size_t m = s1_.size();
    const std::size_t nb = buf_n_;
    // The arrays never alias; telling the compiler lets it keep the
    // recurrence in registers and vectorize across bins (each bin's
    // FP order is untouched, so results stay bit-exact).
    const double *__restrict coeff = bank_.coeff_.data();
    const double *__restrict a = buf_.data();
    double *__restrict s1 = s1_.data();
    double *__restrict s2 = s2_.data();
    // Two samples per sweep over the bins: the dependence chain stays
    // per-bin (vector lanes carry independent bins, so it pipelines)
    // while (s1, s2) are loaded and stored half as often.
    std::size_t i = 0;
    for (; i + 1 < nb; i += 2) {
        const double a0 = a[i];
        const double a1 = a[i + 1];
        for (std::size_t b = 0; b < m; ++b) {
            const double x0 = a0 + coeff[b] * s1[b] - s2[b];
            const double x1 = a1 + coeff[b] * x0 - s1[b];
            s2[b] = x0;
            s1[b] = x1;
        }
    }
    for (; i < nb; ++i) {
        const double a0 = a[i];
        for (std::size_t b = 0; b < m; ++b) {
            const double x0 = a0 + coeff[b] * s1[b] - s2[b];
            s2[b] = s1[b];
            s1[b] = x0;
        }
    }
    buf_n_ = 0;
}

std::vector<double>
GoertzelAccumulator::amplitudesVrms() const
{
    requireSim(count_ == bank_.n_,
               "GoertzelAccumulator read before the full capture was "
               "pushed");
    const double mean = sum_ / static_cast<double>(bank_.n_);
    const std::size_t m = s1_.size();
    // Capture lengths are rarely a multiple of the block size; apply
    // any still-buffered tail to local copies so this stays const.
    std::vector<double> f1(s1_);
    std::vector<double> f2(s2_);
    for (std::size_t i = 0; i < buf_n_; ++i) {
        const double a = buf_[i];
        for (std::size_t b = 0; b < m; ++b) {
            const double s0 = a + bank_.coeff_[b] * f1[b] - f2[b];
            f2[b] = f1[b];
            f1[b] = s0;
        }
    }
    std::vector<double> amps(m);
    for (std::size_t b = 0; b < m; ++b) {
        if (bank_.k_[b] == 0) {
            // Batch spectra zero the DC bin after mean removal.
            amps[b] = 0.0;
            continue;
        }
        const double re =
            (f1[b] - bank_.cosw_[b] * f2[b]) - mean * bank_.win_re_[b];
        const double im = bank_.sinw_[b] * f2[b] - mean * bank_.win_im_[b];
        amps[b] = std::hypot(re, im) * bank_.scale_;
    }
    return amps;
}

} // namespace dsp
} // namespace emstress
