/**
 * @file
 * Power-spectrum computation and peak analysis over Traces. This is
 * the math layer underneath the SpectrumAnalyzer instrument model and
 * the FFT view of the on-chip DSO.
 */

#ifndef EMSTRESS_DSP_SPECTRUM_H
#define EMSTRESS_DSP_SPECTRUM_H

#include <cstddef>
#include <vector>

#include "dsp/window.h"
#include "util/trace.h"

namespace emstress {
namespace dsp {

/**
 * A one-sided amplitude spectrum: bin frequencies plus the RMS
 * amplitude (volts) of the signal content at each bin.
 */
struct Spectrum
{
    std::vector<double> freqs_hz;  ///< Bin center frequencies.
    std::vector<double> amps_vrms; ///< Calibrated RMS amplitude per bin.

    /** Number of bins. */
    std::size_t size() const { return freqs_hz.size(); }

    /** Frequency spacing between adjacent bins. @pre size() >= 2. */
    double binWidth() const { return freqs_hz[1] - freqs_hz[0]; }
};

/** A located spectral peak. */
struct Peak
{
    double freq_hz = 0.0;   ///< Interpolated peak frequency.
    double amp_vrms = 0.0;  ///< Peak RMS amplitude.
    std::size_t bin = 0;    ///< Index of the hosting bin.
};

/**
 * Compute the one-sided amplitude spectrum of a trace.
 *
 * The trace is mean-removed (spectrum analyzers are AC coupled for
 * this purpose), windowed, zero-padded to a power of two, transformed,
 * and calibrated: a pure sinusoid of RMS amplitude A yields a bin with
 * amps_vrms == A regardless of the window.
 *
 * @param trace  Input signal.
 * @param window Window shape for leakage control.
 */
Spectrum computeSpectrum(const Trace &trace,
                         WindowKind window = WindowKind::Hann);

/**
 * Find the single strongest peak within [f_lo, f_hi]. Peak frequency
 * is refined with quadratic (parabolic) interpolation over the
 * neighbouring bins.
 * @return Peak with amp_vrms == 0 when the band holds no bins.
 */
Peak maxPeakInBand(const Spectrum &spectrum, double f_lo, double f_hi);

/**
 * Find up to max_peaks local maxima in [f_lo, f_hi] sorted by
 * descending amplitude. A bin qualifies when it exceeds both
 * neighbours and min_amp_vrms.
 */
std::vector<Peak> findPeaks(const Spectrum &spectrum, double f_lo,
                            double f_hi, std::size_t max_peaks,
                            double min_amp_vrms = 0.0);

} // namespace dsp
} // namespace emstress

#endif // EMSTRESS_DSP_SPECTRUM_H
