/**
 * @file
 * Spectrum computation implementation.
 */

#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "dsp/fft.h"
#include "util/error.h"
#include "util/stats.h"

namespace emstress {
namespace dsp {

Spectrum
computeSpectrum(const Trace &trace, WindowKind window)
{
    requireConfig(trace.size() >= 4,
                  "computeSpectrum needs at least 4 samples");

    const std::size_t n = trace.size();
    const auto w = makeWindow(window, n);
    const double gain = coherentGain(window, n);

    const double mean = stats::mean(trace.samples());
    std::vector<std::complex<double>> data(nextPowerOfTwo(n));
    for (std::size_t i = 0; i < n; ++i)
        data[i] = std::complex<double>((trace[i] - mean) * w[i], 0.0);
    fftInPlace(data, false);

    const std::size_t nfft = data.size();
    const std::size_t half = nfft / 2;
    const double df = trace.sampleRate() / static_cast<double>(nfft);

    Spectrum out;
    out.freqs_hz.resize(half);
    out.amps_vrms.resize(half);
    // Calibration: a sinusoid of peak amplitude A contributes
    // |X[k]| = A * n * gain / 2 in its bin, so RMS amplitude
    // A/sqrt(2) = |X[k]| * sqrt(2) / (n * gain).
    const double scale = std::sqrt(2.0)
        / (static_cast<double>(n) * gain);
    for (std::size_t k = 0; k < half; ++k) {
        out.freqs_hz[k] = df * static_cast<double>(k);
        out.amps_vrms[k] = std::abs(data[k]) * scale;
    }
    // DC bin has no sqrt(2) RMS factor; it was removed anyway.
    if (!out.amps_vrms.empty())
        out.amps_vrms[0] = 0.0;
    return out;
}

namespace {

/**
 * Parabolic refinement of a peak at bin k using its neighbours.
 * Returns the fractional bin offset in [-0.5, 0.5].
 */
double
parabolicOffset(const Spectrum &s, std::size_t k)
{
    if (k == 0 || k + 1 >= s.size())
        return 0.0;
    const double a = s.amps_vrms[k - 1];
    const double b = s.amps_vrms[k];
    const double c = s.amps_vrms[k + 1];
    const double denom = a - 2.0 * b + c;
    if (std::abs(denom) < 1e-30)
        return 0.0;
    double off = 0.5 * (a - c) / denom;
    return std::clamp(off, -0.5, 0.5);
}

} // namespace

Peak
maxPeakInBand(const Spectrum &spectrum, double f_lo, double f_hi)
{
    Peak best;
    bool found = false;
    for (std::size_t k = 0; k < spectrum.size(); ++k) {
        const double f = spectrum.freqs_hz[k];
        if (f < f_lo || f > f_hi)
            continue;
        if (!found || spectrum.amps_vrms[k] > best.amp_vrms) {
            best.bin = k;
            best.amp_vrms = spectrum.amps_vrms[k];
            found = true;
        }
    }
    if (!found)
        return Peak{};
    const double off = parabolicOffset(spectrum, best.bin);
    best.freq_hz = spectrum.freqs_hz[best.bin]
        + off * spectrum.binWidth();
    return best;
}

std::vector<Peak>
findPeaks(const Spectrum &spectrum, double f_lo, double f_hi,
          std::size_t max_peaks, double min_amp_vrms)
{
    std::vector<Peak> peaks;
    for (std::size_t k = 1; k + 1 < spectrum.size(); ++k) {
        const double f = spectrum.freqs_hz[k];
        if (f < f_lo || f > f_hi)
            continue;
        const double a = spectrum.amps_vrms[k];
        if (a <= min_amp_vrms)
            continue;
        if (a < spectrum.amps_vrms[k - 1]
            || a < spectrum.amps_vrms[k + 1]) {
            continue;
        }
        Peak p;
        p.bin = k;
        p.amp_vrms = a;
        p.freq_hz = f + parabolicOffset(spectrum, k) * spectrum.binWidth();
        peaks.push_back(p);
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak &x, const Peak &y) {
                  return x.amp_vrms > y.amp_vrms;
              });
    if (peaks.size() > max_peaks)
        peaks.resize(max_peaks);
    return peaks;
}

} // namespace dsp
} // namespace emstress
