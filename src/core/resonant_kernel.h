/**
 * @file
 * Deterministic construction of two-phase resonant kernels: a
 * hand-written dI/dt loop with a chosen period in cycles, built from
 * a serializing multiply chain (low-current phase) feeding a burst of
 * dependent adds (high-current phase). Used as the manually designed
 * stress loop of Section 5.3, as the "dI/dt virus" of Figs. 2/4/9
 * and as a reproducible baseline to compare GA output against.
 */

#ifndef EMSTRESS_CORE_RESONANT_KERNEL_H
#define EMSTRESS_CORE_RESONANT_KERNEL_H

#include <cstddef>

#include "isa/kernel.h"
#include "isa/pool.h"

namespace emstress {
namespace core {

/**
 * Build a loop whose steady-state period is approximately
 * `period_cycles` with a high-current phase of roughly
 * `high_cycles`, on an issue-width-2 (or wider) core.
 *
 * Structure: N serial multiplies (period - high cycles of stall),
 * then 2 * high_cycles adds that consume the final multiply result
 * (dual-issued: high_cycles cycles of full-rate issue), with the
 * next iteration's first multiply consuming an add result to close
 * the loop-carried dependence.
 *
 * @param pool          ARM or x86 pool (MUL/IMUL and ADD are used).
 * @param period_cycles Target loop period in cycles; must leave at
 *                      least one multiply and two adds.
 * @param high_cycles   Cycles of the high-current phase.
 * @param adds_per_cycle Sustained ADD issue rate of the target core
 *                      (number of integer ALUs, capped by width).
 * @throws ConfigError when the period cannot be realized.
 */
isa::Kernel makeResonantKernel(const isa::InstructionPool &pool,
                               std::size_t period_cycles,
                               std::size_t high_cycles,
                               std::size_t adds_per_cycle = 2);

/**
 * Convenience: a resonant kernel tuned for a platform clock and a
 * target excitation frequency: period = round(f_clk / f_target),
 * with a 50/50 high/low split.
 */
isa::Kernel makeResonantKernelFor(const isa::InstructionPool &pool,
                                  double f_clk_hz, double f_target_hz,
                                  std::size_t adds_per_cycle = 2);

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_RESONANT_KERNEL_H
