/**
 * @file
 * Multi-domain monitor implementation.
 */

#include "core/multidomain.h"

#include "dsp/spectrum.h"
#include "em/antenna.h"
#include "util/error.h"

namespace emstress {
namespace core {

MultiDomainResult
monitorDomains(std::vector<DomainWorkload> &domains, double duration_s,
               instruments::SpectrumAnalyzer &analyzer, double f_lo_hz,
               double f_hi_hz)
{
    requireConfig(!domains.empty(), "monitorDomains needs a domain");

    std::vector<Trace> currents;
    std::vector<double> distances;
    MultiDomainResult out;

    for (auto &d : domains) {
        requireConfig(d.plat != nullptr, "null platform in domain list");
        const auto run = d.idle
            ? d.plat->runIdle(duration_s)
            : d.plat->runKernel(d.kernel, duration_s,
                                d.active_cores);
        // Per-domain dominant frequency from its isolated emission.
        const auto spec = dsp::computeSpectrum(run.em);
        out.domain_dominant_hz.push_back(
            dsp::maxPeakInBand(spec, f_lo_hz, f_hi_hz).freq_hz);
        currents.push_back(run.i_die);
        distances.push_back(d.plat->config().antenna_distance_m);
    }

    // One antenna (the first domain's) receives every domain's
    // radiation simultaneously.
    const em::Antenna &antenna = domains.front().plat->antenna();
    const Trace combined = antenna.receiveMulti(currents, distances);
    out.sweep = analyzer.sweep(combined);
    return out;
}

} // namespace core
} // namespace emstress
