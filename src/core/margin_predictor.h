/**
 * @file
 * EM-based voltage-margin prediction — the paper's future-work item
 * (c): "voltage margin prediction based on EM emanations during
 * conventional workload execution". The predictor is trained on a
 * platform *with* voltage visibility by regressing measured droop
 * against received EM amplitude over a set of calibration workloads;
 * afterwards it predicts droop — and hence V_MIN — for any workload
 * from the antenna signal alone, usable on scope-less parts.
 *
 * The linear model is physically motivated: the resonant component
 * of the droop is proportional to the oscillatory package-loop
 * current, whose time derivative the antenna measures; the intercept
 * absorbs the (roughly workload-independent within a class) IR
 * floor.
 */

#ifndef EMSTRESS_CORE_MARGIN_PREDICTOR_H
#define EMSTRESS_CORE_MARGIN_PREDICTOR_H

#include <cstddef>
#include <vector>

#include "isa/kernel.h"
#include "platform/platform.h"
#include "util/units.h"
#include "vmin/timing_model.h"
#include "workloads/workload.h"

namespace emstress {
namespace core {

/** One calibration observation. */
struct MarginCalibrationPoint
{
    double em_vrms = 0.0;  ///< Received EM amplitude (linear volts)
                           ///< at the strongest in-band component.
    double droop_v = 0.0;  ///< Measured max droop at nominal.
};

/** Fitted linear model droop = slope * em_vrms + intercept. */
struct MarginModel
{
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;       ///< Fit quality on training data.
    std::size_t points = 0;       ///< Training observations.
};

/**
 * Trainable EM-to-margin predictor.
 */
class EmMarginPredictor
{
  public:
    /**
     * @param plat     Training platform; must have voltage
     *                 visibility (throws otherwise).
     * @param f_lo_hz  EM band start for the amplitude marker.
     * @param f_hi_hz  EM band end.
     * @param duration_s Measurement window per observation.
     */
    EmMarginPredictor(platform::Platform &plat, double f_lo_hz = mega(50.0),
                      double f_hi_hz = mega(200.0),
                      double duration_s = 4e-6);

    /** Add a kernel-based calibration observation. */
    void addKernel(const isa::Kernel &kernel);

    /** Add a synthetic-benchmark calibration observation. */
    void addWorkload(const workloads::WorkloadProfile &profile,
                     std::uint64_t stream_seed = 1);

    /** Observations collected so far. */
    const std::vector<MarginCalibrationPoint> &points() const
    {
        return points_;
    }

    /**
     * Fit the linear model by least squares.
     * @throws ConfigError with fewer than 3 observations.
     */
    MarginModel fit();

    /** The fitted model. @throws SimulationError before fit(). */
    const MarginModel &model() const;

    /** Predict droop [V] from a received-EM amplitude [Vrms]. */
    double predictDroop(double em_vrms) const;

    /**
     * EM-only end-to-end prediction for a kernel: run it, read the
     * antenna marker, predict droop. No scope access involved.
     */
    double predictDroopForKernel(const isa::Kernel &kernel);

    /**
     * Predicted V_MIN: the supply at which the predicted worst dip
     * touches V_CRIT, i.e. solve v - droop * (v / v_nom) = v_crit.
     */
    double predictVmin(double em_vrms,
                       const vmin::TimingModel &timing,
                       double f_clk_hz) const;

    /**
     * Measured droop for a kernel via the scope (for validation
     * against predictions).
     */
    double measureDroop(const isa::Kernel &kernel);

  private:
    MarginCalibrationPoint observeKernel(const isa::Kernel &kernel);

    platform::Platform &plat_;
    double f_lo_hz_;
    double f_hi_hz_;
    double duration_s_;
    std::vector<MarginCalibrationPoint> points_;
    MarginModel model_;
    bool fitted_ = false;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_MARGIN_PREDICTOR_H
