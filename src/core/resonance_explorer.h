/**
 * @file
 * Fast PDN resonance detection (paper Section 5.3): run a manually
 * designed two-phase loop whose frequency is modulated by the CPU
 * clock, sweep the clock, and find where the EM spike at the loop
 * frequency is maximized — about 15 minutes of lab time instead of a
 * multi-hour GA run. Also the SCL-based reference sweep of Fig. 8.
 */

#ifndef EMSTRESS_CORE_RESONANCE_EXPLORER_H
#define EMSTRESS_CORE_RESONANCE_EXPLORER_H

#include <cstddef>
#include <vector>

#include "isa/kernel.h"
#include "platform/platform.h"

namespace emstress {
namespace core {

/** One point of an EM loop-frequency sweep (Figs. 11, 13, 16). */
struct EmSweepPoint
{
    double cpu_freq_hz = 0.0;  ///< Clock at which the loop ran.
    double loop_freq_hz = 0.0; ///< Realized loop frequency.
    double em_dbm = -200.0;    ///< EM amplitude at the loop spike.
};

/** One point of an SCL sweep (Fig. 8). */
struct SclSweepPoint
{
    double freq_hz = 0.0; ///< Square-wave frequency.
    double p2p_v = 0.0;   ///< Peak-to-peak die voltage via the scope.
};

/**
 * Fast EM resonance explorer.
 */
class ResonanceExplorer
{
  public:
    /** Bind to a platform (not owned; DVFS state is modified). */
    explicit ResonanceExplorer(platform::Platform &plat);

    /**
     * The hand-written probe loop (Section 5.3's example): a burst of
     * eight independent short integer adds (high current, ~4 cycles
     * dual-issued) serialized against one long-latency multiply so
     * every iteration alternates a high- and a low-current phase.
     */
    static isa::Kernel probeLoop(const isa::InstructionPool &pool);

    /**
     * Sweep the CPU clock from the platform's maximum down to its
     * minimum in the platform's DVFS steps, recording the EM spike at
     * each realized loop frequency. Restores the original clock.
     *
     * The grid is integer-indexed — exactly
     * (f_max - f_min)/f_step + 1 points — so no accumulated
     * floating-point error can drop or duplicate the final point.
     * Every DVFS point is independent: with threads != 1 the points
     * are measured concurrently on per-worker platform clones, and
     * because each point's measurement noise is seeded from its grid
     * index the results are bit-identical to the serial sweep.
     *
     * @param duration_s   Measurement window per point.
     * @param sa_samples   Spectrum samples per point.
     * @param active_cores Cores running the loop (0 = all powered;
     *        the paper's Fig. 13 keeps one core active across all
     *        power-gating scenarios to hold current constant).
     * @param threads      Worker threads (1 = serial, 0 = auto via
     *        EMSTRESS_THREADS / hardware concurrency).
     */
    std::vector<EmSweepPoint> sweep(double duration_s = 4e-6,
                                    std::size_t sa_samples = 5,
                                    std::size_t active_cores = 0,
                                    std::size_t threads = 1);

    /** Loop frequency with the highest EM amplitude of a sweep. */
    static double estimateResonanceHz(
        const std::vector<EmSweepPoint> &points);

  private:
    platform::Platform &plat_;
};

/**
 * SCL-driven resonance finder (the paper's validation reference,
 * Fig. 8; requires both the SCL and voltage visibility).
 */
class SclResonanceFinder
{
  public:
    /** Bind to a platform with an SCL block. */
    explicit SclResonanceFinder(platform::Platform &plat);

    /**
     * Load the PDN with a square wave swept over [f_lo, f_hi] in
     * fixed steps; record the scope peak-to-peak at each frequency.
     * Integer-indexed: exactly (f_hi - f_lo)/step + 1 points.
     *
     * @param f_lo_hz     Sweep start.
     * @param f_hi_hz     Sweep end.
     * @param step_hz     Step (paper: 1 MHz).
     * @param amplitude_a Injected square-wave amplitude.
     * @param duration_s  Capture window per point.
     */
    std::vector<SclSweepPoint> sweep(double f_lo_hz, double f_hi_hz,
                                     double step_hz,
                                     double amplitude_a = 0.5,
                                     double duration_s = 4e-6);

    /** Frequency of the maximum peak-to-peak response. */
    static double estimateResonanceHz(
        const std::vector<SclSweepPoint> &points);

  private:
    platform::Platform &plat_;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_RESONANCE_EXPLORER_H
