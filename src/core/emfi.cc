#include "core/emfi.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/error.h"

namespace emstress {
namespace core {

namespace {

/** Margin scale of the approach-gradient regime [V]. */
constexpr double kMarginScale = 0.05;

/**
 * Restores a platform's pulse-arm state on scope exit, so a faulting
 * analysis (or a throwing observer) never leaks an armed pulse into
 * subsequent runs.
 */
class PulseArmGuard
{
  public:
    explicit PulseArmGuard(platform::Platform &plat)
        : plat_(plat), saved_(plat.armedPulse())
    {}

    PulseArmGuard(const PulseArmGuard &) = delete;
    PulseArmGuard &operator=(const PulseArmGuard &) = delete;

    ~PulseArmGuard()
    {
        if (saved_)
            plat_.armPulse(*saved_);
        else
            plat_.disarmPulse();
    }

  private:
    platform::Platform &plat_;
    std::optional<em::PulseSpec> saved_;
};

} // namespace

EmfiRunOutcome
runEmfiPulse(platform::Platform &plat, const EmfiCampaignSpec &spec,
             const em::PulseSpec &pulse)
{
    requireConfig(!spec.victim.empty(),
                  "EMFI campaign needs a non-empty victim kernel");
    requireConfig(spec.target_slot < spec.victim.size(),
                  "EMFI target_slot outside the victim kernel");

    const em::PulseInjector injector(pulse);

    PulseArmGuard guard(plat);
    plat.armPulse(pulse);
    const platform::PlatformRunResult run =
        spec.eval.streaming
            ? plat.runKernel(spec.victim, spec.eval.duration_s,
                             spec.eval.active_cores)
            : plat.runKernelBatch(spec.victim, spec.eval.duration_s,
                                  spec.eval.active_cores);

    const vmin::FaultEffectsModel model(spec.effects);
    EmfiRunOutcome outcome;
    outcome.pulse = pulse;
    outcome.energy_j = injector.energyJoules();
    outcome.report =
        model.analyze(plat.pool(), spec.victim, run.v_die,
                      plat.frequency(), run.stats, &pulse);
    for (const auto &ev : outcome.report.events)
        outcome.target_faulted |= ev.slot == spec.target_slot;
    outcome.target_margin_v =
        outcome.report.slot_margin_v[spec.target_slot];
    return outcome;
}

double
pulseSearchFitness(const EmfiRunOutcome &outcome,
                   const ga::PulseGrid &grid)
{
    if (outcome.target_faulted) {
        // Energy of the grid's strongest pulse normalizes, so the
        // faulting regime's score is scale-free in the grid bounds.
        const double e_ref =
            std::max(grid.amplitude_max_a * grid.amplitude_max_a
                         * grid.width_max_s,
                     1e-300);
        return 2.0 + 1.0 / (1.0 + outcome.energy_j / e_ref);
    }
    return 1.0
           / (1.0
              + std::max(0.0, outcome.target_margin_v)
                    / kMarginScale);
}

PulseFaultFitness::PulseFaultFitness(platform::Platform &plat,
                                     const EmfiCampaignSpec &spec)
    : PlatformFitness(plat, spec.eval), spec_(spec)
{
    requireConfig(!spec.victim.empty(),
                  "EMFI campaign needs a non-empty victim kernel");
    requireConfig(spec.target_slot < spec.victim.size(),
                  "EMFI target_slot outside the victim kernel");
}

PulseFaultFitness::PulseFaultFitness(
    std::shared_ptr<platform::Platform> owned,
    const EmfiCampaignSpec &spec)
    : PlatformFitness(std::move(owned), spec.eval), spec_(spec)
{}

double
PulseFaultFitness::evaluate(const isa::Kernel &genome,
                            ga::EvalDetail *detail)
{
    const em::PulseSpec pulse =
        ga::decodePulseGenome(spec_.grid, genome);
    const EmfiRunOutcome outcome =
        runEmfiPulse(plat(), spec_, pulse);
    if (detail != nullptr) {
        *detail = {};
        detail->metric_raw = outcome.energy_j;
        detail->measurement_seconds = spec_.eval.duration_s;
    }
    return pulseSearchFitness(outcome, spec_.grid);
}

std::unique_ptr<ga::FitnessEvaluator>
PulseFaultFitness::clone() const
{
    return std::unique_ptr<ga::FitnessEvaluator>(
        new PulseFaultFitness(plat().clone(), spec_));
}

EmfiSearchResult
searchMinimalPulse(platform::Platform &plat,
                   const EmfiCampaignSpec &spec,
                   const ga::GaConfig &config)
{
    ga::GaConfig cfg = config;
    cfg.kernel_length = ga::kPulseGenomeSlots;

    PulseFaultFitness fitness(plat, spec);
    ga::GaEngine engine(plat.pool(), cfg);
    EmfiSearchResult result;
    result.ga = engine.run(fitness);
    result.best_pulse =
        ga::decodePulseGenome(spec.grid, result.ga.best);
    result.best_outcome = runEmfiPulse(plat, spec, result.best_pulse);
    return result;
}

} // namespace core
} // namespace emstress
