/**
 * @file
 * Platform-level V_MIN characterization (paper Sections 5.2, 6, 7):
 * run a workload (virus kernel or synthetic benchmark) while stepping
 * the supply voltage down in 10 mV increments until execution
 * deviates; repeat for statistical confidence.
 *
 * Implementation note: the PDN is linear and the CPU current demand
 * scales proportionally with supply voltage, so the noise waveform at
 * supply V is the nominal-voltage waveform scaled by V/V_nom. Each
 * voltage/repeat run is synthesized from one nominal simulation with
 * a small per-repeat droop jitter (phase alignment, temperature),
 * making 30-repeat searches cheap while preserving the statistics.
 */

#ifndef EMSTRESS_CORE_VMIN_TESTER_H
#define EMSTRESS_CORE_VMIN_TESTER_H

#include <string>
#include <vector>

#include "isa/kernel.h"
#include "platform/platform.h"
#include "vmin/timing_model.h"
#include "vmin/vmin_search.h"
#include "workloads/workload.h"

namespace emstress {
namespace core {

/** V_MIN test configuration. */
struct VminTestConfig
{
    vmin::TimingModelParams timing;   ///< Critical-path model.
    vmin::FailureModelParams failure; ///< SDC band parameters.
    vmin::VminSearchConfig search;    ///< Stepping parameters.
    double duration_s = 4e-6;         ///< Simulated window per run.
    std::size_t active_cores = 0;     ///< 0 = all powered.
    double droop_jitter_rel = 0.015;  ///< 1-sigma per-repeat jitter.
    std::uint64_t seed = 99;          ///< Classification noise seed.
};

/**
 * Default V_MIN configuration for a platform, with the timing anchor
 * calibrated so virus-class noise produces the paper's margins
 * (A72/A53: ~150 mV below 1.0 V nominal; AMD: ~37.5 mV below 1.4 V).
 */
VminTestConfig defaultVminConfig(const platform::Platform &plat);

/** One row of a V_MIN comparison figure (Figs. 10, 14, 18). */
struct VminRow
{
    std::string workload;
    double vmin_v = 0.0;          ///< Highest failing voltage.
    double margin_v = 0.0;        ///< v_nom - vmin.
    double max_droop_v = 0.0;     ///< Droop at nominal supply.
    std::string failure;          ///< Failure type at V_MIN.
    std::size_t runs = 0;         ///< Executions spent.
    /// Modeled physical test time: runs x per-run execution time
    /// plus a supply-adjust overhead per voltage point. The paper's
    /// full Fig. 10 campaign (SPEC to completion, 30 virus repeats)
    /// "is equal to about two days".
    double lab_seconds = 0.0;
};

/**
 * V_MIN test harness bound to one platform.
 */
class VminTester
{
  public:
    /** Bind to a platform with a configuration. */
    VminTester(platform::Platform &plat, const VminTestConfig &config);

    /**
     * Characterize a kernel-based workload (virus).
     * @param run_seconds Modeled wall time of one physical execution
     *        (viruses run for a fixed short window).
     */
    VminRow testKernel(const std::string &name,
                       const isa::Kernel &kernel, std::size_t repeats,
                       double run_seconds = 15.0);

    /**
     * Characterize a synthetic benchmark profile.
     * @param run_seconds Modeled wall time of one physical execution
     *        (the paper runs SPEC to completion with reference
     *        inputs: minutes per run).
     */
    VminRow testWorkload(const workloads::WorkloadProfile &profile,
                         std::size_t repeats,
                         double run_seconds = 300.0);

    /** The configuration in use. */
    const VminTestConfig &config() const { return config_; }

  private:
    VminRow characterizeFromNominal(const std::string &name,
                                    const Trace &v_die_nominal,
                                    std::size_t repeats,
                                    double run_seconds);

    platform::Platform &plat_;
    VminTestConfig config_;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_VMIN_TESTER_H
