/**
 * @file
 * Resonant kernel construction.
 */

#include "core/resonant_kernel.h"

#include <cmath>

#include "util/error.h"

namespace emstress {
namespace core {

isa::Kernel
makeResonantKernel(const isa::InstructionPool &pool,
                   std::size_t period_cycles, std::size_t high_cycles,
                   std::size_t adds_per_cycle)
{
    const bool arm = pool.isa() == isa::IsaFamily::ArmV8;
    const std::size_t mul = pool.defIndex(arm ? "MUL" : "IMUL");
    const std::size_t add = pool.defIndex("ADD");
    const unsigned mul_lat = pool.def(mul).latency;

    requireConfig(high_cycles >= 1 && period_cycles > high_cycles,
                  "resonant kernel needs a positive low phase");
    requireConfig(adds_per_cycle >= 1, "adds_per_cycle must be >= 1");
    const std::size_t low_cycles = period_cycles - high_cycles;
    // Serial multiply chain spanning roughly the low phase (round to
    // the nearest realizable chain length, at least one multiply).
    const std::size_t n_mul = std::max<std::size_t>(
        1,
        (low_cycles + mul_lat / 2) / mul_lat);
    // The high phase gets the remaining cycles so the realized
    // period stays close to the request.
    const std::size_t actual_low = n_mul * mul_lat;
    requireConfig(actual_low < period_cycles,
                  "multiply latency too long for the requested period");
    const std::size_t n_add =
        (period_cycles - actual_low) * adds_per_cycle;

    std::vector<isa::Instruction> code;
    // First multiply consumes an add result (loop-carried closure);
    // subsequent multiplies chain on r1.
    for (std::size_t i = 0; i < n_mul; ++i) {
        isa::Instruction m;
        m.def_index = mul;
        m.dest = 1;
        m.src = {i == 0 ? 2 : 1, 1};
        code.push_back(m);
    }
    // Full-rate adds consuming the final multiply result.
    for (std::size_t i = 0; i < n_add; ++i) {
        isa::Instruction a;
        a.def_index = add;
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    isa::Kernel kernel(std::move(code));
    kernel.validate(pool);
    return kernel;
}

isa::Kernel
makeResonantKernelFor(const isa::InstructionPool &pool,
                      double f_clk_hz, double f_target_hz,
                      std::size_t adds_per_cycle)
{
    requireConfig(f_clk_hz > 0.0 && f_target_hz > 0.0,
                  "frequencies must be positive");
    const auto period = static_cast<std::size_t>(
        std::llround(f_clk_hz / f_target_hz));
    requireConfig(period >= 4,
                  "target frequency too close to the clock for a "
                  "two-phase loop");
    return makeResonantKernel(pool, period, period / 2,
                              adds_per_cycle);
}

} // namespace core
} // namespace emstress
