/**
 * @file
 * Virus analysis implementation.
 */

#include "core/virus_analysis.h"

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace core {

VirusTableRow
analyzeVirus(platform::Platform &plat, const std::string &virus_name,
             const isa::Kernel &kernel, double vmin_v,
             double duration_s, std::size_t sa_samples)
{
    requireConfig(!kernel.empty(), "cannot analyze an empty virus");

    VirusTableRow row;
    row.virus_name = virus_name;
    row.loop_instructions = kernel.size();

    const auto run = plat.runKernel(kernel, duration_s);
    row.ipc = run.stats.ipc;
    row.loop_period_ns = run.stats.loop_period_s / nano(1.0);
    row.loop_freq_mhz = run.stats.loop_freq_hz / mega(1.0);

    const auto marker = plat.analyzer().averagedMaxAmplitude(
        run.em, mega(50.0), mega(200.0), sa_samples);
    row.dominant_freq_mhz = marker.freq_hz / mega(1.0);

    if (vmin_v > 0.0)
        row.voltage_margin_mv =
            (plat.config().v_nom - vmin_v) / milli(1.0);

    const auto &pool = plat.pool();
    using C = isa::InstrClass;
    row.pct_branch = kernel.classFraction(pool, C::Branch);
    row.pct_sl_int_reg = kernel.classFraction(pool, C::IntShort);
    row.pct_ll_int_reg = kernel.classFraction(pool, C::IntLong);
    row.pct_sl_int_mem = kernel.classFraction(pool, C::IntShortMem);
    row.pct_ll_int_mem = kernel.classFraction(pool, C::IntLongMem);
    row.pct_float = kernel.classFraction(pool, C::FpShort)
        + kernel.classFraction(pool, C::FpLong);
    row.pct_simd = kernel.classFraction(pool, C::SimdShort)
        + kernel.classFraction(pool, C::SimdLong);
    row.pct_mem = kernel.classFraction(pool, C::Load)
        + kernel.classFraction(pool, C::Store);
    return row;
}

double
minIpcForResonantLoop(double resonant_freq_hz,
                      std::size_t loop_instructions,
                      double clock_freq_hz)
{
    requireConfig(clock_freq_hz > 0.0, "clock must be positive");
    return resonant_freq_hz * static_cast<double>(loop_instructions)
        / clock_freq_hz;
}

} // namespace core
} // namespace emstress
