/**
 * @file
 * Fitness evaluators binding the GA to a simulated platform, plus the
 * in-process TargetConnection implementation. Three metrics, matching
 * the paper: maximum EM amplitude in the 1st-order resonance band
 * (the novel contribution) and, where direct voltage visibility
 * exists, maximum droop and peak-to-peak voltage (the baselines used
 * for validation and for the a72OC-DSO / amdOsc viruses).
 */

#ifndef EMSTRESS_CORE_FITNESS_H
#define EMSTRESS_CORE_FITNESS_H

#include <string>

#include "ga/ga_engine.h"
#include "ga/target_connection.h"
#include "platform/platform.h"

namespace emstress {
namespace core {

/** Shared evaluation settings. */
struct EvalSettings
{
    double duration_s = 4e-6;     ///< Steady-state window per run.
    double f_lo_hz = 50e6;        ///< EM search band start (paper:
                                  ///< 50-200 MHz, the 1st-order range).
    double f_hi_hz = 200e6;       ///< EM search band end.
    std::size_t sa_samples = 30;  ///< Spectrum samples per individual.
    std::size_t active_cores = 0; ///< 0 = all powered cores.
};

/**
 * EM-amplitude fitness (paper Section 3.1(b)): the RMS over
 * `sa_samples` sweeps of the maximum EM amplitude anywhere within
 * [f_lo, f_hi]. Fitness unit: dBm (monotone in received power).
 */
class EmAmplitudeFitness : public ga::FitnessEvaluator
{
  public:
    EmAmplitudeFitness(platform::Platform &plat,
                       const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;

    std::string metricName() const override { return "em-amplitude"; }

  private:
    platform::Platform &plat_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
};

/**
 * Maximum-droop fitness through the platform's scope (OC-DSO or
 * Kelvin pads). Fitness unit: volts of droop below nominal.
 * @throws ConfigError at construction when the platform has no
 *         voltage visibility.
 */
class MaxDroopFitness : public ga::FitnessEvaluator
{
  public:
    MaxDroopFitness(platform::Platform &plat,
                    const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;

    std::string metricName() const override { return "max-droop"; }

  private:
    platform::Platform &plat_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
};

/** Peak-to-peak voltage fitness through the platform's scope. */
class PeakToPeakFitness : public ga::FitnessEvaluator
{
  public:
    PeakToPeakFitness(platform::Platform &plat,
                      const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;

    std::string metricName() const override { return "peak-to-peak"; }

  private:
    platform::Platform &plat_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
};

/**
 * In-process implementation of the workstation-to-target loop: the
 * "target" is the simulated platform; deploy/compile/run/terminate
 * book-keep state and lab-time, and measureEm produces the antenna
 * waveform. Supports fault injection for robustness tests.
 */
class InProcessTarget : public ga::TargetConnection
{
  public:
    InProcessTarget(platform::Platform &plat,
                    const EvalSettings &settings);

    void deploy(const isa::Kernel &kernel) override;
    void startRun() override;
    Trace measureEm() override;
    void stopRun() override;
    const ga::ConnectionLatency &latency() const override
    {
        return latency_;
    }
    std::string describe() const override;

    /** Make the next n deploys fail (transport fault injection). */
    void injectDeployFailures(std::size_t n) { inject_failures_ = n; }

    /** Total modeled lab seconds spent so far. */
    double labSecondsSpent() const { return lab_seconds_; }

  private:
    platform::Platform &plat_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
    isa::Kernel deployed_;
    bool has_deployed_ = false;
    bool running_ = false;
    std::size_t inject_failures_ = 0;
    double lab_seconds_ = 0.0;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_FITNESS_H
