/**
 * @file
 * Fitness evaluators binding the GA to a simulated platform, plus the
 * in-process TargetConnection implementation. Three metrics, matching
 * the paper: maximum EM amplitude in the 1st-order resonance band
 * (the novel contribution) and, where direct voltage visibility
 * exists, maximum droop and peak-to-peak voltage (the baselines used
 * for validation and for the a72OC-DSO / amdOsc viruses).
 *
 * All three evaluators are *order-independent*: measurement noise is
 * seeded from the evaluated kernel's structural hash (mixed with the
 * platform seed), so a kernel's fitness depends only on the kernel —
 * never on how many measurements ran before it. That property makes
 * the GA's fitness memoization lossless and its parallel batch
 * evaluation bit-identical to the serial path. They are also
 * *cloneable*: clone() replicates the bound platform so each worker
 * thread simulates on its own PDN engine and instruments.
 */

#ifndef EMSTRESS_CORE_FITNESS_H
#define EMSTRESS_CORE_FITNESS_H

#include <memory>
#include <string>

#include "dsp/goertzel.h"
#include "ga/fault_injector.h"
#include "ga/ga_engine.h"
#include "ga/target_connection.h"
#include "platform/platform.h"
#include "util/faultpoint.h"
#include "util/units.h"

namespace emstress {
namespace core {

/** Shared evaluation settings. */
struct EvalSettings
{
    double duration_s = 4e-6;     ///< Steady-state window per run.
    double f_lo_hz = mega(50.0);        ///< EM search band start (paper:
                                  ///< 50-200 MHz, the 1st-order range).
    double f_hi_hz = mega(200.0);       ///< EM search band end.
    std::size_t sa_samples = 30;  ///< Spectrum samples per individual.
    std::size_t active_cores = 0; ///< 0 = all powered cores.
    bool streaming = true;        ///< Stream samples into the
                                  ///< instruments (O(1) memory in
                                  ///< duration); false replays the
                                  ///< batch-trace oracle path.
};

/**
 * Common base of the platform-bound evaluators: holds the platform
 * (by reference, or owned when the evaluator is a clone) and derives
 * the per-kernel noise stream. Optionally binds a FaultInjector: the
 * derived evaluators then consult it at their measurement-chain
 * fault points and throw FaultError on scheduled faults, which the
 * GA's batch evaluator retries. Aborted attempts leave no platform
 * state behind (noise streams are per-evaluation locals and the PDN
 * engine cache is geometry-keyed), so the retried measurement is
 * bit-identical to an unfaulted one.
 */
class PlatformFitness : public ga::FitnessEvaluator
{
  public:
    /**
     * Install (or clear, with nullptr) a fault injector. Shared
     * across clone(): all workers of a parallel batch report into
     * the same injection counters.
     */
    void
    setFaultInjector(std::shared_ptr<ga::FaultInjector> injector)
    {
        injector_ = std::move(injector);
    }

  protected:
    PlatformFitness(platform::Platform &plat,
                    const EvalSettings &settings)
        : plat_(&plat), settings_(settings)
    {}

    /** Clone constructor: takes ownership of a platform replica. */
    PlatformFitness(std::shared_ptr<platform::Platform> owned,
                    const EvalSettings &settings)
        : plat_(owned.get()), owned_(std::move(owned)),
          settings_(settings)
    {}

    /** The bound platform. */
    platform::Platform &plat() const { return *plat_; }

    /**
     * Measurement-noise stream for one kernel: a pure function of
     * the kernel genome, the platform seed and a per-metric salt.
     */
    Rng noiseFor(const isa::Kernel &kernel,
                 std::uint64_t salt) const
    {
        return Rng(mixSeed(kernel.hash() ^ salt, plat_->seed()));
    }

    /** Injected-fault check: no-op without an injector. */
    void
    faultAt(FaultPoint point, std::uint64_t key,
            std::uint32_t attempt, double cost_seconds) const
    {
        if (injector_)
            injector_->at(point, key, attempt, cost_seconds);
    }

    /**
     * Where the sample stream of (key, attempt) truncates: an index
     * in [0, n) when a TruncatedStream fault is scheduled (drawn
     * uniformly from the schedule's parameter stream), n when the
     * stream completes. The caller wraps its instrument sink in a
     * TruncatingSink when the cutoff lands inside the stream.
     */
    std::size_t
    truncationCutoff(std::uint64_t key, std::uint32_t attempt,
                     std::size_t n) const
    {
        if (!injector_ || n == 0)
            return n;
        const FaultSchedule &sched = injector_->schedule();
        if (!sched.fires(FaultPoint::TruncatedStream, key, attempt))
            return n;
        const double u = sched.unitDraw(FaultPoint::TruncatedStream,
                                        key, attempt, /*salt=*/1);
        return static_cast<std::size_t>(
            u * static_cast<double>(n));
    }

    platform::Platform *plat_;
    std::shared_ptr<platform::Platform> owned_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
    std::shared_ptr<ga::FaultInjector> injector_;
};

/**
 * EM-amplitude fitness (paper Section 3.1(b)): the RMS over
 * `sa_samples` sweeps of the maximum EM amplitude anywhere within
 * [f_lo, f_hi]. Fitness unit: dBm (monotone in received power).
 */
class EmAmplitudeFitness : public PlatformFitness
{
  public:
    EmAmplitudeFitness(platform::Platform &plat,
                       const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;
    double evaluate(const isa::Kernel &kernel, ga::EvalDetail *detail,
                    std::uint32_t attempt) override;

    std::string metricName() const override { return "em-amplitude"; }

    std::unique_ptr<ga::FitnessEvaluator> clone() const override;

  private:
    EmAmplitudeFitness(std::shared_ptr<platform::Platform> owned,
                       const EvalSettings &settings)
        : PlatformFitness(std::move(owned), settings)
    {}

    // Cached Goertzel bank for the streaming detector: every
    // evaluation of this instance shares one capture geometry, and
    // building a bank costs a full pass of the recurrence. Clones
    // build their own (each worker thread owns its evaluator, so no
    // synchronization is needed).
    std::unique_ptr<dsp::GoertzelBank> bank_;
    std::size_t bank_n_ = 0;
    double bank_rate_hz_ = 0.0;
};

/**
 * Maximum-droop fitness through the platform's scope (OC-DSO or
 * Kelvin pads). Fitness unit: volts of droop below nominal.
 * @throws ConfigError at construction when the platform has no
 *         voltage visibility.
 */
class MaxDroopFitness : public PlatformFitness
{
  public:
    MaxDroopFitness(platform::Platform &plat,
                    const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;
    double evaluate(const isa::Kernel &kernel, ga::EvalDetail *detail,
                    std::uint32_t attempt) override;

    std::string metricName() const override { return "max-droop"; }

    std::unique_ptr<ga::FitnessEvaluator> clone() const override;

  private:
    MaxDroopFitness(std::shared_ptr<platform::Platform> owned,
                    const EvalSettings &settings)
        : PlatformFitness(std::move(owned), settings)
    {}
};

/** Peak-to-peak voltage fitness through the platform's scope. */
class PeakToPeakFitness : public PlatformFitness
{
  public:
    PeakToPeakFitness(platform::Platform &plat,
                      const EvalSettings &settings);

    double evaluate(const isa::Kernel &kernel,
                    ga::EvalDetail *detail) override;
    double evaluate(const isa::Kernel &kernel, ga::EvalDetail *detail,
                    std::uint32_t attempt) override;

    std::string metricName() const override { return "peak-to-peak"; }

    std::unique_ptr<ga::FitnessEvaluator> clone() const override;

  private:
    PeakToPeakFitness(std::shared_ptr<platform::Platform> owned,
                      const EvalSettings &settings)
        : PlatformFitness(std::move(owned), settings)
    {}
};

/**
 * In-process implementation of the workstation-to-target loop: the
 * "target" is the simulated platform; deploy/compile/run/terminate
 * book-keep state and lab-time, and measureEm produces the antenna
 * waveform. Supports fault injection for robustness tests.
 */
class InProcessTarget : public ga::TargetConnection
{
  public:
    InProcessTarget(platform::Platform &plat,
                    const EvalSettings &settings);

    void deploy(const isa::Kernel &kernel) override;
    void startRun() override;
    Trace measureEm() override;
    void stopRun() override;
    const ga::ConnectionLatency &latency() const override
    {
        return latency_;
    }
    std::string describe() const override;

    /** Make the next n deploys fail (transport fault injection). */
    void injectDeployFailures(std::size_t n) { inject_failures_ = n; }

    /**
     * Install a schedule-driven fault injector: deploy() can then
     * time out, startRun() hang and measureEm() miss its trigger,
     * each at the schedule's rate with per-verb attempt counters (so
     * an outer retry loop sees fresh draws per retry).
     */
    void
    setFaultInjector(std::shared_ptr<ga::FaultInjector> injector)
    {
        injector_ = std::move(injector);
    }

    /** Total modeled lab seconds spent so far. */
    double labSecondsSpent() const { return lab_seconds_; }

  private:
    platform::Platform &plat_;
    EvalSettings settings_;
    ga::ConnectionLatency latency_;
    isa::Kernel deployed_;
    bool has_deployed_ = false;
    bool running_ = false;
    std::size_t inject_failures_ = 0;
    double lab_seconds_ = 0.0;
    std::shared_ptr<ga::FaultInjector> injector_;
    std::uint32_t deploy_attempt_ = 0;
    std::uint32_t start_attempt_ = 0;
    std::uint32_t measure_attempt_ = 0;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_FITNESS_H
