/**
 * @file
 * EM margin predictor implementation.
 */

#include "core/margin_predictor.h"

#include <cmath>
#include <optional>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace core {

EmMarginPredictor::EmMarginPredictor(platform::Platform &plat,
                                     double f_lo_hz, double f_hi_hz,
                                     double duration_s)
    : plat_(plat), f_lo_hz_(f_lo_hz), f_hi_hz_(f_hi_hz),
      duration_s_(duration_s)
{
    requireConfig(plat.hasVoltageVisibility(),
                  "training the margin predictor needs a platform "
                  "with voltage visibility");
    requireConfig(f_hi_hz > f_lo_hz, "band must have positive width");
    requireConfig(duration_s > 0.0, "duration must be positive");
}

MarginCalibrationPoint
EmMarginPredictor::observeKernel(const isa::Kernel &kernel)
{
    // One streaming run feeds both instruments: the EM tap into a
    // band detector, the die voltage into the scope front end.
    std::optional<instruments::SaBandDetector> det;
    std::optional<instruments::ScopeCaptureSink> scope_sink;
    plat_.streamKernel(
        kernel, duration_s_,
        [&](const platform::StreamPlan &plan) {
            det.emplace(plat_.analyzer().params(), plan.n_samples,
                        1.0 / plan.dt, f_lo_hz_, f_hi_hz_);
            scope_sink.emplace(plat_.scope().params(), plan.n_samples,
                               plan.dt, plat_.scope().noiseStream());
            return platform::StreamObservers{&*scope_sink, nullptr,
                                             &*det};
        });
    const auto marker = det->averagedMaxAmplitude(
        5, plat_.analyzer().noiseStream());

    MarginCalibrationPoint p;
    // dBm into the analyzer's reference impedance -> linear Vrms.
    p.em_vrms = std::sqrt(
        dbmToWatts(marker.power_dbm)
        * plat_.analyzer().params().ref_impedance);
    p.droop_v = scope_sink->maxDroop(plat_.voltage());
    return p;
}

void
EmMarginPredictor::addKernel(const isa::Kernel &kernel)
{
    points_.push_back(observeKernel(kernel));
    fitted_ = false;
}

void
EmMarginPredictor::addWorkload(
    const workloads::WorkloadProfile &profile,
    std::uint64_t stream_seed)
{
    const double f = plat_.frequency();
    const auto length = static_cast<std::size_t>(
        (duration_s_ + 1e-6) * f
        * static_cast<double>(plat_.config().core.issue_width))
        + 4096;
    Rng rng(stream_seed);
    const auto stream = workloads::generateStream(
        profile, plat_.pool(), length, rng);
    const auto run = plat_.runStream(stream, duration_s_);
    const auto marker = plat_.analyzer().averagedMaxAmplitude(
        run.em, f_lo_hz_, f_hi_hz_, 5);
    const Trace cap = plat_.scope().capture(run.v_die);

    MarginCalibrationPoint p;
    p.em_vrms = std::sqrt(
        dbmToWatts(marker.power_dbm)
        * plat_.analyzer().params().ref_impedance);
    p.droop_v =
        instruments::Oscilloscope::maxDroop(cap, plat_.voltage());
    points_.push_back(p);
    fitted_ = false;
}

MarginModel
EmMarginPredictor::fit()
{
    requireConfig(points_.size() >= 3,
                  "margin-model fit needs at least 3 observations");
    const double n = static_cast<double>(points_.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (const auto &p : points_) {
        sx += p.em_vrms;
        sy += p.droop_v;
        sxx += p.em_vrms * p.em_vrms;
        sxy += p.em_vrms * p.droop_v;
        syy += p.droop_v * p.droop_v;
    }
    const double denom = n * sxx - sx * sx;
    requireSim(std::abs(denom) > 1e-30,
               "degenerate calibration set (identical EM readings)");
    model_.slope = (n * sxy - sx * sy) / denom;
    model_.intercept = (sy - model_.slope * sx) / n;
    // R^2 against the mean model.
    const double mean_y = sy / n;
    double ss_res = 0.0, ss_tot = 0.0;
    for (const auto &p : points_) {
        const double pred =
            model_.slope * p.em_vrms + model_.intercept;
        ss_res += (p.droop_v - pred) * (p.droop_v - pred);
        ss_tot += (p.droop_v - mean_y) * (p.droop_v - mean_y);
    }
    model_.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    model_.points = points_.size();
    fitted_ = true;
    return model_;
}

const MarginModel &
EmMarginPredictor::model() const
{
    requireSim(fitted_, "margin model not fitted yet");
    return model_;
}

double
EmMarginPredictor::predictDroop(double em_vrms) const
{
    requireSim(fitted_, "margin model not fitted yet");
    return std::max(0.0,
                    model_.slope * em_vrms + model_.intercept);
}

double
EmMarginPredictor::predictDroopForKernel(const isa::Kernel &kernel)
{
    // EM-only path: no scope access, no buffered waveform.
    std::optional<instruments::SaBandDetector> det;
    plat_.streamKernel(
        kernel, duration_s_,
        [&](const platform::StreamPlan &plan) {
            det.emplace(plat_.analyzer().params(), plan.n_samples,
                        1.0 / plan.dt, f_lo_hz_, f_hi_hz_);
            return platform::StreamObservers{nullptr, nullptr, &*det};
        });
    const auto marker = det->averagedMaxAmplitude(
        5, plat_.analyzer().noiseStream());
    const double em_vrms = std::sqrt(
        dbmToWatts(marker.power_dbm)
        * plat_.analyzer().params().ref_impedance);
    return predictDroop(em_vrms);
}

double
EmMarginPredictor::predictVmin(double em_vrms,
                               const vmin::TimingModel &timing,
                               double f_clk_hz) const
{
    const double droop_nom = predictDroop(em_vrms);
    const double v_nom = plat_.config().v_nom;
    const double v_crit = timing.vCrit(f_clk_hz);
    // Deviation scales with supply: v - droop_nom * (v / v_nom)
    // touches v_crit at v = v_crit / (1 - droop_nom / v_nom).
    const double rel = droop_nom / v_nom;
    requireSim(rel < 0.9, "predicted droop implausibly large");
    return v_crit / (1.0 - rel);
}

double
EmMarginPredictor::measureDroop(const isa::Kernel &kernel)
{
    std::optional<instruments::ScopeCaptureSink> scope_sink;
    plat_.streamKernel(
        kernel, duration_s_,
        [&](const platform::StreamPlan &plan) {
            scope_sink.emplace(plat_.scope().params(), plan.n_samples,
                               plan.dt, plat_.scope().noiseStream());
            return platform::StreamObservers{&*scope_sink, nullptr,
                                             nullptr};
        });
    return scope_sink->maxDroop(plat_.voltage());
}

} // namespace core
} // namespace emstress
