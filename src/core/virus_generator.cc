/**
 * @file
 * Virus generator implementation.
 */

#include "core/virus_generator.h"

#include <memory>

#include "util/error.h"

namespace emstress {
namespace core {

std::string
virusMetricName(VirusMetric metric)
{
    switch (metric) {
      case VirusMetric::EmAmplitude: return "em-amplitude";
      case VirusMetric::MaxDroop:    return "max-droop";
      case VirusMetric::PeakToPeak:  return "peak-to-peak";
    }
    return "unknown";
}

VirusGenerator::VirusGenerator(platform::Platform &plat) : plat_(plat)
{}

VirusReport
VirusGenerator::search(const VirusSearchConfig &config,
                       const ga::GenerationCallback &callback)
{
    std::unique_ptr<PlatformFitness> evaluator;
    switch (config.metric) {
      case VirusMetric::EmAmplitude:
        evaluator =
            std::make_unique<EmAmplitudeFitness>(plat_, config.eval);
        break;
      case VirusMetric::MaxDroop:
        evaluator =
            std::make_unique<MaxDroopFitness>(plat_, config.eval);
        break;
      case VirusMetric::PeakToPeak:
        evaluator =
            std::make_unique<PeakToPeakFitness>(plat_, config.eval);
        break;
    }
    evaluator->setFaultInjector(config.faults);

    ga::GaEngine engine(plat_.pool(), config.ga);
    ga::GaResult ga_result = engine.run(*evaluator, callback);

    VirusReport report = characterize(ga_result.best, config.eval);
    report.ga = std::move(ga_result);
    report.metric = virusMetricName(config.metric);
    return report;
}

VirusReport
VirusGenerator::characterize(const isa::Kernel &kernel,
                             const EvalSettings &eval)
{
    VirusReport report;
    report.virus = kernel;
    report.metric = "characterization";

    const auto run = plat_.runKernel(kernel, eval.duration_s,
                                     eval.active_cores);
    report.loop_freq_hz = run.stats.loop_freq_hz;
    report.ipc = run.stats.ipc;

    const auto marker = plat_.analyzer().averagedMaxAmplitude(
        run.em, eval.f_lo_hz, eval.f_hi_hz, eval.sa_samples);
    report.dominant_freq_hz = marker.freq_hz;

    if (plat_.hasVoltageVisibility()) {
        const Trace cap = plat_.scope().capture(run.v_die);
        report.max_droop_v = instruments::Oscilloscope::maxDroop(
            cap, plat_.voltage());
        report.peak_to_peak_v =
            instruments::Oscilloscope::peakToPeak(cap);
    }
    return report;
}

} // namespace core
} // namespace emstress
