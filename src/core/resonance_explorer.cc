/**
 * @file
 * Resonance exploration implementations.
 */

#include "core/resonance_explorer.h"

#include "util/error.h"

namespace emstress {
namespace core {

ResonanceExplorer::ResonanceExplorer(platform::Platform &plat)
    : plat_(plat)
{}

isa::Kernel
ResonanceExplorer::probeLoop(const isa::InstructionPool &pool)
{
    // High-current phase: eight independent single-cycle adds
    // (dual-issue -> ~4 cycles). Low-current phase: one multi-cycle
    // multiply that the adds depend on and that depends on the adds,
    // so iterations cannot overlap. Register r1 carries the serial
    // chain; the adds target r2 which feeds the next multiply.
    const std::size_t mul =
        pool.defIndex(pool.isa() == isa::IsaFamily::ArmV8 ? "MUL"
                                                          : "IMUL");
    const std::size_t add = pool.defIndex("ADD");

    std::vector<isa::Instruction> code;
    isa::Instruction m;
    m.def_index = mul;
    m.dest = 1;
    m.src = {2, 2};
    code.push_back(m);
    for (int i = 0; i < 8; ++i) {
        isa::Instruction a;
        a.def_index = add;
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    return isa::Kernel(std::move(code));
}

std::vector<EmSweepPoint>
ResonanceExplorer::sweep(double duration_s, std::size_t sa_samples,
                         std::size_t active_cores)
{
    const auto &cfg = plat_.config();
    const double f_restore = plat_.frequency();
    const isa::Kernel loop = probeLoop(plat_.pool());

    std::vector<EmSweepPoint> points;
    for (double f = cfg.f_max_hz; f >= cfg.f_min_hz - 1.0;
         f -= cfg.f_step_hz) {
        plat_.setFrequency(f);
        const auto run =
            plat_.runKernel(loop, duration_s, active_cores);
        requireSim(run.stats.loop_freq_hz > 0.0,
                   "probe loop produced no loop-frequency estimate");
        // Marker on the spike at the loop frequency: search a narrow
        // window around it so neighbouring harmonics don't leak in.
        const double f_spike = run.stats.loop_freq_hz;
        const auto marker = plat_.analyzer().averagedMaxAmplitude(
            run.em, f_spike * 0.9, f_spike * 1.1, sa_samples);
        points.push_back({plat_.frequency(), f_spike,
                          marker.power_dbm});
    }
    plat_.setFrequency(f_restore);
    requireSim(!points.empty(), "frequency sweep produced no points");
    return points;
}

double
ResonanceExplorer::estimateResonanceHz(
    const std::vector<EmSweepPoint> &points)
{
    requireConfig(!points.empty(), "cannot estimate from no points");
    const EmSweepPoint *best = &points.front();
    for (const auto &p : points)
        if (p.em_dbm > best->em_dbm)
            best = &p;
    return best->loop_freq_hz;
}

SclResonanceFinder::SclResonanceFinder(platform::Platform &plat)
    : plat_(plat)
{
    requireConfig(plat.config().has_scl,
                  plat.config().name + " has no SCL block");
    requireConfig(plat.hasVoltageVisibility(),
                  "SCL sweep needs scope visibility");
}

std::vector<SclSweepPoint>
SclResonanceFinder::sweep(double f_lo_hz, double f_hi_hz,
                          double step_hz, double amplitude_a,
                          double duration_s)
{
    requireConfig(f_hi_hz > f_lo_hz && step_hz > 0.0,
                  "bad SCL sweep range");
    std::vector<SclSweepPoint> points;
    for (double f = f_lo_hz; f <= f_hi_hz + 0.5 * step_hz;
         f += step_hz) {
        const auto run = plat_.runScl(f, amplitude_a, duration_s);
        const Trace cap = plat_.scope().capture(run.v_die);
        points.push_back(
            {f, instruments::Oscilloscope::peakToPeak(cap)});
    }
    return points;
}

double
SclResonanceFinder::estimateResonanceHz(
    const std::vector<SclSweepPoint> &points)
{
    requireConfig(!points.empty(), "cannot estimate from no points");
    const SclSweepPoint *best = &points.front();
    for (const auto &p : points)
        if (p.p2p_v > best->p2p_v)
            best = &p;
    return best->freq_hz;
}

} // namespace core
} // namespace emstress
