/**
 * @file
 * Resonance exploration implementations.
 */

#include "core/resonance_explorer.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace emstress {
namespace core {

namespace {

/// Sweep noise salts, distinct from the fitness-evaluator salts.
constexpr std::uint64_t kEmSweepNoiseSalt = 0x454d5357454550ull;
constexpr std::uint64_t kSclSweepNoiseSalt = 0x53434c5357ull;

/**
 * Number of points of an inclusive [lo, hi] grid with a fixed step.
 * Integer-indexed so accumulated floating-point error can neither
 * drop nor duplicate the final point: exactly (hi - lo)/step + 1.
 */
std::size_t
gridPoints(double lo_hz, double hi_hz, double step_hz)
{
    requireConfig(hi_hz > lo_hz && step_hz > 0.0,
                  "bad sweep range");
    return static_cast<std::size_t>(
               std::llround((hi_hz - lo_hz) / step_hz))
        + 1;
}

} // namespace

ResonanceExplorer::ResonanceExplorer(platform::Platform &plat)
    : plat_(plat)
{}

isa::Kernel
ResonanceExplorer::probeLoop(const isa::InstructionPool &pool)
{
    // High-current phase: eight independent single-cycle adds
    // (dual-issue -> ~4 cycles). Low-current phase: one multi-cycle
    // multiply that the adds depend on and that depends on the adds,
    // so iterations cannot overlap. Register r1 carries the serial
    // chain; the adds target r2 which feeds the next multiply.
    const std::size_t mul =
        pool.defIndex(pool.isa() == isa::IsaFamily::ArmV8 ? "MUL"
                                                          : "IMUL");
    const std::size_t add = pool.defIndex("ADD");

    std::vector<isa::Instruction> code;
    isa::Instruction m;
    m.def_index = mul;
    m.dest = 1;
    m.src = {2, 2};
    code.push_back(m);
    for (int i = 0; i < 8; ++i) {
        isa::Instruction a;
        a.def_index = add;
        a.dest = 2;
        a.src = {1, 1};
        code.push_back(a);
    }
    return isa::Kernel(std::move(code));
}

std::vector<EmSweepPoint>
ResonanceExplorer::sweep(double duration_s, std::size_t sa_samples,
                         std::size_t active_cores,
                         std::size_t threads)
{
    const auto &cfg = plat_.config();
    const double f_restore = plat_.frequency();
    const isa::Kernel loop = probeLoop(plat_.pool());
    const std::size_t n =
        gridPoints(cfg.f_min_hz, cfg.f_max_hz, cfg.f_step_hz);

    // One point at grid index i, on whichever platform instance the
    // worker owns. Noise is seeded from the grid index (not from
    // scheduling order), so the parallel sweep is bit-identical to
    // the serial one.
    const auto measure = [&](platform::Platform &plat,
                             std::size_t i) -> EmSweepPoint {
        plat.setFrequency(cfg.f_max_hz
                          - static_cast<double>(i) * cfg.f_step_hz);
        // Marker on the spike at the loop frequency: the band is only
        // known once the core pass has measured the loop, so the
        // detector is built inside the observer factory. A narrow
        // window keeps neighbouring harmonics from leaking in.
        std::optional<instruments::SaBandDetector> det;
        double f_spike = 0.0;
        plat.streamKernel(
            loop, duration_s,
            [&](const platform::StreamPlan &plan) {
                requireSim(plan.stats.loop_freq_hz > 0.0,
                           "probe loop produced no loop-frequency "
                           "estimate");
                f_spike = plan.stats.loop_freq_hz;
                det.emplace(plat.analyzer().params(), plan.n_samples,
                            1.0 / plan.dt, f_spike * 0.9,
                            f_spike * 1.1);
                return platform::StreamObservers{nullptr, nullptr,
                                                 &*det};
            },
            active_cores);
        Rng noise(mixSeed(plat.seed() ^ kEmSweepNoiseSalt, i));
        const auto marker =
            det->averagedMaxAmplitude(sa_samples, noise);
        return {plat.frequency(), f_spike, marker.power_dbm};
    };

    std::vector<EmSweepPoint> points(n);
    const std::size_t workers =
        std::min(resolveThreadCount(threads), n);
    if (workers > 1) {
        // Per-worker platform clones: the PDN engine caches mutable
        // state, so concurrent points must not share one Platform.
        std::vector<std::unique_ptr<platform::Platform>> clones;
        clones.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            clones.push_back(plat_.clone());
        ThreadPool pool(workers);
        pool.parallelFor(n, [&](std::size_t i, std::size_t worker) {
            points[i] = measure(*clones[worker], i);
        });
    } else {
        for (std::size_t i = 0; i < n; ++i)
            points[i] = measure(plat_, i);
        plat_.setFrequency(f_restore);
    }
    return points;
}

double
ResonanceExplorer::estimateResonanceHz(
    const std::vector<EmSweepPoint> &points)
{
    requireConfig(!points.empty(), "cannot estimate from no points");
    const EmSweepPoint *best = &points.front();
    for (const auto &p : points)
        if (p.em_dbm > best->em_dbm)
            best = &p;
    return best->loop_freq_hz;
}

SclResonanceFinder::SclResonanceFinder(platform::Platform &plat)
    : plat_(plat)
{
    requireConfig(plat.config().has_scl,
                  plat.config().name + " has no SCL block");
    requireConfig(plat.hasVoltageVisibility(),
                  "SCL sweep needs scope visibility");
}

std::vector<SclSweepPoint>
SclResonanceFinder::sweep(double f_lo_hz, double f_hi_hz,
                          double step_hz, double amplitude_a,
                          double duration_s)
{
    const std::size_t n = gridPoints(f_lo_hz, f_hi_hz, step_hz);
    std::vector<SclSweepPoint> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double f =
            f_lo_hz + static_cast<double>(i) * step_hz;
        const auto run = plat_.runScl(f, amplitude_a, duration_s);
        Rng noise(mixSeed(plat_.seed() ^ kSclSweepNoiseSalt, i));
        const Trace cap = plat_.scope().capture(run.v_die, noise);
        points.push_back(
            {f, instruments::Oscilloscope::peakToPeak(cap)});
    }
    return points;
}

double
SclResonanceFinder::estimateResonanceHz(
    const std::vector<SclSweepPoint> &points)
{
    requireConfig(!points.empty(), "cannot estimate from no points");
    const SclSweepPoint *best = &points.front();
    for (const auto &p : points)
        if (p.p2p_v > best->p2p_v)
            best = &p;
    return best->freq_hz;
}

} // namespace core
} // namespace emstress
