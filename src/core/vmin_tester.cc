/**
 * @file
 * V_MIN tester implementation.
 */

#include "core/vmin_tester.h"

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace emstress {
namespace core {

VminTestConfig
defaultVminConfig(const platform::Platform &plat)
{
    const auto &cfg = plat.config();
    VminTestConfig out;
    out.timing.f_anchor_hz = cfg.f_max_hz;
    if (cfg.technology_nm >= 40) {
        // 45 nm desktop at 1.4 V nominal: the virus's deep resonant
        // dips put its V_MIN at 1.3625 V (37.5 mV margin) while the
        // steady stability tests pass down to ~1.28 V.
        out.timing.vth = 0.60;
        out.timing.alpha = 1.4;
        out.timing.v_crit_anchor = 1.048;
    } else {
        // 16 nm mobile at 1.0 V nominal: viruses sit ~150 mV under
        // nominal.
        out.timing.vth = 0.35;
        out.timing.alpha = 1.3;
        out.timing.v_crit_anchor = 0.770;
    }
    out.search.v_start = cfg.v_nom;
    out.search.v_floor = out.timing.vth + 0.05;
    out.search.v_step = 0.010;
    return out;
}

VminTester::VminTester(platform::Platform &plat,
                       const VminTestConfig &config)
    : plat_(plat), config_(config)
{
    requireConfig(config.duration_s > 0.0,
                  "test duration must be positive");
    requireConfig(config.droop_jitter_rel >= 0.0,
                  "droop jitter must be non-negative");
}

VminRow
VminTester::testKernel(const std::string &name,
                       const isa::Kernel &kernel, std::size_t repeats,
                       double run_seconds)
{
    // Only the die voltage feeds the characterization: stream it into
    // a single trace sink instead of materializing all three batch
    // waveforms.
    TraceSink v_die(platform::kPdnDt);
    plat_.streamKernel(
        kernel, config_.duration_s,
        [&](const platform::StreamPlan &plan) {
            v_die.reserve(plan.n_samples);
            return platform::StreamObservers{&v_die, nullptr,
                                             nullptr};
        },
        config_.active_cores);
    return characterizeFromNominal(name, v_die.trace(), repeats,
                                   run_seconds);
}

VminRow
VminTester::testWorkload(const workloads::WorkloadProfile &profile,
                         std::size_t repeats, double run_seconds)
{
    // Size the stream to cover the simulated window at full issue.
    const double f = plat_.frequency();
    const auto length = static_cast<std::size_t>(
        (config_.duration_s + 1.0e-6) * f
        * static_cast<double>(plat_.config().core.issue_width)) + 4096;
    Rng gen_rng(config_.seed ^ 0xabcdef);
    const auto stream = workloads::generateStream(
        profile, plat_.pool(), length, gen_rng);
    const auto run = plat_.runStream(stream, config_.duration_s,
                                     config_.active_cores);
    return characterizeFromNominal(profile.name, run.v_die, repeats,
                                   run_seconds);
}

VminRow
VminTester::characterizeFromNominal(const std::string &name,
                                    const Trace &v_die_nominal,
                                    std::size_t repeats,
                                    double run_seconds)
{
    const double v_nom = plat_.voltage();

    // Droop waveform relative to the nominal supply.
    std::vector<double> droop(v_die_nominal.size());
    for (std::size_t i = 0; i < droop.size(); ++i)
        droop[i] = v_nom - v_die_nominal[i];

    // Per-(voltage, repeat) synthesis: linear PDN + current ~ V means
    // the deviation waveform scales with V/V_nom; jitter models
    // run-to-run alignment differences.
    Rng jitter_rng(config_.seed ^ std::hash<std::string>{}(name));
    const double jitter_rel = config_.droop_jitter_rel;
    const Trace &base = v_die_nominal;
    auto runner = [&droop, &base, v_nom, jitter_rel, &jitter_rng](
                      double v_supply, std::size_t) -> Trace {
        const double scale = v_supply / v_nom
            * std::max(0.0, jitter_rng.gaussian(1.0, jitter_rel));
        Trace out(base.dt());
        out.reserve(droop.size());
        for (double d : droop)
            out.push(v_supply - d * scale);
        return out;
    };

    vmin::TimingModel timing(config_.timing);
    vmin::FailureModel failure(config_.failure, timing);
    auto search_cfg = config_.search;
    search_cfg.repeats = repeats;
    vmin::VminSearch search(search_cfg, failure,
                            Rng(config_.seed ^ 0x51ed));

    const auto result = search.characterize(runner, plat_.frequency());

    VminRow row;
    row.workload = name;
    row.vmin_v = result.vmin;
    row.margin_v = result.vmin > 0.0 ? v_nom - result.vmin : 0.0;
    row.max_droop_v = result.max_droop_nominal;
    row.failure = vmin::outcomeName(result.first_failure);
    row.runs = result.runs_executed;
    // Modeled campaign time: each physical run plus a supply-adjust
    // and reboot/check overhead per voltage point.
    const double overhead_per_point = 20.0;
    const auto points = (result.runs_executed + repeats - 1)
        / std::max<std::size_t>(repeats, 1);
    row.lab_seconds = static_cast<double>(result.runs_executed)
            * run_seconds
        + static_cast<double>(points) * overhead_per_point;
    return row;
}

} // namespace core
} // namespace emstress
