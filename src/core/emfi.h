/**
 * @file
 * Active-EMFI campaigns: run a victim kernel with an armed pulse,
 * convert the resulting die-voltage transient into ISA-level fault
 * events, and search for the minimal-energy pulse that faults a
 * chosen victim instruction — the inverted use of the GA machinery
 * (the passive search maximizes noise; this search minimizes attack
 * energy subject to "the target slot faults").
 *
 * Determinism: a campaign run is a pure function of (platform
 * config, platform seed, victim kernel, pulse spec, fault-effects
 * params). The pulse-search fitness derives from that alone — no
 * measurement-noise stream — so GA memoization, parallel batch
 * evaluation and replay from a recorded (seed, schedule) are all
 * bit-identical to the serial path.
 */

#ifndef EMSTRESS_CORE_EMFI_H
#define EMSTRESS_CORE_EMFI_H

#include <memory>
#include <string>

#include "core/fitness.h"
#include "em/pulse_injector.h"
#include "ga/ga_engine.h"
#include "ga/pulse_genome.h"
#include "isa/kernel.h"
#include "platform/platform.h"
#include "vmin/fault_effects.h"

namespace emstress {
namespace core {

/** Everything one EMFI campaign needs beyond the platform. */
struct EmfiCampaignSpec
{
    isa::Kernel victim;          ///< Victim loop body.
    std::size_t target_slot = 0; ///< Victim instruction to fault.
    EvalSettings eval;           ///< Run window / streaming toggle.
    vmin::FaultEffectsParams effects; ///< ISA fault model.
    ga::PulseGrid grid;          ///< Pulse search space.
};

/** Outcome of firing one pulse at the victim. */
struct EmfiRunOutcome
{
    em::PulseSpec pulse;       ///< The pulse that was fired.
    vmin::FaultReport report;  ///< ISA-level fault analysis.
    double energy_j = 0.0;     ///< Injected pulse energy [J].
    bool target_faulted = false; ///< Any event hit target_slot.
    /// The target slot's voltage margin (negative = crossed) [V] —
    /// the non-faulting regime's search gradient.
    double target_margin_v = 0.0;
};

/**
 * Fire one pulse: arm it on the platform, run the victim kernel
 * (streaming or batch per spec.eval.streaming — bit-identical), run
 * the fault-effects analysis against the armed pulse, and restore
 * the platform's previous arm state (exception-safe).
 */
EmfiRunOutcome runEmfiPulse(platform::Platform &plat,
                            const EmfiCampaignSpec &spec,
                            const em::PulseSpec &pulse);

/**
 * Fitness of a pulse outcome for the minimal-energy search. Shaped
 * in two regimes so the GA always has a gradient: non-faulting
 * pulses score in (0, 1] rising as the target slot's margin
 * approaches zero; faulting pulses score in (2, 3] rising as energy
 * falls (normalized by the grid's maximal pulse energy). Every
 * faulting pulse therefore dominates every non-faulting one.
 */
double pulseSearchFitness(const EmfiRunOutcome &outcome,
                          const ga::PulseGrid &grid);

/**
 * GA evaluator for the pulse search: decodes each kernel genome
 * through the pulse grid (see ga/pulse_genome.h), fires it at the
 * victim and scores with pulseSearchFitness. Deterministic per
 * genome, hence order-independent, memoizable and cloneable.
 */
class PulseFaultFitness : public PlatformFitness
{
  public:
    PulseFaultFitness(platform::Platform &plat,
                      const EmfiCampaignSpec &spec);

    double evaluate(const isa::Kernel &genome,
                    ga::EvalDetail *detail) override;

    std::string metricName() const override
    {
        return "emfi-min-energy";
    }

    std::unique_ptr<ga::FitnessEvaluator> clone() const override;

    /** The campaign this evaluator fires against. */
    const EmfiCampaignSpec &spec() const { return spec_; }

  private:
    PulseFaultFitness(std::shared_ptr<platform::Platform> owned,
                      const EmfiCampaignSpec &spec);

    EmfiCampaignSpec spec_;
};

/** Result of a minimal-energy pulse search. */
struct EmfiSearchResult
{
    ga::GaResult ga;            ///< Full GA record (history, stats).
    em::PulseSpec best_pulse;   ///< Decoded winning pulse.
    EmfiRunOutcome best_outcome; ///< Its replayed outcome.
};

/**
 * Search the pulse grid for the minimal-energy pulse that faults
 * spec.target_slot of the victim. config.kernel_length is forced to
 * kPulseGenomeSlots (the genome encoding's fixed length); all other
 * GA hyper-parameters apply unchanged, including threads (workers
 * clone the platform) and restarts.
 *
 * @throws ConfigError when target_slot is out of the victim's range.
 */
EmfiSearchResult searchMinimalPulse(platform::Platform &plat,
                                    const EmfiCampaignSpec &spec,
                                    const ga::GaConfig &config);

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_EMFI_H
