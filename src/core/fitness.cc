/**
 * @file
 * Fitness evaluator implementations.
 */

#include "core/fitness.h"

#include <optional>

#include "dsp/spectrum.h"
#include "util/error.h"

namespace emstress {
namespace core {

namespace {

/** Modeled lab seconds for one individual's measurement. */
double
labSecondsPerIndividual(const ga::ConnectionLatency &lat,
                        std::size_t samples)
{
    return lat.deploy_s + lat.start_stop_s
        + lat.per_sample_s * static_cast<double>(samples);
}

/// Per-metric noise salts: the same kernel measured through
/// different instruments must not see correlated noise.
constexpr std::uint64_t kEmNoiseSalt = 0x454d5f414d504cull;
constexpr std::uint64_t kDroopNoiseSalt = 0x44524f4f50ull;
constexpr std::uint64_t kP2pNoiseSalt = 0x5032505full;

} // namespace

EmAmplitudeFitness::EmAmplitudeFitness(platform::Platform &plat,
                                       const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(settings.f_hi_hz > settings.f_lo_hz,
                  "EM band must have positive width");
    requireConfig(settings.duration_s > 0.0,
                  "evaluation duration must be positive");
}

double
EmAmplitudeFitness::evaluate(const isa::Kernel &kernel,
                             ga::EvalDetail *detail)
{
    return evaluate(kernel, detail, 0);
}

double
EmAmplitudeFitness::evaluate(const isa::Kernel &kernel,
                             ga::EvalDetail *detail,
                             std::uint32_t attempt)
{
    const std::uint64_t key = kernel.hash();
    // Link-level faults before any simulation work happens.
    faultAt(FaultPoint::ConnectionTimeout, key, attempt,
            latency_.deploy_s + latency_.timeout_s);
    faultAt(FaultPoint::KernelHang, key, attempt,
            latency_.deploy_s + latency_.start_stop_s
                + latency_.timeout_s);
    Rng noise = noiseFor(kernel, kEmNoiseSalt);
    instruments::SaMarker marker;
    std::size_t materialized = 0;
    if (settings_.streaming) {
        // Stream the antenna voltage straight into a Goertzel band
        // detector: no waveform is ever buffered. A scheduled
        // TruncatedStream fault interposes a TruncatingSink, which
        // unwinds streamKernel mid-capture at a schedule-drawn
        // cutoff.
        std::optional<instruments::SaBandDetector> det;
        std::optional<TruncatingSink> trunc;
        plat().streamKernel(
            kernel, settings_.duration_s,
            [&](const platform::StreamPlan &plan) {
                const double rate = 1.0 / plan.dt;
                if (!bank_ || bank_n_ != plan.n_samples
                    || bank_rate_hz_ != rate) {
                    bank_ = std::make_unique<dsp::GoertzelBank>(
                        plan.n_samples, rate, settings_.f_lo_hz,
                        settings_.f_hi_hz,
                        plat().analyzer().params().window);
                    bank_n_ = plan.n_samples;
                    bank_rate_hz_ = rate;
                }
                det.emplace(plat().analyzer().params(), *bank_,
                            settings_.f_lo_hz, settings_.f_hi_hz);
                SampleSink *em_obs = &*det;
                const std::size_t cut =
                    truncationCutoff(key, attempt, plan.n_samples);
                if (cut < plan.n_samples) {
                    injector_->recordInjected(
                        FaultPoint::TruncatedStream);
                    const double frac = static_cast<double>(cut)
                        / static_cast<double>(plan.n_samples);
                    trunc.emplace(
                        *em_obs, cut,
                        FaultError(FaultPoint::TruncatedStream, key,
                                   attempt,
                                   labSecondsPerIndividual(
                                       latency_,
                                       settings_.sa_samples)
                                           * frac
                                       + latency_.timeout_s));
                    em_obs = &*trunc;
                }
                return platform::StreamObservers{nullptr, nullptr,
                                                 em_obs};
            },
            settings_.active_cores);
        marker = det->averagedMaxAmplitude(settings_.sa_samples,
                                           noise);
    } else {
        const auto run = plat().runKernelBatch(
            kernel, settings_.duration_s, settings_.active_cores);
        materialized =
            run.v_die.size() + run.i_die.size() + run.em.size();
        marker = plat().analyzer().averagedMaxAmplitude(
            run.em, settings_.f_lo_hz, settings_.f_hi_hz,
            settings_.sa_samples, noise);
    }
    // The analyzer can return a corrupt marker: the measurement ran
    // to completion, so its full cost is wasted.
    faultAt(FaultPoint::GlitchedReading, key, attempt,
            labSecondsPerIndividual(latency_, settings_.sa_samples));
    if (detail) {
        detail->dominant_freq_hz = marker.freq_hz;
        detail->metric_raw = marker.power_dbm;
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, settings_.sa_samples);
        detail->samples_materialized = materialized;
    }
    return marker.power_dbm;
}

std::unique_ptr<ga::FitnessEvaluator>
EmAmplitudeFitness::clone() const
{
    auto copy = std::unique_ptr<EmAmplitudeFitness>(
        new EmAmplitudeFitness(
            std::shared_ptr<platform::Platform>(plat().clone()),
            settings_));
    copy->setFaultInjector(injector_);
    return copy;
}

MaxDroopFitness::MaxDroopFitness(platform::Platform &plat,
                                 const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(plat.hasVoltageVisibility(),
                  "droop fitness requires direct voltage "
                  "measurement; use EmAmplitudeFitness on "
                      + plat.config().name);
}

double
MaxDroopFitness::evaluate(const isa::Kernel &kernel,
                          ga::EvalDetail *detail)
{
    return evaluate(kernel, detail, 0);
}

double
MaxDroopFitness::evaluate(const isa::Kernel &kernel,
                          ga::EvalDetail *detail,
                          std::uint32_t attempt)
{
    const std::uint64_t key = kernel.hash();
    faultAt(FaultPoint::ConnectionTimeout, key, attempt,
            latency_.deploy_s + latency_.timeout_s);
    faultAt(FaultPoint::KernelHang, key, attempt,
            latency_.deploy_s + latency_.start_stop_s
                + latency_.timeout_s);
    // The scope can fail to trigger on the run: nothing is captured
    // and the host waits out the trigger timeout.
    faultAt(FaultPoint::TriggerMiss, key, attempt,
            latency_.deploy_s + latency_.start_stop_s
                + latency_.timeout_s);
    Rng noise = noiseFor(kernel, kDroopNoiseSalt);
    double droop = 0.0;
    std::size_t materialized = 0;
    std::optional<instruments::ScopeCaptureSink> sink;
    std::optional<TruncatingSink> trunc;
    Trace batch_cap(1.0);
    if (settings_.streaming) {
        // Stream the die voltage into the scope front end; only the
        // bounded record is buffered. TruncatedStream faults unwind
        // the stream mid-capture through a TruncatingSink.
        plat().streamKernel(
            kernel, settings_.duration_s,
            [&](const platform::StreamPlan &plan) {
                sink.emplace(plat().scope().params(), plan.n_samples,
                             plan.dt, noise);
                SampleSink *v_obs = &*sink;
                const std::size_t cut =
                    truncationCutoff(key, attempt, plan.n_samples);
                if (cut < plan.n_samples) {
                    injector_->recordInjected(
                        FaultPoint::TruncatedStream);
                    const double frac = static_cast<double>(cut)
                        / static_cast<double>(plan.n_samples);
                    trunc.emplace(
                        *v_obs, cut,
                        FaultError(FaultPoint::TruncatedStream, key,
                                   attempt,
                                   labSecondsPerIndividual(latency_,
                                                           3)
                                           * frac
                                       + latency_.timeout_s));
                    v_obs = &*trunc;
                }
                return platform::StreamObservers{v_obs, nullptr,
                                                 nullptr};
            },
            settings_.active_cores);
        droop = sink->maxDroop(plat().voltage());
        materialized = sink->capture().size();
    } else {
        const auto run = plat().runKernelBatch(
            kernel, settings_.duration_s, settings_.active_cores);
        batch_cap = plat().scope().capture(run.v_die, noise);
        droop = instruments::Oscilloscope::maxDroop(batch_cap,
                                                    plat().voltage());
        materialized = run.v_die.size() + run.i_die.size()
            + run.em.size() + batch_cap.size();
    }
    if (detail) {
        const Trace &cap =
            settings_.streaming ? sink->capture() : batch_cap;
        const auto spec = instruments::Oscilloscope::fftView(cap);
        const auto pk = dsp::maxPeakInBand(spec, settings_.f_lo_hz,
                                           settings_.f_hi_hz);
        detail->dominant_freq_hz = pk.freq_hz;
        detail->metric_raw = droop;
        // Scope-based measurement is quicker than 30 SA samples.
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, 3);
        detail->samples_materialized = materialized;
    }
    return droop;
}

std::unique_ptr<ga::FitnessEvaluator>
MaxDroopFitness::clone() const
{
    auto copy = std::unique_ptr<MaxDroopFitness>(new MaxDroopFitness(
        std::shared_ptr<platform::Platform>(plat().clone()),
        settings_));
    copy->setFaultInjector(injector_);
    return copy;
}

PeakToPeakFitness::PeakToPeakFitness(platform::Platform &plat,
                                     const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(plat.hasVoltageVisibility(),
                  "peak-to-peak fitness requires direct voltage "
                  "measurement; use EmAmplitudeFitness on "
                      + plat.config().name);
}

double
PeakToPeakFitness::evaluate(const isa::Kernel &kernel,
                            ga::EvalDetail *detail)
{
    return evaluate(kernel, detail, 0);
}

double
PeakToPeakFitness::evaluate(const isa::Kernel &kernel,
                            ga::EvalDetail *detail,
                            std::uint32_t attempt)
{
    const std::uint64_t key = kernel.hash();
    faultAt(FaultPoint::ConnectionTimeout, key, attempt,
            latency_.deploy_s + latency_.timeout_s);
    faultAt(FaultPoint::KernelHang, key, attempt,
            latency_.deploy_s + latency_.start_stop_s
                + latency_.timeout_s);
    faultAt(FaultPoint::TriggerMiss, key, attempt,
            latency_.deploy_s + latency_.start_stop_s
                + latency_.timeout_s);
    Rng noise = noiseFor(kernel, kP2pNoiseSalt);
    double p2p = 0.0;
    std::size_t materialized = 0;
    std::optional<instruments::ScopeCaptureSink> sink;
    std::optional<TruncatingSink> trunc;
    Trace batch_cap(1.0);
    if (settings_.streaming) {
        plat().streamKernel(
            kernel, settings_.duration_s,
            [&](const platform::StreamPlan &plan) {
                sink.emplace(plat().scope().params(), plan.n_samples,
                             plan.dt, noise);
                SampleSink *v_obs = &*sink;
                const std::size_t cut =
                    truncationCutoff(key, attempt, plan.n_samples);
                if (cut < plan.n_samples) {
                    injector_->recordInjected(
                        FaultPoint::TruncatedStream);
                    const double frac = static_cast<double>(cut)
                        / static_cast<double>(plan.n_samples);
                    trunc.emplace(
                        *v_obs, cut,
                        FaultError(FaultPoint::TruncatedStream, key,
                                   attempt,
                                   labSecondsPerIndividual(latency_,
                                                           3)
                                           * frac
                                       + latency_.timeout_s));
                    v_obs = &*trunc;
                }
                return platform::StreamObservers{v_obs, nullptr,
                                                 nullptr};
            },
            settings_.active_cores);
        p2p = sink->peakToPeak();
        materialized = sink->capture().size();
    } else {
        const auto run = plat().runKernelBatch(
            kernel, settings_.duration_s, settings_.active_cores);
        batch_cap = plat().scope().capture(run.v_die, noise);
        p2p = instruments::Oscilloscope::peakToPeak(batch_cap);
        materialized = run.v_die.size() + run.i_die.size()
            + run.em.size() + batch_cap.size();
    }
    if (detail) {
        const Trace &cap =
            settings_.streaming ? sink->capture() : batch_cap;
        const auto spec = instruments::Oscilloscope::fftView(cap);
        const auto pk = dsp::maxPeakInBand(spec, settings_.f_lo_hz,
                                           settings_.f_hi_hz);
        detail->dominant_freq_hz = pk.freq_hz;
        detail->metric_raw = p2p;
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, 3);
        detail->samples_materialized = materialized;
    }
    return p2p;
}

std::unique_ptr<ga::FitnessEvaluator>
PeakToPeakFitness::clone() const
{
    auto copy =
        std::unique_ptr<PeakToPeakFitness>(new PeakToPeakFitness(
            std::shared_ptr<platform::Platform>(plat().clone()),
            settings_));
    copy->setFaultInjector(injector_);
    return copy;
}

InProcessTarget::InProcessTarget(platform::Platform &plat,
                                 const EvalSettings &settings)
    : plat_(plat), settings_(settings)
{}

void
InProcessTarget::deploy(const isa::Kernel &kernel)
{
    if (inject_failures_ > 0) {
        --inject_failures_;
        throw SimulationError("injected deploy failure to "
                              + describe());
    }
    if (injector_) {
        injector_->atCounted(FaultPoint::ConnectionTimeout,
                             kernel.hash(), deploy_attempt_,
                             latency_.deploy_s + latency_.timeout_s);
    }
    kernel.validate(plat_.pool()); // "compile": reject bad encodings
    deployed_ = kernel;
    has_deployed_ = true;
    lab_seconds_ += latency_.deploy_s;
}

void
InProcessTarget::startRun()
{
    requireSim(has_deployed_, "startRun before deploy");
    if (injector_) {
        injector_->atCounted(FaultPoint::KernelHang, deployed_.hash(),
                             start_attempt_,
                             latency_.start_stop_s
                                 + latency_.timeout_s);
    }
    running_ = true;
    lab_seconds_ += latency_.start_stop_s * 0.5;
}

Trace
InProcessTarget::measureEm()
{
    requireSim(running_, "measureEm while no binary is running");
    if (injector_) {
        injector_->atCounted(FaultPoint::TriggerMiss,
                             deployed_.hash(), measure_attempt_,
                             latency_.per_sample_s
                                 + latency_.timeout_s);
    }
    lab_seconds_ += latency_.per_sample_s;
    return plat_
        .runKernel(deployed_, settings_.duration_s,
                   settings_.active_cores)
        .em;
}

void
InProcessTarget::stopRun()
{
    requireSim(running_, "stopRun while nothing runs");
    running_ = false;
    lab_seconds_ += latency_.start_stop_s * 0.5;
}

std::string
InProcessTarget::describe() const
{
    return "in-process://" + plat_.config().name;
}

} // namespace core
} // namespace emstress
