/**
 * @file
 * Fitness evaluator implementations.
 */

#include "core/fitness.h"

#include "dsp/spectrum.h"
#include "util/error.h"

namespace emstress {
namespace core {

namespace {

/** Modeled lab seconds for one individual's measurement. */
double
labSecondsPerIndividual(const ga::ConnectionLatency &lat,
                        std::size_t samples)
{
    return lat.deploy_s + lat.start_stop_s
        + lat.per_sample_s * static_cast<double>(samples);
}

/// Per-metric noise salts: the same kernel measured through
/// different instruments must not see correlated noise.
constexpr std::uint64_t kEmNoiseSalt = 0x454d5f414d504cull;
constexpr std::uint64_t kDroopNoiseSalt = 0x44524f4f50ull;
constexpr std::uint64_t kP2pNoiseSalt = 0x5032505full;

} // namespace

EmAmplitudeFitness::EmAmplitudeFitness(platform::Platform &plat,
                                       const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(settings.f_hi_hz > settings.f_lo_hz,
                  "EM band must have positive width");
    requireConfig(settings.duration_s > 0.0,
                  "evaluation duration must be positive");
}

double
EmAmplitudeFitness::evaluate(const isa::Kernel &kernel,
                             ga::EvalDetail *detail)
{
    const auto run = plat().runKernel(kernel, settings_.duration_s,
                                      settings_.active_cores);
    Rng noise = noiseFor(kernel, kEmNoiseSalt);
    const auto marker = plat().analyzer().averagedMaxAmplitude(
        run.em, settings_.f_lo_hz, settings_.f_hi_hz,
        settings_.sa_samples, noise);
    if (detail) {
        detail->dominant_freq_hz = marker.freq_hz;
        detail->metric_raw = marker.power_dbm;
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, settings_.sa_samples);
    }
    return marker.power_dbm;
}

std::unique_ptr<ga::FitnessEvaluator>
EmAmplitudeFitness::clone() const
{
    return std::unique_ptr<ga::FitnessEvaluator>(
        new EmAmplitudeFitness(
            std::shared_ptr<platform::Platform>(plat().clone()),
            settings_));
}

MaxDroopFitness::MaxDroopFitness(platform::Platform &plat,
                                 const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(plat.hasVoltageVisibility(),
                  "droop fitness requires direct voltage "
                  "measurement; use EmAmplitudeFitness on "
                      + plat.config().name);
}

double
MaxDroopFitness::evaluate(const isa::Kernel &kernel,
                          ga::EvalDetail *detail)
{
    const auto run = plat().runKernel(kernel, settings_.duration_s,
                                      settings_.active_cores);
    Rng noise = noiseFor(kernel, kDroopNoiseSalt);
    const Trace cap = plat().scope().capture(run.v_die, noise);
    const double droop = instruments::Oscilloscope::maxDroop(
        cap, plat().voltage());
    if (detail) {
        const auto spec = instruments::Oscilloscope::fftView(cap);
        const auto pk = dsp::maxPeakInBand(spec, settings_.f_lo_hz,
                                           settings_.f_hi_hz);
        detail->dominant_freq_hz = pk.freq_hz;
        detail->metric_raw = droop;
        // Scope-based measurement is quicker than 30 SA samples.
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, 3);
    }
    return droop;
}

std::unique_ptr<ga::FitnessEvaluator>
MaxDroopFitness::clone() const
{
    return std::unique_ptr<ga::FitnessEvaluator>(new MaxDroopFitness(
        std::shared_ptr<platform::Platform>(plat().clone()),
        settings_));
}

PeakToPeakFitness::PeakToPeakFitness(platform::Platform &plat,
                                     const EvalSettings &settings)
    : PlatformFitness(plat, settings)
{
    requireConfig(plat.hasVoltageVisibility(),
                  "peak-to-peak fitness requires direct voltage "
                  "measurement; use EmAmplitudeFitness on "
                      + plat.config().name);
}

double
PeakToPeakFitness::evaluate(const isa::Kernel &kernel,
                            ga::EvalDetail *detail)
{
    const auto run = plat().runKernel(kernel, settings_.duration_s,
                                      settings_.active_cores);
    Rng noise = noiseFor(kernel, kP2pNoiseSalt);
    const Trace cap = plat().scope().capture(run.v_die, noise);
    const double p2p = instruments::Oscilloscope::peakToPeak(cap);
    if (detail) {
        const auto spec = instruments::Oscilloscope::fftView(cap);
        const auto pk = dsp::maxPeakInBand(spec, settings_.f_lo_hz,
                                           settings_.f_hi_hz);
        detail->dominant_freq_hz = pk.freq_hz;
        detail->metric_raw = p2p;
        detail->measurement_seconds =
            labSecondsPerIndividual(latency_, 3);
    }
    return p2p;
}

std::unique_ptr<ga::FitnessEvaluator>
PeakToPeakFitness::clone() const
{
    return std::unique_ptr<ga::FitnessEvaluator>(new PeakToPeakFitness(
        std::shared_ptr<platform::Platform>(plat().clone()),
        settings_));
}

InProcessTarget::InProcessTarget(platform::Platform &plat,
                                 const EvalSettings &settings)
    : plat_(plat), settings_(settings)
{}

void
InProcessTarget::deploy(const isa::Kernel &kernel)
{
    if (inject_failures_ > 0) {
        --inject_failures_;
        throw SimulationError("injected deploy failure to "
                              + describe());
    }
    kernel.validate(plat_.pool()); // "compile": reject bad encodings
    deployed_ = kernel;
    has_deployed_ = true;
    lab_seconds_ += latency_.deploy_s;
}

void
InProcessTarget::startRun()
{
    requireSim(has_deployed_, "startRun before deploy");
    running_ = true;
    lab_seconds_ += latency_.start_stop_s * 0.5;
}

Trace
InProcessTarget::measureEm()
{
    requireSim(running_, "measureEm while no binary is running");
    lab_seconds_ += latency_.per_sample_s;
    return plat_
        .runKernel(deployed_, settings_.duration_s,
                   settings_.active_cores)
        .em;
}

void
InProcessTarget::stopRun()
{
    requireSim(running_, "stopRun while nothing runs");
    running_ = false;
    lab_seconds_ += latency_.start_stop_s * 0.5;
}

std::string
InProcessTarget::describe() const
{
    return "in-process://" + plat_.config().name;
}

} // namespace core
} // namespace emstress
