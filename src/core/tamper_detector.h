/**
 * @file
 * PDN tamper detection via EM fingerprinting — one of the paper's
 * proposed applications (Section 5.3: quick resonance measurement is
 * useful "for post-production purposes like PDN simulation
 * validation, tampering detection etc."). A device's EM loop-sweep
 * curve is a fingerprint of its power-delivery network: hardware
 * modifications (removed/added decoupling capacitors, interposers,
 * probes on the rails) change the die-visible capacitance or loop
 * inductance and therefore shift the 1st-order resonance and reshape
 * the amplitude profile — all observable without touching the board.
 */

#ifndef EMSTRESS_CORE_TAMPER_DETECTOR_H
#define EMSTRESS_CORE_TAMPER_DETECTOR_H

#include <string>
#include <vector>

#include "core/resonance_explorer.h"
#include "platform/platform.h"
#include "util/units.h"

namespace emstress {
namespace core {

/** A device's PDN fingerprint. */
struct PdnFingerprint
{
    std::vector<EmSweepPoint> sweep; ///< Loop-frequency EM curve.
    double resonance_hz = 0.0;       ///< Extracted 1st-order peak.
};

/** Verdict of a fingerprint comparison. */
struct TamperVerdict
{
    bool tampered = false;
    double resonance_shift_hz = 0.0; ///< observed - baseline.
    double profile_distance_db = 0.0;///< Mean |amplitude delta| over
                                     ///< overlapping sweep points.
    std::string reason;              ///< Human-readable finding.
};

/** Detection thresholds. */
struct TamperThresholds
{
    /// Resonance shift beyond this flags tampering [Hz]. Must sit
    /// above sweep granularity and measurement noise.
    double max_resonance_shift_hz = mega(4.0);
    /// Mean absolute amplitude-profile change beyond this flags
    /// tampering [dB].
    double max_profile_distance_db = 6.0;
};

/**
 * EM fingerprinting engine.
 */
class TamperDetector
{
  public:
    /**
     * Acquire a fingerprint: run the fast EM loop sweep and extract
     * the resonance.
     * @param plat       Device under test (DVFS state is swept and
     *                   restored).
     * @param duration_s Measurement window per sweep point.
     * @param sa_samples Spectrum samples per point.
     */
    static PdnFingerprint acquire(platform::Platform &plat,
                                  double duration_s = 4e-6,
                                  std::size_t sa_samples = 5);

    /**
     * Compare a fresh fingerprint against a known-good baseline.
     */
    static TamperVerdict check(const PdnFingerprint &baseline,
                               const PdnFingerprint &observed,
                               const TamperThresholds &thresholds
                               = {});
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_TAMPER_DETECTOR_H
