/**
 * @file
 * Tamper detector implementation.
 */

#include "core/tamper_detector.h"

#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/units.h"

namespace emstress {
namespace core {

PdnFingerprint
TamperDetector::acquire(platform::Platform &plat, double duration_s,
                        std::size_t sa_samples)
{
    ResonanceExplorer explorer(plat);
    PdnFingerprint fp;
    fp.sweep = explorer.sweep(duration_s, sa_samples);
    fp.resonance_hz =
        ResonanceExplorer::estimateResonanceHz(fp.sweep);
    return fp;
}

TamperVerdict
TamperDetector::check(const PdnFingerprint &baseline,
                      const PdnFingerprint &observed,
                      const TamperThresholds &thresholds)
{
    requireConfig(!baseline.sweep.empty() && !observed.sweep.empty(),
                  "fingerprints must contain sweep points");

    TamperVerdict verdict;
    verdict.resonance_shift_hz =
        observed.resonance_hz - baseline.resonance_hz;

    // Amplitude-profile distance over matching loop frequencies.
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto &b : baseline.sweep) {
        for (const auto &o : observed.sweep) {
            if (std::abs(b.loop_freq_hz - o.loop_freq_hz)
                < 0.02 * b.loop_freq_hz) {
                acc += std::abs(b.em_dbm - o.em_dbm);
                ++n;
                break;
            }
        }
    }
    requireSim(n >= 3, "fingerprints share too few sweep points to "
                       "compare");
    verdict.profile_distance_db = acc / static_cast<double>(n);

    std::ostringstream why;
    if (std::abs(verdict.resonance_shift_hz)
        > thresholds.max_resonance_shift_hz) {
        verdict.tampered = true;
        why << "resonance shifted "
            << verdict.resonance_shift_hz / mega(1.0) << " MHz ("
            << (verdict.resonance_shift_hz > 0
                    ? "capacitance removed or loop shortened"
                    : "capacitance/probe added")
            << "); ";
    }
    if (verdict.profile_distance_db
        > thresholds.max_profile_distance_db) {
        verdict.tampered = true;
        why << "EM amplitude profile moved by "
            << verdict.profile_distance_db << " dB on average; ";
    }
    verdict.reason =
        verdict.tampered ? why.str() : "fingerprint matches baseline";
    return verdict;
}

} // namespace core
} // namespace emstress
