/**
 * @file
 * Cross-platform virus analysis (paper Section 8, Table 2): per-virus
 * IPC, loop period/frequency, dominant frequency, voltage margin and
 * instruction-type mix, plus the Section 8.2 minimum-IPC relation
 * linking loop and resonant frequencies.
 */

#ifndef EMSTRESS_CORE_VIRUS_ANALYSIS_H
#define EMSTRESS_CORE_VIRUS_ANALYSIS_H

#include <string>

#include "isa/kernel.h"
#include "platform/platform.h"

namespace emstress {
namespace core {

/** One row of Table 2. */
struct VirusTableRow
{
    std::string virus_name;
    std::size_t loop_instructions = 0;
    double ipc = 0.0;
    double loop_period_ns = 0.0;
    double loop_freq_mhz = 0.0;
    double dominant_freq_mhz = 0.0;
    double voltage_margin_mv = 0.0;

    /// Instruction-type mix fractions (Table 2's columns).
    double pct_branch = 0.0;
    double pct_sl_int_reg = 0.0;
    double pct_ll_int_reg = 0.0;
    double pct_sl_int_mem = 0.0; ///< x86 only.
    double pct_ll_int_mem = 0.0; ///< x86 only.
    double pct_float = 0.0;
    double pct_simd = 0.0;
    double pct_mem = 0.0;        ///< ARM loads/stores only.
};

/**
 * Build a Table 2 row for a virus.
 *
 * @param plat        Platform the virus targets.
 * @param virus_name  Row label (e.g. "a72em").
 * @param kernel      The virus.
 * @param vmin_v      Its measured V_MIN (0 to omit the margin).
 * @param duration_s  Characterization window.
 * @param sa_samples  Spectrum samples for the dominant frequency.
 */
VirusTableRow analyzeVirus(platform::Platform &plat,
                           const std::string &virus_name,
                           const isa::Kernel &kernel, double vmin_v,
                           double duration_s = 4e-6,
                           std::size_t sa_samples = 10);

/**
 * Section 8.2's relation: the minimum IPC needed for the loop
 * frequency itself to match the resonant frequency,
 * minIPC = resonant_freq * loop_instructions / clock_freq.
 */
double minIpcForResonantLoop(double resonant_freq_hz,
                             std::size_t loop_instructions,
                             double clock_freq_hz);

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_VIRUS_ANALYSIS_H
