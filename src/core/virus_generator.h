/**
 * @file
 * Top-level virus generation API: run the GA against a platform with
 * a chosen feedback metric and return the winning dI/dt virus with
 * its convergence history and post-hoc characterization — the
 * workflow behind Figs. 7, 12 and 17.
 */

#ifndef EMSTRESS_CORE_VIRUS_GENERATOR_H
#define EMSTRESS_CORE_VIRUS_GENERATOR_H

#include <string>

#include "core/fitness.h"
#include "ga/ga_engine.h"
#include "platform/platform.h"

namespace emstress {
namespace core {

/** Feedback metric driving the search. */
enum class VirusMetric
{
    EmAmplitude, ///< Antenna + spectrum analyzer (the contribution).
    MaxDroop,    ///< Direct voltage droop (OC-DSO / Kelvin baseline).
    PeakToPeak,  ///< Direct peak-to-peak voltage.
};

/** Display name of a metric. */
std::string virusMetricName(VirusMetric metric);

/** Search configuration. */
struct VirusSearchConfig
{
    ga::GaConfig ga;     ///< GA hyper-parameters (paper defaults).
    EvalSettings eval;   ///< Measurement settings.
    VirusMetric metric = VirusMetric::EmAmplitude;
    /// Optional fault injector for the modeled lab link: evaluations
    /// then fault per its schedule and are retried under ga.retry.
    /// Null runs fault-free.
    std::shared_ptr<ga::FaultInjector> faults;
};

/** The generated virus plus its characterization. */
struct VirusReport
{
    isa::Kernel virus;            ///< Best individual found.
    ga::GaResult ga;              ///< Full convergence history.
    std::string metric;           ///< Metric that drove the search.
    double dominant_freq_hz = 0;  ///< Its strongest EM component.
    double loop_freq_hz = 0;      ///< 1 / steady loop period.
    double ipc = 0;               ///< Steady-state IPC.
    double max_droop_v = 0;       ///< Droop at nominal voltage (only
                                  ///< when visibility exists, else 0).
    double peak_to_peak_v = 0;    ///< P2P at nominal (ditto).
};

/**
 * Virus generator bound to one platform.
 */
class VirusGenerator
{
  public:
    /** Bind to a platform (not owned). */
    explicit VirusGenerator(platform::Platform &plat);

    /**
     * Run the search and characterize the winner.
     * @param config   Search configuration.
     * @param callback Optional per-generation observer.
     */
    VirusReport search(const VirusSearchConfig &config,
                       const ga::GenerationCallback &callback = nullptr);

    /**
     * Characterize an existing kernel (fills everything except the
     * GA history).
     */
    VirusReport characterize(const isa::Kernel &kernel,
                             const EvalSettings &eval);

  private:
    platform::Platform &plat_;
};

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_VIRUS_GENERATOR_H
