/**
 * @file
 * Simultaneous multi-domain voltage-noise monitoring (paper Section
 * 6.1): a single antenna observes several voltage domains at once —
 * impossible with a physically attached scope — so concurrent viruses
 * on the Cortex-A72 and Cortex-A53 clusters show up as separate
 * signatures in one spectrum (Fig. 15).
 */

#ifndef EMSTRESS_CORE_MULTIDOMAIN_H
#define EMSTRESS_CORE_MULTIDOMAIN_H

#include <string>
#include <vector>

#include "instruments/spectrum_analyzer.h"
#include "isa/kernel.h"
#include "platform/platform.h"
#include "util/units.h"

namespace emstress {
namespace core {

/** One domain under simultaneous observation. */
struct DomainWorkload
{
    platform::Platform *plat = nullptr; ///< The domain (not owned).
    isa::Kernel kernel;                 ///< What it runs.
    std::size_t active_cores = 0;       ///< 0 = all powered.
    bool idle = false;                  ///< True: nothing running
                                        ///< (kernel ignored).
};

/** Result of a multi-domain observation. */
struct MultiDomainResult
{
    instruments::SaSweep sweep;     ///< Combined spectrum.
    std::vector<double> domain_dominant_hz; ///< Per-domain dominant
                                            ///< frequency (isolated).
};

/**
 * Run every domain's kernel concurrently, combine their radiated
 * signals at one antenna, and sweep the spectrum.
 *
 * @param domains    Domains and their kernels (>= 1).
 * @param duration_s Observation window.
 * @param analyzer   Spectrum analyzer to use (typically the first
 *                   domain's).
 * @param f_lo_hz/f_hi_hz Band for the per-domain dominant markers.
 */
MultiDomainResult monitorDomains(std::vector<DomainWorkload> &domains,
                                 double duration_s,
                                 instruments::SpectrumAnalyzer &analyzer,
                                 double f_lo_hz = mega(50.0),
                                 double f_hi_hz = mega(200.0));

} // namespace core
} // namespace emstress

#endif // EMSTRESS_CORE_MULTIDOMAIN_H
