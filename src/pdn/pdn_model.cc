/**
 * @file
 * PDN model implementation.
 */

#include "pdn/pdn_model.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/metrics.h"
#include "util/units.h"

namespace emstress {
namespace pdn {

double
PdnParameters::dieCapacitance(std::size_t powered_cores) const
{
    // A fully gated domain (powered_cores == 0) is a different
    // circuit — the rail collapses and the uncore is off too — not
    // the one-core ladder; silently aliasing it to k = 1 hid fig13
    // configuration mistakes. Reject instead of clamping up.
    requireConfig(powered_cores >= 1,
                  "dieCapacitance: powered_cores must be >= 1 (a fully "
                  "power-gated domain has no die ladder to model)");
    const std::size_t k = std::min(powered_cores, n_cores);
    return c_die_uncore + static_cast<double>(k) * c_die_core;
}

double
PdnParameters::firstOrderResonance(std::size_t powered_cores) const
{
    // At the 1st-order resonance the package decap is a short through
    // its ESL, so the tank loop inductance is l_pkg_die + esl_pkg.
    return lcResonanceHz(l_pkg_die + esl_pkg,
                         dieCapacitance(powered_cores));
}

void
PdnParameters::calibrateDieTank(double f_all_cores, double f_one_core,
                                std::size_t n, double c_per_core)
{
    requireConfig(n >= 2, "calibrateDieTank needs at least two cores");
    requireConfig(f_one_core > f_all_cores,
                  "one-core resonance must exceed all-core resonance "
                  "(less capacitance -> higher frequency)");
    requireConfig(c_per_core > 0.0, "per-core capacitance must be > 0");

    // f ~ 1/sqrt(C): with r = (f_one/f_all)^2,
    //   c_u + n*c_c = r * (c_u + c_c)  =>  c_u = c_c * (n - r)/(r - 1).
    const double r = (f_one_core / f_all_cores)
        * (f_one_core / f_all_cores);
    requireConfig(r < static_cast<double>(n),
                  "resonance anchors inconsistent with core count: "
                  "(f_one/f_all)^2 must be below n_cores");
    n_cores = n;
    c_die_core = c_per_core;
    c_die_uncore = c_per_core * (static_cast<double>(n) - r) / (r - 1.0);
    // The decap ESL sits in series within the tank loop; subtract it
    // so the realized ladder hits the anchor. Set esl_pkg before
    // calling this.
    const double l_eff =
        inductanceForResonance(f_all_cores, dieCapacitance(n_cores));
    requireConfig(l_eff > esl_pkg,
                  "package decap ESL exceeds the tank inductance "
                  "implied by the resonance anchors; lower esl_pkg or "
                  "c_per_core");
    l_pkg_die = l_eff - esl_pkg;
}

PdnModel::PdnModel(const PdnParameters &params)
    : params_(params), powered_cores_(params.n_cores)
{
    rebuild();
}

void
PdnModel::rebuild()
{
    netlist_ = circuit::Netlist();
    engine_.reset();
    engine_dt_ = 0.0;

    using circuit::kGround;
    auto &nl = netlist_;

    const auto n_vrm = nl.newNode();
    const auto n_pcb = nl.newNode();
    const auto n_pkg = nl.newNode();
    n_die_ = nl.newNode();

    // Supply rail behind the VRM output filter.
    nl.addVoltageSource("v_supply", n_vrm, kGround, params_.v_nom);
    const auto n_vrm_mid = nl.newNode();
    nl.addResistor("r_vrm", n_vrm, n_vrm_mid, params_.r_vrm);
    nl.addInductor("l_vrm", n_vrm_mid, n_pcb, params_.l_vrm);

    // Bulk capacitance on the PCB (3rd-order tank).
    const auto n_blk1 = nl.newNode();
    const auto n_blk2 = nl.newNode();
    nl.addCapacitor("c_pcb", n_pcb, n_blk1, params_.c_pcb);
    nl.addInductor("esl_pcb", n_blk1, n_blk2, params_.esl_pcb);
    nl.addResistor("esr_pcb", n_blk2, kGround, params_.esr_pcb);

    // PCB power trace to the package (2nd-order tank inductance).
    const auto n_pcb_mid = nl.newNode();
    nl.addResistor("r_pcb", n_pcb, n_pcb_mid, params_.r_pcb);
    nl.addInductor("l_pcb", n_pcb_mid, n_pkg, params_.l_pcb);

    // Package decap (2nd-order tank capacitance).
    const auto n_pkgc1 = nl.newNode();
    const auto n_pkgc2 = nl.newNode();
    nl.addCapacitor("c_pkg", n_pkg, n_pkgc1, params_.c_pkg);
    nl.addInductor("esl_pkg", n_pkgc1, n_pkgc2, params_.esl_pkg);
    nl.addResistor("esr_pkg", n_pkgc2, kGround, params_.esr_pkg);

    // Optional damped bulk branch (anti-resonance damping).
    if (params_.c_pkg_bulk > 0.0) {
        const auto n_blkc1 = nl.newNode();
        const auto n_blkc2 = nl.newNode();
        nl.addCapacitor("c_pkg_bulk", n_pkg, n_blkc1,
                        params_.c_pkg_bulk);
        nl.addInductor("esl_pkg_bulk", n_blkc1, n_blkc2,
                       params_.esl_pkg_bulk);
        nl.addResistor("esr_pkg_bulk", n_blkc2, kGround,
                       params_.esr_pkg_bulk);
    }

    // Package-to-die loop (1st-order tank inductance) — the branch
    // whose current is "I_DIE" in Fig. 2 and the EM radiator feed.
    const auto n_pkg_mid = nl.newNode();
    nl.addResistor("r_pkg", n_pkg, n_pkg_mid, params_.r_pkg);
    nl.addInductor("l_pkg_die", n_pkg_mid, n_die_, params_.l_pkg_die);

    // Die: grid resistance in series with the (power-gating dependent)
    // die capacitance, per Fig. 1(a).
    const auto n_dcap = nl.newNode();
    nl.addResistor("r_die", n_die_, n_dcap, params_.r_die);
    nl.addCapacitor("c_die", n_dcap, kGround,
                    params_.dieCapacitance(powered_cores_));

    // CPU load current, drawn from the die node to ground.
    nl.addCurrentSource("i_load", n_die_, kGround, 0.0);
    // SCL injector shares the die node (Juno OC-DSO block).
    nl.addCurrentSource("i_scl", n_die_, kGround, 0.0);
    // Active-EMFI probe coupling, only when armed: the source order
    // is load, SCL, pulse, and a disabled pulse keeps the passive
    // 2-source netlist byte-identical to the pre-EMFI one.
    if (pulse_source_)
        nl.addCurrentSource("i_pulse", n_die_, kGround, 0.0);
}

void
PdnModel::setPulseSource(bool enabled)
{
    if (enabled == pulse_source_)
        return;
    pulse_source_ = enabled;
    rebuild();
}

void
PdnModel::setPoweredCores(std::size_t powered_cores)
{
    requireConfig(powered_cores >= 1
                      && powered_cores <= params_.n_cores,
                  "powered core count outside [1, n_cores]");
    if (powered_cores == powered_cores_)
        return;
    powered_cores_ = powered_cores;
    rebuild();
}

void
PdnModel::setSupplyVoltage(double v)
{
    requireConfig(v > 0.0, "supply voltage must be positive");
    if (v == params_.v_nom)
        return;
    params_.v_nom = v;
    rebuild();
}

const circuit::TransientAnalysis &
PdnModel::engineFor(double dt) const
{
    if (!engine_ || engine_dt_ != dt) {
        engine_.emplace(netlist_, dt);
        engine_dt_ = dt;
    }
    return *engine_;
}

PdnSimResult
PdnModel::simulate(const Trace &i_load,
                   const circuit::SourceWaveform &i_scl,
                   const circuit::SourceWaveform &i_pulse) const
{
    requireConfig(!i_load.empty(), "PDN simulate needs a load trace");
    requireConfig(!i_pulse || pulse_source_,
                  "pulse injection needs the pulse source enabled "
                  "(PdnModel::setPulseSource)");
    const auto &eng = engineFor(i_load.dt());

    const double dt = i_load.dt();
    const std::size_t n = i_load.size();
    auto load_wave = [&i_load, dt, n](double t) {
        auto idx = static_cast<std::size_t>(t / dt + 0.5);
        if (idx >= n)
            idx = n - 1;
        return i_load[idx];
    };
    circuit::SourceWaveform scl_wave = i_scl
        ? i_scl
        : circuit::SourceWaveform([](double) { return 0.0; });

    std::vector<circuit::Probe> probes = {
        {circuit::ProbeKind::NodeVoltage, n_die_, "", "v_die"},
        {circuit::ProbeKind::BranchCurrent, circuit::kGround,
         "l_pkg_die", "i_die"},
    };
    // Bias the initial DC point at the mean load so the slow bulk
    // tanks start settled.
    double mean_load = 0.0;
    for (double v : i_load.samples())
        mean_load += v;
    mean_load /= static_cast<double>(i_load.size());

    std::vector<circuit::SourceWaveform> waves = {load_wave, scl_wave};
    std::vector<double> bias = {mean_load, 0.0};
    if (pulse_source_) {
        waves.push_back(i_pulse ? i_pulse
                                : circuit::SourceWaveform(
                                      [](double) { return 0.0; }));
        bias.push_back(0.0);
    }
    auto result = eng.run(n, waves, probes, bias);
    return {result.trace("v_die"), result.trace("i_die")};
}

PdnStreamSink::PdnStreamSink(const circuit::TransientAnalysis &engine,
                             double dt, double mean_load,
                             std::size_t iv_die, std::size_t ii_die,
                             SampleSink *v_die_out,
                             SampleSink *i_die_out,
                             circuit::SourceWaveform i_pulse)
    : engine_(&engine), dt_(dt), mean_load_(mean_load),
      iv_die_(iv_die), ii_die_(ii_die), v_die_out_(v_die_out),
      i_die_out_(i_die_out), i_pulse_(std::move(i_pulse)),
      n_src_(engine.mna().currentSourceNames().size())
{
    requireSim(n_src_ == 2 || n_src_ == 3,
               "PDN stream sink expects the load/SCL[/pulse] sources");
    if (n_src_ == 3 && !i_pulse_)
        i_pulse_ = [](double) { return 0.0; };
}

void
PdnStreamSink::fillSourceRow(double *row, double i_load,
                             std::size_t step) const
{
    row[0] = i_load;
    row[1] = 0.0;
    if (n_src_ == 3)
        row[2] = i_pulse_(dt_ * static_cast<double>(step));
}

void
PdnStreamSink::emitProbes()
{
    if (v_die_out_)
        v_die_out_->push(stepper_->value(iv_die_));
    if (i_die_out_)
        i_die_out_->push(stepper_->value(ii_die_));
    ++emitted_;
}

void
PdnStreamSink::drainBlock()
{
    if (buffered_ == 0)
        return;
    block_->stepBlock(in_buf_.data(), buffered_, probe_buf_.data());
    for (std::size_t r = 0; r < buffered_; ++r) {
        if (v_die_out_)
            v_die_out_->push(probe_buf_[2 * r]);
        if (i_die_out_)
            i_die_out_->push(probe_buf_[2 * r + 1]);
        ++emitted_;
    }
    buffered_ = 0;
}

void
PdnStreamSink::push(double i_load)
{
    if (!stepper_ && !block_) {
        // Matches simulate(): the DC point is biased at the mean load
        // while the trapezoidal source history starts from the t = 0
        // sample — exactly the steppers' (bias, initial) convention.
        // run() seeds that history from the waveforms at t = 0, so
        // the pulse column starts at i_pulse(0).
        std::array<double, 3> bias{};
        std::array<double, 3> src{};
        bias[0] = mean_load_;
        fillSourceRow(src.data(), i_load, 0);
        const std::span<const double> bias_s(bias.data(), n_src_);
        const std::span<const double> src_s(src.data(), n_src_);
        if (engine_->method() == circuit::TransientMethod::FastState) {
            // Probe both states unconditionally: per-row mat-vec sums
            // are element-independent, so the extra row never changes
            // the requested one, and the block partition (full blocks
            // from step 1, remainder at finish) is the one run()
            // executes — replay stays bit-exact.
            const std::array<std::size_t, 2> probes = {iv_die_,
                                                       ii_die_};
            block_.emplace(
                engine_->makeBlockStepper(bias_s, src_s, probes));
        } else {
            stepper_.emplace(engine_->makeStepper(bias_s, src_s));
        }
    } else if (block_) {
        fillSourceRow(&in_buf_[n_src_ * buffered_], i_load,
                      next_step_);
        ++next_step_;
        if (++buffered_ == circuit::kStreamBlock)
            drainBlock();
    } else {
        std::array<double, 3> src{};
        fillSourceRow(src.data(), i_load, next_step_);
        ++next_step_;
        stepper_->step(std::span<const double>(src.data(), n_src_));
        emitProbes();
    }
    last_ = i_load;
}

void
PdnStreamSink::finish()
{
    if (!finished_) {
        // The batch waveform lookup clamps past-the-end times to the
        // last sample, so the final step re-uses it; the pulse column
        // is a true waveform with no clamp, evaluated at the final
        // step time exactly as run() would.
        if (block_) {
            // drainBlock keeps buffered_ < kStreamBlock, so the
            // clamped step always fits the pending tail.
            fillSourceRow(&in_buf_[n_src_ * buffered_], last_,
                          next_step_);
            ++next_step_;
            ++buffered_;
            drainBlock();
            block_->flushMetrics();
        } else if (stepper_) {
            std::array<double, 3> src{};
            fillSourceRow(src.data(), last_, next_step_);
            ++next_step_;
            stepper_->step(
                std::span<const double>(src.data(), n_src_));
            emitProbes();
            // The stepper truthfully flushes its own step and solve
            // counters (steps + state_updates or lu_solves, depending
            // on the active path); the sink only accounts for its
            // emissions.
            stepper_->flushMetrics();
        }
        metrics::Registry::instance().add("pdn.stream.samples",
                                          emitted_);
    }
    finished_ = true;
    if (v_die_out_)
        v_die_out_->finish();
    if (i_die_out_)
        i_die_out_->finish();
}

PdnStreamSink
PdnModel::streamSim(double dt, double mean_load, SampleSink *v_die_out,
                    SampleSink *i_die_out,
                    const circuit::SourceWaveform &i_pulse) const
{
    requireConfig(dt > 0.0, "PDN stream needs a positive timestep");
    requireConfig(!i_pulse || pulse_source_,
                  "pulse injection needs the pulse source enabled "
                  "(PdnModel::setPulseSource)");
    const auto &eng = engineFor(dt);
    return PdnStreamSink(eng, dt, mean_load,
                         eng.mna().stateIndexOfNode(n_die_),
                         eng.mna().stateIndexOfBranch("l_pkg_die"),
                         v_die_out, i_die_out, i_pulse);
}

std::vector<double>
PdnModel::impedanceMagnitude(const std::vector<double> &freqs_hz) const
{
    circuit::AcAnalysis ac(netlist_);
    return ac.inputImpedance(n_die_, freqs_hz).magnitudes();
}

PdnSimResult
PdnModel::stepResponse(double amplitude_a, double dt,
                       double duration) const
{
    const auto steps = static_cast<std::size_t>(duration / dt);
    Trace load(dt);
    load.reserve(steps);
    // Step fires after a short settled lead-in.
    const std::size_t lead = steps / 10;
    for (std::size_t i = 0; i < steps; ++i)
        load.push(i >= lead ? amplitude_a : 0.0);
    return simulate(load);
}

PdnSimResult
PdnModel::squareWaveResponse(double freq_hz, double amplitude_a,
                             double dt, double duration) const
{
    requireConfig(freq_hz > 0.0, "square wave frequency must be > 0");
    requireConfig(dt < 0.5 / freq_hz,
                  "timestep too coarse for the square-wave frequency");
    const auto steps = static_cast<std::size_t>(duration / dt);
    const double period = 1.0 / freq_hz;
    Trace load(dt);
    load.reserve(steps);
    for (std::size_t i = 0; i < steps; ++i) {
        const double t = dt * static_cast<double>(i);
        const double phase = std::fmod(t, period) / period;
        load.push(phase < 0.5 ? amplitude_a : 0.0);
    }
    return simulate(load);
}

} // namespace pdn
} // namespace emstress
