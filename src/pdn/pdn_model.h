/**
 * @file
 * Power Delivery Network model following Fig. 1(a) of the paper: a
 * three-stage RLC ladder (PCB, package, die) driven by the VRM on one
 * side and the CPU load current on the other. Provides transient
 * simulation (voltage-noise waveforms), AC impedance sweeps and
 * power-gating-aware die capacitance.
 */

#ifndef EMSTRESS_PDN_PDN_MODEL_H
#define EMSTRESS_PDN_PDN_MODEL_H

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/ac.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "util/sample_sink.h"
#include "util/trace.h"

namespace emstress {
namespace pdn {

/**
 * Electrical parameters of the die–package–PCB ladder. All values SI.
 *
 * The die tank (c_die interacting with l_pkg_die) sets the 1st-order
 * resonance (50–200 MHz); the package decap against the PCB trace
 * inductance sets the 2nd (~1–10 MHz); the bulk capacitance against
 * the VRM-side inductance sets the 3rd (~10–100 kHz).
 */
struct PdnParameters
{
    /// @{ Die stage.
    double r_die = 0.25e-3;      ///< On-chip grid resistance [ohm].
    double c_die_core = 120e-9;  ///< Switchable capacitance per core [F].
    double c_die_uncore = 77e-9; ///< Always-on cluster capacitance [F].
    std::size_t n_cores = 2;     ///< Cores sharing this voltage domain.
    /// @}

    /// @{ Package stage.
    double l_pkg_die = 14e-12;  ///< Package-to-die loop inductance [H].
    double r_pkg = 0.35e-3;     ///< Package trace resistance [ohm].
    double c_pkg = 10e-6;       ///< Package decap [F].
    double esl_pkg = 4e-12;     ///< Package decap series inductance [H].
    double esr_pkg = 0.4e-3;    ///< Package decap series resistance [ohm].
    /// Optional damped bulk branch in parallel with the package
    /// decap (0 disables). Real boards stagger low-ESR ceramics with
    /// lossy bulk capacitors precisely to damp the mid-frequency
    /// anti-resonance; its higher ESL keeps it out of the 1st-order
    /// tank loop.
    double c_pkg_bulk = 0.0;       ///< Damped bulk capacitance [F].
    double esl_pkg_bulk = 100e-12; ///< Bulk branch inductance [H].
    double esr_pkg_bulk = 4e-3;    ///< Bulk branch resistance [ohm].
    /// @}

    /// @{ PCB stage.
    double l_pcb = 1e-9;     ///< PCB power-trace inductance [H].
    double r_pcb = 8e-3;     ///< PCB trace resistance [ohm].
    double c_pcb = 1e-3;     ///< Bulk capacitance [F].
    double esl_pcb = 1e-9;   ///< Bulk cap series inductance [H].
    /// Bulk cap series resistance [ohm]. Deliberately lossy: it also
    /// stands in for the VRM control loop, which actively damps the
    /// low-frequency (3rd-order) anti-resonance on real boards.
    double esr_pcb = 6e-3;
    double l_vrm = 100e-9;   ///< VRM output-filter inductance [H].
    double r_vrm = 1e-3;     ///< VRM output resistance [ohm].
    /// @}

    double v_nom = 1.0; ///< Nominal supply voltage [V].

    /**
     * Total die capacitance with a number of cores powered.
     * @param powered_cores Cores currently not power-gated; clamped
     *        to [1, n_cores] (at least the uncore plus one core's
     *        capacitance is always present while the domain is on).
     */
    double dieCapacitance(std::size_t powered_cores) const;

    /** Predicted 1st-order resonance for a powered-core count [Hz]. */
    double firstOrderResonance(std::size_t powered_cores) const;

    /**
     * Calibrate the die tank against two measured resonance anchors,
     * the procedure DESIGN.md §4 describes: given the resonance with
     * all cores powered and with one core powered, solve the uncore
     * capacitance and the package inductance (per-core capacitance is
     * the free scale parameter).
     *
     * @param f_all_cores 1st-order resonance, all cores powered [Hz].
     * @param f_one_core  1st-order resonance, one core powered [Hz].
     * @param n_cores     Number of cores in the domain (>= 2).
     * @param c_per_core  Switchable capacitance per core [F].
     * @throws ConfigError when the anchors are inconsistent (require
     *         f_one_core > f_all_cores).
     */
    void calibrateDieTank(double f_all_cores, double f_one_core,
                          std::size_t n_cores, double c_per_core);
};

/** Waveforms produced by a PDN transient simulation. */
struct PdnSimResult
{
    Trace v_die;  ///< Die supply voltage [V].
    Trace i_die;  ///< Current through the package-die inductor [A].
};

/**
 * Streaming counterpart of PdnModel::simulate: a sample sink that
 * advances the transient engine one step per pushed load-current
 * sample and forwards the probed die voltage / package-die current to
 * downstream sinks as they are computed, holding only the stepper
 * state (O(1) in run duration).
 *
 * Replays simulate() bit-exactly: the stepper is constructed lazily on
 * the first pushed sample, which becomes the t = 0 initial currents of
 * the transient stepper (simulate's step loop starts at t = dt, where
 * the batch waveform lookup already returns sample 1), each later
 * sample advances one step, and finish() takes the final step the
 * batch waveform clamp produces from the last sample.
 *
 * On the fast path the sink batches samples into a
 * TransientBlockStepper and drains whole kStreamBlock blocks — the
 * identical block partition (full blocks from step 1, remainder as
 * one tail) that run(), and hence simulate(), executes, so the
 * bit-exact replay contract survives the blocking. On the reference
 * path it steps a per-sample TransientStepper, matching the
 * reference run() loop.
 */
class PdnStreamSink final : public SampleSink
{
  public:
    void push(double i_load) override;

    /** Take the clamped final step and finish the downstream sinks. */
    void finish() override;

    /** Samples emitted downstream so far. */
    std::size_t emitted() const { return emitted_; }

  private:
    friend class PdnModel;
    PdnStreamSink(const circuit::TransientAnalysis &engine, double dt,
                  double mean_load, std::size_t iv_die,
                  std::size_t ii_die, SampleSink *v_die_out,
                  SampleSink *i_die_out,
                  circuit::SourceWaveform i_pulse);

    void emitProbes();
    void drainBlock();

    /**
     * Source row for the step the next pushed/clamped sample drives.
     * The pulse column is evaluated at dt * step with the identical
     * expression run() uses (`dt_ * static_cast<double>(step)`), so
     * the streamed source values — and hence every probe sample —
     * stay bit-identical to simulate().
     */
    void fillSourceRow(double *row, double i_load, std::size_t step)
        const;

    /// Engine outlives the sink (owned by the PdnModel's cache); the
    /// stepper is created on the first push so that sample can seed
    /// the trapezoidal source history. Exactly one of block_
    /// (fast path) and stepper_ (reference path) is engaged.
    const circuit::TransientAnalysis *engine_;
    std::optional<circuit::TransientStepper> stepper_;
    std::optional<circuit::TransientBlockStepper> block_;
    double dt_;
    double mean_load_;
    std::size_t iv_die_;
    std::size_t ii_die_;
    SampleSink *v_die_out_;
    SampleSink *i_die_out_;
    /// Injected-pulse waveform for the third source column; only
    /// set when the model's pulse source is present (n_src_ == 3).
    circuit::SourceWaveform i_pulse_;
    /// Current sources per step row: 2 ({i_load, i_scl}) without the
    /// pulse source, 3 ({i_load, i_scl, i_pulse}) with it.
    std::size_t n_src_ = 2;
    /// 1-based index of the next transient step, mirroring run()'s
    /// step counter (the first push seeds t = 0 history, not a step).
    std::size_t next_step_ = 1;
    /// Blocked-path buffers: one source row (stride n_src_) and one
    /// {v_die, i_die} probe row per step of the pending block.
    std::array<double, circuit::kStreamBlock * 3> in_buf_{};
    std::array<double, circuit::kStreamBlock * 2> probe_buf_{};
    std::size_t buffered_ = 0;
    double last_ = 0.0;
    std::size_t emitted_ = 0;
    bool finished_ = false;
};

/**
 * Simulatable PDN. Holds the netlist built from PdnParameters and
 * caches the factored transient engine per timestep, because a GA
 * evaluates thousands of load traces against an unchanged PDN.
 */
class PdnModel
{
  public:
    /** Build the ladder netlist from parameters. */
    explicit PdnModel(const PdnParameters &params);

    /** Parameters the model was built from (reflecting power gating). */
    const PdnParameters &params() const { return params_; }

    /** The die supply node id (for external AC probing). */
    circuit::NodeId dieNode() const { return n_die_; }

    /** Underlying netlist (read-only). */
    const circuit::Netlist &netlist() const { return netlist_; }

    /**
     * Set the number of powered (non-gated) cores, which changes the
     * effective die capacitance and hence the 1st-order resonance.
     * Invalidates cached transient engines.
     */
    void setPoweredCores(std::size_t powered_cores);

    /** Currently powered core count. */
    std::size_t poweredCores() const { return powered_cores_; }

    /**
     * Change the VRM output voltage (V_MIN testing lowers the supply
     * in 10 mV steps). Invalidates cached transient engines.
     */
    void setSupplyVoltage(double v);

    /**
     * Add (or remove) the active-EMFI pulse current source at the
     * die node. The source is part of the netlist, so toggling it
     * rebuilds and invalidates cached engines — but an unchanged
     * setting is a no-op, and a *disabled* pulse source keeps the
     * netlist byte-identical to the passive one. That is what makes
     * "no pulse armed" runs bit-identical to pre-EMFI runs: the
     * fast-path state update groups source columns into fixed-width
     * sweeps, so even an all-zero extra column would reassociate the
     * sums; eliding the column avoids the question entirely.
     */
    void setPulseSource(bool enabled);

    /** True when the netlist carries the i_pulse source. */
    bool pulseSource() const { return pulse_source_; }

    /**
     * Transient simulation driven by a CPU load-current trace (drawn
     * from the die node) and an optional SCL square-wave injector.
     *
     * @param i_load  Load current [A] sampled at the PDN timestep.
     * @param i_scl   Optional second injector waveform (the Juno SCL
     *                block); evaluated at each simulation time.
     * @param i_pulse Optional EMFI pulse waveform; requires the pulse
     *                source (setPulseSource(true)).
     */
    PdnSimResult simulate(const Trace &i_load,
                          const circuit::SourceWaveform &i_scl = nullptr,
                          const circuit::SourceWaveform &i_pulse
                          = nullptr) const;

    /**
     * Build a streaming simulation sink (see PdnStreamSink). Pushing
     * every load sample and calling finish() reproduces
     * simulate(i_load) bit-exactly without materializing any trace.
     *
     * @param dt        Load-sample timestep [s] (selects the cached
     *                  engine, like simulate does via i_load.dt()).
     * @param mean_load Mean of the full load trace [A]; biases the
     *                  initial DC point exactly as simulate does.
     *                  Callers stream the load twice: once through a
     *                  MeanSink, then through this sink.
     * @param v_die_out Downstream sink for the die voltage (may be
     *                  null to skip the probe).
     * @param i_die_out Downstream sink for the package-die inductor
     *                  current (may be null).
     * @param i_pulse   Optional EMFI pulse waveform; requires the
     *                  pulse source (setPulseSource(true)). The sink
     *                  evaluates it at each step time itself, exactly
     *                  as simulate's run() loop would.
     */
    PdnStreamSink streamSim(double dt, double mean_load,
                            SampleSink *v_die_out,
                            SampleSink *i_die_out,
                            const circuit::SourceWaveform &i_pulse
                            = nullptr) const;

    /** Input impedance magnitude at the die node over a grid [ohm]. */
    std::vector<double>
    impedanceMagnitude(const std::vector<double> &freqs_hz) const;

    /**
     * Response to a single current step of the given amplitude:
     * classic Fig. 1(c) ringing waveform.
     * @param amplitude_a Step height [A].
     * @param dt          Simulation timestep [s].
     * @param duration    Simulated time [s].
     */
    PdnSimResult stepResponse(double amplitude_a, double dt,
                              double duration) const;

    /**
     * Response to a square-wave load at a given frequency (50% duty),
     * as used by the SCL resonance sweep and Fig. 2.
     */
    PdnSimResult squareWaveResponse(double freq_hz, double amplitude_a,
                                    double dt, double duration) const;

  private:
    void rebuild();
    const circuit::TransientAnalysis &engineFor(double dt) const;

    PdnParameters params_;
    std::size_t powered_cores_;
    bool pulse_source_ = false;
    circuit::Netlist netlist_;
    circuit::NodeId n_die_ = circuit::kGround;
    mutable std::optional<circuit::TransientAnalysis> engine_;
    mutable double engine_dt_ = 0.0;
};

} // namespace pdn
} // namespace emstress

#endif // EMSTRESS_PDN_PDN_MODEL_H
