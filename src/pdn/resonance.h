/**
 * @file
 * Resonance extraction from PDN impedance spectra: locate the
 * impedance peaks of the multi-tank ladder and classify them into the
 * paper's 1st/2nd/3rd-order resonances by descending frequency.
 */

#ifndef EMSTRESS_PDN_RESONANCE_H
#define EMSTRESS_PDN_RESONANCE_H

#include <cstddef>
#include <vector>

#include "pdn/pdn_model.h"
#include "util/units.h"

namespace emstress {
namespace pdn {

/** One impedance peak of the PDN. */
struct ResonancePeak
{
    double freq_hz = 0.0;        ///< Peak frequency.
    double impedance_ohm = 0.0;  ///< |Z| at the peak.
    int order = 0;               ///< 1 = highest-frequency peak.
};

/**
 * Sweep the die-node input impedance over a log grid and extract the
 * local maxima, classified by order (1st = highest frequency, which
 * for a well-formed PDN is also the highest impedance peak).
 *
 * @param model      PDN under analysis.
 * @param f_lo       Sweep start [Hz].
 * @param f_hi       Sweep end [Hz].
 * @param points_per_decade Grid density.
 */
std::vector<ResonancePeak> findResonances(const PdnModel &model,
                                          double f_lo = kilo(1.0),
                                          double f_hi = giga(1.0),
                                          std::size_t points_per_decade
                                          = 120);

/**
 * Convenience: the 1st-order resonance frequency (highest-frequency
 * impedance peak) of a model.
 * @throws SimulationError when no peak exists in the sweep range.
 */
double firstOrderResonanceHz(const PdnModel &model);

} // namespace pdn
} // namespace emstress

#endif // EMSTRESS_PDN_RESONANCE_H
