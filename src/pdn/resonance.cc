/**
 * @file
 * Resonance extraction implementation.
 */

#include "pdn/resonance.h"

#include <algorithm>
#include <cmath>

#include "circuit/ac.h"
#include "util/error.h"

namespace emstress {
namespace pdn {

std::vector<ResonancePeak>
findResonances(const PdnModel &model, double f_lo, double f_hi,
               std::size_t points_per_decade)
{
    const double decades = std::log10(f_hi / f_lo);
    const auto points = static_cast<std::size_t>(
        decades * static_cast<double>(points_per_decade)) + 2;
    const auto freqs = circuit::logFrequencyGrid(f_lo, f_hi, points);
    const auto mags = model.impedanceMagnitude(freqs);

    std::vector<ResonancePeak> peaks;
    for (std::size_t i = 1; i + 1 < mags.size(); ++i) {
        if (mags[i] > mags[i - 1] && mags[i] >= mags[i + 1]) {
            ResonancePeak p;
            p.freq_hz = freqs[i];
            p.impedance_ohm = mags[i];
            peaks.push_back(p);
        }
    }
    // Classify by descending frequency: the paper's 1st-order
    // resonance is the highest-frequency tank.
    std::sort(peaks.begin(), peaks.end(),
              [](const ResonancePeak &a, const ResonancePeak &b) {
                  return a.freq_hz > b.freq_hz;
              });
    for (std::size_t i = 0; i < peaks.size(); ++i)
        peaks[i].order = static_cast<int>(i) + 1;
    return peaks;
}

double
firstOrderResonanceHz(const PdnModel &model)
{
    const auto peaks = findResonances(model);
    requireSim(!peaks.empty(),
               "no impedance peak found in the sweep range");
    return peaks.front().freq_hz;
}

} // namespace pdn
} // namespace emstress
