/**
 * @file
 * Fault injector implementation.
 */

#include "ga/fault_injector.h"

#include <utility>

namespace emstress {
namespace ga {

FaultInjector::FaultInjector(const FaultSchedule &schedule)
    : schedule_(schedule)
{}

void
FaultInjector::at(FaultPoint point, std::uint64_t key,
                  std::uint32_t attempt, double cost_seconds)
{
    if (!schedule_.fires(point, key, attempt))
        return;
    recordInjected(point);
    throw FaultError(point, key, attempt, cost_seconds);
}

void
FaultInjector::atCounted(FaultPoint point, std::uint64_t key,
                         std::uint32_t &counter, double cost_seconds)
{
    const std::uint32_t attempt = counter;
    if (schedule_.fires(point, key, attempt)) {
        ++counter;
        recordInjected(point);
        throw FaultError(point, key, attempt, cost_seconds);
    }
    counter = 0;
}

void
FaultInjector::recordInjected(FaultPoint point)
{
    injected_[static_cast<std::size_t>(point)].fetch_add(
        1, std::memory_order_relaxed);
}

std::size_t
FaultInjector::injected(FaultPoint point) const
{
    return injected_[static_cast<std::size_t>(point)].load(
        std::memory_order_relaxed);
}

std::size_t
FaultInjector::totalInjected() const
{
    std::size_t total = 0;
    for (const auto &c : injected_)
        total += c.load(std::memory_order_relaxed);
    return total;
}

FaultyEvaluator::FaultyEvaluator(
    FitnessEvaluator &base, std::shared_ptr<FaultInjector> injector,
    const ConnectionLatency &latency)
    : base_(&base), injector_(std::move(injector)), latency_(latency)
{
    requireConfig(injector_ != nullptr,
                  "FaultyEvaluator needs a fault injector");
}

FaultyEvaluator::FaultyEvaluator(
    std::unique_ptr<FitnessEvaluator> owned,
    std::shared_ptr<FaultInjector> injector,
    const ConnectionLatency &latency)
    : base_(owned.get()), owned_(std::move(owned)),
      injector_(std::move(injector)), latency_(latency)
{}

double
FaultyEvaluator::evaluate(const isa::Kernel &kernel,
                          EvalDetail *detail)
{
    return evaluate(kernel, detail, 0);
}

double
FaultyEvaluator::evaluate(const isa::Kernel &kernel,
                          EvalDetail *detail, std::uint32_t attempt)
{
    const std::uint64_t key = kernel.hash();
    // Deploy times out: only the deploy wait is lost.
    injector_->at(FaultPoint::ConnectionTimeout, key, attempt,
                  latency_.deploy_s + latency_.timeout_s);
    // Kernel hangs after deploy: deploy + launch + the timeout wait.
    injector_->at(FaultPoint::KernelHang, key, attempt,
                  latency_.deploy_s + latency_.start_stop_s
                      + latency_.timeout_s);
    const double result = base_->evaluate(kernel, detail, attempt);
    // Reading glitched after the fact: the whole measurement cost is
    // wasted (it already accrued into detail->measurement_seconds of
    // this discarded attempt).
    const double spent = detail != nullptr
        ? detail->measurement_seconds
        : latency_.deploy_s + latency_.start_stop_s
            + latency_.per_sample_s;
    injector_->at(FaultPoint::GlitchedReading, key, attempt, spent);
    return result;
}

std::string
FaultyEvaluator::metricName() const
{
    return base_->metricName();
}

std::unique_ptr<FitnessEvaluator>
FaultyEvaluator::clone() const
{
    auto inner = base_->clone();
    if (!inner)
        return nullptr;
    return std::unique_ptr<FitnessEvaluator>(new FaultyEvaluator(
        std::move(inner), injector_, latency_));
}

FaultyTargetConnection::FaultyTargetConnection(
    TargetConnection &base, std::shared_ptr<FaultInjector> injector)
    : base_(base), injector_(std::move(injector))
{
    requireConfig(injector_ != nullptr,
                  "FaultyTargetConnection needs a fault injector");
}

void
FaultyTargetConnection::deploy(const isa::Kernel &kernel)
{
    key_ = kernel.hash();
    const ConnectionLatency &lat = base_.latency();
    injector_->atCounted(FaultPoint::ConnectionTimeout, key_,
                         deploy_attempt_,
                         lat.deploy_s + lat.timeout_s);
    base_.deploy(kernel);
}

void
FaultyTargetConnection::startRun()
{
    const ConnectionLatency &lat = base_.latency();
    injector_->atCounted(FaultPoint::KernelHang, key_, start_attempt_,
                         lat.start_stop_s + lat.timeout_s);
    base_.startRun();
}

Trace
FaultyTargetConnection::measureEm()
{
    const ConnectionLatency &lat = base_.latency();
    injector_->atCounted(FaultPoint::TriggerMiss, key_,
                         measure_attempt_,
                         lat.per_sample_s + lat.timeout_s);
    return base_.measureEm();
}

void
FaultyTargetConnection::stopRun()
{
    base_.stopRun();
}

const ConnectionLatency &
FaultyTargetConnection::latency() const
{
    return base_.latency();
}

std::string
FaultyTargetConnection::describe() const
{
    return "faulty+" + base_.describe();
}

Trace
measureEmWithRetry(TargetConnection &conn, const isa::Kernel &kernel,
                   const RetryPolicy &policy, MeasureRetryLog *log)
{
    requireConfig(policy.max_attempts >= 1,
                  "retry policy needs at least one attempt");
    for (std::uint32_t attempt = 0;; ++attempt) {
        bool started = false;
        try {
            conn.deploy(kernel);
            conn.startRun();
            started = true;
            Trace em = conn.measureEm();
            conn.stopRun();
            return em;
        } catch (const FaultError &) {
            if (started) {
                // Best-effort cleanup: a hung or glitched run is
                // killed before re-trying; failures to stop an
                // already-dead run are not themselves fatal.
                try {
                    conn.stopRun();
                } catch (...) {
                }
            }
            if (log != nullptr)
                ++log->faults;
            if (attempt + 1 >= policy.max_attempts)
                throw;
            if (log != nullptr) {
                ++log->retries;
                log->backoff_seconds += policy.backoffFor(attempt + 1);
            }
        }
    }
}

} // namespace ga
} // namespace emstress
