/**
 * @file
 * Parallel, memoized batch fitness evaluation — the measurement
 * pipeline behind the GA engine and any other consumer that scores
 * many kernels (Section 3.1(b) is where essentially all of the
 * paper's lab time goes, so this is the hot path of the whole
 * reproduction).
 *
 * Guarantees, in order of importance:
 *  1. Determinism: for order-independent evaluators the results are
 *     bit-identical to evaluating the batch serially in index order,
 *     for any thread count. Cache lookups and duplicate grouping are
 *     decided on the calling thread before dispatch, every fresh
 *     evaluation writes only its own result slot, and the cache is
 *     updated after the batch completes in index order.
 *  2. No redundant simulation: a genome evaluated once (this batch
 *     or any earlier one) is never evaluated again while memoization
 *     is on. Keys are Kernel::hash() with full structural equality
 *     verification, so a hash collision degrades to a redundant
 *     evaluation, never a wrong fitness.
 *  3. Parallelism: fresh evaluations fan out either over a private
 *     ThreadPool or — in service mode — over a shared WorkerFleet
 *     multiplexing tasks from many concurrent jobs; either way each
 *     worker uses its own FitnessEvaluator clone. Evaluators that
 *     cannot clone degrade to serial evaluation.
 *  4. Fault tolerance: an evaluation that throws FaultError (an
 *     injected or real lab-link fault) is retried with bounded
 *     modeled backoff; an individual whose every attempt faults is
 *     scored kFailedFitness rather than poisoning the batch. Fault
 *     schedules are pure in (point, kernel, attempt), so guarantee 1
 *     holds with faults enabled — and once retries succeed, results
 *     are bit-identical to a fault-free run.
 *  5. Cancellation drains, never poisons: a batch whose CancelToken
 *     fires stops issuing fresh evaluations; the skipped tasks are
 *     reported in Outcome::cancelled but are neither scored
 *     kFailedFitness, nor counted as faults or permanent failures,
 *     nor written to the fitness cache — so a cancelled job can
 *     never contaminate sentinel accounting or memoized results
 *     observed by other jobs sharing the fleet.
 */

#ifndef EMSTRESS_GA_BATCH_EVALUATOR_H
#define EMSTRESS_GA_BATCH_EVALUATOR_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ga/ga_engine.h"
#include "isa/kernel.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"
#include "util/worker_fleet.h"

namespace emstress {
namespace ga {

/** Batch-evaluation configuration. */
struct BatchConfig
{
    /// Worker threads: 1 = serial reference path, 0 = auto
    /// (EMSTRESS_THREADS environment variable, else hardware
    /// concurrency). Ignored when `fleet` is set (the fleet's worker
    /// count applies).
    std::size_t threads = 1;
    /// Keep a genome-keyed fitness cache across batches.
    bool memoize = true;
    /// Retry policy for evaluations that throw FaultError: a faulted
    /// attempt is retried (with modeled backoff charged to the lab
    /// clock) up to max_attempts total tries; on exhaustion the
    /// individual is scored kFailedFitness instead of aborting the
    /// batch. Because fault schedules are pure functions of (fault
    /// point, kernel, attempt), the retry path preserves the
    /// batch evaluator's bit-identical-across-thread-counts
    /// guarantee.
    RetryPolicy retry;
    /// Shared worker fleet (service mode): fresh evaluations are
    /// submitted as one fleet batch, interleaving with other jobs'
    /// tasks, instead of running on a private pool. Not owned; must
    /// outlive the evaluator.
    WorkerFleet *fleet = nullptr;
    /// Cooperative cancellation: once the token reads true, fresh
    /// evaluations not yet started are skipped (see guarantee 5).
    CancelToken cancel;
};

/**
 * Evaluates batches of kernels through one underlying evaluator,
 * concurrently and without re-simulating known genomes.
 */
class BatchEvaluator
{
  public:
    /** Per-batch outcome (cumulative counters live in stats()). */
    struct Outcome
    {
        std::size_t fresh = 0;       ///< Evaluator calls performed.
        std::size_t cache_hits = 0;  ///< Slots served from cache or
                                     ///< batch-local deduplication.
        std::size_t cancelled = 0;   ///< Fresh tasks skipped because
                                     ///< the cancel token fired; their
                                     ///< slots are left untouched.
        double lab_seconds = 0.0;    ///< Modeled lab time of the
                                     ///< fresh measurements, faulted
                                     ///< attempts and retry backoff.
    };

    /**
     * @param base   Evaluator that defines fitness. Must outlive the
     *               batch evaluator. Used directly for serial
     *               evaluation; clone() supplies the workers.
     * @param config Thread count, memoization switch, optional
     *               shared fleet and cancel token.
     */
    BatchEvaluator(FitnessEvaluator &base, const BatchConfig &config);

    ~BatchEvaluator();

    /**
     * Evaluate kernels[i] for every i in `indices`, writing
     * fitness[i] and details[i]. Slots not listed in `indices` are
     * untouched. Returns the per-batch outcome. When the configured
     * cancel token fires, pending fresh tasks are skipped and
     * reported in Outcome::cancelled (their slots untouched, nothing
     * cached or charged for them).
     */
    Outcome evaluate(const std::vector<isa::Kernel> &kernels,
                     const std::vector<std::size_t> &indices,
                     std::vector<double> &fitness,
                     std::vector<EvalDetail> &details);

    /** Cumulative counters over every batch so far. */
    const EvalStats &stats() const { return stats_; }

    /** True once the configured cancel token has fired. */
    bool cancelled() const;

    /** Worker threads the evaluator actually uses (after clone
     * availability is taken into account; lazily resolved on the
     * first parallel batch). */
    std::size_t plannedThreads() const;

    /** Entries currently memoized. */
    std::size_t cacheSize() const { return cache_.size(); }

  private:
    struct CacheEntry
    {
        isa::Kernel kernel; ///< For collision-proof equality checks.
        double fitness = 0.0;
        EvalDetail detail;
    };

    /** Find a memoized result for a kernel; nullptr when absent. */
    const CacheEntry *lookup(std::uint64_t hash,
                             const isa::Kernel &kernel) const;

    /** Lazily build the workers + clones; false -> serial fallback. */
    bool ensureWorkers();

    FitnessEvaluator &base_;
    BatchConfig config_;
    std::size_t threads_; ///< Resolved request (>= 1).
    bool clone_failed_ = false;
    std::vector<std::unique_ptr<FitnessEvaluator>> clones_;
    std::unique_ptr<ThreadPool> pool_;
    std::unordered_multimap<std::uint64_t, CacheEntry> cache_;
    EvalStats stats_;
};

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_BATCH_EVALUATOR_H
