/**
 * @file
 * Workstation/target split of the paper's framework (Section 3.2):
 * the GA host sends each individual's source to the target machine,
 * which compiles and runs it while the host drives the measurement
 * instrument, then terminates the run. This abstraction models that
 * loop (including its latency budget) so the in-process simulator and
 * a future real-hardware transport share one interface — and so tests
 * can inject deploy/measure failures.
 *
 * Fault model: every verb may throw. deploy() models connection
 * timeouts, startRun() kernel hangs, measureEm() trigger misses and
 * truncated sample streams. Deterministically scheduled injections
 * (util/faultpoint.h, ga/fault_injector.h) throw FaultError, which
 * retrying drivers such as measureEmWithRetry() and the GA's batch
 * evaluator catch and retry under a bounded RetryPolicy; any other
 * exception is treated as a genuine bug and propagates.
 */

#ifndef EMSTRESS_GA_TARGET_CONNECTION_H
#define EMSTRESS_GA_TARGET_CONNECTION_H

#include <cstddef>
#include <string>

#include "isa/kernel.h"
#include "util/trace.h"

namespace emstress {
namespace ga {

/** Timing model of the host-target-instrument loop. */
struct ConnectionLatency
{
    double deploy_s = 0.3;      ///< Ship + compile one individual.
    double start_stop_s = 0.1;  ///< Launch and kill the binary.
    double per_sample_s = 0.6;  ///< One instrument sample (the paper:
                                ///< 30 samples take ~18 s).
    double timeout_s = 5.0;     ///< Host-side wait before an
                                ///< unresponsive deploy/run/trigger
                                ///< is declared faulted; charged to
                                ///< every faulted attempt.
};

/**
 * Abstract host-side view of a measurement target.
 */
class TargetConnection
{
  public:
    virtual ~TargetConnection() = default;

    /**
     * Deploy an individual: transfer source, assemble/compile, load.
     * @throws SimulationError on (injected) transport failure.
     */
    virtual void deploy(const isa::Kernel &kernel) = 0;

    /** Start executing the deployed kernel in a loop. */
    virtual void startRun() = 0;

    /**
     * Acquire the EM (antenna) waveform while the kernel runs.
     * @pre deploy() and startRun() were called.
     */
    virtual Trace measureEm() = 0;

    /** Terminate the running binary. */
    virtual void stopRun() = 0;

    /** Latency model for lab-time accounting. */
    virtual const ConnectionLatency &latency() const = 0;

    /** Diagnostic name (e.g. "ssh://juno" or "in-process"). */
    virtual std::string describe() const = 0;
};

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_TARGET_CONNECTION_H
