#include "ga/pulse_genome.h"

#include "util/error.h"
#include "util/rng.h"

namespace emstress {
namespace ga {

namespace {

/**
 * Structural hash of one genome slot: folds the instruction's
 * definition and operands with a per-slot salt so that every slot
 * maps its content onto its axis independently (two identical
 * instructions in different slots decode to unrelated points).
 */
std::uint64_t
slotHash(const isa::Instruction &instr, std::size_t slot)
{
    std::uint64_t h = mixSeed(0x70756c73ull, slot);
    h = mixSeed(h, instr.def_index);
    h = mixSeed(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(instr.dest)));
    h = mixSeed(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(instr.src[0])));
    h = mixSeed(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(instr.src[1])));
    h = mixSeed(h, static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(instr.mem_slot)));
    return h;
}

/** Map a hash onto an inclusive [min, max] axis of `steps` points. */
double
axisValue(std::uint64_t h, double min, double max, std::size_t steps)
{
    requireConfig(steps >= 2, "pulse grid axis needs >= 2 steps");
    const auto bucket = h % steps;
    return min
           + (max - min) * static_cast<double>(bucket)
                 / static_cast<double>(steps - 1);
}

} // namespace

em::PulseSpec
decodePulseGenome(const PulseGrid &grid, const isa::Kernel &genome)
{
    requireConfig(genome.size() >= kPulseGenomeSlots,
                  "pulse genome needs >= kPulseGenomeSlots "
                  "instructions");
    requireConfig(grid.t0_max_s >= grid.t0_min_s
                      && grid.width_max_s >= grid.width_min_s
                      && grid.width_min_s > 0.0
                      && grid.amplitude_max_a >= 0.0,
                  "pulse grid ranges are inverted");

    em::PulseSpec spec;
    spec.t0_s = axisValue(slotHash(genome[0], 0), grid.t0_min_s,
                          grid.t0_max_s, grid.t0_steps);
    spec.width_s =
        axisValue(slotHash(genome[1], 1), grid.width_min_s,
                  grid.width_max_s, grid.width_steps);
    spec.amplitude_a =
        axisValue(slotHash(genome[2], 2), 0.0,
                  grid.amplitude_max_a, grid.amplitude_steps);

    const std::uint64_t mode = slotHash(genome[3], 3);
    spec.polarity = (mode & 1ull) != 0 ? -1.0 : 1.0;
    spec.shape = (mode & 2ull) != 0 ? em::PulseShape::kGaussian
                                    : em::PulseShape::kRect;

    spec.x = axisValue(slotHash(genome[4], 4), 0.0, 1.0,
                       grid.position_steps);
    spec.y = axisValue(slotHash(genome[5], 5), 0.0, 1.0,
                       grid.position_steps);
    return spec;
}

} // namespace ga
} // namespace emstress
