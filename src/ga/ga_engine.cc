/**
 * @file
 * GA engine implementation. The complete-run entry points
 * (GaEngine::run and friends) are thin loops over GaStepper/GaDriver
 * — the resumable machinery the search service interleaves across
 * jobs — so batch-era and service-era execution share one code path
 * and bit-identity between them holds by construction.
 */

#include "ga/ga_engine.h"

#include <algorithm>
#include <numeric>

#include "ga/batch_evaluator.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace emstress {
namespace ga {

void
validateGaConfig(const GaConfig &config)
{
    requireConfig(config.population >= 2,
                  "population must hold at least two individuals");
    requireConfig(config.generations >= 1, "need at least a generation");
    requireConfig(config.kernel_length >= 1,
                  "kernels need at least one instruction");
    requireConfig(config.mutation_rate >= 0.0
                      && config.mutation_rate <= 1.0,
                  "mutation rate outside [0,1]");
    requireConfig(config.operand_mutation_ratio >= 0.0
                      && config.operand_mutation_ratio <= 1.0,
                  "operand mutation ratio outside [0,1]");
    requireConfig(config.tournament_k >= 1
                      && config.tournament_k <= config.population,
                  "tournament size outside [1, population]");
    requireConfig(config.elite < config.population,
                  "elite count must be below the population size");
}

GaEngine::GaEngine(const isa::InstructionPool &pool,
                   const GaConfig &config)
    : pool_(pool), config_(config)
{
    validateGaConfig(config_);
}

std::size_t
GaEngine::tournamentSelect(const std::vector<double> &fitness,
                           std::size_t k, Rng &rng)
{
    requireSim(!fitness.empty(), "tournament over empty population");
    std::size_t best = rng.index(fitness.size());
    for (std::size_t i = 1; i < k; ++i) {
        const std::size_t challenger = rng.index(fitness.size());
        if (fitness[challenger] > fitness[best])
            best = challenger;
    }
    return best;
}

isa::Kernel
GaEngine::crossover(const isa::Kernel &a, const isa::Kernel &b,
                    Rng &rng)
{
    requireSim(a.size() == b.size() && !a.empty(),
               "crossover requires equal-length non-empty kernels");
    // Degenerate single-gene kernel: no interior cut point exists, so
    // "both parents contribute" means each parent is drawn with equal
    // probability (always copying `a` would bias the population).
    if (a.size() == 1)
        return rng.index(2) == 0 ? a : b;
    // Cut point in [1, len-1] so both parents contribute.
    const std::size_t cut = 1 + rng.index(a.size() - 1);
    std::vector<isa::Instruction> code;
    code.reserve(a.size());
    for (std::size_t i = 0; i < cut && i < a.size(); ++i)
        code.push_back(a[i]);
    for (std::size_t i = cut; i < b.size(); ++i)
        code.push_back(b[i]);
    return isa::Kernel(std::move(code));
}

void
GaEngine::mutate(isa::Kernel &kernel, const isa::InstructionPool &pool,
                 double rate, double operand_ratio, Rng &rng)
{
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        if (!rng.chance(rate))
            continue;
        if (rng.chance(operand_ratio)) {
            pool.randomizeOperands(kernel[i], rng);
        } else {
            kernel[i] = pool.randomInstruction(rng);
        }
    }
}

// ---------------------------------------------------------------------------
// GaStepper
// ---------------------------------------------------------------------------

GaStepper::GaStepper(const isa::InstructionPool &pool,
                     const GaConfig &config,
                     FitnessEvaluator &evaluator,
                     std::vector<isa::Kernel> seed_population,
                     BatchHooks hooks)
    : pool_(pool), config_(config), rng_(config.seed)
{
    validateGaConfig(config_);

    // Initial population: seeds first, random fill.
    population_ = std::move(seed_population);
    if (population_.size() > config_.population)
        population_.resize(config_.population);
    for (auto &k : population_) {
        requireConfig(k.size() == config_.kernel_length,
                      "seed individual length differs from "
                      "kernel_length");
        k.validate(pool_);
    }
    while (population_.size() < config_.population) {
        population_.push_back(
            isa::Kernel::random(pool_, config_.kernel_length, rng_));
    }

    result_.best_fitness = kFailedFitness;

    BatchConfig batch_cfg;
    batch_cfg.threads = config_.threads;
    batch_cfg.memoize = config_.memoize;
    batch_cfg.retry = config_.retry;
    batch_cfg.fleet = hooks.fleet;
    batch_cfg.cancel = std::move(hooks.cancel);
    batch_ = std::make_unique<BatchEvaluator>(evaluator, batch_cfg);

    fitness_.assign(config_.population, 0.0);
    details_.assign(config_.population, EvalDetail{});
    // Individuals whose fitness is already known because they were
    // carried over unchanged (elites): measuring them again would
    // only repeat the identical measurement and double-charge its
    // lab time.
    known_.assign(config_.population, 0);
}

GaStepper::~GaStepper() = default;

bool
GaStepper::cancelled() const
{
    return batch_->cancelled();
}

bool
GaStepper::done() const
{
    return cancelled() || gen_ >= config_.generations;
}

const GenerationRecord *
GaStepper::step()
{
    if (done())
        return nullptr;

    // Observability only: the span and the summary gauges below
    // read the population, never write it, so results are
    // bit-identical with metrics on or off.
    metrics::ScopedPhase gen_span("ga.generation");
    // Measure the individuals we have not measured (Sec 3.1(b)).
    std::vector<std::size_t> todo;
    todo.reserve(population_.size());
    for (std::size_t i = 0; i < population_.size(); ++i) {
        if (known_[i])
            ++result_.eval_stats.elites_reused;
        else
            todo.push_back(i);
    }
    const auto outcome =
        batch_->evaluate(population_, todo, fitness_, details_);
    result_.estimated_lab_seconds += outcome.lab_seconds;
    // A generation whose batch was cancelled is never recorded: its
    // skipped slots hold no meaningful fitness, and the job's result
    // is moot anyway. The partial lab time above stays charged — the
    // executed measurements did run.
    if (outcome.cancelled > 0 || cancelled())
        return nullptr;

    // Record the generation.
    std::size_t best_i = 0;
    double mean = 0.0;
    for (std::size_t i = 0; i < fitness_.size(); ++i) {
        mean += fitness_[i];
        if (fitness_[i] > fitness_[best_i])
            best_i = i;
    }
    mean /= static_cast<double>(fitness_.size());

    if (metrics::enabled()) {
        // Per-generation fitness summary: one sort, many
        // percentile queries (stats::percentileSorted).
        std::vector<double> sorted_fitness(fitness_);
        std::sort(sorted_fitness.begin(), sorted_fitness.end());
        auto &reg = metrics::Registry::instance();
        reg.setGauge("ga.fitness.p05",
                     stats::percentileSorted(sorted_fitness, 5.0));
        reg.setGauge("ga.fitness.p50",
                     stats::percentileSorted(sorted_fitness, 50.0));
        reg.setGauge("ga.fitness.p95",
                     stats::percentileSorted(sorted_fitness, 95.0));
        reg.add("ga.individuals_evaluated", todo.size());
    }

    GenerationRecord rec;
    rec.generation = gen_;
    rec.best_fitness = fitness_[best_i];
    rec.mean_fitness = mean;
    rec.best_detail = details_[best_i];
    rec.best = population_[best_i];
    result_.history.push_back(std::move(rec));

    if (fitness_[best_i] > result_.best_fitness) {
        result_.best_fitness = fitness_[best_i];
        result_.best = population_[best_i];
        result_.best_detail = details_[best_i];
    }

    if (++gen_ >= config_.generations)
        return &result_.history.back();

    // Breed the next generation (Section 3.1(c)).
    std::vector<isa::Kernel> next;
    next.reserve(config_.population);
    std::vector<double> next_fitness(config_.population);
    std::vector<EvalDetail> next_details(config_.population);
    std::vector<char> next_known(config_.population, 0);

    // Elitism: carry the fittest individuals unchanged — along
    // with their already-measured fitness and detail.
    std::vector<std::size_t> order(population_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  return fitness_[a] > fitness_[b];
              });
    for (std::size_t e = 0; e < config_.elite; ++e) {
        const std::size_t src = order[e];
        next_fitness[next.size()] = fitness_[src];
        next_details[next.size()] = details_[src];
        next_known[next.size()] = 1;
        next.push_back(population_[src]);
    }

    while (next.size() < config_.population) {
        const std::size_t pa = GaEngine::tournamentSelect(
            fitness_, config_.tournament_k, rng_);
        const std::size_t pb = GaEngine::tournamentSelect(
            fitness_, config_.tournament_k, rng_);
        isa::Kernel child = GaEngine::crossover(population_[pa],
                                                population_[pb], rng_);
        GaEngine::mutate(child, pool_, config_.mutation_rate,
                         config_.operand_mutation_ratio, rng_);
        next.push_back(std::move(child));
    }
    population_ = std::move(next);
    fitness_ = std::move(next_fitness);
    details_ = std::move(next_details);
    known_ = std::move(next_known);
    return &result_.history.back();
}

GaResult
GaStepper::finish()
{
    requireSim(!finished_, "GaStepper::finish called twice");
    finished_ = true;
    // Adopt the batch evaluator's counters wholesale (a field-by-field
    // copy here once silently dropped samples_materialized); only
    // elites_reused accrues in the stepping loop rather than in the
    // batch.
    const std::size_t elites = result_.eval_stats.elites_reused;
    result_.eval_stats = batch_->stats();
    result_.eval_stats.elites_reused = elites;
    return std::move(result_);
}

// ---------------------------------------------------------------------------
// GaDriver
// ---------------------------------------------------------------------------

GaDriver::GaDriver(const isa::InstructionPool &pool,
                   const GaConfig &config, FitnessEvaluator &evaluator,
                   std::vector<isa::Kernel> seed_population,
                   BatchHooks hooks, Mode mode)
    : pool_(pool), config_(config), evaluator_(evaluator),
      hooks_(std::move(hooks))
{
    validateGaConfig(config_);
    switch (mode) {
    case Mode::kAuto:
        // GaEngine::run's dispatch rule, verbatim.
        multi_ = config_.restarts > 1 && seed_population.empty();
        break;
    case Mode::kSingle:
        multi_ = false;
        break;
    case Mode::kMultiStart:
        requireConfig(seed_population.empty(),
                      "multi-start drives its own seeding; an external "
                      "seed population is only valid in single mode");
        multi_ = true;
        break;
    }

    if (!multi_) {
        in_final_ = true; // every record is reportable
        total_steps_ = config_.generations;
        stepper_ = std::make_unique<GaStepper>(
            pool_, config_, evaluator_, std::move(seed_population),
            hooks_);
        return;
    }

    requireConfig(config_.restarts >= 1,
                  "multi-start needs at least one restart");
    // Phase 1 template: independent half-length scout searches.
    scout_cfg_ = config_;
    scout_cfg_.generations =
        std::max<std::size_t>(1, config_.generations / 2);
    scout_cfg_.restarts = 1;
    // Phase 2: one combined search seeded with every champion.
    final_cfg_ = config_;
    final_cfg_.generations = std::max<std::size_t>(
        1, config_.generations - scout_cfg_.generations);
    final_cfg_.restarts = 1;
    total_steps_ = config_.restarts * scout_cfg_.generations
        + final_cfg_.generations;
    best_scout_.best_fitness = kFailedFitness;

    GaConfig first_scout = scout_cfg_;
    first_scout.seed = config_.seed + 7919;
    stepper_ = std::make_unique<GaStepper>(pool_, first_scout,
                                           evaluator_,
                                           std::vector<isa::Kernel>{},
                                           hooks_);
}

GaDriver::~GaDriver() = default;

bool
GaDriver::cancelled() const
{
    return hooks_.cancel
        && hooks_.cancel->load(std::memory_order_relaxed);
}

bool
GaDriver::done() const
{
    return cancelled() || (in_final_ && stepper_->done());
}

void
GaDriver::advanceScout()
{
    GaResult scout = stepper_->finish();
    scout_lab_seconds_ += scout.estimated_lab_seconds;
    scout_stats_ += scout.eval_stats;
    champions_.push_back(scout.best);
    if (scout.best_fitness > best_scout_.best_fitness)
        best_scout_ = std::move(scout);

    if (++scout_index_ < config_.restarts) {
        GaConfig cfg = scout_cfg_;
        cfg.seed = config_.seed + 7919 * (scout_index_ + 1);
        stepper_ = std::make_unique<GaStepper>(
            pool_, cfg, evaluator_, std::vector<isa::Kernel>{},
            hooks_);
        return;
    }
    in_final_ = true;
    stepper_ = std::make_unique<GaStepper>(pool_, final_cfg_,
                                           evaluator_,
                                           std::move(champions_),
                                           hooks_);
}

const GenerationRecord *
GaDriver::step()
{
    if (done())
        return nullptr;
    const GenerationRecord *rec = stepper_->step();
    if (stepper_->cancelled())
        return nullptr;
    ++steps_done_;
    if (!in_final_) {
        // Scout generations are internal: GaEngine::run never
        // reported them, and the record numbering only becomes final
        // at finish() when histories are stitched.
        if (stepper_->done())
            advanceScout();
        return nullptr;
    }
    return rec;
}

GaResult
GaDriver::finish()
{
    requireSim(!finished_, "GaDriver::finish called twice");
    finished_ = true;
    GaResult result = stepper_->finish();
    if (!multi_)
        return result;

    // Fold the scout phase in. On a run cancelled mid-scouts this
    // yields a partial, diagnostic result (the job is moot); on a
    // completed run it reproduces GaEngine's multi-start merge
    // exactly.
    result.estimated_lab_seconds += scout_lab_seconds_;
    result.eval_stats += scout_stats_;

    // Keep the scout history in front so convergence plots cover the
    // whole effort; re-number the final phase's generations.
    std::vector<GenerationRecord> history =
        std::move(best_scout_.history);
    for (auto &rec : result.history) {
        rec.generation += scout_cfg_.generations;
        history.push_back(std::move(rec));
    }
    result.history = std::move(history);
    if (best_scout_.best_fitness > result.best_fitness) {
        result.best_fitness = best_scout_.best_fitness;
        result.best = best_scout_.best;
        result.best_detail = best_scout_.best_detail;
    }
    return result;
}

// ---------------------------------------------------------------------------
// GaEngine — complete-run loops over the driver
// ---------------------------------------------------------------------------

namespace {

GaResult
driveToCompletion(GaDriver &driver, const GenerationCallback &callback)
{
    while (!driver.done()) {
        const GenerationRecord *rec = driver.step();
        if (rec != nullptr && callback)
            callback(*rec);
    }
    return driver.finish();
}

} // namespace

GaResult
GaEngine::run(FitnessEvaluator &evaluator,
              const GenerationCallback &callback,
              std::vector<isa::Kernel> seed_population)
{
    GaDriver driver(pool_, config_, evaluator,
                    std::move(seed_population));
    return driveToCompletion(driver, callback);
}

GaResult
GaEngine::runSingle(FitnessEvaluator &evaluator,
                    const GenerationCallback &callback,
                    std::vector<isa::Kernel> seed_population)
{
    GaDriver driver(pool_, config_, evaluator,
                    std::move(seed_population), BatchHooks{},
                    GaDriver::Mode::kSingle);
    return driveToCompletion(driver, callback);
}

GaResult
GaEngine::runMultiStart(FitnessEvaluator &evaluator,
                        const GenerationCallback &callback)
{
    GaDriver driver(pool_, config_, evaluator, {}, BatchHooks{},
                    GaDriver::Mode::kMultiStart);
    return driveToCompletion(driver, callback);
}

} // namespace ga
} // namespace emstress
