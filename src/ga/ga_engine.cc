/**
 * @file
 * GA engine implementation.
 */

#include "ga/ga_engine.h"

#include <algorithm>
#include <numeric>

#include "ga/batch_evaluator.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace emstress {
namespace ga {

GaEngine::GaEngine(const isa::InstructionPool &pool,
                   const GaConfig &config)
    : pool_(pool), config_(config)
{
    requireConfig(config.population >= 2,
                  "population must hold at least two individuals");
    requireConfig(config.generations >= 1, "need at least a generation");
    requireConfig(config.kernel_length >= 1,
                  "kernels need at least one instruction");
    requireConfig(config.mutation_rate >= 0.0
                      && config.mutation_rate <= 1.0,
                  "mutation rate outside [0,1]");
    requireConfig(config.operand_mutation_ratio >= 0.0
                      && config.operand_mutation_ratio <= 1.0,
                  "operand mutation ratio outside [0,1]");
    requireConfig(config.tournament_k >= 1
                      && config.tournament_k <= config.population,
                  "tournament size outside [1, population]");
    requireConfig(config.elite < config.population,
                  "elite count must be below the population size");
}

std::size_t
GaEngine::tournamentSelect(const std::vector<double> &fitness,
                           std::size_t k, Rng &rng)
{
    requireSim(!fitness.empty(), "tournament over empty population");
    std::size_t best = rng.index(fitness.size());
    for (std::size_t i = 1; i < k; ++i) {
        const std::size_t challenger = rng.index(fitness.size());
        if (fitness[challenger] > fitness[best])
            best = challenger;
    }
    return best;
}

isa::Kernel
GaEngine::crossover(const isa::Kernel &a, const isa::Kernel &b,
                    Rng &rng)
{
    requireSim(a.size() == b.size() && !a.empty(),
               "crossover requires equal-length non-empty kernels");
    // Degenerate single-gene kernel: no interior cut point exists, so
    // "both parents contribute" means each parent is drawn with equal
    // probability (always copying `a` would bias the population).
    if (a.size() == 1)
        return rng.index(2) == 0 ? a : b;
    // Cut point in [1, len-1] so both parents contribute.
    const std::size_t cut = 1 + rng.index(a.size() - 1);
    std::vector<isa::Instruction> code;
    code.reserve(a.size());
    for (std::size_t i = 0; i < cut && i < a.size(); ++i)
        code.push_back(a[i]);
    for (std::size_t i = cut; i < b.size(); ++i)
        code.push_back(b[i]);
    return isa::Kernel(std::move(code));
}

void
GaEngine::mutate(isa::Kernel &kernel, const isa::InstructionPool &pool,
                 double rate, double operand_ratio, Rng &rng)
{
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        if (!rng.chance(rate))
            continue;
        if (rng.chance(operand_ratio)) {
            pool.randomizeOperands(kernel[i], rng);
        } else {
            kernel[i] = pool.randomInstruction(rng);
        }
    }
}

GaResult
GaEngine::run(FitnessEvaluator &evaluator,
              const GenerationCallback &callback,
              std::vector<isa::Kernel> seed_population)
{
    if (config_.restarts > 1 && seed_population.empty())
        return runMultiStart(evaluator, callback);
    return runSingle(evaluator, callback, std::move(seed_population));
}

GaResult
GaEngine::runMultiStart(FitnessEvaluator &evaluator,
                        const GenerationCallback &callback)
{
    // Phase 1: independent half-length searches.
    GaConfig scout_cfg = config_;
    scout_cfg.generations = std::max<std::size_t>(
        1, config_.generations / 2);
    scout_cfg.restarts = 1;

    std::vector<isa::Kernel> champions;
    double lab_seconds = 0.0;
    EvalStats scout_stats;
    GaResult best_scout;
    best_scout.best_fitness = kFailedFitness;
    for (std::size_t s = 0; s < config_.restarts; ++s) {
        scout_cfg.seed = config_.seed + 7919 * (s + 1);
        GaEngine scout(pool_, scout_cfg);
        auto result = scout.runSingle(evaluator, nullptr, {});
        lab_seconds += result.estimated_lab_seconds;
        scout_stats += result.eval_stats;
        champions.push_back(result.best);
        if (result.best_fitness > best_scout.best_fitness)
            best_scout = std::move(result);
    }

    // Phase 2: one combined search seeded with every champion.
    GaConfig final_cfg = config_;
    final_cfg.generations = std::max<std::size_t>(
        1, config_.generations - scout_cfg.generations);
    final_cfg.restarts = 1;
    GaEngine final_engine(pool_, final_cfg);
    GaResult result = final_engine.runSingle(evaluator, callback,
                                             std::move(champions));
    result.estimated_lab_seconds += lab_seconds;
    result.eval_stats += scout_stats;

    // Keep the scout history in front so convergence plots cover the
    // whole effort; re-number the final phase's generations.
    std::vector<GenerationRecord> history =
        std::move(best_scout.history);
    for (auto &rec : result.history) {
        rec.generation += scout_cfg.generations;
        history.push_back(std::move(rec));
    }
    result.history = std::move(history);
    if (best_scout.best_fitness > result.best_fitness) {
        result.best_fitness = best_scout.best_fitness;
        result.best = best_scout.best;
        result.best_detail = best_scout.best_detail;
    }
    return result;
}

GaResult
GaEngine::runSingle(FitnessEvaluator &evaluator,
                    const GenerationCallback &callback,
                    std::vector<isa::Kernel> seed_population)
{
    Rng rng(config_.seed);

    // Initial population: seeds first, random fill.
    std::vector<isa::Kernel> population = std::move(seed_population);
    if (population.size() > config_.population)
        population.resize(config_.population);
    for (auto &k : population) {
        requireConfig(k.size() == config_.kernel_length,
                      "seed individual length differs from "
                      "kernel_length");
        k.validate(pool_);
    }
    while (population.size() < config_.population) {
        population.push_back(
            isa::Kernel::random(pool_, config_.kernel_length, rng));
    }

    GaResult result;
    result.best_fitness = kFailedFitness;

    BatchEvaluator batch(
        evaluator, BatchConfig{config_.threads, config_.memoize,
                               config_.retry});

    std::vector<double> fitness(config_.population);
    std::vector<EvalDetail> details(config_.population);
    // Individuals whose fitness is already known because they were
    // carried over unchanged (elites): measuring them again would
    // only repeat the identical measurement and double-charge its
    // lab time.
    std::vector<char> known(config_.population, 0);

    for (std::size_t gen = 0; gen < config_.generations; ++gen) {
        // Observability only: the span and the summary gauges below
        // read the population, never write it, so results are
        // bit-identical with metrics on or off.
        metrics::ScopedPhase gen_span("ga.generation");
        // Measure the individuals we have not measured (Sec 3.1(b)).
        std::vector<std::size_t> todo;
        todo.reserve(population.size());
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (known[i])
                ++result.eval_stats.elites_reused;
            else
                todo.push_back(i);
        }
        const auto outcome =
            batch.evaluate(population, todo, fitness, details);
        result.estimated_lab_seconds += outcome.lab_seconds;

        // Record the generation.
        std::size_t best_i = 0;
        double mean = 0.0;
        for (std::size_t i = 0; i < fitness.size(); ++i) {
            mean += fitness[i];
            if (fitness[i] > fitness[best_i])
                best_i = i;
        }
        mean /= static_cast<double>(fitness.size());

        if (metrics::enabled()) {
            // Per-generation fitness summary: one sort, many
            // percentile queries (stats::percentileSorted).
            std::vector<double> sorted_fitness(fitness);
            std::sort(sorted_fitness.begin(), sorted_fitness.end());
            auto &reg = metrics::Registry::instance();
            reg.setGauge("ga.fitness.p05",
                         stats::percentileSorted(sorted_fitness, 5.0));
            reg.setGauge("ga.fitness.p50",
                         stats::percentileSorted(sorted_fitness, 50.0));
            reg.setGauge("ga.fitness.p95",
                         stats::percentileSorted(sorted_fitness, 95.0));
            reg.add("ga.individuals_evaluated", todo.size());
        }

        GenerationRecord rec;
        rec.generation = gen;
        rec.best_fitness = fitness[best_i];
        rec.mean_fitness = mean;
        rec.best_detail = details[best_i];
        rec.best = population[best_i];
        result.history.push_back(rec);
        if (callback)
            callback(rec);

        if (fitness[best_i] > result.best_fitness) {
            result.best_fitness = fitness[best_i];
            result.best = population[best_i];
            result.best_detail = details[best_i];
        }

        if (gen + 1 == config_.generations)
            break;

        // Breed the next generation (Section 3.1(c)).
        std::vector<isa::Kernel> next;
        next.reserve(config_.population);
        std::vector<double> next_fitness(config_.population);
        std::vector<EvalDetail> next_details(config_.population);
        std::vector<char> next_known(config_.population, 0);

        // Elitism: carry the fittest individuals unchanged — along
        // with their already-measured fitness and detail.
        std::vector<std::size_t> order(population.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&fitness](std::size_t a, std::size_t b) {
                      return fitness[a] > fitness[b];
                  });
        for (std::size_t e = 0; e < config_.elite; ++e) {
            const std::size_t src = order[e];
            next_fitness[next.size()] = fitness[src];
            next_details[next.size()] = details[src];
            next_known[next.size()] = 1;
            next.push_back(population[src]);
        }

        while (next.size() < config_.population) {
            const std::size_t pa =
                tournamentSelect(fitness, config_.tournament_k, rng);
            const std::size_t pb =
                tournamentSelect(fitness, config_.tournament_k, rng);
            isa::Kernel child =
                crossover(population[pa], population[pb], rng);
            mutate(child, pool_, config_.mutation_rate,
                   config_.operand_mutation_ratio, rng);
            next.push_back(std::move(child));
        }
        population = std::move(next);
        fitness = std::move(next_fitness);
        details = std::move(next_details);
        known = std::move(next_known);
    }
    // Adopt the batch evaluator's counters wholesale (a field-by-field
    // copy here once silently dropped samples_materialized); only
    // elites_reused accrues in this loop rather than in the batch.
    const std::size_t elites = result.eval_stats.elites_reused;
    result.eval_stats = batch.stats();
    result.eval_stats.elites_reused = elites;
    return result;
}

} // namespace ga
} // namespace emstress
