/**
 * @file
 * Fault-injection harness for the GA's measurement loop. A
 * FaultInjector binds a FaultSchedule (util/faultpoint.h) to the
 * evaluation pipeline: evaluators and target connections ask it, at
 * each named fault point, whether this (kernel, attempt) faults —
 * and it throws a FaultError when the schedule says so, while
 * keeping thread-safe per-point injection counters for reporting.
 *
 * Two decorators make any existing component faultable without
 * touching it:
 *  - FaultyEvaluator wraps a FitnessEvaluator and injects the
 *    connection-level faults (timeout, hang, glitched reading)
 *    around the wrapped evaluation — the synthetic-fitness GA tests
 *    use it to prove fault-tolerant evaluation end to end;
 *  - FaultyTargetConnection wraps a TargetConnection and faults its
 *    deploy/start/measure verbs, with measureEmWithRetry() as the
 *    retrying driver a host-side loop would use.
 *
 * The platform-bound evaluators (core/fitness.h) consult an injector
 * directly so that stream-truncation faults can unwind
 * Platform::streamKernel mid-capture.
 */

#ifndef EMSTRESS_GA_FAULT_INJECTOR_H
#define EMSTRESS_GA_FAULT_INJECTOR_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ga/ga_engine.h"
#include "ga/target_connection.h"
#include "util/faultpoint.h"

namespace emstress {
namespace ga {

/**
 * Thread-safe injection driver around a FaultSchedule. Deciding
 * whether a fault fires is pure (see FaultSchedule); the injector
 * only adds the throw and the monotonic injection counters, so one
 * instance is safely shared by every evaluator clone of a parallel
 * batch.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSchedule &schedule);

    /** The bound schedule (pure decision function). */
    const FaultSchedule &schedule() const { return schedule_; }

    /**
     * Fault point check: throws FaultError when the schedule fires
     * at (point, key, attempt), charging `cost_seconds` of modeled
     * lab time to the fault.
     */
    void at(FaultPoint point, std::uint64_t key,
            std::uint32_t attempt, double cost_seconds);

    /**
     * Sequential variant for callers that track the attempt number
     * in a member counter (e.g. a TargetConnection retried by an
     * outer loop): checks at(point, key, counter, ...), advancing
     * the counter when the fault fires and resetting it to zero when
     * the operation passes.
     */
    void atCounted(FaultPoint point, std::uint64_t key,
                   std::uint32_t &counter, double cost_seconds);

    /**
     * Record an injection performed by an external component built
     * from this schedule (e.g. a TruncatingSink about to throw).
     */
    void recordInjected(FaultPoint point);

    /** Faults injected so far at one point. */
    std::size_t injected(FaultPoint point) const;

    /** Faults injected so far across every point. */
    std::size_t totalInjected() const;

  private:
    FaultSchedule schedule_;
    std::array<std::atomic<std::uint64_t>, kFaultPointCount>
        injected_{};
};

/**
 * Decorator that injects connection-level faults around any fitness
 * evaluator: ConnectionTimeout and KernelHang before the wrapped
 * evaluation, GlitchedReading after it (the measurement completed
 * but the reading is unusable, so its full cost is wasted). Clones
 * share the injector — counters aggregate across workers — while the
 * wrapped evaluator clones normally.
 */
class FaultyEvaluator : public FitnessEvaluator
{
  public:
    /**
     * @param base     Wrapped evaluator; must outlive this object.
     * @param injector Shared fault driver (non-null).
     * @param latency  Timing model used to cost faulted attempts.
     */
    FaultyEvaluator(FitnessEvaluator &base,
                    std::shared_ptr<FaultInjector> injector,
                    const ConnectionLatency &latency = {});

    double evaluate(const isa::Kernel &kernel,
                    EvalDetail *detail) override;

    double evaluate(const isa::Kernel &kernel, EvalDetail *detail,
                    std::uint32_t attempt) override;

    std::string metricName() const override;

    std::unique_ptr<FitnessEvaluator> clone() const override;

  private:
    /** Clone constructor: owns the wrapped clone. */
    FaultyEvaluator(std::unique_ptr<FitnessEvaluator> owned,
                    std::shared_ptr<FaultInjector> injector,
                    const ConnectionLatency &latency);

    FitnessEvaluator *base_;
    std::unique_ptr<FitnessEvaluator> owned_;
    std::shared_ptr<FaultInjector> injector_;
    ConnectionLatency latency_;
};

/**
 * Decorator that faults a TargetConnection's verbs: deploy() can
 * time out, startRun() can hang, measureEm() can miss its trigger.
 * Attempt numbers advance per verb via FaultInjector::atCounted, so
 * an outer retry loop (measureEmWithRetry) sees fresh schedule draws
 * on each retry and convergent behavior at rates below 1.
 */
class FaultyTargetConnection : public TargetConnection
{
  public:
    FaultyTargetConnection(TargetConnection &base,
                           std::shared_ptr<FaultInjector> injector);

    void deploy(const isa::Kernel &kernel) override;
    void startRun() override;
    Trace measureEm() override;
    void stopRun() override;
    const ConnectionLatency &latency() const override;
    std::string describe() const override;

  private:
    TargetConnection &base_;
    std::shared_ptr<FaultInjector> injector_;
    std::uint64_t key_ = 0; ///< Hash of the last deployed kernel.
    std::uint32_t deploy_attempt_ = 0;
    std::uint32_t start_attempt_ = 0;
    std::uint32_t measure_attempt_ = 0;
};

/** Accounting from one retried measurement. */
struct MeasureRetryLog
{
    std::size_t faults = 0;  ///< FaultErrors caught (incl. final).
    std::size_t retries = 0; ///< Attempts re-issued after a fault.
    double backoff_seconds = 0.0; ///< Modeled wait time accrued.
};

/**
 * Host-side measurement driver: deploy / start / measure / stop with
 * bounded retry on FaultError. After a fault the run is stopped
 * best-effort, the modeled backoff is charged, and the loop retries
 * until success or `policy.max_attempts` total tries, rethrowing the
 * last FaultError on exhaustion. Non-fault exceptions propagate
 * immediately.
 */
Trace measureEmWithRetry(TargetConnection &conn,
                         const isa::Kernel &kernel,
                         const RetryPolicy &policy,
                         MeasureRetryLog *log = nullptr);

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_FAULT_INJECTOR_H
