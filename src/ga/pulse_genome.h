/**
 * @file
 * Pulse genome: the encoding that lets the existing instruction-
 * kernel GA search the EMFI pulse parameter space (timing ×
 * placement × amplitude) without a second genome representation.
 *
 * A pulse candidate is an ordinary isa::Kernel of
 * kPulseGenomeSlots instructions; each slot's structural content
 * (definition index and operands) is hashed onto one quantized
 * pulse parameter axis. Mutation and crossover of kernels therefore
 * explore the pulse grid, and everything downstream of the genome —
 * memoization keyed on Kernel::hash(), BatchEvaluator order
 * independence, GA restart/replay determinism — carries over
 * unchanged: equal kernels decode to equal pulses by construction.
 */

#ifndef EMSTRESS_GA_PULSE_GENOME_H
#define EMSTRESS_GA_PULSE_GENOME_H

#include <cstddef>

#include "em/pulse_injector.h"
#include "isa/kernel.h"

namespace emstress {
namespace ga {

/** Kernel length the pulse genome requires. */
inline constexpr std::size_t kPulseGenomeSlots = 6;

/**
 * Quantization grid of the pulse search space. Each axis is an
 * inclusive [min, max] range sampled at `steps` evenly spaced
 * points; a genome slot indexes one point.
 */
struct PulseGrid
{
    double t0_min_s = 0.0;      ///< Earliest trigger time.
    double t0_max_s = 2e-6;     ///< Latest trigger time.
    std::size_t t0_steps = 96;  ///< Trigger-time resolution.

    double width_min_s = 2e-9;  ///< Narrowest pulse.
    double width_max_s = 60e-9; ///< Widest pulse.
    std::size_t width_steps = 16;

    double amplitude_max_a = 30.0; ///< Peak coil current (min is 0).
    std::size_t amplitude_steps = 48;

    std::size_t position_steps = 12; ///< Grid points per die axis.
};

/**
 * Decode a kernel genome into a pulse spec on the grid. Pure in the
 * kernel's structural content: equal kernels (operator== and thus
 * Kernel::hash()) always decode to the identical spec.
 *
 * Slot assignment: 0 → t0, 1 → width, 2 → amplitude, 3 → polarity
 * and shape, 4 → x, 5 → y.
 *
 * @throws ConfigError when the kernel has fewer than
 *         kPulseGenomeSlots instructions or an axis has < 2 steps.
 */
em::PulseSpec decodePulseGenome(const PulseGrid &grid,
                                const isa::Kernel &genome);

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_PULSE_GENOME_H
