/**
 * @file
 * Genetic-algorithm framework for dI/dt stress-test generation
 * (paper Section 3). Individuals are instruction kernels; fitness is
 * supplied by a pluggable evaluator (EM amplitude, max droop or
 * peak-to-peak voltage); operators are tournament selection,
 * one-point crossover and instruction/operand mutation, with the
 * empirical settings the paper reports (population 50, ~60
 * generations, 2-4% mutation rate).
 */

#ifndef EMSTRESS_GA_GA_ENGINE_H
#define EMSTRESS_GA_GA_ENGINE_H

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/kernel.h"
#include "isa/pool.h"
#include "util/cancellation.h"
#include "util/faultpoint.h"
#include "util/rng.h"

namespace emstress {

class WorkerFleet; // util/worker_fleet.h

namespace ga {

/**
 * Sentinel fitness of a permanently failed individual (every retry
 * faulted). Finite — so population statistics stay finite — but far
 * below any physical metric, and equal to the engine's best-fitness
 * initializer, so a failed individual can never be selected as the
 * best and loses every tournament against a measured one.
 */
inline constexpr double kFailedFitness = -1e300;

/** GA hyper-parameters. */
struct GaConfig
{
    std::size_t population = 50;    ///< Individuals per generation.
    std::size_t generations = 60;   ///< Generations to run.
    std::size_t kernel_length = 50; ///< Instructions per individual.
    double mutation_rate = 0.03;    ///< Per-instruction probability.
    /// Of the mutations, fraction that only re-randomize operands
    /// (the rest replace the whole instruction).
    double operand_mutation_ratio = 0.5;
    std::size_t tournament_k = 3;   ///< Tournament size.
    std::size_t elite = 2;          ///< Individuals copied unchanged.
    std::uint64_t seed = 1;         ///< Master seed.
    /// Independent restarts. With restarts > 1, the engine runs that
    /// many half-length searches from different seeds, then one final
    /// half-length search whose population is seeded with every
    /// restart's best individuals — escaping harmonic local optima
    /// that single runs settle into (Section 3.1(a) explicitly allows
    /// seeding from previous runs).
    std::size_t restarts = 1;
    /// Worker threads for fitness evaluation: 1 = serial (the
    /// reference path), 0 = auto (EMSTRESS_THREADS environment
    /// variable, else hardware concurrency). Parallel evaluation
    /// requires the evaluator to be cloneable (see
    /// FitnessEvaluator::clone); otherwise the engine falls back to
    /// serial. Results are bit-identical across thread counts for
    /// order-independent evaluators.
    std::size_t threads = 1;
    /// Memoize fitness by instruction-genome hash, so kernels the GA
    /// rediscovers (crossover of identical parents, unmutated
    /// children) are never re-simulated. Lossless for
    /// order-independent evaluators; disable for evaluators whose
    /// result depends on call order or count.
    bool memoize = true;
    /// Retry policy for evaluations that throw FaultError (injected
    /// or real lab-link faults): each faulted attempt is retried with
    /// bounded modeled backoff; an individual whose every attempt
    /// faults receives kFailedFitness instead of aborting the run.
    RetryPolicy retry;
};

/** Detail an evaluator may report alongside the scalar fitness. */
struct EvalDetail
{
    double dominant_freq_hz = 0.0; ///< Strongest spectral component.
    double metric_raw = 0.0;       ///< Instrument-native value
                                   ///< (dBm, volts...).
    double measurement_seconds = 0.0; ///< Lab time this measurement
                                      ///< would have taken (Sec 3.2).
    std::size_t samples_materialized = 0; ///< Full-rate waveform
                                          ///< samples buffered for
                                          ///< this evaluation (0 on
                                          ///< the streaming path save
                                          ///< bounded captures).
};

/**
 * Fitness evaluator interface. Higher fitness is better.
 *
 * Evaluators should be *order-independent*: evaluate() of a given
 * kernel returns the same value no matter when or how often it is
 * called (the platform evaluators derive their measurement noise
 * from the kernel's own hash to guarantee this). Order independence
 * is what lets the engine reuse elite fitness across generations,
 * memoize duplicates, and evaluate populations in parallel while
 * staying bit-identical to the serial path.
 */
class FitnessEvaluator
{
  public:
    virtual ~FitnessEvaluator() = default;

    /** Evaluate one kernel; optionally fill detail. */
    virtual double evaluate(const isa::Kernel &kernel,
                            EvalDetail *detail) = 0;

    /**
     * Evaluate one kernel on a specific attempt number. Fault-aware
     * evaluators consult their FaultSchedule at (kernel, attempt) and
     * throw FaultError when an injected fault fires, so retries see
     * fresh schedule draws; the result on a *successful* attempt must
     * not depend on the attempt number (order independence extends to
     * attempt independence). The default ignores the attempt and
     * forwards to the two-argument overload.
     */
    virtual double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail,
             std::uint32_t attempt)
    {
        (void)attempt;
        return evaluate(kernel, detail);
    }

    /** Display name of the optimization metric. */
    virtual std::string metricName() const = 0;

    /**
     * Create an independent replica safe to call concurrently with
     * this instance (e.g. backed by its own cloned Platform). The
     * default returns nullptr, meaning "not cloneable": the batch
     * evaluator then degrades to serial evaluation.
     */
    virtual std::unique_ptr<FitnessEvaluator> clone() const
    {
        return nullptr;
    }
};

/**
 * Counters describing how a GA run's measurements were served —
 * surfaced in GaResult and the figure benches so the effect of elite
 * reuse, memoization and parallelism is visible.
 */
struct EvalStats
{
    std::size_t evals = 0;      ///< Fresh evaluator calls (simulated
                                ///< measurements actually run).
    std::size_t cache_hits = 0; ///< Individuals served from the
                                ///< genome-keyed fitness cache.
    std::size_t elites_reused = 0; ///< Elites carried over with
                                   ///< their known fitness.
    std::size_t threads = 1;    ///< Worker threads used.
    double eval_seconds = 0.0;  ///< Sum of per-evaluation wall time.
    double wall_seconds = 0.0;  ///< Elapsed wall time evaluating.
    std::size_t samples_materialized = 0; ///< Waveform samples
                                          ///< buffered across fresh
                                          ///< evaluations.
    std::size_t faults_injected = 0; ///< FaultErrors hit during
                                     ///< evaluation attempts.
    std::size_t retries = 0;         ///< Attempts re-issued after a
                                     ///< fault.
    std::size_t permanent_failures = 0; ///< Individuals whose every
                                        ///< attempt faulted (scored
                                        ///< kFailedFitness).
    double fault_backoff_seconds = 0.0; ///< Modeled lab wait time
                                        ///< spent backing off before
                                        ///< retries.
    std::size_t tasks_cancelled = 0; ///< Fresh evaluations skipped by
                                     ///< job cancellation — drained,
                                     ///< never scored, cached, or
                                     ///< counted as faults/failures.

    /** Parallel speedup: total evaluation work / elapsed time. */
    double
    speedup() const
    {
        return wall_seconds > 0.0 ? eval_seconds / wall_seconds : 1.0;
    }

    /** Accumulate another run's counters (multi-start merging). */
    EvalStats &
    operator+=(const EvalStats &other)
    {
        evals += other.evals;
        cache_hits += other.cache_hits;
        elites_reused += other.elites_reused;
        threads = std::max(threads, other.threads);
        eval_seconds += other.eval_seconds;
        wall_seconds += other.wall_seconds;
        samples_materialized += other.samples_materialized;
        faults_injected += other.faults_injected;
        retries += other.retries;
        permanent_failures += other.permanent_failures;
        fault_backoff_seconds += other.fault_backoff_seconds;
        tasks_cancelled += other.tasks_cancelled;
        return *this;
    }
};

/** Per-generation record for convergence plots (Figs. 7, 12, 17). */
struct GenerationRecord
{
    std::size_t generation = 0;
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
    EvalDetail best_detail;
    isa::Kernel best;
};

/** Full GA run result. */
struct GaResult
{
    std::vector<GenerationRecord> history;
    isa::Kernel best;            ///< Best individual over all gens.
    double best_fitness = 0.0;
    EvalDetail best_detail;
    double estimated_lab_seconds = 0.0; ///< Modeled wall time of the
                                        ///< equivalent physical run
                                        ///< (fresh measurements only:
                                        ///< reused elites and cache
                                        ///< hits cost no lab time;
                                        ///< faulted attempts and
                                        ///< retry backoff are
                                        ///< charged).
    EvalStats eval_stats;        ///< Measurement pipeline counters.
};

/** Optional per-generation observer. */
using GenerationCallback =
    std::function<void(const GenerationRecord &)>;

/** Validate GA hyper-parameters; throws ConfigError on nonsense. */
void validateGaConfig(const GaConfig &config);

/**
 * Service-era extension points threaded into a run's batch
 * evaluator. Default-constructed hooks reproduce the batch-era
 * behavior exactly: a private thread pool and no cancellation.
 */
struct BatchHooks
{
    /// Shared worker fleet to evaluate on instead of a private pool
    /// (the fleet's worker count overrides GaConfig::threads). Not
    /// owned; must outlive the run.
    WorkerFleet *fleet = nullptr;
    /// Cooperative cancellation: once fired, pending evaluations are
    /// drained without being scored, cached or charged.
    CancelToken cancel;
};

class BatchEvaluator; // ga/batch_evaluator.h

/**
 * One plain GA search (GaConfig::restarts is ignored), advanced one
 * generation at a time. This is the unit the service scheduler
 * interleaves: each step() evaluates and breeds exactly one
 * generation, so a scheduler can round-robin steps across many live
 * jobs on one shared fleet. GaEngine::runSingle is a loop over this
 * class, which is what makes service runs bit-identical to direct
 * runs by construction rather than by parallel reimplementation.
 */
class GaStepper
{
  public:
    /**
     * Validate the config, seed the initial population (seeds first,
     * random fill) and prepare the batch evaluator. No evaluation
     * happens until the first step().
     */
    GaStepper(const isa::InstructionPool &pool, const GaConfig &config,
              FitnessEvaluator &evaluator,
              std::vector<isa::Kernel> seed_population = {},
              BatchHooks hooks = {});

    GaStepper(const GaStepper &) = delete;
    GaStepper &operator=(const GaStepper &) = delete;

    ~GaStepper();

    /** True once every generation ran — or cancellation fired. */
    bool done() const;

    /** True iff the hook's cancel token fired. */
    bool cancelled() const;

    /** Generations executed so far. */
    std::size_t generationsDone() const { return gen_; }

    /** Generations this search runs in total. */
    std::size_t
    generationsPlanned() const
    {
        return config_.generations;
    }

    /**
     * Evaluate the current population and breed the next one.
     * Returns the generation's record (valid until the next step() or
     * finish()), or nullptr when the run is done or was cancelled
     * mid-step — a cancelled generation is never recorded, since its
     * unevaluated slots hold no meaningful fitness.
     */
    const GenerationRecord *step();

    /**
     * Finalize and surrender the result (history, best individual,
     * EvalStats adopted from the batch evaluator). Call once, after
     * done(); the stepper is spent afterwards.
     */
    GaResult finish();

  private:
    const isa::InstructionPool &pool_;
    GaConfig config_;
    Rng rng_;
    std::unique_ptr<BatchEvaluator> batch_;
    std::vector<isa::Kernel> population_;
    std::vector<double> fitness_;
    std::vector<EvalDetail> details_;
    std::vector<char> known_;
    GaResult result_;
    std::size_t gen_ = 0;
    bool finished_ = false;
};

/**
 * Resumable driver for a complete GA job: single search or the
 * multi-start scout/final flow, advanced one generation at a time.
 * Produces bit-identical results to GaEngine::run with the same
 * config — GaEngine::run *is* a loop over this driver.
 */
class GaDriver
{
  public:
    /** Phase selection. */
    enum class Mode
    {
        kAuto,       ///< Multi-start iff restarts > 1 and no seeds
                     ///< (GaEngine::run's dispatch rule).
        kSingle,     ///< One plain search, restarts ignored.
        kMultiStart, ///< Scouts + seeded final, even for restarts==1.
    };

    GaDriver(const isa::InstructionPool &pool, const GaConfig &config,
             FitnessEvaluator &evaluator,
             std::vector<isa::Kernel> seed_population = {},
             BatchHooks hooks = {}, Mode mode = Mode::kAuto);

    GaDriver(const GaDriver &) = delete;
    GaDriver &operator=(const GaDriver &) = delete;

    ~GaDriver();

    /** True once the last phase finished — or cancellation fired. */
    bool done() const;

    /** True iff the hook's cancel token fired. */
    bool cancelled() const;

    /** Generations executed so far, across all phases. */
    std::size_t generationsDone() const { return steps_done_; }

    /** Total generations the job will run, across all phases. */
    std::size_t totalGenerations() const { return total_steps_; }

    /**
     * Advance the job by one generation. Returns the generation's
     * record when it is a *reportable* one — a generation of the
     * single search, or of the multi-start final phase (scout
     * generations return nullptr), exactly mirroring which records
     * GaEngine::run hands to its callback, local generation numbering
     * included. The pointer is valid until the next step()/finish().
     */
    const GenerationRecord *step();

    /**
     * Finalize and surrender the job result (multi-start history
     * stitching included). Call once, after done().
     */
    GaResult finish();

  private:
    /** Finalize the current scout and stand up the next phase. */
    void advanceScout();

    const isa::InstructionPool &pool_;
    GaConfig config_;
    FitnessEvaluator &evaluator_;
    BatchHooks hooks_;
    bool multi_ = false;
    GaConfig scout_cfg_; ///< Half-length template (seed per scout).
    GaConfig final_cfg_;
    std::unique_ptr<GaStepper> stepper_;
    bool in_final_ = false;
    std::size_t scout_index_ = 0;
    std::vector<isa::Kernel> champions_;
    double scout_lab_seconds_ = 0.0;
    EvalStats scout_stats_;
    GaResult best_scout_;
    std::size_t steps_done_ = 0;
    std::size_t total_steps_ = 0;
    bool finished_ = false;
};

/**
 * The GA engine.
 */
class GaEngine
{
  public:
    /**
     * @param pool   Instruction pool individuals draw from.
     * @param config Hyper-parameters.
     */
    GaEngine(const isa::InstructionPool &pool, const GaConfig &config);

    /** Configuration. */
    const GaConfig &config() const { return config_; }

    /**
     * Run the GA to completion.
     * @param evaluator Fitness source.
     * @param callback  Optional per-generation observer.
     * @param seed_population Optional initial population (e.g. from a
     *        previous run, per Section 3.1(a)); padded/truncated to
     *        the configured population size.
     */
    GaResult run(FitnessEvaluator &evaluator,
                 const GenerationCallback &callback = nullptr,
                 std::vector<isa::Kernel> seed_population = {});

    /// @{ Run phases, exposed for unit testing.
    /** One plain search (ignores GaConfig::restarts). */
    GaResult runSingle(FitnessEvaluator &evaluator,
                       const GenerationCallback &callback,
                       std::vector<isa::Kernel> seed_population);
    /** The restart flow (scouts then a seeded final search). */
    GaResult runMultiStart(FitnessEvaluator &evaluator,
                           const GenerationCallback &callback);
    /// @}

    /// @{ Operators, exposed for unit testing.
    /** Tournament selection: index of the winner. */
    static std::size_t tournamentSelect(
        const std::vector<double> &fitness, std::size_t k, Rng &rng);
    /** One-point crossover of two parents. */
    static isa::Kernel crossover(const isa::Kernel &a,
                                 const isa::Kernel &b, Rng &rng);
    /** In-place mutation. */
    static void mutate(isa::Kernel &kernel,
                       const isa::InstructionPool &pool,
                       double rate, double operand_ratio, Rng &rng);
    /// @}

  private:
    const isa::InstructionPool &pool_;
    GaConfig config_;
};

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_GA_ENGINE_H
