/**
 * @file
 * Genetic-algorithm framework for dI/dt stress-test generation
 * (paper Section 3). Individuals are instruction kernels; fitness is
 * supplied by a pluggable evaluator (EM amplitude, max droop or
 * peak-to-peak voltage); operators are tournament selection,
 * one-point crossover and instruction/operand mutation, with the
 * empirical settings the paper reports (population 50, ~60
 * generations, 2-4% mutation rate).
 */

#ifndef EMSTRESS_GA_GA_ENGINE_H
#define EMSTRESS_GA_GA_ENGINE_H

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "isa/kernel.h"
#include "isa/pool.h"
#include "util/faultpoint.h"
#include "util/rng.h"

namespace emstress {
namespace ga {

/**
 * Sentinel fitness of a permanently failed individual (every retry
 * faulted). Finite — so population statistics stay finite — but far
 * below any physical metric, and equal to the engine's best-fitness
 * initializer, so a failed individual can never be selected as the
 * best and loses every tournament against a measured one.
 */
inline constexpr double kFailedFitness = -1e300;

/** GA hyper-parameters. */
struct GaConfig
{
    std::size_t population = 50;    ///< Individuals per generation.
    std::size_t generations = 60;   ///< Generations to run.
    std::size_t kernel_length = 50; ///< Instructions per individual.
    double mutation_rate = 0.03;    ///< Per-instruction probability.
    /// Of the mutations, fraction that only re-randomize operands
    /// (the rest replace the whole instruction).
    double operand_mutation_ratio = 0.5;
    std::size_t tournament_k = 3;   ///< Tournament size.
    std::size_t elite = 2;          ///< Individuals copied unchanged.
    std::uint64_t seed = 1;         ///< Master seed.
    /// Independent restarts. With restarts > 1, the engine runs that
    /// many half-length searches from different seeds, then one final
    /// half-length search whose population is seeded with every
    /// restart's best individuals — escaping harmonic local optima
    /// that single runs settle into (Section 3.1(a) explicitly allows
    /// seeding from previous runs).
    std::size_t restarts = 1;
    /// Worker threads for fitness evaluation: 1 = serial (the
    /// reference path), 0 = auto (EMSTRESS_THREADS environment
    /// variable, else hardware concurrency). Parallel evaluation
    /// requires the evaluator to be cloneable (see
    /// FitnessEvaluator::clone); otherwise the engine falls back to
    /// serial. Results are bit-identical across thread counts for
    /// order-independent evaluators.
    std::size_t threads = 1;
    /// Memoize fitness by instruction-genome hash, so kernels the GA
    /// rediscovers (crossover of identical parents, unmutated
    /// children) are never re-simulated. Lossless for
    /// order-independent evaluators; disable for evaluators whose
    /// result depends on call order or count.
    bool memoize = true;
    /// Retry policy for evaluations that throw FaultError (injected
    /// or real lab-link faults): each faulted attempt is retried with
    /// bounded modeled backoff; an individual whose every attempt
    /// faults receives kFailedFitness instead of aborting the run.
    RetryPolicy retry;
};

/** Detail an evaluator may report alongside the scalar fitness. */
struct EvalDetail
{
    double dominant_freq_hz = 0.0; ///< Strongest spectral component.
    double metric_raw = 0.0;       ///< Instrument-native value
                                   ///< (dBm, volts...).
    double measurement_seconds = 0.0; ///< Lab time this measurement
                                      ///< would have taken (Sec 3.2).
    std::size_t samples_materialized = 0; ///< Full-rate waveform
                                          ///< samples buffered for
                                          ///< this evaluation (0 on
                                          ///< the streaming path save
                                          ///< bounded captures).
};

/**
 * Fitness evaluator interface. Higher fitness is better.
 *
 * Evaluators should be *order-independent*: evaluate() of a given
 * kernel returns the same value no matter when or how often it is
 * called (the platform evaluators derive their measurement noise
 * from the kernel's own hash to guarantee this). Order independence
 * is what lets the engine reuse elite fitness across generations,
 * memoize duplicates, and evaluate populations in parallel while
 * staying bit-identical to the serial path.
 */
class FitnessEvaluator
{
  public:
    virtual ~FitnessEvaluator() = default;

    /** Evaluate one kernel; optionally fill detail. */
    virtual double evaluate(const isa::Kernel &kernel,
                            EvalDetail *detail) = 0;

    /**
     * Evaluate one kernel on a specific attempt number. Fault-aware
     * evaluators consult their FaultSchedule at (kernel, attempt) and
     * throw FaultError when an injected fault fires, so retries see
     * fresh schedule draws; the result on a *successful* attempt must
     * not depend on the attempt number (order independence extends to
     * attempt independence). The default ignores the attempt and
     * forwards to the two-argument overload.
     */
    virtual double
    evaluate(const isa::Kernel &kernel, EvalDetail *detail,
             std::uint32_t attempt)
    {
        (void)attempt;
        return evaluate(kernel, detail);
    }

    /** Display name of the optimization metric. */
    virtual std::string metricName() const = 0;

    /**
     * Create an independent replica safe to call concurrently with
     * this instance (e.g. backed by its own cloned Platform). The
     * default returns nullptr, meaning "not cloneable": the batch
     * evaluator then degrades to serial evaluation.
     */
    virtual std::unique_ptr<FitnessEvaluator> clone() const
    {
        return nullptr;
    }
};

/**
 * Counters describing how a GA run's measurements were served —
 * surfaced in GaResult and the figure benches so the effect of elite
 * reuse, memoization and parallelism is visible.
 */
struct EvalStats
{
    std::size_t evals = 0;      ///< Fresh evaluator calls (simulated
                                ///< measurements actually run).
    std::size_t cache_hits = 0; ///< Individuals served from the
                                ///< genome-keyed fitness cache.
    std::size_t elites_reused = 0; ///< Elites carried over with
                                   ///< their known fitness.
    std::size_t threads = 1;    ///< Worker threads used.
    double eval_seconds = 0.0;  ///< Sum of per-evaluation wall time.
    double wall_seconds = 0.0;  ///< Elapsed wall time evaluating.
    std::size_t samples_materialized = 0; ///< Waveform samples
                                          ///< buffered across fresh
                                          ///< evaluations.
    std::size_t faults_injected = 0; ///< FaultErrors hit during
                                     ///< evaluation attempts.
    std::size_t retries = 0;         ///< Attempts re-issued after a
                                     ///< fault.
    std::size_t permanent_failures = 0; ///< Individuals whose every
                                        ///< attempt faulted (scored
                                        ///< kFailedFitness).
    double fault_backoff_seconds = 0.0; ///< Modeled lab wait time
                                        ///< spent backing off before
                                        ///< retries.

    /** Parallel speedup: total evaluation work / elapsed time. */
    double
    speedup() const
    {
        return wall_seconds > 0.0 ? eval_seconds / wall_seconds : 1.0;
    }

    /** Accumulate another run's counters (multi-start merging). */
    EvalStats &
    operator+=(const EvalStats &other)
    {
        evals += other.evals;
        cache_hits += other.cache_hits;
        elites_reused += other.elites_reused;
        threads = std::max(threads, other.threads);
        eval_seconds += other.eval_seconds;
        wall_seconds += other.wall_seconds;
        samples_materialized += other.samples_materialized;
        faults_injected += other.faults_injected;
        retries += other.retries;
        permanent_failures += other.permanent_failures;
        fault_backoff_seconds += other.fault_backoff_seconds;
        return *this;
    }
};

/** Per-generation record for convergence plots (Figs. 7, 12, 17). */
struct GenerationRecord
{
    std::size_t generation = 0;
    double best_fitness = 0.0;
    double mean_fitness = 0.0;
    EvalDetail best_detail;
    isa::Kernel best;
};

/** Full GA run result. */
struct GaResult
{
    std::vector<GenerationRecord> history;
    isa::Kernel best;            ///< Best individual over all gens.
    double best_fitness = 0.0;
    EvalDetail best_detail;
    double estimated_lab_seconds = 0.0; ///< Modeled wall time of the
                                        ///< equivalent physical run
                                        ///< (fresh measurements only:
                                        ///< reused elites and cache
                                        ///< hits cost no lab time;
                                        ///< faulted attempts and
                                        ///< retry backoff are
                                        ///< charged).
    EvalStats eval_stats;        ///< Measurement pipeline counters.
};

/** Optional per-generation observer. */
using GenerationCallback =
    std::function<void(const GenerationRecord &)>;

/**
 * The GA engine.
 */
class GaEngine
{
  public:
    /**
     * @param pool   Instruction pool individuals draw from.
     * @param config Hyper-parameters.
     */
    GaEngine(const isa::InstructionPool &pool, const GaConfig &config);

    /** Configuration. */
    const GaConfig &config() const { return config_; }

    /**
     * Run the GA to completion.
     * @param evaluator Fitness source.
     * @param callback  Optional per-generation observer.
     * @param seed_population Optional initial population (e.g. from a
     *        previous run, per Section 3.1(a)); padded/truncated to
     *        the configured population size.
     */
    GaResult run(FitnessEvaluator &evaluator,
                 const GenerationCallback &callback = nullptr,
                 std::vector<isa::Kernel> seed_population = {});

    /// @{ Run phases, exposed for unit testing.
    /** One plain search (ignores GaConfig::restarts). */
    GaResult runSingle(FitnessEvaluator &evaluator,
                       const GenerationCallback &callback,
                       std::vector<isa::Kernel> seed_population);
    /** The restart flow (scouts then a seeded final search). */
    GaResult runMultiStart(FitnessEvaluator &evaluator,
                           const GenerationCallback &callback);
    /// @}

    /// @{ Operators, exposed for unit testing.
    /** Tournament selection: index of the winner. */
    static std::size_t tournamentSelect(
        const std::vector<double> &fitness, std::size_t k, Rng &rng);
    /** One-point crossover of two parents. */
    static isa::Kernel crossover(const isa::Kernel &a,
                                 const isa::Kernel &b, Rng &rng);
    /** In-place mutation. */
    static void mutate(isa::Kernel &kernel,
                       const isa::InstructionPool &pool,
                       double rate, double operand_ratio, Rng &rng);
    /// @}

  private:
    const isa::InstructionPool &pool_;
    GaConfig config_;
};

} // namespace ga
} // namespace emstress

#endif // EMSTRESS_GA_GA_ENGINE_H
