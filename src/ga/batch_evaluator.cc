/**
 * @file
 * Batch evaluator implementation.
 */

#include "ga/batch_evaluator.h"

#include <chrono>
#include <optional>
#include <string>

#include "util/metrics.h"

namespace emstress {
namespace ga {

namespace {

// Wall-time accounting only: eval_seconds/wall_seconds in EvalStats
// are operator-facing timing stats and never feed fitness, ranking,
// or any other replayed result.
using Clock = std::chrono::steady_clock; // lint: timing-stats

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

BatchEvaluator::BatchEvaluator(FitnessEvaluator &base,
                               const BatchConfig &config)
    : base_(base), config_(config),
      threads_(config.fleet != nullptr
                   ? config.fleet->size()
                   : resolveThreadCount(config.threads))
{
    stats_.threads = 1; // raised once workers materialize
}

BatchEvaluator::~BatchEvaluator() = default;

bool
BatchEvaluator::cancelled() const
{
    return config_.cancel
        && config_.cancel->load(std::memory_order_relaxed);
}

const BatchEvaluator::CacheEntry *
BatchEvaluator::lookup(std::uint64_t hash,
                       const isa::Kernel &kernel) const
{
    // Order-independent despite walking a hash bucket: entries are
    // keyed by full kernel equality and a kernel is inserted at most
    // once, so at most one entry can match regardless of the order
    // equal_range yields collisions in.
    const auto [lo, hi] = cache_.equal_range(hash); // lint: ordered-merge
    for (auto it = lo; it != hi; ++it)
        if (it->second.kernel == kernel)
            return &it->second;
    return nullptr;
}

bool
BatchEvaluator::ensureWorkers()
{
    if (clone_failed_)
        return false;
    if (config_.fleet == nullptr && threads_ <= 1)
        return false;
    if (!clones_.empty())
        return true;
    clones_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) {
        auto c = base_.clone();
        if (!c) {
            // Evaluator cannot run concurrently: degrade to serial.
            clones_.clear();
            clone_failed_ = true;
            return false;
        }
        clones_.push_back(std::move(c));
    }
    if (config_.fleet == nullptr)
        pool_ = std::make_unique<ThreadPool>(threads_);
    stats_.threads = std::max(stats_.threads, threads_);
    return true;
}

BatchEvaluator::Outcome
BatchEvaluator::evaluate(const std::vector<isa::Kernel> &kernels,
                         const std::vector<std::size_t> &indices,
                         std::vector<double> &fitness,
                         std::vector<EvalDetail> &details)
{
    Outcome out;
    if (indices.empty())
        return out;

    // Observability only (see util/metrics.h): spans and counters
    // observe the batch, never steer it. Re-emplacing closes the
    // previous phase's span exactly at the phase boundary.
    std::optional<metrics::ScopedPhase> span;
    span.emplace("batch.dispatch");

    // Phase 1 (calling thread, deterministic): split the batch into
    // cache hits and unique fresh work. Duplicates *within* the batch
    // collapse onto the first occurrence.
    struct FreshTask
    {
        std::size_t slot = 0;  ///< Result slot of the 1st occurrence.
        std::uint64_t hash = 0;
        double fitness = 0.0;
        EvalDetail detail;
        double seconds = 0.0;  ///< Wall time of this evaluation.
        std::size_t faults = 0;   ///< FaultErrors hit on this task.
        double fault_lab_s = 0.0; ///< Lab time lost to the faults.
        double backoff_s = 0.0;   ///< Modeled backoff before retries.
        bool failed = false;      ///< Every attempt faulted.
        bool done = false;        ///< Ran to completion (not skipped
                                  ///< by cancellation).
    };
    std::vector<FreshTask> fresh;
    // slot of every duplicate -> index into `fresh` it aliases.
    std::vector<std::pair<std::size_t, std::size_t>> aliases;
    std::unordered_map<std::uint64_t, std::size_t> batch_local;
    fresh.reserve(indices.size());

    for (const std::size_t slot : indices) {
        const isa::Kernel &kernel = kernels[slot];
        const std::uint64_t h = kernel.hash();
        if (config_.memoize) {
            if (const CacheEntry *hit = lookup(h, kernel)) {
                fitness[slot] = hit->fitness;
                details[slot] = hit->detail;
                ++out.cache_hits;
                continue;
            }
            const auto it = batch_local.find(h);
            if (it != batch_local.end()
                && kernels[fresh[it->second].slot] == kernel) {
                aliases.emplace_back(slot, it->second);
                ++out.cache_hits;
                continue;
            }
            batch_local.emplace(h, fresh.size());
        }
        FreshTask task;
        task.slot = slot;
        task.hash = h;
        fresh.push_back(task);
    }

    // Phase 2: run the fresh evaluations — in parallel when the
    // evaluator clones (over the private pool, or as one batch on
    // the shared fleet), serially in index order otherwise. Each
    // task writes only its own FreshTask entry (including its fault
    // counters), so the results and accounting are independent of
    // scheduling. FaultErrors are retried under the configured
    // policy; any other exception propagates — it signals a bug, not
    // a flaky lab link. A fired cancel token leaves tasks with
    // done == false; they are excluded from results and accounting
    // in phase 3.
    const RetryPolicy &retry = config_.retry;
    const std::atomic<bool> *cancel_flag =
        config_.cancel ? config_.cancel.get() : nullptr;
    const auto runOne = [&retry, &kernels,
                         cancel_flag](FitnessEvaluator &ev,
                                      FreshTask &task) {
        const auto task_t0 = Clock::now();
        const std::uint32_t max_attempts =
            std::max<std::uint32_t>(1, retry.max_attempts);
        for (std::uint32_t attempt = 0;; ++attempt) {
            // A job cancelled mid-retry stops measuring: the task
            // stays not-done and is dropped from accounting, exactly
            // like a task that never started.
            if (cancel_flag != nullptr
                && cancel_flag->load(std::memory_order_relaxed))
                return;
            try {
                task.detail = EvalDetail{};
                task.fitness = ev.evaluate(kernels[task.slot],
                                           &task.detail, attempt);
                break;
            } catch (const FaultError &err) {
                ++task.faults;
                task.fault_lab_s += err.costSeconds();
                if (attempt + 1 >= max_attempts) {
                    // Permanently failed individual: sentinel score,
                    // no measurement detail.
                    task.detail = EvalDetail{};
                    task.fitness = kFailedFitness;
                    task.failed = true;
                    break;
                }
                task.backoff_s += retry.backoffFor(attempt + 1);
            }
        }
        task.seconds = secondsSince(task_t0);
        task.done = true;
    };
    span.emplace("batch.evaluate");
    const auto t0 = Clock::now();
    // Queue-wait accounting: how long each fresh task sat between
    // batch dispatch and the moment a worker picked it up.
    const double q0 = metrics::monotonicSeconds();
    const bool observe = metrics::enabled();
    const auto instrumentedTask = [this, &fresh, &runOne, q0,
                                   observe](std::size_t i,
                                            std::size_t worker) {
        if (observe) {
            auto &reg = metrics::Registry::instance();
            reg.recordLatency("batch.queue_wait",
                              metrics::monotonicSeconds() - q0);
            reg.add("batch.worker." + std::to_string(worker)
                    + ".tasks");
        }
        metrics::ScopedPhase task_span("batch.eval_task");
        runOne(*clones_[worker], fresh[i]);
    };
    if (config_.fleet != nullptr && !fresh.empty()
        && ensureWorkers()) {
        config_.fleet->run(fresh.size(), instrumentedTask,
                           cancel_flag);
    } else if (fresh.size() > 1 && ensureWorkers()) {
        pool_->parallelFor(fresh.size(), instrumentedTask);
    } else {
        for (FreshTask &task : fresh) {
            if (cancel_flag != nullptr
                && cancel_flag->load(std::memory_order_relaxed))
                break;
            if (observe) {
                auto &reg = metrics::Registry::instance();
                reg.recordLatency("batch.queue_wait",
                                  metrics::monotonicSeconds() - q0);
                reg.add("batch.worker.serial.tasks");
            }
            metrics::ScopedPhase task_span("batch.eval_task");
            runOne(base_, task);
        }
    }
    const double wall = secondsSince(t0);

    // Phase 3 (calling thread, index order): publish results, resolve
    // duplicates, and fill the cache. Tasks skipped by cancellation
    // contribute nothing: no slot write, no cache entry, no fault or
    // failure accounting — only the Outcome::cancelled count.
    span.emplace("batch.merge");
    for (const FreshTask &task : fresh) {
        if (!task.done) {
            ++out.cancelled;
            continue;
        }
        fitness[task.slot] = task.fitness;
        details[task.slot] = task.detail;
        out.lab_seconds += task.detail.measurement_seconds
            + task.fault_lab_s + task.backoff_s;
        stats_.eval_seconds += task.seconds;
        stats_.samples_materialized += task.detail.samples_materialized;
        stats_.faults_injected += task.faults;
        stats_.fault_backoff_seconds += task.backoff_s;
        if (task.failed) {
            ++stats_.permanent_failures;
            stats_.retries += task.faults - 1;
        } else {
            stats_.retries += task.faults;
        }
        // Failed results memoize too: the schedule is pure in
        // (kernel, attempt), so re-presenting the genome would fault
        // identically — a cache hit loses nothing.
        if (config_.memoize) {
            cache_.emplace(task.hash,
                           CacheEntry{kernels[task.slot], task.fitness,
                                      task.detail});
        }
        ++out.fresh;
    }
    for (const auto &[slot, fresh_i] : aliases) {
        if (!fresh[fresh_i].done)
            continue;
        fitness[slot] = fresh[fresh_i].fitness;
        details[slot] = fresh[fresh_i].detail;
    }

    stats_.evals += out.fresh;
    stats_.cache_hits += out.cache_hits;
    stats_.tasks_cancelled += out.cancelled;
    stats_.wall_seconds += wall;
    if (observe) {
        auto &reg = metrics::Registry::instance();
        reg.add("batch.fresh_evals", out.fresh);
        reg.add("batch.cache_hits", out.cache_hits);
        if (out.cancelled > 0)
            reg.add("batch.tasks_cancelled", out.cancelled);
    }
    return out;
}

std::size_t
BatchEvaluator::plannedThreads() const
{
    if (clone_failed_)
        return 1;
    if (config_.fleet != nullptr)
        return config_.fleet->size();
    if (threads_ <= 1)
        return 1;
    return threads_;
}

} // namespace ga
} // namespace emstress
