/**
 * @file
 * Platform implementation and the three paper configurations.
 */

#include "platform/platform.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "pdn/resonance.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/units.h"

namespace emstress {
namespace platform {

namespace {

/**
 * Refine the die-tank inductance so the *realized* 1st-order
 * resonance of the full ladder (which the upstream stages shift
 * slightly away from the ideal LC value) lands on the measured
 * anchor.
 */
void
refineDieTank(pdn::PdnParameters &params, double f_target_hz)
{
    for (int i = 0; i < 4; ++i) {
        pdn::PdnModel model(params);
        const double realized = pdn::firstOrderResonanceHz(model);
        const double ratio = realized / f_target_hz;
        params.l_pkg_die *= ratio * ratio;
    }
}

/**
 * Relative per-core start stagger in seconds. Instances launched
 * together run near-lockstep, so the stagger is ~1 ns: it must stay
 * a small fraction of the 1st-order resonance period (~13-15 ns) on
 * every platform, otherwise the summed multi-core current would
 * artificially cancel at exactly the resonant loop periods. A fixed
 * *cycle* stagger would do that on slow clocks.
 */
constexpr double kCorePhaseStagger = 1e-9;

/** Extra simulated lead time discarded to let the PDN settle [s]. */
constexpr double kSettleTime = 0.5e-6;

isa::InstructionPool
poolFor(isa::IsaFamily isa)
{
    return isa == isa::IsaFamily::ArmV8
        ? isa::InstructionPool::armV8()
        : isa::InstructionPool::x86Sse2();
}

instruments::SpectrumAnalyzerParams
analyzerParamsFor(const PlatformConfig &)
{
    instruments::SpectrumAnalyzerParams p;
    p.f_start_hz = mega(10.0);
    p.f_stop_hz = mega(500.0);
    return p;
}

instruments::OscilloscopeParams
scopeParamsFor(const PlatformConfig &cfg)
{
    return cfg.visibility == VoltageVisibility::KelvinPads
        ? instruments::kelvinScopeParams()
        : instruments::ocDsoParams();
}

/**
 * Streaming multi-core summation: replays finishRun's rotation sum
 *
 *     total[k] = sum_c one[(k + c*stagger) % N] * v_scale  (+ idle)
 *
 * sample-exactly while holding only the first (cores-1)*stagger
 * samples (the wrapped tail terms re-read the stream's head) and a
 * ring of the most recent (cores-1)*stagger + 1 samples. Output k is
 * emitted once input k + (cores-1)*stagger has arrived; the final
 * (cores-1)*stagger outputs flush in finish().
 */
class StaggerSumSink final : public SampleSink
{
  public:
    StaggerSumSink(SampleSink &downstream, std::size_t n_in,
                   std::size_t stagger_cycles, std::size_t cores,
                   double v_scale, double extra_idle)
        : downstream_(downstream), n_in_(n_in), st_(stagger_cycles),
          cores_(cores), v_scale_(v_scale), extra_idle_(extra_idle),
          max_shift_(stagger_cycles * (cores - 1)),
          ring_(max_shift_ + 1, 0.0)
    {
        requireSim(n_in > stagger_cycles * cores,
                   "core trace too short for phase-shifted summation");
        head_.reserve(max_shift_);
    }

    void
    push(double v) override
    {
        if (head_.size() < max_shift_)
            head_.push_back(v);
        ring_[seen_ % ring_.size()] = v;
        if (seen_ >= max_shift_)
            emit(seen_ - max_shift_);
        ++seen_;
    }

    void
    finish() override
    {
        requireSim(seen_ == n_in_,
                   "stagger sum expected the full core stream");
        for (std::size_t k = n_in_ - max_shift_; k < n_in_; ++k)
            emit(k);
        downstream_.finish();
    }

  private:
    void
    emit(std::size_t k)
    {
        double total = 0.0;
        for (std::size_t c = 0; c < cores_; ++c) {
            const std::size_t raw = k + c * st_;
            const double sample = raw < n_in_
                ? ring_[raw % ring_.size()]
                : head_[raw - n_in_];
            total += sample * v_scale_;
        }
        if (extra_idle_ > 0.0)
            total += extra_idle_;
        downstream_.push(total);
    }

    SampleSink &downstream_;
    std::size_t n_in_;
    std::size_t st_;
    std::size_t cores_;
    double v_scale_;
    double extra_idle_;
    std::size_t max_shift_;
    std::vector<double> ring_;
    std::vector<double> head_;
    std::size_t seen_ = 0;
};

} // namespace

PlatformConfig
junoA72Config()
{
    PlatformConfig cfg;
    cfg.name = "Cortex-A72";
    cfg.motherboard = "Juno Board R2";
    cfg.os = "Debian";
    cfg.technology_nm = 16;
    cfg.n_cores = 2;
    cfg.f_max_hz = giga(1.2);
    cfg.f_min_hz = mega(120.0);
    cfg.f_step_hz = mega(20.0);
    cfg.v_nom = 1.0;
    cfg.visibility = VoltageVisibility::OcDso;
    cfg.has_scl = true;
    cfg.antenna_distance_m = 0.07;
    cfg.core = uarch::cortexA72Params();
    cfg.isa = isa::IsaFamily::ArmV8;
    // Calibrated to Fig. 8 / Fig. 11 anchors: ~67 MHz with both
    // cores powered, ~85 MHz with one.
    cfg.pdn.calibrateDieTank(mega(67.0), mega(85.0), 2, nano(120.0));
    refineDieTank(cfg.pdn, mega(67.0));
    cfg.pdn.v_nom = cfg.v_nom;
    return cfg;
}

PlatformConfig
junoA53Config()
{
    PlatformConfig cfg;
    cfg.name = "Cortex-A53";
    cfg.motherboard = "Juno Board R2";
    cfg.os = "Debian";
    cfg.technology_nm = 16;
    cfg.n_cores = 4;
    cfg.f_max_hz = mega(950.0);
    cfg.f_min_hz = mega(95.0);
    cfg.f_step_hz = mega(19.0);
    cfg.v_nom = 1.0;
    cfg.visibility = VoltageVisibility::None;
    cfg.has_scl = false;
    cfg.antenna_distance_m = 0.07;
    cfg.core = uarch::cortexA53Params();
    cfg.isa = isa::IsaFamily::ArmV8;
    // Fig. 13 anchors: 76.5 MHz all four cores, ~97 MHz one core.
    // The little cluster's smaller cores also mean a weaker PDN:
    // lighter decap network and a high-Q die tank (tiny cluster,
    // very little grid loss) — which is why power-gating effects on
    // its resonance are so pronounced in the paper.
    cfg.pdn.c_pkg = 5e-6;
    cfg.pdn.r_die = 0.10e-3;
    cfg.pdn.r_pkg = 0.12e-3;
    cfg.pdn.esr_pkg = 0.15e-3;
    cfg.pdn.calibrateDieTank(mega(76.5), mega(97.0), 4, nano(60.0));
    refineDieTank(cfg.pdn, mega(76.5));
    cfg.pdn.v_nom = cfg.v_nom;
    return cfg;
}

PlatformConfig
athlonConfig()
{
    PlatformConfig cfg;
    cfg.name = "Athlon II X4 645";
    cfg.motherboard = "Asus M5A78L LE";
    cfg.os = "Windows 8.1";
    cfg.technology_nm = 45;
    cfg.n_cores = 4;
    cfg.f_max_hz = giga(3.1);
    // AMD Overdrive exposes multiplier steps of 0.5 on the 100 MHz
    // reference and lets the clock drop far enough that the probe
    // loop sweeps through the 50-200 MHz resonance band.
    cfg.f_min_hz = mega(400.0);
    cfg.f_step_hz = mega(50.0);
    cfg.v_nom = 1.4;
    cfg.visibility = VoltageVisibility::KelvinPads;
    cfg.has_scl = false;
    cfg.antenna_distance_m = 0.08;
    cfg.core = uarch::athlonX4Params();
    cfg.isa = isa::IsaFamily::X86_64;
    // Desktop board: heftier decap network and a much stiffer supply
    // path (multi-phase VRM, wide power planes: total series
    // resistance ~1 mohm, versus the mobile board's ~10 mohm).
    // Overrides precede calibration because calibrateDieTank folds
    // the decap ESL into the tank inductance.
    cfg.pdn.c_pkg = 20e-6;
    cfg.pdn.esl_pkg = 1.5e-12;
    // Damped bulk bank: caps the mid-frequency anti-resonance (which
    // the stiff low-resistance supply path would otherwise leave
    // under-damped) without loading the 1st-order tank.
    cfg.pdn.c_pkg_bulk = 50e-6;
    cfg.pdn.esl_pkg_bulk = 100e-12;
    cfg.pdn.esr_pkg_bulk = 4e-3;
    cfg.pdn.c_pcb = 3e-3;
    // Sharp 1st-order peak (Q ~ 8): desktop parts have very low
    // grid/package loss, which is precisely why dI/dt resonance is a
    // first-order margin concern on them.
    cfg.pdn.r_die = 0.08e-3;
    cfg.pdn.r_pkg = 0.1e-3;
    cfg.pdn.esr_pkg = 0.1e-3;
    cfg.pdn.r_pcb = 0.5e-3;
    cfg.pdn.r_vrm = 0.2e-3;
    // Fig. 16: resonance at 78 MHz with all cores. The one-core
    // anchor is not reported by the paper; 95 MHz follows the same
    // uncore/core capacitance split as the ARM clusters.
    cfg.pdn.calibrateDieTank(mega(78.0), mega(95.0), 4, nano(100.0));
    refineDieTank(cfg.pdn, mega(78.0));
    cfg.pdn.v_nom = cfg.v_nom;
    return cfg;
}

Platform::Platform(const PlatformConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed), pool_(poolFor(config.isa)),
      core_(config.core),
      pdn_(std::make_unique<pdn::PdnModel>(config.pdn)),
      antenna_(em::AntennaParams{}),
      analyzer_(analyzerParamsFor(config), Rng(seed)),
      scope_(scopeParamsFor(config), Rng(seed ^ 0x9e3779b97f4a7c15ull)),
      f_clk_(config.f_max_hz), v_supply_(config.v_nom)
{
    requireConfig(config.n_cores >= 1, "platform needs cores");
    requireConfig(config.pdn.n_cores == config.n_cores,
                  "PDN core count must match platform core count");
}

std::unique_ptr<Platform>
Platform::clone() const
{
    auto copy = std::make_unique<Platform>(config_, seed_);
    // f_clk_ is already snapped to the DVFS grid, so setFrequency is
    // an exact copy here.
    copy->setFrequency(f_clk_);
    copy->setVoltage(v_supply_);
    copy->setPoweredCores(poweredCores());
    if (pulse_)
        copy->armPulse(*pulse_);
    return copy;
}

void
Platform::armPulse(const em::PulseSpec &spec)
{
    const em::PulseInjector injector(spec); // validates
    pulse_ = spec;
    // A null (zero-amplitude) pulse keeps the passive 2-source
    // netlist so "pulse armed at amplitude 0" stays bit-identical to
    // "no pulse armed" on every path.
    pdn_->setPulseSource(!injector.isNull());
}

void
Platform::disarmPulse()
{
    pulse_.reset();
    pdn_->setPulseSource(false);
}

circuit::SourceWaveform
Platform::pulseWave() const
{
    if (!pulse_)
        return nullptr;
    const em::PulseInjector injector(*pulse_);
    if (injector.isNull())
        return nullptr;
    // Pulse t0 is relative to the observed window; runs prepend a
    // settle lead-in that the output slicing strips again.
    return injector.waveform(kSettleTime);
}

instruments::Oscilloscope &
Platform::scope()
{
    requireConfig(hasVoltageVisibility(),
                  config_.name
                      + " has no voltage-noise visibility (this is "
                        "exactly the case the EM methodology solves)");
    return scope_;
}

void
Platform::setFrequency(double f_hz)
{
    requireConfig(f_hz > 0.0, "frequency must be positive");
    const double snapped =
        std::round(f_hz / config_.f_step_hz) * config_.f_step_hz;
    f_clk_ = std::clamp(snapped, config_.f_min_hz, config_.f_max_hz);
}

void
Platform::setVoltage(double v)
{
    requireConfig(v > 0.3 && v < 2.0,
                  "supply voltage outside the plausible 0.3-2.0 V");
    v_supply_ = v;
    pdn_->setSupplyVoltage(v);
}

void
Platform::setPoweredCores(std::size_t cores)
{
    pdn_->setPoweredCores(cores);
}

PlatformRunResult
Platform::runKernel(const isa::Kernel &kernel, double duration_s,
                    std::size_t active_cores) const
{
    // Stream into trace-collecting sinks: same waveforms as the batch
    // path, one pipeline.
    TraceSink v(kPdnDt);
    TraceSink i(kPdnDt);
    TraceSink e(kPdnDt);
    const auto stats = streamKernel(
        kernel, duration_s,
        [&](const StreamPlan &plan) {
            v.reserve(plan.n_samples);
            i.reserve(plan.n_samples);
            e.reserve(plan.n_samples);
            return StreamObservers{&v, &i, &e};
        },
        active_cores);
    return PlatformRunResult{v.take(), i.take(), e.take(), stats};
}

PlatformRunResult
Platform::runKernelBatch(const isa::Kernel &kernel, double duration_s,
                         std::size_t active_cores) const
{
    const auto run = core_.runLoop(pool_, kernel, f_clk_,
                                   duration_s + kSettleTime);
    // Identical resonant loops on the shared PDN effectively
    // phase-lock (voltage-delay entrainment), so kernel instances
    // sum near-coherently: a small launch stagger only.
    return finishRun(run, duration_s, active_cores,
                     kCorePhaseStagger);
}

uarch::KernelRunStats
Platform::streamKernel(const isa::Kernel &kernel, double duration_s,
                       const ObserverFactory &make_observers,
                       std::size_t active_cores) const
{
    const std::size_t powered = pdn_->poweredCores();
    if (active_cores == 0)
        active_cores = powered;
    requireConfig(active_cores <= powered,
                  "cannot run on more cores than are powered");

    // Observability only: the span/counters never feed the run.
    metrics::ScopedPhase stream_span("platform.stream");
    metrics::Registry::instance().add("platform.stream.runs");

    // The whole run's shape is known a priori: the loop emits one
    // current sample per simulated cycle.
    const double total_s = duration_s + kSettleTime;
    const double cycle_dt = 1.0 / f_clk_;
    const std::size_t n_cycles =
        uarch::CoreModel::loopEmitCount(f_clk_, total_s);
    const auto stagger_cycles = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(kCorePhaseStagger / cycle_dt));
    const double v_scale = v_supply_ / config_.core.v_ref;
    const double extra_idle = config_.core.idle_current * v_scale
        * static_cast<double>(powered - active_cores);

    const std::size_t n_pdn = Trace::outputLengthFor(
        cycle_dt * static_cast<double>(n_cycles), kPdnDt);
    std::size_t settle_steps =
        static_cast<std::size_t>(kSettleTime / kPdnDt);
    if (settle_steps >= n_pdn)
        settle_steps = 0;
    const std::size_t want =
        static_cast<std::size_t>(duration_s / kPdnDt);
    const std::size_t n = std::min(want, n_pdn - settle_steps);
    requireSim(n >= 16, "run produced too few PDN samples");
    metrics::Registry::instance().add("platform.stream.samples", n);

    // Pass A: the batch path biases the PDN's initial DC point at the
    // mean of the whole load trace, which a single forward pass cannot
    // know before stepping — so run the (deterministic) core pipeline
    // once into a mean accumulator, recording a bounded prefix+period
    // replay so Pass B does not have to simulate the core again.
    MeanSink mean_sink;
    uarch::KernelRunStats stats;
    uarch::LoopRecording rec;
    {
        ZohResampleSink zoh(mean_sink, n_cycles, cycle_dt, kPdnDt);
        StaggerSumSink sum(zoh, n_cycles, stagger_cycles, active_cores,
                           v_scale, extra_idle);
        stats = core_.runLoopInto(pool_, kernel, f_clk_, total_s, sum,
                                  &rec);
    }

    const StreamPlan plan{stats, n, kPdnDt};
    const StreamObservers obs = make_observers(plan);
    if (obs.v_die == nullptr && obs.i_die == nullptr
        && obs.em == nullptr)
        return stats;

    // Pass B: replay the identical core simulation through the PDN
    // stepper. Settle-time lead-ins are stripped by slice sinks; the
    // antenna couples to the sliced die current, exactly as the batch
    // path differentiates the sliced trace.
    std::optional<SliceSink> v_slice;
    if (obs.v_die != nullptr)
        v_slice.emplace(*obs.v_die, settle_steps, n);

    std::optional<SliceSink> i_slice;
    if (obs.i_die != nullptr)
        i_slice.emplace(*obs.i_die, settle_steps, n);

    std::optional<em::AntennaReceiveSink> ant;
    std::optional<SliceSink> em_slice;
    if (obs.em != nullptr) {
        ant.emplace(antenna_.receiveInto(
            *obs.em, config_.antenna_distance_m, kPdnDt));
        em_slice.emplace(*ant, settle_steps, n);
    }

    std::optional<FanoutSink> i_fan;
    SampleSink *i_tap = nullptr;
    if (i_slice && em_slice) {
        i_fan.emplace(
            std::vector<SampleSink *>{&*i_slice, &*em_slice});
        i_tap = &*i_fan;
    } else if (i_slice) {
        i_tap = &*i_slice;
    } else if (em_slice) {
        i_tap = &*em_slice;
    }

    pdn::PdnStreamSink pdn_sink = pdn_->streamSim(
        kPdnDt, mean_sink.mean(),
        v_slice ? &*v_slice : nullptr, i_tap, pulseWave());
    ZohResampleSink zoh(pdn_sink, n_cycles, cycle_dt, kPdnDt);
    StaggerSumSink sum(zoh, n_cycles, stagger_cycles, active_cores,
                       v_scale, extra_idle);
    if (rec.complete())
        rec.emitInto(sum);
    else
        core_.runLoopInto(pool_, kernel, f_clk_, total_s, sum);
    return stats;
}

PlatformRunResult
Platform::runStream(std::span<const isa::Instruction> stream,
                    double duration_s, std::size_t active_cores) const
{
    auto run = core_.runStream(pool_, stream, f_clk_);
    requireConfig(run.current.duration() >= duration_s + kSettleTime,
                  "instruction stream too short for the requested "
                  "duration; generate a longer stream");
    // Benchmark instances are independent programs at unrelated
    // execution points: decorrelate them with a large stagger so
    // their stochastic current components do not add coherently.
    const double decorrelate = run.current.duration()
        / static_cast<double>(std::max<std::size_t>(
            2, pdn_->poweredCores() + 1));
    return finishRun(run, duration_s, active_cores, decorrelate);
}

PlatformRunResult
Platform::runScl(double freq_hz, double amplitude_a,
                 double duration_s) const
{
    requireConfig(config_.has_scl,
                  config_.name + " has no SCL injector");
    // Idle cores: flat leakage-level load.
    const double total = duration_s + kSettleTime;
    Trace idle(kPdnDt);
    const auto steps = static_cast<std::size_t>(total / kPdnDt);
    idle.reserve(steps);
    const double idle_current = config_.core.idle_current
        * static_cast<double>(pdn_->poweredCores());
    for (std::size_t i = 0; i < steps; ++i)
        idle.push(idle_current);

    instruments::SyntheticCurrentLoad scl(amplitude_a);
    auto sim = pdn_->simulate(idle, scl.waveform(freq_hz),
                              pulseWave());

    const auto settle_steps =
        static_cast<std::size_t>(kSettleTime / kPdnDt);
    PlatformRunResult out{
        sim.v_die.slice(settle_steps, sim.v_die.size() - settle_steps),
        sim.i_die.slice(settle_steps, sim.i_die.size() - settle_steps),
        Trace(kPdnDt),
        {}};
    out.em = antenna_.receive(out.i_die, config_.antenna_distance_m);
    return out;
}

PlatformRunResult
Platform::runIdle(double duration_s) const
{
    const double total = duration_s + kSettleTime;
    Trace idle(kPdnDt);
    const auto steps = static_cast<std::size_t>(total / kPdnDt);
    idle.reserve(steps);
    const double current = config_.core.idle_current
        * (v_supply_ / config_.core.v_ref)
        * static_cast<double>(pdn_->poweredCores());
    for (std::size_t i = 0; i < steps; ++i)
        idle.push(current);
    auto sim = pdn_->simulate(idle, nullptr, pulseWave());

    const auto settle_steps =
        static_cast<std::size_t>(kSettleTime / kPdnDt);
    const std::size_t n = sim.v_die.size() - settle_steps;
    PlatformRunResult out{sim.v_die.slice(settle_steps, n),
                          sim.i_die.slice(settle_steps, n),
                          Trace(kPdnDt),
                          {}};
    out.em = antenna_.receive(out.i_die, config_.antenna_distance_m);
    return out;
}

PlatformRunResult
Platform::finishRun(const uarch::CoreRunResult &core_run,
                    double duration_s, std::size_t active_cores,
                    double stagger_s) const
{
    const std::size_t powered = pdn_->poweredCores();
    if (active_cores == 0)
        active_cores = powered;
    requireConfig(active_cores <= powered,
                  "cannot run on more cores than are powered");

    // Sum per-core currents with mutual phase offsets by rotating
    // the single-instance trace.
    const Trace &one = core_run.current;
    const auto stagger_cycles = std::max<std::size_t>(
        1, static_cast<std::size_t>(stagger_s / one.dt()));
    requireSim(one.size() > stagger_cycles * active_cores,
               "core trace too short for phase-shifted summation");
    Trace total(one.dt());
    total.data().assign(one.size(), 0.0);
    const double v_scale = v_supply_ / config_.core.v_ref;
    for (std::size_t c = 0; c < active_cores; ++c) {
        const std::size_t shift = c * stagger_cycles;
        for (std::size_t k = 0; k < one.size(); ++k)
            total[k] += one[(k + shift) % one.size()] * v_scale;
    }
    // Idle (powered but inactive) cores draw leakage.
    const double extra_idle = config_.core.idle_current * v_scale
        * static_cast<double>(powered - active_cores);
    if (extra_idle > 0.0) {
        for (std::size_t k = 0; k < total.size(); ++k)
            total[k] += extra_idle;
    }

    const Trace i_load = total.resampleZeroOrderHold(kPdnDt);
    auto sim = pdn_->simulate(i_load, nullptr, pulseWave());

    // Discard the settle lead-in.
    std::size_t settle_steps =
        static_cast<std::size_t>(kSettleTime / kPdnDt);
    if (settle_steps >= sim.v_die.size())
        settle_steps = 0;
    const std::size_t want =
        static_cast<std::size_t>(duration_s / kPdnDt);
    const std::size_t avail = sim.v_die.size() - settle_steps;
    const std::size_t n = std::min(want, avail);
    requireSim(n >= 16, "run produced too few PDN samples");

    PlatformRunResult out{sim.v_die.slice(settle_steps, n),
                          sim.i_die.slice(settle_steps, n),
                          Trace(kPdnDt), core_run.stats};
    out.em = antenna_.receive(out.i_die, config_.antenna_distance_m);
    return out;
}

} // namespace platform
} // namespace emstress
