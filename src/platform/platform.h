/**
 * @file
 * Platform: the integration of cores, PDN, antenna coupling and
 * instruments into one simulated device-under-test with DVFS and
 * power-gating controls — the stand-in for the paper's Juno board
 * clusters and the AMD desktop (Table 1).
 */

#ifndef EMSTRESS_PLATFORM_PLATFORM_H
#define EMSTRESS_PLATFORM_PLATFORM_H

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "em/antenna.h"
#include "em/pulse_injector.h"
#include "instruments/oscilloscope.h"
#include "instruments/scl.h"
#include "instruments/spectrum_analyzer.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "pdn/pdn_model.h"
#include "uarch/core_model.h"
#include "util/rng.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace platform {

/** PDN simulation timestep shared across the project: 4 GS/s. */
inline constexpr double kPdnDt = 0.25e-9;

/** Voltage-noise visibility of a platform (Table 1 last column). */
enum class VoltageVisibility
{
    OcDso,        ///< On-chip DSO (Juno Cortex-A72 domain).
    None,         ///< No direct measurement (Juno Cortex-A53 domain).
    KelvinPads,   ///< On-package pads + benchtop scope (AMD).
};

/** Static description of a platform (one row of Table 1). */
struct PlatformConfig
{
    std::string name;          ///< e.g. "Cortex-A72".
    std::string motherboard;   ///< e.g. "Juno Board R2".
    std::string os;            ///< e.g. "Debian".
    int technology_nm = 16;    ///< Process node.
    std::size_t n_cores = 2;   ///< Cores in the voltage domain.
    double f_max_hz = giga(1.2);   ///< Highest operating frequency.
    double f_min_hz = mega(120.0);   ///< Lowest DVFS frequency.
    double f_step_hz = mega(20.0);   ///< DVFS frequency granularity.
    double v_nom = 1.0;        ///< Nominal voltage at f_max.
    VoltageVisibility visibility = VoltageVisibility::None;
    bool has_scl = false;      ///< SCL injector present.
    double antenna_distance_m = 0.07; ///< Antenna placement.

    uarch::CoreParams core;    ///< Core microarchitecture.
    pdn::PdnParameters pdn;    ///< PDN electrical model.
    isa::IsaFamily isa = isa::IsaFamily::ArmV8;
};

/** Juno R2 Cortex-A72 domain (dual-core OoO, OC-DSO + SCL). */
PlatformConfig junoA72Config();

/** Juno R2 Cortex-A53 domain (quad-core in-order, no visibility). */
PlatformConfig junoA53Config();

/** AMD Athlon II X4 645 on Asus M5A78L LE (Kelvin pads). */
PlatformConfig athlonConfig();

/** Result of executing software (or the SCL) on a platform. */
struct PlatformRunResult
{
    Trace v_die;  ///< Die voltage at the PDN timestep [V].
    Trace i_die;  ///< Package-loop current [A].
    Trace em;     ///< Antenna voltage at the analyzer input [V].
    uarch::KernelRunStats stats; ///< Core stats (loop runs).
};

/**
 * Shape of a streaming kernel run, known before any sample flows:
 * what each observer sink will receive. Observer factories use it to
 * size streaming detectors (a Goertzel bank needs the capture length
 * up front) and to pick bands from the loop statistics.
 */
struct StreamPlan
{
    uarch::KernelRunStats stats; ///< Core loop statistics.
    std::size_t n_samples = 0;   ///< Samples each observer receives.
    double dt = kPdnDt;          ///< Observer sample interval [s].
};

/**
 * Observer sinks for one streaming run. Null entries skip that tap
 * entirely (an EM-only measurement never touches the voltage path,
 * and vice versa).
 */
struct StreamObservers
{
    SampleSink *v_die = nullptr; ///< Die voltage [V].
    SampleSink *i_die = nullptr; ///< Package-loop current [A].
    SampleSink *em = nullptr;    ///< Antenna voltage [V].
};

/** Builds the observers for a run once its plan is known. */
using ObserverFactory =
    std::function<StreamObservers(const StreamPlan &)>;

/**
 * A simulated device under test. Owns the cores, PDN, antenna and
 * instruments; provides DVFS, power gating and run methods.
 */
class Platform
{
  public:
    /**
     * Build a platform.
     * @param config Static description.
     * @param seed   Seeds the instrument/measurement noise streams.
     */
    Platform(const PlatformConfig &config, std::uint64_t seed);

    /** Static description. */
    const PlatformConfig &config() const { return config_; }

    /** The seed this platform's instrument noise streams derive from. */
    std::uint64_t seed() const { return seed_; }

    /**
     * Build an independent replica of this platform: same config and
     * seed, same DVFS / voltage / power-gating state, but its own PDN
     * engine and instruments. Concurrent evaluation pipelines give
     * each worker thread a clone because the PDN caches its factored
     * transient engine (a benign data race serially, a real one in
     * parallel).
     */
    std::unique_ptr<Platform> clone() const;

    /** The platform's instruction pool. */
    const isa::InstructionPool &pool() const { return pool_; }

    /** The PDN model (e.g. for impedance analysis). */
    const pdn::PdnModel &pdnModel() const { return *pdn_; }

    /** The receive antenna. */
    const em::Antenna &antenna() const { return antenna_; }

    /** The spectrum analyzer connected to the antenna. */
    instruments::SpectrumAnalyzer &analyzer() { return analyzer_; }

    /**
     * The voltage-measurement scope.
     * @throws ConfigError when visibility is None (the Cortex-A53
     *         case the paper's EM method exists to address).
     */
    instruments::Oscilloscope &scope();

    /** True when direct voltage measurement exists. */
    bool hasVoltageVisibility() const
    {
        return config_.visibility != VoltageVisibility::None;
    }

    /// @{ DVFS and power gating.
    /** Set core clock; snaps to the f_step grid and clamps to range. */
    void setFrequency(double f_hz);
    /** Current core clock. */
    double frequency() const { return f_clk_; }
    /** Set the supply voltage. */
    void setVoltage(double v);
    /** Current supply voltage. */
    double voltage() const { return v_supply_; }
    /** Power-gate down to a number of powered cores. */
    void setPoweredCores(std::size_t cores);
    /** Currently powered cores. */
    std::size_t poweredCores() const { return pdn_->poweredCores(); }
    /// @}

    /// @{ Active EM fault injection.
    /**
     * Arm an EMFI pulse: every subsequent run (kernel, stream, SCL,
     * idle — batch or streaming path alike) injects the pulse as an
     * extra PDN current source until disarmPulse(). The spec's t0 is
     * relative to the *observed* window: the settle lead-in every run
     * discards is prepended automatically.
     *
     * A zero-amplitude spec is recorded but injects nothing and —
     * deliberately — leaves the PDN netlist untouched, so zero-amp
     * runs are bit-identical to never-armed runs by construction
     * (the fast-path state update would reassociate sums if an
     * all-zero source column were added; see
     * PdnModel::setPulseSource).
     *
     * @throws ConfigError on an invalid spec (see PulseInjector).
     */
    void armPulse(const em::PulseSpec &spec);

    /** Remove any armed pulse. */
    void disarmPulse();

    /** The armed pulse spec, if any. */
    const std::optional<em::PulseSpec> &armedPulse() const
    {
        return pulse_;
    }
    /// @}

    /**
     * Run a kernel loop on a number of active cores (each core runs
     * its own instance, mutually phase-shifted) for a duration of
     * steady-state time, and return PDN + EM waveforms.
     *
     * @param kernel       Loop body.
     * @param duration_s   Steady-state window to record.
     * @param active_cores Cores executing; 0 means all powered cores.
     */
    PlatformRunResult runKernel(const isa::Kernel &kernel,
                                double duration_s,
                                std::size_t active_cores = 0) const;

    /**
     * Batch-trace implementation of runKernel: sums staggered core
     * traces, resamples, runs the whole-trace PDN transient, then
     * couples the antenna. Kept as the parity oracle for the
     * streaming path; runKernel itself streams into trace sinks and
     * returns bit-identical waveforms.
     */
    PlatformRunResult runKernelBatch(const isa::Kernel &kernel,
                                     double duration_s,
                                     std::size_t active_cores = 0)
        const;

    /**
     * Streaming kernel run: drive the whole core → stagger-sum → ZOH
     * → PDN → antenna pipeline one sample at a time into caller
     * observers, never materializing a waveform (O(1) memory in
     * duration). Sample values are bit-identical to runKernelBatch's
     * traces.
     *
     * The run happens in two passes over the core simulation: pass A
     * accumulates the mean PDN load (the batch path biases the PDN's
     * initial DC point at the mean of the full load trace, which a
     * single streaming pass cannot know up front), pass B replays the
     * identical simulation through the PDN stepper into the
     * observers. The factory is invoked between the passes with the
     * run's plan, so observers can be sized exactly and choose bands
     * from the measured loop statistics.
     *
     * Unwind contract (fault injection relies on this): an observer
     * may throw from push() mid-stream — e.g. a TruncatingSink
     * modeling a dropped sample stream — and the exception
     * propagates out of streamKernel leaving the platform in its
     * pre-call state. All per-run simulation state (core replay,
     * PDN stepper, antenna coupling) lives in locals destroyed
     * during unwinding; the only member caches touched are
     * geometry-keyed and value-deterministic, so an aborted run
     * followed by a retry produces samples bit-identical to an
     * uninterrupted run.
     *
     * @param kernel         Loop body.
     * @param duration_s     Steady-state window to observe.
     * @param make_observers Observer factory; entries left null are
     *                       skipped (and their per-sample work, e.g.
     *                       antenna coupling for a null em, is not
     *                       performed).
     * @param active_cores   Cores executing; 0 means all powered.
     * @return Core loop statistics (as PlatformRunResult::stats).
     */
    uarch::KernelRunStats
    streamKernel(const isa::Kernel &kernel, double duration_s,
                 const ObserverFactory &make_observers,
                 std::size_t active_cores = 0) const;

    /**
     * Run a finite instruction stream (synthetic benchmark) on active
     * cores.
     */
    PlatformRunResult
    runStream(std::span<const isa::Instruction> stream,
              double duration_s, std::size_t active_cores = 0) const;

    /**
     * Drive only the SCL square-wave injector at a frequency with
     * idle cores (Fig. 8 methodology).
     * @throws ConfigError when the platform has no SCL.
     */
    PlatformRunResult runScl(double freq_hz, double amplitude_a,
                             double duration_s) const;

    /**
     * True idle: no program running, powered cores drawing only
     * leakage/clock-tree current. The EM-quiet baseline of Fig. 4.
     */
    PlatformRunResult runIdle(double duration_s) const;

  private:
    /**
     * Common tail of a run: sum active-core instances (staggered by
     * stagger_s), add idle-core leakage, drive the PDN, strip the
     * settle lead-in and couple the antenna.
     */
    PlatformRunResult
    finishRun(const uarch::CoreRunResult &core_run, double duration_s,
              std::size_t active_cores, double stagger_s) const;

    /**
     * The armed pulse as a simulation-time waveform (t0 shifted past
     * the settle lead-in), or nullptr when no pulse would inject.
     */
    circuit::SourceWaveform pulseWave() const;

    PlatformConfig config_;
    std::uint64_t seed_;
    isa::InstructionPool pool_;
    uarch::CoreModel core_;
    std::unique_ptr<pdn::PdnModel> pdn_;
    em::Antenna antenna_;
    instruments::SpectrumAnalyzer analyzer_;
    instruments::Oscilloscope scope_;
    double f_clk_;
    double v_supply_;
    std::optional<em::PulseSpec> pulse_;
};

} // namespace platform
} // namespace emstress

#endif // EMSTRESS_PLATFORM_PLATFORM_H
