/**
 * @file
 * V_MIN search implementation.
 */

#include "vmin/vmin_search.h"

#include "util/error.h"
#include "util/stats.h"

namespace emstress {
namespace vmin {

VminSearch::VminSearch(const VminSearchConfig &config,
                       const FailureModel &failure, Rng rng)
    : config_(config), failure_(failure), rng_(rng)
{
    requireConfig(config.v_step > 0.0, "step must be positive");
    requireConfig(config.v_start > config.v_floor,
                  "start voltage must exceed the floor");
    requireConfig(config.repeats >= 1, "need at least one repeat");
}

VminResult
VminSearch::characterize(const WorkloadRunner &runner, double f_clk_hz)
{
    VminResult result;

    // Record the nominal-voltage droop for reporting (Fig. 10's red
    // curve) from the first repeat at the start voltage.
    {
        const Trace v0 = runner(config_.v_start, 0);
        result.max_droop_nominal =
            config_.v_start - stats::minimum(v0.samples());
    }

    // Integer-indexed sweep (lint R3): each test voltage is
    // recomputed as start - i*step, so the visited grid is a pure
    // function of the config — a loop-carried `v -= step` would
    // accumulate one rounding error per level and make the grid
    // depend on how many levels preceded it.
    for (std::size_t i = 0;; ++i) {
        const double v = config_.v_start
            - static_cast<double>(i) * config_.v_step;
        if (!(v > config_.v_floor))
            break;
        for (std::size_t rep = 0; rep < config_.repeats; ++rep) {
            const Trace v_die = runner(v, rep);
            ++result.runs_executed;
            const RunOutcome outcome =
                failure_.classify(v_die, f_clk_hz, rng_);
            if (isFailure(outcome)) {
                // Paper reports the highest voltage at which any
                // deviation from nominal execution is observed.
                result.vmin = v;
                result.first_failure = outcome;
                return result;
            }
        }
    }
    return result; // nothing failed: vmin 0 / Pass
}

} // namespace vmin
} // namespace emstress
