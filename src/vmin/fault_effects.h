/**
 * @file
 * ISA-level fault effects of voltage transients — the active-EMFI
 * counterpart of the V_MIN timing-failure machinery. "Studying EM
 * Pulse Effects on Superscalar Microarchitectures at ISA Level"
 * (Proy et al.) observes that injected pulses manifest as
 * ISA-visible instruction skips and corrupted results; Moro et al.'s
 * 32-bit fault model gives the register-corruption taxonomy. This
 * model bridges the electrical and ISA layers: it samples the die
 * voltage over each instruction's execution window, compares the
 * minimum against per-pipeline-stage timing thresholds (V_CRIT plus
 * a stage margin, scaled by the pulse probe's spatial proximity to
 * that stage), and converts crossings into deterministic fault
 * events replayed against a small abstract interpreter over the
 * `src/isa/` kernel — yielding golden-vs-faulted architectural
 * digests a campaign can pin bit-exactly.
 *
 * Determinism contract (mirrors util/faultpoint.h): whether a
 * crossing manifests, which register corrupts and with what mask are
 * pure functions of (schedule seed, stage, site, cycle) — never of
 * evaluation order, thread count or wall clock. Same (seed,
 * schedule) ⇒ bit-identical fault event logs.
 */

#ifndef EMSTRESS_VMIN_FAULT_EFFECTS_H
#define EMSTRESS_VMIN_FAULT_EFFECTS_H

#include <cstdint>
#include <vector>

#include "em/pulse_injector.h"
#include "isa/kernel.h"
#include "isa/pool.h"
#include "uarch/core_model.h"
#include "util/trace.h"
#include "vmin/timing_model.h"

namespace emstress {
namespace vmin {

/** Pipeline stages with distinct voltage-droop susceptibility. */
enum class PipelineStage : std::uint8_t
{
    kFetch = 0,   ///< Fetch/decode: a droop there skips the slot.
    kExecute = 1, ///< Execute: mistimed ALU latch, wrong result.
    kRegfile = 2, ///< Register file: bit flips in stored state.
};

/** Number of modeled pipeline stages. */
inline constexpr std::size_t kPipelineStageCount = 3;

/** Display name of a stage. */
const char *pipelineStageName(PipelineStage stage);

/** ISA-visible fault taxonomy (Proy et al. / Moro et al.). */
enum class FaultKind : std::uint8_t
{
    kInstructionSkip = 0,    ///< The slot never executes.
    kWrongResult = 1,        ///< Executes, writes a corrupted value.
    kRegisterCorruption = 2, ///< Executes, then a register flips.
};

/** Display name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** Fault-effects model parameters. All margins are above V_CRIT. */
struct FaultEffectsParams
{
    /// @{ Per-stage voltage margins above V_CRIT(f_clk) [V]: the die
    /// voltage below which the stage misbehaves. Fetch is hardened
    /// (clock-gating slack), the register file is the weakest array.
    double fetch_margin_v = 0.012;
    double execute_margin_v = 0.018;
    double regfile_margin_v = 0.030;
    /// @}

    /// @{ Stage locations on the unit die grid, for pulse-proximity
    /// susceptibility weighting (fault-sensitivity maps sweep the
    /// probe position against these).
    double fetch_x = 0.22;
    double fetch_y = 0.30;
    double execute_x = 0.58;
    double execute_y = 0.52;
    double regfile_x = 0.42;
    double regfile_y = 0.72;
    /// @}

    /// Spatial falloff of the proximity boost [grid units].
    double proximity_sigma = 0.28;
    /// Maximum susceptibility multiplier a perfectly positioned
    /// probe adds to a stage's margin (0 disables position effects).
    double proximity_boost = 1.5;

    /// Probability a threshold crossing manifests as an ISA event
    /// (drawn from the pure (seed, stage, site, cycle) schedule;
    /// 1 = every crossing manifests, the replay-test default).
    double manifest_probability = 1.0;

    /// Seed of the manifestation/corruption draw schedule.
    std::uint64_t schedule_seed = 1;

    /// Upper bound on analyzed loop iterations (keeps analysis O(1)
    /// in run duration for long traces).
    std::size_t max_iterations = 4096;

    /// Timing model the stage thresholds build on.
    TimingModelParams timing;
};

/** One ISA-visible fault event. */
struct FaultEvent
{
    std::size_t iteration = 0; ///< Loop iteration of the site.
    std::size_t slot = 0;      ///< Kernel instruction slot.
    std::size_t cycle = 0;     ///< Start cycle of the site's window.
    PipelineStage stage = PipelineStage::kFetch;
    FaultKind kind = FaultKind::kInstructionSkip;
    int reg = -1;              ///< Corrupted register (kRegister...).
    std::uint64_t xor_mask = 0; ///< Corruption mask (non-skip kinds).
    double v_min = 0.0;        ///< Deepest sample in the window [V].
    double threshold_v = 0.0;  ///< Crossed stage threshold [V].

    /** Field-wise equality (replay tests compare logs bitwise). */
    bool operator==(const FaultEvent &other) const;
};

/** Everything one analysis produces. */
struct FaultReport
{
    std::vector<FaultEvent> events; ///< Iteration/slot order.
    /// Sites whose threshold was crossed (before the manifestation
    /// gate) — the monotonicity-sweep statistic.
    std::size_t sites_crossed = 0;
    std::uint64_t golden_digest = 0;  ///< Fault-free arch digest.
    std::uint64_t faulted_digest = 0; ///< Digest with events applied.
    double v_crit = 0.0;       ///< V_CRIT(f_clk) of this run [V].
    /// Per-slot margin: min over analyzed iterations and stages of
    /// (window v_min - stage threshold) [V]; negative = crossed.
    /// Sized kernel.size().
    std::vector<double> slot_margin_v;
    /// Minimum of slot_margin_v (the run's closest call) [V].
    double min_margin_v = 0.0;
    RunOutcome outcome = RunOutcome::Pass;
};

/**
 * The fault-effects model. Stateless after construction; analyze()
 * is a pure function of its arguments, so one instance may serve
 * many runs (and threads) concurrently.
 */
class FaultEffectsModel
{
  public:
    /** Validate parameters and build the embedded timing model. */
    explicit FaultEffectsModel(const FaultEffectsParams &params);

    /** Parameters. */
    const FaultEffectsParams &params() const { return params_; }

    /**
     * Voltage threshold below which a stage faults, for a clock
     * frequency and an optional pulse position [V]: V_CRIT(f) plus
     * the stage margin scaled by (1 + proximity boost at the pulse's
     * distance from the stage). No pulse means scale 1.
     */
    double stageThreshold(PipelineStage stage, double f_clk_hz,
                          const em::PulseSpec *pulse) const;

    /**
     * Analyze one run: lay the kernel's instruction timeline over
     * the die-voltage trace, detect per-stage threshold crossings,
     * gate them through the manifestation schedule, and replay the
     * resulting events on the abstract interpreter.
     *
     * @param pool     Instruction pool the kernel indexes into.
     * @param kernel   Executed loop body.
     * @param v_die    Die voltage over the observed window.
     * @param f_clk_hz Core clock of the run.
     * @param stats    Core loop statistics (timeline calibration).
     * @param pulse    The armed pulse, or nullptr for a passive run
     *                 (position-independent thresholds).
     */
    FaultReport analyze(const isa::InstructionPool &pool,
                        const isa::Kernel &kernel, const Trace &v_die,
                        double f_clk_hz,
                        const uarch::KernelRunStats &stats,
                        const em::PulseSpec *pulse) const;

    /**
     * Architectural digest of running the kernel for a number of
     * iterations with a set of fault events applied (empty = golden
     * reference). Exposed for the golden-pin tests.
     */
    std::uint64_t
    archDigest(const isa::InstructionPool &pool,
               const isa::Kernel &kernel, std::size_t iterations,
               const std::vector<FaultEvent> &events) const;

  private:
    FaultEffectsParams params_;
    TimingModel timing_;
};

} // namespace vmin
} // namespace emstress

#endif // EMSTRESS_VMIN_FAULT_EFFECTS_H
