/**
 * @file
 * Timing model implementation.
 */

#include "vmin/timing_model.h"

#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace emstress {
namespace vmin {

TimingModel::TimingModel(const TimingModelParams &params)
    : params_(params)
{
    requireConfig(params.vth > 0.0, "threshold voltage must be > 0");
    requireConfig(params.alpha > 0.0, "alpha must be > 0");
    requireConfig(params.v_crit_anchor > params.vth,
                  "anchor voltage must exceed the threshold voltage");
    requireConfig(params.f_anchor_hz > 0.0,
                  "anchor frequency must be positive");
    const double v = params.v_crit_anchor;
    k_ = params.f_anchor_hz * v
        / std::pow(v - params.vth, params.alpha);
}

double
TimingModel::fMax(double v_die) const
{
    if (v_die <= params_.vth)
        return 0.0;
    return k_ * std::pow(v_die - params_.vth, params_.alpha) / v_die;
}

double
TimingModel::vCrit(double f_clk_hz) const
{
    requireConfig(f_clk_hz > 0.0, "clock frequency must be positive");
    // fMax is monotone increasing above vth; bisect.
    double lo = params_.vth + 1e-6;
    double hi = 3.0;
    requireSim(fMax(hi) >= f_clk_hz,
               "requested frequency beyond the timing model's range");
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (fMax(mid) >= f_clk_hz)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

const char *
outcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Pass:        return "pass";
      case RunOutcome::Sdc:         return "SDC";
      case RunOutcome::AppCrash:    return "app-crash";
      case RunOutcome::SystemCrash: return "system-crash";
    }
    return "unknown";
}

FailureModel::FailureModel(const FailureModelParams &params,
                           const TimingModel &timing)
    : params_(params), timing_(timing)
{
    requireConfig(params.sdc_band_v >= 0.0,
                  "SDC band must be non-negative");
    requireConfig(params.sdc_probability >= 0.0
                      && params.sdc_probability <= 1.0,
                  "SDC probability outside [0,1]");
}

RunOutcome
FailureModel::classify(const Trace &v_die, double f_clk_hz,
                       Rng &rng) const
{
    const double v_min = stats::minimum(v_die.samples());
    const double v_crit = timing_.vCrit(f_clk_hz);
    const double slack = v_min - v_crit;
    if (slack < 0.0)
        return RunOutcome::SystemCrash;
    if (slack < params_.sdc_band_v
        && rng.chance(params_.sdc_probability)) {
        // Near-critical excursions corrupt state; whether that shows
        // as bad output or a dead process depends on where it lands.
        return rng.chance(0.5) ? RunOutcome::Sdc
                               : RunOutcome::AppCrash;
    }
    return RunOutcome::Pass;
}

} // namespace vmin
} // namespace emstress
