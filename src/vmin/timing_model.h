/**
 * @file
 * Timing-failure model for V_MIN determination. A CPU fails when its
 * critical-path delay at the instantaneous die voltage exceeds the
 * clock period. The alpha-power law gives the delay-voltage relation;
 * V_CRIT(f) is the die voltage at which timing exactly closes for a
 * clock frequency f. Outcomes within a small slack band above the
 * crash point are silent data corruptions / application crashes, per
 * the paper's observation that SDCs appear ~10 mV above the system
 * crash voltage (Section 5.2).
 */

#ifndef EMSTRESS_VMIN_TIMING_MODEL_H
#define EMSTRESS_VMIN_TIMING_MODEL_H

#include "util/rng.h"
#include "util/trace.h"
#include "util/units.h"

namespace emstress {
namespace vmin {

/** Alpha-power-law timing model parameters. */
struct TimingModelParams
{
    double vth = 0.35;   ///< Effective threshold voltage [V].
    double alpha = 1.3;  ///< Velocity-saturation exponent.
    /// Calibration anchor: at f_anchor_hz the critical path closes
    /// exactly at v_crit_anchor.
    double f_anchor_hz = giga(1.2);
    double v_crit_anchor = 0.78;
};

/**
 * Critical-voltage solver: max frequency supported at voltage v is
 * f_max(v) = k (v - vth)^alpha / v; the anchor point fixes k.
 */
class TimingModel
{
  public:
    /** Construct from parameters. */
    explicit TimingModel(const TimingModelParams &params);

    /** Parameters. */
    const TimingModelParams &params() const { return params_; }

    /** Maximum clock frequency sustainable at a die voltage [Hz]. */
    double fMax(double v_die) const;

    /**
     * Minimum die voltage at which a clock frequency closes timing
     * [V] (inverse of fMax; solved by bisection).
     */
    double vCrit(double f_clk_hz) const;

  private:
    TimingModelParams params_;
    double k_; ///< Speed constant fixed by the anchor.
};

/** Outcome of one workload execution at a voltage. */
enum class RunOutcome
{
    Pass,        ///< Output matches the golden reference.
    Sdc,         ///< Silent data corruption.
    AppCrash,    ///< Application crash.
    SystemCrash, ///< System crash / hang.
};

/** Human-readable outcome name. */
const char *outcomeName(RunOutcome outcome);

/** True for any deviation from nominal execution. */
inline bool
isFailure(RunOutcome outcome)
{
    return outcome != RunOutcome::Pass;
}

/** Failure classification parameters. */
struct FailureModelParams
{
    /// Slack band above the crash voltage where SDC/app-crash occur
    /// probabilistically (paper: ~10 mV).
    double sdc_band_v = 0.010;
    /// Probability per run that a within-band excursion manifests.
    double sdc_probability = 0.7;
};

/**
 * Classify one execution from its die-voltage waveform.
 */
class FailureModel
{
  public:
    /** Construct with band parameters and a timing model. */
    FailureModel(const FailureModelParams &params,
                 const TimingModel &timing);

    /**
     * Classify an execution.
     * @param v_die    Die-voltage waveform during the run.
     * @param f_clk_hz Clock frequency of the run.
     * @param rng      Randomness for within-band SDC manifestation.
     */
    RunOutcome classify(const Trace &v_die, double f_clk_hz,
                        Rng &rng) const;

  private:
    FailureModelParams params_;
    const TimingModel &timing_;
};

} // namespace vmin
} // namespace emstress

#endif // EMSTRESS_VMIN_TIMING_MODEL_H
