#include "vmin/fault_effects.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace emstress {
namespace vmin {

namespace {

/// FNV-1a (matches isa::Kernel::hash and service fingerprints).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffull;
        h *= kFnvPrime;
    }
    return h;
}

/// Salts separating the independent draw streams of one site.
constexpr std::uint64_t kManifestSalt = 0;
constexpr std::uint64_t kRegisterSalt = 1;
constexpr std::uint64_t kMaskSalt = 2;

/// Weyl constant separating per-stage lanes (same scheme as
/// util/faultpoint.h separates per-point lanes).
constexpr std::uint64_t kLaneStep = 0x9e3779b97f4a7c15ull;

/**
 * Pure site-keyed draw, mirroring FaultSchedule::unitDraw: a hash of
 * (seed, stage lane, site key, cycle, salt) mapped to [0, 1). The
 * site key folds (iteration, slot) so every static instruction
 * instance draws independently.
 */
std::uint64_t
siteHash(std::uint64_t seed, PipelineStage stage,
         std::uint64_t site_key, std::uint64_t cycle,
         std::uint64_t salt)
{
    const std::uint64_t lane =
        (static_cast<std::uint64_t>(stage) + 1ull) * kLaneStep;
    const std::uint64_t ctx = (cycle << 32) ^ salt;
    return mixSeed(seed ^ lane, mixSeed(site_key, ctx));
}

double
unitDraw(std::uint64_t seed, PipelineStage stage,
         std::uint64_t site_key, std::uint64_t cycle,
         std::uint64_t salt)
{
    const std::uint64_t h = siteHash(seed, stage, site_key, cycle, salt);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Seeds of the abstract interpreter's initial architectural state.
constexpr std::uint64_t kRegInitSalt = 0x5eedf00d;
constexpr std::uint64_t kMemInitSalt = 0x5eedbeef;

std::size_t
regFileIndex(isa::RegFile file)
{
    switch (file) {
    case isa::RegFile::Int:
        return 0;
    case isa::RegFile::Fp:
        return 1;
    case isa::RegFile::Simd:
        return 2;
    case isa::RegFile::None:
        break;
    }
    return 0;
}

} // namespace

const char *
pipelineStageName(PipelineStage stage)
{
    switch (stage) {
    case PipelineStage::kFetch:
        return "fetch";
    case PipelineStage::kExecute:
        return "execute";
    case PipelineStage::kRegfile:
        return "regfile";
    }
    return "?";
}

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kInstructionSkip:
        return "instruction-skip";
    case FaultKind::kWrongResult:
        return "wrong-result";
    case FaultKind::kRegisterCorruption:
        return "register-corruption";
    }
    return "?";
}

bool
FaultEvent::operator==(const FaultEvent &other) const
{
    return iteration == other.iteration && slot == other.slot
        && cycle == other.cycle && stage == other.stage
        && kind == other.kind && reg == other.reg
        && xor_mask == other.xor_mask && v_min == other.v_min
        && threshold_v == other.threshold_v;
}

FaultEffectsModel::FaultEffectsModel(const FaultEffectsParams &params)
    : params_(params), timing_(params.timing)
{
    requireConfig(params.fetch_margin_v >= 0.0
                      && params.execute_margin_v >= 0.0
                      && params.regfile_margin_v >= 0.0,
                  "fault-effects stage margins must be >= 0");
    requireConfig(params.proximity_sigma > 0.0,
                  "fault-effects proximity sigma must be positive");
    requireConfig(params.proximity_boost >= 0.0,
                  "fault-effects proximity boost must be >= 0");
    requireConfig(params.manifest_probability >= 0.0
                      && params.manifest_probability <= 1.0,
                  "fault-effects manifest probability must be in [0,1]");
    requireConfig(params.max_iterations > 0,
                  "fault-effects max_iterations must be positive");
}

double
FaultEffectsModel::stageThreshold(PipelineStage stage, double f_clk_hz,
                                  const em::PulseSpec *pulse) const
{
    double margin = 0.0;
    double sx = 0.0;
    double sy = 0.0;
    switch (stage) {
    case PipelineStage::kFetch:
        margin = params_.fetch_margin_v;
        sx = params_.fetch_x;
        sy = params_.fetch_y;
        break;
    case PipelineStage::kExecute:
        margin = params_.execute_margin_v;
        sx = params_.execute_x;
        sy = params_.execute_y;
        break;
    case PipelineStage::kRegfile:
        margin = params_.regfile_margin_v;
        sx = params_.regfile_x;
        sy = params_.regfile_y;
        break;
    }

    // Proximity susceptibility: a probe parked over the stage scales
    // its margin by (1 + boost); far away the scale decays to 1.
    // Deliberately amplitude-independent so that raising the pulse
    // amplitude can only deepen droops, never move thresholds — the
    // property behind the sensitivity-sweep monotonicity tests.
    double susceptibility = 1.0;
    if (pulse != nullptr && params_.proximity_boost > 0.0) {
        const double dx = pulse->x - sx;
        const double dy = pulse->y - sy;
        const double sigma2 =
            params_.proximity_sigma * params_.proximity_sigma;
        susceptibility +=
            params_.proximity_boost
            * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma2));
    }
    return timing_.vCrit(f_clk_hz) + margin * susceptibility;
}

namespace {

/**
 * Deterministic architectural interpreter state: one 64-bit value
 * per register per namespace plus one per memory slot. Values are
 * propagated with mixSeed so any upstream corruption reaches the
 * final digest with overwhelming probability (the model's stand-in
 * for "the program's output changed").
 */
struct ArchState
{
    std::array<std::vector<std::uint64_t>, 3> regs;
    std::vector<std::uint64_t> mem;

    explicit ArchState(const isa::InstructionPool &pool)
    {
        const isa::RegFile files[] = {isa::RegFile::Int,
                                      isa::RegFile::Fp,
                                      isa::RegFile::Simd};
        for (std::size_t f = 0; f < 3; ++f) {
            const auto n =
                static_cast<std::size_t>(
                    std::max(1, pool.regCount(files[f])));
            regs[f].resize(n);
            for (std::size_t i = 0; i < n; ++i)
                regs[f][i] = mixSeed(kRegInitSalt, f * 0x101 + i);
        }
        const auto slots = static_cast<std::size_t>(
            std::max(1, pool.memSlots()));
        mem.resize(slots);
        for (std::size_t s = 0; s < slots; ++s)
            mem[s] = mixSeed(kMemInitSalt, s);
    }

    std::uint64_t
    read(std::size_t file, int reg) const
    {
        if (reg < 0)
            return 0;
        return regs[file][static_cast<std::size_t>(reg)
                          % regs[file].size()];
    }

    std::uint64_t
    digest() const
    {
        std::uint64_t h = kFnvOffset;
        for (const auto &file : regs)
            for (const auto v : file)
                h = fnvMix(h, v);
        for (const auto v : mem)
            h = fnvMix(h, v);
        return h;
    }
};

/** Execute one instruction, optionally mutated by a fault event. */
void
executeSlot(ArchState &state, const isa::InstructionPool &pool,
            const isa::Instruction &instr, const FaultEvent *fault)
{
    if (fault != nullptr
        && fault->kind == FaultKind::kInstructionSkip)
        return;

    const auto &def = pool.def(instr.def_index);
    const std::size_t file = regFileIndex(def.reg_file);
    std::uint64_t s0 = state.read(file, instr.src[0]);
    std::uint64_t s1 = state.read(file, instr.src[1]);
    std::uint64_t m = 0;
    if (instr.mem_slot >= 0)
        m = state.mem[static_cast<std::size_t>(instr.mem_slot)
                      % state.mem.size()];

    std::uint64_t val =
        mixSeed(mixSeed(instr.def_index, s0), mixSeed(s1, m));
    if (fault != nullptr && fault->kind == FaultKind::kWrongResult)
        val ^= fault->xor_mask;

    if (def.has_dest && instr.dest >= 0)
        state.regs[file][static_cast<std::size_t>(instr.dest)
                         % state.regs[file].size()] = val;
    if (def.cls == isa::InstrClass::Store && instr.mem_slot >= 0)
        state.mem[static_cast<std::size_t>(instr.mem_slot)
                  % state.mem.size()] = val;

    if (fault != nullptr
        && fault->kind == FaultKind::kRegisterCorruption) {
        state.regs[file][static_cast<std::size_t>(
                             std::max(fault->reg, 0))
                         % state.regs[file].size()] ^=
            fault->xor_mask;
    }
}

} // namespace

std::uint64_t
FaultEffectsModel::archDigest(const isa::InstructionPool &pool,
                              const isa::Kernel &kernel,
                              std::size_t iterations,
                              const std::vector<FaultEvent> &events)
    const
{
    ArchState state(pool);
    std::size_t next_event = 0;
    for (std::size_t it = 0; it < iterations; ++it) {
        for (std::size_t slot = 0; slot < kernel.size(); ++slot) {
            const FaultEvent *fault = nullptr;
            if (next_event < events.size()
                && events[next_event].iteration == it
                && events[next_event].slot == slot) {
                fault = &events[next_event];
                ++next_event;
            }
            executeSlot(state, pool, kernel[slot], fault);
        }
    }
    return state.digest();
}

FaultReport
FaultEffectsModel::analyze(const isa::InstructionPool &pool,
                           const isa::Kernel &kernel,
                           const Trace &v_die, double f_clk_hz,
                           const uarch::KernelRunStats &stats,
                           const em::PulseSpec *pulse) const
{
    requireConfig(!kernel.empty(),
                  "fault-effects analysis needs a non-empty kernel");
    requireConfig(f_clk_hz > 0.0,
                  "fault-effects analysis needs a positive clock");
    const std::size_t len = kernel.size();

    FaultReport report;
    report.v_crit = timing_.vCrit(f_clk_hz);
    report.slot_margin_v.assign(
        len, std::numeric_limits<double>::infinity());

    // Cycles one loop iteration takes. The core model's measured
    // loop period is the calibrated source; fall back to one cycle
    // per instruction when stats are absent (crafted-trace tests).
    std::size_t cpi_loop = len;
    if (stats.loop_period_s > 0.0) {
        const auto measured = static_cast<std::size_t>(
            std::llround(stats.loop_period_s * f_clk_hz));
        cpi_loop = std::max<std::size_t>(1, measured);
    }

    const double trace_duration =
        v_die.dt() * static_cast<double>(v_die.size());
    std::size_t iterations = 0;
    if (trace_duration > 0.0) {
        const double loop_s =
            static_cast<double>(cpi_loop) / f_clk_hz;
        iterations = static_cast<std::size_t>(
            trace_duration / loop_s);
    }
    iterations = std::min(iterations, params_.max_iterations);

    const PipelineStage stages[] = {PipelineStage::kFetch,
                                    PipelineStage::kExecute,
                                    PipelineStage::kRegfile};
    double thresholds[kPipelineStageCount];
    for (std::size_t s = 0; s < kPipelineStageCount; ++s)
        thresholds[s] = stageThreshold(stages[s], f_clk_hz, pulse);

    for (std::size_t it = 0; it < iterations; ++it) {
        for (std::size_t slot = 0; slot < len; ++slot) {
            // The slot's cycle window inside this iteration.
            const std::size_t c0 =
                it * cpi_loop + (slot * cpi_loop) / len;
            std::size_t c1 =
                it * cpi_loop + ((slot + 1) * cpi_loop) / len;
            if (c1 <= c0)
                c1 = c0 + 1;

            // Map cycles onto trace sample indices.
            const double t0 =
                static_cast<double>(c0) / f_clk_hz;
            const double t1 =
                static_cast<double>(c1) / f_clk_hz;
            auto i0 = static_cast<std::size_t>(t0 / v_die.dt());
            auto i1 = static_cast<std::size_t>(t1 / v_die.dt());
            if (i0 >= v_die.size())
                break;
            i1 = std::min(std::max(i1, i0 + 1), v_die.size());

            double v_min = v_die[i0];
            for (std::size_t i = i0 + 1; i < i1; ++i)
                v_min = std::min(v_min, v_die[i]);

            // Deepest crossing among the stages claims the site.
            bool crossed = false;
            PipelineStage worst_stage = PipelineStage::kFetch;
            double worst_depth = 0.0;
            double worst_threshold = 0.0;
            for (std::size_t s = 0; s < kPipelineStageCount; ++s) {
                const double margin = v_min - thresholds[s];
                report.slot_margin_v[slot] =
                    std::min(report.slot_margin_v[slot], margin);
                const double depth = -margin;
                if (depth > 0.0 && depth > worst_depth) {
                    crossed = true;
                    worst_depth = depth;
                    worst_stage = stages[s];
                    worst_threshold = thresholds[s];
                }
            }
            if (!crossed)
                continue;
            ++report.sites_crossed;

            const std::uint64_t site_key = mixSeed(it, slot);
            const auto cycle64 = static_cast<std::uint64_t>(c0);
            const double gate =
                unitDraw(params_.schedule_seed, worst_stage,
                         site_key, cycle64, kManifestSalt);
            const bool manifests =
                params_.manifest_probability >= 1.0
                || (params_.manifest_probability > 0.0
                    && gate < params_.manifest_probability);
            if (!manifests)
                continue;

            FaultEvent ev;
            ev.iteration = it;
            ev.slot = slot;
            ev.cycle = c0;
            ev.stage = worst_stage;
            ev.v_min = v_min;
            ev.threshold_v = worst_threshold;
            switch (worst_stage) {
            case PipelineStage::kFetch:
                ev.kind = FaultKind::kInstructionSkip;
                break;
            case PipelineStage::kExecute:
                ev.kind = FaultKind::kWrongResult;
                break;
            case PipelineStage::kRegfile:
                ev.kind = FaultKind::kRegisterCorruption;
                break;
            }
            if (ev.kind != FaultKind::kInstructionSkip) {
                ev.xor_mask =
                    siteHash(params_.schedule_seed, worst_stage,
                             site_key, cycle64, kMaskSalt)
                    | 1ull;
            }
            if (ev.kind == FaultKind::kRegisterCorruption) {
                const auto &def =
                    pool.def(kernel[slot].def_index);
                const int n_regs = std::max(
                    1, pool.regCount(
                           def.reg_file == isa::RegFile::None
                               ? isa::RegFile::Int
                               : def.reg_file));
                ev.reg = static_cast<int>(
                    siteHash(params_.schedule_seed, worst_stage,
                             site_key, cycle64, kRegisterSalt)
                    % static_cast<std::uint64_t>(n_regs));
            }
            report.events.push_back(ev);
        }
    }

    report.min_margin_v = std::numeric_limits<double>::infinity();
    for (auto &m : report.slot_margin_v) {
        if (std::isinf(m))
            m = 0.0;
        report.min_margin_v = std::min(report.min_margin_v, m);
    }
    if (std::isinf(report.min_margin_v))
        report.min_margin_v = 0.0;

    report.golden_digest =
        archDigest(pool, kernel, iterations, {});
    report.faulted_digest =
        archDigest(pool, kernel, iterations, report.events);

    if (report.events.empty()) {
        report.outcome = RunOutcome::Pass;
    } else {
        // Skips starve forward progress — model as an app crash;
        // pure data corruption is an SDC (Section 5.2's taxonomy).
        bool any_skip = false;
        for (const auto &ev : report.events)
            any_skip |= ev.kind == FaultKind::kInstructionSkip;
        report.outcome =
            any_skip ? RunOutcome::AppCrash : RunOutcome::Sdc;
    }
    return report;
}

} // namespace vmin
} // namespace emstress
