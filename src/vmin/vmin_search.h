/**
 * @file
 * V_MIN search: the paper's test methodology (Section 5.2). Each
 * experiment starts at a high voltage and lowers the supply in 10 mV
 * steps until any deviation from nominal execution (SDC, application
 * crash or system crash) is observed; the reported V_MIN is the
 * highest voltage at which a deviation occurred, over a number of
 * repeats (30 for viruses, 2 per SPEC benchmark in the paper).
 */

#ifndef EMSTRESS_VMIN_VMIN_SEARCH_H
#define EMSTRESS_VMIN_VMIN_SEARCH_H

#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/trace.h"
#include "vmin/timing_model.h"

namespace emstress {
namespace vmin {

/** Configuration of a V_MIN search. */
struct VminSearchConfig
{
    double v_start = 1.0;    ///< First (highest) test voltage.
    double v_floor = 0.5;    ///< Abort voltage (search failure).
    double v_step = 0.010;   ///< Step size (paper: 10 mV).
    std::size_t repeats = 2; ///< Runs per voltage point.
};

/**
 * A workload execution oracle: given a supply voltage and a repeat
 * index, produce the die-voltage waveform of one run. The repeat
 * index lets implementations vary phase alignment / noise per run.
 */
using WorkloadRunner =
    std::function<Trace(double v_supply, std::size_t repeat)>;

/** Result of one workload's V_MIN characterization. */
struct VminResult
{
    double vmin = 0.0;          ///< Highest failing voltage.
    RunOutcome first_failure = RunOutcome::Pass; ///< Failure type there.
    double max_droop_nominal = 0.0; ///< Max droop measured at v_start.
    std::size_t runs_executed = 0;  ///< Total runs spent.
};

/**
 * Stepping V_MIN search engine.
 */
class VminSearch
{
  public:
    /**
     * @param config  Search parameters.
     * @param failure Failure classifier (with its timing model).
     * @param rng     Randomness stream for outcome classification.
     */
    VminSearch(const VminSearchConfig &config,
               const FailureModel &failure, Rng rng);

    /**
     * Characterize one workload.
     * @param runner   Execution oracle.
     * @param f_clk_hz Clock frequency of the runs.
     * @return V_MIN result; vmin == 0 with first_failure == Pass when
     *         nothing failed down to the floor voltage.
     */
    VminResult characterize(const WorkloadRunner &runner,
                            double f_clk_hz);

  private:
    VminSearchConfig config_;
    const FailureModel &failure_;
    Rng rng_;
};

} // namespace vmin
} // namespace emstress

#endif // EMSTRESS_VMIN_VMIN_SEARCH_H
